package twoknn

import (
	"fmt"

	"repro/internal/index/overlay"
)

// This file is the write path of a *Relation: Insert, Remove and Update
// mutate the relation by layering a delta overlay (append-only columnar
// side store + tombstone set, internal/index/overlay) over the immutable
// base index and atomically publishing a fresh snapshot. Queries never
// block on writers: they run against whichever snapshot they loaded at
// entry, and a swapped-out snapshot stays alive until its in-flight
// searchers release it (RCU by garbage collector).
//
// Every mutation batch bumps the relation's epoch, so epoch-keyed result
// caches (internal/qcache, the server's batch cache) invalidate
// automatically. When the overlay fraction crosses the compaction threshold
// the relation merges in the background: the live point set — stable IDs
// preserved — is rebuilt into a block-contiguous store and a from-scratch
// index, and the new snapshot is swapped in. Compaction does not bump the
// epoch: the live set is unchanged, so cached results stay correct.

// defaultCompactThreshold is the overlay fraction (delta entries plus
// tombstones over resident points) past which a mutation triggers a
// background merge.
const defaultCompactThreshold = 0.25

// WithCompactThreshold sets the overlay fraction past which mutations
// trigger a background compaction (merge into a fresh block-contiguous
// index). frac == 0 (the default) means defaultCompactThreshold; a negative
// frac disables automatic compaction — the overlay then grows until an
// explicit Compact call.
func WithCompactThreshold(frac float64) RelationOption {
	return func(c *relationConfig) { c.compactFrac = frac }
}

// DeltaStats describes a relation's mutation state: the current epoch, live
// cardinality, overlay residency (points still in the delta side store,
// tombstones not yet merged away) and lifetime mutation/compaction
// counters. Zero overlay residency means queries run at native indexed
// speed.
type DeltaStats struct {
	Epoch       uint64 `json:"epoch"`
	Live        int    `json:"live"`
	DeltaLive   int    `json:"delta_live"`
	Tombstones  int    `json:"tombstones"`
	Mutations   uint64 `json:"mutations"`
	Compactions uint64 `json:"compactions"`
}

// DeltaStats returns the relation's current mutation state.
func (r *Relation) DeltaStats() DeltaStats {
	d := r.d
	s := r.snapshot()
	return DeltaStats{
		Epoch:       d.epoch.Load(),
		Live:        s.rel.Len(),
		DeltaLive:   s.deltaLive,
		Tombstones:  s.tombstones,
		Mutations:   d.mutations.Load(),
		Compactions: d.compactions.Load(),
	}
}

// Insert adds pts to the relation as one mutation batch and returns their
// freshly assigned stable IDs (contiguous, strictly above every ID the
// relation has ever assigned). The points land in the delta overlay and are
// visible to every query started after Insert returns; the epoch is bumped
// once per batch. Inserting no points is a no-op returning nil.
//
// Insert, Remove, Update and Compact are safe for concurrent use with each
// other and with queries; writers serialize internally.
func (r *Relation) Insert(pts ...Point) []int32 {
	if len(pts) == 0 {
		return nil
	}
	d := r.d
	d.mu.Lock()
	d.ensureOverlayLocked()
	ids := make([]int32, len(pts))
	for i, p := range pts {
		id := d.nextID
		d.nextID++
		d.ov.Insert(p, id)
		ids[i] = id
	}
	d.publishLocked()
	frac := d.ov.Fraction()
	d.mu.Unlock()
	r.maybeCompact(frac)
	return ids
}

// Remove deletes the points with the given stable IDs as one mutation
// batch, returning how many of them were live. Unknown and already-removed
// IDs are ignored. A batch that removes nothing publishes nothing and does
// not bump the epoch.
func (r *Relation) Remove(ids ...int32) int {
	d := r.d
	d.mu.Lock()
	d.ensureOverlayLocked()
	removed := 0
	for _, id := range ids {
		if d.ov.Remove(id) {
			removed++
		}
	}
	var frac float64
	if removed > 0 {
		d.publishLocked()
		frac = d.ov.Fraction()
	}
	d.mu.Unlock()
	if removed > 0 {
		r.maybeCompact(frac)
	}
	return removed
}

// Update moves the point with stable ID id to p, preserving its ID, and
// reports whether the ID was live before the call. An ID that is not live —
// never assigned, or removed earlier — is (re)inserted under that exact ID,
// so Update doubles as an upsert and supports remove-then-reinsert of the
// same identity. Negative IDs are rejected (returning false) without
// mutating. Update is one mutation batch: the epoch is bumped once.
func (r *Relation) Update(id int32, p Point) bool {
	if id < 0 {
		return false
	}
	d := r.d
	d.mu.Lock()
	d.ensureOverlayLocked()
	existed := d.ov.Remove(id)
	d.ov.Insert(p, id)
	if id >= d.nextID {
		d.nextID = id + 1
	}
	d.publishLocked()
	frac := d.ov.Fraction()
	d.mu.Unlock()
	r.maybeCompact(frac)
	return existed
}

// Compact synchronously merges the overlay into a fresh block-contiguous
// store and from-scratch index (same kind and block capacity), publishing
// the result as the new snapshot. Stable IDs are preserved; the covered
// region never shrinks. Query results are unchanged by construction, so
// Compact does not bump the epoch and cached results stay valid. With no
// overlay resident it is a no-op.
func (r *Relation) Compact() error {
	d := r.d
	d.mu.Lock()
	defer d.mu.Unlock()
	return r.compactLocked()
}

// ensureOverlayLocked lazily creates the overlay store over the current
// snapshot's index. Invariant: d.ov == nil exactly while the current
// snapshot is a native (relation-wide store) index — right after
// construction or a compaction — so the base here always exposes a store.
func (d *relData) ensureOverlayLocked() {
	if d.ov == nil {
		d.ov = overlay.NewStore(d.snap.Load().rel.Ix, d.cfg.capacity)
	}
}

// publishLocked builds a snapshot from the overlay, swaps it in, and bumps
// the epoch — one mutation batch becomes visible.
func (d *relData) publishLocked() {
	snap := &relSnapshot{
		rel:        d.newCore(d.ov.Snapshot()),
		deltaLive:  d.ov.DeltaLive(),
		tombstones: d.ov.Tombstones(),
	}
	d.snap.Store(snap)
	d.epoch.Add(1)
	d.mutations.Add(1)
}

// maybeCompact starts a background merge when the overlay fraction has
// crossed the configured threshold and no merge is already running.
func (r *Relation) maybeCompact(frac float64) {
	d := r.d
	thr := d.cfg.compactFrac
	if thr < 0 {
		return
	}
	if thr == 0 {
		thr = defaultCompactThreshold
	}
	if frac < thr {
		return
	}
	if d.compacting.CompareAndSwap(false, true) {
		go func() {
			defer d.compacting.Store(false)
			// A failed build keeps serving the overlay snapshot — correct,
			// just not yet re-contiguous; the next mutation retries.
			_ = r.Compact()
		}()
	}
}

// compactLocked is Compact with d.mu held.
func (r *Relation) compactLocked() error {
	d := r.d
	if d.ov == nil || !d.ov.Mutated() {
		d.ov = nil
		return nil
	}
	st := d.ov.LiveStore()
	// Rebuild under the currently covered region so bounds grow
	// monotonically and empty live sets keep a well-defined region.
	bounds := d.snap.Load().rel.Ix.Bounds()
	ix, err := buildIndex(st, r.kind, d.cfg.capacity, bounds)
	if err != nil {
		return fmt.Errorf("twoknn: compacting %s index for %q: %w", r.kind, r.name, err)
	}
	d.snap.Store(&relSnapshot{rel: d.newCore(ix)})
	d.ov = nil
	d.compactions.Add(1)
	return nil
}
