package twoknn

import (
	"math/rand"
	"testing"

	"repro/internal/locality"
)

// TestPostMergeReadPathAllocs pins the RCU merge payoff: after Compact the
// snapshot is a native block-contiguous index again, and the hot read path
// (Neighborhood over a pooled searcher) is allocation-free in steady state —
// exactly like a never-mutated relation. The overlay read path is held to
// the same standard: its merged block iterator is pooled per searcher.
func TestPostMergeReadPathAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := make([]Point, 3000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	queries := make([]Point, 64)
	for i := range queries {
		queries[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}

	for _, kind := range []IndexKind{GridIndex, QuadtreeIndex, RTreeIndex, KDTreeIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			rel, err := NewRelation("alloc", pts, WithIndexKind(kind),
				WithBlockCapacity(64), WithCompactThreshold(-1))
			if err != nil {
				t.Fatal(err)
			}
			// Mutate: inserts and removals leave a resident overlay.
			ins := make([]Point, 400)
			for i := range ins {
				ins[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			}
			rel.Insert(ins...)
			for i := 0; i < 200; i++ {
				rel.Remove(int32(rng.Intn(3000)))
			}

			measure := func() float64 {
				s := locality.NewSearcher(rel.snapshot().rel.Ix)
				for _, q := range queries {
					s.Neighborhood(q, 16, nil)
				}
				i := 0
				avg := testing.AllocsPerRun(200, func() {
					s.Neighborhood(queries[i%len(queries)], 16, nil)
					i++
				})
				return avg
			}

			if avg := measure(); avg != 0 {
				t.Errorf("%v: overlay read path allocates %v per Neighborhood, want 0", kind, avg)
			}
			if err := rel.Compact(); err != nil {
				t.Fatal(err)
			}
			if rel.snapshot().rel.Store() == nil {
				t.Fatalf("%v: post-compact snapshot is not a native store-backed index", kind)
			}
			if avg := measure(); avg != 0 {
				t.Errorf("%v: post-merge read path allocates %v per Neighborhood, want 0", kind, avg)
			}
		})
	}
}
