package twoknn_test

import (
	"reflect"
	"testing"

	twoknn "repro"
	"repro/internal/locality"
)

// FuzzKNNSelectBatch checks the batched entry point against the NaiveKNN
// brute-force oracle and the sequential KNNSelect loop, over every backing
// of fuzzRelations (grid, kd-tree, hash- and spatially-sharded). Focals are
// decoded on the same coarse grid as the data points, so the fuzzer hits
// duplicate focals, focals co-located with data points, and exact distance
// ties — the regimes where the driver's shared walk could diverge from the
// per-query order if any of its skips were unsound.
func FuzzKNNSelectBatch(f *testing.F) {
	f.Add([]byte("spatial queries with two knn predicates"), []byte("batched execution"), uint8(3))
	f.Add([]byte{10, 10, 10, 10, 10, 10, 200, 200}, []byte{10, 10, 10, 10, 200, 200}, uint8(2))
	f.Add([]byte{0, 0, 255, 255, 0, 255, 255, 0, 128, 128}, []byte{128, 128, 128, 128, 0, 0}, uint8(40))
	f.Add([]byte{128, 127, 129, 128, 128, 128, 64, 64}, []byte{128, 128, 128, 127}, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, focalData []byte, kb uint8) {
		pts := fuzzPoints(data, 120)
		if len(pts) == 0 {
			return
		}
		focals := fuzzPoints(focalData, 12)
		if len(focals) == 0 {
			return
		}
		k := int(kb%48) + 1

		oracle := make([][]twoknn.Point, len(focals))
		for i, f := range focals {
			oracle[i] = locality.NaiveKNN(pts, f, k).Points
		}

		_, srcs := fuzzRelations(t, "batch-fuzz", pts)
		for _, src := range srcs {
			got, err := twoknn.KNNSelectBatch(src, focals, k)
			if err != nil {
				t.Fatalf("%s/%v: %v", src.Name(), src.IndexKind(), err)
			}
			for i := range focals {
				if len(got[i]) != len(oracle[i]) {
					t.Fatalf("%s/%v focal %d: batch %v vs oracle %v",
						src.Name(), src.IndexKind(), i, got[i], oracle[i])
				}
				for j := range got[i] {
					if got[i][j] != oracle[i][j] {
						t.Fatalf("%s/%v focal %d: batch %v vs oracle %v",
							src.Name(), src.IndexKind(), i, got[i], oracle[i])
					}
				}
				seq, err := twoknn.KNNSelect(src, focals[i], k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i], seq) {
					t.Fatalf("%s/%v focal %d: batch %v vs sequential %v",
						src.Name(), src.IndexKind(), i, got[i], seq)
				}
			}
		}
	})
}
