package twoknn_test

// Micro-benchmarks for the kNN hot path: one Searcher.Neighborhood call per
// index family, and the basic kNN-join that every algorithm of the paper
// bottoms out in. These are the perf-trajectory benchmarks recorded in
// BENCH_PR*.json at the repo root; run them with
//
//	go test -bench 'KNNJoin|Neighborhood' -benchmem .
//
// Datasets come from the memoized internal/bench workloads so numbers are
// comparable across runs and across PRs.

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// hotK is the neighborhood size used by the hot-path benchmarks, matching
// the paper's default k=10 regime.
const hotK = 10

func benchNeighborhood(b *testing.B, kind testutil.IndexKind) {
	pts := bench.UniformPoints("hot/nbr", 50000)
	queries := bench.UniformPoints("hot/nbrq", 1024)
	ix, err := testutil.NewIndex(kind, pts)
	if err != nil {
		b.Fatal(err)
	}
	s := locality.NewSearcher(ix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Neighborhood(queries[i%len(queries)], hotK, nil)
	}
}

func BenchmarkNeighborhoodGrid(b *testing.B)     { benchNeighborhood(b, testutil.Grid) }
func BenchmarkNeighborhoodQuadtree(b *testing.B) { benchNeighborhood(b, testutil.Quadtree) }
func BenchmarkNeighborhoodKDTree(b *testing.B)   { benchNeighborhood(b, testutil.KDTree) }
func BenchmarkNeighborhoodRTree(b *testing.B)    { benchNeighborhood(b, testutil.RTree) }

// BenchmarkKNNJoin measures the full outer ⋈kNN inner join on uniform data:
// one neighborhood computation per outer point.
func BenchmarkKNNJoin(b *testing.B) {
	outer := bench.Relation("hot/outer", bench.UniformPoints("hot/outer", 10000))
	inner := bench.Relation("hot/inner", bench.UniformPoints("hot/inner", 10000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.KNNJoin(outer, inner, hotK, nil)
	}
}

// BenchmarkKNNJoinClustered measures the join with a clustered outer
// relation (the paper's Section 6.2 layout), where locality reuse matters
// most: consecutive outer points probe overlapping block sets.
func BenchmarkKNNJoinClustered(b *testing.B) {
	outer := bench.ClusteredRelation("hot/couter", 16, 640, 200)
	inner := bench.Relation("hot/inner", bench.UniformPoints("hot/inner", 10000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.KNNJoin(outer, inner, hotK, nil)
	}
}

// benchNeighborhoodContention measures per-query cost when g goroutines
// serve kNN-selects over ONE shared relation through the searcher pool —
// the contention benchmark of the concurrency layer. b.N queries are split
// evenly across the goroutines, so ns/op stays per-query and directly
// comparable across goroutine counts: flat-or-falling numbers mean the
// pool adds no serialization.
func benchNeighborhoodContention(b *testing.B, goroutines int) {
	rel := bench.Relation("hot/nbr", bench.UniformPoints("hot/nbr", 50000))
	queries := bench.UniformPoints("hot/nbrq", 1024)
	// Warm the pool so steady state is measured, not handle minting.
	var warm sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			h := rel.Acquire()
			h.S.Neighborhood(queries[0], hotK, nil)
			h.Release()
		}()
	}
	warm.Wait()

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < b.N; i += goroutines {
				h := rel.Acquire()
				h.S.Neighborhood(queries[i%len(queries)], hotK, nil)
				h.Release()
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkNeighborhoodContention1(b *testing.B)  { benchNeighborhoodContention(b, 1) }
func BenchmarkNeighborhoodContention4(b *testing.B)  { benchNeighborhoodContention(b, 4) }
func BenchmarkNeighborhoodContention16(b *testing.B) { benchNeighborhoodContention(b, 16) }

// benchLayoutScan measures the raw distance-filter inner loop — the
// operation underneath every neighborhood computation — over 50k points in
// the two storage layouts: the columnar SoA span scan (flat X/Y arrays via
// Block.XYs) and an AoS shadow of the identical blocks ([]geom.Point per
// block). The ratio between the two is the PR 3 layout win at micro scale;
// the abl-layout knnbench experiment records the same comparison at
// workload scale.
func benchLayoutScan(b *testing.B, soa bool) {
	rel := bench.Relation("hot/nbr", bench.UniformPoints("hot/nbr", 50000))
	queries := bench.UniformPoints("hot/nbrq", 1024)
	blocks := rel.Ix.Blocks()
	var shadow [][]geom.Point
	if !soa {
		shadow = make([][]geom.Point, len(blocks))
		for i, blk := range blocks {
			shadow[i] = blk.AppendPoints(nil)
		}
	}
	const radiusSq = 250.0 * 250.0
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if soa {
			for _, blk := range blocks {
				sink += blk.CountWithinSq(q, radiusSq)
			}
		} else {
			for _, pts := range shadow {
				for _, p := range pts {
					if p.DistSq(q) <= radiusSq {
						sink++
					}
				}
			}
		}
	}
	_ = sink
}

func BenchmarkLayoutScanSoA(b *testing.B) { benchLayoutScan(b, true) }
func BenchmarkLayoutScanAoS(b *testing.B) { benchLayoutScan(b, false) }

// BenchmarkKNNJoinCounting measures the Counting algorithm's per-tuple scan
// plus intersection path (Procedure 1) end to end.
func BenchmarkKNNJoinCounting(b *testing.B) {
	outer := bench.Relation("hot/outer", bench.UniformPoints("hot/outer", 10000))
	inner := bench.Relation("hot/inner", bench.UniformPoints("hot/inner", 10000))
	f := geom.Point{X: 5000, Y: 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c stats.Counters
		core.SelectInnerJoinCounting(outer, inner, f, hotK, 64, &c)
	}
}
