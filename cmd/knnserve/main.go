// Command knnserve serves the twoknn query engine over HTTP/JSON: one named
// dataset per -dataset flag (single, sharded or remote relation), every
// query entry point as a POST route — including the batched, result-cached
// /v1/query/knn-select-batch — plus /metrics and /healthz. See the README's
// "Serving" section for curl-able request examples.
//
// Usage:
//
//	knnserve -dataset trips=berlinmod:n=20000,seed=1
//	knnserve -listen :8080 \
//	    -dataset sites=file:sites.csv \
//	    -dataset trips=berlinmod:n=100000,seed=7 \
//	    -shards 4 -shard-policy spatial -index grid \
//	    -max-searchers 64 -max-inflight 256 -timeout 5s
//
// A remote dataset makes knnserve the coordinator of a knnshard fleet:
//
//	knnserve -dataset trips='remote:shards=http://h1:9101|http://h2:9101;http://h3:9101;http://h4:9101' \
//	    -probe-timeout 2s -probe-retries 2 -hedge-after 20ms
//
// where ';' separates shards and '|' separates a shard's replica endpoints.
// Probes travel under the robustness envelope (retries, hedging, breakers,
// replica failover); an exhausted replica set fails the query closed with
// 503 + Retry-After.
//
// Admission control: -max-inflight sheds excess per-dataset concurrency with
// an immediate 429 + Retry-After (a dataset spec's max_inflight=N segment
// overrides the bound for that one dataset; negative N disables its gate);
// -max-searchers bounds each dataset's (or
// each shard's) searcher pool, whose deadline-bounded waits shed as 429 via
// the engine's ErrSearchersExhausted. -timeout is the per-request evaluation
// budget (a request's timeout_ms can only shorten it; a spec's timeout_ms=N /
// max_timeout_ms=N segments set per-dataset budgets, retry_after_ms=N its
// Retry-After hint); expiry returns 504. SIGINT/SIGTERM drain in-flight
// requests and exit cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	twoknn "repro"
	"repro/internal/dataload"
	"repro/internal/server"
)

// options carries the parsed flags; run is separated from main so tests can
// drive the full serve lifecycle with a cancelable context.
type options struct {
	listen       string
	datasets     []string
	index        string
	blockCap     int
	shards       int
	policy       string
	maxSearchers int
	timeout      time.Duration
	maxInflight  int
	retryAfter   time.Duration
	probeTimeout time.Duration
	probeRetries int
	hedgeAfter   time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8080", "address to listen on")
	flag.Func("dataset", "dataset as name=spec; repeatable (specs: file:points.csv, berlinmod:n=20000,seed=1, uniform:n=...,seed=..., clustered:clusters=...,per=...; append max_inflight=N to override -max-inflight for one dataset, N<0 disables its gate)", func(s string) error {
		o.datasets = append(o.datasets, s)
		return nil
	})
	flag.StringVar(&o.index, "index", "grid", "index kind for every dataset: grid, quadtree, rtree, kdtree")
	flag.IntVar(&o.blockCap, "block-capacity", 0, "points per index block (0 = engine default)")
	flag.IntVar(&o.shards, "shards", 0, "shard count per dataset (0 or 1 = single relation)")
	flag.StringVar(&o.policy, "shard-policy", "hash", "partitioning policy for sharded datasets: hash or spatial")
	flag.IntVar(&o.maxSearchers, "max-searchers", 0, "bound each dataset's searcher pool (per shard when sharded; 0 = unbounded)")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-request evaluation budget")
	flag.IntVar(&o.maxInflight, "max-inflight", 0, "max concurrent requests per dataset before shedding 429 (0 = no server-level gate)")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint on 429 responses")
	flag.DurationVar(&o.probeTimeout, "probe-timeout", 0, "per-probe deadline against remote shard endpoints (0 = envelope default)")
	flag.IntVar(&o.probeRetries, "probe-retries", 0, "retry budget per remote probe (0 = envelope default, negative disables retries)")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 0, "base latency after which a remote probe hedges to another replica (0 = envelope default, negative disables hedging)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knnserve:", err)
		os.Exit(1)
	}
}

// newServer builds the Server with every -dataset registered; ctx bounds
// the dial handshake of remote datasets.
func newServer(ctx context.Context, o options) (*server.Server, error) {
	if len(o.datasets) == 0 {
		return nil, fmt.Errorf("at least one -dataset name=spec is required")
	}
	kind, err := server.ParseIndexKind(o.index)
	if err != nil {
		return nil, err
	}
	policy, err := server.ParseShardPolicy(o.policy)
	if err != nil {
		return nil, err
	}
	build := server.BuildOptions{
		Index:         kind,
		BlockCapacity: o.blockCap,
		Shards:        o.shards,
		Policy:        policy,
		MaxSearchers:  o.maxSearchers,
	}
	srv := server.New(server.Config{
		DefaultTimeout: o.timeout,
		MaxInflight:    o.maxInflight,
		RetryAfter:     o.retryAfter,
	})
	rcfg := &twoknn.RemoteConfig{
		ProbeTimeout: o.probeTimeout,
		MaxRetries:   o.probeRetries,
		HedgeAfter:   o.hedgeAfter,
	}
	for _, arg := range o.datasets {
		var src twoknn.Source
		name, shards, dopts, isRemote, err := server.SplitDatasetArgRemote(arg)
		if err != nil {
			return nil, err
		}
		if isRemote {
			src, err = twoknn.DialRemote(ctx, name, shards, rcfg)
			if err != nil {
				return nil, fmt.Errorf("dialing dataset %q: %w", name, err)
			}
		} else {
			var spec dataload.Spec
			name, spec, dopts, err = server.SplitDatasetArgOptions(arg)
			if err != nil {
				return nil, err
			}
			src, err = server.BuildSource(name, spec, build)
			if err != nil {
				return nil, err
			}
		}
		if err := srv.RegisterWithOptions(name, src, dopts); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

func run(ctx context.Context, o options, stdout io.Writer) error {
	srv, err := newServer(ctx, o)
	if err != nil {
		return err
	}
	for _, name := range srv.DatasetNames() {
		fmt.Fprintf(stdout, "knnserve: dataset %q ready\n", name)
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "knnserve: listening on http://%s (%s)\n",
		ln.Addr(), strings.Join(srv.DatasetNames(), ", "))

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Drain in-flight requests; each is already bounded by the request
		// budget, so the grace period only needs to cover that.
		fmt.Fprintln(stdout, "knnserve: shutting down")
		grace := o.timeout + 5*time.Second
		shCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return hs.Shutdown(shCtx)
	case err := <-errc:
		return err
	}
}
