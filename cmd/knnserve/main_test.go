package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/dataload"
	"repro/internal/server"
)

func TestNewServerValidation(t *testing.T) {
	base := func() options {
		return options{index: "grid", policy: "hash", timeout: time.Second, retryAfter: time.Second}
	}
	t.Run("requires a dataset", func(t *testing.T) {
		if _, err := newServer(context.Background(), base()); err == nil || !strings.Contains(err.Error(), "-dataset") {
			t.Fatalf("err = %v, want a -dataset requirement", err)
		}
	})
	t.Run("rejects bad spec", func(t *testing.T) {
		o := base()
		o.datasets = []string{"pts=warpdrive:n=5"}
		if _, err := newServer(context.Background(), o); err == nil {
			t.Fatal("bad spec accepted")
		}
	})
	t.Run("rejects bad index", func(t *testing.T) {
		o := base()
		o.datasets = []string{"pts=uniform:n=100,seed=1"}
		o.index = "btree"
		if _, err := newServer(context.Background(), o); err == nil {
			t.Fatal("bad index accepted")
		}
	})
	t.Run("rejects duplicate name", func(t *testing.T) {
		o := base()
		o.datasets = []string{"pts=uniform:n=100,seed=1", "pts=uniform:n=100,seed=2"}
		if _, err := newServer(context.Background(), o); err == nil || !strings.Contains(err.Error(), "already registered") {
			t.Fatalf("err = %v, want duplicate-name rejection", err)
		}
	})
	t.Run("builds sharded datasets", func(t *testing.T) {
		o := base()
		o.datasets = []string{"a=uniform:n=200,seed=1", "b=clustered:clusters=2,per=50,seed=2"}
		o.shards = 2
		o.policy = "spatial"
		srv, err := newServer(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		if got := srv.DatasetNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Fatalf("DatasetNames = %v", got)
		}
	})
}

// syncBuffer makes run's stdout readable while the server goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^ ]+)`)

// TestRunLifecycle drives the full serve loop in-process: start on an
// ephemeral port, serve a query, then cancel the context (the code path
// SIGINT/SIGTERM trigger) and require a clean drain.
func TestRunLifecycle(t *testing.T) {
	o := options{
		listen:     "127.0.0.1:0",
		datasets:   []string{"pts=uniform:n=500,seed=9"},
		index:      "grid",
		policy:     "hash",
		timeout:    5 * time.Second,
		retryAfter: time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, &out) }()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output:\n%s", out.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !strings.Contains(out.String(), `dataset "pts" ready`) {
		t.Errorf("startup output missing dataset announcement:\n%s", out.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, err := server.EncodeRequest(&server.KNNSelectRequest{
		Dataset: "pts", F: server.PointArg{X: 5000, Y: 5000}, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	qr, err := http.Post(base+"/v1/query/knn-select", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var q server.QueryResponse
	if err := json.NewDecoder(qr.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	qr.Body.Close()
	if qr.StatusCode != http.StatusOK || q.Count != 3 {
		t.Fatalf("query status %d, count %d", qr.StatusCode, q.Count)
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mx server.MetricsResponse
	if err := json.NewDecoder(mr.Body).Decode(&mx); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if mx.Datasets["pts"].Points != 500 || mx.Routes["knn-select"].OK != 1 {
		t.Errorf("metrics after one query: %+v", mx)
	}

	cancel() // what the SIGINT/SIGTERM NotifyContext does
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancellation")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("shutdown output missing:\n%s", out.String())
	}
}

func TestRunRejectsBadListen(t *testing.T) {
	o := options{
		listen:     "256.256.256.256:99999",
		datasets:   []string{"pts=uniform:n=10,seed=1"},
		index:      "grid",
		policy:     "hash",
		timeout:    time.Second,
		retryAfter: time.Second,
	}
	if err := run(context.Background(), o, io.Discard); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestRemoteDatasetFailoverE2E drives the full coordinator lifecycle over a
// remote dataset: a 3-shard × 2-replica knnshard-protocol fleet behind a
// remote: spec, a served differential battery against a local oracle
// dataset over the same points, one replica killed mid-battery (a real
// listener teardown, not an injected fault), and the requirement that
// replica failover keeps every answer exact while /metrics records the
// failovers.
func TestRemoteDatasetFailoverE2E(t *testing.T) {
	const spec = "uniform:n=900,seed=5"
	sp, err := dataload.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sp.Points()
	if err != nil {
		t.Fatal(err)
	}

	const shards, replicas = 3, 2
	servers := make([][]*httptest.Server, shards)
	specParts := make([]string, shards)
	for s := 0; s < shards; s++ {
		h, err := twoknn.NewShardHandler("mesh", pts, s, shards, twoknn.WithBlockCapacity(16))
		if err != nil {
			t.Fatal(err)
		}
		var urls []string
		for r := 0; r < replicas; r++ {
			ep := httptest.NewServer(h)
			t.Cleanup(ep.Close)
			servers[s] = append(servers[s], ep)
			urls = append(urls, ep.URL)
		}
		specParts[s] = strings.Join(urls, "|")
	}
	o := options{
		listen: "127.0.0.1:0",
		datasets: []string{
			"mesh=remote:shards=" + strings.Join(specParts, ";") + ",retry_after_ms=2000",
			"oracle=" + spec,
		},
		index:        "grid",
		policy:       "hash",
		timeout:      10 * time.Second,
		retryAfter:   time.Second,
		probeTimeout: 2 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, &out) }()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced its address; output:\n%s", out.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	query := func(dataset string, k int) server.QueryResponse {
		t.Helper()
		body, err := server.EncodeRequest(&server.KNNSelectRequest{
			Dataset: dataset, F: server.PointArg{X: 5000, Y: 5000}, K: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/query/knn-select", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var q server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dataset %s k=%d: status %d", dataset, k, resp.StatusCode)
		}
		return q
	}
	battery := func(ks ...int) {
		t.Helper()
		for _, k := range ks {
			got, want := query("mesh", k), query("oracle", k)
			g, _ := json.Marshal(got.Points)
			w, _ := json.Marshal(want.Points)
			if string(g) != string(w) {
				t.Fatalf("k=%d: remote answer diverged from oracle:\nremote: %s\noracle: %s", k, g, w)
			}
		}
	}

	battery(1, 5, 12)

	// Kill shard 1's preferred replica for real: the coordinator must fail
	// over to the surviving replica without surfacing an error.
	servers[1][0].Close()
	battery(3, 9, 25)

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mx server.MetricsResponse
	if err := json.NewDecoder(mr.Body).Decode(&mx); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	dm, ok := mx.Datasets["mesh"]
	if !ok || dm.Shards != shards || len(dm.Remote) != shards {
		t.Fatalf("mesh metrics: ok=%v %+v", ok, dm)
	}
	var failovers int64
	for _, sh := range dm.Remote {
		failovers += sh.Failovers
	}
	if failovers == 0 {
		t.Error("no failovers recorded after killing a replica")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancellation")
	}
}
