// Command datagen emits the repository's synthetic datasets as CSV point
// files ("x,y" per line): uniform points, non-overlapping clusters (the
// paper's Section 6.2 synthetic layout), or snapshots from the
// BerlinMOD-substitute traffic simulation.
//
// Usage:
//
//	datagen -kind uniform   -n 100000 -out uniform.csv
//	datagen -kind clustered -clusters 4 -per-cluster 4000 -out clusters.csv
//	datagen -kind berlinmod -n 512000 -seed 7 -out snapshot.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataload"
	"repro/internal/geom"
	"repro/internal/pointio"
)

func main() {
	var (
		kind       = flag.String("kind", "berlinmod", "dataset kind: uniform, clustered, or berlinmod")
		n          = flag.Int("n", 32000, "number of points (uniform, berlinmod)")
		clusters   = flag.Int("clusters", 4, "number of clusters (clustered)")
		perCluster = flag.Int("per-cluster", 4000, "points per cluster (clustered)")
		radius     = flag.Float64("radius", 0, "cluster radius; 0 derives one covering ~5% of the area (clustered)")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "", "output file; empty writes to stdout")
		width      = flag.Float64("width", 10000, "region width")
		height     = flag.Float64("height", 10000, "region height")
	)
	flag.Parse()

	if err := run(*kind, *n, *clusters, *perCluster, *radius, *seed, *out, *width, *height); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(kind string, n, clusters, perCluster int, radius float64, seed int64, out string, width, height float64) error {
	bounds := geom.NewRect(0, 0, width, height)

	// Generation goes through the shared dataset loader (internal/dataload,
	// the same specs knnserve and knnquery accept); its generators fill
	// pre-sized columnar stores the CSV writer streams out without
	// materializing []geom.Point.
	sp := dataload.Spec{
		Kind:       dataload.Kind(kind),
		N:          n,
		Clusters:   clusters,
		PerCluster: perCluster,
		Radius:     radius,
		Bounds:     bounds,
		Seed:       seed,
	}
	switch sp.Kind {
	case dataload.Uniform, dataload.Clustered, dataload.BerlinMOD:
	default:
		return fmt.Errorf("unknown kind %q (want uniform, clustered, or berlinmod)", kind)
	}
	st, err := sp.Store()
	if err != nil {
		return err
	}

	if out == "" {
		return pointio.WriteStore(os.Stdout, st)
	}
	if err := pointio.WriteFileStore(out, st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d points to %s\n", st.Len(), out)
	return nil
}
