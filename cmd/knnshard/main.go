// Command knnshard serves one shard of a dataset over the HTTP/JSON
// shard-probe protocol — the worker side of the distributed scatter/gather
// deployment whose coordinator is knnserve with a remote: dataset spec.
//
// Every shard process loads the FULL dataset spec and partitions it locally
// with the same deterministic policy as the coordinator's layout, so stable
// point IDs are global input positions and all processes derive identical
// partitions without any shard-assignment service. Replicas of the same
// shard simply run the same flags on different ports.
//
// Usage:
//
//	knnshard -listen :9101 -name trips -data berlinmod:n=100000,seed=7 \
//	    -shard 0 -shards 3 -shard-policy hash -index grid
//
// The process serves /shard/v1/{info,blocks,block,neighborhood,
// neighborhood-within,count-closer} plus /healthz and /metrics, and drains
// cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	twoknn "repro"
	"repro/internal/dataload"
	"repro/internal/server"
)

// options carries the parsed flags; run is separated from main so tests can
// drive the full serve lifecycle with a cancelable context.
type options struct {
	listen       string
	name         string
	data         string
	shard        int
	shards       int
	index        string
	blockCap     int
	policy       string
	maxSearchers int
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:9100", "address to listen on")
	flag.StringVar(&o.name, "name", "", "dataset name served to the coordinator (defaults to the spec string)")
	flag.StringVar(&o.data, "data", "", "full dataset spec (file:points.csv, berlinmod:n=...,seed=..., uniform:..., clustered:...); every shard process loads the whole spec and serves only its partition")
	flag.IntVar(&o.shard, "shard", 0, "which shard of the partition this process serves (0-based)")
	flag.IntVar(&o.shards, "shards", 1, "total shard count of the layout")
	flag.StringVar(&o.index, "index", "grid", "index kind: grid, quadtree, rtree, kdtree")
	flag.IntVar(&o.blockCap, "block-capacity", 0, "points per index block (0 = engine default)")
	flag.StringVar(&o.policy, "shard-policy", "hash", "partitioning policy: hash or spatial (must match every other shard and the coordinator)")
	flag.IntVar(&o.maxSearchers, "max-searchers", 0, "bound this shard's searcher pool (0 = unbounded)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knnshard:", err)
		os.Exit(1)
	}
}

// newHandler loads the spec and builds the shard's probe handler.
func newHandler(o options) (http.Handler, error) {
	if o.data == "" {
		return nil, fmt.Errorf("-data spec is required")
	}
	name := o.name
	if name == "" {
		name = o.data
	}
	kind, err := server.ParseIndexKind(o.index)
	if err != nil {
		return nil, err
	}
	policy, err := server.ParseShardPolicy(o.policy)
	if err != nil {
		return nil, err
	}
	sp, err := dataload.Parse(o.data)
	if err != nil {
		return nil, err
	}
	pts, err := sp.Points()
	if err != nil {
		return nil, fmt.Errorf("loading dataset (%s): %w", sp, err)
	}
	opts := []twoknn.RelationOption{
		twoknn.WithIndexKind(kind),
		twoknn.WithShardPolicy(policy),
	}
	if o.blockCap > 0 {
		opts = append(opts, twoknn.WithBlockCapacity(o.blockCap))
	}
	if o.maxSearchers > 0 {
		opts = append(opts, twoknn.WithMaxSearchers(o.maxSearchers))
	}
	return twoknn.NewShardHandler(name, pts, o.shard, o.shards, opts...)
}

func run(ctx context.Context, o options, stdout io.Writer) error {
	h, err := newHandler(o)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "knnshard: shard %d/%d listening on http://%s\n", o.shard, o.shards, ln.Addr())

	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Drain in-flight probes; each is bounded by its coordinator's
		// per-probe deadline, so a short grace period suffices.
		fmt.Fprintln(stdout, "knnshard: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shCtx)
	case err := <-errc:
		return err
	}
}
