package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/dataload"
)

func TestNewHandlerValidation(t *testing.T) {
	base := func() options {
		return options{data: "uniform:n=200,seed=3", index: "grid", policy: "hash", shards: 2}
	}
	t.Run("requires data", func(t *testing.T) {
		o := base()
		o.data = ""
		if _, err := newHandler(o); err == nil || !strings.Contains(err.Error(), "-data") {
			t.Fatalf("err = %v, want a -data requirement", err)
		}
	})
	t.Run("rejects bad spec", func(t *testing.T) {
		o := base()
		o.data = "warpdrive:n=5"
		if _, err := newHandler(o); err == nil {
			t.Fatal("bad spec accepted")
		}
	})
	t.Run("rejects bad index", func(t *testing.T) {
		o := base()
		o.index = "btree"
		if _, err := newHandler(o); err == nil {
			t.Fatal("bad index accepted")
		}
	})
	t.Run("rejects shard out of range", func(t *testing.T) {
		o := base()
		o.shard = 2
		if _, err := newHandler(o); err == nil {
			t.Fatal("shard index == shard count accepted")
		}
	})
	t.Run("builds a valid shard", func(t *testing.T) {
		o := base()
		o.shard = 1
		o.policy = "spatial"
		o.blockCap = 16
		o.maxSearchers = 4
		if _, err := newHandler(o); err != nil {
			t.Fatal(err)
		}
	})
}

// syncBuffer makes run's stdout readable while the server goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^ \n]+)`)

// startShard runs one knnshard process-equivalent on an ephemeral port and
// returns its base URL.
func startShard(t *testing.T, ctx context.Context, o options) string {
	t.Helper()
	o.listen = "127.0.0.1:0"
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, &out) }()
	t.Cleanup(func() {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("shard %d: run returned %v", o.shard, err)
			}
		case <-time.After(10 * time.Second):
			t.Errorf("shard %d: run did not drain after cancellation", o.shard)
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d never announced its address; output:\n%s", o.shard, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardFleetServesExactAnswers is the binary-level e2e: a 2-shard fleet
// over real TCP, dialed by the coordinator client, must answer kNN queries
// byte-identically to a single local relation over the same dataset spec.
func TestShardFleetServesExactAnswers(t *testing.T) {
	const spec = "uniform:n=600,seed=21"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	urls := make([][]string, 2)
	for s := 0; s < 2; s++ {
		o := options{
			name: "pts", data: spec, shard: s, shards: 2,
			index: "grid", policy: "hash", blockCap: 16,
		}
		urls[s] = []string{startShard(t, ctx, o)}
	}

	// The shard's own health and identity endpoints respond.
	hr, err := http.Get(urls[0][0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
	ir, err := http.Get(urls[0][0] + "/shard/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Name   string `json:"name"`
		Shard  int    `json:"shard"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(ir.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	ir.Body.Close()
	if info.Name != "pts" || info.Shard != 0 || info.Shards != 2 {
		t.Fatalf("info = %+v", info)
	}

	rr, err := twoknn.DialRemote(ctx, "pts", urls, nil)
	if err != nil {
		t.Fatal(err)
	}

	sp, err := dataload.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sp.Points()
	if err != nil {
		t.Fatal(err)
	}
	local, err := twoknn.NewRelation("pts", pts, twoknn.WithBlockCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Len() != local.Len() {
		t.Fatalf("remote Len %d, local %d", rr.Len(), local.Len())
	}

	for _, f := range []twoknn.Point{{X: 5000, Y: 5000}, {X: 100, Y: 9500}} {
		for _, k := range []int{1, 7, 23} {
			got, err := twoknn.KNNSelect(rr, f, k)
			if err != nil {
				t.Fatalf("remote KNNSelect(%v, %d): %v", f, k, err)
			}
			want, err := twoknn.KNNSelect(local, f, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("KNNSelect(%v, %d): %d vs %d points", f, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("KNNSelect(%v, %d)[%d]: remote %v, local %v", f, k, i, got[i], want[i])
				}
			}
		}
	}

	cancel() // SIGINT/SIGTERM path; the t.Cleanup callbacks assert clean drains
}
