package main

import (
	"testing"

	twoknn "repro"
)

func TestParseIndexKind(t *testing.T) {
	cases := map[string]twoknn.IndexKind{
		"grid":     twoknn.GridIndex,
		"quadtree": twoknn.QuadtreeIndex,
		"rtree":    twoknn.RTreeIndex,
		"kdtree":   twoknn.KDTreeIndex,
	}
	for in, want := range cases {
		got, err := parseIndexKind(in)
		if err != nil || got != want {
			t.Errorf("parseIndexKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseIndexKind("btree"); err == nil {
		t.Errorf("unknown index kind must error")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]twoknn.Algorithm{
		"auto":          twoknn.AlgorithmAuto,
		"conceptual":    twoknn.AlgorithmConceptual,
		"counting":      twoknn.AlgorithmCounting,
		"block-marking": twoknn.AlgorithmBlockMarking,
	}
	for in, want := range cases {
		got, err := parseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("parseAlgorithm(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlgorithm("magic"); err == nil {
		t.Errorf("unknown algorithm must error")
	}
}

func TestRunRejectsUnknownQuery(t *testing.T) {
	err := run(params{query: "teleport", index: "grid", alg: "auto", kJoin: 1, kSel: 1, genN: 10})
	if err == nil {
		t.Fatalf("unknown query must error")
	}
}
