// Command knnquery runs a spatial query with two kNN predicates over CSV
// point files (or generated data) and prints the result together with the
// EXPLAIN tree of the chosen plan and its operation counters.
//
// Query shapes (the -query flag):
//
//	select-inner-join   (E1 ⋈kNN E2) ∩ (E1 × σ_{kSel,f}(E2))   -outer -inner -fx -fy -kjoin -ksel
//	select-outer-join   (σ_{kSel,f}(E1)) ⋈kNN E2               -outer -inner -fx -fy -kjoin -ksel
//	unchained           (A⋈B) ∩B (C⋈B)                          -outer=A -inner=B -third=C -kjoin -ksel(=kCB)
//	chained             A→B→C                                   -outer=A -inner=B -third=C -kjoin(=kAB) -ksel(=kBC)
//	two-selects         σ_{k1,f1}(E) ∩ σ_{k2,f2}(E)             -outer=E -fx -fy -f2x -f2y -kjoin(=k1) -ksel(=k2)
//
// Point files are CSV "x,y" lines (see cmd/datagen). When a file flag is
// empty, a deterministic BerlinMOD-substitute dataset is generated instead,
// so the command is runnable with no inputs at all:
//
//	knnquery -query select-inner-join -kjoin 2 -ksel 2 -fx 5000 -fy 5000
//
// Batched execution: -batch focals.csv switches to the batched kNN-select
// driver — every line of the file is one focal point, k comes from -kjoin,
// and the relation is -outer (or generated). With -addr host:port the batch
// is instead POSTed to a running knnserve's /v1/query/knn-select-batch route
// (-dataset names the server-side dataset), exercising its result cache and
// request coalescing:
//
//	knnquery -batch focals.csv -kjoin 10
//	knnquery -batch focals.csv -kjoin 10 -addr 127.0.0.1:8080 -dataset trips
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	twoknn "repro"
	"repro/internal/dataload"
	"repro/internal/server"
)

func main() {
	var (
		query = flag.String("query", "select-inner-join", "query shape: select-inner-join, select-outer-join, unchained, chained, two-selects")
		outer = flag.String("outer", "", "CSV file for the outer relation (E1/A/E); empty generates data")
		inner = flag.String("inner", "", "CSV file for the inner relation (E2/B); empty generates data")
		third = flag.String("third", "", "CSV file for the third relation (C); empty generates data")
		fx    = flag.Float64("fx", 5000, "focal point x (first predicate)")
		fy    = flag.Float64("fy", 5000, "focal point y (first predicate)")
		f2x   = flag.Float64("f2x", 5100, "second focal point x (two-selects)")
		f2y   = flag.Float64("f2y", 4900, "second focal point y (two-selects)")
		kJoin = flag.Int("kjoin", 2, "k of the join (or k1 for two-selects)")
		kSel  = flag.Int("ksel", 2, "k of the select (kCB/kBC for two joins, k2 for two-selects)")
		alg   = flag.String("algorithm", "auto", "strategy for *-inner-join: auto, conceptual, counting, block-marking")
		index = flag.String("index", "grid", "index kind: grid, quadtree, rtree, kdtree")
		limit = flag.Int("limit", 20, "maximum result rows to print (0 = all)")
		genN  = flag.Int("gen-n", 20000, "points per generated relation when a file flag is empty")
		batch = flag.String("batch", "", "CSV file of focal points: run a batched kNN-select (k from -kjoin) over -outer instead of -query")
		addr  = flag.String("addr", "", "host:port of a running knnserve; with -batch, POST to its /v1/query/knn-select-batch route instead of evaluating in-process")
		dset  = flag.String("dataset", "", "server-side dataset name for -addr mode")
	)
	flag.Parse()

	p := params{
		query: *query, outer: *outer, inner: *inner, third: *third,
		f1: twoknn.Point{X: *fx, Y: *fy}, f2: twoknn.Point{X: *f2x, Y: *f2y},
		kJoin: *kJoin, kSel: *kSel, alg: *alg, index: *index, limit: *limit, genN: *genN,
		batch: *batch, addr: *addr, dataset: *dset,
	}
	err := error(nil)
	if p.batch != "" {
		err = runBatch(p)
	} else {
		err = run(p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnquery:", err)
		os.Exit(1)
	}
}

type params struct {
	query, outer, inner, third string
	f1, f2                     twoknn.Point
	kJoin, kSel                int
	alg, index                 string
	limit, genN                int
	batch, addr, dataset       string
}

func run(p params) error {
	kind, err := parseIndexKind(p.index)
	if err != nil {
		return err
	}
	algorithm, err := parseAlgorithm(p.alg)
	if err != nil {
		return err
	}

	// Datasets load through the same spec/build path the query server uses
	// (internal/server + internal/dataload): an empty file flag falls back
	// to a generated BerlinMOD-substitute spec.
	load := func(name, path string, seed int64) (twoknn.Source, error) {
		spec := dataload.FileSpec(path)
		if path == "" {
			spec = dataload.Spec{Kind: dataload.BerlinMOD, N: p.genN, Seed: seed}
		}
		src, err := server.BuildSource(name, spec, server.BuildOptions{Index: kind})
		if err != nil {
			return nil, err
		}
		fmt.Printf("%s: %d points (%s)\n", name, src.Len(), spec)
		return src, nil
	}

	var explain string
	var st twoknn.Stats
	opts := []twoknn.QueryOption{
		twoknn.WithAlgorithm(algorithm),
		twoknn.WithExplain(&explain),
		twoknn.WithStats(&st),
	}

	switch p.query {
	case "select-inner-join", "select-outer-join":
		outer, err := load("outer", p.outer, 1)
		if err != nil {
			return err
		}
		inner, err := load("inner", p.inner, 2)
		if err != nil {
			return err
		}
		var pairs []twoknn.Pair
		if p.query == "select-inner-join" {
			pairs, err = twoknn.SelectInnerJoin(outer, inner, p.f1, p.kJoin, p.kSel, opts...)
		} else {
			pairs, err = twoknn.SelectOuterJoin(outer, inner, p.f1, p.kSel, p.kJoin, opts...)
		}
		if err != nil {
			return err
		}
		printPlanAndStats(explain, &st)
		printPairs(pairs, p.limit)

	case "unchained", "chained":
		a, err := load("A", p.outer, 1)
		if err != nil {
			return err
		}
		b, err := load("B", p.inner, 2)
		if err != nil {
			return err
		}
		c, err := load("C", p.third, 3)
		if err != nil {
			return err
		}
		var triples []twoknn.Triple
		if p.query == "unchained" {
			triples, err = twoknn.UnchainedJoins(a, b, c, p.kJoin, p.kSel, opts...)
		} else {
			triples, err = twoknn.ChainedJoins(a, b, c, p.kJoin, p.kSel, opts...)
		}
		if err != nil {
			return err
		}
		printPlanAndStats(explain, &st)
		printTriples(triples, p.limit)

	case "two-selects":
		e, err := load("E", p.outer, 1)
		if err != nil {
			return err
		}
		pts, err := twoknn.TwoSelects(e, p.f1, p.kJoin, p.f2, p.kSel, opts...)
		if err != nil {
			return err
		}
		printPlanAndStats(explain, &st)
		printPoints(pts, p.limit)

	default:
		return fmt.Errorf("unknown query %q", p.query)
	}
	return nil
}

// runBatch is the -batch mode: a batched kNN-select over one relation,
// evaluated in-process through twoknn.KNNSelectBatch or POSTed to a running
// knnserve when -addr is set.
func runBatch(p params) error {
	focals, err := dataload.FileSpec(p.batch).Points()
	if err != nil {
		return err
	}
	fmt.Printf("batch: %d focal points, k=%d\n", len(focals), p.kJoin)
	if p.addr != "" {
		return runBatchServed(p, focals)
	}

	kind, err := parseIndexKind(p.index)
	if err != nil {
		return err
	}
	spec := dataload.FileSpec(p.outer)
	if p.outer == "" {
		spec = dataload.Spec{Kind: dataload.BerlinMOD, N: p.genN, Seed: 1}
	}
	src, err := server.BuildSource("E", spec, server.BuildOptions{Index: kind})
	if err != nil {
		return err
	}
	fmt.Printf("E: %d points (%s)\n", src.Len(), spec)

	var explain string
	var st twoknn.Stats
	results, err := twoknn.KNNSelectBatch(src, focals, p.kJoin,
		twoknn.WithExplain(&explain), twoknn.WithStats(&st))
	if err != nil {
		return err
	}
	printPlanAndStats(explain, &st)
	printed := 0
	for i, res := range results {
		if p.limit > 0 && printed >= p.limit {
			fmt.Printf("... (%d more focals)\n", len(results)-i)
			break
		}
		fmt.Printf("focal %d %v: %d neighbors %v\n", i, focals[i], len(res), res)
		printed++
	}
	return nil
}

// runBatchServed sends the focal batch to a knnserve instance.
func runBatchServed(p params, focals []twoknn.Point) error {
	if p.dataset == "" {
		return fmt.Errorf("-addr mode requires -dataset")
	}
	req := server.KNNSelectBatchRequest{Dataset: p.dataset, K: p.kJoin}
	req.Focals = make([]server.PointArg, len(focals))
	for i, f := range focals {
		req.Focals[i] = server.PointArg{X: f.X, Y: f.Y}
	}
	body, err := server.EncodeRequest(&req)
	if err != nil {
		return err
	}
	resp, err := http.Post("http://"+p.addr+"/v1/query/knn-select-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return err
	}
	fmt.Printf("%d result rows across %d focals (cache hits=%d misses=%d)\n",
		qr.Count, len(qr.Batches), qr.Stats.CacheHits, qr.Stats.CacheMisses)
	printed := 0
	for i, rows := range qr.Batches {
		if p.limit > 0 && printed >= p.limit {
			fmt.Printf("... (%d more focals)\n", len(qr.Batches)-i)
			break
		}
		fmt.Printf("focal %d: %d neighbors", i, len(rows))
		for _, row := range rows {
			fmt.Printf("  #%d(%g, %g)", row.ID, row.X, row.Y)
		}
		fmt.Println()
		printed++
	}
	return nil
}

// parseIndexKind and parseAlgorithm delegate to the server package's shared
// flag parsers, so knnserve, knnquery and the wire codec accept the same
// vocabulary.
func parseIndexKind(s string) (twoknn.IndexKind, error) { return server.ParseIndexKind(s) }

func parseAlgorithm(s string) (twoknn.Algorithm, error) { return server.ParseAlgorithm(s) }

func printPlanAndStats(explain string, st *twoknn.Stats) {
	fmt.Println("\nEXPLAIN")
	fmt.Print(explain)
	fmt.Printf("counters: %s\n\n", st)
}

func printPairs(pairs []twoknn.Pair, limit int) {
	twoknn.SortPairs(pairs)
	fmt.Printf("%d result pairs\n", len(pairs))
	for i, pr := range pairs {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more)\n", len(pairs)-limit)
			return
		}
		fmt.Printf("  %v  %v\n", pr.Left, pr.Right)
	}
}

func printTriples(triples []twoknn.Triple, limit int) {
	twoknn.SortTriples(triples)
	fmt.Printf("%d result triples\n", len(triples))
	for i, tr := range triples {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more)\n", len(triples)-limit)
			return
		}
		fmt.Printf("  %v  %v  %v\n", tr.A, tr.B, tr.C)
	}
}

func printPoints(pts []twoknn.Point, limit int) {
	twoknn.SortPoints(pts)
	fmt.Printf("%d result points\n", len(pts))
	for i, p := range pts {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more)\n", len(pts)-limit)
			return
		}
		fmt.Printf("  %v\n", p)
	}
}
