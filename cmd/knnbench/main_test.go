package main

import (
	"strings"
	"testing"
)

func TestSelectExperimentsAllFigures(t *testing.T) {
	exps, err := selectExperiments("", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 8 {
		t.Fatalf("default selection has %d experiments, want the 8 figures", len(exps))
	}
}

func TestSelectExperimentsAblations(t *testing.T) {
	exps, err := selectExperiments("", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 12 {
		t.Fatalf("ablation selection has %d experiments, want 12", len(exps))
	}
}

func TestParseShardCounts(t *testing.T) {
	got, err := parseShardCounts("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseShardCounts = %v, %v", got, err)
	}
	for _, bad := range []string{"", ",,", "0", "-2", "x"} {
		if _, err := parseShardCounts(bad); err == nil {
			t.Errorf("parseShardCounts(%q) must error", bad)
		}
	}
}

func TestSelectExperimentsParallel(t *testing.T) {
	exps, err := selectExperiments("", false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "abl-parallel" || exps[1].ID != "abl-contention" {
		t.Fatalf("parallel selection = %v, want abl-parallel and abl-contention", exps)
	}
	if _, err := selectExperiments("19", false, true); err == nil {
		t.Fatal("-fig combined with -parallel must error instead of silently dropping one")
	}
}

func TestSelectExperimentsByNumber(t *testing.T) {
	exps, err := selectExperiments("19, 26", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "fig19" || exps[1].ID != "fig26" {
		t.Fatalf("selection = %v", exps)
	}
}

func TestSelectExperimentsMixed(t *testing.T) {
	exps, err := selectExperiments("fig22,abl-index", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[1].ID != "abl-index" {
		t.Fatalf("selection = %v", exps)
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	_, err := selectExperiments("99", false, false)
	if err == nil {
		t.Fatal("unknown figure must error")
	}
	if !strings.Contains(err.Error(), "fig19") {
		t.Errorf("error should list known experiments, got %v", err)
	}
}

func TestSelectExperimentsEmptyTokens(t *testing.T) {
	if _, err := selectExperiments(",,", false, false); err == nil {
		t.Fatal("empty selection must error")
	}
}
