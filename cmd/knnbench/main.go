// Command knnbench regenerates the figures of the paper's evaluation
// section (Figures 19–26) as text tables: for every figure it runs the
// competing query evaluation plans over the benchmark workloads, verifies
// that all plans return identical result cardinalities, and prints the
// measured series next to the paper's expected qualitative outcome.
//
// Usage:
//
//	knnbench                    # run every figure at the reduced CI scale
//	knnbench -fig 19            # run one figure
//	knnbench -fig 19,26         # run a subset
//	knnbench -scale paper       # the paper's cardinalities (slow by design:
//	                            # the conceptual baselines are the point)
//	knnbench -stats             # append operation-counter columns
//	knnbench -json out.json     # also write the results as machine-readable
//	                            # JSON (the BENCH_PR*.json trajectory files)
//	knnbench -parallel          # run only the concurrency experiments:
//	                            # parallel-join worker scaling and the
//	                            # contention sweep (pooled searcher handles
//	                            # vs a mutex-guarded searcher at 1/4/16
//	                            # goroutines), recorded in BENCH_PR2.json
//	knnbench -fig abl-shards    # the sharded scatter/gather ablation
//	   -shards 1,2,4,8          # (shard-count sweep override), recorded in
//	                            # BENCH_PR4.json
//	knnbench -fig abl-cancel    # the cancellation-checkpoint ablation
//	   -json BENCH_PR6.json     # (kNN-join on an unbound handle vs a live
//	                            # bound context), recorded in BENCH_PR6.json
//	knnbench -timeout 10m       # bound the run's wall-clock budget: once it
//	                            # elapses, no further experiment starts, the
//	                            # partial JSON report is still written, and
//	                            # the command exits non-zero
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		figFlag      = flag.String("fig", "", "comma-separated figure numbers or ablation ids to run (e.g. \"19,26,abl-index\"); empty = all figures")
		ablFlag      = flag.Bool("ablations", false, "run the ablation experiments (contour stop, index families, parallel join, contention)")
		parallelFlag = flag.Bool("parallel", false, "run only the concurrency experiments (parallel-join scaling and the 1/4/16-goroutine contention sweep)")
		scaleFlag    = flag.String("scale", "ci", "workload scale: \"ci\" (reduced, minutes) or \"paper\" (full cardinalities)")
		statsFlag    = flag.Bool("stats", false, "print machine-independent operation counters per plan")
		jsonFlag     = flag.String("json", "", "path to write the results as machine-readable JSON")
		shardsFlag   = flag.String("shards", "", "comma-separated shard counts for the abl-shards sweep (e.g. \"1,2,4\"; default 1,2,4,8)")
		timeoutFlag  = flag.Duration("timeout", 0, "wall-clock budget for the whole run, checked between experiments (0 = no limit); on expiry the partial JSON report is still written and the exit code is non-zero")
	)
	flag.Parse()

	if *shardsFlag != "" {
		counts, err := parseShardCounts(*shardsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench:", err)
			os.Exit(1)
		}
		bench.ShardCounts = counts
	}

	if err := run(*figFlag, *ablFlag, *parallelFlag, *scaleFlag, *statsFlag, *jsonFlag, *timeoutFlag); err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}
}

// parseShardCounts parses the -shards list.
func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards: %q is not a positive shard count", tok)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards: no shard counts given")
	}
	return out, nil
}

func run(figs string, ablations, parallel bool, scaleName string, withStats bool, jsonPath string, timeout time.Duration) error {
	scale, err := bench.ParseScale(scaleName)
	if err != nil {
		return err
	}

	selected, err := selectExperiments(figs, ablations, parallel)
	if err != nil {
		return err
	}

	// The -timeout budget is cooperative at experiment granularity: a started
	// experiment runs to completion (its plans must agree on cardinalities to
	// be reportable), but no new experiment starts past the deadline.
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}

	var timedOut error
	var results []*bench.Result
	for i, e := range selected {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			var skipped []string
			for _, s := range selected[i:] {
				skipped = append(skipped, s.ID)
			}
			timedOut = fmt.Errorf("-timeout %v exceeded; skipped %s", timeout, strings.Join(skipped, ", "))
			break
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("running %s ...\n", e.ID)
		res, err := bench.Run(e, scale)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		if withStats {
			printStats(res)
		}
		if jsonPath != "" {
			results = append(results, res)
		}
	}
	if jsonPath != "" && len(results) > 0 {
		if err := bench.NewJSONReport(scale, results).WriteFile(jsonPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote JSON report to %s\n", jsonPath)
	}
	return timedOut
}

func selectExperiments(figs string, ablations, parallel bool) ([]bench.Experiment, error) {
	if figs != "" && parallel {
		return nil, fmt.Errorf("-parallel selects the concurrency experiments and cannot be combined with -fig; use -fig abl-parallel,abl-contention to mix")
	}
	if figs == "" {
		switch {
		case parallel:
			return bench.ParallelExperiments, nil
		case ablations:
			return bench.Ablations, nil
		}
		return bench.Experiments, nil
	}
	var out []bench.Experiment
	for _, tok := range strings.Split(figs, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		id := tok
		if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "abl") {
			id = "fig" + id
		}
		e, ok := bench.AnyByID(id)
		if !ok {
			var known []string
			for _, k := range bench.Experiments {
				known = append(known, k.ID)
			}
			for _, k := range bench.Ablations {
				known = append(known, k.ID)
			}
			return nil, fmt.Errorf("unknown experiment %q (known: %s)", tok, strings.Join(known, ", "))
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return out, nil
}

func printStats(res *bench.Result) {
	fmt.Println("\noperation counters (machine-independent evidence):")
	for _, row := range res.Rows {
		for _, name := range res.PlanNames() {
			fmt.Printf("  %s=%s %-18s %s\n", res.Experiment.XLabel, row.X, name, row.Stats[name])
		}
	}
}
