package twoknn_test

import (
	"math/rand"
	"sort"
	"testing"

	twoknn "repro"
	"repro/internal/continuous"
)

// TestContinuousBridgeDifferential drives one mutation stream through both
// mutability layers the repo now has — the event-emitting continuous
// monitors (internal/continuous, single-writer, point-identity) and the
// snapshot-queryable mutable Relation (delta overlay, stable IDs) — and
// holds their answers identical at every step. The monitors incrementally
// maintain σ_{k,f} and σ∩σ; the mutable relation answers the same
// predicates from scratch on its current snapshot. Agreement means the two
// update paths implement the same query semantics over the same stream.
func TestContinuousBridgeDifferential(t *testing.T) {
	bounds := twoknn.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(77))
	fresh := func() twoknn.Point {
		// Distinct coordinates so point-identity removal on the continuous
		// side picks the same point as ID-based removal on the mutable side.
		return twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	base := make([]twoknn.Point, 400)
	for i := range base {
		base[i] = fresh()
	}

	cont, err := continuous.NewRelation(bounds, 8, 8, base)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := twoknn.NewRelation("bridge", base,
		twoknn.WithBlockCapacity(16), twoknn.WithCompactThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	// Live bookkeeping: the ID of every live point, by value (all distinct).
	idOf := make(map[twoknn.Point]int32, len(base))
	live := make([]twoknn.Point, len(base))
	copy(live, base)
	for i, p := range base {
		idOf[p] = int32(i)
	}

	f1 := twoknn.Point{X: 420, Y: 380}
	f2 := twoknn.Point{X: 600, Y: 610}
	const k1, k2 = 9, 7
	sel, err := cont.MonitorSelect(f1, k1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := cont.MonitorTwoSelects(f1, k1, f2, k2)
	if err != nil {
		t.Fatal(err)
	}

	sorted := func(ps []twoknn.Point) []twoknn.Point {
		out := append([]twoknn.Point(nil), ps...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].X != out[j].X {
				return out[i].X < out[j].X
			}
			return out[i].Y < out[j].Y
		})
		return out
	}
	equal := func(a, b []twoknn.Point) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	compare := func(step int) {
		t.Helper()
		if cont.Len() != rel.Len() {
			t.Fatalf("step %d: continuous Len %d != mutable Len %d", step, cont.Len(), rel.Len())
		}
		wantSel, err := rel.KNNSelect(f1, k1)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got := sorted(sel.Current()); !equal(got, sorted(wantSel)) {
			t.Fatalf("step %d: select monitor diverges from mutable relation\nmonitor %v\nsnapshot %v",
				step, got, sorted(wantSel))
		}
		wantTwo, err := twoknn.TwoSelects(rel, f1, k1, f2, k2)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got := sorted(two.Current()); !equal(got, sorted(wantTwo)) {
			t.Fatalf("step %d: two-select monitor diverges from mutable relation\nmonitor %v\nsnapshot %v",
				step, got, sorted(wantTwo))
		}
	}

	compare(-1)
	for step := 0; step < 300; step++ {
		switch step % 4 {
		case 0, 1: // insert
			p := fresh()
			if err := cont.Insert(p); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			ids := rel.Insert(p)
			idOf[p] = ids[0]
			live = append(live, p)
		case 2: // remove a random live point
			i := rng.Intn(len(live))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !cont.Remove(p) {
				t.Fatalf("step %d: continuous Remove(%v) missed a live point", step, p)
			}
			if n := rel.Remove(idOf[p]); n != 1 {
				t.Fatalf("step %d: mutable Remove(%d) = %d", step, idOf[p], n)
			}
			delete(idOf, p)
		default: // move a random live point
			i := rng.Intn(len(live))
			from, to := live[i], fresh()
			if err := cont.Move(from, to); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !rel.Update(idOf[from], to) {
				t.Fatalf("step %d: mutable Update(%d) missed a live point", step, idOf[from])
			}
			idOf[to] = idOf[from]
			delete(idOf, from)
			live[i] = to
		}
		sel.Drain() // events are the monitors' output; the bridge only checks state
		two.Drain()
		if step%10 == 9 {
			compare(step)
		}
		if step == 149 { // mid-stream merge must not perturb the differential
			if err := rel.Compact(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := rel.Compact(); err != nil {
		t.Fatal(err)
	}
	compare(300)
}
