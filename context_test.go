package twoknn_test

// The cancellation battery: every query entry point, against every backing
// (single relation, hash-sharded, spatial-sharded), under every way a
// context can end a query (already cancelled at entry, cancelled mid-query
// by a deterministic fault-injection hook, deadline expiring mid-query).
// Every case asserts the typed error chain — ErrQueryCanceled plus the
// context's own error — that no partial result escapes, and that every
// borrowed searcher handle is back in its pool afterwards.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/fault"
)

// batteryPoints is a clustered point set big enough that every entry point
// crosses many block-scan checkpoints (≈2000 points, ≈32 blocks per backing
// at the default block capacity).
func batteryPoints(tb testing.TB) []twoknn.Point {
	tb.Helper()
	rng := rand.New(rand.NewSource(61))
	pts := make([]twoknn.Point, 0, 2000)
	for i := 0; i < 2000; i++ {
		pts = append(pts, twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	return pts
}

// cancelBacking is one backing under test: a Source factory plus its
// outstanding-handle introspection for the leak assertion.
type cancelBacking struct {
	name        string
	src         twoknn.Source
	outstanding func() int
}

func batteryBackings(tb testing.TB, pts []twoknn.Point) []cancelBacking {
	tb.Helper()
	single, err := twoknn.NewRelation("single", pts)
	if err != nil {
		tb.Fatal(err)
	}
	hash, err := twoknn.NewShardedRelation("hash", pts, 4)
	if err != nil {
		tb.Fatal(err)
	}
	spatial, err := twoknn.NewShardedRelation("spatial", pts, 4, twoknn.WithShardPolicy(twoknn.SpatialSharding))
	if err != nil {
		tb.Fatal(err)
	}
	return []cancelBacking{
		{"single", single, single.OutstandingSearchers},
		{"hash-sharded", hash, hash.OutstandingSearchers},
		{"spatial-sharded", spatial, spatial.OutstandingSearchers},
	}
}

// cancelEntry runs one public entry point over src, returning the result
// cardinality. Queries use src for every operand, so each backing exercises
// its own execution path end to end.
type cancelEntry struct {
	name string
	run  func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error)
}

var batteryFocal = twoknn.Point{X: 500, Y: 500}

func batteryEntries() []cancelEntry {
	f, f2 := batteryFocal, twoknn.Point{X: 120, Y: 840}
	rng := twoknn.NewRect(200, 200, 800, 800)
	return []cancelEntry{
		{"KNNSelect", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			switch s := src.(type) {
			case *twoknn.Relation:
				pts, err := s.KNNSelect(f, 10, opts...)
				return len(pts), err
			case *twoknn.ShardedRelation:
				pts, err := s.KNNSelect(f, 10, opts...)
				return len(pts), err
			}
			panic("unknown source type")
		}},
		{"KNNJoin", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			pairs, err := twoknn.KNNJoin(src, src, 4, opts...)
			return len(pairs), err
		}},
		{"KNNJoin-parallel", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			pairs, err := twoknn.KNNJoin(src, src, 4, append(opts, twoknn.WithConcurrency(4))...)
			return len(pairs), err
		}},
		{"SelectInnerJoin", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			pairs, err := twoknn.SelectInnerJoin(src, src, f, 4, 50, opts...)
			return len(pairs), err
		}},
		{"SelectInnerJoin-parallel", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			pairs, err := twoknn.SelectInnerJoin(src, src, f, 4, 50, append(opts, twoknn.WithConcurrency(4))...)
			return len(pairs), err
		}},
		{"SelectOuterJoin", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			pairs, err := twoknn.SelectOuterJoin(src, src, f, 50, 4, opts...)
			return len(pairs), err
		}},
		{"TwoSelects", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			pts, err := twoknn.TwoSelects(src, f, 40, f2, 60, opts...)
			return len(pts), err
		}},
		{"UnchainedJoins", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			ts, err := twoknn.UnchainedJoins(src, src, src, 3, 3, opts...)
			return len(ts), err
		}},
		{"ChainedJoins", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			ts, err := twoknn.ChainedJoins(src, src, src, 3, 3, opts...)
			return len(ts), err
		}},
		{"ChainedJoins-parallel", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			ts, err := twoknn.ChainedJoins(src, src, src, 3, 3, append(opts, twoknn.WithConcurrency(4))...)
			return len(ts), err
		}},
		{"RangeInnerJoin", func(src twoknn.Source, opts ...twoknn.QueryOption) (int, error) {
			pairs, err := twoknn.RangeInnerJoin(src, src, rng, 4, opts...)
			return len(pairs), err
		}},
	}
}

// cancelMode prepares a context and (optionally) arms the fault-injection
// harness, returning the context and the context error the query must
// surface.
type cancelMode struct {
	name  string
	setup func(tb testing.TB) (context.Context, error)
}

func batteryModes() []cancelMode {
	return []cancelMode{
		{"already-cancelled", func(tb testing.TB) (context.Context, error) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			return ctx, context.Canceled
		}},
		{"cancel-mid-query", func(tb testing.TB) (context.Context, error) {
			// Deterministic: the injection harness cancels at the second
			// block-scan checkpoint — strictly after the entry point's
			// fail-fast check admitted the query.
			ctx, cancel := context.WithCancel(context.Background())
			tb.Cleanup(cancel)
			fault.CancelAfterBlocks(2, cancel)
			tb.Cleanup(fault.Disarm)
			return ctx, context.Canceled
		}},
		{"deadline-mid-query", func(tb testing.TB) (context.Context, error) {
			// The first checkpoint sleeps past the deadline, so the deadline
			// observably expires mid-query (or, on a slow machine, at entry —
			// the surfaced error chain is identical either way).
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			tb.Cleanup(cancel)
			var once sync.Once
			fault.Arm(&fault.Injector{BlockScan: func(uint64) {
				once.Do(func() { time.Sleep(25 * time.Millisecond) })
			}})
			tb.Cleanup(fault.Disarm)
			return ctx, context.DeadlineExceeded
		}},
	}
}

func TestCancellationBattery(t *testing.T) {
	pts := batteryPoints(t)
	backings := batteryBackings(t, pts)
	for _, entry := range batteryEntries() {
		for _, bk := range backings {
			for _, mode := range batteryModes() {
				t.Run(entry.name+"/"+bk.name+"/"+mode.name, func(t *testing.T) {
					ctx, wantCause := mode.setup(t)
					n, err := entry.run(bk.src, twoknn.WithContext(ctx))
					if err == nil {
						t.Fatalf("query completed (%d results); want cancellation", n)
					}
					if !errors.Is(err, twoknn.ErrQueryCanceled) {
						t.Errorf("error %v does not wrap ErrQueryCanceled", err)
					}
					if !errors.Is(err, wantCause) {
						t.Errorf("error %v does not wrap %v", err, wantCause)
					}
					if n != 0 {
						t.Errorf("cancelled query leaked %d partial results", n)
					}
					fault.Disarm() // before the leak check: hooks must not outlive the case
					if out := bk.outstanding(); out != 0 {
						t.Errorf("%d searcher handles leaked", out)
					}
				})
			}
		}
	}
}

// TestContextCompletesUnderDeadline is the positive control: a generous
// deadline changes nothing — results equal the context-free evaluation.
func TestContextCompletesUnderDeadline(t *testing.T) {
	pts := batteryPoints(t)
	for _, bk := range batteryBackings(t, pts) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		want, err := twoknn.KNNJoin(bk.src, bk.src, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := twoknn.KNNJoin(bk.src, bk.src, 3, twoknn.WithContext(ctx))
		if err != nil {
			t.Fatalf("%s: %v", bk.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d pairs with context, %d without", bk.name, len(got), len(want))
		}
		if out := bk.outstanding(); out != 0 {
			t.Fatalf("%s: %d searcher handles leaked", bk.name, out)
		}
	}
}
