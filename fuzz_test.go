package twoknn_test

import (
	"math"
	"reflect"
	"testing"

	twoknn "repro"
	"repro/internal/locality"
)

// Native fuzz targets (go test -fuzz) for the two query shapes with the
// subtlest pruning machinery: TwoSelects (clipped localities) and
// SelectInnerJoin (Counting / Block-Marking). The oracle is NaiveKNN — sort
// all points by the canonical (distance, X, Y) order and take k — composed
// per the conceptual plans, so every optimized strategy AND the sharded
// scatter/gather path are differentially checked against brute force on
// fuzzer-chosen point sets, foci and k values.
//
// Point coordinates are quantized to a coarse grid (float64(byte) * 4), so
// the fuzzer hits exact distance ties and co-located duplicate points — the
// regimes where tie-breaking and multiset semantics can silently diverge.
// Seed corpora live under testdata/fuzz/<target>/.

var fuzzBounds = twoknn.NewRect(0, 0, 1024, 1024)

// fuzzPoints decodes two bytes per point on a coarse grid, capped at max.
func fuzzPoints(data []byte, max int) []twoknn.Point {
	n := len(data) / 2
	if n > max {
		n = max
	}
	pts := make([]twoknn.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, twoknn.Point{
			X: float64(data[2*i]) * 4,
			Y: float64(data[2*i+1]) * 4,
		})
	}
	return pts
}

// fuzzFocal sanitizes a fuzzer-chosen coordinate: non-finite values are
// rejected, large magnitudes folded into a window around the data bounds so
// thresholds stay meaningful.
func fuzzFocal(x, y float64) (twoknn.Point, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return twoknn.Point{}, false
	}
	fold := func(v float64) float64 {
		if v > 1e6 || v < -1e6 {
			v = math.Mod(v, 2048)
		}
		return v
	}
	return twoknn.Point{X: fold(x), Y: fold(y)}, true
}

func fuzzRelations(t *testing.T, name string, pts []twoknn.Point) (*twoknn.Relation, []twoknn.Source) {
	t.Helper()
	single, err := twoknn.NewRelation(name, pts,
		twoknn.WithBounds(fuzzBounds), twoknn.WithBlockCapacity(8))
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	kd, err := twoknn.NewRelation(name, pts,
		twoknn.WithBounds(fuzzBounds), twoknn.WithBlockCapacity(8),
		twoknn.WithIndexKind(twoknn.KDTreeIndex))
	if err != nil {
		t.Fatalf("NewRelation(kdtree): %v", err)
	}
	hash3, err := twoknn.NewShardedRelation(name, pts, 3,
		twoknn.WithBounds(fuzzBounds), twoknn.WithBlockCapacity(8))
	if err != nil {
		t.Fatalf("NewShardedRelation(hash): %v", err)
	}
	spatial2, err := twoknn.NewShardedRelation(name, pts, 2,
		twoknn.WithBounds(fuzzBounds), twoknn.WithBlockCapacity(8),
		twoknn.WithShardPolicy(twoknn.SpatialSharding))
	if err != nil {
		t.Fatalf("NewShardedRelation(spatial): %v", err)
	}
	return single, []twoknn.Source{single, kd, hash3, spatial2}
}

func sortedCopy(pts []twoknn.Point) []twoknn.Point {
	out := append([]twoknn.Point(nil), pts...)
	twoknn.SortPoints(out)
	return out
}

// FuzzTwoSelects checks σ_{k1,f1} ∩ σ_{k2,f2} — every backing and algorithm
// — against the naive intersection of two brute-force neighborhoods.
func FuzzTwoSelects(f *testing.F) {
	f.Add([]byte("spatial queries with two knn predicates"), uint8(3), uint8(9), 100.0, 200.0, 700.0, 650.0)
	f.Add([]byte{10, 10, 10, 10, 10, 10, 200, 200}, uint8(2), uint8(2), 40.0, 40.0, 40.0, 40.0)
	f.Add([]byte{0, 0, 255, 255, 0, 255, 255, 0, 128, 128}, uint8(1), uint8(40), 512.0, 512.0, 0.0, 0.0)
	// Tie-on-bound: (512, 508) and (516, 512) are exactly equidistant from
	// f2 = (512, 512), and that distance is exactly the clip threshold the
	// 2-kNN-select derives from k1 = 1 — the regime where a kernel whose
	// bound compare differed from the scalar path by one ulp (or used < for
	// <=) would drop an answer point.
	f.Add([]byte{128, 127, 129, 128, 128, 128, 64, 64}, uint8(1), uint8(3), 512.0, 512.0, 512.0, 512.0)

	f.Fuzz(func(t *testing.T, data []byte, k1b, k2b uint8, x1, y1, x2, y2 float64) {
		pts := fuzzPoints(data, 160)
		if len(pts) == 0 {
			return
		}
		f1, ok1 := fuzzFocal(x1, y1)
		f2, ok2 := fuzzFocal(x2, y2)
		if !ok1 || !ok2 {
			return
		}
		k1 := int(k1b%48) + 1
		k2 := int(k2b%48) + 1

		nbr1 := locality.NaiveKNN(pts, f1, k1)
		nbr2 := locality.NaiveKNN(pts, f2, k2)
		oracle := sortedCopy(nbr1.Intersect(nbr2))

		_, backings := fuzzRelations(t, "fuzz", pts)
		for i, rel := range backings {
			for _, alg := range []twoknn.Algorithm{twoknn.AlgorithmAuto, twoknn.AlgorithmConceptual} {
				got, err := twoknn.TwoSelects(rel, f1, k1, f2, k2, twoknn.WithAlgorithm(alg))
				if err != nil {
					t.Fatalf("backing %d alg %v: %v", i, alg, err)
				}
				if !reflect.DeepEqual(sortedCopy(got), oracle) {
					t.Fatalf("backing %d alg %v: TwoSelects diverges from naive oracle\n pts=%v\n f1=%v k1=%d f2=%v k2=%d\n got  %v\n want %v",
						i, alg, pts, f1, k1, f2, k2, sortedCopy(got), oracle)
				}
			}
		}
	})
}

// FuzzSelectInnerJoin checks (outer ⋈kNN inner) ∩ (outer × σ_{kSel,f}(inner))
// — every backing and strategy — against the brute-force join-then-filter.
func FuzzSelectInnerJoin(f *testing.F) {
	f.Add([]byte("two knn predicates over one inner relation!"), uint8(2), uint8(5), 300.0, 400.0)
	f.Add([]byte{50, 50, 51, 51, 52, 52, 200, 10, 10, 200, 128, 128}, uint8(1), uint8(1), 210.0, 210.0)
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255, 7, 7, 9, 9}, uint8(4), uint8(3), 28.0, 36.0)
	// Tie-on-bound: inner points (512, 508) and (516, 512) exactly
	// equidistant from the focal point (512, 512); the Counting algorithm's
	// per-tuple threshold then lands exactly on block boundaries, where a
	// kernel comparing one ulp off the scalar path would change the prune.
	f.Add([]byte{128, 127, 129, 128, 128, 128, 64, 64, 192, 192}, uint8(2), uint8(2), 512.0, 512.0)

	f.Fuzz(func(t *testing.T, data []byte, kjb, ksb uint8, fx, fy float64) {
		if len(data) < 4 {
			return
		}
		half := len(data) / 2
		outerPts := fuzzPoints(data[:half], 120)
		innerPts := fuzzPoints(data[half:], 120)
		if len(outerPts) == 0 || len(innerPts) == 0 {
			return
		}
		focal, ok := fuzzFocal(fx, fy)
		if !ok {
			return
		}
		kJoin := int(kjb%12) + 1
		kSel := int(ksb%16) + 1

		// Brute-force oracle: per-outer-point naive neighborhood, filtered by
		// membership in the naive select set.
		sel := locality.NaiveKNN(innerPts, focal, kSel)
		var oracle []twoknn.Pair
		for _, e1 := range outerPts {
			nbr := locality.NaiveKNN(innerPts, e1, kJoin)
			for _, e2 := range nbr.Points {
				if sel.Contains(e2) {
					oracle = append(oracle, twoknn.Pair{Left: e1, Right: e2})
				}
			}
		}
		twoknn.SortPairs(oracle)

		_, outerBackings := fuzzRelations(t, "outer", outerPts)
		_, innerBackings := fuzzRelations(t, "inner", innerPts)
		algs := []twoknn.Algorithm{twoknn.AlgorithmConceptual, twoknn.AlgorithmCounting, twoknn.AlgorithmBlockMarking}
		for i := range outerBackings {
			for _, alg := range algs {
				got, err := twoknn.SelectInnerJoin(outerBackings[i], innerBackings[i], focal, kJoin, kSel,
					twoknn.WithAlgorithm(alg))
				if err != nil {
					t.Fatalf("backing %d alg %v: %v", i, alg, err)
				}
				twoknn.SortPairs(got)
				if len(got) == 0 && len(oracle) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, oracle) {
					t.Fatalf("backing %d alg %v: SelectInnerJoin diverges from naive oracle\n outer=%v\n inner=%v\n f=%v kJoin=%d kSel=%d\n got  %d pairs %v\n want %d pairs %v",
						i, alg, outerPts, innerPts, focal, kJoin, kSel, len(got), got, len(oracle), oracle)
				}
			}
		}
	})
}
