package twoknn_test

// One testing.B benchmark per figure of the paper's evaluation section
// (Figures 19–26). Every benchmark fans out into sub-benchmarks
// <x-value>/<plan>, so `go test -bench=Fig19` prints the same series the
// paper plots, with ns/op as the execution-time axis. Dataset construction
// is memoized inside internal/bench and excluded from timing via
// b.ResetTimer.
//
// The cmd/knnbench executable runs the same experiments and prints them as
// aligned tables, including the paper's expected qualitative outcome per
// figure; `-scale=paper` switches to the paper's cardinalities.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
)

// benchScale lets `go test -bench . -tags` stay at CI scale; the paper
// scale is driven through cmd/knnbench where a progress report is printed.
const benchScale = bench.ScaleCI

func runFigure(b *testing.B, id string) {
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for _, c := range exp.Cases(benchScale) {
		for _, p := range c.Plans {
			p := p
			b.Run(fmt.Sprintf("%s=%s/%s", exp.XLabel, c.X, p.Name), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Run(nil)
				}
			})
		}
	}
}

// BenchmarkFig19 measures the conceptual QEP vs Block-Marking for a
// kNN-select on the inner relation of a kNN-join, sweeping |outer|.
func BenchmarkFig19(b *testing.B) { runFigure(b, "fig19") }

// BenchmarkFig20 measures Counting vs Block-Marking at low outer
// cardinalities (Counting's regime).
func BenchmarkFig20(b *testing.B) { runFigure(b, "fig20") }

// BenchmarkFig21 measures Counting vs Block-Marking at high outer
// cardinalities (Block-Marking's regime).
func BenchmarkFig21(b *testing.B) { runFigure(b, "fig21") }

// BenchmarkFig22 measures the conceptual vs Block-Marking plans for two
// unchained kNN-joins with a clustered A, sweeping |C|.
func BenchmarkFig22(b *testing.B) { runFigure(b, "fig22") }

// BenchmarkFig23 measures the join-order effect for two unchained kNN-joins
// with clustered A and C, sweeping the cluster-count gap.
func BenchmarkFig23(b *testing.B) { runFigure(b, "fig23") }

// BenchmarkFig24 measures the nested-join chained QEP with vs without the
// neighborhood cache, sweeping data size.
func BenchmarkFig24(b *testing.B) { runFigure(b, "fig24") }

// BenchmarkFig25 measures the nested (cached) vs join-intersection chained
// QEPs with clustered B, sweeping the number of clusters.
func BenchmarkFig25(b *testing.B) { runFigure(b, "fig25") }

// BenchmarkFig26 measures the conceptual vs 2-kNN-select plans for two
// kNN-select predicates, sweeping log2(k2/k1).
func BenchmarkFig26(b *testing.B) { runFigure(b, "fig26") }

// BenchmarkAblationPreprocess measures contour vs exhaustive Block-Marking
// preprocessing (a design-choice ablation beyond the paper's figures).
func BenchmarkAblationPreprocess(b *testing.B) { runAblation(b, "abl-preprocess") }

// BenchmarkAblationIndexKinds measures the Block-Marking select-inner-join
// over all four index families.
func BenchmarkAblationIndexKinds(b *testing.B) { runAblation(b, "abl-index") }

// BenchmarkAblationParallelJoin measures kNN-join worker scaling.
func BenchmarkAblationParallelJoin(b *testing.B) { runAblation(b, "abl-parallel") }

func runAblation(b *testing.B, id string) {
	exp, ok := bench.AnyByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for _, c := range exp.Cases(benchScale) {
		for _, p := range c.Plans {
			p := p
			b.Run(fmt.Sprintf("%s=%s/%s", exp.XLabel, c.X, p.Name), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Run(nil)
				}
			})
		}
	}
}
