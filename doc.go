// Package twoknn is a Go implementation of the query-processing algorithms
// from "Spatial Queries with Two kNN Predicates" (Ahmed M. Aly, Walid G.
// Aref, Mourad Ouzzani; PVLDB 5(11), VLDB 2012).
//
// The package evaluates spatial queries that combine TWO k-nearest-neighbor
// predicates over sets of 2-D points — the combinations where classical
// optimizer rewrites silently change query answers:
//
//   - a kNN-select on the inner relation of a kNN-join (SelectInnerJoin):
//     pushing the select below the join is invalid; the package evaluates it
//     correctly with the paper's Counting or Block-Marking algorithms, which
//     are orders of magnitude faster than the conceptual plan;
//   - a kNN-select on the outer relation of a kNN-join (SelectOuterJoin):
//     the pushdown is valid and is what the implementation does;
//   - two unchained kNN-joins sharing their inner relation (UnchainedJoins):
//     both joins are evaluated independently and intersected on the shared
//     relation, with Candidate/Safe block pruning and automatic join
//     ordering by cluster coverage;
//   - two chained kNN-joins A→B→C (ChainedJoins): evaluated with the
//     nested-join plan and a neighborhood cache;
//   - two kNN-selects over one relation (TwoSelects): evaluated with the
//     2-kNN-select algorithm that clips the larger predicate's locality;
//   - a rectangular range selection on the inner relation of a kNN-join
//     (RangeInnerJoin): the paper's footnote-1 extension.
//
// # Quick start
//
//	hotels, _ := twoknn.NewRelation("hotels", hotelPoints)
//	shops, _ := twoknn.NewRelation("mechanics", shopPoints)
//
//	// (mechanic, hotel) pairs where the hotel is among the 2 nearest to the
//	// mechanic AND among the 2 nearest to the shopping center.
//	pairs, err := twoknn.SelectInnerJoin(shops, hotels, shoppingCenter, 2, 2)
//
// Relations are built once over a point snapshot and indexed with a uniform
// grid by default; quadtree and R-tree indexes are available through
// WithIndexKind — the algorithms are index-agnostic, as in the paper.
//
// All query functions accept options: WithAlgorithm forces a strategy,
// WithStats collects operation counters, WithExplain captures an EXPLAIN
// tree of the chosen plan, WithConcurrency fans the join algorithms out
// across pooled searchers.
//
// # Determinism
//
// Exact distance ties are broken by (distance, X, Y) everywhere, so every
// evaluation strategy for a query returns the identical result set, and
// results are reproducible across runs.
//
// # Concurrency
//
// Every query entry point — KNNSelect, KNNJoin, SelectInnerJoin,
// SelectOuterJoin, TwoSelects, UnchainedJoins, ChainedJoins,
// RangeInnerJoin — is safe to call from any number of goroutines against
// the same *Relation values. A Relation's data is versioned in immutable
// snapshots (see Mutability below); the mutable
// searcher scratch (iterator pools, selection heap, result buffer) lives
// in per-goroutine handles managed by an internal searcher pool. At entry
// a query borrows one handle for each relation whose searcher it actually
// probes (relations that are only scanned, like the outer of a join, cost
// nothing) and returns it on exit, so concurrent queries never share
// mutable state, and in steady state the borrowing allocates nothing.
//
// The pool is unbounded by default: a burst of N concurrent queries grows
// it to N handles, which are then recycled (and eventually collected when
// idle). WithMaxSearchers(n) bounds it instead — at most n handles ever
// exist, fixing the relation's scratch memory at n·O(handle); queries
// beyond the bound block until a handle frees up. This is the explicit
// space–time tradeoff of concurrent serving: more handles, more in-flight
// queries, more resident scratch.
//
// Two levels of parallelism compose:
//
//   - inter-query: many goroutines each run their own query against shared
//     relations (a server's natural shape);
//   - intra-query: WithConcurrency(n) fans one join's tuple batches out
//     across n workers, each borrowing its own handle; per-worker arena
//     buffers make the result byte-identical to the sequential evaluation,
//     including order.
//
// Stats counters are atomic, so one *Stats may accumulate across
// concurrent queries. Clone remains available to give a long-lived
// component a dedicated handle, but is no longer required for correctness.
//
// # Mutability
//
// A Relation accepts in-place mutations: Insert appends points and
// returns their assigned stable IDs, Remove tombstones live IDs, Update
// moves a live point or re-inserts a dead or brand-new ID (an upsert).
// Mutations land in a delta overlay over the immutable base index — an
// append-only columnar side store for inserts, compacted replacement
// blocks for removals — and every query shape reads base and delta
// through the same batched kernels, returning answers byte-identical to a
// from-scratch rebuild of the live set.
//
// The snapshot semantics: readers never lock. Every query entry point
// atomically loads the relation's current snapshot and evaluates entirely
// against it, so a query observes either all of a mutation batch or none
// of it, a batch query answers a repeated focal identically within the
// batch, and a mutation never perturbs a query already in flight (the old
// snapshot stays alive until its last reader finishes). Writers are
// serialized against each other and publish a new snapshot per batch;
// each publish bumps Epoch, which is what invalidates epoch-keyed result
// caches automatically.
//
// When the delta fraction crosses WithCompactThreshold (default 0.25; a
// negative threshold disables the trigger), a background merge rebuilds a
// block-contiguous store and index from the live set and swaps it in;
// Compact forces the merge synchronously. Compaction does not change the
// live set, so it does not bump the epoch, and post-merge reads are
// indistinguishable from a never-mutated relation — flat spans, SIMD
// scans, zero allocations steady-state. DeltaStats reports the epoch,
// delta residency, tombstone count and lifetime mutation/compaction
// totals. ShardedRelation does not accept mutations yet; partition
// routing of writes is an open roadmap item.
//
// # Robustness
//
// Every query entry point is cancellable and deadline-aware through
// WithContext(ctx): the selection scans, join loops and sharded probes
// checkpoint the bound context once per index-block span — never per
// point, so the batched distance kernels run uninterrupted and the hot
// paths keep their zero-allocation property. A query whose context ends
// mid-flight stops within a block scan and returns an error wrapping both
// ErrQueryCanceled and the context's own error; no partial results escape,
// every borrowed searcher handle returns to its pool, and the operation
// counters recorded before the abort are still folded into WithStats
// targets. The checkpoint costs one atomic flag load: a per-binding
// watcher goroutine waits on the context's channel off the query path.
//
// On a WithMaxSearchers-bounded relation the context also bounds the wait
// for a free handle — the shed-load contract documented on
// ErrSearchersExhausted. OutstandingSearchers on both relation types
// reports the handles currently out, for leak checks and load metrics.
//
// Worker panics are isolated: a panic in any parallel worker or sharded
// probe is recovered at its goroutine boundary, the remaining workers
// stand down, handles are released, counters are folded, and the caller
// receives a *QueryPanicError (wrapping ErrQueryPanic) carrying the panic
// value and the panicking goroutine's stack. The process never crashes on
// a query-internal panic. The internal/fault package provides the
// deterministic injection hooks (cancel-after-N-blocks, panic-at-block-M,
// slow-shard-probe, pool-acquire) that the cancellation battery and chaos
// suite use to verify all of the above under the race detector.
//
// # Serving
//
// The engine is servable over HTTP/JSON: cmd/knnserve holds one named
// dataset (a Relation or ShardedRelation built from a dataset spec) per
// -dataset flag and exposes all eight query entry points as POST routes
// under /v1/query/, plus /metrics and /healthz. The wire layer
// (internal/server) carries results as stable int32 point IDs plus
// coordinates and adds nothing to the answer — an end-to-end differential
// battery holds every served route byte-identical (after canonical sort)
// to the direct in-process call.
//
// The error taxonomy above maps directly onto statuses: a bounded pool's
// ErrSearchersExhausted (and the server's own per-dataset inflight gate)
// sheds load as 429 with a Retry-After hint; an expired request budget —
// the server's -timeout, a dataset's timeout_ms/max_timeout_ms spec
// segments and the request's own timeout_ms resolved by the min rule,
// flowed into the engine via WithContext — surfaces ErrQueryCanceled as
// 504; a remote dataset's shard unreachable through its whole replica set
// (ErrShardUnavailable) is 503 with a Retry-After hint; an
// isolated *QueryPanicError returns 500 with the process still serving;
// ErrNilRelation (unknown dataset) and ErrNonPositiveK are 400s. Request
// decoding is strict (unknown fields and trailing bytes are rejected) and
// fuzzed for lossless round-tripping. See the README's "Serving" section
// for curl-able examples of every query shape.
//
// # Batched execution and result caching
//
// KNNSelectBatch and TwoSelectsBatch evaluate many focal points against one
// Source in a single call. The batch driver (internal/batch) sorts the
// focals into Z-order, partitions them into spatially compact groups, and
// walks the index once per group instead of once per query: a MAXDIST
// counting pass establishes a per-focal search bound, then one shared
// MINDIST block walk scans each block against every still-active focal of
// the group through the batched distance kernels — the longer effective
// spans are exactly the shape the SIMD layer wants. Per-focal results are
// byte-identical to calling KNNSelect in a loop (a differential matrix and
// the FuzzKNNSelectBatch target enforce this across index kinds and
// sharded sources), the driver's scratch is pooled so steady-state batch
// evaluation allocates nothing per query, and the abl-batch experiment of
// cmd/knnbench records the amortization curve (BENCH_PR8.json).
//
// Above the driver sits an epoch-guarded result cache. Relation and
// ShardedRelation carry a monotonic dataset epoch (Epoch reads it;
// Invalidate bumps it by hand, and on a Relation every Insert, Remove and
// Update batch bumps it automatically);
// internal/qcache memoizes (epoch, focal, k, shape) →
// stable-ID answers in a bounded, sharded-lock map whose hit path
// allocates nothing. Because the epoch is part of the key, invalidation is
// O(1) and stale entries can never be served. Cache probes are counted by
// the CacheHits/CacheMisses stats counters; the serving layer exposes them
// per dataset on /metrics, serves repeated focals from the cache on the
// POST /v1/query/knn-select-batch route, and coalesces identical
// concurrent requests into one evaluation (single-flight).
//
// # Sharding
//
// NewShardedRelation partitions one logical point set across S shards,
// each an independently indexed sub-relation with its own columnar store,
// spatial index and searcher pool. Every query function accepts any mix of
// *Relation and *ShardedRelation operands (the Source interface); sharded
// operands execute by scatter/gather — per-shard candidate generation
// fanned out with WithConcurrency-style bounded parallelism, then an exact
// merge that re-selects the global k by the repository-wide
// (distance, X, Y) tie order. The guarantee is exactness, not
// approximation: the global k nearest neighbors of any point are a subset
// of the union of the per-shard k nearest, so the merged answer — and
// every query shape built on it — is byte-identical to the single-relation
// evaluation (join shapes are returned in canonical SortPairs/SortTriples
// order; KNNSelect and TwoSelects keep the single-relation order). A
// differential oracle suite enforces this across shard counts, both
// partitioning policies, all four index kinds and uniform/clustered data.
//
// Two partitioning policies are available through WithShardPolicy:
// HashSharding (default) scatters points by a hash of their stable ID for
// tight size balance, and SpatialSharding tiles space STR-style so each
// shard owns a compact tile — probes then skip shards whose bounds lie
// strictly farther than k already-gathered candidates, keeping distant
// tiles free. Stable point IDs are global: a point keeps its input
// position as identity no matter which shard indexes it. Per-shard
// lifetime operation counters and their aggregate are available through
// ShardedRelation.Snapshot; WithMaxSearchers bounds each shard's pool
// individually.
//
// Internally (relevant only to code using the internal packages): a
// locality.Neighborhood returned by a Searcher is owned by that searcher
// and valid only until its next query — retain it across queries with
// Clone. That rule is what makes the pool handles allocation-free.
//
// # Distribution
//
// The scatter/gather seam crosses process boundaries. DialRemote connects
// to a fleet of shard servers (cmd/knnshard, each serving one shard's
// candidate-generation contract over an HTTP/JSON probe protocol) and
// returns a *RemoteRelation — a Source accepted by every query entry
// point. The coordinator-side merge, MINDIST-ordered shard skip and
// Block-Marking thresholds are the same code as the in-process sharded
// path; squared distances and coordinates cross the wire as shortest
// round-trip JSON float64s, so remote answers are byte-identical to local
// ones, and Block-Marking's exclusions double as network-transfer pruning.
// Every shard process loads the full dataset spec and partitions locally
// with the same deterministic policy, so stable IDs remain global input
// positions with no shard-assignment service.
//
// Each remote probe travels under a robustness envelope configured by
// RemoteConfig: a per-probe deadline, bounded retries with exponential
// backoff and jitter, a hedged second request once the probe outlives the
// fleet's observed latency quantile, a per-endpoint circuit breaker
// (closed/open/half-open with probe-through), and failover across a
// shard's replica endpoints in breaker-aware order. By default an
// unreachable shard fails the query closed — exact or nothing — with an
// error wrapping ErrShardUnavailable; WithPartialResults opts a query into
// graceful degradation instead, returning the reachable shards' exact
// answer alongside a *PartialResultError naming the missing shards.
// RemoteRelation.RemoteStats snapshots the per-endpoint
// attempt/retry/hedge/breaker/failover counters that the serving layer
// republishes on /metrics. The differential batteries hold every query
// shape byte-identical across in-process, loopback-transport and
// multi-process deployments, including under injected faults (the
// internal/fault hooks DropProbe, DelayProbe, ResetConn and
// CorruptResponse) with replicas standing in.
//
// # Performance notes
//
// The kNN primitive underneath every query — one neighborhood computation
// per tuple — is allocation-free in steady state. Each searcher owns its
// MINDIST/MAXDIST block iterators (reset per query instead of rebuilt), a
// bounded selection heap, and a single reusable result buffer; block-level
// pruning skips blocks whose MINDIST exceeds the running k-th-neighbor
// distance.
//
// The reuse imposes an ownership contract on the internal layers: a
// locality.Neighborhood returned by a Searcher is valid only until the next
// query on that searcher, so callers that retain results must copy them out
// (Neighborhood.Clone). The public API of this package is unaffected —
// query functions return freshly allocated result slices the caller owns.
// Allocation regressions are guarded by testing.AllocsPerRun tests in
// internal/locality and internal/core, and the hot-path benchmarks
// (go test -bench 'KNNJoin|Neighborhood') are recorded per PR in the
// BENCH_PR*.json files at the repository root.
//
// # Memory layout
//
// Point storage is columnar (structure-of-arrays): each Relation owns one
// flat PointStore — separate X and Y float64 columns plus a parallel
// stable-ID column — that its index permuted into block-contiguous order at
// build time. An index block is a (offset, length) span into that store,
// not a slice of Point structs. The layout exists for the distance-scan
// inner loop, the dominant cost of every query shape once allocations and
// lock contention are gone: scanning two contiguous float64 arrays streams
// through the cache at full line utilization and compiles to straight-line
// arithmetic with no struct loads, where the former array-of-structs
// layout made every candidate a 16-byte strided struct copy behind a
// per-block slice header. The abl-layout experiment of cmd/knnbench
// measures both layouts over identical blocks and is recorded in the
// BENCH_PR3.json trajectory file.
//
// The permutation is invisible to results (the cross-layout equivalence
// tests in internal/core pin byte-identical answers on all index families)
// and is inverted by stable point IDs: a point's ID is its position in the
// slice passed to NewRelation, fixed for the relation's lifetime and
// independent of which index kind placed it where. PointID, PointAt,
// PointIDs and PointByID expose the mapping. Stable IDs are the identity
// primitive layers above snapshots build on — streaming results by ID,
// sharding relations and gathering per-shard answers, or diffing
// consecutive snapshots — without pinning any particular index layout.
//
// # Vectorized kernels
//
// The distance-scan primitive the columnar layout was built for — squared
// distance of a query point to every point of a block span, compared
// against a bound — runs through one batched kernel layer
// (internal/kernel) instead of per-call-site loops. The layer provides
// DistSq (span → scratch distances), CountWithin (fused bounded count),
// MinDistSq/ArgMinDistSq (fused nearest-candidate reductions) and
// SelectWithin (compress-store of qualifying lane indices), each with a
// pure-Go scalar reference and a hand-written AVX2 implementation selected
// at init by CPUID feature detection on amd64. The locality searcher's
// selection-heap feed batches span distances into per-searcher scratch and,
// once the heap holds k candidates, compress-selects only the lanes that
// can displace one; the Counting algorithm's per-tuple search threshold is
// one fused MinDistSq over the flattened σ-neighborhood; radius filters
// and the sharded probes ride the same layer.
//
// Three properties make the fast paths safe to dispatch silently:
//
//   - Bit-exactness: the AVX2 kernels perform the scalar loop's float64
//     operations in the same per-lane order with no FMA contraction, and
//     bound comparisons use ordered predicates (NaN never qualifies), so
//     every kernel returns bit-identical results and the repository-wide
//     (distance, X, Y) tie order — hence every query answer — is unchanged.
//     A cross-kernel equivalence matrix (all query shapes × index kinds ×
//     single/sharded sources) and a kernel-level fuzz target enforce this.
//   - Grain-adaptive dispatch: spans shorter than kernel.BatchGrain
//     (32 lanes on AVX2) keep fused scalar loops — the assembly call's
//     fixed cost exceeds the vector win on tiny blocks — so block-capacity
//     tuning, not correctness, decides how much SIMD a workload sees.
//   - An always-available escape hatch: building with `-tags purego`
//     removes the assembly entirely and runs the scalar reference, which CI
//     exercises as a first-class configuration; on AVX2 hosts CI asserts
//     the fast path actually dispatched (kernel.Active() == "avx2").
//
// The abl-kernel experiment of cmd/knnbench records scalar-vs-AVX2 numbers
// per scan grain and query shape (BENCH_PR5.json), alongside per-kernel
// micro-benchmarks in internal/kernel.
package twoknn
