// Package twoknn is a Go implementation of the query-processing algorithms
// from "Spatial Queries with Two kNN Predicates" (Ahmed M. Aly, Walid G.
// Aref, Mourad Ouzzani; PVLDB 5(11), VLDB 2012).
//
// The package evaluates spatial queries that combine TWO k-nearest-neighbor
// predicates over sets of 2-D points — the combinations where classical
// optimizer rewrites silently change query answers:
//
//   - a kNN-select on the inner relation of a kNN-join (SelectInnerJoin):
//     pushing the select below the join is invalid; the package evaluates it
//     correctly with the paper's Counting or Block-Marking algorithms, which
//     are orders of magnitude faster than the conceptual plan;
//   - a kNN-select on the outer relation of a kNN-join (SelectOuterJoin):
//     the pushdown is valid and is what the implementation does;
//   - two unchained kNN-joins sharing their inner relation (UnchainedJoins):
//     both joins are evaluated independently and intersected on the shared
//     relation, with Candidate/Safe block pruning and automatic join
//     ordering by cluster coverage;
//   - two chained kNN-joins A→B→C (ChainedJoins): evaluated with the
//     nested-join plan and a neighborhood cache;
//   - two kNN-selects over one relation (TwoSelects): evaluated with the
//     2-kNN-select algorithm that clips the larger predicate's locality;
//   - a rectangular range selection on the inner relation of a kNN-join
//     (RangeInnerJoin): the paper's footnote-1 extension.
//
// # Quick start
//
//	hotels, _ := twoknn.NewRelation("hotels", hotelPoints)
//	shops, _ := twoknn.NewRelation("mechanics", shopPoints)
//
//	// (mechanic, hotel) pairs where the hotel is among the 2 nearest to the
//	// mechanic AND among the 2 nearest to the shopping center.
//	pairs, err := twoknn.SelectInnerJoin(shops, hotels, shoppingCenter, 2, 2)
//
// Relations are built once over a point snapshot and indexed with a uniform
// grid by default; quadtree and R-tree indexes are available through
// WithIndexKind — the algorithms are index-agnostic, as in the paper.
//
// All query functions accept options: WithAlgorithm forces a strategy,
// WithStats collects operation counters, WithExplain captures an EXPLAIN
// tree of the chosen plan.
//
// # Determinism
//
// Exact distance ties are broken by (distance, X, Y) everywhere, so every
// evaluation strategy for a query returns the identical result set, and
// results are reproducible across runs.
//
// # Concurrency
//
// A Relation holds reusable search buffers and must not be used from
// multiple goroutines concurrently; Clone creates an independent handle
// sharing the same immutable index.
//
// # Performance notes
//
// The kNN primitive underneath every query — one neighborhood computation
// per tuple — is allocation-free in steady state. Each searcher owns its
// MINDIST/MAXDIST block iterators (reset per query instead of rebuilt), a
// bounded selection heap, and a single reusable result buffer; block-level
// pruning skips blocks whose MINDIST exceeds the running k-th-neighbor
// distance.
//
// The reuse imposes an ownership contract on the internal layers: a
// locality.Neighborhood returned by a Searcher is valid only until the next
// query on that searcher, so callers that retain results must copy them out
// (Neighborhood.Clone). The public API of this package is unaffected —
// query functions return freshly allocated result slices the caller owns.
// Allocation regressions are guarded by testing.AllocsPerRun tests in
// internal/locality and internal/core, and the hot-path benchmarks
// (go test -bench 'KNNJoin|Neighborhood') are recorded per PR in the
// BENCH_PR*.json files at the repository root.
package twoknn
