package twoknn_test

import (
	"errors"
	"fmt"
	"testing"

	twoknn "repro"
	"repro/internal/datagen"
)

// TestArgumentValidation locks the argument-validation contract of all eight
// public query entry points (KNNSelect on both backings, KNNJoin,
// SelectInnerJoin, SelectOuterJoin, TwoSelects, UnchainedJoins,
// ChainedJoins, RangeInnerJoin):
//
//   - any nil relation argument (nil interface or typed nil pointer) returns
//     an error wrapping ErrNilRelation;
//   - any non-positive k parameter returns an error wrapping
//     ErrNonPositiveK;
//   - empty relations (zero points, built with WithBounds) are NOT an
//     error: queries succeed and return empty results.
func TestArgumentValidation(t *testing.T) {
	bounds := twoknn.NewRect(0, 0, 100, 100)
	f := twoknn.Point{X: 50, Y: 50}
	rng := twoknn.NewRect(10, 10, 60, 60)
	pts := datagen.Uniform(40, bounds, 1)

	rel, err := twoknn.NewRelation("r", pts, twoknn.WithBounds(bounds))
	if err != nil {
		t.Fatal(err)
	}
	srel, err := twoknn.NewShardedRelation("s", pts, 3, twoknn.WithBounds(bounds))
	if err != nil {
		t.Fatal(err)
	}
	empty, err := twoknn.NewRelation("empty", nil, twoknn.WithBounds(bounds))
	if err != nil {
		t.Fatal(err)
	}
	sempty, err := twoknn.NewShardedRelation("sempty", nil, 2, twoknn.WithBounds(bounds))
	if err != nil {
		t.Fatal(err)
	}

	// Each entry invokes one public function with three relation slots (the
	// unused ones are ignored) and its k parameters taken from ks.
	type entry struct {
		name    string
		numRels int
		numKs   int
		// size reports the result cardinality (for the empty-relation
		// checks) alongside the error.
		invoke func(a, b, c twoknn.Source, ks []int) (int, error)
	}
	entries := []entry{
		{"KNNSelect", 1, 1, func(a, _, _ twoknn.Source, ks []int) (int, error) {
			switch r := a.(type) {
			case *twoknn.Relation:
				out, err := r.KNNSelect(f, ks[0])
				return len(out), err
			case *twoknn.ShardedRelation:
				out, err := r.KNNSelect(f, ks[0])
				return len(out), err
			default:
				// nil interface: exercise the method on a typed nil receiver.
				var r2 *twoknn.Relation
				out, err := r2.KNNSelect(f, ks[0])
				return len(out), err
			}
		}},
		{"KNNJoin", 2, 1, func(a, b, _ twoknn.Source, ks []int) (int, error) {
			out, err := twoknn.KNNJoin(a, b, ks[0])
			return len(out), err
		}},
		{"SelectInnerJoin", 2, 2, func(a, b, _ twoknn.Source, ks []int) (int, error) {
			out, err := twoknn.SelectInnerJoin(a, b, f, ks[0], ks[1])
			return len(out), err
		}},
		{"SelectOuterJoin", 2, 2, func(a, b, _ twoknn.Source, ks []int) (int, error) {
			out, err := twoknn.SelectOuterJoin(a, b, f, ks[0], ks[1])
			return len(out), err
		}},
		{"TwoSelects", 1, 2, func(a, _, _ twoknn.Source, ks []int) (int, error) {
			out, err := twoknn.TwoSelects(a, f, ks[0], twoknn.Point{X: 60, Y: 40}, ks[1])
			return len(out), err
		}},
		{"UnchainedJoins", 3, 2, func(a, b, c twoknn.Source, ks []int) (int, error) {
			out, err := twoknn.UnchainedJoins(a, b, c, ks[0], ks[1])
			return len(out), err
		}},
		{"ChainedJoins", 3, 2, func(a, b, c twoknn.Source, ks []int) (int, error) {
			out, err := twoknn.ChainedJoins(a, b, c, ks[0], ks[1])
			return len(out), err
		}},
		{"RangeInnerJoin", 2, 1, func(a, b, _ twoknn.Source, ks []int) (int, error) {
			out, err := twoknn.RangeInnerJoin(a, b, rng, ks[0])
			return len(out), err
		}},
	}

	validKs := func(n int) []int {
		ks := make([]int, n)
		for i := range ks {
			ks[i] = 2
		}
		return ks
	}
	nils := map[string]twoknn.Source{
		"nil-interface":   nil,
		"typed-nil":       (*twoknn.Relation)(nil),
		"typed-nil-shard": (*twoknn.ShardedRelation)(nil),
	}

	for _, e := range entries {
		for _, backing := range []struct {
			name      string
			full, nul twoknn.Source
		}{
			{"single", rel, empty},
			{"sharded", srel, sempty},
		} {
			t.Run(fmt.Sprintf("%s/%s", e.name, backing.name), func(t *testing.T) {
				args := func(slot int, v twoknn.Source) (a, b, c twoknn.Source) {
					a, b, c = backing.full, backing.full, backing.full
					switch slot {
					case 0:
						a = v
					case 1:
						b = v
					case 2:
						c = v
					}
					return
				}

				// Valid arguments succeed.
				if _, err := e.invoke(backing.full, backing.full, backing.full, validKs(e.numKs)); err != nil {
					t.Fatalf("valid call errored: %v", err)
				}

				// Every relation slot, every flavor of nil.
				for slot := 0; slot < e.numRels; slot++ {
					for nilName, v := range nils {
						a, b, c := args(slot, v)
						_, err := e.invoke(a, b, c, validKs(e.numKs))
						if !errors.Is(err, twoknn.ErrNilRelation) {
							t.Errorf("slot %d %s: got %v, want ErrNilRelation", slot, nilName, err)
						}
					}
				}

				// Every k slot, zero and negative.
				for kSlot := 0; kSlot < e.numKs; kSlot++ {
					for _, bad := range []int{0, -3} {
						ks := validKs(e.numKs)
						ks[kSlot] = bad
						_, err := e.invoke(backing.full, backing.full, backing.full, ks)
						if !errors.Is(err, twoknn.ErrNonPositiveK) {
							t.Errorf("k slot %d = %d: got %v, want ErrNonPositiveK", kSlot, bad, err)
						}
					}
				}

				// Empty relations: no error, empty result, in every slot and
				// in all slots at once.
				for slot := 0; slot < e.numRels; slot++ {
					a, b, c := args(slot, backing.nul)
					if _, err := e.invoke(a, b, c, validKs(e.numKs)); err != nil {
						t.Errorf("empty relation in slot %d errored: %v", slot, err)
					}
				}
				n, err := e.invoke(backing.nul, backing.nul, backing.nul, validKs(e.numKs))
				if err != nil {
					t.Errorf("all-empty call errored: %v", err)
				}
				if n != 0 {
					t.Errorf("all-empty call returned %d results", n)
				}
			})
		}
	}
}

// TestShardCountValidation locks NewShardedRelation's construction errors.
func TestShardCountValidation(t *testing.T) {
	pts := datagen.Uniform(10, twoknn.NewRect(0, 0, 10, 10), 1)
	for _, s := range []int{0, -1} {
		_, err := twoknn.NewShardedRelation("bad", pts, s)
		if !errors.Is(err, twoknn.ErrInvalidShardCount) {
			t.Errorf("shards=%d: got %v, want ErrInvalidShardCount", s, err)
		}
	}
	_, err := twoknn.NewShardedRelation("empty", nil, 2)
	if !errors.Is(err, twoknn.ErrEmptyRelation) {
		t.Errorf("empty without bounds: got %v, want ErrEmptyRelation", err)
	}
}
