package twoknn_test

// Runnable godoc examples for the query entry points. Each example uses a
// tiny hand-laid point set so the expected output is obvious from the
// geometry; `go test` executes them, so the documented behavior is pinned
// by CI.

import (
	"context"
	"errors"
	"fmt"
	"log"

	twoknn "repro"
)

// ExampleKNNJoin joins every taxi to its nearest charging station.
func ExampleKNNJoin() {
	taxis, err := twoknn.NewRelation("taxis", []twoknn.Point{
		{X: 1, Y: 1}, {X: 4, Y: 4}, {X: 9, Y: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	stations, err := twoknn.NewRelation("stations", []twoknn.Point{
		{X: 1, Y: 2}, {X: 5, Y: 4}, {X: 9, Y: 9},
	})
	if err != nil {
		log.Fatal(err)
	}

	pairs, err := twoknn.KNNJoin(taxis, stations, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("taxi %v -> station %v\n", p.Left, p.Right)
	}
	// Output:
	// taxi (1, 1) -> station (1, 2)
	// taxi (4, 4) -> station (5, 4)
	// taxi (9, 2) -> station (5, 4)
}

// ExampleTwoSelects finds points that are simultaneously among the nearest
// neighbors of two different focal points — the Section 5 query, which
// cannot be evaluated by chaining the two selects.
func ExampleTwoSelects() {
	sensors, err := twoknn.NewRelation("sensors", []twoknn.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}, {X: 6, Y: 0}, {X: 8, Y: 0},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The 3 nearest to f1=(0,0) are {0,2,4}; the 3 nearest to f2=(8,0) are
	// {8,6,4}. Only x=4 satisfies both predicates.
	pts, err := twoknn.TwoSelects(sensors,
		twoknn.Point{X: 0, Y: 0}, 3,
		twoknn.Point{X: 8, Y: 0}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pts)
	// Output:
	// [(4, 0)]
}

// ExampleChainedJoins walks a chain of joins: each delivery van to its
// nearest warehouse, and that warehouse to its nearest rail terminal.
func ExampleChainedJoins() {
	vans, err := twoknn.NewRelation("vans", []twoknn.Point{
		{X: 0, Y: 0}, {X: 10, Y: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	warehouses, err := twoknn.NewRelation("warehouses", []twoknn.Point{
		{X: 1, Y: 1}, {X: 9, Y: 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	terminals, err := twoknn.NewRelation("terminals", []twoknn.Point{
		{X: 2, Y: 0}, {X: 8, Y: 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	triples, err := twoknn.ChainedJoins(vans, warehouses, terminals, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range triples {
		fmt.Printf("van %v -> warehouse %v -> terminal %v\n", tr.A, tr.B, tr.C)
	}
	// Output:
	// van (0, 0) -> warehouse (1, 1) -> terminal (2, 0)
	// van (10, 10) -> warehouse (9, 9) -> terminal (8, 10)
}

// ExampleWithConcurrency fans a join's tuple batches out across pooled
// searcher handles; the result is identical to the sequential evaluation,
// including order.
func ExampleWithConcurrency() {
	taxis, err := twoknn.NewRelation("taxis", []twoknn.Point{
		{X: 1, Y: 1}, {X: 4, Y: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	stations, err := twoknn.NewRelation("stations", []twoknn.Point{
		{X: 1, Y: 2}, {X: 5, Y: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	sequential, err := twoknn.KNNJoin(taxis, stations, 1)
	if err != nil {
		log.Fatal(err)
	}
	parallel, err := twoknn.KNNJoin(taxis, stations, 1, twoknn.WithConcurrency(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(sequential) == len(parallel))
	// Output:
	// true
}

// ExampleWithContext bounds a query by a context: a cancelled or expired
// context stops the evaluation within one index-block scan and surfaces a
// typed error chain — here the context is cancelled before the query even
// starts, so it fails fast with no partial results.
func ExampleWithContext() {
	taxis, err := twoknn.NewRelation("taxis", []twoknn.Point{
		{X: 1, Y: 1}, {X: 4, Y: 4}, {X: 9, Y: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	stations, err := twoknn.NewRelation("stations", []twoknn.Point{
		{X: 1, Y: 2}, {X: 5, Y: 4}, {X: 9, Y: 9},
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline handling is identical: context.WithTimeout(...)

	pairs, err := twoknn.KNNJoin(taxis, stations, 1, twoknn.WithContext(ctx))
	fmt.Println(len(pairs))
	fmt.Println(errors.Is(err, twoknn.ErrQueryCanceled))
	fmt.Println(errors.Is(err, context.Canceled))
	// Output:
	// 0
	// true
	// true
}
