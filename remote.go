package twoknn

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/remote"
	"repro/internal/shard"
)

// This file is the distributed-serving surface: a RemoteRelation is a query
// source whose shards live in other processes (cmd/knnshard), reached over
// the HTTP/JSON shard-probe protocol of internal/remote, and NewShardHandler
// is the serving side — one shard of a dataset behind an http.Handler.
//
// Every query entry point accepts a *RemoteRelation wherever it accepts a
// *Relation or *ShardedRelation: the scatter/gather drivers are transport-
// agnostic, so results are byte-identical to in-process execution (the wire
// carries stable IDs, coordinates and squared distances — the exact merge
// keys). Each remote probe runs under a robustness envelope: a per-attempt
// deadline, bounded retries with jittered exponential backoff, a hedged
// second request after the endpoint's observed latency quantile, a
// per-endpoint circuit breaker, and failover across a shard's replicas.
//
// Failure semantics are fail-closed by default — if a shard's whole replica
// set is exhausted the query errors with a chain wrapping
// ErrShardUnavailable — and opt-in degraded with WithPartialResults, which
// returns the merged answer over the reachable shards together with a
// *PartialResultError naming the missing ones.

// ErrShardUnavailable reports that a remote shard's entire replica set
// failed to answer within the robustness envelope (every replica down,
// breaker-shed, or past its deadline). Test with errors.Is; the failing
// shard's index and last transport error are in the message.
var ErrShardUnavailable = remote.ErrUnavailable

// Sentinels for RemoteConfig fields whose zero value means "default": they
// disable the mechanism instead.
const (
	// NoRetries disables retrying failed probe attempts.
	NoRetries = remote.NoRetries

	// NoHedging disables hedged second requests.
	NoHedging = remote.NoHedging

	// NoBreaker disables per-endpoint circuit breakers.
	NoBreaker = remote.NoBreaker
)

// RemoteConfig tunes the robustness envelope around every call to a remote
// shard. The zero value (and a nil *RemoteConfig) means defaults; use the
// No* sentinels to disable a mechanism entirely.
type RemoteConfig struct {
	// ProbeTimeout caps each individual probe attempt; retries, hedges and
	// failover each get a fresh attempt budget, while the query's
	// WithContext deadline bounds the call overall. Default 2s.
	ProbeTimeout time.Duration

	// MaxRetries is the number of extra attempts against one endpoint
	// after a transient failure (connection errors, 5xx, timeouts,
	// malformed responses). Default 2; NoRetries disables.
	MaxRetries int

	// RetryBackoff is the first retry's backoff; it doubles per retry and
	// every sleep is jittered ±50%. Default 5ms.
	RetryBackoff time.Duration

	// HedgeAfter is the floor of the hedging delay: when an attempt has
	// not answered after max(HedgeAfter, the endpoint's observed
	// HedgeQuantile latency), a second request goes to the next healthy
	// replica and the first answer wins. Default 50ms; NoHedging disables.
	HedgeAfter time.Duration

	// HedgeQuantile is the success-latency quantile that can stretch the
	// hedging delay past HedgeAfter. Default 0.9.
	HedgeQuantile float64

	// BreakerThreshold is the consecutive-transient-failure count that
	// trips an endpoint's circuit breaker open (failover then skips the
	// endpoint until BreakerCooldown admits a probe-through). Default 3;
	// NoBreaker disables breakers.
	BreakerThreshold int

	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a single probe-through attempt. Default 1s.
	BreakerCooldown time.Duration

	// HTTPClient overrides the transport's HTTP client (connection
	// pooling, TLS). Leave the client's Timeout zero — the envelope's
	// per-attempt contexts bound every request.
	HTTPClient *http.Client
}

// options lowers the public config onto the envelope's option set.
func (c *RemoteConfig) options() remote.Options {
	if c == nil {
		return remote.Options{}
	}
	return remote.Options{
		ProbeTimeout:     c.ProbeTimeout,
		MaxRetries:       c.MaxRetries,
		RetryBackoff:     c.RetryBackoff,
		HedgeAfter:       c.HedgeAfter,
		HedgeQuantile:    c.HedgeQuantile,
		BreakerThreshold: c.BreakerThreshold,
		BreakerCooldown:  c.BreakerCooldown,
	}
}

// RemoteRelation is a query source whose shards are served by other
// processes. It is a drop-in operand: every query function accepts a
// *RemoteRelation wherever it accepts a *Relation (the Source interface),
// and any mix of local, sharded and remote sources.
//
// The relation snapshots each shard's identity card (cardinality, bounds,
// block headers, epoch) at dial time; the served snapshots are immutable, so
// the view never goes stale. Queries scatter probes through each shard's
// replica-set envelope and gather exactly as the in-process sharded path
// does — including the MINDIST shard skip and Block-Marking's block-level
// pruning, which over remote shards saves network transfer (a pruned
// block's points are never fetched).
type RemoteRelation struct {
	name     string
	kind     IndexKind
	bounds   Rect
	length   int
	epoch    uint64
	members  []*remote.Member
	counters []*Stats

	// pts/ids cache the shards' full point sets (fetched lazily through
	// the block endpoints) for Points/PointIDs — the render-table path of
	// a serving coordinator, never the query path.
	ptsOnce sync.Once
	pts     []Point
	ids     []int32
	ptsErr  error
}

// DialRemote connects to a remote dataset: shards[s] lists shard s's
// replica base URLs, preferred replica first (e.g. "http://host:7001").
// Every shard's identity card is fetched and validated against the layout —
// a mis-wired endpoint (wrong shard index, wrong shard count, inconsistent
// block headers) fails here rather than merging wrong candidates. cfg may
// be nil for defaults.
func DialRemote(ctx context.Context, name string, shards [][]string, cfg *RemoteConfig) (*RemoteRelation, error) {
	var client *http.Client
	if cfg != nil {
		client = cfg.HTTPClient
	}
	if client == nil {
		client = &http.Client{}
	}
	tps := make([][]remote.ShardTransport, len(shards))
	for s, urls := range shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("twoknn: dialing %q: shard %d has no replica URLs", name, s)
		}
		for _, u := range urls {
			tps[s] = append(tps[s], remote.NewHTTPTransport(u, client))
		}
	}
	return dialRemoteTransports(ctx, name, tps, cfg)
}

// dialRemoteTransports is DialRemote below the URL layer; the differential
// tests drive it with loopback transports.
func dialRemoteTransports(ctx context.Context, name string, tps [][]remote.ShardTransport, cfg *RemoteConfig) (*RemoteRelation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	members, err := remote.Dial(ctx, tps, cfg.options())
	if err != nil {
		return nil, fmt.Errorf("twoknn: dialing %q: %w", name, err)
	}
	rr := &RemoteRelation{name: name, members: members, counters: make([]*Stats, len(members))}
	for i, m := range members {
		rr.counters[i] = new(Stats)
		info := m.Info()
		rr.length += info.Len
		rr.epoch += info.Epoch
		if i == 0 {
			rr.bounds = m.Bounds()
			rr.kind = indexKindNamed(info.Index)
		} else {
			rr.bounds = rr.bounds.Union(m.Bounds())
		}
	}
	return rr, nil
}

// indexKindNamed maps a shard's reported index family onto IndexKind
// (diagnostic only; unknown names read as grid).
func indexKindNamed(s string) IndexKind {
	switch s {
	case "quadtree":
		return QuadtreeIndex
	case "rtree":
		return RTreeIndex
	case "kdtree":
		return KDTreeIndex
	default:
		return GridIndex
	}
}

// Name returns the relation's name (given at dial time).
func (rr *RemoteRelation) Name() string { return rr.name }

// Len returns the total number of points across all remote shards.
func (rr *RemoteRelation) Len() int { return rr.length }

// Bounds returns the union of the shards' index bounds.
func (rr *RemoteRelation) Bounds() Rect { return rr.bounds }

// IndexKind returns the index family the shards report serving.
func (rr *RemoteRelation) IndexKind() IndexKind { return rr.kind }

// Epoch implements Source: the sum of the shard snapshots' epochs, fixed at
// dial time (remote shards serve immutable snapshots).
func (rr *RemoteRelation) Epoch() uint64 { return rr.epoch }

// NumShards returns the remote shard count.
func (rr *RemoteRelation) NumShards() int { return len(rr.members) }

// ShardLens returns the per-shard cardinalities, in shard order.
func (rr *RemoteRelation) ShardLens() []int {
	out := make([]int, len(rr.members))
	for i, m := range rr.members {
		out[i] = m.Len()
	}
	return out
}

// execGroup implements Source.
func (rr *RemoteRelation) execGroup() shard.Group {
	counters := make([]*Stats, len(rr.counters))
	copy(counters, rr.counters)
	return remote.NewGroup(rr.members, counters)
}

// singleRelation implements Source.
func (rr *RemoteRelation) singleRelation() *Relation { return nil }

// srcNil implements Source.
func (rr *RemoteRelation) srcNil() bool { return rr == nil }

// KNNSelect returns the k points of the remote relation closest to the
// focal point f; see KNNSelect.
func (rr *RemoteRelation) KNNSelect(f Point, k int, opts ...QueryOption) ([]Point, error) {
	return KNNSelect(rr, f, k, opts...)
}

// fetchPoints materializes every shard's point set through the block
// endpoints, once, for Points/PointIDs.
func (rr *RemoteRelation) fetchPoints() {
	rr.ptsOnce.Do(func() {
		ctx := context.Background()
		for s, m := range rr.members {
			pts, ids, err := m.FetchAllPoints(ctx)
			if err != nil {
				rr.ptsErr = fmt.Errorf("twoknn: fetching shard %d points of %q: %w", s, rr.name, err)
				rr.pts, rr.ids = nil, nil
				return
			}
			rr.pts = append(rr.pts, pts...)
			rr.ids = append(rr.ids, ids...)
		}
	})
}

// Points returns a copy of all points across remote shards, shard 0's
// storage order first — the remote counterpart of ShardedRelation.Points,
// parallel to PointIDs. The point sets are fetched through the shard block
// endpoints once and cached (the served snapshots are immutable); a fetch
// failure surfaces through FetchPoints and reads as an empty slice here.
func (rr *RemoteRelation) Points() []Point {
	rr.fetchPoints()
	return append([]Point(nil), rr.pts...)
}

// PointIDs returns the global stable IDs of all points, parallel to
// Points().
func (rr *RemoteRelation) PointIDs() []int32 {
	rr.fetchPoints()
	return append([]int32(nil), rr.ids...)
}

// FetchPoints is Points/PointIDs with the fetch error: a serving
// coordinator uses it to build render tables eagerly and to surface an
// unreachable shard at registration time.
func (rr *RemoteRelation) FetchPoints() (pts []Point, ids []int32, err error) {
	rr.fetchPoints()
	if rr.ptsErr != nil {
		return nil, nil, rr.ptsErr
	}
	return append([]Point(nil), rr.pts...), append([]int32(nil), rr.ids...), nil
}

// Snapshot returns the per-shard lifetime operation counters and their
// aggregate, exactly as ShardedRelation.Snapshot does — for remote shards
// the counters fold in the wire-reported per-probe deltas, so WithStats and
// /metrics account shard-side work identically across layouts.
func (rr *RemoteRelation) Snapshot() (perShard []ShardStats, total Stats) {
	perShard = make([]ShardStats, len(rr.members))
	for i, m := range rr.members {
		snap := rr.counters[i].Snapshot()
		perShard[i] = ShardStats{Shard: i, Points: m.Len(), Ops: snap}
		total.Add(&snap)
	}
	return perShard, total
}

// RemoteEndpointStats are one replica endpoint's robustness-envelope
// counters.
type RemoteEndpointStats struct {
	// Endpoint is the replica's base URL (or the loopback transport's
	// synthetic name).
	Endpoint string `json:"endpoint"`

	// Breaker is the circuit breaker's current state: "closed", "open" or
	// "half-open".
	Breaker string `json:"breaker"`

	// Attempts/Successes/Failures count individual probe attempts.
	Attempts  int64 `json:"attempts"`
	Successes int64 `json:"successes"`
	Failures  int64 `json:"failures"`

	// Retries counts backoff re-attempts after transient failures.
	Retries int64 `json:"retries"`

	// Hedges counts hedged second requests launched while this endpoint
	// was primary; HedgeWins counts hedges to this endpoint that answered
	// first.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`

	// BreakerTrips counts closed→open transitions; BreakerSkips counts
	// failover decisions that skipped this endpoint on an open breaker.
	BreakerTrips int64 `json:"breaker_trips"`
	BreakerSkips int64 `json:"breaker_skips"`
}

// RemoteShardStats are one remote shard's robustness-envelope counters: how
// often the shard's calls failed over between replicas, exhausted the whole
// set, or forced a last-resort attempt with every breaker open, plus the
// per-endpoint detail.
type RemoteShardStats struct {
	Shard       int                   `json:"shard"`
	Points      int                   `json:"points"`
	Failovers   int64                 `json:"failovers"`
	Exhausted   int64                 `json:"exhausted"`
	ForcedTries int64                 `json:"forced_tries"`
	Endpoints   []RemoteEndpointStats `json:"endpoints"`
}

// RemoteStats snapshots the per-shard robustness-envelope counters —
// retries, hedges, breaker state and trips, failovers — for metrics.
func (rr *RemoteRelation) RemoteStats() []RemoteShardStats {
	out := make([]RemoteShardStats, len(rr.members))
	for i, m := range rr.members {
		ns := m.NetStats()
		rs := RemoteShardStats{
			Shard:       ns.Shard,
			Points:      m.Len(),
			Failovers:   ns.Failovers,
			Exhausted:   ns.Exhausted,
			ForcedTries: ns.ForcedTries,
		}
		for _, ep := range ns.Endpoints {
			rs.Endpoints = append(rs.Endpoints, RemoteEndpointStats{
				Endpoint:     ep.Endpoint,
				Breaker:      ep.Breaker,
				Attempts:     ep.Attempts,
				Successes:    ep.Successes,
				Failures:     ep.Failures,
				Retries:      ep.Retries,
				Hedges:       ep.Hedges,
				HedgeWins:    ep.HedgeWins,
				BreakerTrips: ep.BreakerTrips,
				BreakerSkips: ep.BreakerSkips,
			})
		}
		out[i] = rs
	}
	return out
}

// PartialResultError reports that a query opted into WithPartialResults
// completed over a subset of its remote shards. The returned results are
// the exact merge over the shards that answered; Missing names the shards
// that contributed nothing. It wraps ErrShardUnavailable (test with
// errors.Is, inspect with errors.As).
type PartialResultError struct {
	// Missing lists the unavailable shard indexes, ascending.
	Missing []int

	// Errs maps each missing shard to its first failure.
	Errs map[int]error
}

// Error implements error.
func (e *PartialResultError) Error() string {
	return fmt.Sprintf("twoknn: partial result: %d shard(s) unavailable %v", len(e.Missing), e.Missing)
}

// Unwrap makes errors.Is(err, ErrShardUnavailable) hold.
func (e *PartialResultError) Unwrap() error { return ErrShardUnavailable }

// WithPartialResults opts the query into graceful degradation over remote
// shards: when a shard's whole replica set is exhausted, the query keeps
// going without it — the shard contributes an empty candidate set — and
// returns the merged answer over the reachable shards TOGETHER with a
// *PartialResultError naming the missing shards. err == nil still means
// the answer is complete and exact.
//
// Without the option (the default), an exhausted replica set fails the
// query closed with an error wrapping ErrShardUnavailable: callers never
// mistake a partial answer for the exact one. The option has no effect on
// local or in-process sharded sources, and cancellation always wins — a
// dead query context unwinds as ErrQueryCanceled, not as a partial result.
func WithPartialResults() QueryOption {
	return func(c *queryConfig) { c.partial = true }
}

// NewShardHandler builds the serving side of one remote shard: an
// http.Handler speaking the shard-probe protocol over shard shardIdx of the
// dataset pts partitions into shards parts (cmd/knnshard wraps it in a
// process; tests mount it on httptest servers).
//
// The full dataset is passed in and partitioned here — with the same policy
// code the in-process ShardedRelation uses — so stable point IDs are the
// global input positions and every shard process derives an identical
// partition from the same input. Options are shared with NewRelation /
// NewShardedRelation: WithIndexKind, WithBlockCapacity, WithBounds,
// WithShardPolicy, WithMaxSearchers (this shard's searcher pool).
func NewShardHandler(name string, pts []Point, shardIdx, shards int, opts ...RelationOption) (http.Handler, error) {
	cfg := relationConfig{kind: GridIndex, capacity: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if shards < 1 {
		return nil, fmt.Errorf("%w: got %d (name %q)", ErrInvalidShardCount, shards, name)
	}
	if shardIdx < 0 || shardIdx >= shards {
		return nil, fmt.Errorf("twoknn: shard index %d out of range [0,%d) (name %q)", shardIdx, shards, name)
	}
	if len(pts) == 0 && cfg.bounds.Area() <= 0 {
		return nil, fmt.Errorf("%w (name %q)", ErrEmptyRelation, name)
	}
	fallback := cfg.bounds
	if fallback.Area() <= 0 {
		fallback = geom.RectFromPoints(pts)
	}
	st := shard.Partition(pts, shards, cfg.shardPolicy.policy())[shardIdx]
	ix, err := shardIndexBuilder(cfg.kind, cfg.capacity, cfg.bounds, fallback)(st)
	if err != nil {
		return nil, fmt.Errorf("twoknn: building shard %d/%d of %q: %w", shardIdx, shards, name, err)
	}
	var rel *core.Relation
	if cfg.maxSearchers > 0 {
		rel = core.NewRelationBounded(ix, cfg.maxSearchers)
	} else {
		rel = core.NewRelation(ix)
	}
	return remote.NewShardServer(rel, remote.ShardServerConfig{
		Name:   name,
		Shard:  shardIdx,
		Shards: shards,
		Index:  cfg.kind.String(),
	}), nil
}
