package twoknn_test

// Concurrency tests for the public API: every top-level query entry point
// must be safe to call from many goroutines against one shared *Relation,
// and every concurrent evaluation must return results byte-identical to
// the serial path. Run with -race (the CI race job does) to validate the
// synchronization of the searcher pool, the parallel fan-out and the
// atomic stats counters.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	twoknn "repro"
)

func randomPoints(n int, seed int64) []twoknn.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]twoknn.Point, n)
	for i := range pts {
		pts[i] = twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

// mixedQueryShapes returns one closure per query shape, each evaluating
// against the shared relations and returning its result for comparison.
func mixedQueryShapes(t *testing.T, a, b, c *twoknn.Relation, opts ...twoknn.QueryOption) map[string]func() any {
	t.Helper()
	f1 := twoknn.Point{X: 300, Y: 700}
	f2 := twoknn.Point{X: 650, Y: 350}
	rng := twoknn.NewRect(250, 250, 750, 750)
	const k = 5

	check := func(v any, err error) any {
		if err != nil {
			t.Errorf("query error: %v", err)
		}
		return v
	}
	return map[string]func() any{
		"KNNSelect": func() any { return check(b.KNNSelect(f1, k, opts...)) },
		"KNNJoin":   func() any { return check(twoknn.KNNJoin(a, b, k, opts...)) },
		"SelectInnerJoin": func() any {
			return check(twoknn.SelectInnerJoin(a, b, f1, k, 3*k, opts...))
		},
		"SelectOuterJoin": func() any {
			return check(twoknn.SelectOuterJoin(a, b, f1, 3*k, k, opts...))
		},
		"TwoSelects": func() any {
			return check(twoknn.TwoSelects(b, f1, 6*k, f2, 8*k, opts...))
		},
		"UnchainedJoins": func() any {
			return check(twoknn.UnchainedJoins(a, b, c, k, k, opts...))
		},
		"ChainedJoins": func() any {
			return check(twoknn.ChainedJoins(a, b, c, k, k, opts...))
		},
		"RangeInnerJoin": func() any {
			return check(twoknn.RangeInnerJoin(a, b, rng, k, opts...))
		},
	}
}

// TestConcurrentMixedQueriesMatchSerial runs 16 goroutines of mixed query
// shapes against one shared relation set — half of them additionally
// fanning each query out with WithConcurrency — and requires every result
// to be byte-identical to the serial evaluation. A shared *Stats collects
// counters across all goroutines to exercise the atomic counter paths.
func TestConcurrentMixedQueriesMatchSerial(t *testing.T) {
	buildRel := func(name string, pts []twoknn.Point) *twoknn.Relation {
		rel, err := twoknn.NewRelation(name, pts, twoknn.WithBlockCapacity(32))
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	a := buildRel("a", randomPoints(500, 71))
	b := buildRel("b", randomPoints(700, 72))
	c := buildRel("c", randomPoints(400, 73))

	serial := map[string]any{}
	for name, run := range mixedQueryShapes(t, a, b, c) {
		serial[name] = run()
	}
	if t.Failed() {
		t.Fatal("serial evaluation failed")
	}

	const goroutines = 16
	const iters = 3
	var shared twoknn.Stats

	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := map[string]int{}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := []twoknn.QueryOption{twoknn.WithStats(&shared)}
			if g%2 == 1 {
				opts = append(opts, twoknn.WithConcurrency(2))
			}
			shapes := mixedQueryShapes(t, a, b, c, opts...)
			for i := 0; i < iters; i++ {
				for name, run := range shapes {
					if got := run(); !reflect.DeepEqual(got, serial[name]) {
						mu.Lock()
						failures[name]++
						mu.Unlock()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for name, n := range failures {
		t.Errorf("%s: %d of %d concurrent evaluations diverged from the serial result", name, n, goroutines*iters)
	}
	if shared.Neighborhoods == 0 {
		t.Error("shared stats recorded nothing")
	}
}

// TestConcurrentQueriesOnBoundedRelation drives more goroutines than the
// searcher bound allows simultaneously: queries beyond the bound must
// block and then complete correctly once handles free up — never error,
// never deadlock, never return wrong answers.
func TestConcurrentQueriesOnBoundedRelation(t *testing.T) {
	rel, err := twoknn.NewRelation("bounded", randomPoints(600, 74),
		twoknn.WithMaxSearchers(4), twoknn.WithBlockCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	f := twoknn.Point{X: 500, Y: 500}
	want, err := rel.KNNSelect(f, 8)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := rel.KNNSelect(f, 8)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("bounded-pool query diverged from serial result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("bounded-pool query errored: %v", err)
	}
}

// TestBoundedCloneMixDoesNotDeadlock is a regression test: a relation and
// its Clone are distinct *Relation values sharing one searcher pool, so a
// query probing both sides must share one handle — keyed on the pool, not
// on pointer identity — or a pool bounded at one handle self-deadlocks.
func TestBoundedCloneMixDoesNotDeadlock(t *testing.T) {
	rel, err := twoknn.NewRelation("orig", randomPoints(300, 76), twoknn.WithMaxSearchers(1))
	if err != nil {
		t.Fatal(err)
	}
	clone := rel.Clone()
	f := twoknn.Point{X: 500, Y: 500}

	want, err := twoknn.SelectOuterJoin(rel, rel, f, 5, 3)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan []twoknn.Pair, 2)
	go func() {
		got, err := twoknn.SelectOuterJoin(rel, clone, f, 5, 3)
		if err != nil {
			t.Errorf("rel/clone select-outer-join: %v", err)
		}
		done <- got
	}()
	go func() {
		got, err := twoknn.ChainedJoins(rel, clone, rel, 3, 3)
		if err != nil {
			t.Errorf("rel/clone chained join: %v", err)
		}
		if got == nil {
			t.Error("rel/clone chained join returned nothing")
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		select {
		case got := <-done:
			if got != nil && !reflect.DeepEqual(got, want) {
				t.Error("rel/clone query diverged from rel/rel result")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("query over a relation and its clone deadlocked on the bounded pool")
		}
	}
}

// TestConcurrentSelfJoin exercises the duplicate-relation path on a
// relation bounded to a single searcher: the same *Relation on both sides
// of a query, from many goroutines, with and without fan-out. KNNJoin
// probes only the inner searcher; SelectOuterJoin probes both sides, so
// its handle dedup must neither deadlock (bounded pool of one) nor corrupt
// results.
func TestConcurrentSelfJoin(t *testing.T) {
	rel, err := twoknn.NewRelation("self", randomPoints(400, 75), twoknn.WithMaxSearchers(1))
	if err != nil {
		t.Fatal(err)
	}
	f := twoknn.Point{X: 500, Y: 500}
	wantJoin, err := twoknn.KNNJoin(rel, rel, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, err := twoknn.SelectOuterJoin(rel, rel, f, 10, 3)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var opts []twoknn.QueryOption
			if g%2 == 1 {
				opts = append(opts, twoknn.WithConcurrency(4))
			}
			gotJoin, err := twoknn.KNNJoin(rel, rel, 3, opts...)
			if err != nil {
				t.Errorf("self-join: %v", err)
				return
			}
			gotSel, err := twoknn.SelectOuterJoin(rel, rel, f, 10, 3, opts...)
			if err != nil {
				t.Errorf("self select-outer-join: %v", err)
				return
			}
			if !reflect.DeepEqual(gotJoin, wantJoin) || !reflect.DeepEqual(gotSel, wantSel) {
				t.Error("concurrent self-join diverged from serial result")
			}
		}(g)
	}
	wg.Wait()
}
