package twoknn_test

import (
	"reflect"
	"testing"

	twoknn "repro"
)

// FuzzMutateRelation drives fuzzer-chosen insert/remove/update/compact/query
// interleavings through mutable relations on all four index kinds, checking
// every checkpoint against a from-scratch rebuild of the live point set
// (the map-of-stable-IDs oracle). The coarse coordinate grid of fuzzPoints
// makes co-located duplicates and exact distance ties common; the update op
// reaches removed IDs, so remove-then-reinsert of the same identity is part
// of the explored space. Seed corpus under testdata/fuzz/FuzzMutateRelation.
func FuzzMutateRelation(f *testing.F) {
	// Duplicates and co-located points, then a remove and same-ID reinsert.
	f.Add([]byte{10, 10, 10, 10, 10, 10, 200, 200, 40, 80},
		[]byte{0, 50, 50, 1, 0, 2, 0, 60, 60, 4}, uint8(3), 100.0, 200.0)
	// Insert burst, scripted compaction, then queries.
	f.Add([]byte("spatial queries with two knn predicates"),
		[]byte{0, 1, 2, 0, 3, 3, 0, 7, 7, 3, 4, 1, 5, 4}, uint8(8), 512.0, 512.0)
	// Remove everything, query the empty relation, repopulate.
	f.Add([]byte{100, 100, 120, 120},
		[]byte{1, 0, 1, 1, 4, 0, 99, 99, 4}, uint8(2), 400.0, 400.0)
	// Update-heavy: moves of live and dead IDs interleaved with checks.
	f.Add([]byte{0, 0, 255, 255, 0, 255, 255, 0, 128, 128},
		[]byte{2, 0, 10, 10, 2, 9, 20, 20, 4, 1, 2, 2, 2, 30, 30, 4, 3, 4}, uint8(5), 0.0, 0.0)

	f.Fuzz(func(t *testing.T, ptsData, script []byte, kb uint8, x, y float64) {
		pts := fuzzPoints(ptsData, 100)
		if len(pts) == 0 {
			return
		}
		focal, ok := fuzzFocal(x, y)
		if !ok {
			return
		}
		k := int(kb%24) + 1

		kinds := []twoknn.IndexKind{twoknn.GridIndex, twoknn.QuadtreeIndex, twoknn.RTreeIndex, twoknn.KDTreeIndex}
		rels := make([]*twoknn.Relation, len(kinds))
		for i, kind := range kinds {
			rel, err := twoknn.NewRelation("fuzzmut", pts,
				twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(8),
				twoknn.WithCompactThreshold(-1)) // compaction only via the scripted op
			if err != nil {
				t.Fatalf("%v: build: %v", kind, err)
			}
			rels[i] = rel
		}
		oracle := newMutOracle(pts)

		checkpoint := func() {
			t.Helper()
			ref := oracle.rebuild(t, twoknn.GridIndex, 8)
			wantSel, err := ref.KNNSelect(focal, k)
			if err != nil {
				t.Fatalf("oracle knn-select: %v", err)
			}
			wantTwo, err := twoknn.TwoSelects(ref, focal, k, twoknn.Point{X: 512, Y: 512}, 3)
			if err != nil {
				t.Fatalf("oracle two-selects: %v", err)
			}
			for i, rel := range rels {
				if rel.Len() != len(oracle.pts) {
					t.Fatalf("%v: Len = %d, oracle %d", kinds[i], rel.Len(), len(oracle.pts))
				}
				got, err := rel.KNNSelect(focal, k)
				if err != nil {
					t.Fatalf("%v: knn-select: %v", kinds[i], err)
				}
				if !reflect.DeepEqual(got, wantSel) {
					t.Fatalf("%v: KNNSelect diverges from rebuild\n got  %v\n want %v", kinds[i], got, wantSel)
				}
				gotTwo, err := twoknn.TwoSelects(rel, focal, k, twoknn.Point{X: 512, Y: 512}, 3)
				if err != nil {
					t.Fatalf("%v: two-selects: %v", kinds[i], err)
				}
				if !reflect.DeepEqual(gotTwo, wantTwo) {
					t.Fatalf("%v: TwoSelects diverges from rebuild\n got  %v\n want %v", kinds[i], gotTwo, wantTwo)
				}
			}
		}

		ops := 0
		for i := 0; i < len(script) && ops < 48; ops++ {
			op := script[i] % 5
			i++
			take := func() byte {
				if i < len(script) {
					b := script[i]
					i++
					return b
				}
				return 0
			}
			switch op {
			case 0: // insert one quantized point
				p := twoknn.Point{X: float64(take()) * 4, Y: float64(take()) * 4}
				ids := oracle.insert(p)
				for _, rel := range rels {
					got := rel.Insert(p)
					if !reflect.DeepEqual(got, ids) {
						t.Fatalf("Insert IDs diverge: %v vs %v", got, ids)
					}
				}
			case 1: // remove by (possibly dead or future) ID
				id := int32(take()) % (oracle.nextID + 2)
				_, live := oracle.pts[id]
				oracle.remove(id)
				for i2, rel := range rels {
					if got := rel.Remove(id); (got == 1) != live {
						t.Fatalf("%v: Remove(%d) = %d, oracle live %v", kinds[i2], id, got, live)
					}
				}
			case 2: // update/upsert by ID — reaches removed IDs (reinsert)
				id := int32(take()) % (oracle.nextID + 2)
				p := twoknn.Point{X: float64(take()) * 4, Y: float64(take()) * 4}
				_, live := oracle.pts[id]
				oracle.update(id, p)
				for i2, rel := range rels {
					if got := rel.Update(id, p); got != live {
						t.Fatalf("%v: Update(%d) existed = %v, oracle %v", kinds[i2], id, got, live)
					}
				}
			case 3: // compact
				for i2, rel := range rels {
					if err := rel.Compact(); err != nil {
						t.Fatalf("%v: Compact: %v", kinds[i2], err)
					}
				}
			default: // checkpoint
				checkpoint()
			}
		}
		checkpoint()
	})
}
