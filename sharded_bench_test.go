package twoknn_test

import (
	"fmt"
	"testing"

	twoknn "repro"
	"repro/internal/bench"
)

// Benchmarks for the sharded scatter/gather execution path, recorded in the
// BENCH_PR*.json micro section alongside the single-relation hot-path
// numbers. The per-shard hot path itself (each shard's Neighborhood call) is
// the same zero-allocation code the single-relation benchmarks measure; what
// these add is the gather overhead: S-way candidate merge per probe.

func buildShardedBench(b *testing.B, role string, n, shards int, policy twoknn.ShardPolicy) *twoknn.ShardedRelation {
	b.Helper()
	// No WithBounds: each shard's index fits its own extent, the layout the
	// shard-skip needs to keep spatial tiles cheap.
	rel, err := twoknn.NewShardedRelation(role, bench.BerlinMODPoints(role, n), shards,
		twoknn.WithBlockCapacity(bench.DefaultPerCell),
		twoknn.WithShardPolicy(policy))
	if err != nil {
		b.Fatal(err)
	}
	return rel
}

// BenchmarkShardedKNNJoin measures the full scatter/gather join at a few
// shard counts (sequential drivers; the parallel story is the abl-shards /
// abl-parallel sweeps).
func BenchmarkShardedKNNJoin(b *testing.B) {
	const n = 20000
	for _, s := range []int{1, 4} {
		for _, policy := range []twoknn.ShardPolicy{twoknn.HashSharding, twoknn.SpatialSharding} {
			b.Run(fmt.Sprintf("shards=%d/%s", s, policy), func(b *testing.B) {
				outer := buildShardedBench(b, "fig19-outer", n, s, policy)
				inner := buildShardedBench(b, "fig19-inner", n, s, policy)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pairs, err := twoknn.KNNJoin(outer, inner, 10)
					if err != nil {
						b.Fatal(err)
					}
					if len(pairs) != n*10 {
						b.Fatalf("join returned %d pairs", len(pairs))
					}
				}
			})
		}
	}
}

// BenchmarkShardedKNNSelect measures one gathered global kNN-select over a
// 4-shard relation: S per-shard probes (each zero-alloc) plus the merge.
func BenchmarkShardedKNNSelect(b *testing.B) {
	rel := buildShardedBench(b, "fig19-inner", 50000, 4, twoknn.SpatialSharding)
	f := twoknn.Point{X: 5000, Y: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := rel.KNNSelect(f, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 10 {
			b.Fatalf("select returned %d points", len(pts))
		}
	}
}
