package twoknn_test

// Chaos tests: the fault-injection harness places panics, slow shard
// probes and pool exhaustion at exact execution points, and every scenario
// asserts the three invariants of the robustness layer — the typed error
// surfaces (the process never crashes), zero searcher handles leak, and
// operation counters recorded before the fault are still folded into
// WithStats targets. The CI race job runs this file under -race.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/fault"
)

func TestChaosPanicSequential(t *testing.T) {
	pts := batteryPoints(t)
	rel, err := twoknn.NewRelation("R", pts)
	if err != nil {
		t.Fatal(err)
	}
	fault.PanicAtBlock(10, "chaos: poisoned block")
	defer fault.Disarm()

	pairs, qerr := twoknn.KNNJoin(rel, rel, 4)
	if qerr == nil {
		t.Fatalf("join completed (%d pairs); want injected panic", len(pairs))
	}
	if !errors.Is(qerr, twoknn.ErrQueryPanic) {
		t.Errorf("error %v does not wrap ErrQueryPanic", qerr)
	}
	var pe *twoknn.QueryPanicError
	if !errors.As(qerr, &pe) {
		t.Fatalf("error %v is not a *QueryPanicError", qerr)
	}
	if pe.Value != "chaos: poisoned block" {
		t.Errorf("panic value = %v, want the injected payload", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("panic stack not captured: %q", pe.Stack)
	}
	fault.Disarm()
	if out := rel.OutstandingSearchers(); out != 0 {
		t.Errorf("%d searcher handles leaked", out)
	}
}

func TestChaosPanicParallelWorker(t *testing.T) {
	pts := batteryPoints(t)
	rel, err := twoknn.NewRelation("R", pts, twoknn.WithMaxSearchers(3))
	if err != nil {
		t.Fatal(err)
	}
	fault.PanicAtBlock(25, "chaos: worker crash")
	defer fault.Disarm()

	_, qerr := twoknn.KNNJoin(rel, rel, 4, twoknn.WithConcurrency(4))
	if !errors.Is(qerr, twoknn.ErrQueryPanic) {
		t.Fatalf("got %v, want an ErrQueryPanic chain", qerr)
	}
	var pe *twoknn.QueryPanicError
	if !errors.As(qerr, &pe) || pe.Value != "chaos: worker crash" {
		t.Fatalf("panic payload not preserved across the worker boundary: %v", qerr)
	}
	fault.Disarm()
	if out := rel.OutstandingSearchers(); out != 0 {
		t.Errorf("%d searcher handles leaked after worker panic", out)
	}

	// The relation must stay fully usable: the panicked query returned its
	// bounded-pool handles, so a clean query still gets all of them.
	if _, err := twoknn.KNNJoin(rel, rel, 4, twoknn.WithConcurrency(4)); err != nil {
		t.Fatalf("relation unusable after recovered panic: %v", err)
	}
}

func TestChaosPanicShardedScatter(t *testing.T) {
	pts := batteryPoints(t)
	for _, policy := range []twoknn.ShardPolicy{twoknn.HashSharding, twoknn.SpatialSharding} {
		sr, err := twoknn.NewShardedRelation(policy.String(), pts, 4, twoknn.WithShardPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		fault.PanicAtBlock(25, "chaos: scatter crash")
		_, qerr := twoknn.KNNJoin(sr, sr, 4, twoknn.WithConcurrency(4))
		fault.Disarm()
		if !errors.Is(qerr, twoknn.ErrQueryPanic) {
			t.Fatalf("%v: got %v, want an ErrQueryPanic chain", policy, qerr)
		}
		if out := sr.OutstandingSearchers(); out != 0 {
			t.Errorf("%v: %d searcher handles leaked after scatter panic", policy, out)
		}
	}
}

func TestChaosSlowShardProbeHitsDeadline(t *testing.T) {
	pts := batteryPoints(t)
	sr, err := twoknn.NewShardedRelation("S", pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1's probes stall past the deadline; the next checkpoint after
	// the stall observes the expiry.
	fault.SlowShardProbe(1, 30*time.Millisecond)
	defer fault.Disarm()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()

	_, qerr := twoknn.KNNJoin(sr, sr, 4, twoknn.WithContext(ctx), twoknn.WithConcurrency(4))
	if !errors.Is(qerr, twoknn.ErrQueryCanceled) || !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrQueryCanceled wrapping DeadlineExceeded", qerr)
	}
	fault.Disarm()
	if out := sr.OutstandingSearchers(); out != 0 {
		t.Errorf("%d searcher handles leaked", out)
	}
}

func TestChaosExhaustedPoolShedsLoad(t *testing.T) {
	pts := batteryPoints(t)
	rel, err := twoknn.NewRelation("R", pts, twoknn.WithMaxSearchers(1))
	if err != nil {
		t.Fatal(err)
	}
	// Park a query on the pool's only handle: its first checkpoint blocks on
	// the gate until the test lets it finish.
	gate := make(chan struct{})
	holding := make(chan struct{})
	var once sync.Once
	fault.Arm(&fault.Injector{BlockScan: func(uint64) {
		once.Do(func() {
			close(holding)
			<-gate
		})
	}})
	defer fault.Disarm()
	done := make(chan error, 1)
	go func() {
		_, err := rel.KNNSelect(batteryFocal, 10)
		done <- err
	}()
	<-holding

	// Deadline-bounded query against the exhausted pool: it waits only as
	// long as its context allows, then fails with the full shed-load chain.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, qerr := rel.KNNSelect(batteryFocal, 10, twoknn.WithContext(ctx))
	if !errors.Is(qerr, twoknn.ErrQueryCanceled) {
		t.Errorf("error %v does not wrap ErrQueryCanceled", qerr)
	}
	if !errors.Is(qerr, twoknn.ErrSearchersExhausted) {
		t.Errorf("error %v does not wrap ErrSearchersExhausted", qerr)
	}
	if !errors.Is(qerr, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", qerr)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("parked query failed: %v", err)
	}
	fault.Disarm()
	if out := rel.OutstandingSearchers(); out != 0 {
		t.Errorf("%d searcher handles leaked", out)
	}
	// Capacity restored: the same bounded relation serves again.
	if _, err := rel.KNNSelect(batteryFocal, 10); err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
}

// TestChaosCancelledStatsConsistent: a cancelled query folds the operation
// counters it recorded before the abort — non-zero (work happened) and no
// larger than an uncancelled run (no double counting).
func TestChaosCancelledStatsConsistent(t *testing.T) {
	pts := batteryPoints(t)
	rel, err := twoknn.NewRelation("R", pts)
	if err != nil {
		t.Fatal(err)
	}
	var full twoknn.Stats
	if _, err := twoknn.KNNJoin(rel, rel, 4, twoknn.WithStats(&full)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fault.CancelAfterBlocks(200, cancel)
	defer fault.Disarm()
	var part twoknn.Stats
	_, qerr := twoknn.KNNJoin(rel, rel, 4, twoknn.WithContext(ctx), twoknn.WithStats(&part))
	fault.Disarm()
	if !errors.Is(qerr, twoknn.ErrQueryCanceled) {
		t.Fatalf("got %v, want cancellation", qerr)
	}
	snap, fullSnap := part.Snapshot(), full.Snapshot()
	if snap.Neighborhoods == 0 {
		t.Error("cancelled query folded no counters; work before the abort was dropped")
	}
	if snap.Neighborhoods > fullSnap.Neighborhoods || snap.BlocksScanned > fullSnap.BlocksScanned {
		t.Errorf("cancelled-run counters exceed the full run: %+v > %+v", snap, fullSnap)
	}
}

// TestChaosConcurrentCancelledQueries hammers one bounded relation with
// concurrent deadline-bounded queries while the harness cancels aggressively
// — the -race job's main course. Afterwards the pool must be whole.
func TestChaosConcurrentCancelledQueries(t *testing.T) {
	pts := batteryPoints(t)
	rel, err := twoknn.NewRelation("R", pts, twoknn.WithMaxSearchers(4))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := twoknn.NewShardedRelation("S", pts, 4, twoknn.WithMaxSearchers(4))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	fault.CancelAfterBlocks(500, cancel)
	defer fault.Disarm()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var src twoknn.Source = rel
			if i%2 == 1 {
				src = sr
			}
			// Errors are expected (cancellation, shed load); crashes and
			// leaks are not — those are what the test asserts below.
			_, _ = twoknn.KNNJoin(src, src, 4,
				twoknn.WithContext(ctx), twoknn.WithConcurrency(4))
		}(i)
	}
	wg.Wait()
	cancel()
	fault.Disarm()
	if out := rel.OutstandingSearchers(); out != 0 {
		t.Errorf("%d single-relation handles leaked", out)
	}
	if out := sr.OutstandingSearchers(); out != 0 {
		t.Errorf("%d sharded handles leaked", out)
	}
}
