package twoknn_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	twoknn "repro"
	"repro/internal/datagen"
)

// This file is the differential oracle for the sharded scatter/gather
// subsystem: for every query shape x shard count x partitioning policy x
// index kind x dataset family, the sharded evaluation must be byte-identical
// (after canonical sort, for the join shapes whose single-relation order is
// scan-dependent) to the single-relation evaluation over the same points.
// It extends the cross-layout equivalence scaffolding introduced with the
// columnar store (internal/core/layout_equiv_test.go) up through the public
// API.

var (
	oracleBounds = twoknn.NewRect(0, 0, 1000, 1000)
	oracleFocal  = twoknn.Point{X: 420, Y: 510}
	oracleFocal2 = twoknn.Point{X: 710, Y: 130}
	oracleRange  = twoknn.NewRect(300, 300, 620, 700)
)

// oracleDataset returns the three relations' points for one dataset family.
func oracleDataset(t *testing.T, family string) (a, b, c []twoknn.Point) {
	t.Helper()
	switch family {
	case "uniform":
		return datagen.Uniform(240, oracleBounds, 101),
			datagen.Uniform(200, oracleBounds, 202),
			datagen.Uniform(160, oracleBounds, 303)
	case "clustered":
		gen := func(seed int64, clusters, per int) []twoknn.Point {
			pts, err := datagen.Clustered(datagen.ClusterConfig{
				NumClusters:      clusters,
				PointsPerCluster: per,
				Radius:           60,
				Bounds:           oracleBounds,
				Seed:             seed,
			})
			if err != nil {
				t.Fatalf("datagen.Clustered: %v", err)
			}
			return pts
		}
		return gen(11, 6, 40), gen(22, 5, 40), gen(33, 4, 40)
	default:
		t.Fatalf("unknown dataset family %q", family)
		return nil, nil, nil
	}
}

func buildSingle(t *testing.T, name string, pts []twoknn.Point, kind twoknn.IndexKind) *twoknn.Relation {
	t.Helper()
	rel, err := twoknn.NewRelation(name, pts,
		twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16), twoknn.WithBounds(oracleBounds))
	if err != nil {
		t.Fatalf("NewRelation(%s): %v", name, err)
	}
	return rel
}

// buildSharded builds without WithBounds, so each shard's index fits its
// own extent — the matrix then also covers the fitted-geometry layout
// (the explicit-common-bounds layout is covered by the concurrent and
// basics tests, which pass WithBounds).
func buildSharded(t *testing.T, name string, pts []twoknn.Point, kind twoknn.IndexKind, s int, policy twoknn.ShardPolicy) *twoknn.ShardedRelation {
	t.Helper()
	rel, err := twoknn.NewShardedRelation(name, pts, s,
		twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16),
		twoknn.WithShardPolicy(policy))
	if err != nil {
		t.Fatalf("NewShardedRelation(%s): %v", name, err)
	}
	return rel
}

// oracleExpected holds the single-relation answers the sharded evaluations
// must reproduce, canonically sorted where the shape's order is
// scan-dependent.
type oracleExpected struct {
	knnSelect     []twoknn.Point // distance order, compared byte-for-byte
	knnSelectBig  []twoknn.Point // k > |relation|
	knnJoin       []twoknn.Pair
	selInner      map[twoknn.Algorithm][]twoknn.Pair
	selOuter      []twoknn.Pair
	twoSel        []twoknn.Point // intersection order, compared byte-for-byte
	twoSelConc    []twoknn.Point
	unchained     []twoknn.Triple
	chained       []twoknn.Triple
	rangeInner    map[twoknn.Algorithm][]twoknn.Pair
	selfJoin      []twoknn.Pair // b joined with itself
	joinBigK      []twoknn.Pair // k > |inner|
	oracleAlgList []twoknn.Algorithm
}

const (
	oracleKSel  = 9
	oracleKJoin = 3
	oracleK1    = 5
	oracleK2    = 40
	oracleKAB   = 2
	oracleKCB   = 3
)

func computeExpected(t *testing.T, a, b, c *twoknn.Relation) *oracleExpected {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	exp := &oracleExpected{
		selInner:      make(map[twoknn.Algorithm][]twoknn.Pair),
		rangeInner:    make(map[twoknn.Algorithm][]twoknn.Pair),
		oracleAlgList: []twoknn.Algorithm{twoknn.AlgorithmConceptual, twoknn.AlgorithmCounting, twoknn.AlgorithmBlockMarking},
	}
	var err error

	exp.knnSelect, err = a.KNNSelect(oracleFocal, 7)
	must(err)
	exp.knnSelectBig, err = a.KNNSelect(oracleFocal, a.Len()+10)
	must(err)

	exp.knnJoin, err = twoknn.KNNJoin(a, b, oracleKJoin)
	must(err)
	twoknn.SortPairs(exp.knnJoin)

	exp.joinBigK, err = twoknn.KNNJoin(a, b, b.Len()+5)
	must(err)
	twoknn.SortPairs(exp.joinBigK)

	exp.selfJoin, err = twoknn.KNNJoin(b, b, oracleKJoin)
	must(err)
	twoknn.SortPairs(exp.selfJoin)

	for _, alg := range exp.oracleAlgList {
		pairs, err := twoknn.SelectInnerJoin(a, b, oracleFocal, oracleKJoin, oracleKSel, twoknn.WithAlgorithm(alg))
		must(err)
		twoknn.SortPairs(pairs)
		exp.selInner[alg] = pairs

		pairs, err = twoknn.RangeInnerJoin(a, b, oracleRange, oracleKJoin, twoknn.WithAlgorithm(alg))
		must(err)
		twoknn.SortPairs(pairs)
		exp.rangeInner[alg] = pairs
	}

	exp.selOuter, err = twoknn.SelectOuterJoin(a, b, oracleFocal, oracleKSel, oracleKJoin)
	must(err)
	twoknn.SortPairs(exp.selOuter)

	exp.twoSel, err = twoknn.TwoSelects(b, oracleFocal, oracleK1, oracleFocal2, oracleK2)
	must(err)
	exp.twoSelConc, err = twoknn.TwoSelects(b, oracleFocal, oracleK1, oracleFocal2, oracleK2,
		twoknn.WithAlgorithm(twoknn.AlgorithmConceptual))
	must(err)

	exp.unchained, err = twoknn.UnchainedJoins(a, b, c, oracleKAB, oracleKCB)
	must(err)
	twoknn.SortTriples(exp.unchained)

	exp.chained, err = twoknn.ChainedJoins(a, b, c, oracleKAB, oracleKCB)
	must(err)
	twoknn.SortTriples(exp.chained)

	return exp
}

// checkShardedBattery runs every query shape against the sharded (or mixed)
// operands and compares with the expected single-relation answers.
func checkShardedBattery(t *testing.T, exp *oracleExpected, a, b, c twoknn.Source, opts ...twoknn.QueryOption) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}

	if sa, ok := a.(*twoknn.ShardedRelation); ok {
		got, err := sa.KNNSelect(oracleFocal, 7, opts...)
		must(err)
		samePoints(t, "KNNSelect", exp.knnSelect, got, false)
		got, err = sa.KNNSelect(oracleFocal, sa.Len()+10, opts...)
		must(err)
		samePoints(t, "KNNSelect k>|E|", exp.knnSelectBig, got, false)
	}

	got, err := twoknn.KNNJoin(a, b, oracleKJoin, opts...)
	must(err)
	samePairs(t, "KNNJoin", exp.knnJoin, got)

	got, err = twoknn.KNNJoin(a, b, b.Len()+5, opts...)
	must(err)
	samePairs(t, "KNNJoin k>|inner|", exp.joinBigK, got)

	got, err = twoknn.KNNJoin(b, b, oracleKJoin, opts...)
	must(err)
	samePairs(t, "KNNJoin self", exp.selfJoin, got)

	for _, alg := range exp.oracleAlgList {
		algOpts := append([]twoknn.QueryOption{twoknn.WithAlgorithm(alg)}, opts...)
		got, err = twoknn.SelectInnerJoin(a, b, oracleFocal, oracleKJoin, oracleKSel, algOpts...)
		must(err)
		samePairs(t, fmt.Sprintf("SelectInnerJoin/%s", alg), exp.selInner[alg], got)

		got, err = twoknn.RangeInnerJoin(a, b, oracleRange, oracleKJoin, algOpts...)
		must(err)
		samePairs(t, fmt.Sprintf("RangeInnerJoin/%s", alg), exp.rangeInner[alg], got)
	}

	got, err = twoknn.SelectOuterJoin(a, b, oracleFocal, oracleKSel, oracleKJoin, opts...)
	must(err)
	samePairs(t, "SelectOuterJoin", exp.selOuter, got)

	pts, err := twoknn.TwoSelects(b, oracleFocal, oracleK1, oracleFocal2, oracleK2, opts...)
	must(err)
	samePoints(t, "TwoSelects", exp.twoSel, pts, false)

	pts, err = twoknn.TwoSelects(b, oracleFocal, oracleK1, oracleFocal2, oracleK2,
		append([]twoknn.QueryOption{twoknn.WithAlgorithm(twoknn.AlgorithmConceptual)}, opts...)...)
	must(err)
	samePoints(t, "TwoSelects/conceptual", exp.twoSelConc, pts, false)

	triples, err := twoknn.UnchainedJoins(a, b, c, oracleKAB, oracleKCB, opts...)
	must(err)
	sameTriples(t, "UnchainedJoins", exp.unchained, triples)

	triples, err = twoknn.ChainedJoins(a, b, c, oracleKAB, oracleKCB, opts...)
	must(err)
	sameTriples(t, "ChainedJoins", exp.chained, triples)
}

func samePoints(t *testing.T, what string, want, got []twoknn.Point, sortFirst bool) {
	t.Helper()
	if sortFirst {
		want = append([]twoknn.Point(nil), want...)
		got = append([]twoknn.Point(nil), got...)
		twoknn.SortPoints(want)
		twoknn.SortPoints(got)
	}
	if len(want) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: sharded result differs:\n got %d points %v\nwant %d points %v",
			what, len(got), truncPts(got), len(want), truncPts(want))
	}
}

// samePairs compares pair multisets in canonical order. Both sides are
// sorted into SortPairs order first: the expected side already is, but a
// battery run with all-single operands (the mixed-operand tests) goes
// through the single-relation path whose output is scan-ordered.
func samePairs(t *testing.T, what string, want, got []twoknn.Pair) {
	t.Helper()
	if len(want) == 0 && len(got) == 0 {
		return
	}
	want = append([]twoknn.Pair(nil), want...)
	got = append([]twoknn.Pair(nil), got...)
	twoknn.SortPairs(want)
	twoknn.SortPairs(got)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: sharded result differs: got %d pairs, want %d pairs", what, len(got), len(want))
	}
}

// sameTriples is samePairs for triples.
func sameTriples(t *testing.T, what string, want, got []twoknn.Triple) {
	t.Helper()
	if len(want) == 0 && len(got) == 0 {
		return
	}
	want = append([]twoknn.Triple(nil), want...)
	got = append([]twoknn.Triple(nil), got...)
	twoknn.SortTriples(want)
	twoknn.SortTriples(got)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: sharded result differs: got %d triples, want %d triples", what, len(got), len(want))
	}
}

func truncPts(ps []twoknn.Point) []twoknn.Point {
	if len(ps) > 8 {
		return ps[:8]
	}
	return ps
}

// TestShardedDifferentialOracle is the satellite-1 matrix: every query shape
// x {1, 2, 3, 7} shards x {hash, spatial} policy x all four index kinds x
// {uniform, clustered} datasets, sharded results byte-identical (after
// canonical sort) to the single-relation path. The expected answers are
// computed once per (kind, dataset) and reused across the policy/shard-count
// grid; canonical sorting of the comparator side happens there too.
func TestShardedDifferentialOracle(t *testing.T) {
	kinds := []twoknn.IndexKind{twoknn.GridIndex, twoknn.QuadtreeIndex, twoknn.RTreeIndex, twoknn.KDTreeIndex}
	policies := []twoknn.ShardPolicy{twoknn.HashSharding, twoknn.SpatialSharding}
	shardCounts := []int{1, 2, 3, 7}

	for _, family := range []string{"uniform", "clustered"} {
		ptsA, ptsB, ptsC := oracleDataset(t, family)
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", family, kind), func(t *testing.T) {
				a := buildSingle(t, "A", ptsA, kind)
				b := buildSingle(t, "B", ptsB, kind)
				c := buildSingle(t, "C", ptsC, kind)
				exp := computeExpected(t, a, b, c)

				for _, policy := range policies {
					for _, s := range shardCounts {
						t.Run(fmt.Sprintf("%s/S=%d", policy, s), func(t *testing.T) {
							sa := buildSharded(t, "A", ptsA, kind, s, policy)
							sb := buildSharded(t, "B", ptsB, kind, s, policy)
							sc := buildSharded(t, "C", ptsC, kind, s, policy)
							checkShardedBattery(t, exp, sa, sb, sc)
						})
					}
				}
			})
		}
	}
}

// TestShardedMixedOperandsAndConcurrency spot-checks the dispatch corners
// the full matrix would make too expensive everywhere: mixed single/sharded
// operands in every position, and intra-query fan-out via WithConcurrency on
// sharded operands.
func TestShardedMixedOperandsAndConcurrency(t *testing.T) {
	ptsA, ptsB, ptsC := oracleDataset(t, "uniform")
	kind := twoknn.GridIndex
	a := buildSingle(t, "A", ptsA, kind)
	b := buildSingle(t, "B", ptsB, kind)
	c := buildSingle(t, "C", ptsC, kind)
	exp := computeExpected(t, a, b, c)

	sa := buildSharded(t, "A", ptsA, kind, 3, twoknn.HashSharding)
	sb := buildSharded(t, "B", ptsB, kind, 2, twoknn.SpatialSharding)
	sc := buildSharded(t, "C", ptsC, kind, 4, twoknn.HashSharding)

	t.Run("sharded-outer", func(t *testing.T) { checkShardedBattery(t, exp, sa, b, c) })
	t.Run("sharded-inner", func(t *testing.T) { checkShardedBattery(t, exp, a, sb, sc) })
	t.Run("all-sharded-concurrent", func(t *testing.T) {
		checkShardedBattery(t, exp, sa, sb, sc, twoknn.WithConcurrency(3))
	})
}

// TestShardCountInvariance is the satellite-3 property: query answers are
// independent of the shard count — for a fixed dataset, every S produces the
// same result as S=1, under both policies.
func TestShardCountInvariance(t *testing.T) {
	ptsA, ptsB, ptsC := oracleDataset(t, "clustered")
	for _, policy := range []twoknn.ShardPolicy{twoknn.HashSharding, twoknn.SpatialSharding} {
		base1A := buildSharded(t, "A", ptsA, twoknn.GridIndex, 1, policy)
		base1B := buildSharded(t, "B", ptsB, twoknn.GridIndex, 1, policy)
		base1C := buildSharded(t, "C", ptsC, twoknn.GridIndex, 1, policy)
		ref := shapeSignature(t, base1A, base1B, base1C)
		for _, s := range []int{2, 3, 5} {
			sa := buildSharded(t, "A", ptsA, twoknn.GridIndex, s, policy)
			sb := buildSharded(t, "B", ptsB, twoknn.GridIndex, s, policy)
			sc := buildSharded(t, "C", ptsC, twoknn.GridIndex, s, policy)
			got := shapeSignature(t, sa, sb, sc)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%v: results at S=%d differ from S=1", policy, s)
			}
		}
	}
}

// shapeSignature evaluates one query per shape and packs the results for
// whole-battery comparison.
func shapeSignature(t *testing.T, a, b, c twoknn.Source, opts ...twoknn.QueryOption) map[string]any {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	sig := make(map[string]any)
	if sa, ok := a.(*twoknn.ShardedRelation); ok {
		pts, err := sa.KNNSelect(oracleFocal, 7, opts...)
		must(err)
		sig["knnselect"] = pts
	}
	pairs, err := twoknn.KNNJoin(a, b, oracleKJoin, opts...)
	must(err)
	sig["knnjoin"] = pairs
	pairs, err = twoknn.SelectInnerJoin(a, b, oracleFocal, oracleKJoin, oracleKSel, opts...)
	must(err)
	sig["selinner"] = pairs
	pairs, err = twoknn.SelectOuterJoin(a, b, oracleFocal, oracleKSel, oracleKJoin, opts...)
	must(err)
	sig["selouter"] = pairs
	pts, err := twoknn.TwoSelects(b, oracleFocal, oracleK1, oracleFocal2, oracleK2, opts...)
	must(err)
	sig["twosel"] = pts
	triples, err := twoknn.UnchainedJoins(a, b, c, oracleKAB, oracleKCB, opts...)
	must(err)
	sig["unchained"] = triples
	triples, err = twoknn.ChainedJoins(a, b, c, oracleKAB, oracleKCB, opts...)
	must(err)
	sig["chained"] = triples
	pairs, err = twoknn.RangeInnerJoin(a, b, oracleRange, oracleKJoin, opts...)
	must(err)
	sig["range"] = pairs
	return sig
}

// TestShardedPermutationInvariance is the satellite-3 property: shuffling
// the input point order never changes any (sorted) query answer, sharded or
// not — stable IDs shift, results do not.
func TestShardedPermutationInvariance(t *testing.T) {
	ptsA, ptsB, ptsC := oracleDataset(t, "uniform")
	shuffle := func(pts []twoknn.Point, seed int64) []twoknn.Point {
		out := append([]twoknn.Point(nil), pts...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	build := func(t *testing.T, a, b, c []twoknn.Point) (twoknn.Source, twoknn.Source, twoknn.Source) {
		return buildSharded(t, "A", a, twoknn.GridIndex, 3, twoknn.SpatialSharding),
			buildSharded(t, "B", b, twoknn.GridIndex, 3, twoknn.SpatialSharding),
			buildSharded(t, "C", c, twoknn.GridIndex, 3, twoknn.SpatialSharding)
	}
	a0, b0, c0 := build(t, ptsA, ptsB, ptsC)
	ref := shapeSignature(t, a0, b0, c0)
	for _, seed := range []int64{1, 2, 3} {
		a1, b1, c1 := build(t, shuffle(ptsA, seed), shuffle(ptsB, seed+10), shuffle(ptsC, seed+20))
		got := shapeSignature(t, a1, b1, c1)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("seed %d: shuffled input changed a sorted query answer", seed)
		}
	}
	// The single-relation path must be permutation-invariant too (its
	// KNNSelect order is distance-based, its join outputs are compared
	// sorted inside shapeSignature via the sharded gather... so check the
	// raw single path explicitly on one shape).
	s0 := buildSingle(t, "B", ptsB, twoknn.GridIndex)
	s1 := buildSingle(t, "B", shuffle(ptsB, 9), twoknn.GridIndex)
	r0, err := s0.KNNSelect(oracleFocal, 12)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.KNNSelect(oracleFocal, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r0, r1) {
		t.Fatalf("single-relation KNNSelect changed under input permutation")
	}
}

// TestShardedRelationBasics covers construction metadata: shard counts,
// policies, preserved cardinality, empty relations and invalid shard counts.
func TestShardedRelationBasics(t *testing.T) {
	pts := datagen.Uniform(100, oracleBounds, 5)
	sr := buildSharded(t, "basics", pts, twoknn.RTreeIndex, 4, twoknn.SpatialSharding)
	if sr.NumShards() != 4 || sr.Policy() != twoknn.SpatialSharding || sr.IndexKind() != twoknn.RTreeIndex {
		t.Fatalf("metadata mismatch: %d shards, %v, %v", sr.NumShards(), sr.Policy(), sr.IndexKind())
	}

	// An explicit WithBounds is the relation's Bounds(), exactly as for a
	// single Relation; without it the bounds are the input extent.
	wide := twoknn.NewRect(-500, -500, 2000, 2000)
	srBounded, err := twoknn.NewShardedRelation("bounded", pts, 3, twoknn.WithBounds(wide))
	if err != nil {
		t.Fatal(err)
	}
	if srBounded.Bounds() != wide {
		t.Fatalf("explicit bounds not respected: got %v, want %v", srBounded.Bounds(), wide)
	}
	extent := sr.Bounds()
	for _, p := range pts {
		if !extent.Contains(p) {
			t.Fatalf("derived bounds %v do not contain %v", extent, p)
		}
	}
	total := 0
	for _, n := range sr.ShardLens() {
		total += n
	}
	if total != 100 || sr.Len() != 100 {
		t.Fatalf("cardinality mismatch: shards sum %d, Len %d", total, sr.Len())
	}
	if got := sr.Name(); got != "basics" {
		t.Fatalf("Name = %q", got)
	}

	if _, err := twoknn.NewShardedRelation("bad", pts, 0); err == nil {
		t.Errorf("0 shards must error")
	}
	if _, err := twoknn.NewShardedRelation("empty", nil, 2); err == nil {
		t.Errorf("empty without bounds must error")
	}
	empty, err := twoknn.NewShardedRelation("empty", nil, 3, twoknn.WithBounds(oracleBounds))
	if err != nil {
		t.Fatalf("empty with bounds must build: %v", err)
	}
	got, err := empty.KNNSelect(oracleFocal, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty sharded relation returned %d points", len(got))
	}

	// More shards than points: every point still lands somewhere, queries
	// stay exact.
	tiny := datagen.Uniform(3, oracleBounds, 6)
	srTiny := buildSharded(t, "tiny", tiny, twoknn.GridIndex, 7, twoknn.SpatialSharding)
	single := buildSingle(t, "tiny", tiny, twoknn.GridIndex)
	want, err := single.KNNSelect(oracleFocal, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotTiny, err := srTiny.KNNSelect(oracleFocal, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, gotTiny) {
		t.Fatalf("tiny sharded select differs: got %v want %v", gotTiny, want)
	}
}

// TestShardedSnapshot checks the per-shard and aggregate stats surface.
func TestShardedSnapshot(t *testing.T) {
	pts := datagen.Uniform(300, oracleBounds, 7)
	sr := buildSharded(t, "stats", pts, twoknn.GridIndex, 3, twoknn.HashSharding)
	per, total := sr.Snapshot()
	if len(per) != 3 || total.Neighborhoods != 0 {
		t.Fatalf("fresh snapshot: %d shards, %d neighborhoods", len(per), total.Neighborhoods)
	}
	if _, err := sr.KNNSelect(oracleFocal, 5); err != nil {
		t.Fatal(err)
	}
	per, total = sr.Snapshot()
	var sum twoknn.Stats
	points := 0
	for i, ps := range per {
		if ps.Shard != i {
			t.Fatalf("shard index %d at position %d", ps.Shard, i)
		}
		if ps.Ops.Neighborhoods != 1 {
			t.Fatalf("shard %d recorded %d neighborhoods, want 1", i, ps.Ops.Neighborhoods)
		}
		points += ps.Points
		snap := ps.Ops
		sum.Add(&snap)
	}
	if points != 300 {
		t.Fatalf("per-shard points sum to %d", points)
	}
	if sum != total {
		t.Fatalf("aggregate %+v != per-shard sum %+v", total, sum)
	}
}

// TestShardedExplain checks the EXPLAIN surface mentions the scatter/gather
// execution and the shard layout.
func TestShardedExplain(t *testing.T) {
	ptsA, ptsB, _ := oracleDataset(t, "uniform")
	sa := buildSharded(t, "left", ptsA, twoknn.GridIndex, 3, twoknn.HashSharding)
	b := buildSingle(t, "right", ptsB, twoknn.GridIndex)
	var explain string
	if _, err := twoknn.SelectInnerJoin(sa, b, oracleFocal, 2, 4, twoknn.WithExplain(&explain)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scatter/gather", "left", "3 hash shard(s)", "right", "un-sharded"} {
		if !containsStr(explain, want) {
			t.Fatalf("explain missing %q:\n%s", want, explain)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
