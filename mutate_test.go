package twoknn_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/datagen"
)

// mutOracle mirrors a mutable relation's live point set by stable ID; its
// rebuild is the from-scratch oracle the differential battery compares
// against.
type mutOracle struct {
	pts    map[int32]twoknn.Point
	nextID int32
}

func newMutOracle(pts []twoknn.Point) *mutOracle {
	o := &mutOracle{pts: make(map[int32]twoknn.Point, len(pts)), nextID: int32(len(pts))}
	for i, p := range pts {
		o.pts[int32(i)] = p
	}
	return o
}

func (o *mutOracle) insert(pts ...twoknn.Point) []int32 {
	ids := make([]int32, len(pts))
	for i, p := range pts {
		o.pts[o.nextID] = p
		ids[i] = o.nextID
		o.nextID++
	}
	return ids
}

func (o *mutOracle) remove(ids ...int32) {
	for _, id := range ids {
		delete(o.pts, id)
	}
}

func (o *mutOracle) update(id int32, p twoknn.Point) {
	o.pts[id] = p
	if id >= o.nextID {
		o.nextID = id + 1
	}
}

// rebuild indexes the oracle's live point set from scratch.
func (o *mutOracle) rebuild(t *testing.T, kind twoknn.IndexKind, capacity int) *twoknn.Relation {
	t.Helper()
	pts := make([]twoknn.Point, 0, len(o.pts))
	for _, p := range o.pts {
		pts = append(pts, p)
	}
	opts := []twoknn.RelationOption{twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(capacity)}
	if len(pts) == 0 {
		opts = append(opts, twoknn.WithBounds(testBounds))
	}
	rel, err := twoknn.NewRelation("oracle", pts, opts...)
	if err != nil {
		t.Fatalf("rebuilding oracle: %v", err)
	}
	return rel
}

func sortedPairs(ps []twoknn.Pair) []twoknn.Pair {
	out := append([]twoknn.Pair(nil), ps...)
	twoknn.SortPairs(out)
	return out
}

func sortedTriples(ts []twoknn.Triple) []twoknn.Triple {
	out := append([]twoknn.Triple(nil), ts...)
	twoknn.SortTriples(out)
	return out
}

// checkMutatedAgainstRebuild runs every query shape against the mutated
// relation and a from-scratch rebuild of its live point set; answers must
// be byte-identical (canonical order for selects, SortPairs/SortTriples
// order for joins, whose row order tracks block layout).
func checkMutatedAgainstRebuild(t *testing.T, mut, oracle, other *twoknn.Relation) {
	t.Helper()
	f := twoknn.Point{X: 430, Y: 510}
	f2 := twoknn.Point{X: 200, Y: 250}
	rng := twoknn.NewRect(150, 150, 700, 700)
	focals := []twoknn.Point{{X: 100, Y: 100}, {X: 430, Y: 510}, {X: 900, Y: 40}, {X: 100, Y: 100}}

	type q struct {
		name string
		run  func(rel *twoknn.Relation) (any, error)
	}
	queries := []q{
		{"knn-select", func(rel *twoknn.Relation) (any, error) {
			return rel.KNNSelect(f, 7)
		}},
		{"knn-select-batch", func(rel *twoknn.Relation) (any, error) {
			return twoknn.KNNSelectBatch(rel, focals, 5)
		}},
		{"two-selects", func(rel *twoknn.Relation) (any, error) {
			return twoknn.TwoSelects(rel, f, 9, f2, 4)
		}},
		{"two-selects-batch", func(rel *twoknn.Relation) (any, error) {
			return twoknn.TwoSelectsBatch(rel, focals, 6, []twoknn.Point{f2, f2, f, f}, 3)
		}},
		{"knn-join-outer", func(rel *twoknn.Relation) (any, error) {
			ps, err := twoknn.KNNJoin(rel, other, 3)
			return sortedPairs(ps), err
		}},
		{"knn-join-inner", func(rel *twoknn.Relation) (any, error) {
			ps, err := twoknn.KNNJoin(other, rel, 3)
			return sortedPairs(ps), err
		}},
		{"select-outer-join", func(rel *twoknn.Relation) (any, error) {
			ps, err := twoknn.SelectOuterJoin(rel, other, f, 6, 2)
			return sortedPairs(ps), err
		}},
		{"range-inner-join", func(rel *twoknn.Relation) (any, error) {
			ps, err := twoknn.RangeInnerJoin(other, rel, rng, 2)
			return sortedPairs(ps), err
		}},
		{"unchained-joins", func(rel *twoknn.Relation) (any, error) {
			ts, err := twoknn.UnchainedJoins(other, rel, other, 2, 3)
			return sortedTriples(ts), err
		}},
		{"chained-joins", func(rel *twoknn.Relation) (any, error) {
			ts, err := twoknn.ChainedJoins(other, rel, other, 2, 2)
			return sortedTriples(ts), err
		}},
	}
	for _, alg := range []twoknn.Algorithm{twoknn.AlgorithmConceptual, twoknn.AlgorithmCounting, twoknn.AlgorithmBlockMarking} {
		alg := alg
		queries = append(queries, q{"select-inner-join-" + alg.String(), func(rel *twoknn.Relation) (any, error) {
			ps, err := twoknn.SelectInnerJoin(other, rel, f, 3, 12, twoknn.WithAlgorithm(alg))
			return sortedPairs(ps), err
		}})
	}

	for _, qq := range queries {
		got, err := qq.run(mut)
		if err != nil {
			t.Fatalf("%s on mutated relation: %v", qq.name, err)
		}
		want, err := qq.run(oracle)
		if err != nil {
			t.Fatalf("%s on rebuilt oracle: %v", qq.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s diverges between mutated relation and from-scratch rebuild\n got  %v\n want %v", qq.name, got, want)
		}
	}
}

// TestMutateDifferentialMatrix drives a scripted mutation sequence — dense
// inserts (with co-located duplicates), base and delta removals, moves, and
// remove-then-reinsert of the same ID — through all four index kinds,
// comparing every query shape against a from-scratch rebuild after every
// stage and after explicit compaction.
func TestMutateDifferentialMatrix(t *testing.T) {
	kinds := []twoknn.IndexKind{twoknn.GridIndex, twoknn.QuadtreeIndex, twoknn.RTreeIndex, twoknn.KDTreeIndex}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			base := datagen.Uniform(300, testBounds, 7)
			rel, err := twoknn.NewRelation("mut", base,
				twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16),
				twoknn.WithCompactThreshold(-1)) // deterministic: no background merges
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			other := uniformRelation(t, "other", 150, 8, twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16))
			oracle := newMutOracle(base)
			rng := rand.New(rand.NewSource(int64(kind) + 100))

			epoch := rel.Epoch()
			stage := func(name string) {
				t.Helper()
				if e := rel.Epoch(); e <= epoch {
					t.Fatalf("%s: epoch did not advance (%d -> %d)", name, epoch, e)
				}
				epoch = rel.Epoch()
				checkMutatedAgainstRebuild(t, rel, oracle.rebuild(t, kind, 16), other)
				if rel.Len() != len(oracle.pts) {
					t.Fatalf("%s: Len = %d, oracle has %d", name, rel.Len(), len(oracle.pts))
				}
			}

			// Stage 1: inserts, including exact duplicates of existing points.
			ins := datagen.Uniform(60, testBounds, 9)
			ins = append(ins, base[0], base[0], base[17])
			gotIDs := rel.Insert(ins...)
			wantIDs := oracle.insert(ins...)
			if !reflect.DeepEqual(gotIDs, wantIDs) {
				t.Fatalf("Insert IDs = %v, want %v", gotIDs[:3], wantIDs[:3])
			}
			stage("insert")

			// Stage 2: removals across base and delta, plus no-op removes.
			rm := []int32{0, 17, 33, gotIDs[0], gotIDs[5], 299}
			if n := rel.Remove(rm...); n != len(rm) {
				t.Fatalf("Remove = %d, want %d", n, len(rm))
			}
			oracle.remove(rm...)
			if n := rel.Remove(rm[0], 99999); n != 0 {
				t.Fatalf("repeat Remove = %d, want 0", n)
			}
			stage("remove")

			// Stage 3: moves, upsert of a fresh ID, and reinsert of removed IDs.
			for i := 0; i < 40; i++ {
				id := int32(rng.Intn(int(oracle.nextID)))
				p := twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
				existed := rel.Update(id, p)
				if _, want := oracle.pts[id]; existed != want {
					t.Fatalf("Update(%d) existed = %v, want %v", id, existed, want)
				}
				oracle.update(id, p)
			}
			reinsert := twoknn.Point{X: 512, Y: 512}
			if rel.Update(rm[0], reinsert) {
				t.Fatalf("Update of removed ID %d claims it existed", rm[0])
			}
			oracle.update(rm[0], reinsert)
			if got, ok := rel.PointByID(rm[0]); !ok || got != reinsert {
				t.Fatalf("PointByID(%d) = %v, %v after reinsert", rm[0], got, ok)
			}
			stage("update")

			// Compaction: same answers, residency drains, epoch unchanged
			// (the live set did not change, cached results stay valid).
			beforeEpoch := rel.Epoch()
			if err := rel.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			if rel.Epoch() != beforeEpoch {
				t.Fatalf("Compact bumped epoch %d -> %d", beforeEpoch, rel.Epoch())
			}
			ds := rel.DeltaStats()
			if ds.DeltaLive != 0 || ds.Tombstones != 0 {
				t.Fatalf("post-compact residency: %+v", ds)
			}
			if ds.Compactions == 0 {
				t.Fatalf("compactions counter did not advance: %+v", ds)
			}
			checkMutatedAgainstRebuild(t, rel, oracle.rebuild(t, kind, 16), other)

			// PointByID over the final state: live IDs resolve, dead don't.
			for id, p := range oracle.pts {
				if got, ok := rel.PointByID(id); !ok || got != p {
					t.Fatalf("PointByID(%d) = %v, %v; want %v, true", id, got, ok, p)
				}
			}
			for _, id := range rm[1:] {
				if _, live := oracle.pts[id]; live {
					continue // resurrected by the random Update loop
				}
				if _, ok := rel.PointByID(id); ok {
					t.Fatalf("PointByID(%d) resolves a removed point", id)
				}
			}
		})
	}
}

// TestPointByIDNotStale pins the satellite fix: the inverse index is
// per-snapshot, so mutations neither ghost removed IDs nor hide inserted
// ones — even when the inverse was built before the mutation.
func TestPointByIDNotStale(t *testing.T) {
	rel := uniformRelation(t, "stale", 100, 11)
	if _, ok := rel.PointByID(42); !ok { // force the inverse to exist
		t.Fatal("ID 42 must resolve before mutation")
	}
	rel.Remove(42)
	if _, ok := rel.PointByID(42); ok {
		t.Fatal("removed ID 42 still resolves (stale inverse)")
	}
	ids := rel.Insert(twoknn.Point{X: 5, Y: 5})
	if got, ok := rel.PointByID(ids[0]); !ok || (got != twoknn.Point{X: 5, Y: 5}) {
		t.Fatalf("inserted ID %d does not resolve: %v, %v", ids[0], got, ok)
	}
	// PointIDs/PointAt agree with the live set.
	idSet := make(map[int32]bool)
	for i, id := range rel.PointIDs() {
		idSet[id] = true
		if p, ok := rel.PointByID(id); !ok || p != rel.PointAt(i) {
			t.Fatalf("PointAt(%d)/PointByID(%d) disagree", i, id)
		}
		if rel.PointID(i) != id {
			t.Fatalf("PointID(%d) = %d, want %d", i, rel.PointID(i), id)
		}
	}
	if idSet[42] || !idSet[ids[0]] || len(idSet) != rel.Len() {
		t.Fatalf("PointIDs inconsistent with mutations: %d ids, len %d", len(idSet), rel.Len())
	}
}

// TestAutoCompaction checks that crossing the threshold triggers a
// background merge that drains the overlay without changing answers.
func TestAutoCompaction(t *testing.T) {
	base := datagen.Uniform(200, testBounds, 13)
	rel, err := twoknn.NewRelation("auto", base, twoknn.WithBlockCapacity(16),
		twoknn.WithCompactThreshold(0.10))
	if err != nil {
		t.Fatal(err)
	}
	oracle := newMutOracle(base)
	ins := datagen.Uniform(60, testBounds, 14)
	rel.Insert(ins...)
	oracle.insert(ins...)

	deadline := time.Now().Add(10 * time.Second)
	for {
		ds := rel.DeltaStats()
		if ds.Compactions >= 1 && ds.DeltaLive == 0 && ds.Tombstones == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction did not drain the overlay: %+v", ds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := rel.KNNSelect(twoknn.Point{X: 500, Y: 500}, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.rebuild(t, twoknn.GridIndex, 16).KNNSelect(twoknn.Point{X: 500, Y: 500}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-auto-compact answers diverge\n got  %v\n want %v", got, want)
	}
}

// TestMutateEmptyAndEdgeCases covers mutation starting from an empty
// relation, removing everything, and compacting an empty live set.
func TestMutateEmptyAndEdgeCases(t *testing.T) {
	for _, kind := range []twoknn.IndexKind{twoknn.GridIndex, twoknn.RTreeIndex} {
		rel, err := twoknn.NewRelation("empty", nil,
			twoknn.WithBounds(testBounds), twoknn.WithIndexKind(kind), twoknn.WithCompactThreshold(-1))
		if err != nil {
			t.Fatal(err)
		}
		if ids := rel.Insert(); ids != nil {
			t.Fatal("empty Insert must be a nil no-op")
		}
		if rel.Update(-3, twoknn.Point{}) {
			t.Fatal("negative-ID Update must be rejected")
		}
		ids := rel.Insert(twoknn.Point{X: 10, Y: 10}, twoknn.Point{X: 20, Y: 20})
		if rel.Len() != 2 {
			t.Fatalf("%v: Len = %d, want 2", kind, rel.Len())
		}
		got, err := rel.KNNSelect(twoknn.Point{X: 0, Y: 0}, 5)
		if err != nil || len(got) != 2 {
			t.Fatalf("%v: KNNSelect over delta-only relation: %v, %v", kind, got, err)
		}
		if n := rel.Remove(ids...); n != 2 {
			t.Fatalf("Remove = %d, want 2", n)
		}
		if rel.Len() != 0 {
			t.Fatalf("Len = %d after removing everything", rel.Len())
		}
		if err := rel.Compact(); err != nil {
			t.Fatalf("%v: compacting to empty: %v", kind, err)
		}
		if rel.Len() != 0 || rel.Bounds().Area() <= 0 {
			t.Fatalf("%v: post-compact empty relation: len %d bounds %v", kind, rel.Len(), rel.Bounds())
		}
		// And it keeps accepting writes after an empty compact.
		rel.Insert(twoknn.Point{X: 1, Y: 2})
		if rel.Len() != 1 {
			t.Fatalf("Len = %d after post-compact insert", rel.Len())
		}
	}
}

// TestCloneSharesMutations pins Clone semantics: clones share snapshots,
// epoch and the write path.
func TestCloneSharesMutations(t *testing.T) {
	rel := uniformRelation(t, "clone", 50, 21)
	cl := rel.Clone()
	ids := rel.Insert(twoknn.Point{X: 3, Y: 4})
	if cl.Len() != 51 {
		t.Fatalf("clone Len = %d, want 51", cl.Len())
	}
	if cl.Epoch() != rel.Epoch() {
		t.Fatal("clone epoch diverged")
	}
	if _, ok := cl.PointByID(ids[0]); !ok {
		t.Fatal("clone does not see inserted point")
	}
	cl.Remove(ids[0])
	if rel.Len() != 50 {
		t.Fatalf("original Len = %d after clone removal, want 50", rel.Len())
	}
}
