package twoknn

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/plan"
)

// Algorithm selects the evaluation strategy for queries with a selection on
// the inner relation of a kNN-join.
type Algorithm int

// The evaluation strategies.
const (
	// AlgorithmAuto lets the optimizer choose: Counting for small outer
	// relations, Block-Marking for large ones (paper, Section 3.3).
	AlgorithmAuto Algorithm = iota

	// AlgorithmConceptual evaluates the conceptually correct plan without
	// pruning: full join, full select, intersect. Slow; kept as the
	// correctness baseline and for benchmarks.
	AlgorithmConceptual

	// AlgorithmCounting uses the per-tuple Counting algorithm (Procedure 1).
	AlgorithmCounting

	// AlgorithmBlockMarking uses the per-block Block-Marking algorithm
	// (Procedures 2–3).
	AlgorithmBlockMarking
)

// String implements fmt.Stringer.
func (a Algorithm) String() string { return a.planAlgorithm().String() }

func (a Algorithm) planAlgorithm() plan.Algorithm {
	switch a {
	case AlgorithmConceptual:
		return plan.Conceptual
	case AlgorithmCounting:
		return plan.Counting
	case AlgorithmBlockMarking:
		return plan.BlockMarking
	default:
		return plan.Auto
	}
}

// JoinOrder selects which of two unchained joins runs first; see
// UnchainedJoins.
type JoinOrder = core.JoinOrder

// The unchained join orders.
const (
	// OrderAuto orders by cluster coverage (paper, Section 4.1.2).
	OrderAuto = core.OrderAuto

	// OrderABFirst evaluates (A ⋈ B) first.
	OrderABFirst = core.OrderABFirst

	// OrderCBFirst evaluates (C ⋈ B) first.
	OrderCBFirst = core.OrderCBFirst
)

// ChainedQEP selects the evaluation plan for chained joins; see
// ChainedJoins.
type ChainedQEP = core.ChainedQEP

// The chained-join plans of the paper's Figure 13.
const (
	// ChainedAuto selects the nested join with caching.
	ChainedAuto = core.ChainedAuto

	// ChainedRightDeep materializes (B ⋈ C) first (QEP1).
	ChainedRightDeep = core.ChainedRightDeep

	// ChainedJoinIntersection runs both joins and intersects on B (QEP2).
	ChainedJoinIntersection = core.ChainedJoinIntersection

	// ChainedNestedJoin computes C-neighborhoods per joined b (QEP3).
	ChainedNestedJoin = core.ChainedNestedJoin

	// ChainedNestedJoinCached is QEP3 with the neighborhood cache.
	ChainedNestedJoinCached = core.ChainedNestedJoinCached
)

// QueryOption configures a query evaluation.
type QueryOption func(*queryConfig)

type queryConfig struct {
	algorithm         Algorithm
	countingThreshold int
	order             JoinOrder
	chained           ChainedQEP
	exhaustive        bool
	parallelism       int
	stats             *Stats
	explain           *string
}

func applyOptions(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithAlgorithm forces the evaluation strategy for SelectInnerJoin and
// RangeInnerJoin (default AlgorithmAuto).
func WithAlgorithm(a Algorithm) QueryOption {
	return func(c *queryConfig) { c.algorithm = a }
}

// WithCountingThreshold overrides the outer-relation cardinality at which
// AlgorithmAuto switches from Counting to Block-Marking.
func WithCountingThreshold(n int) QueryOption {
	return func(c *queryConfig) { c.countingThreshold = n }
}

// WithJoinOrder forces the first join of UnchainedJoins (default OrderAuto).
func WithJoinOrder(o JoinOrder) QueryOption {
	return func(c *queryConfig) { c.order = o }
}

// WithChainedQEP forces the ChainedJoins plan (default ChainedAuto).
func WithChainedQEP(q ChainedQEP) QueryOption {
	return func(c *queryConfig) { c.chained = q }
}

// WithExhaustivePreprocessing disables the contour early-stop of
// Block-Marking preprocessing, checking every outer block individually.
// Automatic for indexes whose blocks do not tile space (R-trees).
func WithExhaustivePreprocessing() QueryOption {
	return func(c *queryConfig) { c.exhaustive = true }
}

// WithParallelism runs KNNJoin over n workers (n ≤ 0 selects GOMAXPROCS;
// the default without this option is sequential). The result is identical
// to the sequential evaluation, including order. Currently honored by
// KNNJoin; the two-predicate queries evaluate sequentially, as in the
// paper.
func WithParallelism(n int) QueryOption {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return func(c *queryConfig) { c.parallelism = n }
}

// WithStats accumulates operation counters for the query into s.
func WithStats(s *Stats) QueryOption {
	return func(c *queryConfig) { c.stats = s }
}

// WithExplain stores an EXPLAIN rendering of the executed plan (including
// the optimizer's reasoning) into target.
func WithExplain(target *string) QueryOption {
	return func(c *queryConfig) { c.explain = target }
}

// SelectInnerJoin evaluates the Section 3 query
//
//	(outer ⋈kNN inner) ∩ (outer × σ_{kSel,f}(inner)),
//
// returning pairs (e1, e2) where e2 is among the kJoin nearest neighbors of
// e1 AND among the kSel nearest neighbors of the focal point f. Pushing the
// select below the inner relation would be invalid (the optimizer refuses
// it; see plan.ValidateSelectPushdown); the Counting and Block-Marking
// strategies deliver the pruning instead.
func SelectInnerJoin(outer, inner *Relation, f Point, kJoin, kSel int, opts ...QueryOption) ([]Pair, error) {
	if err := checkRelations(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("kJoin", kJoin); err != nil {
		return nil, err
	}
	if err := checkK("kSel", kSel); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	alg, reason := plan.ChooseSelectJoinAlgorithm(cfg.algorithm.planAlgorithm(), outer.Len(), cfg.countingThreshold)

	var pairs []Pair
	switch alg {
	case plan.Conceptual:
		pairs = core.SelectInnerJoinConceptual(outer.rel, inner.rel, f, kJoin, kSel, cfg.stats)
	case plan.Counting:
		pairs = core.SelectInnerJoinCounting(outer.rel, inner.rel, f, kJoin, kSel, cfg.stats)
	default:
		pairs = core.SelectInnerJoinBlockMarking(outer.rel, inner.rel, f, kJoin, kSel,
			core.BlockMarkingOptions{Exhaustive: cfg.exhaustive}, cfg.stats)
	}

	if cfg.explain != nil {
		node := plan.SelectInnerJoinPlan(alg, outer.name, inner.name, outer.Len(), inner.Len(), kJoin, kSel)
		*cfg.explain = fmt.Sprintf("strategy: %s (%s)\n%s", alg, reason, node.Explain())
	}
	return pairs, nil
}

// SelectOuterJoin evaluates a kNN-select on the outer relation of a
// kNN-join: (σ_{kSel,f}(outer)) ⋈kNN inner. The pushdown is valid (paper,
// Figure 3), so the select runs first and only selected points join.
func SelectOuterJoin(outer, inner *Relation, f Point, kSel, kJoin int, opts ...QueryOption) ([]Pair, error) {
	if err := checkRelations(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("kSel", kSel); err != nil {
		return nil, err
	}
	if err := checkK("kJoin", kJoin); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	pairs := core.SelectOuterJoin(outer.rel, inner.rel, f, kSel, kJoin, cfg.stats)
	if cfg.explain != nil {
		node := plan.SelectOuterJoinPlan(outer.name, inner.name, outer.Len(), inner.Len(), kSel, kJoin)
		*cfg.explain = node.Explain()
	}
	return pairs, nil
}

// UnchainedJoins evaluates the Section 4.1 query
//
//	(a ⋈kNN b) ∩B (c ⋈kNN b),
//
// returning triples (x, y, z) where y is among the kAB nearest neighbors of
// x in b AND among the kCB nearest neighbors of z in b. Both joins are
// evaluated independently (evaluating one over the other's output would be
// invalid); Candidate/Safe block marking prunes the second join's outer
// relation, and OrderAuto starts with the more clustered outer relation.
// When both outer relations look uniform the optimizer skips the
// preprocessing entirely (it would cost without payoff, Section 4.1.2).
func UnchainedJoins(a, b, c *Relation, kAB, kCB int, opts ...QueryOption) ([]Triple, error) {
	if err := checkRelations(a, b, c); err != nil {
		return nil, err
	}
	if err := checkK("kAB", kAB); err != nil {
		return nil, err
	}
	if err := checkK("kCB", kCB); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	covA := core.EstimateClusterCoverage(a.rel)
	covC := core.EstimateClusterCoverage(c.rel)
	order, prune, reason := plan.ChooseJoinOrder(cfg.order, covA, covC)

	var triples []Triple
	if prune {
		triples = core.UnchainedBlockMarking(a.rel, b.rel, c.rel, kAB, kCB, order, cfg.stats)
	} else {
		triples = core.UnchainedConceptual(a.rel, b.rel, c.rel, kAB, kCB, cfg.stats)
	}

	if cfg.explain != nil {
		node := plan.UnchainedPlan(order, prune, a.name, b.name, c.name, a.Len(), b.Len(), c.Len(), kAB, kCB)
		*cfg.explain = fmt.Sprintf("order: %s (%s)\n%s", order, reason, node.Explain())
	}
	return triples, nil
}

// ChainedJoins evaluates the Section 4.2 query over chained joins a→b→c,
//
//	(a ⋈kNN b) ∩B (b ⋈kNN c),
//
// returning triples (x, y, z) where y is among the kAB nearest neighbors of
// x and z is among the kBC nearest neighbors of y. All plans of the paper's
// Figure 13 are available and produce identical results; ChainedAuto uses
// the nested join with a neighborhood cache, the paper's winner.
func ChainedJoins(a, b, c *Relation, kAB, kBC int, opts ...QueryOption) ([]Triple, error) {
	if err := checkRelations(a, b, c); err != nil {
		return nil, err
	}
	if err := checkK("kAB", kAB); err != nil {
		return nil, err
	}
	if err := checkK("kBC", kBC); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	qep, reason := plan.ChooseChainedQEP(cfg.chained)
	triples := core.ChainedJoins(a.rel, b.rel, c.rel, kAB, kBC, qep, cfg.stats)
	if cfg.explain != nil {
		node := plan.ChainedPlan(qep, a.name, b.name, c.name, a.Len(), b.Len(), c.Len(), kAB, kBC)
		*cfg.explain = fmt.Sprintf("plan: %s (%s)\n%s", qep, reason, node.Explain())
	}
	return triples, nil
}

// TwoSelects evaluates the Section 5 query
//
//	σ_{k1,f1}(rel) ∩ σ_{k2,f2}(rel),
//
// returning the points that are simultaneously among the k1 nearest to f1
// and the k2 nearest to f2. Evaluating one select over the other's output
// would be invalid; the 2-kNN-select algorithm evaluates the smaller-k
// predicate first and clips the larger predicate's locality to the answer's
// possible extent, making cost nearly independent of the larger k.
func TwoSelects(rel *Relation, f1 Point, k1 int, f2 Point, k2 int, opts ...QueryOption) ([]Point, error) {
	if err := checkRelations(rel); err != nil {
		return nil, err
	}
	if err := checkK("k1", k1); err != nil {
		return nil, err
	}
	if err := checkK("k2", k2); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	var pts []Point
	if cfg.algorithm == AlgorithmConceptual {
		pts = core.TwoSelectsConceptual(rel.rel, f1, k1, f2, k2, cfg.stats)
	} else {
		pts = core.TwoSelects(rel.rel, f1, k1, f2, k2, cfg.stats)
	}
	if cfg.explain != nil {
		node := plan.TwoSelectsPlan(cfg.algorithm != AlgorithmConceptual, rel.name, rel.Len(), k1, k2)
		*cfg.explain = node.Explain()
	}
	return pts, nil
}

// RangeInnerJoin evaluates the footnote-1 extension of Section 3: pairs
// (e1, e2) where e2 is among the kJoin nearest neighbors of e1 AND lies in
// the query rectangle. Like the kNN-select case, pushing the range filter
// below the inner relation would be invalid; Counting and Block-Marking
// adaptations deliver the pruning.
func RangeInnerJoin(outer, inner *Relation, rng Rect, kJoin int, opts ...QueryOption) ([]Pair, error) {
	if err := checkRelations(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("kJoin", kJoin); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	alg, reason := plan.ChooseSelectJoinAlgorithm(cfg.algorithm.planAlgorithm(), outer.Len(), cfg.countingThreshold)

	var pairs []Pair
	switch alg {
	case plan.Conceptual:
		pairs = core.RangeInnerJoinConceptual(outer.rel, inner.rel, rng, kJoin, cfg.stats)
	case plan.Counting:
		pairs = core.RangeInnerJoinCounting(outer.rel, inner.rel, rng, kJoin, cfg.stats)
	default:
		pairs = core.RangeInnerJoinBlockMarking(outer.rel, inner.rel, rng, kJoin,
			core.BlockMarkingOptions{Exhaustive: cfg.exhaustive}, cfg.stats)
	}
	if cfg.explain != nil {
		node := plan.RangeInnerJoinPlan(alg, outer.name, inner.name, outer.Len(), inner.Len(), kJoin, rng.String())
		*cfg.explain = fmt.Sprintf("strategy: %s (%s)\n%s", alg, reason, node.Explain())
	}
	return pairs, nil
}

// SortPairs orders pairs canonically (Left then Right) in place, so results
// from different strategies can be compared directly.
func SortPairs(ps []Pair) { core.SortPairs(ps) }

// SortTriples orders triples canonically (A, B, C) in place.
func SortTriples(ts []Triple) { core.SortTriples(ts) }

// SortPoints orders points canonically (X then Y) in place.
func SortPoints(ps []Point) { core.SortPoints(ps) }
