package twoknn

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/shard"
)

// shardStrategy maps a resolved planner algorithm onto the scatter/gather
// drivers' candidate-generation strategy.
func shardStrategy(alg plan.Algorithm) shard.Strategy {
	switch alg {
	case plan.Conceptual:
		return shard.StrategyConceptual
	case plan.Counting:
		return shard.StrategyCounting
	default:
		return shard.StrategyBlockMarking
	}
}

// shardedExplain renders the EXPLAIN header for a scatter/gather execution.
func shardedExplain(op string, detail string, srcs ...Source) string {
	s := fmt.Sprintf("execution: sharded scatter/gather %s", op)
	if detail != "" {
		s += " (" + detail + ")"
	}
	s += "\n"
	for _, src := range srcs {
		n := 1
		if sh, ok := src.(*ShardedRelation); ok {
			n = sh.NumShards()
			s += fmt.Sprintf("  %s: %d points, %d %s shard(s)\n", src.Name(), src.Len(), n, sh.Policy())
		} else {
			s += fmt.Sprintf("  %s: %d points, un-sharded\n", src.Name(), src.Len())
		}
	}
	return s
}

// allSingle reports whether every source is a single un-sharded relation,
// returning the backing relations when so.
func allSingle(srcs ...Source) ([]*Relation, bool) {
	rels := make([]*Relation, len(srcs))
	for i, s := range srcs {
		r := s.singleRelation()
		if r == nil {
			return nil, false
		}
		rels[i] = r
	}
	return rels, true
}

// execGroups resolves the scatter/gather views of the sources, calling
// execGroup exactly once per distinct source value so repeated arguments
// resolve to one snapshot even while the relation is being mutated.
func execGroups(srcs ...Source) []shard.Group {
	out := make([]shard.Group, len(srcs))
	for i, s := range srcs {
		reused := false
		for j := 0; j < i; j++ {
			same := srcs[j] == s
			if !same {
				// Clones share data but differ as interface values.
				if a, b := srcs[j].singleRelation(), s.singleRelation(); a != nil && b != nil && a.d == b.d {
					same = true
				}
			}
			if same {
				out[i] = out[j]
				reused = true
				break
			}
		}
		if !reused {
			out[i] = s.execGroup()
		}
	}
	return out
}

// Algorithm selects the evaluation strategy for queries with a selection on
// the inner relation of a kNN-join.
type Algorithm int

// The evaluation strategies.
const (
	// AlgorithmAuto lets the optimizer choose: Counting for small outer
	// relations, Block-Marking for large ones (paper, Section 3.3).
	AlgorithmAuto Algorithm = iota

	// AlgorithmConceptual evaluates the conceptually correct plan without
	// pruning: full join, full select, intersect. Slow; kept as the
	// correctness baseline and for benchmarks.
	AlgorithmConceptual

	// AlgorithmCounting uses the per-tuple Counting algorithm (Procedure 1).
	AlgorithmCounting

	// AlgorithmBlockMarking uses the per-block Block-Marking algorithm
	// (Procedures 2–3).
	AlgorithmBlockMarking
)

// String implements fmt.Stringer.
func (a Algorithm) String() string { return a.planAlgorithm().String() }

func (a Algorithm) planAlgorithm() plan.Algorithm {
	switch a {
	case AlgorithmConceptual:
		return plan.Conceptual
	case AlgorithmCounting:
		return plan.Counting
	case AlgorithmBlockMarking:
		return plan.BlockMarking
	default:
		return plan.Auto
	}
}

// JoinOrder selects which of two unchained joins runs first; see
// UnchainedJoins.
type JoinOrder = core.JoinOrder

// The unchained join orders.
const (
	// OrderAuto orders by cluster coverage (paper, Section 4.1.2).
	OrderAuto = core.OrderAuto

	// OrderABFirst evaluates (A ⋈ B) first.
	OrderABFirst = core.OrderABFirst

	// OrderCBFirst evaluates (C ⋈ B) first.
	OrderCBFirst = core.OrderCBFirst
)

// ChainedQEP selects the evaluation plan for chained joins; see
// ChainedJoins.
type ChainedQEP = core.ChainedQEP

// The chained-join plans of the paper's Figure 13.
const (
	// ChainedAuto selects the nested join with caching.
	ChainedAuto = core.ChainedAuto

	// ChainedRightDeep materializes (B ⋈ C) first (QEP1).
	ChainedRightDeep = core.ChainedRightDeep

	// ChainedJoinIntersection runs both joins and intersects on B (QEP2).
	ChainedJoinIntersection = core.ChainedJoinIntersection

	// ChainedNestedJoin computes C-neighborhoods per joined b (QEP3).
	ChainedNestedJoin = core.ChainedNestedJoin

	// ChainedNestedJoinCached is QEP3 with the neighborhood cache.
	ChainedNestedJoinCached = core.ChainedNestedJoinCached
)

// QueryOption configures a query evaluation.
type QueryOption func(*queryConfig)

type queryConfig struct {
	algorithm         Algorithm
	countingThreshold int
	order             JoinOrder
	chained           ChainedQEP
	exhaustive        bool
	concurrency       int
	ctx               context.Context
	stats             *Stats
	explain           *string
	partial           bool
}

func applyOptions(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithAlgorithm forces the evaluation strategy for SelectInnerJoin and
// RangeInnerJoin (default AlgorithmAuto).
func WithAlgorithm(a Algorithm) QueryOption {
	return func(c *queryConfig) { c.algorithm = a }
}

// WithCountingThreshold overrides the outer-relation cardinality at which
// AlgorithmAuto switches from Counting to Block-Marking.
func WithCountingThreshold(n int) QueryOption {
	return func(c *queryConfig) { c.countingThreshold = n }
}

// WithJoinOrder forces the first join of UnchainedJoins (default OrderAuto).
func WithJoinOrder(o JoinOrder) QueryOption {
	return func(c *queryConfig) { c.order = o }
}

// WithChainedQEP forces the ChainedJoins plan (default ChainedAuto).
func WithChainedQEP(q ChainedQEP) QueryOption {
	return func(c *queryConfig) { c.chained = q }
}

// WithExhaustivePreprocessing disables the contour early-stop of
// Block-Marking preprocessing, checking every outer block individually.
// Automatic for indexes whose blocks do not tile space (R-trees).
func WithExhaustivePreprocessing() QueryOption {
	return func(c *queryConfig) { c.exhaustive = true }
}

// WithConcurrency fans one query's tuple batches out across n workers
// (n ≤ 0 selects GOMAXPROCS; the default without this option is
// sequential). Each worker borrows a searcher handle from the inner
// relation's pool and appends into a private arena, so the result is
// identical to the sequential evaluation — including order — and no
// per-batch result allocation occurs.
//
// The option is honored by the join algorithms: KNNJoin, SelectInnerJoin
// (all strategies), SelectOuterJoin, RangeInnerJoin (all strategies),
// UnchainedJoins and ChainedJoins. KNNSelect and TwoSelects evaluate one
// or two tuples and ignore it. On a relation bounded with WithMaxSearchers
// the fan-out degrades gracefully: workers that cannot obtain a handle
// stand down instead of blocking, and the query still completes.
//
// WithConcurrency parallelizes one query. Independently of it, every query
// entry point is safe to call from many goroutines against the same
// relations; use both to scale a server on top of intra-query parallelism.
func WithConcurrency(n int) QueryOption {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return func(c *queryConfig) { c.concurrency = n }
}

// WithParallelism is the former name of WithConcurrency.
//
// Deprecated: use WithConcurrency, which now covers every join algorithm,
// not only KNNJoin.
func WithParallelism(n int) QueryOption { return WithConcurrency(n) }

// WithStats accumulates operation counters for the query into s. The
// counters are atomic: one *Stats may be shared across concurrent queries
// (e.g. a server-wide total) without locking.
func WithStats(s *Stats) QueryOption {
	return func(c *queryConfig) { c.stats = s }
}

// WithExplain stores an EXPLAIN rendering of the executed plan (including
// the optimizer's reasoning) into target.
func WithExplain(target *string) QueryOption {
	return func(c *queryConfig) { c.explain = target }
}

// KNNSelect evaluates σ_{k,f}(rel): the k points of the source closest to
// the focal point f, in ascending (distance, X, Y) order. It is the
// package-level form of the Relation/ShardedRelation methods, accepting any
// Source so callers that hold a mixed dataset registry (e.g. a query server)
// dispatch uniformly. It errors on a nil source (ErrNilRelation) and
// non-positive k (ErrNonPositiveK).
func KNNSelect(rel Source, f Point, k int, opts ...QueryOption) ([]Point, error) {
	if err := checkSources(rel); err != nil {
		return nil, err
	}
	if err := checkK("k", k); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	r := rel.singleRelation()
	return runQuery(&cfg, func() ([]Point, error) {
		if r == nil {
			return shard.Select(cfg.ctx, rel.execGroup(), f, k, cfg.stats), nil
		}
		h := acquireHandle(cfg.ctx, r.snapshot().rel)
		defer h.Release()
		return core.KNNSelect(h, f, k, cfg.stats), nil
	})
}

// SelectInnerJoin evaluates the Section 3 query
//
//	(outer ⋈kNN inner) ∩ (outer × σ_{kSel,f}(inner)),
//
// returning pairs (e1, e2) where e2 is among the kJoin nearest neighbors of
// e1 AND among the kSel nearest neighbors of the focal point f. Pushing the
// select below the inner relation would be invalid (the optimizer refuses
// it; see plan.ValidateSelectPushdown); the Counting and Block-Marking
// strategies deliver the pruning instead.
func SelectInnerJoin(outer, inner Source, f Point, kJoin, kSel int, opts ...QueryOption) ([]Pair, error) {
	if err := checkSources(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("kJoin", kJoin); err != nil {
		return nil, err
	}
	if err := checkK("kSel", kSel); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	alg, reason := plan.ChooseSelectJoinAlgorithm(cfg.algorithm.planAlgorithm(), outer.Len(), cfg.countingThreshold)

	rels, single := allSingle(outer, inner)
	return runQuery(&cfg, func() ([]Pair, error) {
		if !single {
			gs := execGroups(outer, inner)
			pairs := shard.SelectInnerJoin(cfg.ctx, gs[0], gs[1], f, kJoin, kSel,
				shardStrategy(alg), cfg.concurrency, cfg.stats)
			if cfg.explain != nil {
				*cfg.explain = shardedExplain("select-inner-join",
					fmt.Sprintf("strategy %s: %s", alg, reason), outer, inner)
			}
			return pairs, nil
		}

		// Every strategy probes only the inner relation's searcher; the outer
		// side is scanned through its immutable snapshot and needs no handle.
		co, ci := snapshotPair(rels[0], rels[1])
		hi := acquireHandle(cfg.ctx, ci)
		defer hi.Release()
		ho := co

		var pairs []Pair
		switch {
		case alg == plan.Conceptual && cfg.concurrency > 1:
			pairs = core.SelectInnerJoinConceptualParallel(ho, hi, f, kJoin, kSel, cfg.concurrency, cfg.stats)
		case alg == plan.Conceptual:
			pairs = core.SelectInnerJoinConceptual(ho, hi, f, kJoin, kSel, cfg.stats)
		case alg == plan.Counting && cfg.concurrency > 1:
			pairs = core.SelectInnerJoinCountingParallel(ho, hi, f, kJoin, kSel, cfg.concurrency, cfg.stats)
		case alg == plan.Counting:
			pairs = core.SelectInnerJoinCounting(ho, hi, f, kJoin, kSel, cfg.stats)
		case cfg.concurrency > 1:
			pairs = core.SelectInnerJoinBlockMarkingParallel(ho, hi, f, kJoin, kSel,
				core.BlockMarkingOptions{Exhaustive: cfg.exhaustive}, cfg.concurrency, cfg.stats)
		default:
			pairs = core.SelectInnerJoinBlockMarking(ho, hi, f, kJoin, kSel,
				core.BlockMarkingOptions{Exhaustive: cfg.exhaustive}, cfg.stats)
		}

		if cfg.explain != nil {
			node := plan.SelectInnerJoinPlan(alg, outer.Name(), inner.Name(), outer.Len(), inner.Len(), kJoin, kSel)
			*cfg.explain = fmt.Sprintf("strategy: %s (%s)\n%s", alg, reason, node.Explain())
		}
		return pairs, nil
	})
}

// SelectOuterJoin evaluates a kNN-select on the outer relation of a
// kNN-join: (σ_{kSel,f}(outer)) ⋈kNN inner. The pushdown is valid (paper,
// Figure 3), so the select runs first and only selected points join.
func SelectOuterJoin(outer, inner Source, f Point, kSel, kJoin int, opts ...QueryOption) ([]Pair, error) {
	if err := checkSources(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("kSel", kSel); err != nil {
		return nil, err
	}
	if err := checkK("kJoin", kJoin); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	rels, single := allSingle(outer, inner)
	return runQuery(&cfg, func() ([]Pair, error) {
		if !single {
			gs := execGroups(outer, inner)
			pairs := shard.SelectOuterJoin(cfg.ctx, gs[0], gs[1], f, kSel, kJoin,
				cfg.concurrency, cfg.stats)
			if cfg.explain != nil {
				*cfg.explain = shardedExplain("select-outer-join", "valid pushdown: select gathers first", outer, inner)
			}
			return pairs, nil
		}
		co, ci := snapshotPair(rels[0], rels[1])
		ho, hi := acquireHandlePair(cfg.ctx, co, ci)
		defer core.ReleasePair(ho, hi)
		var pairs []Pair
		if cfg.concurrency > 1 {
			pairs = core.SelectOuterJoinParallel(ho, hi, f, kSel, kJoin, cfg.concurrency, cfg.stats)
		} else {
			pairs = core.SelectOuterJoin(ho, hi, f, kSel, kJoin, cfg.stats)
		}
		if cfg.explain != nil {
			node := plan.SelectOuterJoinPlan(outer.Name(), inner.Name(), outer.Len(), inner.Len(), kSel, kJoin)
			*cfg.explain = node.Explain()
		}
		return pairs, nil
	})
}

// UnchainedJoins evaluates the Section 4.1 query
//
//	(a ⋈kNN b) ∩B (c ⋈kNN b),
//
// returning triples (x, y, z) where y is among the kAB nearest neighbors of
// x in b AND among the kCB nearest neighbors of z in b. Both joins are
// evaluated independently (evaluating one over the other's output would be
// invalid); Candidate/Safe block marking prunes the second join's outer
// relation, and OrderAuto starts with the more clustered outer relation.
// When both outer relations look uniform the optimizer skips the
// preprocessing entirely (it would cost without payoff, Section 4.1.2).
func UnchainedJoins(a, b, c Source, kAB, kCB int, opts ...QueryOption) ([]Triple, error) {
	if err := checkSources(a, b, c); err != nil {
		return nil, err
	}
	if err := checkK("kAB", kAB); err != nil {
		return nil, err
	}
	if err := checkK("kCB", kCB); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	rels, single := allSingle(a, b, c)
	return runQuery(&cfg, func() ([]Triple, error) {
		if !single {
			// Scatter/gather evaluates both joins independently (the
			// conceptually correct plan); WithJoinOrder only reorders work, so
			// the sharded path ignores it without changing the answer.
			gs := execGroups(a, b, c)
			triples := shard.Unchained(cfg.ctx, gs[0], gs[1], gs[2], kAB, kCB,
				cfg.concurrency, cfg.stats)
			if cfg.explain != nil {
				*cfg.explain = shardedExplain("unchained-joins", "both joins evaluated independently, intersected on B", a, b, c)
			}
			return triples, nil
		}
		cs := snapshotCores(rels)
		covA := core.EstimateClusterCoverage(cs[0])
		covC := core.EstimateClusterCoverage(cs[2])
		order, prune, reason := plan.ChooseJoinOrder(cfg.order, covA, covC)

		// Both unchained joins probe only B's searcher; A and C are scanned
		// through their immutable snapshots and need no handles.
		hb := acquireHandle(cfg.ctx, cs[1])
		defer hb.Release()

		var triples []Triple
		switch {
		case prune && cfg.concurrency > 1:
			triples = core.UnchainedBlockMarkingParallel(cs[0], hb, cs[2], kAB, kCB, order, cfg.concurrency, cfg.stats)
		case prune:
			triples = core.UnchainedBlockMarking(cs[0], hb, cs[2], kAB, kCB, order, cfg.stats)
		case cfg.concurrency > 1:
			triples = core.UnchainedConceptualParallel(cs[0], hb, cs[2], kAB, kCB, cfg.concurrency, cfg.stats)
		default:
			triples = core.UnchainedConceptual(cs[0], hb, cs[2], kAB, kCB, cfg.stats)
		}

		if cfg.explain != nil {
			node := plan.UnchainedPlan(order, prune, a.Name(), b.Name(), c.Name(), a.Len(), b.Len(), c.Len(), kAB, kCB)
			*cfg.explain = fmt.Sprintf("order: %s (%s)\n%s", order, reason, node.Explain())
		}
		return triples, nil
	})
}

// ChainedJoins evaluates the Section 4.2 query over chained joins a→b→c,
//
//	(a ⋈kNN b) ∩B (b ⋈kNN c),
//
// returning triples (x, y, z) where y is among the kAB nearest neighbors of
// x and z is among the kBC nearest neighbors of y. All plans of the paper's
// Figure 13 are available and produce identical results; ChainedAuto uses
// the nested join with a neighborhood cache, the paper's winner.
func ChainedJoins(a, b, c Source, kAB, kBC int, opts ...QueryOption) ([]Triple, error) {
	if err := checkSources(a, b, c); err != nil {
		return nil, err
	}
	if err := checkK("kAB", kAB); err != nil {
		return nil, err
	}
	if err := checkK("kBC", kBC); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	rels, single := allSingle(a, b, c)
	return runQuery(&cfg, func() ([]Triple, error) {
		if !single {
			// All Figure 13 QEPs produce identical triples; the scatter/gather
			// path always runs the nested join with per-worker caches (the
			// paper's winner), so WithChainedQEP does not change the answer.
			gs := execGroups(a, b, c)
			triples := shard.Chained(cfg.ctx, gs[0], gs[1], gs[2], kAB, kBC,
				cfg.concurrency, cfg.stats)
			if cfg.explain != nil {
				*cfg.explain = shardedExplain("chained-joins", "nested join with per-worker neighborhood caches", a, b, c)
			}
			return triples, nil
		}
		qep, reason := plan.ChooseChainedQEP(cfg.chained)
		cs := snapshotCores(rels)
		// The chain probes B's and C's searchers (A is only scanned), so two
		// handles suffice; AcquirePair dedups b == c and orders the blocking
		// acquisitions deadlock-free.
		hb, hc := acquireHandlePair(cfg.ctx, cs[1], cs[2])
		defer core.ReleasePair(hb, hc)
		var triples []Triple
		if cfg.concurrency > 1 {
			triples = core.ChainedJoinsParallel(cs[0], hb, hc, kAB, kBC, qep, cfg.concurrency, cfg.stats)
		} else {
			triples = core.ChainedJoins(cs[0], hb, hc, kAB, kBC, qep, cfg.stats)
		}
		if cfg.explain != nil {
			node := plan.ChainedPlan(qep, a.Name(), b.Name(), c.Name(), a.Len(), b.Len(), c.Len(), kAB, kBC)
			*cfg.explain = fmt.Sprintf("plan: %s (%s)\n%s", qep, reason, node.Explain())
		}
		return triples, nil
	})
}

// TwoSelects evaluates the Section 5 query
//
//	σ_{k1,f1}(rel) ∩ σ_{k2,f2}(rel),
//
// returning the points that are simultaneously among the k1 nearest to f1
// and the k2 nearest to f2. Evaluating one select over the other's output
// would be invalid; the 2-kNN-select algorithm evaluates the smaller-k
// predicate first and clips the larger predicate's locality to the answer's
// possible extent, making cost nearly independent of the larger k.
func TwoSelects(rel Source, f1 Point, k1 int, f2 Point, k2 int, opts ...QueryOption) ([]Point, error) {
	if err := checkSources(rel); err != nil {
		return nil, err
	}
	if err := checkK("k1", k1); err != nil {
		return nil, err
	}
	if err := checkK("k2", k2); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	r := rel.singleRelation()
	return runQuery(&cfg, func() ([]Point, error) {
		if r == nil {
			pts := shard.TwoSelects(cfg.ctx, rel.execGroup(), f1, k1, f2, k2,
				cfg.algorithm == AlgorithmConceptual, cfg.stats)
			if cfg.explain != nil {
				*cfg.explain = shardedExplain("two-selects", "smaller-k predicate first, per-shard clipped locality", rel)
			}
			return pts, nil
		}
		h := acquireHandle(cfg.ctx, r.snapshot().rel)
		defer h.Release()
		var pts []Point
		if cfg.algorithm == AlgorithmConceptual {
			pts = core.TwoSelectsConceptual(h, f1, k1, f2, k2, cfg.stats)
		} else {
			pts = core.TwoSelects(h, f1, k1, f2, k2, cfg.stats)
		}
		if cfg.explain != nil {
			node := plan.TwoSelectsPlan(cfg.algorithm != AlgorithmConceptual, rel.Name(), rel.Len(), k1, k2)
			*cfg.explain = node.Explain()
		}
		return pts, nil
	})
}

// RangeInnerJoin evaluates the footnote-1 extension of Section 3: pairs
// (e1, e2) where e2 is among the kJoin nearest neighbors of e1 AND lies in
// the query rectangle. Like the kNN-select case, pushing the range filter
// below the inner relation would be invalid; Counting and Block-Marking
// adaptations deliver the pruning.
func RangeInnerJoin(outer, inner Source, rng Rect, kJoin int, opts ...QueryOption) ([]Pair, error) {
	if err := checkSources(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("kJoin", kJoin); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	alg, reason := plan.ChooseSelectJoinAlgorithm(cfg.algorithm.planAlgorithm(), outer.Len(), cfg.countingThreshold)

	rels, single := allSingle(outer, inner)
	return runQuery(&cfg, func() ([]Pair, error) {
		if !single {
			gs := execGroups(outer, inner)
			pairs := shard.RangeJoin(cfg.ctx, gs[0], gs[1], rng, kJoin,
				shardStrategy(alg), cfg.concurrency, cfg.stats)
			if cfg.explain != nil {
				*cfg.explain = shardedExplain("range-inner-join",
					fmt.Sprintf("strategy %s: %s", alg, reason), outer, inner)
			}
			return pairs, nil
		}

		// Every strategy probes only the inner relation's searcher; the outer
		// side is scanned through its immutable snapshot and needs no handle.
		co, ci := snapshotPair(rels[0], rels[1])
		hi := acquireHandle(cfg.ctx, ci)
		defer hi.Release()
		ho := co

		var pairs []Pair
		switch {
		case alg == plan.Conceptual && cfg.concurrency > 1:
			pairs = core.RangeInnerJoinConceptualParallel(ho, hi, rng, kJoin, cfg.concurrency, cfg.stats)
		case alg == plan.Conceptual:
			pairs = core.RangeInnerJoinConceptual(ho, hi, rng, kJoin, cfg.stats)
		case alg == plan.Counting && cfg.concurrency > 1:
			pairs = core.RangeInnerJoinCountingParallel(ho, hi, rng, kJoin, cfg.concurrency, cfg.stats)
		case alg == plan.Counting:
			pairs = core.RangeInnerJoinCounting(ho, hi, rng, kJoin, cfg.stats)
		case cfg.concurrency > 1:
			pairs = core.RangeInnerJoinBlockMarkingParallel(ho, hi, rng, kJoin,
				core.BlockMarkingOptions{Exhaustive: cfg.exhaustive}, cfg.concurrency, cfg.stats)
		default:
			pairs = core.RangeInnerJoinBlockMarking(ho, hi, rng, kJoin,
				core.BlockMarkingOptions{Exhaustive: cfg.exhaustive}, cfg.stats)
		}
		if cfg.explain != nil {
			node := plan.RangeInnerJoinPlan(alg, outer.Name(), inner.Name(), outer.Len(), inner.Len(), kJoin, rng.String())
			*cfg.explain = fmt.Sprintf("strategy: %s (%s)\n%s", alg, reason, node.Explain())
		}
		return pairs, nil
	})
}

// SortPairs orders pairs canonically (Left then Right) in place, so results
// from different strategies can be compared directly.
func SortPairs(ps []Pair) { core.SortPairs(ps) }

// SortTriples orders triples canonically (A, B, C) in place.
func SortTriples(ts []Triple) { core.SortTriples(ts) }

// SortPoints orders points canonically (X then Y) in place.
func SortPoints(ps []Point) { core.SortPoints(ps) }
