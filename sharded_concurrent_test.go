package twoknn_test

import (
	"reflect"
	"sync"
	"testing"

	twoknn "repro"
	"repro/internal/datagen"
)

// TestShardedConcurrentMixedShapes is the satellite-4 race test: 16
// goroutines issue a mix of all query shapes against one shared
// ShardedRelation whose per-shard searcher pools are bounded (so handle
// acquisition actually contends and the ordered-acquisition discipline is
// exercised), with intra-query fan-out on top. It asserts no deadlock (the
// test completes), every concurrent result identical to the precomputed
// sequential answer, and a stable aggregate Snapshot (per-shard counters sum
// to the aggregate, and all probe work is accounted).
func TestShardedConcurrentMixedShapes(t *testing.T) {
	bounds := twoknn.NewRect(0, 0, 1000, 1000)
	ptsA := datagen.Uniform(260, bounds, 41)
	ptsB := datagen.Uniform(220, bounds, 42)
	ptsC := datagen.Uniform(180, bounds, 43)
	f1 := twoknn.Point{X: 400, Y: 450}
	f2 := twoknn.Point{X: 700, Y: 200}
	rng := twoknn.NewRect(250, 250, 650, 750)

	// Bounded pools: 2 handles per shard — far fewer than 16 goroutines.
	sharded := func(name string, pts []twoknn.Point, s int, p twoknn.ShardPolicy) *twoknn.ShardedRelation {
		rel, err := twoknn.NewShardedRelation(name, pts, s,
			twoknn.WithBounds(bounds), twoknn.WithBlockCapacity(16),
			twoknn.WithShardPolicy(p), twoknn.WithMaxSearchers(2))
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	sa := sharded("A", ptsA, 3, twoknn.HashSharding)
	sb := sharded("B", ptsB, 2, twoknn.SpatialSharding)
	sc := sharded("C", ptsC, 4, twoknn.HashSharding)

	// Precompute the expected answer of every shape sequentially.
	type results struct {
		sel       []twoknn.Point
		join      []twoknn.Pair
		selInner  []twoknn.Pair
		selOuter  []twoknn.Pair
		twoSel    []twoknn.Point
		unchained []twoknn.Triple
		chained   []twoknn.Triple
		rangeJ    []twoknn.Pair
	}
	var want results
	var err error
	if want.sel, err = sa.KNNSelect(f1, 8); err != nil {
		t.Fatal(err)
	}
	if want.join, err = twoknn.KNNJoin(sa, sb, 3); err != nil {
		t.Fatal(err)
	}
	if want.selInner, err = twoknn.SelectInnerJoin(sa, sb, f1, 3, 9); err != nil {
		t.Fatal(err)
	}
	if want.selOuter, err = twoknn.SelectOuterJoin(sa, sb, f1, 9, 3); err != nil {
		t.Fatal(err)
	}
	if want.twoSel, err = twoknn.TwoSelects(sb, f1, 5, f2, 30); err != nil {
		t.Fatal(err)
	}
	if want.unchained, err = twoknn.UnchainedJoins(sa, sb, sc, 2, 2); err != nil {
		t.Fatal(err)
	}
	if want.chained, err = twoknn.ChainedJoins(sa, sb, sc, 2, 2); err != nil {
		t.Fatal(err)
	}
	if want.rangeJ, err = twoknn.RangeInnerJoin(sa, sb, rng, 3); err != nil {
		t.Fatal(err)
	}

	_, before := sa.Snapshot()

	var shared twoknn.Stats // one server-wide counter shared by all queries
	const goroutines = 16
	const iters = 4
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := []twoknn.QueryOption{twoknn.WithStats(&shared)}
			if g%3 == 0 {
				// A third of the load also fans out inside each query, so
				// bounded pools see try-acquire pressure on top of the
				// blocking acquires.
				opts = append(opts, twoknn.WithConcurrency(2))
			}
			for it := 0; it < iters; it++ {
				switch (g + it) % 8 {
				case 0:
					got, err := sa.KNNSelect(f1, 8, opts...)
					if err != nil || !reflect.DeepEqual(got, want.sel) {
						errCh <- errf("KNNSelect", err)
						return
					}
				case 1:
					got, err := twoknn.KNNJoin(sa, sb, 3, opts...)
					if err != nil || !reflect.DeepEqual(got, want.join) {
						errCh <- errf("KNNJoin", err)
						return
					}
				case 2:
					got, err := twoknn.SelectInnerJoin(sa, sb, f1, 3, 9, opts...)
					if err != nil || !reflect.DeepEqual(got, want.selInner) {
						errCh <- errf("SelectInnerJoin", err)
						return
					}
				case 3:
					got, err := twoknn.SelectOuterJoin(sa, sb, f1, 9, 3, opts...)
					if err != nil || !reflect.DeepEqual(got, want.selOuter) {
						errCh <- errf("SelectOuterJoin", err)
						return
					}
				case 4:
					got, err := twoknn.TwoSelects(sb, f1, 5, f2, 30, opts...)
					if err != nil || !reflect.DeepEqual(got, want.twoSel) {
						errCh <- errf("TwoSelects", err)
						return
					}
				case 5:
					got, err := twoknn.UnchainedJoins(sa, sb, sc, 2, 2, opts...)
					if err != nil || !reflect.DeepEqual(got, want.unchained) {
						errCh <- errf("UnchainedJoins", err)
						return
					}
				case 6:
					got, err := twoknn.ChainedJoins(sa, sb, sc, 2, 2, opts...)
					if err != nil || !reflect.DeepEqual(got, want.chained) {
						errCh <- errf("ChainedJoins", err)
						return
					}
				default:
					got, err := twoknn.RangeInnerJoin(sa, sb, rng, 3, opts...)
					if err != nil || !reflect.DeepEqual(got, want.rangeJ) {
						errCh <- errf("RangeInnerJoin", err)
						return
					}
				}
			}
			errCh <- nil
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Aggregate stability: per-shard counters sum exactly to the aggregate,
	// and the concurrent load visibly advanced them.
	for _, rel := range []*twoknn.ShardedRelation{sa, sb, sc} {
		per, total := rel.Snapshot()
		var sum twoknn.Stats
		for _, ps := range per {
			snap := ps.Ops
			sum.Add(&snap)
		}
		if sum != total {
			t.Fatalf("%s: aggregate %+v != per-shard sum %+v", rel.Name(), total, sum)
		}
	}
	_, after := sa.Snapshot()
	if after.Neighborhoods <= before.Neighborhoods {
		t.Fatalf("concurrent load did not advance A's lifetime counters (%d -> %d)",
			before.Neighborhoods, after.Neighborhoods)
	}
	if shared.Snapshot().Neighborhoods == 0 {
		t.Fatalf("shared WithStats counter recorded nothing")
	}
}

func errf(shape string, err error) error {
	if err != nil {
		return &shapeErr{shape: shape, err: err}
	}
	return &shapeErr{shape: shape}
}

type shapeErr struct {
	shape string
	err   error
}

func (e *shapeErr) Error() string {
	if e.err != nil {
		return "concurrent " + e.shape + " failed: " + e.err.Error()
	}
	return "concurrent " + e.shape + " returned a result different from the sequential answer"
}
