//go:build amd64 && !purego

package kernel

// Direct handles on the assembly-backed span helpers so the equivalence
// matrix can exercise the AVX2 code at every span length — including the
// 1..31-lane remainder shapes the dispatchers would route to the scalar
// leaf because of minAVX2Lanes. nil on builds without the assembly.
var asmForTest = &spanKernels{
	name:         "avx2-asm",
	distSq:       distSqSpanAsm,
	countWithin:  countWithinSpanAsm,
	minDistSq:    minDistSqSpanAsm,
	argMinDistSq: argMinDistSqSpanAsm,
	selectWithin: selectWithinSpanAsm,
}
