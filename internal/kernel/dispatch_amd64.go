//go:build amd64 && !purego

package kernel

import "strings"

// Assembly routines (kernel_amd64.s). Pointer-and-length form keeps the
// assembly free of slice-header plumbing; the exported wrappers peel the
// headers and guarantee non-empty spans.

//go:noescape
func distSqAVX2(xs, ys *float64, n int, qx, qy float64, out *float64)

//go:noescape
func countWithinAVX2(xs, ys *float64, n int, qx, qy, boundSq float64) int

//go:noescape
func minDistSqAVX2(xs, ys *float64, n int, qx, qy float64) float64

//go:noescape
func argMinEqScanAVX2(xs, ys *float64, n int, qx, qy, m float64) int

//go:noescape
func selectWithinAVX2(xs, ys *float64, n int, qx, qy, boundSq float64, idx *int32) int

func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// cpuFeatures lists what CPUID reported, for the benchmark trajectory's
// host notes.
var cpuFeatures string

func init() {
	var feats []string
	maxLeaf, _, _, _ := cpuidex(0, 0)
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	osAVX, osAVX512 := false, false
	if ecx1&osxsaveBit != 0 {
		eax, _ := xgetbv0()
		osAVX = eax&0x6 == 0x6      // XMM and YMM state OS-enabled
		osAVX512 = eax&0xE6 == 0xE6 // + opmask and ZMM state (XCR0 bits 5-7)
	}
	if osAVX && ecx1&avxBit != 0 {
		feats = append(feats, "avx")
	}
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuidex(7, 0)
		if osAVX && ebx7&(1<<5) != 0 {
			feats = append(feats, "avx2")
			available = append(available, "avx2")
			setImpl("avx2")
		}
		if osAVX512 && ebx7&(1<<16) != 0 {
			feats = append(feats, "avx512f")
		}
	}
	cpuFeatures = strings.Join(feats, ",")
}
