// Package kernel is the batched distance-kernel layer underneath every hot
// scan of the repository: the "squared distance of a query point to every
// point of a flat coordinate span, compared against a bound" primitive that
// the Counting and Block-Marking algorithms — and the locality searcher's
// selection-heap feed — spend their time in. The PR 3 columnar PointStore
// reduced those scans to flat X/Y array loops precisely so they could be
// vectorized; this package finishes the move in the MonetDB/X100 style:
// one kernel API, a pure-Go reference implementation that every build can
// fall back to, and hand-written AVX2 fast paths on amd64 selected by
// runtime CPU-feature dispatch.
//
// # Kernels
//
//   - DistSq: span → scratch squared distances (the selection-heap feed).
//   - CountWithin: fused count of lanes with dSq ≤ bound, no scratch
//     (radius filters, the layout/kernel ablations).
//   - MinDistSq / ArgMinDistSq: fused reductions for nearest-candidate
//     scans (the Counting algorithm's per-tuple search threshold).
//   - SelectWithin: compress-store of qualifying lane indices (the
//     selection-heap feed once the heap is full, emit loops with a bound).
//
// # Exactness
//
// Every fast path performs the exact float64 operations of the scalar
// reference, in the same per-lane order: dx = x−qx, dy = y−qy, then
// dx·dx + dy·dy with each operation individually rounded (no FMA
// contraction), and bound comparisons are ordered (NaN never qualifies,
// exactly as a scalar `<=` behaves). Lane order never affects a kernel's
// result: DistSq/CountWithin/SelectWithin are per-lane independent, and the
// min reductions are order-insensitive because squared distances are never
// negative zero and NaN lanes are skipped by reference and fast path alike.
// Results are therefore bit-identical across implementations, which is what
// keeps the repository-wide (distance, X, Y) tie order — and with it every
// query answer — unchanged no matter which kernel dispatched.
//
// # Dispatch
//
// The best available implementation is chosen once at init: the AVX2 path
// when the build is amd64 without the purego tag and CPUID reports
// OS-enabled AVX2, the scalar reference otherwise. The exported kernels are
// per-build wrappers that branch on one plain boolean, so spans of a dozen
// points pay no indirect-call or atomic-load tax. Active names the choice;
// Use switches it at runtime for benchmarks and equivalence tests that
// compare implementations in one process — it is NOT safe to call
// concurrently with in-flight queries (serving code lets init's dispatch
// stand). Building with `-tags purego` removes the assembly entirely — the
// escape hatch for exotic targets and a second CI leg that keeps the
// reference implementation load-bearing.
package kernel

import (
	"fmt"
	"math"
)

// available lists the implementation names usable in this binary on this
// host, reference first; a dispatch init appends fast paths.
var available = []string{"scalar"}

// activeName tracks the implementation the wrappers currently route to.
var activeName = "scalar"

// Active returns the name of the dispatched implementation ("avx2",
// "scalar").
func Active() string { return activeName }

// CPUFeatures returns the comma-separated vector features CPUID reported as
// OS-enabled on this host ("" on builds without feature detection). The
// benchmark trajectory records it next to measured numbers.
func CPUFeatures() string { return cpuFeatures }

// Available returns the implementation names compiled into this binary and
// usable on this host, in reference-first order.
func Available() []string { return append([]string(nil), available...) }

// batchGrain is the span length from which batching through the kernel
// layer beats a caller's fused scalar loop; math.MaxInt when no fast path
// is active (batching then only adds call overhead). Set by setImpl.
var batchGrain = math.MaxInt

// BatchGrain returns the span length from which routing a scan through the
// batched kernels is profitable. Adaptive hot loops (the locality
// searcher's selection-heap feed) keep their fused scalar form for shorter
// spans — results are bit-identical either way, so the grain is pure
// tuning.
func BatchGrain() int { return batchGrain }

// Use switches the active implementation by name and returns a restore
// function. It is meant for benchmarks and equivalence tests on otherwise
// idle processes; it must not race with in-flight queries.
func Use(name string) (restore func(), err error) {
	for _, have := range available {
		if have == name {
			prev := activeName
			setImpl(name)
			return func() { setImpl(prev) }, nil
		}
	}
	return nil, fmt.Errorf("kernel: no implementation %q (available: %v)", name, Available())
}

func panicSpan(kernel string, xs, ys, aux int) {
	panic(fmt.Sprintf("kernel: %s span mismatch (xs=%d ys=%d aux=%d)", kernel, xs, ys, aux))
}

// The unsuffixed kernels are inlinable shims over the *Span forms for
// callers that already hold sliced, parallel coordinate spans (the locality
// searcher scanning one block's XYs). ys must be at least as long as xs;
// extra elements are ignored.

// DistSq writes the squared distance from (qx, qy) to every (xs[i], ys[i])
// into out[i]. out may be longer than xs (a reused scratch buffer); its
// tail is left untouched.
func DistSq(xs, ys []float64, qx, qy float64, out []float64) {
	DistSqSpan(xs, ys, 0, len(xs), qx, qy, out)
}

// CountWithin returns the number of span points whose squared distance to
// (qx, qy) is at most boundSq. NaN distances (and a NaN bound) never
// qualify, matching the scalar comparison.
func CountWithin(xs, ys []float64, qx, qy, boundSq float64) int {
	return CountWithinSpan(xs, ys, 0, len(xs), qx, qy, boundSq)
}

// MinDistSq returns the minimum squared distance from (qx, qy) to the span,
// or +Inf for an empty span. NaN distances are skipped, exactly as the
// scalar `d < best` comparison skips them.
func MinDistSq(xs, ys []float64, qx, qy float64) float64 {
	return MinDistSqSpan(xs, ys, 0, len(xs), qx, qy)
}

// ArgMinDistSq returns the index of the first span point achieving the
// minimum squared distance to (qx, qy), or -1 when the span is empty or no
// lane compares below +Inf (all distances NaN or +Inf).
func ArgMinDistSq(xs, ys []float64, qx, qy float64) int {
	return ArgMinDistSqSpan(xs, ys, 0, len(xs), qx, qy)
}

// SelectWithin writes the indices of span points whose squared distance to
// (qx, qy) is at most boundSq into idx, in ascending order, and returns how
// many qualified. idx must be at least len(xs) long; entries past the
// returned count are unspecified scratch.
func SelectWithin(xs, ys []float64, qx, qy, boundSq float64, idx []int32) int {
	return SelectWithinSpan(xs, ys, 0, len(xs), qx, qy, boundSq, idx)
}
