//go:build amd64 && !purego

package kernel

import "math"

// Exported kernel wrappers for builds carrying the AVX2 assembly. Each
// *Span form is a thin dispatcher: one predictable branch on a plain
// boolean and the span length, then a tail call to either the leaf scalar
// helper (ref.go — the loop must NOT be inlined next to the asm call, see
// the comment there) or the asm-calling helper below. useAVX2 is written
// only by init and Use (documented as unsafe to race with queries), never
// on the hot path.
//
// The *Span forms take the unsliced columns plus (off, n) so the slicing —
// the most node-expensive part of a call site — happens inside the
// non-inlinable wrapper; that keeps the span accessors in geom and index
// under the compiler's inlining budget (one call frame per block instead of
// two, measurable on 16-point grid cells).

var useAVX2 bool

// minAVX2Lanes is the span length below which the dispatchers keep the
// scalar leaf path: the fixed cost of the assembly call — argument spill,
// prologue, VZEROUPPER — exceeds the vector win on tiny spans (measured
// crossover ~24 lanes on both L1-resident and streaming scans). Both paths
// are bit-identical, so the cutoff is pure tuning, invisible to results.
const minAVX2Lanes = 32

func setImpl(name string) {
	activeName = name
	useAVX2 = name == "avx2"
	if useAVX2 {
		batchGrain = minAVX2Lanes
	} else {
		batchGrain = math.MaxInt
	}
}

// DistSqSpan writes the squared distance from (qx, qy) to every point of
// the span [off, off+n) of the xs/ys columns into out[:n]. out may be
// longer (a reused scratch buffer); its tail is left untouched.
func DistSqSpan(xs, ys []float64, off, n int, qx, qy float64, out []float64) {
	if len(out) < n {
		panicSpan("DistSq", n, n, len(out))
	}
	if useAVX2 && n >= minAVX2Lanes {
		distSqSpanAsm(xs, ys, off, n, qx, qy, out)
		return
	}
	distSqSpanRef(xs, ys, off, n, qx, qy, out)
}

// CountWithinSpan returns the number of span points whose squared distance
// to (qx, qy) is at most boundSq. NaN distances (and a NaN bound) never
// qualify, matching the scalar comparison.
func CountWithinSpan(xs, ys []float64, off, n int, qx, qy, boundSq float64) int {
	if useAVX2 && n >= minAVX2Lanes {
		return countWithinSpanAsm(xs, ys, off, n, qx, qy, boundSq)
	}
	return countWithinSpanRef(xs, ys, off, n, qx, qy, boundSq)
}

// MinDistSqSpan returns the minimum squared distance from (qx, qy) to the
// span, or +Inf for an empty span. NaN distances are skipped, exactly as
// the scalar `d < best` comparison skips them.
func MinDistSqSpan(xs, ys []float64, off, n int, qx, qy float64) float64 {
	if useAVX2 && n >= minAVX2Lanes {
		return minDistSqSpanAsm(xs, ys, off, n, qx, qy)
	}
	return minDistSqSpanRef(xs, ys, off, n, qx, qy)
}

// ArgMinDistSqSpan returns the span-relative index of the first span point
// achieving the minimum squared distance to (qx, qy), or -1 when the span
// is empty or no lane compares below +Inf (all distances NaN or +Inf).
func ArgMinDistSqSpan(xs, ys []float64, off, n int, qx, qy float64) int {
	if useAVX2 && n >= minAVX2Lanes {
		return argMinDistSqSpanAsm(xs, ys, off, n, qx, qy)
	}
	return argMinDistSqSpanRef(xs, ys, off, n, qx, qy)
}

// SelectWithinSpan writes the span-relative indices of points whose squared
// distance to (qx, qy) is at most boundSq into idx, in ascending order, and
// returns how many qualified. idx must be at least n long; entries past the
// returned count are unspecified scratch.
func SelectWithinSpan(xs, ys []float64, off, n int, qx, qy, boundSq float64, idx []int32) int {
	if len(idx) < n {
		panicSpan("SelectWithin", n, n, len(idx))
	}
	if useAVX2 && n >= minAVX2Lanes {
		return selectWithinSpanAsm(xs, ys, off, n, qx, qy, boundSq, idx)
	}
	return selectWithinSpanRef(xs, ys, off, n, qx, qy, boundSq, idx)
}

// The *SpanAsm helpers isolate the assembly calls (and the slicing feeding
// them) from the scalar path. n >= minAVX2Lanes > 0 is guaranteed by the
// dispatchers above.

func distSqSpanAsm(xs, ys []float64, off, n int, qx, qy float64, out []float64) {
	xs, ys = xs[off:off+n], ys[off:off+n]
	distSqAVX2(&xs[0], &ys[0], n, qx, qy, &out[0])
}

func countWithinSpanAsm(xs, ys []float64, off, n int, qx, qy, boundSq float64) int {
	xs, ys = xs[off:off+n], ys[off:off+n]
	return countWithinAVX2(&xs[0], &ys[0], n, qx, qy, boundSq)
}

func minDistSqSpanAsm(xs, ys []float64, off, n int, qx, qy float64) float64 {
	xs, ys = xs[off:off+n], ys[off:off+n]
	return minDistSqAVX2(&xs[0], &ys[0], n, qx, qy)
}

// argMinDistSqSpanAsm is two vector passes: the minimum, then the first
// lane equal to it. The scalar reference only selects a lane when d < best
// strictly improves on +Inf, so a +Inf minimum (empty effective span: every
// lane NaN or +Inf) must yield -1 rather than matching a +Inf lane.
func argMinDistSqSpanAsm(xs, ys []float64, off, n int, qx, qy float64) int {
	xs, ys = xs[off:off+n], ys[off:off+n]
	m := minDistSqAVX2(&xs[0], &ys[0], n, qx, qy)
	if m == inf {
		return -1
	}
	return argMinEqScanAVX2(&xs[0], &ys[0], n, qx, qy, m)
}

func selectWithinSpanAsm(xs, ys []float64, off, n int, qx, qy, boundSq float64, idx []int32) int {
	xs, ys = xs[off:off+n], ys[off:off+n]
	return selectWithinAVX2(&xs[0], &ys[0], n, qx, qy, boundSq, &idx[0])
}
