package kernel

import (
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks: per-implementation cost of the block-scan
// primitive at the span grains that matter — 16 (the benchmark harness's
// paper-faithful grid cells, below the AVX2 dispatch cutoff), 64/256
// (production-grain leaves) and 1024 (streaming spans). The recorded
// perf-trajectory numbers (BENCH_PR5.json micro section) come from these.

func benchData(n int) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(7))
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	return
}

func benchCountWithin(b *testing.B, name string, n int) {
	restore, err := Use(name)
	if err != nil {
		b.Skip(err)
	}
	defer restore()
	xs, ys := benchData(n)
	sink := 0
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += CountWithin(xs, ys, 500, 500, 250*250)
	}
	_ = sink
}

func BenchmarkCountWithin16Scalar(b *testing.B)   { benchCountWithin(b, "scalar", 16) }
func BenchmarkCountWithin16AVX2(b *testing.B)     { benchCountWithin(b, "avx2", 16) }
func BenchmarkCountWithin64Scalar(b *testing.B)   { benchCountWithin(b, "scalar", 64) }
func BenchmarkCountWithin64AVX2(b *testing.B)     { benchCountWithin(b, "avx2", 64) }
func BenchmarkCountWithin256Scalar(b *testing.B)  { benchCountWithin(b, "scalar", 256) }
func BenchmarkCountWithin256AVX2(b *testing.B)    { benchCountWithin(b, "avx2", 256) }
func BenchmarkCountWithin1024Scalar(b *testing.B) { benchCountWithin(b, "scalar", 1024) }
func BenchmarkCountWithin1024AVX2(b *testing.B)   { benchCountWithin(b, "avx2", 1024) }

func benchDistSq(b *testing.B, name string, n int) {
	restore, err := Use(name)
	if err != nil {
		b.Skip(err)
	}
	defer restore()
	xs, ys := benchData(n)
	out := make([]float64, n)
	b.SetBytes(int64(n * 24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistSq(xs, ys, 500, 500, out)
	}
}

func BenchmarkDistSq256Scalar(b *testing.B) { benchDistSq(b, "scalar", 256) }
func BenchmarkDistSq256AVX2(b *testing.B)   { benchDistSq(b, "avx2", 256) }

func benchMinDistSq(b *testing.B, name string, n int) {
	restore, err := Use(name)
	if err != nil {
		b.Skip(err)
	}
	defer restore()
	xs, ys := benchData(n)
	sink := 0.0
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += MinDistSq(xs, ys, 500, 500)
	}
	_ = sink
}

func BenchmarkMinDistSq64Scalar(b *testing.B) { benchMinDistSq(b, "scalar", 64) }
func BenchmarkMinDistSq64AVX2(b *testing.B)   { benchMinDistSq(b, "avx2", 64) }

func benchSelectWithin(b *testing.B, name string, n int) {
	restore, err := Use(name)
	if err != nil {
		b.Skip(err)
	}
	defer restore()
	xs, ys := benchData(n)
	idx := make([]int32, n)
	sink := 0
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += SelectWithin(xs, ys, 500, 500, 250*250, idx)
	}
	_ = sink
}

func BenchmarkSelectWithin256Scalar(b *testing.B) { benchSelectWithin(b, "scalar", 256) }
func BenchmarkSelectWithin256AVX2(b *testing.B)   { benchSelectWithin(b, "avx2", 256) }
