//go:build !amd64 || purego

package kernel

// Exported kernel wrappers for builds without the amd64 assembly (the
// `purego` tag, or any other architecture): everything routes straight to
// the leaf scalar helpers with no dispatch at all — the thin forms here
// inline into callers, so a span scan costs exactly one call frame, the
// same as a hand-written loop behind a method. BatchGrain stays at its
// "never profitable" default, steering adaptive callers (the locality
// searcher) onto their fused scalar loops.

func setImpl(name string) { activeName = name }

// DistSqSpan writes the squared distance from (qx, qy) to every point of
// the span [off, off+n) of the xs/ys columns into out[:n]. out may be
// longer (a reused scratch buffer); its tail is left untouched.
func DistSqSpan(xs, ys []float64, off, n int, qx, qy float64, out []float64) {
	if len(out) < n {
		panicSpan("DistSq", n, n, len(out))
	}
	distSqSpanRef(xs, ys, off, n, qx, qy, out)
}

// CountWithinSpan returns the number of span points whose squared distance
// to (qx, qy) is at most boundSq. NaN distances (and a NaN bound) never
// qualify, matching the scalar comparison.
func CountWithinSpan(xs, ys []float64, off, n int, qx, qy, boundSq float64) int {
	return countWithinSpanRef(xs, ys, off, n, qx, qy, boundSq)
}

// MinDistSqSpan returns the minimum squared distance from (qx, qy) to the
// span, or +Inf for an empty span. NaN distances are skipped, exactly as
// the scalar `d < best` comparison skips them.
func MinDistSqSpan(xs, ys []float64, off, n int, qx, qy float64) float64 {
	return minDistSqSpanRef(xs, ys, off, n, qx, qy)
}

// ArgMinDistSqSpan returns the span-relative index of the first span point
// achieving the minimum squared distance to (qx, qy), or -1 when the span
// is empty or no lane compares below +Inf (all distances NaN or +Inf).
func ArgMinDistSqSpan(xs, ys []float64, off, n int, qx, qy float64) int {
	return argMinDistSqSpanRef(xs, ys, off, n, qx, qy)
}

// SelectWithinSpan writes the span-relative indices of points whose squared
// distance to (qx, qy) is at most boundSq into idx, in ascending order, and
// returns how many qualified. idx must be at least n long; entries past the
// returned count are unspecified scratch.
func SelectWithinSpan(xs, ys []float64, off, n int, qx, qy, boundSq float64, idx []int32) int {
	if len(idx) < n {
		panicSpan("SelectWithin", n, n, len(idx))
	}
	return selectWithinSpanRef(xs, ys, off, n, qx, qy, boundSq, idx)
}
