//go:build !amd64 || purego

package kernel

// No assembly in this build; the equivalence matrix covers the exported
// wrappers only (which all route to the scalar reference).
var asmForTest *spanKernels
