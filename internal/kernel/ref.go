package kernel

import "math"

// This file is the scalar reference implementation: the semantic ground
// truth every fast path must match bit-for-bit (see the package comment's
// exactness contract, enforced by the equivalence and fuzz tests). It is
// also the only implementation of `-tags purego` builds and non-amd64
// targets, so it stays load-bearing — CI runs the full suite on it.

var inf = math.Inf(1)

// The *SpanRef helpers slice inside the callee and stay LEAF functions:
// the per-lane loop inlines into them and nothing else is called. That
// matters more than it looks — the same loop inlined into a function that
// can also call the assembly (a non-leaf) pays the stack-growth check,
// argument spills and GC-liveness stores on every call, which measured
// ~2.4x slower on 16-point spans. The per-build wrappers therefore route
// the scalar fallback here instead of inlining it next to the asm call,
// and go:noinline keeps the compiler from hoisting these bodies back into
// their non-leaf dispatchers.

//go:noinline
func distSqSpanRef(xs, ys []float64, off, n int, qx, qy float64, out []float64) {
	distSqRef(xs[off:off+n], ys[off:off+n], qx, qy, out)
}

//go:noinline
func countWithinSpanRef(xs, ys []float64, off, n int, qx, qy, boundSq float64) int {
	return countWithinRef(xs[off:off+n], ys[off:off+n], qx, qy, boundSq)
}

//go:noinline
func minDistSqSpanRef(xs, ys []float64, off, n int, qx, qy float64) float64 {
	return minDistSqRef(xs[off:off+n], ys[off:off+n], qx, qy)
}

//go:noinline
func argMinDistSqSpanRef(xs, ys []float64, off, n int, qx, qy float64) int {
	return argMinDistSqRef(xs[off:off+n], ys[off:off+n], qx, qy)
}

//go:noinline
func selectWithinSpanRef(xs, ys []float64, off, n int, qx, qy, boundSq float64, idx []int32) int {
	return selectWithinRef(xs[off:off+n], ys[off:off+n], qx, qy, boundSq, idx)
}

func distSqRef(xs, ys []float64, qx, qy float64, out []float64) {
	out = out[:len(xs)] // bounds-check elimination for the stores below
	for i, x := range xs {
		dx := x - qx
		dy := ys[i] - qy
		out[i] = dx*dx + dy*dy
	}
}

func countWithinRef(xs, ys []float64, qx, qy, boundSq float64) int {
	count := 0
	for i, x := range xs {
		dx := x - qx
		dy := ys[i] - qy
		if dx*dx+dy*dy <= boundSq {
			count++
		}
	}
	return count
}

func minDistSqRef(xs, ys []float64, qx, qy float64) float64 {
	best := inf
	for i, x := range xs {
		dx := x - qx
		dy := ys[i] - qy
		if d := dx*dx + dy*dy; d < best {
			best = d
		}
	}
	return best
}

func argMinDistSqRef(xs, ys []float64, qx, qy float64) int {
	best, arg := inf, -1
	for i, x := range xs {
		dx := x - qx
		dy := ys[i] - qy
		if d := dx*dx + dy*dy; d < best {
			best, arg = d, i
		}
	}
	return arg
}

func selectWithinRef(xs, ys []float64, qx, qy, boundSq float64, idx []int32) int {
	m := 0
	for i, x := range xs {
		dx := x - qx
		dy := ys[i] - qy
		if dx*dx+dy*dy <= boundSq {
			idx[m] = int32(i)
			m++
		}
	}
	return m
}
