//go:build !amd64 || purego

package kernel

// Builds without the amd64 assembly (the `purego` tag, or any other
// architecture) run everything on the scalar reference; no fast path
// registers and dispatch resolves to "scalar".

var cpuFeatures string
