package kernel

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// spanKernels bundles one implementation's span forms so the equivalence
// matrix can run the exported wrappers and the raw assembly through one
// harness.
type spanKernels struct {
	name         string
	distSq       func(xs, ys []float64, off, n int, qx, qy float64, out []float64)
	countWithin  func(xs, ys []float64, off, n int, qx, qy, boundSq float64) int
	minDistSq    func(xs, ys []float64, off, n int, qx, qy float64) float64
	argMinDistSq func(xs, ys []float64, off, n int, qx, qy float64) int
	selectWithin func(xs, ys []float64, off, n int, qx, qy, boundSq float64, idx []int32) int
}

// exportedKernels runs the exported wrappers under whichever implementation
// is currently active.
var exportedKernels = &spanKernels{
	name:         "exported",
	distSq:       DistSqSpan,
	countWithin:  CountWithinSpan,
	minDistSq:    MinDistSqSpan,
	argMinDistSq: ArgMinDistSqSpan,
	selectWithin: SelectWithinSpan,
}

// refKernels is the scalar ground truth.
var refKernels = &spanKernels{
	name:         "scalar-ref",
	distSq:       distSqSpanRef,
	countWithin:  countWithinSpanRef,
	minDistSq:    minDistSqSpanRef,
	argMinDistSq: argMinDistSqSpanRef,
	selectWithin: selectWithinSpanRef,
}

// spanCase is one input to the cross-implementation matrix.
type spanCase struct {
	name            string
	xs, ys          []float64
	qx, qy, boundSq float64
}

// matrixCases builds the deterministic equivalence corpus: every span
// length 0..67 (covering all AVX2 remainder-lane shapes on both sides of
// the 4-lane groups and the minAVX2Lanes cutoff), with quantized
// coordinates so exact ties are exact, plus NaN/Inf injections and
// tie-on-bound thresholds.
func matrixCases() []spanCase {
	rng := rand.New(rand.NewSource(42))
	var cases []spanCase
	for n := 0; n <= 67; n++ {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			// Quantized grid: squared distances are exactly representable,
			// so tie-on-bound and tie-on-min lanes really tie.
			xs[i] = float64(rng.Intn(256)) * 4
			ys[i] = float64(rng.Intn(256)) * 4
		}
		qx, qy := 512.0, 512.0
		cases = append(cases, spanCase{
			name: "quantized", xs: xs, ys: ys, qx: qx, qy: qy,
			boundSq: 300 * 300,
		})
		if n > 0 {
			// Exactly-tied bound: the threshold IS a lane's squared
			// distance; <= must admit it, < must not (min ties).
			mid := n / 2
			dx, dy := xs[mid]-qx, ys[mid]-qy
			cases = append(cases, spanCase{
				name: "tie-on-bound", xs: xs, ys: ys, qx: qx, qy: qy,
				boundSq: dx*dx + dy*dy,
			})
		}
		if n > 2 {
			// Non-finite lanes: NaN and ±Inf coordinates must never
			// qualify against a bound, never win a min, and produce
			// bit-identical DistSq lanes.
			xs2 := append([]float64(nil), xs...)
			ys2 := append([]float64(nil), ys...)
			xs2[0] = math.NaN()
			ys2[1] = math.Inf(1)
			xs2[2] = math.Inf(-1)
			cases = append(cases, spanCase{
				name: "non-finite", xs: xs2, ys: ys2, qx: qx, qy: qy,
				boundSq: 300 * 300,
			})
		}
		if n > 0 && n%7 == 0 {
			// Non-finite query point and bound.
			cases = append(cases,
				spanCase{name: "nan-query", xs: xs, ys: ys, qx: math.NaN(), qy: qy, boundSq: 300 * 300},
				spanCase{name: "inf-bound", xs: xs, ys: ys, qx: qx, qy: qy, boundSq: math.Inf(1)},
				spanCase{name: "nan-bound", xs: xs, ys: ys, qx: qx, qy: qy, boundSq: math.NaN()},
			)
		}
	}
	// Co-located duplicates: every lane ties on min and on bound.
	dup := spanCase{name: "all-duplicates", qx: 0, qy: 0, boundSq: 2 * 128 * 128}
	for i := 0; i < 37; i++ {
		dup.xs = append(dup.xs, 128)
		dup.ys = append(dup.ys, 128)
	}
	return append(cases, dup)
}

// assertKernelsMatch runs got against want (the scalar reference) on one
// case and fails on any bit-level divergence.
func assertKernelsMatch(t *testing.T, got, want *spanKernels, c spanCase) {
	t.Helper()
	n := len(c.xs)

	wantOut := make([]float64, n)
	gotOut := make([]float64, n)
	want.distSq(c.xs, c.ys, 0, n, c.qx, c.qy, wantOut)
	got.distSq(c.xs, c.ys, 0, n, c.qx, c.qy, gotOut)
	for i := range wantOut {
		if math.Float64bits(wantOut[i]) != math.Float64bits(gotOut[i]) {
			t.Fatalf("%s vs %s: DistSq[%d] = %v, want %v (case %s, n=%d)",
				got.name, want.name, i, gotOut[i], wantOut[i], c.name, n)
		}
	}

	if g, w := got.countWithin(c.xs, c.ys, 0, n, c.qx, c.qy, c.boundSq),
		want.countWithin(c.xs, c.ys, 0, n, c.qx, c.qy, c.boundSq); g != w {
		t.Fatalf("%s: CountWithin = %d, want %d (case %s, n=%d)", got.name, g, w, c.name, n)
	}

	if g, w := got.minDistSq(c.xs, c.ys, 0, n, c.qx, c.qy),
		want.minDistSq(c.xs, c.ys, 0, n, c.qx, c.qy); math.Float64bits(g) != math.Float64bits(w) {
		t.Fatalf("%s: MinDistSq = %v, want %v (case %s, n=%d)", got.name, g, w, c.name, n)
	}

	if g, w := got.argMinDistSq(c.xs, c.ys, 0, n, c.qx, c.qy),
		want.argMinDistSq(c.xs, c.ys, 0, n, c.qx, c.qy); g != w {
		t.Fatalf("%s: ArgMinDistSq = %d, want %d (case %s, n=%d)", got.name, g, w, c.name, n)
	}

	wantIdx := make([]int32, n)
	gotIdx := make([]int32, n)
	gm := got.selectWithin(c.xs, c.ys, 0, n, c.qx, c.qy, c.boundSq, gotIdx)
	wm := want.selectWithin(c.xs, c.ys, 0, n, c.qx, c.qy, c.boundSq, wantIdx)
	if gm != wm {
		t.Fatalf("%s: SelectWithin count = %d, want %d (case %s, n=%d)", got.name, gm, wm, c.name, n)
	}
	for i := 0; i < wm; i++ {
		if gotIdx[i] != wantIdx[i] {
			t.Fatalf("%s: SelectWithin idx[%d] = %d, want %d (case %s, n=%d)",
				got.name, i, gotIdx[i], wantIdx[i], c.name, n)
		}
	}
}

// TestKernelEquivalenceMatrix checks every available implementation — via
// the exported wrappers, for each name Use can dispatch — against the
// scalar reference, bit-for-bit, on the deterministic corpus.
func TestKernelEquivalenceMatrix(t *testing.T) {
	cases := matrixCases()
	for _, name := range Available() {
		t.Run(name, func(t *testing.T) {
			restore, err := Use(name)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()
			for _, c := range cases {
				assertKernelsMatch(t, exportedKernels, refKernels, c)
			}
		})
	}
}

// TestAVX2RemainderLanes drives the assembly helpers directly (bypassing
// the minAVX2Lanes dispatch cutoff) so every 1..67-lane shape — 4-lane
// groups plus 0..3 scalar-tail remainders — hits the vector code.
func TestAVX2RemainderLanes(t *testing.T) {
	if asmForTest == nil {
		t.Skip("no assembly in this build")
	}
	for _, c := range matrixCases() {
		if len(c.xs) == 0 {
			continue // dispatchers guarantee the asm non-empty spans
		}
		assertKernelsMatch(t, asmForTest, refKernels, c)
	}
}

// TestSpanOffsets checks that the (off, n) span forms window correctly into
// longer columns, including unaligned offsets.
func TestSpanOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	total := 131
	xs := make([]float64, total)
	ys := make([]float64, total)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	for _, off := range []int{0, 1, 3, 64, 130} {
		for _, n := range []int{0, 1, 33, 67} {
			if off+n > total {
				continue
			}
			want := countWithinSpanRef(xs, ys, off, n, 500, 500, 200*200)
			if got := CountWithinSpan(xs, ys, off, n, 500, 500, 200*200); got != want {
				t.Fatalf("CountWithinSpan(off=%d, n=%d) = %d, want %d", off, n, got, want)
			}
			wantMin := minDistSqSpanRef(xs, ys, off, n, 500, 500)
			if got := MinDistSqSpan(xs, ys, off, n, 500, 500); math.Float64bits(got) != math.Float64bits(wantMin) {
				t.Fatalf("MinDistSqSpan(off=%d, n=%d) = %v, want %v", off, n, got, wantMin)
			}
		}
	}
}

// TestScalarSemantics pins the reference behaviors the package documents.
func TestScalarSemantics(t *testing.T) {
	if got := MinDistSq(nil, nil, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("MinDistSq(empty) = %v, want +Inf", got)
	}
	if got := ArgMinDistSq(nil, nil, 0, 0); got != -1 {
		t.Errorf("ArgMinDistSq(empty) = %d, want -1", got)
	}
	// All-NaN span: no lane compares below +Inf.
	nan := []float64{math.NaN(), math.NaN(), math.NaN()}
	zeros := []float64{0, 0, 0}
	if got := ArgMinDistSq(nan, zeros, 0, 0); got != -1 {
		t.Errorf("ArgMinDistSq(all-NaN) = %d, want -1", got)
	}
	if got := CountWithin(nan, zeros, 0, 0, math.Inf(1)); got != 0 {
		t.Errorf("CountWithin(all-NaN, +Inf bound) = %d, want 0 (NaN never qualifies)", got)
	}
	// First-index tie rule: two lanes at the same minimum distance.
	xs := []float64{3, 5, 3, 4}
	ys := []float64{4, 12, 4, 3}
	if got := ArgMinDistSq(xs, ys, 0, 0); got != 0 {
		t.Errorf("ArgMinDistSq(tie) = %d, want 0 (first index wins)", got)
	}
}

// TestUse checks the runtime dispatch switch and its restore function.
func TestUse(t *testing.T) {
	if _, err := Use("no-such-kernel"); err == nil {
		t.Fatal("Use(no-such-kernel) succeeded, want error")
	}
	orig := Active()
	restore, err := Use("scalar")
	if err != nil {
		t.Fatal(err)
	}
	if Active() != "scalar" {
		t.Fatalf("Active() = %q after Use(scalar)", Active())
	}
	if BatchGrain() <= 0 {
		t.Fatalf("BatchGrain() = %d, want positive", BatchGrain())
	}
	restore()
	if Active() != orig {
		t.Fatalf("Active() = %q after restore, want %q", Active(), orig)
	}
}

// TestDispatchExpectation asserts the dispatched implementation matches the
// KNN_EXPECT_KERNEL environment variable when set. CI's amd64 leg exports
// KNN_EXPECT_KERNEL=avx2 so a silently broken feature probe (or a build
// that quietly dropped the assembly) fails loudly instead of shipping the
// scalar path.
func TestDispatchExpectation(t *testing.T) {
	want := os.Getenv("KNN_EXPECT_KERNEL")
	if want == "" {
		t.Skipf("KNN_EXPECT_KERNEL unset; active=%s features=%s", Active(), CPUFeatures())
	}
	if Active() != want {
		t.Fatalf("dispatched kernel = %q, want %q (features: %s, available: %v)",
			Active(), want, CPUFeatures(), Available())
	}
}

// TestKernelAllocs: every kernel must be allocation-free — they sit inside
// the 0 allocs/op query hot path.
func TestKernelAllocs(t *testing.T) {
	xs := make([]float64, 64)
	ys := make([]float64, 64)
	out := make([]float64, 64)
	idx := make([]int32, 64)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(64 - i)
	}
	for _, name := range Available() {
		t.Run(name, func(t *testing.T) {
			restore, err := Use(name)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()
			sink := 0.0
			avg := testing.AllocsPerRun(200, func() {
				DistSq(xs, ys, 32, 32, out)
				sink += float64(CountWithin(xs, ys, 32, 32, 1000))
				sink += MinDistSq(xs, ys, 32, 32)
				sink += float64(ArgMinDistSq(xs, ys, 32, 32))
				sink += float64(SelectWithin(xs, ys, 32, 32, 1000, idx))
			})
			if avg != 0 {
				t.Errorf("%s kernels allocate %v per run, want 0", name, avg)
			}
			_ = sink
		})
	}
}

// FuzzKernelEquivalence cross-checks the active fast path (and the raw
// assembly, where built) against the scalar reference on fuzzer-chosen
// spans, coordinates and bounds. Coordinates are quantized byte pairs — the
// same scheme as the repository's query-level fuzz targets — so exact ties
// occur constantly; the raw float query point and bound explore the
// non-finite space.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte("spatial queries with two knn predicates"), 512.0, 512.0, 90000.0)
	f.Add([]byte{10, 10, 10, 10, 10, 10}, 40.0, 40.0, 0.0)
	// Tie-on-bound seed: point (40, 40) at exactly dSq = 3200 from (0, 0).
	f.Add([]byte{10, 10, 20, 20, 30, 30}, 0.0, 0.0, 3200.0)
	f.Fuzz(func(t *testing.T, data []byte, qx, qy, boundSq float64) {
		n := len(data) / 2
		if n > 96 {
			n = 96
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(data[2*i]) * 4
			ys[i] = float64(data[2*i+1]) * 4
		}
		c := spanCase{name: "fuzz", xs: xs, ys: ys, qx: qx, qy: qy, boundSq: boundSq}
		for _, name := range Available() {
			restore, err := Use(name)
			if err != nil {
				t.Fatal(err)
			}
			assertKernelsMatch(t, exportedKernels, refKernels, c)
			restore()
		}
		if asmForTest != nil && n > 0 {
			assertKernelsMatch(t, asmForTest, refKernels, c)
		}
	})
}
