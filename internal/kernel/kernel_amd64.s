//go:build amd64 && !purego

#include "textflag.h"

// AVX2 distance kernels. Every routine performs, per lane, the exact
// float64 operation sequence of the scalar reference in ref.go —
// dx = x-qx, dy = y-qy, dx*dx, dy*dy, sum — with each operation
// individually rounded (VSUBPD/VMULPD/VADDPD; deliberately no FMA, whose
// single rounding would diverge from the scalar path), so results are
// bit-identical and the repository-wide (distance, X, Y) tie order is
// preserved. Bound comparisons use the ordered-quiet predicates
// (LE_OQ/EQ_OQ), under which NaN never qualifies — the same outcome as the
// scalar `<=` / `<` comparisons. Main loops process 4 lanes per iteration;
// remainders fall through to scalar SSE tails using the identical ops.

#define LE_OQ $0x12
#define EQ_OQ $0x00

// dSq4 computes Y2 = (xs[i:i+4]-qx)^2 + (ys[i:i+4]-qy)^2 with qx in Y0,
// qy in Y1, base registers SI/DX and lane index AX. Clobbers Y2, Y3.
#define dSq4 \
	VMOVUPD (SI)(AX*8), Y2 \
	VMOVUPD (DX)(AX*8), Y3 \
	VSUBPD  Y0, Y2, Y2     \
	VSUBPD  Y1, Y3, Y3     \
	VMULPD  Y2, Y2, Y2     \
	VMULPD  Y3, Y3, Y3     \
	VADDPD  Y3, Y2, Y2

// dSq1 is the scalar-lane form of dSq4: X2 = (xs[i]-qx)^2 + (ys[i]-qy)^2.
#define dSq1 \
	VMOVSD (SI)(AX*8), X2 \
	VMOVSD (DX)(AX*8), X3 \
	VSUBSD X0, X2, X2     \
	VSUBSD X1, X3, X3     \
	VMULSD X2, X2, X2     \
	VMULSD X3, X3, X3     \
	VADDSD X3, X2, X2

// func distSqAVX2(xs, ys *float64, n int, qx, qy float64, out *float64)
TEXT ·distSqAVX2(SB), NOSPLIT, $0-48
	MOVQ         xs+0(FP), SI
	MOVQ         ys+8(FP), DX
	MOVQ         n+16(FP), CX
	VBROADCASTSD qx+24(FP), Y0
	VBROADCASTSD qy+32(FP), Y1
	MOVQ         out+40(FP), DI
	XORQ         AX, AX

loop4:
	LEAQ 4(AX), BX
	CMPQ BX, CX
	JGT  tail
	dSq4
	VMOVUPD Y2, (DI)(AX*8)
	MOVQ    BX, AX
	JMP     loop4

tail:
	CMPQ AX, CX
	JGE  done
	dSq1
	VMOVSD X2, (DI)(AX*8)
	INCQ   AX
	JMP    tail

done:
	VZEROUPPER
	RET

// func countWithinAVX2(xs, ys *float64, n int, qx, qy, boundSq float64) int
TEXT ·countWithinAVX2(SB), NOSPLIT, $0-56
	MOVQ         xs+0(FP), SI
	MOVQ         ys+8(FP), DX
	MOVQ         n+16(FP), CX
	VBROADCASTSD qx+24(FP), Y0
	VBROADCASTSD qy+32(FP), Y1
	VBROADCASTSD boundSq+40(FP), Y4
	XORQ         AX, AX
	XORQ         R8, R8

loop4:
	LEAQ 4(AX), BX
	CMPQ BX, CX
	JGT  tail
	dSq4
	VCMPPD     LE_OQ, Y4, Y2, Y3 // lane qualifies iff dSq <= bound, NaN never
	VMOVMSKPD  Y3, R9
	POPCNTQ    R9, R9
	ADDQ       R9, R8
	MOVQ       BX, AX
	JMP        loop4

tail:
	CMPQ AX, CX
	JGE  done
	dSq1
	VUCOMISD X2, X4 // flags of bound vs dSq; AE iff bound >= dSq, ordered
	JB       skip
	JP       skip
	INCQ     R8

skip:
	INCQ AX
	JMP  tail

done:
	MOVQ       R8, ret+48(FP)
	VZEROUPPER
	RET

// func minDistSqAVX2(xs, ys *float64, n int, qx, qy float64) float64
TEXT ·minDistSqAVX2(SB), NOSPLIT, $0-48
	MOVQ         xs+0(FP), SI
	MOVQ         ys+8(FP), DX
	MOVQ         n+16(FP), CX
	VBROADCASTSD qx+24(FP), Y0
	VBROADCASTSD qy+32(FP), Y1
	MOVQ         $0x7FF0000000000000, R9 // +Inf
	VMOVQ        R9, X5
	VBROADCASTSD X5, Y5                  // vector running min
	VMOVQ        R9, X6                  // scalar-tail running min
	XORQ         AX, AX

loop4:
	LEAQ 4(AX), BX
	CMPQ BX, CX
	JGT  tail
	dSq4
	VMINPD Y5, Y2, Y5 // min(dSq, acc); NaN lanes keep acc, like scalar d < best
	MOVQ   BX, AX
	JMP    loop4

tail:
	CMPQ AX, CX
	JGE  reduce
	dSq1
	VMINSD X6, X2, X6 // min(dSq, acc); NaN keeps acc
	INCQ   AX
	JMP    tail

reduce:
	// Fold the 4 vector lanes and the scalar tail into one minimum. The
	// accumulators are NaN-free (they start at +Inf and VMINPD never admits
	// NaN), so fold order is irrelevant.
	VEXTRACTF128 $1, Y5, X7
	VMINPD       X7, X5, X5
	VPERMILPD    $1, X5, X7
	VMINSD       X7, X5, X5
	VMINSD       X6, X5, X5
	VMOVSD       X5, ret+40(FP)
	VZEROUPPER
	RET

// func argMinEqScanAVX2(xs, ys *float64, n int, qx, qy, m float64) int
//
// Returns the first lane index whose squared distance equals m (the
// precomputed minimum), or -1. EQ_OQ never matches NaN lanes.
TEXT ·argMinEqScanAVX2(SB), NOSPLIT, $0-56
	MOVQ         xs+0(FP), SI
	MOVQ         ys+8(FP), DX
	MOVQ         n+16(FP), CX
	VBROADCASTSD qx+24(FP), Y0
	VBROADCASTSD qy+32(FP), Y1
	VBROADCASTSD m+40(FP), Y4
	XORQ         AX, AX

loop4:
	LEAQ 4(AX), BX
	CMPQ BX, CX
	JGT  tail
	dSq4
	VCMPPD    EQ_OQ, Y4, Y2, Y3
	VMOVMSKPD Y3, R9
	TESTQ     R9, R9
	JNZ       found
	MOVQ      BX, AX
	JMP       loop4

found:
	BSFQ R9, R9    // first qualifying lane within the group
	ADDQ R9, AX
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

tail:
	CMPQ AX, CX
	JGE  miss
	dSq1
	VUCOMISD X4, X2 // flags of dSq vs m; E iff equal and ordered
	JNE      skip
	JP       skip
	MOVQ     AX, ret+48(FP)
	VZEROUPPER
	RET

skip:
	INCQ AX
	JMP  tail

miss:
	MOVQ       $-1, ret+48(FP)
	VZEROUPPER
	RET

// func selectWithinAVX2(xs, ys *float64, n int, qx, qy, boundSq float64, idx *int32) int
TEXT ·selectWithinAVX2(SB), NOSPLIT, $0-64
	MOVQ         xs+0(FP), SI
	MOVQ         ys+8(FP), DX
	MOVQ         n+16(FP), CX
	VBROADCASTSD qx+24(FP), Y0
	VBROADCASTSD qy+32(FP), Y1
	VBROADCASTSD boundSq+40(FP), Y4
	MOVQ         idx+48(FP), DI
	XORQ         AX, AX
	XORQ         R8, R8 // m: qualifying lanes emitted so far

loop4:
	LEAQ 4(AX), BX
	CMPQ BX, CX
	JGT  tail
	dSq4
	VCMPPD    LE_OQ, Y4, Y2, Y3
	VMOVMSKPD Y3, R9

	// Branchless compress of the 4-bit mask: unconditionally store the lane
	// index at idx[m], then advance m by the lane's mask bit. m never
	// exceeds the current lane index, so the store stays in bounds for an
	// idx of length n; slots past the final count are scratch.
	MOVL R9, R10
	ANDL $1, R10
	MOVL AX, (DI)(R8*4)
	ADDQ R10, R8

	LEAQ 1(AX), R11
	MOVL R9, R10
	SHRL $1, R10
	ANDL $1, R10
	MOVL R11, (DI)(R8*4)
	ADDQ R10, R8

	LEAQ 2(AX), R11
	MOVL R9, R10
	SHRL $2, R10
	ANDL $1, R10
	MOVL R11, (DI)(R8*4)
	ADDQ R10, R8

	LEAQ 3(AX), R11
	MOVL R9, R10
	SHRL $3, R10
	ANDL $1, R10
	MOVL R11, (DI)(R8*4)
	ADDQ R10, R8

	MOVQ BX, AX
	JMP  loop4

tail:
	CMPQ AX, CX
	JGE  done
	dSq1
	VUCOMISD X2, X4
	JB       skip
	JP       skip
	MOVL     AX, (DI)(R8*4)
	INCQ     R8

skip:
	INCQ AX
	JMP  tail

done:
	MOVQ       R8, ret+56(FP)
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
