package geom

import "repro/internal/kernel"

// PointStore is relation-wide columnar point storage: one structure-of-arrays
// (SoA) triple of flat slices, where point i is (Xs[i], Ys[i]) and IDs[i] is
// its stable identity. The distance-scan inner loops underneath every query
// read Xs/Ys directly — contiguous float64 streams the compiler can keep in
// registers and the CPU can prefetch — instead of loading Point structs
// through a per-block slice header (the former array-of-structs layout).
//
// IDs are assigned at ingestion (position in the original input, unless the
// producer supplies its own) and travel with the coordinates through every
// permutation, so a point keeps its identity no matter how an index reorders
// the store into block-contiguous spans. Index blocks reference a store by
// (offset, length) span and never copy points.
//
// A PointStore is append-only while being built and immutable once an index
// has been constructed over it; the dynamic grid gives each of its blocks a
// small private store instead of sharing a relation-wide one.
type PointStore struct {
	// Xs and Ys hold the coordinates, parallel to each other and to IDs.
	Xs, Ys []float64

	// IDs holds the stable per-point identities, parallel to Xs/Ys.
	IDs []int32
}

// NewPointStore returns an empty store pre-sized for n points, so filling it
// with up to n Append calls never regrows the backing arrays.
func NewPointStore(n int) *PointStore {
	if n < 0 {
		n = 0
	}
	return &PointStore{
		Xs:  make([]float64, 0, n),
		Ys:  make([]float64, 0, n),
		IDs: make([]int32, 0, n),
	}
}

// StoreFromPoints builds a store holding pts in order, with IDs 0..len-1
// (the identity a caller-supplied point slice implies). The input slice is
// not retained.
func StoreFromPoints(pts []Point) *PointStore {
	st := NewPointStore(len(pts))
	for _, p := range pts {
		st.Append(p)
	}
	return st
}

// Len returns the number of stored points.
func (st *PointStore) Len() int { return len(st.Xs) }

// At returns point i as a Point value.
func (st *PointStore) At(i int) Point { return Point{X: st.Xs[i], Y: st.Ys[i]} }

// ID returns the stable identity of point i.
func (st *PointStore) ID(i int) int32 { return st.IDs[i] }

// Append adds p with the next sequential ID (its current position).
func (st *PointStore) Append(p Point) {
	st.AppendWithID(p, int32(len(st.Xs)))
}

// AppendWithID adds p carrying an explicit stable ID.
func (st *PointStore) AppendWithID(p Point, id int32) {
	st.Xs = append(st.Xs, p.X)
	st.Ys = append(st.Ys, p.Y)
	st.IDs = append(st.IDs, id)
}

// View returns a frozen view of the first n points: a store whose slice
// headers are capped at n, sharing the backing arrays. Appends to the
// original store after the view is taken — even ones that land in the same
// backing array — are invisible to the view and race-free with respect to
// it, because readers of the view never touch the original headers or any
// element at position >= n. This is what lets an append-only delta store
// publish immutable snapshots while mutation continues.
func (st *PointStore) View(n int) *PointStore {
	return &PointStore{
		Xs:  st.Xs[:n:n],
		Ys:  st.Ys[:n:n],
		IDs: st.IDs[:n:n],
	}
}

// Points materializes the store as a Point slice in storage order. It
// allocates; scan paths iterate Xs/Ys directly instead.
func (st *PointStore) Points() []Point {
	out := make([]Point, st.Len())
	for i := range out {
		out[i] = Point{X: st.Xs[i], Y: st.Ys[i]}
	}
	return out
}

// AppendRange appends the points of the span [off, off+n) to dst and
// returns it — the copy-out primitive for cold callers that want Point
// values out of a span.
func (st *PointStore) AppendRange(dst []Point, off, n int) []Point {
	xs, ys := st.Xs[off:off+n], st.Ys[off:off+n]
	for i := range xs {
		dst = append(dst, Point{X: xs[i], Y: ys[i]})
	}
	return dst
}

// MBR returns the minimum bounding rectangle of the span [off, off+n) as a
// flat scan over the coordinate arrays. It panics when n == 0; callers
// bound at least one point.
func (st *PointStore) MBR(off, n int) Rect {
	if n <= 0 {
		panic("geom: PointStore.MBR on empty span")
	}
	xs, ys := st.Xs[off:off+n], st.Ys[off:off+n]
	r := Rect{MinX: xs[0], MinY: ys[0], MaxX: xs[0], MaxY: ys[0]}
	for i := 1; i < len(xs); i++ {
		if xs[i] < r.MinX {
			r.MinX = xs[i]
		}
		if xs[i] > r.MaxX {
			r.MaxX = xs[i]
		}
		if ys[i] < r.MinY {
			r.MinY = ys[i]
		}
		if ys[i] > r.MaxY {
			r.MaxY = ys[i]
		}
	}
	return r
}

// CountWithinSq counts span points whose squared distance to p is at most
// dSq — the radius-filter primitive behind range filters and the layout and
// kernel ablations. It delegates to the batched distance-kernel layer
// (AVX2 on capable amd64 hosts, the scalar reference elsewhere); both
// implementations are bit-identical, see package kernel.
func (st *PointStore) CountWithinSq(off, n int, p Point, dSq float64) int {
	return kernel.CountWithinSpan(st.Xs, st.Ys, off, n, p.X, p.Y, dSq)
}

// FlatXYs copies pts into parallel X/Y columns — the structure-of-arrays
// form the batched distance kernels scan. Query algorithms flatten a
// retained point set (e.g. a select's σ-neighborhood) once and run their
// per-tuple scans through the kernel layer against the columns.
func FlatXYs(pts []Point) (xs, ys []float64) {
	xs = make([]float64, len(pts))
	ys = make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	return xs, ys
}

// SwapRemove removes point i by swapping the last point into its place and
// truncating — the O(1) deletion the dynamic grid's per-block stores use.
func (st *PointStore) SwapRemove(i int) {
	last := st.Len() - 1
	st.Xs[i], st.Ys[i], st.IDs[i] = st.Xs[last], st.Ys[last], st.IDs[last]
	st.Xs = st.Xs[:last]
	st.Ys = st.Ys[:last]
	st.IDs = st.IDs[:last]
}
