package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 2.5}, Point{1.5, 2.5}, 0},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); got != c.want {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); got != c.want*c.want {
			t.Errorf("DistSq(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.DistSq(b) == b.DistSq(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointLessTotalOrder(t *testing.T) {
	a := Point{1, 2}
	b := Point{1, 3}
	c := Point{2, 0}
	if !a.Less(b) || !a.Less(c) || !b.Less(c) {
		t.Fatalf("expected a < b < c")
	}
	if a.Less(a) {
		t.Fatalf("Less must be irreflexive")
	}
}

func TestCloserTo(t *testing.T) {
	q := Point{0, 0}
	near := Point{1, 0}
	far := Point{2, 0}
	if !near.CloserTo(q, far) {
		t.Errorf("near should be closer to q than far")
	}
	if far.CloserTo(q, near) {
		t.Errorf("far should not be closer to q than near")
	}
	// Exact tie: distance 5 both ways; (3,4) < (4,3) lexicographically.
	t1, t2 := Point{3, 4}, Point{4, 3}
	if !t1.CloserTo(q, t2) {
		t.Errorf("tie should break to the lexicographically smaller point")
	}
	if t2.CloserTo(q, t1) {
		t.Errorf("tie-break must be antisymmetric")
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r := RectFromPoints(pts)
	want := Rect{MinX: -2, MinY: -1, MaxX: 4, MaxY: 5}
	if r != want {
		t.Errorf("RectFromPoints = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding rect %v must contain %v", r, p)
		}
	}
}

func TestRectFromPointsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on empty input")
		}
	}()
	RectFromPoints(nil)
}

func TestRectAccessors(t *testing.T) {
	r := NewRect(0, 0, 3, 4)
	if r.Width() != 3 || r.Height() != 4 {
		t.Errorf("Width/Height = %v/%v, want 3/4", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %v, want 12", r.Area())
	}
	if got, want := r.Center(), (Point{1.5, 2}); got != want {
		t.Errorf("Center = %v, want %v", got, want)
	}
	if r.Diagonal() != 5 {
		t.Errorf("Diagonal = %v, want 5", r.Diagonal())
	}
}

func TestRectContainment(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	inside := []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}}
	outside := []Point{{-0.1, 5}, {10.1, 5}, {5, -0.1}, {5, 10.1}}
	for _, p := range inside {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range outside {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
	if !r.ContainsRect(NewRect(1, 1, 9, 9)) {
		t.Errorf("inner rect should be contained")
	}
	if r.ContainsRect(NewRect(1, 1, 11, 9)) {
		t.Errorf("overflowing rect should not be contained")
	}
}

func TestRectIntersects(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		s    Rect
		want bool
	}{
		{NewRect(5, 5, 15, 15), true},
		{NewRect(10, 10, 20, 20), true}, // touching corner: closed rects intersect
		{NewRect(11, 11, 20, 20), false},
		{NewRect(-5, -5, -1, -1), false},
		{NewRect(2, 2, 3, 3), true}, // contained
	}
	for _, c := range cases {
		if got := r.Intersects(c.s); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", r, c.s, got, c.want)
		}
		if got := c.s.Intersects(r); got != c.want {
			t.Errorf("Intersects must be symmetric for %v", c.s)
		}
	}
}

func TestUnionExpand(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	s := NewRect(2, -1, 3, 0.5)
	u := r.Union(s)
	if !u.ContainsRect(r) || !u.ContainsRect(s) {
		t.Errorf("union %v must contain both operands", u)
	}
	e := r.ExpandPoint(Point{-2, 5})
	if !e.Contains(Point{-2, 5}) || !e.ContainsRect(r) {
		t.Errorf("ExpandPoint result %v must contain point and original rect", e)
	}
}

func TestMinMaxDistKnownValues(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Point{1, 1}, 0, math.Sqrt(2)},                // center
		{Point{0, 0}, 0, 2 * math.Sqrt2},              // corner
		{Point{-3, 1}, 3, math.Hypot(5, 1)},           // left of rect
		{Point{1, 5}, 3, math.Hypot(1, 5)},            // above rect
		{Point{-1, -1}, math.Sqrt2, math.Hypot(3, 3)}, // diagonal out
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.min)
		}
		if got := r.MaxDist(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist(%v) = %v, want %v", c.p, got, c.max)
		}
	}
}

// TestMinMaxDistBracketsSamples is the central property the query algorithms
// rely on: for every point q inside a rectangle r and every external point p,
// MINDIST(p, r) <= dist(p, q) <= MAXDIST(p, r).
func TestMinMaxDistBracketsSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := NewRect(rng.Float64()*100-50, rng.Float64()*100-50,
			rng.Float64()*100-50, rng.Float64()*100-50)
		p := Point{rng.Float64()*400 - 200, rng.Float64()*400 - 200}
		q := Point{
			X: r.MinX + rng.Float64()*r.Width(),
			Y: r.MinY + rng.Float64()*r.Height(),
		}
		d := p.Dist(q)
		if min := r.MinDist(p); d < min-1e-9 {
			t.Fatalf("dist %v < MinDist %v for p=%v q=%v r=%v", d, min, p, q, r)
		}
		if max := r.MaxDist(p); d > max+1e-9 {
			t.Fatalf("dist %v > MaxDist %v for p=%v q=%v r=%v", d, max, p, q, r)
		}
	}
}

func TestMinDistZeroIffInside(t *testing.T) {
	r := NewRect(0, 0, 4, 4)
	if r.MinDist(Point{2, 2}) != 0 {
		t.Errorf("MinDist of interior point must be 0")
	}
	if r.MinDist(Point{4, 4}) != 0 {
		t.Errorf("MinDist of boundary point must be 0")
	}
	if r.MinDist(Point{5, 2}) == 0 {
		t.Errorf("MinDist of exterior point must be positive")
	}
}

func TestMinLEMaxProperty(t *testing.T) {
	f := func(px, py, x1, y1, x2, y2 float64) bool {
		r := NewRect(clampf(x1), clampf(y1), clampf(x2), clampf(y2))
		p := Point{clampf(px), clampf(py)}
		return r.MinDistSq(p) <= r.MaxDistSq(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// clampf maps arbitrary float64 test inputs (which may be NaN/Inf) into a
// finite range so geometric identities are well-defined.
func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestStringFormats(t *testing.T) {
	if s := (Point{1, 2}).String(); s == "" {
		t.Errorf("Point.String must not be empty")
	}
	if s := NewRect(0, 0, 1, 1).String(); s == "" {
		t.Errorf("Rect.String must not be empty")
	}
}
