// Package geom provides the two-dimensional geometric primitives used by all
// spatial-query algorithms in this repository: points, axis-aligned
// rectangles, Euclidean distance, and the MINDIST/MAXDIST metrics between a
// point and a rectangle (Roussopoulos, Kelley, Vincent: "Nearest neighbor
// queries", SIGMOD 1995).
//
// Distances are compared through squared values whenever possible to avoid
// square roots on hot paths. A total ordering of points by
// (distance-to-query, X, Y) is provided so that k-nearest-neighbor sets are
// deterministic even under exact distance ties; every algorithm in this
// repository uses that ordering, which makes results from different
// evaluation strategies exactly comparable.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional Euclidean plane.
//
// Point is a comparable value type: it can be used directly as a map key,
// which the query algorithms exploit when intersecting result sets.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y)
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.DistSq(q))
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Less reports whether p orders before q in the canonical (X, Y)
// lexicographic order. It is used as the final tie-break when two candidate
// neighbors are at exactly the same distance from a query point.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// CloserTo reports whether p is strictly closer to the query point q than r
// is, breaking exact distance ties by the canonical point order. It induces
// a strict total order on distinct points for any fixed q.
func (p Point) CloserTo(q, r Point) bool {
	dp, dr := p.DistSq(q), r.DistSq(q)
	if dp != dr {
		return dp < dr
	}
	return p.Less(r)
}

// Rect is a closed axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
//
// The zero Rect is the degenerate rectangle containing only the origin. An
// empty rectangle (Min > Max on either axis) is never produced by this
// package; constructors normalize their inputs.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// coordinate order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectFromPoints returns the minimum bounding rectangle of pts.
// It panics if pts is empty; callers index at least one point.
func RectFromPoints(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints on empty slice")
	}
	r := Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r = r.ExpandPoint(p)
	}
	return r
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g]x[%.6g,%.6g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Width returns the extent of r along the X axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the Y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Diagonal returns the length of the diagonal of r. The Block-Marking
// algorithm adds this length to a neighborhood radius to form its search
// threshold (Theorem 1 of the paper: the diagonal is the tight bound when the
// neighborhood is computed at the block center).
func (r Rect) Diagonal() float64 {
	return math.Hypot(r.Width(), r.Height())
}

// Contains reports whether p lies inside the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point (closed
// rectangles: touching edges intersect).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// ExpandPoint returns the smallest rectangle containing both r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if s.MinX < r.MinX {
		r.MinX = s.MinX
	}
	if s.MaxX > r.MaxX {
		r.MaxX = s.MaxX
	}
	if s.MinY < r.MinY {
		r.MinY = s.MinY
	}
	if s.MaxY > r.MaxY {
		r.MaxY = s.MaxY
	}
	return r
}

// MinDistSq returns the squared minimum distance between p and any point of
// r. It is zero when p lies inside r.
func (r Rect) MinDistSq(p Point) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	return dx*dx + dy*dy
}

// MinDist returns the MINDIST metric: the minimum possible distance between
// p and any point inside r.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDistSq(p))
}

// MaxDistSq returns the squared maximum distance between p and any point of
// r, attained at the corner of r farthest from p.
func (r Rect) MaxDistSq(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return dx*dx + dy*dy
}

// MaxDist returns the MAXDIST metric: the maximum possible distance between
// p and any point inside r.
func (r Rect) MaxDist(p Point) float64 {
	return math.Sqrt(r.MaxDistSq(p))
}

// axisDist returns the distance from coordinate v to the interval [lo, hi],
// zero when v lies inside it.
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
