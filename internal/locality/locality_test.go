package locality_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// TestNeighborhoodMatchesNaive is the foundational property: the locality
// algorithm must return exactly the brute-force k nearest neighbors (under
// the canonical tie order) on every index kind, every data layout, and a
// sweep of k values.
func TestNeighborhoodMatchesNaive(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	layouts := map[string][]geom.Point{
		"uniform":   testutil.UniformPoints(900, bounds, 11),
		"clustered": testutil.ClusteredPoints(900, 7, 20, bounds, 12),
		"tiny":      testutil.UniformPoints(5, bounds, 13),
	}
	rng := rand.New(rand.NewSource(21))
	for name, pts := range layouts {
		for _, kind := range testutil.AllIndexKinds {
			s := locality.NewSearcher(testutil.BuildIndex(t, kind, pts))
			for _, k := range []int{1, 2, 10, 64, len(pts), len(pts) + 5} {
				for trial := 0; trial < 8; trial++ {
					q := geom.Point{X: rng.Float64() * 1200, Y: rng.Float64() * 1200}
					got := s.Neighborhood(q, k, nil)
					want := locality.NaiveKNN(pts, q, k)
					if !reflect.DeepEqual(got.Points, want.Points) {
						t.Fatalf("%s/%s k=%d q=%v:\n got %v\nwant %v",
							name, kind, k, q, got.Points, want.Points)
					}
				}
			}
		}
	}
}

func TestNeighborhoodSortedAndConsistent(t *testing.T) {
	pts := testutil.UniformPoints(500, geom.NewRect(0, 0, 100, 100), 3)
	s := locality.NewSearcher(testutil.BuildIndex(t, testutil.Grid, pts))
	q := geom.Point{X: 50, Y: 50}
	n := s.Neighborhood(q, 25, nil)

	if n.Len() != 25 {
		t.Fatalf("Len = %d, want 25", n.Len())
	}
	if len(n.Dists) != len(n.Points) {
		t.Fatalf("Dists and Points lengths differ")
	}
	for i, p := range n.Points {
		if got := p.Dist(q); math.Abs(got-n.Dists[i]) > 1e-12 {
			t.Fatalf("Dists[%d] = %v, actual distance %v", i, n.Dists[i], got)
		}
		if i > 0 && n.Dists[i] < n.Dists[i-1] {
			t.Fatalf("distances not ascending at %d", i)
		}
	}
	if n.Nearest() != n.Points[0] || n.Farthest() != n.Points[24] {
		t.Fatalf("Nearest/Farthest disagree with Points order")
	}
	if got := n.FarthestDist(); got != n.Dists[24] {
		t.Fatalf("FarthestDist = %v, want %v", got, n.Dists[24])
	}
}

func TestNeighborhoodEdgeCases(t *testing.T) {
	pts := testutil.UniformPoints(50, geom.NewRect(0, 0, 10, 10), 4)
	s := locality.NewSearcher(testutil.BuildIndex(t, testutil.Grid, pts))
	q := geom.Point{X: 5, Y: 5}

	if n := s.Neighborhood(q, 0, nil); n.Len() != 0 {
		t.Errorf("k=0 must yield empty neighborhood, got %d", n.Len())
	}
	if n := s.Neighborhood(q, -3, nil); n.Len() != 0 {
		t.Errorf("negative k must yield empty neighborhood, got %d", n.Len())
	}
	if n := s.Neighborhood(q, 100, nil); n.Len() != 50 {
		t.Errorf("k > |E| must yield all points, got %d", n.Len())
	}

	empty := &locality.Neighborhood{Center: q}
	if d := empty.FarthestDist(); d != 0 {
		t.Errorf("empty FarthestDist = %v, want 0", d)
	}
	if d := empty.NearestDistTo(q); !math.IsInf(d, 1) {
		t.Errorf("empty NearestDistTo = %v, want +Inf", d)
	}
	if d := empty.FarthestDistTo(q); d != 0 {
		t.Errorf("empty FarthestDistTo = %v, want 0", d)
	}
}

func TestNeighborhoodDuplicatePoints(t *testing.T) {
	// Five copies of one point and five of another: kNN must handle
	// duplicate coordinates without dropping below k.
	var pts []geom.Point
	for i := 0; i < 5; i++ {
		pts = append(pts, geom.Point{X: 1, Y: 1}, geom.Point{X: 9, Y: 9})
	}
	s := locality.NewSearcher(testutil.BuildIndex(t, testutil.Grid, pts))
	n := s.Neighborhood(geom.Point{X: 0, Y: 0}, 7, nil)
	if n.Len() != 7 {
		t.Fatalf("Len = %d, want 7", n.Len())
	}
	for i := 0; i < 5; i++ {
		if n.Points[i] != (geom.Point{X: 1, Y: 1}) {
			t.Fatalf("Points[%d] = %v, want the near duplicate", i, n.Points[i])
		}
	}
}

func TestNeighborhoodHelpers(t *testing.T) {
	n := &locality.Neighborhood{
		Center: geom.Point{X: 0, Y: 0},
		Points: []geom.Point{{X: 1, Y: 0}, {X: 0, Y: 2}},
		Dists:  []float64{1, 2},
	}
	if !n.Contains(geom.Point{X: 1, Y: 0}) || n.Contains(geom.Point{X: 5, Y: 5}) {
		t.Errorf("Contains misbehaves")
	}
	clone := n.Clone()
	clone.Points[0] = geom.Point{X: 42, Y: 42}
	if n.Points[0] != (geom.Point{X: 1, Y: 0}) {
		t.Errorf("Clone shares backing storage with the original")
	}
	m := &locality.Neighborhood{
		Center: geom.Point{X: 9, Y: 9},
		Points: []geom.Point{{X: 0, Y: 2}, {X: 7, Y: 7}},
	}
	inter := n.Intersect(m)
	if len(inter) != 1 || inter[0] != (geom.Point{X: 0, Y: 2}) {
		t.Errorf("Intersect = %v, want [(0,2)]", inter)
	}

	q := geom.Point{X: 0, Y: 3}
	if got := n.NearestDistTo(q); got != 1 {
		t.Errorf("NearestDistTo = %v, want 1 (to (0,2))", got)
	}
	if got := n.FarthestDistTo(q); math.Abs(got-math.Hypot(1, 3)) > 1e-12 {
		t.Errorf("FarthestDistTo = %v, want %v", got, math.Hypot(1, 3))
	}
}

// TestClippedNeighborhoodGuarantee encodes the 2-kNN-select soundness
// property from DESIGN.md: for any point set P whose members all lie within
// `threshold` of the query point, P ∩ clipped = P ∩ trueKNN.
func TestClippedNeighborhoodGuarantee(t *testing.T) {
	bounds := geom.NewRect(0, 0, 500, 500)
	pts := testutil.ClusteredPoints(800, 5, 30, bounds, 31)
	rng := rand.New(rand.NewSource(32))
	for _, kind := range testutil.AllIndexKinds {
		s := locality.NewSearcher(testutil.BuildIndex(t, kind, pts))
		for trial := 0; trial < 30; trial++ {
			q := geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
			k := 1 + rng.Intn(200)
			threshold := rng.Float64() * 300

			// Clone: both results come from the same searcher's reusable
			// buffer, and clipped must survive the within query.
			clipped := s.NeighborhoodClipped(q, k, threshold, nil).Clone()
			within := s.NeighborhoodWithin(q, k, threshold, nil)
			truth := locality.NaiveKNN(pts, q, k)

			// P = every data point within threshold of q.
			for _, p := range pts {
				if p.Dist(q) > threshold {
					continue
				}
				if clipped.Contains(p) != truth.Contains(p) {
					t.Fatalf("%s: point %v within threshold %v: clipped=%v truth=%v (k=%d q=%v)",
						kind, p, threshold, clipped.Contains(p), truth.Contains(p), k, q)
				}
				if within.Contains(p) != truth.Contains(p) {
					t.Fatalf("%s: point %v within threshold %v: within=%v truth=%v (k=%d q=%v)",
						kind, p, threshold, within.Contains(p), truth.Contains(p), k, q)
				}
			}
		}
	}
}

func TestSearcherClone(t *testing.T) {
	pts := testutil.UniformPoints(200, geom.NewRect(0, 0, 10, 10), 8)
	s := locality.NewSearcher(testutil.BuildIndex(t, testutil.Grid, pts))
	clone := s.Clone()
	if clone.Index() != s.Index() {
		t.Fatalf("clone must share the index")
	}
	q := geom.Point{X: 5, Y: 5}
	a := s.Neighborhood(q, 10, nil)
	b := clone.Neighborhood(q, 10, nil)
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatalf("clone results differ")
	}
}

func TestCountersAccumulate(t *testing.T) {
	pts := testutil.UniformPoints(400, geom.NewRect(0, 0, 100, 100), 9)
	s := locality.NewSearcher(testutil.BuildIndex(t, testutil.Grid, pts))
	var c stats.Counters
	s.Neighborhood(geom.Point{X: 50, Y: 50}, 10, &c)
	if c.Neighborhoods != 1 {
		t.Errorf("Neighborhoods = %d, want 1", c.Neighborhoods)
	}
	if c.BlocksScanned == 0 {
		t.Errorf("BlocksScanned must be positive")
	}
	if c.PointsCompared == 0 {
		t.Errorf("PointsCompared must be positive")
	}
}

func TestNaiveKNNDeterministicTies(t *testing.T) {
	// Four points at identical distance from the origin: ties must break by
	// (X, Y) order.
	pts := []geom.Point{{X: 0, Y: 1}, {X: 1, Y: 0}, {X: 0, Y: -1}, {X: -1, Y: 0}}
	n := locality.NaiveKNN(pts, geom.Point{}, 2)
	want := []geom.Point{{X: -1, Y: 0}, {X: 0, Y: -1}}
	if !reflect.DeepEqual(n.Points, want) {
		t.Fatalf("tie order = %v, want %v", n.Points, want)
	}
}
