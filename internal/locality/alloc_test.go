package locality_test

// Allocation-regression tests for the kNN hot path: one Searcher.Neighborhood
// call must be allocation-free in steady state on every index family. The
// first queries on a fresh Searcher may grow its scratch buffers (iterator
// heaps, the selection heap, the result arrays); after a warm-up, nothing on
// the query path may touch the garbage collector.

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/testutil"
)

func searcherForKind(t *testing.T, kind testutil.IndexKind) (*locality.Searcher, []geom.Point) {
	t.Helper()
	bounds := geom.NewRect(0, 0, 1000, 1000)
	pts := testutil.UniformPoints(4000, bounds, 41)
	queries := testutil.UniformPoints(128, bounds, 42)
	return locality.NewSearcher(testutil.BuildIndex(t, kind, pts)), queries
}

func TestNeighborhoodZeroAllocsSteadyState(t *testing.T) {
	const k = 16
	for _, kind := range testutil.AllIndexKinds {
		t.Run(string(kind), func(t *testing.T) {
			s, queries := searcherForKind(t, kind)
			// Warm up: let every scratch buffer reach steady-state capacity.
			for _, q := range queries {
				s.Neighborhood(q, k, nil)
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				s.Neighborhood(queries[i%len(queries)], k, nil)
				i++
			})
			if avg != 0 {
				t.Errorf("%s: Neighborhood allocates %v per call in steady state, want 0", kind, avg)
			}
		})
	}
}

func TestNeighborhoodWithinZeroAllocsSteadyState(t *testing.T) {
	const k = 16
	for _, kind := range testutil.AllIndexKinds {
		t.Run(string(kind), func(t *testing.T) {
			s, queries := searcherForKind(t, kind)
			for _, q := range queries {
				s.NeighborhoodWithin(q, k, 150, nil)
				s.NeighborhoodClipped(q, k, 150, nil)
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				q := queries[i%len(queries)]
				s.NeighborhoodWithin(q, k, 150, nil)
				s.NeighborhoodClipped(q, k, 150, nil)
				i++
			})
			if avg != 0 {
				t.Errorf("%s: clipped neighborhoods allocate %v per call in steady state, want 0", kind, avg)
			}
		})
	}
}

// TestSpanScanZeroAllocs covers the span primitives underneath the
// searcher's hot loop: obtaining a block's flat X/Y columns and scanning
// them (the radius-filter kernel) must not allocate on any index family —
// the columnar refactor's whole point is that the inner loop touches only
// pre-laid-out arrays.
func TestSpanScanZeroAllocs(t *testing.T) {
	for _, kind := range testutil.AllIndexKinds {
		t.Run(string(kind), func(t *testing.T) {
			bounds := geom.NewRect(0, 0, 1000, 1000)
			pts := testutil.UniformPoints(4000, bounds, 41)
			ix := testutil.BuildIndex(t, kind, pts)
			blocks := ix.Blocks()
			q := geom.Point{X: 500, Y: 500}
			sink := 0
			avg := testing.AllocsPerRun(100, func() {
				for _, b := range blocks {
					xs, ys := b.XYs()
					for i := range xs {
						dx, dy := xs[i]-q.X, ys[i]-q.Y
						if dx*dx+dy*dy <= 100*100 {
							sink++
						}
					}
					sink += b.CountWithinSq(q, 50*50)
				}
			})
			if avg != 0 {
				t.Errorf("%s: span scan allocates %v per full pass, want 0", kind, avg)
			}
			_ = sink
		})
	}
}

// TestNeighborhoodBatchedScanZeroAllocs is the steady-state allocation
// regression for the batched kernel scan paths: with blocks larger than
// kernel.BatchGrain the searcher routes spans through DistSqInto /
// SelectWithinSq and per-Searcher scratch buffers (dists, selIdx) — after
// warm-up those must be as allocation-free as the fused scalar path.
func TestNeighborhoodBatchedScanZeroAllocs(t *testing.T) {
	const k = 16
	bounds := geom.NewRect(0, 0, 1000, 1000)
	pts := testutil.UniformPoints(8000, bounds, 43)
	queries := testutil.UniformPoints(128, bounds, 44)
	for _, kind := range testutil.AllIndexKinds {
		t.Run(string(kind), func(t *testing.T) {
			ix, err := testutil.NewIndexCapacity(kind, pts, 128)
			if err != nil {
				t.Fatal(err)
			}
			s := locality.NewSearcher(ix)
			for _, q := range queries {
				s.Neighborhood(q, k, nil)
				s.NeighborhoodWithin(q, k, 150, nil)
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				q := queries[i%len(queries)]
				s.Neighborhood(q, k, nil)
				s.NeighborhoodWithin(q, k, 150, nil)
				i++
			})
			if avg != 0 {
				t.Errorf("%s: batched-span neighborhoods allocate %v per call in steady state, want 0", kind, avg)
			}
		})
	}
}

func TestCountStrictlyCloserZeroAllocs(t *testing.T) {
	for _, kind := range testutil.AllIndexKinds {
		t.Run(string(kind), func(t *testing.T) {
			s, queries := searcherForKind(t, kind)
			for _, q := range queries {
				s.CountStrictlyCloser(q, 10, 100*100, nil)
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				s.CountStrictlyCloser(queries[i%len(queries)], 10, 100*100, nil)
				i++
			})
			if avg != 0 {
				t.Errorf("%s: CountStrictlyCloser allocates %v per call, want 0", kind, avg)
			}
		})
	}
}
