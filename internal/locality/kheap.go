package locality

import (
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/kernel"
)

// SpanScratch holds the per-scanner buffers the batched kernel paths of a
// span scan need: one squared-distance lane per point and one qualifying-lane
// index per point. A scratch is shared across queries but not across
// goroutines; the batch driver keeps one per driver, the Searcher one per
// searcher.
type SpanScratch struct {
	dists  []float64 // batched-kernel scratch: per-lane squared distances
	selIdx []int32   // batched-kernel scratch: qualifying lane indices
}

// scanSpan feeds the points of b into the selection heap. Spans at or above
// the batched-kernel grain (kernel.BatchGrain: profitable span length for
// the dispatched implementation, +Inf-like when only the scalar reference
// is active) go through the batched kernel layer in two phases on the heap
// state; shorter spans keep the original fused scalar loop, whose per-lane
// cost nothing can beat at that size. All paths produce bit-identical heap
// states — the kernels perform the scalar loop's exact float64 operations —
// so query answers do not depend on the route taken. Returns the number of
// points examined.
//
// This is the single span-scan implementation: the sequential Searcher and
// the batch driver both run it, which is what makes their answers
// byte-identical by construction.
func (h *maxKHeap) scanSpan(b *index.Block, p geom.Point, sc *SpanScratch) int {
	xs, ys := b.XYs()
	if len(xs) < kernel.BatchGrain() {
		for i, x := range xs {
			dx := x - p.X
			dy := ys[i] - p.Y
			dSq := dx*dx + dy*dy
			if len(h.items) >= h.k && dSq > h.items[0].dSq {
				continue
			}
			h.offer(geom.Point{X: x, Y: ys[i]}, dSq)
		}
		return len(xs)
	}
	if len(h.items) >= h.k {
		// Heap already full: compress-store the only lanes at or below the
		// bound at span entry. The bound only tightens within a span, so
		// this is a superset of the fused loop's survivors, and offer's own
		// ordering test filters the rest — the final heap is identical.
		if cap(sc.selIdx) < len(xs) {
			sc.selIdx = make([]int32, len(xs))
		}
		m := b.SelectWithinSq(p, h.boundSq(), sc.selIdx[:len(xs)])
		for _, lane := range sc.selIdx[:m] {
			x, y := xs[lane], ys[lane]
			dx := x - p.X
			dy := y - p.Y
			h.offer(geom.Point{X: x, Y: y}, dx*dx+dy*dy)
		}
		return len(xs)
	}
	// Heap still filling: batch the whole span's distances into scratch,
	// then offer in order, rechecking the running k-th distance as the heap
	// fills exactly like the fused loop.
	if cap(sc.dists) < len(xs) {
		sc.dists = make([]float64, len(xs))
	}
	dists := sc.dists[:len(xs)]
	b.DistSqInto(p, dists)
	for i, dSq := range dists {
		if len(h.items) >= h.k && dSq > h.items[0].dSq {
			continue
		}
		h.offer(geom.Point{X: xs[i], Y: ys[i]}, dSq)
	}
	return len(xs)
}

// KHeap is the exported face of the k-selection heap, for drivers outside
// this package (the batch executor) that need the exact candidate order and
// span-scan behavior of the sequential Searcher. The zero value is usable
// after Reset.
type KHeap struct {
	h maxKHeap
}

// Reset prepares the heap for a new query of size k.
func (h *KHeap) Reset(k int) { h.h.reset(k) }

// Len returns the number of candidates currently held.
func (h *KHeap) Len() int { return len(h.h.items) }

// Full reports whether the heap holds k candidates.
func (h *KHeap) Full() bool { return h.h.full() }

// BoundSq returns the squared distance of the current k-th (worst) held
// candidate. Call only when Full.
func (h *KHeap) BoundSq() float64 { return h.h.boundSq() }

// Offer considers one candidate with its squared distance to the query
// point, under the canonical (distance, X, Y) neighbor order.
func (h *KHeap) Offer(q geom.Point, dSq float64) { h.h.offer(q, dSq) }

// ScanSpan feeds every point of b into the heap exactly as the sequential
// Searcher's span scan does, using sc for kernel scratch. Returns the number
// of points examined.
func (h *KHeap) ScanSpan(b *index.Block, p geom.Point, sc *SpanScratch) int {
	return h.h.scanSpan(b, p, sc)
}

// ExtractInto empties the heap into res in ascending neighbor order,
// reusing res's backing arrays when they are large enough.
func (h *KHeap) ExtractInto(res *Neighborhood, center geom.Point) *Neighborhood {
	return h.h.extractInto(res, center)
}
