// Package locality implements neighborhood (k-nearest-neighbor) computation
// through the locality algorithm of Sankaranarayanan, Samet and Varshney
// ("A fast all nearest neighbor algorithm for applications involving large
// point-clouds", Computers & Graphics 2007), reference [15] of the paper and
// the kNN engine used throughout its experiments.
//
// Definitions follow the paper's Section 2: the *neighborhood* of a point p
// is the set of its k nearest data points; the *locality* of p is a set of
// index blocks guaranteed to contain that neighborhood. The locality is
// built in two phases over block counts only:
//
//  1. blocks are consumed in increasing MAXDIST order from p until the
//     accumulated point count reaches k; the MAXDIST bound M of the last
//     consumed block is recorded (the k-th nearest neighbor is at distance
//     at most M);
//  2. every remaining block with MINDIST ≤ M is added (such blocks may hold
//     points closer than M that displace phase-1 candidates).
//
// The neighborhood is then selected from the points of the locality blocks
// alone. Section 5 of the paper clips this construction with a search
// threshold to evaluate two kNN-select predicates; see NeighborhoodClipped.
//
// Ownership contract: a Searcher owns mutable scratch (iterator pools, the
// selection heap, one reusable Neighborhood result) and is single-threaded
// by design; every Neighborhood* method returns a pointer into the
// searcher's result buffer, valid only until the searcher's next query.
// Callers that retain a result must copy it out with Neighborhood.Clone.
// Concurrent serving stacks on top of this contract in internal/core: a
// SearcherPool hands each goroutine its own Searcher-carrying handle.
package locality

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/stats"
)

// Neighborhood is the result of a k-nearest-neighbor computation: the
// neighbors of Center in ascending (distance, X, Y) order.
type Neighborhood struct {
	// Center is the query point the neighborhood was computed for.
	Center geom.Point

	// Points holds up to k neighbors sorted ascending by distance to
	// Center, exact distance ties broken by (X, Y). Fewer than k points are
	// returned only when the data set itself holds fewer than k points.
	Points []geom.Point

	// Dists holds the distances of Points to Center, parallel to Points.
	Dists []float64
}

// Len returns the number of neighbors found.
func (n *Neighborhood) Len() int { return len(n.Points) }

// Nearest returns the closest neighbor. It panics on an empty neighborhood;
// callers guard with Len.
func (n *Neighborhood) Nearest() geom.Point { return n.Points[0] }

// Farthest returns the k-th (most distant) neighbor. It panics on an empty
// neighborhood.
func (n *Neighborhood) Farthest() geom.Point { return n.Points[len(n.Points)-1] }

// FarthestDist returns the distance from Center to the most distant
// neighbor, or 0 for an empty neighborhood.
func (n *Neighborhood) FarthestDist() float64 {
	if len(n.Dists) == 0 {
		return 0
	}
	return n.Dists[len(n.Dists)-1]
}

// NearestDistTo returns the minimum distance from q to any neighbor, or
// +Inf for an empty neighborhood.
func (n *Neighborhood) NearestDistTo(q geom.Point) float64 {
	return math.Sqrt(n.NearestDistSqTo(q))
}

// NearestDistSqTo is NearestDistTo in squared form. The Counting algorithm
// derives its search threshold from this quantity — squared, so the
// threshold compares exactly against block MAXDIST² values without a
// sqrt-then-square round trip (whose rounding can shift the threshold past
// an exactly-tied block boundary).
func (n *Neighborhood) NearestDistSqTo(q geom.Point) float64 {
	best := math.Inf(1)
	for _, p := range n.Points {
		if d := p.DistSq(q); d < best {
			best = d
		}
	}
	return best
}

// FarthestDistTo returns the maximum distance from q to any neighbor, or 0
// for an empty neighborhood.
func (n *Neighborhood) FarthestDistTo(q geom.Point) float64 {
	return math.Sqrt(n.FarthestDistSqTo(q))
}

// FarthestDistSqTo is FarthestDistTo in squared form. The 2-kNN-select
// algorithm derives its search threshold from this quantity — squared, for
// the same exactness reason as NearestDistSqTo: sqrt(d²)² can round below
// d², and a tight-MBR index (k-d tree, R-tree) whose block boundary sits
// exactly at the threshold distance would then be clipped out of the
// locality, dropping an answer point. The native fuzz harness found exactly
// that divergence.
func (n *Neighborhood) FarthestDistSqTo(q geom.Point) float64 {
	best := 0.0
	for _, p := range n.Points {
		if d := p.DistSq(q); d > best {
			best = d
		}
	}
	return best
}

// Contains reports whether p is one of the neighbors. Neighborhood sizes are
// small (k), so a linear scan beats building a set.
func (n *Neighborhood) Contains(p geom.Point) bool {
	for _, q := range n.Points {
		if q == p {
			return true
		}
	}
	return false
}

// Clone returns an independent deep copy of the neighborhood.
//
// Searcher results are reused across calls (see Searcher.Neighborhood), so
// any caller that retains a result past the searcher's next query — or
// mutates it — must clone it first. Callers that only read the result
// before the next query, or copy the points they need, should not.
func (n *Neighborhood) Clone() *Neighborhood {
	return &Neighborhood{
		Center: n.Center,
		Points: append([]geom.Point(nil), n.Points...),
		Dists:  append([]float64(nil), n.Dists...),
	}
}

// Intersect returns the multiset intersection of the two neighborhoods, in
// n's order: a point value appearing a times in n and b times in m appears
// min(a, b) times in the result (n's first min(a, b) occurrences are kept).
//
// The multiplicity rule matters for co-located duplicate points at a k
// boundary: a neighborhood of size k may hold fewer copies of a value than
// exist in the data. Counting each of n's copies once m merely contains the
// value — the previous behavior — made the intersection asymmetric, so the
// conceptual and optimized two-select plans (which evaluate the predicates
// in different orders) disagreed on duplicates; the native fuzz harness
// found the divergence on three co-located points. min-multiplicity is
// symmetric, and all plans agree again.
func (n *Neighborhood) Intersect(m *Neighborhood) []geom.Point {
	var out []geom.Point
	for i, p := range n.Points {
		inM := 0
		for _, q := range m.Points {
			if q == p {
				inM++
			}
		}
		if inM == 0 {
			continue
		}
		soFar := 0
		for _, q := range n.Points[:i+1] {
			if q == p {
				soFar++
			}
		}
		if soFar <= inM {
			out = append(out, p)
		}
	}
	return out
}

// NaiveKNN computes the k nearest neighbors of p among pts by sorting all
// candidates. It is the reference implementation the property tests compare
// everything against, and is also used directly on tiny candidate sets.
func NaiveKNN(pts []geom.Point, p geom.Point, k int) *Neighborhood {
	if k <= 0 {
		return &Neighborhood{Center: p}
	}
	cands := make([]geom.Point, len(pts))
	copy(cands, pts)
	sort.Slice(cands, func(i, j int) bool { return cands[i].CloserTo(p, cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	dists := make([]float64, len(cands))
	for i, q := range cands {
		dists[i] = q.Dist(p)
	}
	return &Neighborhood{Center: p, Points: cands, Dists: dists}
}

// Searcher computes neighborhoods over one index, reusing internal scratch
// buffers across queries. A Searcher is not safe for concurrent use; create
// one per goroutine with Clone.
//
// Results are reused too: every Neighborhood* method returns a pointer to
// the Searcher's single result buffer, valid until the next query on the
// same Searcher. In steady state a query therefore allocates nothing —
// iterators, the selection heap and the result arrays all live in the
// Searcher. Callers that retain a result across queries must Clone it.
type Searcher struct {
	ix     index.Index
	blocks []*index.Block
	iters  *index.IterPool

	// ctx/done/expired carry the cooperative-cancellation binding of the
	// current query (see Bind): done is ctx's channel, saved for the
	// fault-harness checkpoint's direct poll; expired is the watcher
	// goroutine's flag, the only thing the production checkpoint reads — a
	// single atomic load, with no channel select (≈20ns) or ctx.Err() mutex
	// on the per-block path. stopWatch retires the watcher on unbind.
	ctx       context.Context
	done      <-chan struct{}
	expired   *atomic.Bool
	stopWatch chan struct{}

	// scratch buffers, reused across queries
	heap    maxKHeap
	result  Neighborhood
	inLoc   []bool // per-block locality membership, cleared via touched
	touched []int  // block IDs marked in inLoc during the current query
	span    SpanScratch
}

// NewSearcher returns a Searcher over ix.
func NewSearcher(ix index.Index) *Searcher {
	return &Searcher{ix: ix, blocks: ix.Blocks(), iters: index.NewIterPool(ix)}
}

// Clone returns an independent Searcher over the same index, for concurrent
// use from another goroutine.
func (s *Searcher) Clone() *Searcher { return NewSearcher(s.ix) }

// Index returns the index the Searcher operates on.
func (s *Searcher) Index() index.Index { return s.ix }

// Bind attaches ctx as the searcher's cancellation context: every block
// iteration of every subsequent query checkpoints against it (see
// Checkpoint). Bind(nil) detaches, restoring the zero-overhead un-cancellable
// behavior; pooled handles are detached on release so a stale context can
// never cancel a later borrower's query.
//
// Binding a cancellable context spawns a watcher goroutine that waits on
// ctx.Done() and flips the searcher's cancellation flag the moment the
// context ends, so the per-block checkpoint needs only an atomic load.
// Unbinding (or rebinding) retires the watcher; the flag pointer is fresh
// per bind, so a watcher racing its own retirement can never mark a later
// binding cancelled.
func (s *Searcher) Bind(ctx context.Context) {
	if s.stopWatch != nil {
		close(s.stopWatch)
		s.stopWatch = nil
	}
	s.ctx, s.done, s.expired = ctx, nil, nil
	if ctx == nil {
		return
	}
	done := ctx.Done()
	if done == nil {
		return // e.g. context.Background(): bound but never cancellable
	}
	expired := new(atomic.Bool)
	stop := make(chan struct{})
	s.done, s.expired, s.stopWatch = done, expired, stop
	go func() {
		select {
		case <-done:
			expired.Store(true)
		case <-stop:
		}
	}()
}

// Context returns the bound cancellation context, or nil when detached. The
// parallel drivers read it off the caller's handle to propagate the binding
// onto the extra handles they borrow.
func (s *Searcher) Context() context.Context { return s.ctx }

// Checkpoint is the cooperative cancellation (and fault-injection) point,
// invoked once per block span — never per point, so the batched distance
// kernels below it run uninterrupted. When the bound context is done it
// panics with a *fault.Cancel carrying the context's error; the unwind runs
// the query's deferred handle releases and the public entry points recover
// the payload into their typed cancellation error.
//
// The production cost is one atomic load of the global injection-armed flag
// plus, on bound searchers, one atomic load of the watcher's cancellation
// flag — Bind's watcher goroutine does the channel wait off the query path,
// so a cancel still stops the query within a block scan of the flag flip.
// While the fault harness is armed (tests only) the checkpoint additionally
// polls the context channel directly, making hook-driven cancellation
// deterministic at the exact injected block.
func (s *Searcher) Checkpoint() {
	if fault.Armed() {
		fault.OnBlockScan()
		s.pollContext()
		return
	}
	if s.expired != nil && s.expired.Load() {
		panic(&fault.Cancel{Err: s.ctx.Err()})
	}
}

// pollContext is the armed-harness checkpoint tail: a direct non-blocking
// receive on the bound context's channel, so a hook that cancels at block N
// unwinds at block N+1 with no watcher-goroutine scheduling in between.
func (s *Searcher) pollContext() {
	if s.done == nil {
		return
	}
	select {
	case <-s.done:
		panic(&fault.Cancel{Err: s.ctx.Err()})
	default:
	}
}

// Neighborhood returns the k nearest neighbors of p using the two-phase
// locality construction. c may be nil.
func (s *Searcher) Neighborhood(p geom.Point, k int, c *stats.Counters) *Neighborhood {
	return s.neighborhood(p, k, math.Inf(1), c)
}

// NeighborhoodClipped is Neighborhood with the Section 5 refinement exactly
// as in the paper's Procedure 5: the two-phase locality construction runs
// unchanged (blocks are counted toward k in MAXDIST order, M is recorded),
// but a block enters the locality only if its MINDIST from p is at most
// threshold. The returned set is the k closest points among the clipped
// locality — NOT in general the true k-nearest neighbors of p. Its
// guarantee (proved in DESIGN.md §3.6 and enforced by tests): intersecting
// it with any point set whose members all lie within threshold of p yields
// the same result as intersecting with the true neighborhood.
func (s *Searcher) NeighborhoodClipped(p geom.Point, k int, threshold float64, c *stats.Counters) *Neighborhood {
	return s.neighborhood(p, k, threshold*threshold, c)
}

// NeighborhoodClippedSq is NeighborhoodClipped taking the threshold in
// squared form. Callers whose threshold originates from a squared distance
// must use it: squaring a sqrt-derived threshold can round below the exact
// value and clip out an exactly-at-threshold block.
func (s *Searcher) NeighborhoodClippedSq(p geom.Point, k int, thresholdSq float64, c *stats.Counters) *Neighborhood {
	return s.neighborhood(p, k, thresholdSq, c)
}

// NeighborhoodWithinSq is NeighborhoodWithin taking the threshold in squared
// form; see NeighborhoodClippedSq for why exact callers need it.
func (s *Searcher) NeighborhoodWithinSq(p geom.Point, k int, thresholdSq float64, c *stats.Counters) *Neighborhood {
	return s.neighborhoodWithinSq(p, k, thresholdSq, c)
}

// NeighborhoodWithin strengthens NeighborhoodClipped: it admits exactly the
// blocks with MINDIST(p) ≤ threshold, skipping Procedure 5's count-to-k
// phase entirely, so its cost depends only on the threshold area — not on
// k. It provides the same guarantee as NeighborhoodClipped (same proof: any
// point ranked closer to p than a within-threshold candidate is itself
// within threshold, hence its block is admitted), which is all the
// 2-kNN-select intersection needs. This is the repository's implementation
// refinement over Procedure 5; see DESIGN.md §3.6.
func (s *Searcher) NeighborhoodWithin(p geom.Point, k int, threshold float64, c *stats.Counters) *Neighborhood {
	return s.neighborhoodWithinSq(p, k, threshold*threshold, c)
}

func (s *Searcher) neighborhoodWithinSq(p geom.Point, k int, thresholdSq float64, c *stats.Counters) *Neighborhood {
	if k <= 0 {
		return s.emptyResult(p)
	}
	s.heap.reset(k)
	it := s.iters.MinDist(p)
	scanned, examined := 0, 0
	for {
		s.Checkpoint()
		b, minSq, ok := it.Next()
		if !ok || minSq > thresholdSq {
			break
		}
		// Blocks arrive in increasing MINDIST order, so once the heap holds
		// k candidates no block beyond the k-th distance can contribute.
		if s.heap.full() && minSq > s.heap.boundSq() {
			break
		}
		scanned++
		examined += s.scanSpan(b, p)
	}
	c.AddBlocksScanned(scanned)
	c.AddNeighborhood(examined)
	return s.heap.extractInto(&s.result, p)
}

// scanSpan feeds the points of b into the selection heap via the shared
// span-scan implementation on maxKHeap (see kheap.go), which the batch
// driver also runs — one code path, byte-identical answers by construction.
func (s *Searcher) scanSpan(b *index.Block, p geom.Point) int {
	return s.heap.scanSpan(b, p, &s.span)
}

// CountStrictlyCloser counts indexed points in blocks whose MAXDIST from p
// is strictly below the (squared) threshold, consuming blocks in MAXDIST
// order and stopping early once the count reaches k. It is the per-tuple
// primitive of the Counting algorithm (Procedure 1): a return value of k or
// more proves the k nearest neighbors of p all lie strictly within the
// threshold. The scan state is pooled, so steady-state calls allocate
// nothing.
func (s *Searcher) CountStrictlyCloser(p geom.Point, k int, thresholdSq float64, c *stats.Counters) int {
	count, scanned := 0, 0
	it := s.iters.MaxDist(p)
	for count < k {
		s.Checkpoint()
		b, maxSq, ok := it.Next()
		if !ok {
			break
		}
		scanned++
		if maxSq >= thresholdSq {
			break // this block and all following are not strictly inside
		}
		count += b.Count()
	}
	c.AddBlocksScanned(scanned)
	return count
}

func (s *Searcher) neighborhood(p geom.Point, k int, thresholdSq float64, c *stats.Counters) *Neighborhood {
	if k <= 0 {
		return s.emptyResult(p)
	}
	if len(s.inLoc) < len(s.blocks) {
		s.inLoc = make([]bool, len(s.blocks))
	}
	s.touched = s.touched[:0]
	s.heap.reset(k)
	examined := 0

	// Phase 1: MAXDIST order until the accumulated count reaches k. The
	// iterator is incremental where the index supports it, so only blocks
	// near p are touched. Admitted blocks feed the selection heap directly;
	// once the heap is full, a block whose MINDIST exceeds the running k-th
	// distance is marked consumed without examining its points.
	maxIt := s.iters.MaxDist(p)
	count := 0
	mSq := math.Inf(1) // bound on the k-th NN distance, squared
	scanned := 0
	for count < k {
		s.Checkpoint()
		b, maxSq, ok := maxIt.Next()
		if !ok {
			break // fewer than k points in the whole data set
		}
		scanned++
		if b.Count() == 0 {
			continue
		}
		count += b.Count()
		mSq = maxSq
		minSq := b.Bounds.MinDistSq(p)
		if minSq <= thresholdSq {
			s.inLoc[b.ID] = true
			s.touched = append(s.touched, b.ID)
			if !s.heap.full() || minSq <= s.heap.boundSq() {
				examined += s.scanSpan(b, p)
			}
		}
	}

	// Phase 2: remaining blocks in MINDIST order may hold closer points.
	// The stop bound starts at M ([15]'s optimal-locality criterion) and
	// tightens to the heap's running k-th distance as soon as the heap is
	// full — far-but-qualifying blocks under M are skipped entirely.
	if count >= k {
		minIt := s.iters.MinDist(p)
		for {
			s.Checkpoint()
			b, minSq, ok := minIt.Next()
			if !ok {
				break
			}
			bound := mSq
			if s.heap.full() && s.heap.boundSq() < bound {
				bound = s.heap.boundSq()
			}
			if minSq > bound {
				break
			}
			scanned++
			if b.Count() == 0 || s.inLoc[b.ID] {
				continue
			}
			if minSq <= thresholdSq {
				examined += s.scanSpan(b, p)
			}
		}
	}
	c.AddBlocksScanned(scanned)

	// Clear the membership scratch for the next query.
	for _, id := range s.touched {
		s.inLoc[id] = false
	}

	c.AddNeighborhood(examined)
	return s.heap.extractInto(&s.result, p)
}

// emptyResult resets and returns the reusable result as an empty
// neighborhood centered at p.
func (s *Searcher) emptyResult(p geom.Point) *Neighborhood {
	s.result.Center = p
	s.result.Points = s.result.Points[:0]
	s.result.Dists = s.result.Dists[:0]
	return &s.result
}

// pdEntry is a candidate neighbor with its squared distance.
type pdEntry struct {
	p   geom.Point
	dSq float64
}

// lessPD reports whether a orders before b as a neighbor: smaller distance
// first, exact ties by canonical point order.
func lessPD(a, b pdEntry) bool {
	if a.dSq != b.dSq {
		return a.dSq < b.dSq
	}
	return a.p.Less(b.p)
}

// maxKHeap is a bounded max-heap on the neighbor order (worst candidate at
// the root) used for k-selection. It is filled through offer, which ignores
// candidates that cannot displace the current k-th neighbor, and exposes
// the running k-th distance through boundSq for block-level pruning.
type maxKHeap struct {
	k     int
	items []pdEntry
}

// reset prepares the heap for a new query of size k.
func (h *maxKHeap) reset(k int) {
	h.k = k
	h.items = h.items[:0]
}

// full reports whether the heap holds k candidates.
func (h *maxKHeap) full() bool { return len(h.items) >= h.k }

// boundSq returns the squared distance of the current k-th (worst) held
// candidate. Call only when full.
func (h *maxKHeap) boundSq() float64 { return h.items[0].dSq }

// offer considers one candidate: pushed while the heap is below k,
// displacing the worst held candidate otherwise when it orders before it.
func (h *maxKHeap) offer(q geom.Point, dSq float64) {
	if len(h.items) < h.k {
		h.push(pdEntry{p: q, dSq: dSq})
		return
	}
	if e := (pdEntry{p: q, dSq: dSq}); lessPD(e, h.items[0]) {
		h.items[0] = e
		h.siftDown(0)
	}
}

// extractInto empties the heap into res in ascending neighbor order,
// reusing res's backing arrays when they are large enough.
func (h *maxKHeap) extractInto(res *Neighborhood, center geom.Point) *Neighborhood {
	n := len(h.items)
	res.Center = center
	if cap(res.Points) < n {
		res.Points = make([]geom.Point, n)
		res.Dists = make([]float64, n)
	} else {
		res.Points = res.Points[:n]
		res.Dists = res.Dists[:n]
	}
	for i := n - 1; i >= 0; i-- {
		e := h.items[0]
		h.items[0] = h.items[len(h.items)-1]
		h.items = h.items[:len(h.items)-1]
		h.siftDown(0)
		res.Points[i] = e.p
		res.Dists[i] = math.Sqrt(e.dSq)
	}
	return res
}

func (h *maxKHeap) push(e pdEntry) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lessPD(h.items[parent], h.items[i]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *maxKHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && lessPD(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < n && lessPD(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
