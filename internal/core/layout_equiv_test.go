package core_test

// Cross-layout equivalence: the span-backed columnar engine must return
// byte-identical results to a reference AoS shadow evaluation — plain
// []geom.Point slices walked with NaiveKNN — for all five query shapes
// (select-inner-join, select-outer-join, unchained, chained, two-selects)
// plus the footnote-1 range extension, on every index family. This is the
// regression gate for the SoA PointStore refactor: any divergence in
// permutation, span bookkeeping or scan tie-breaking shows up as a result
// difference here.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/testutil"
)

// refKNN returns the k nearest neighbors of q among pts under the canonical
// (distance, X, Y) order, computed on the AoS slice with the naive sorter.
func refKNN(pts []geom.Point, q geom.Point, k int) []geom.Point {
	return locality.NaiveKNN(pts, q, k).Points
}

// refKNNJoin evaluates outer ⋈kNN inner over raw point slices.
func refKNNJoin(outer, inner []geom.Point, k int) []core.Pair {
	var out []core.Pair
	for _, e1 := range outer {
		for _, e2 := range refKNN(inner, e1, k) {
			out = append(out, core.Pair{Left: e1, Right: e2})
		}
	}
	return out
}

// refIntersectRight keeps pairs whose Right is in sel.
func refIntersectRight(pairs []core.Pair, sel []geom.Point) []core.Pair {
	inSel := make(map[geom.Point]bool, len(sel))
	for _, p := range sel {
		inSel[p] = true
	}
	var out []core.Pair
	for _, pr := range pairs {
		if inSel[pr.Right] {
			out = append(out, pr)
		}
	}
	return out
}

// refIntersectOnB matches (a, b) with (c, b) pairs on the shared b.
func refIntersectOnB(abPairs, cbPairs []core.Pair) []core.Triple {
	cByB := make(map[geom.Point][]geom.Point)
	for _, pr := range cbPairs {
		cByB[pr.Right] = append(cByB[pr.Right], pr.Left)
	}
	var out []core.Triple
	for _, pr := range abPairs {
		for _, cpt := range cByB[pr.Right] {
			out = append(out, core.Triple{A: pr.Left, B: pr.Right, C: cpt})
		}
	}
	return out
}

func sortedPairs(ps []core.Pair) []core.Pair {
	out := append([]core.Pair(nil), ps...)
	core.SortPairs(out)
	return out
}

func sortedTriples(ts []core.Triple) []core.Triple {
	out := append([]core.Triple(nil), ts...)
	core.SortTriples(out)
	return out
}

func sortedPoints(ps []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), ps...)
	core.SortPoints(out)
	return out
}

func equivPoints(n int, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

// TestLayoutEquivalenceAllShapes runs every query shape on every index
// family across several random datasets and checks the engine's results
// against the AoS reference, canonically sorted on both sides.
func TestLayoutEquivalenceAllShapes(t *testing.T) {
	bounds := geom.NewRect(0, 0, 400, 400)
	for _, kind := range testutil.AllIndexKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				aPts := equivPoints(90, bounds, 1000+seed)
				bPts := equivPoints(140, bounds, 2000+seed)
				cPts := equivPoints(70, bounds, 3000+seed)
				a := testutil.BuildRelation(t, kind, aPts)
				b := testutil.BuildRelation(t, kind, bPts)
				cRel := testutil.BuildRelation(t, kind, cPts)
				f := geom.Point{X: 200, Y: 150}
				f2 := geom.Point{X: 120, Y: 300}
				rng := geom.NewRect(100, 100, 260, 240)
				kJoin, kSel := 4, 7

				// Shape 1: kNN-select on the inner relation of a kNN-join.
				wantSIJ := sortedPairs(refIntersectRight(
					refKNNJoin(aPts, bPts, kJoin), refKNN(bPts, f, kSel)))
				for name, got := range map[string][]core.Pair{
					"conceptual":    core.SelectInnerJoinConceptual(a, b, f, kJoin, kSel, nil),
					"counting":      core.SelectInnerJoinCounting(a, b, f, kJoin, kSel, nil),
					"block-marking": core.SelectInnerJoinBlockMarking(a, b, f, kJoin, kSel, core.BlockMarkingOptions{}, nil),
				} {
					if diff := sortedPairs(got); !reflect.DeepEqual(diff, wantSIJ) {
						t.Fatalf("%s/seed %d: select-inner-join %s diverged from AoS reference:\ngot  %v\nwant %v",
							kind, seed, name, diff, wantSIJ)
					}
				}

				// Shape 2: kNN-select on the outer relation.
				wantSOJ := sortedPairs(refKNNJoin(refKNN(aPts, f, kSel), bPts, kJoin))
				if got := sortedPairs(core.SelectOuterJoin(a, b, f, kSel, kJoin, nil)); !reflect.DeepEqual(got, wantSOJ) {
					t.Fatalf("%s/seed %d: select-outer-join diverged from AoS reference", kind, seed)
				}

				// Shape 3: two unchained joins sharing B.
				wantUnchained := sortedTriples(refIntersectOnB(
					refKNNJoin(aPts, bPts, kJoin), refKNNJoin(cPts, bPts, kJoin)))
				for name, got := range map[string][]core.Triple{
					"conceptual":    core.UnchainedConceptual(a, b, cRel, kJoin, kJoin, nil),
					"block-marking": core.UnchainedBlockMarking(a, b, cRel, kJoin, kJoin, core.OrderAuto, nil),
				} {
					if diff := sortedTriples(got); !reflect.DeepEqual(diff, wantUnchained) {
						t.Fatalf("%s/seed %d: unchained %s diverged from AoS reference", kind, seed, name)
					}
				}

				// Shape 4: two chained joins A→B→C.
				var wantChained []core.Triple
				for _, ap := range aPts {
					for _, bp := range refKNN(bPts, ap, kJoin) {
						for _, cp := range refKNN(cPts, bp, kJoin) {
							wantChained = append(wantChained, core.Triple{A: ap, B: bp, C: cp})
						}
					}
				}
				wantChainedS := sortedTriples(wantChained)
				for _, qep := range []core.ChainedQEP{core.ChainedRightDeep, core.ChainedNestedJoinCached} {
					got := sortedTriples(core.ChainedJoins(a, b, cRel, kJoin, kJoin, qep, nil))
					if !reflect.DeepEqual(got, wantChainedS) {
						t.Fatalf("%s/seed %d: chained %v diverged from AoS reference", kind, seed, qep)
					}
				}

				// Shape 5: two kNN-selects over one relation.
				sel1 := refKNN(bPts, f, kSel)
				wantTwoSel := sortedPoints(refIntersectPoints(sel1, refKNN(bPts, f2, kSel+3)))
				for name, got := range map[string][]geom.Point{
					"conceptual": core.TwoSelectsConceptual(b, f, kSel, f2, kSel+3, nil),
					"optimized":  core.TwoSelects(b, f, kSel, f2, kSel+3, nil),
				} {
					if diff := sortedPoints(got); !reflect.DeepEqual(diff, wantTwoSel) {
						t.Fatalf("%s/seed %d: two-selects %s diverged from AoS reference", kind, seed, name)
					}
				}

				// Footnote-1 extension: range selection on the join's inner.
				var wantRange []core.Pair
				for _, pr := range refKNNJoin(aPts, bPts, kJoin) {
					if rng.Contains(pr.Right) {
						wantRange = append(wantRange, pr)
					}
				}
				wantRangeS := sortedPairs(wantRange)
				for name, got := range map[string][]core.Pair{
					"conceptual":    core.RangeInnerJoinConceptual(a, b, rng, kJoin, nil),
					"counting":      core.RangeInnerJoinCounting(a, b, rng, kJoin, nil),
					"block-marking": core.RangeInnerJoinBlockMarking(a, b, rng, kJoin, core.BlockMarkingOptions{}, nil),
				} {
					if diff := sortedPairs(got); !reflect.DeepEqual(diff, wantRangeS) {
						t.Fatalf("%s/seed %d: range-inner-join %s diverged from AoS reference", kind, seed, name)
					}
				}
			}
		})
	}
}

// refIntersectPoints returns points present in both sets.
func refIntersectPoints(as, bs []geom.Point) []geom.Point {
	inB := make(map[geom.Point]bool, len(bs))
	for _, p := range bs {
		inB[p] = true
	}
	var out []geom.Point
	for _, p := range as {
		if inB[p] {
			out = append(out, p)
		}
	}
	return out
}

// TestLayoutStoreScanOrderMatchesPoints pins the span bookkeeping itself:
// for every index family, walking blocks through the flat X/Y columns must
// visit exactly the store's points in scan order, and the store's stable
// IDs must recover the original input order.
func TestLayoutStoreScanOrderMatchesPoints(t *testing.T) {
	bounds := geom.NewRect(0, 0, 500, 500)
	pts := equivPoints(777, bounds, 99)
	for _, kind := range testutil.AllIndexKinds {
		rel := testutil.BuildRelation(t, kind, pts)
		st := rel.Store()
		if st == nil {
			t.Fatalf("%s: static index exposes no relation-wide store", kind)
		}
		if st.Len() != len(pts) {
			t.Fatalf("%s: store holds %d points, want %d", kind, st.Len(), len(pts))
		}
		pos := 0
		for _, b := range rel.Ix.Blocks() {
			off, n := b.Span()
			if off != pos {
				t.Fatalf("%s: block %d starts at store offset %d, want contiguous %d", kind, b.ID, off, pos)
			}
			xs, ys := b.XYs()
			for i := range xs {
				if st.Xs[off+i] != xs[i] || st.Ys[off+i] != ys[i] {
					t.Fatalf("%s: span view disagrees with store at %d", kind, off+i)
				}
			}
			pos += n
		}
		if pos != st.Len() {
			t.Fatalf("%s: blocks cover %d store points, want %d", kind, pos, st.Len())
		}
		// Stable IDs invert the permutation back to input order.
		seen := make([]bool, len(pts))
		for i := 0; i < st.Len(); i++ {
			id := st.ID(i)
			if id < 0 || int(id) >= len(pts) {
				t.Fatalf("%s: stable ID %d out of range", kind, id)
			}
			if seen[id] {
				t.Fatalf("%s: stable ID %d appears twice", kind, id)
			}
			seen[id] = true
			if st.At(i) != pts[id] {
				t.Fatalf("%s: store point %d = %v, but input[%d] = %v", kind, i, st.At(i), id, pts[id])
			}
		}
	}
}
