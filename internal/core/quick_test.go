package core

// White-box property tests (package core) driven by testing/quick: they
// check the pruning predicates themselves — not just end-to-end result
// equality — so a future change that weakens a bound fails here with a
// pointed message.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
)

// quickRelation builds a grid relation over n pseudo-random points derived
// from a quick-generated seed.
func quickRelation(seed int64, n int, bounds geom.Rect) *Relation {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	ix, err := grid.New(pts, grid.Options{TargetPerCell: 8})
	if err != nil {
		panic(err) // bounded synthetic input; cannot fail
	}
	return NewRelation(ix)
}

// TestQuickMarkContributingSoundness: no point inside a block that the
// Block-Marking preprocessing prunes (marks Non-Contributing) may appear as
// the Left of any conceptual result pair.
func TestQuickMarkContributingSoundness(t *testing.T) {
	check := func(seed int64, kJoin, kSel uint8) bool {
		kj := int(kJoin%8) + 1
		ks := int(kSel%16) + 1
		bounds := geom.NewRect(0, 0, 500, 500)
		outer := quickRelation(seed, 150, bounds)
		inner := quickRelation(seed+1, 200, bounds)
		f := geom.Point{X: float64(seed%500+250) / 2, Y: 250}

		nbrF := inner.S.Neighborhood(f, ks, nil)
		if nbrF.Len() == 0 {
			return true
		}
		contributing := markContributingBlocks(outer, inner, f, nbrF.FarthestDist(), kj,
			BlockMarkingOptions{}, nil)
		inContrib := make(map[geom.Point]bool)
		for _, b := range contributing {
			for p := range b.Points() {
				inContrib[p] = true
			}
		}

		want := SelectInnerJoinConceptual(outer, inner, f, kj, ks, nil)
		for _, pr := range want {
			if !inContrib[pr.Left] {
				t.Logf("seed=%d k⋈=%d kσ=%d: result point %v lives in a pruned block", seed, kj, ks, pr.Left)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountingSkipSoundness: whenever the Counting predicate decides
// to skip an outer point (k⋈ or more inner points strictly closer than the
// nearest point of f's neighborhood), that point must contribute nothing to
// the conceptual answer.
func TestQuickCountingSkipSoundness(t *testing.T) {
	check := func(seed int64, kJoin, kSel uint8) bool {
		kj := int(kJoin%8) + 1
		ks := int(kSel%16) + 1
		bounds := geom.NewRect(0, 0, 500, 500)
		outer := quickRelation(seed, 120, bounds)
		inner := quickRelation(seed+2, 160, bounds)
		f := geom.Point{X: 125, Y: float64(seed%500+250) / 2}

		// Clone: nbrF is retained across the conceptual plan's queries on
		// the same searcher (results are reusable buffers).
		nbrF := inner.S.Neighborhood(f, ks, nil).Clone()
		if nbrF.Len() == 0 {
			return true
		}
		want := SelectInnerJoinConceptual(outer, inner, f, kj, ks, nil)
		resultLeft := make(map[geom.Point]bool)
		for _, pr := range want {
			resultLeft[pr.Left] = true
		}

		// Re-derive the skip decision exactly as the Counting algorithm
		// does (strict comparisons; see selectjoin.go).
		ok := true
		outer.ForEachPoint(func(e1 geom.Point) {
			thr := nbrF.NearestDistTo(e1)
			thrSq := thr * thr
			count := 0
			it := index.MaxDistOrder(inner.Ix, e1)
			for count < kj {
				b, maxSq, itOK := it.Next()
				if !itOK || maxSq >= thrSq {
					break
				}
				count += b.Count()
			}
			if count >= kj && resultLeft[e1] {
				t.Logf("seed=%d: skipped point %v appears in the answer", seed, e1)
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSortCanonical: SortPairs and SortTriples produce a total order
// that is idempotent and insensitive to input permutation.
func TestQuickSortCanonical(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := make([]Pair, int(n%50)+2)
		for i := range pairs {
			pairs[i] = Pair{
				Left:  geom.Point{X: float64(rng.Intn(5)), Y: float64(rng.Intn(5))},
				Right: geom.Point{X: float64(rng.Intn(5)), Y: float64(rng.Intn(5))},
			}
		}
		shuffled := make([]Pair, len(pairs))
		copy(shuffled, pairs)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		SortPairs(pairs)
		SortPairs(shuffled)
		for i := range pairs {
			if pairs[i] != shuffled[i] {
				return false
			}
		}
		// Idempotence.
		again := make([]Pair, len(pairs))
		copy(again, pairs)
		SortPairs(again)
		for i := range pairs {
			if pairs[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoverageEstimateBounds: the cluster-coverage estimate stays in
// (0, 1] for any non-empty relation.
func TestQuickCoverageEstimateBounds(t *testing.T) {
	check := func(seed int64, n uint16) bool {
		size := int(n%800) + 1
		rel := quickRelation(seed, size, geom.NewRect(0, 0, 300, 300))
		cov := EstimateClusterCoverage(rel)
		return cov > 0 && cov <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
