package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testutil"
)

var sjBounds = geom.NewRect(0, 0, 1000, 1000)

func sjLayouts(seed int64) map[string]struct{ outer, inner []geom.Point } {
	return map[string]struct{ outer, inner []geom.Point }{
		"uniform": {
			outer: testutil.UniformPoints(400, sjBounds, seed),
			inner: testutil.UniformPoints(600, sjBounds, seed+1),
		},
		"clustered-outer": {
			outer: testutil.ClusteredPoints(400, 5, 15, sjBounds, seed+2),
			inner: testutil.UniformPoints(600, sjBounds, seed+3),
		},
		"clustered-both": {
			outer: testutil.ClusteredPoints(400, 4, 25, sjBounds, seed+4),
			inner: testutil.ClusteredPoints(600, 6, 25, sjBounds, seed+5),
		},
		"tiny": {
			outer: testutil.UniformPoints(12, sjBounds, seed+6),
			inner: testutil.UniformPoints(9, sjBounds, seed+7),
		},
	}
}

// TestSelectInnerJoinEquivalence is the central correctness property of
// Section 3: Counting and Block-Marking (contour and exhaustive) must return
// exactly the conceptual plan's pairs, on every layout and index kind.
func TestSelectInnerJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for name, layout := range sjLayouts(200) {
		for _, kind := range testutil.AllIndexKinds {
			outer := testutil.BuildRelation(t, kind, layout.outer)
			inner := testutil.BuildRelation(t, kind, layout.inner)
			for _, ks := range []struct{ kJoin, kSel int }{{1, 1}, {2, 2}, {5, 10}, {10, 3}, {16, 40}} {
				f := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}

				want := core.SelectInnerJoinConceptual(outer, inner, f, ks.kJoin, ks.kSel, nil)
				core.SortPairs(want)

				counting := core.SelectInnerJoinCounting(outer, inner, f, ks.kJoin, ks.kSel, nil)
				core.SortPairs(counting)
				if !pairsEqual(counting, want) {
					t.Fatalf("%s/%s k⋈=%d kσ=%d f=%v: Counting differs from conceptual\n got %d pairs\nwant %d pairs",
						name, kind, ks.kJoin, ks.kSel, f, len(counting), len(want))
				}

				for _, exhaustive := range []bool{false, true} {
					bm := core.SelectInnerJoinBlockMarking(outer, inner, f, ks.kJoin, ks.kSel,
						core.BlockMarkingOptions{Exhaustive: exhaustive}, nil)
					core.SortPairs(bm)
					if !pairsEqual(bm, want) {
						t.Fatalf("%s/%s k⋈=%d kσ=%d f=%v exhaustive=%v: Block-Marking differs from conceptual\n got %d pairs\nwant %d pairs",
							name, kind, ks.kJoin, ks.kSel, f, exhaustive, len(bm), len(want))
					}
				}
			}
		}
	}
}

// pairsEqual compares canonical (sorted) pair slices, treating nil and empty
// as equal.
func pairsEqual(a, b []core.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestSelectInnerJoinAgainstBruteForce validates the conceptual plan itself
// against a from-first-principles evaluation of the query semantics.
func TestSelectInnerJoinAgainstBruteForce(t *testing.T) {
	outerPts := testutil.UniformPoints(60, sjBounds, 301)
	innerPts := testutil.UniformPoints(80, sjBounds, 302)
	outer := testutil.BuildRelation(t, testutil.Grid, outerPts)
	inner := testutil.BuildRelation(t, testutil.Grid, innerPts)
	f := geom.Point{X: 500, Y: 500}
	kJoin, kSel := 4, 7

	got := core.SelectInnerJoinConceptual(outer, inner, f, kJoin, kSel, nil)
	core.SortPairs(got)

	// First principles: e2 must be in kNN(e1) AND kNN(f).
	nbrF := bruteKNN(innerPts, f, kSel)
	var want []core.Pair
	for _, e1 := range outerPts {
		for _, e2 := range bruteKNN(innerPts, e1, kJoin) {
			if containsPoint(nbrF, e2) {
				want = append(want, core.Pair{Left: e1, Right: e2})
			}
		}
	}
	core.SortPairs(want)
	if !pairsEqual(got, want) {
		t.Fatalf("conceptual plan disagrees with first-principles evaluation: got %d, want %d pairs", len(got), len(want))
	}
}

func bruteKNN(pts []geom.Point, q geom.Point, k int) []geom.Point {
	out := make([]geom.Point, len(pts))
	copy(out, pts)
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].CloserTo(q, out[best]) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func containsPoint(pts []geom.Point, p geom.Point) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}

// TestOuterPushdownIsValid reproduces Figure 3: selecting on the outer
// relation before or after the join yields identical results.
func TestOuterPushdownIsValid(t *testing.T) {
	outerPts := testutil.UniformPoints(150, sjBounds, 401)
	innerPts := testutil.UniformPoints(200, sjBounds, 402)
	outer := testutil.BuildRelation(t, testutil.Grid, outerPts)
	inner := testutil.BuildRelation(t, testutil.Grid, innerPts)
	f := geom.Point{X: 300, Y: 700}
	kSel, kJoin := 12, 3

	// Pushed: select then join (what SelectOuterJoin does).
	pushed := core.SelectOuterJoin(outer, inner, f, kSel, kJoin, nil)
	core.SortPairs(pushed)

	// Late: full join, then keep pairs whose Left survives the select.
	sel := make(map[geom.Point]struct{})
	for _, p := range core.KNNSelect(outer, f, kSel, nil) {
		sel[p] = struct{}{}
	}
	var late []core.Pair
	for _, pr := range core.KNNJoin(outer, inner, kJoin, nil) {
		if _, ok := sel[pr.Left]; ok {
			late = append(late, pr)
		}
	}
	core.SortPairs(late)

	if !pairsEqual(pushed, late) {
		t.Fatalf("outer pushdown changed the answer: pushed %d pairs, late %d pairs", len(pushed), len(late))
	}
}

// TestCountingPrunesAndBlockMarkingPrunes checks the instrumentation: on a
// dense outer relation far from the focal point, both optimized algorithms
// must actually skip work.
func TestCountingPrunesAndBlockMarkingPrunes(t *testing.T) {
	// Outer cluster far from f; inner points both near f and near the
	// cluster, so neighborhoods around the cluster never reach nbr(f).
	outerPts := testutil.ClusteredPoints(500, 1, 10, geom.NewRect(800, 800, 900, 900), 501)
	innerNear := testutil.ClusteredPoints(300, 1, 10, geom.NewRect(800, 800, 900, 900), 502)
	innerAtF := testutil.ClusteredPoints(50, 1, 5, geom.NewRect(0, 0, 50, 50), 503)
	innerPts := append(append([]geom.Point{}, innerNear...), innerAtF...)

	outer := testutil.BuildRelation(t, testutil.Grid, outerPts)
	inner := testutil.BuildRelation(t, testutil.Grid, innerPts)
	f := geom.Point{X: 10, Y: 10}

	var cc stats.Counters
	res := core.SelectInnerJoinCounting(outer, inner, f, 5, 5, &cc)
	if len(res) != 0 {
		t.Fatalf("expected empty result, got %d pairs", len(res))
	}
	if cc.OuterSkipped == 0 {
		t.Errorf("Counting skipped no outer points; counters: %v", &cc)
	}

	var bc stats.Counters
	res = core.SelectInnerJoinBlockMarking(outer, inner, f, 5, 5, core.BlockMarkingOptions{}, &bc)
	if len(res) != 0 {
		t.Fatalf("expected empty result, got %d pairs", len(res))
	}
	if bc.BlocksPruned == 0 {
		t.Errorf("Block-Marking pruned no blocks; counters: %v", &bc)
	}
}

func TestSelectInnerJoinDegenerate(t *testing.T) {
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(20, sjBounds, 601))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(20, sjBounds, 602))
	f := geom.Point{X: 1, Y: 1}

	for _, fn := range []func() []core.Pair{
		func() []core.Pair { return core.SelectInnerJoinCounting(outer, inner, f, 0, 5, nil) },
		func() []core.Pair { return core.SelectInnerJoinCounting(outer, inner, f, 5, 0, nil) },
		func() []core.Pair {
			return core.SelectInnerJoinBlockMarking(outer, inner, f, 0, 5, core.BlockMarkingOptions{}, nil)
		},
		func() []core.Pair {
			return core.SelectInnerJoinBlockMarking(outer, inner, f, -1, -1, core.BlockMarkingOptions{}, nil)
		},
	} {
		if got := fn(); len(got) != 0 {
			t.Errorf("degenerate k must yield empty result, got %d pairs", len(got))
		}
	}

	// k values exceeding both cardinalities: every (e1, e2) pair qualifies.
	want := core.SelectInnerJoinConceptual(outer, inner, f, 50, 50, nil)
	core.SortPairs(want)
	got := core.SelectInnerJoinCounting(outer, inner, f, 50, 50, nil)
	core.SortPairs(got)
	if !pairsEqual(got, want) {
		t.Errorf("oversized k: Counting differs from conceptual")
	}
	if len(want) != 20*20 {
		t.Errorf("oversized k must produce the full cross product, got %d", len(want))
	}
}
