package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testutil"
)

var rsBounds = geom.NewRect(0, 0, 1000, 1000)

// TestRangeInnerJoinEquivalence checks the footnote-1 extension: the
// Counting and Block-Marking adaptations for a range selection on the inner
// relation return exactly the conceptual plan's pairs.
func TestRangeInnerJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1201))
	layouts := map[string]struct{ outer, inner []geom.Point }{
		"uniform": {
			outer: testutil.UniformPoints(300, rsBounds, 1202),
			inner: testutil.UniformPoints(400, rsBounds, 1203),
		},
		"clustered-outer": {
			outer: testutil.ClusteredPoints(300, 3, 20, rsBounds, 1204),
			inner: testutil.UniformPoints(400, rsBounds, 1205),
		},
	}
	for name, layout := range layouts {
		for _, kind := range testutil.AllIndexKinds {
			outer := testutil.BuildRelation(t, kind, layout.outer)
			inner := testutil.BuildRelation(t, kind, layout.inner)
			for trial := 0; trial < 5; trial++ {
				cx, cy := rng.Float64()*1000, rng.Float64()*1000
				w, h := 20+rng.Float64()*200, 20+rng.Float64()*200
				q := geom.NewRect(cx-w/2, cy-h/2, cx+w/2, cy+h/2)
				kJoin := 1 + rng.Intn(8)

				want := core.RangeInnerJoinConceptual(outer, inner, q, kJoin, nil)
				core.SortPairs(want)

				counting := core.RangeInnerJoinCounting(outer, inner, q, kJoin, nil)
				core.SortPairs(counting)
				if !pairsEqual(counting, want) {
					t.Fatalf("%s/%s rect=%v k=%d: range Counting differs (%d vs %d)",
						name, kind, q, kJoin, len(counting), len(want))
				}

				for _, exhaustive := range []bool{false, true} {
					bm := core.RangeInnerJoinBlockMarking(outer, inner, q, kJoin,
						core.BlockMarkingOptions{Exhaustive: exhaustive}, nil)
					core.SortPairs(bm)
					if !pairsEqual(bm, want) {
						t.Fatalf("%s/%s rect=%v k=%d exhaustive=%v: range Block-Marking differs (%d vs %d)",
							name, kind, q, kJoin, exhaustive, len(bm), len(want))
					}
				}
			}
		}
	}
}

// TestRangeInnerJoinPrunes verifies that the adapted pruning fires: a dense
// outer cluster far from the rectangle must be skipped.
func TestRangeInnerJoinPrunes(t *testing.T) {
	outerPts := testutil.ClusteredPoints(400, 1, 10, geom.NewRect(850, 850, 950, 950), 1211)
	innerPts := append(
		testutil.ClusteredPoints(200, 1, 10, geom.NewRect(850, 850, 950, 950), 1212),
		testutil.UniformPoints(100, geom.NewRect(0, 0, 100, 100), 1213)...)
	outer := testutil.BuildRelation(t, testutil.Grid, outerPts)
	inner := testutil.BuildRelation(t, testutil.Grid, innerPts)
	q := geom.NewRect(0, 0, 80, 80)

	var cc stats.Counters
	res := core.RangeInnerJoinCounting(outer, inner, q, 5, &cc)
	if len(res) != 0 {
		t.Fatalf("expected empty result, got %d pairs", len(res))
	}
	if cc.OuterSkipped == 0 {
		t.Errorf("range Counting skipped nothing; counters: %v", &cc)
	}

	var bc stats.Counters
	res = core.RangeInnerJoinBlockMarking(outer, inner, q, 5, core.BlockMarkingOptions{}, &bc)
	if len(res) != 0 {
		t.Fatalf("expected empty result, got %d pairs", len(res))
	}
	if bc.BlocksPruned == 0 {
		t.Errorf("range Block-Marking pruned nothing; counters: %v", &bc)
	}
}

func TestRangeInnerJoinDegenerate(t *testing.T) {
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(20, rsBounds, 1221))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(20, rsBounds, 1222))

	if got := core.RangeInnerJoinCounting(outer, inner, geom.NewRect(0, 0, 10, 10), 0, nil); len(got) != 0 {
		t.Errorf("k=0 must give empty result")
	}

	// Rectangle covering everything: equivalent to the raw join.
	all := geom.NewRect(-10, -10, 1100, 1100)
	want := core.KNNJoin(outer, inner, 3, nil)
	core.SortPairs(want)
	got := core.RangeInnerJoinCounting(outer, inner, all, 3, nil)
	core.SortPairs(got)
	if !pairsEqual(got, want) {
		t.Errorf("all-covering rectangle: got %d pairs, want the raw join's %d", len(got), len(want))
	}

	// Rectangle covering nothing: empty.
	none := geom.NewRect(5000, 5000, 5010, 5010)
	if got := core.RangeInnerJoinBlockMarking(outer, inner, none, 3, core.BlockMarkingOptions{}, nil); len(got) != 0 {
		t.Errorf("empty rectangle: got %d pairs, want 0", len(got))
	}
}
