package core_test

// Tests for the deadline-aware pool acquisition layer: AcquireCtx waits
// exactly as long as the context allows, fails with the exhaustion+context
// error chain, binds and unbinds handles correctly, and AcquirePairCtx never
// strands capacity when its second acquisition fails.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/testutil"
)

func TestAcquireCtxNilIsAcquire(t *testing.T) {
	rel := boundedRelation(t, 400, 3001, 1)
	h, err := rel.AcquireCtx(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Pool().Outstanding(); got != 1 {
		t.Fatalf("Outstanding() = %d, want 1", got)
	}
	h.Release()
	if got := rel.Pool().Outstanding(); got != 0 {
		t.Fatalf("Outstanding() after Release = %d, want 0", got)
	}
}

func TestAcquireCtxExpiredFailsFastWithoutConsumingCapacity(t *testing.T) {
	rel := boundedRelation(t, 400, 3002, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rel.AcquireCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The failed attempt must not have eaten the pool's only token.
	h, err := rel.TryAcquire()
	if err != nil {
		t.Fatalf("capacity lost to a failed AcquireCtx: %v", err)
	}
	h.Release()
}

func TestAcquireCtxWaitsUntilRelease(t *testing.T) {
	rel := boundedRelation(t, 400, 3003, 1)
	h := rel.Acquire()
	go func() {
		time.Sleep(10 * time.Millisecond)
		h.Release()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	h2, err := rel.AcquireCtx(ctx)
	if err != nil {
		t.Fatalf("AcquireCtx did not wait for the release: %v", err)
	}
	h2.Release()
	if got := rel.Pool().Outstanding(); got != 0 {
		t.Fatalf("Outstanding() = %d, want 0", got)
	}
}

func TestAcquireCtxTimeoutWrapsExhaustionAndContext(t *testing.T) {
	rel := boundedRelation(t, 400, 3004, 1)
	h := rel.Acquire()
	defer h.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := rel.AcquireCtx(ctx)
	if !errors.Is(err, core.ErrSearchersExhausted) {
		t.Errorf("error %v does not wrap ErrSearchersExhausted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

func TestAcquireCtxBindsHandleAndReleaseUnbinds(t *testing.T) {
	rel := boundedRelation(t, 400, 3005, 2)
	ctx, cancel := context.WithCancel(context.Background())
	h, err := rel.AcquireCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// The binding's watcher goroutine flags the cancellation off the query
	// path, so a checkpoint observes it within microseconds of the cancel —
	// poll with a generous deadline rather than assuming synchrony.
	deadline := time.Now().Add(5 * time.Second)
	var unwound any
	for unwound == nil && time.Now().Before(deadline) {
		func() {
			defer func() { unwound = recover() }()
			h.Checkpoint()
		}()
		runtime.Gosched()
	}
	if unwound == nil {
		t.Error("Checkpoint on a cancelled binding never unwound")
	} else if c, ok := unwound.(*fault.Cancel); !ok || !errors.Is(c.Err, context.Canceled) {
		t.Errorf("unwound with %v, want *fault.Cancel carrying context.Canceled", unwound)
	}
	h.Release()

	// The recycled handle must come back unbound: the old context's
	// cancellation cannot leak into the next borrower's query.
	h2 := rel.Acquire()
	defer h2.Release()
	h2.Checkpoint() // must not panic
}

func TestAcquirePairCtxSecondFailureReleasesFirst(t *testing.T) {
	ptsA := testutil.UniformPoints(200, geom.NewRect(0, 0, 1000, 1000), 3006)
	a := core.NewRelationBounded(testutil.BuildIndex(t, testutil.Grid, ptsA), 2)
	b := boundedRelation(t, 200, 3007, 1)
	hb := b.Acquire() // exhaust b so the pair's second acquisition must wait
	defer hb.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := core.AcquirePairCtx(ctx, a, b)
	if !errors.Is(err, core.ErrSearchersExhausted) {
		t.Fatalf("got %v, want an ErrSearchersExhausted chain", err)
	}
	if got := a.Pool().Outstanding(); got != 0 {
		t.Fatalf("failed pair acquisition stranded %d handles of the first pool", got)
	}
}

func TestAcquirePairCtxDedupSharedPool(t *testing.T) {
	rel := boundedRelation(t, 200, 3008, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A pool bounded at one handle would self-deadlock without the dedup.
	ha, hb, err := core.AcquirePairCtx(ctx, rel, rel)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("duplicate relations did not share one handle")
	}
	core.ReleasePair(ha, hb)
	if got := rel.Pool().Outstanding(); got != 0 {
		t.Fatalf("Outstanding() = %d, want 0", got)
	}
}
