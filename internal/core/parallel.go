package core

import (
	"runtime"
	"sync"

	"repro/internal/stats"
)

// KNNJoinParallel evaluates outer ⋈kNN inner with the outer relation's
// blocks distributed over a pool of workers. Each worker owns a cloned
// searcher (searchers hold scratch buffers) and private counters, merged at
// the end. The result is identical — including order — to the sequential
// KNNJoin: per-block outputs are concatenated in block-ID order.
//
// workers ≤ 1 falls back to the sequential join; workers ≤ 0 uses
// GOMAXPROCS.
func KNNJoinParallel(outer, inner *Relation, k, workers int, c *stats.Counters) []Pair {
	if k <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	blocks := outer.Ix.Blocks()
	if workers == 1 || len(blocks) < 2 {
		return KNNJoin(outer, inner, k, c)
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}

	perBlock := make([][]Pair, len(blocks))
	counters := make([]stats.Counters, workers)
	next := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := inner.S.Clone()
			ctr := &counters[w]
			for bi := range next {
				b := blocks[bi]
				if b.Count() == 0 {
					continue
				}
				out := make([]Pair, 0, b.Count()*k)
				for _, e1 := range b.Points {
					nbr := s.Neighborhood(e1, k, ctr)
					for _, e2 := range nbr.Points {
						out = append(out, Pair{Left: e1, Right: e2})
					}
				}
				perBlock[bi] = out
			}
		}(w)
	}
	for bi := range blocks {
		next <- bi
	}
	close(next)
	wg.Wait()

	for w := range counters {
		c.Add(&counters[w])
	}
	total := 0
	for _, ps := range perBlock {
		total += len(ps)
	}
	out := make([]Pair, 0, total)
	for _, ps := range perBlock {
		out = append(out, ps...)
	}
	return out
}
