package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/stats"
)

// This file implements the batched parallel execution driver shared by the
// *Parallel variants of the join algorithms. The outer relation's tuples
// are split into groups (index blocks, or fixed-size chunks of a selected
// point list); a fixed crew of workers claims groups through an atomic
// cursor, each worker holding a pooled searcher handle on the inner
// relation. Workers append their results into a private *arena* drawn from
// a process-wide pool and record one (start, end) span per group, so the
// driver performs no per-group result allocation at all; the per-group
// spans are concatenated once, in group order, which makes every parallel
// result byte-identical to its sequential counterpart — including order.
//
// Extra worker handles come from the inner relation's SearcherPool via
// TryAcquire: on a bounded pool that is already at capacity the crew
// degrades gracefully to fewer workers (worker 0 always runs on the
// caller's own handle), rather than blocking or deadlocking.

// maxArenaRetain caps the capacity (in elements) of arenas returned to the
// shared pool; oversized arenas from a huge join are left to the GC instead
// of pinning their memory for the process lifetime.
const maxArenaRetain = 1 << 18

// arena is a worker-private append buffer recycled across parallel queries.
type arena[T any] struct{ buf []T }

// arenaPool recycles arenas of one element type.
type arenaPool[T any] struct{ p sync.Pool }

func (ap *arenaPool[T]) get() *arena[T] {
	if a, ok := ap.p.Get().(*arena[T]); ok {
		return a
	}
	return new(arena[T])
}

func (ap *arenaPool[T]) put(a *arena[T]) {
	if a == nil || cap(a.buf) > maxArenaRetain {
		return
	}
	a.buf = a.buf[:0]
	ap.p.Put(a)
}

var (
	pairArenas   arenaPool[Pair]
	tripleArenas arenaPool[Triple]
)

// span records where one group's results landed: in which worker's arena
// and at which offsets.
type span struct{ worker, start, end int }

// concatSpans assembles the final result slice from per-worker arenas in
// group order — the single allocation of the output path.
func concatSpans[T any](spans []span, arenas []*arena[T]) []T {
	total := 0
	for _, sp := range spans {
		total += sp.end - sp.start
	}
	if total == 0 {
		return nil // matches the sequential variants' nil empty result
	}
	out := make([]T, 0, total)
	for _, sp := range spans {
		out = append(out, arenas[sp.worker].buf[sp.start:sp.end]...)
	}
	return out
}

// normalizeWorkers resolves a worker-count request against the group count:
// non-positive means GOMAXPROCS, and there is no point running more workers
// than groups.
func normalizeWorkers(workers, groups int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > groups {
		workers = groups
	}
	return workers
}

// worker is one crew member's behavior in a parallelRun: emit produces the
// results of one outer tuple, gate (optional) admits or skips a whole
// group before its points are emitted, and done (optional) releases any
// extra resources the worker factory acquired.
type worker[T any] struct {
	emit func(e1 geom.Point, dst []T) []T
	gate func(gi int) bool
	done func()
}

// tupleGroup is one unit of outer-tuple work for the parallel driver:
// either a block span (scanned over the store's flat X/Y columns, no point
// materialization up front) or an explicit point list (chunks of a selected
// point set).
type tupleGroup struct {
	blk *index.Block
	pts []geom.Point
}

// emitGroup runs wk.emit over every tuple of the group, appending to buf.
func emitGroup[T any](g tupleGroup, wk worker[T], buf []T) []T {
	if g.blk != nil {
		xs, ys := g.blk.XYs()
		for i := range xs {
			buf = wk.emit(geom.Point{X: xs[i], Y: ys[i]}, buf)
		}
		return buf
	}
	for _, e1 := range g.pts {
		buf = wk.emit(e1, buf)
	}
	return buf
}

// parallelRun fans groups out across a worker crew and returns the
// concatenated per-group results in group order. newWorker builds each
// crew member's behavior: it receives a searcher handle on inner (worker 0
// — primary — runs on the caller's own handle, the rest borrow from
// inner's pool) and a counter shard, and may acquire extra per-worker
// state (more handles, caches) released via worker.done. Returning ok ==
// false stands the worker down — the remaining crew drains the groups; the
// primary worker must always succeed.
//
// workers <= 1 (after normalization against the group count) degenerates
// to a sequential loop on the caller's goroutine with no arena machinery.
func parallelRun[T any](ap *arenaPool[T], groups []tupleGroup, inner *Relation, workers int,
	c *stats.Counters,
	newWorker func(h *Relation, primary bool, ctr *stats.Counters) (worker[T], bool)) []T {

	workers = normalizeWorkers(workers, len(groups))
	if workers <= 1 {
		wk, _ := newWorker(inner, true, c)
		if wk.done != nil {
			defer wk.done()
		}
		var out []T
		for gi, g := range groups {
			inner.Checkpoint()
			if wk.gate != nil && !wk.gate(gi) {
				continue
			}
			out = emitGroup(g, wk, out)
		}
		return out
	}

	spans := make([]span, len(groups))
	arenas := make([]*arena[T], workers)
	// Counter shards are individually allocated (not one contiguous slice)
	// so adjacent workers' atomic increments do not false-share cache
	// lines; when the caller asked for no stats, workers get nil shards
	// and the nil-receiver no-op keeps the hot loop increment-free.
	var counters []*stats.Counters
	if c != nil {
		counters = make([]*stats.Counters, workers)
		for w := range counters {
			counters[w] = new(stats.Counters)
		}
	}
	var cursor atomic.Int64

	// Panic isolation: a worker never lets a panic — cooperative
	// cancellation (fault.Cancel) or a genuine crash — cross its goroutine
	// boundary. The first fault is parked in the slot, the abort flag stops
	// the rest of the crew at their next group claim, and after the crew is
	// joined (counters folded, handles released by the workers' own defers)
	// the fault re-panics on the caller's goroutine for the public recover.
	var flt fault.Slot
	var abort atomic.Bool

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					flt.Store(fault.WrapPanic(r))
					abort.Store(true)
				}
			}()
			h := inner
			if w > 0 {
				hh, err := inner.TryAcquire()
				if err != nil {
					// Bounded pool at capacity: drop this worker; the
					// remaining crew (at least worker 0) drains the groups.
					return
				}
				defer hh.Release()
				// Extra handles inherit the caller handle's cancellation
				// binding, so every crew member checkpoints the same ctx.
				hh.S.Bind(inner.S.Context())
				h = hh
			}
			var ctr *stats.Counters
			if counters != nil {
				ctr = counters[w]
			}
			wk, ok := newWorker(h, w == 0, ctr)
			if !ok {
				return
			}
			if wk.done != nil {
				defer wk.done()
			}
			a := ap.get()
			arenas[w] = a
			for {
				if abort.Load() {
					return
				}
				gi := int(cursor.Add(1)) - 1
				if gi >= len(groups) {
					return
				}
				h.Checkpoint()
				if wk.gate != nil && !wk.gate(gi) {
					continue
				}
				start := len(a.buf)
				a.buf = emitGroup(groups[gi], wk, a.buf)
				spans[gi] = span{worker: w, start: start, end: len(a.buf)}
			}
		}(w)
	}
	wg.Wait()

	for _, shard := range counters {
		c.Add(shard)
	}
	if r := flt.Load(); r != nil {
		// Faulted: arenas go back to the pool, no partial result escapes,
		// and the fault resumes its unwind on the caller's goroutine.
		for _, a := range arenas {
			ap.put(a)
		}
		panic(r)
	}
	out := concatSpans(spans, arenas)
	for _, a := range arenas {
		ap.put(a)
	}
	return out
}

// parallelEmit is parallelRun for the common case of stateless workers: a
// per-point emit (and optional per-group gate) parameterized only by the
// worker's handle and counter shard.
func parallelEmit[T any](ap *arenaPool[T], groups []tupleGroup, inner *Relation, workers int,
	c *stats.Counters,
	gate func(h *Relation, gi int, ctr *stats.Counters) bool,
	emit func(h *Relation, e1 geom.Point, dst []T, ctr *stats.Counters) []T) []T {

	return parallelRun(ap, groups, inner, workers, c,
		func(h *Relation, _ bool, ctr *stats.Counters) (worker[T], bool) {
			wk := worker[T]{emit: func(e1 geom.Point, dst []T) []T { return emit(h, e1, dst, ctr) }}
			if gate != nil {
				wk.gate = func(gi int) bool { return gate(h, gi, ctr) }
			}
			return wk, true
		})
}

// pointGroups exposes a block list as emission groups (one span per
// block), preserving block order so parallel results concatenate into the
// sequential order. No points are materialized; workers scan the spans.
func pointGroups(blocks []*index.Block) []tupleGroup {
	groups := make([]tupleGroup, len(blocks))
	for i, b := range blocks {
		groups[i] = tupleGroup{blk: b}
	}
	return groups
}

// blockGroups is pointGroups over the relation's full block partition —
// the same order ForEachPoint scans.
func blockGroups(rel *Relation) []tupleGroup {
	return pointGroups(rel.Ix.Blocks())
}

// pointChunks splits a point list into contiguous chunks sized for dynamic
// load balancing across workers (several chunks per worker so a slow chunk
// does not straggle the crew).
func pointChunks(pts []geom.Point, workers int) []tupleGroup {
	if len(pts) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := (len(pts) + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	groups := make([]tupleGroup, 0, (len(pts)+chunk-1)/chunk)
	for start := 0; start < len(pts); start += chunk {
		end := start + chunk
		if end > len(pts) {
			end = len(pts)
		}
		groups = append(groups, tupleGroup{pts: pts[start:end]})
	}
	return groups
}

// knnPairEmitter returns the plain kNN-join emitter: the neighborhood of
// each outer point, as (outer, neighbor) pairs.
func knnPairEmitter(k int) func(h *Relation, e1 geom.Point, dst []Pair, ctr *stats.Counters) []Pair {
	return func(h *Relation, e1 geom.Point, dst []Pair, ctr *stats.Counters) []Pair {
		nbr := h.S.Neighborhood(e1, k, ctr)
		for _, e2 := range nbr.Points {
			dst = append(dst, Pair{Left: e1, Right: e2})
		}
		return dst
	}
}

// KNNJoinParallel evaluates outer ⋈kNN inner with the outer relation's
// blocks fanned out across workers, each holding a pooled searcher handle
// on the inner relation. The result is identical — including order — to the
// sequential KNNJoin. workers <= 0 uses GOMAXPROCS; workers == 1 (or a
// degenerate outer partition) falls back to the sequential join.
func KNNJoinParallel(outer, inner *Relation, k, workers int, c *stats.Counters) []Pair {
	if k <= 0 {
		return nil
	}
	groups := blockGroups(outer)
	if normalizeWorkers(workers, len(groups)) <= 1 {
		return KNNJoin(outer, inner, k, c)
	}
	out := parallelEmit(&pairArenas, groups, inner, workers, c, nil, knnPairEmitter(k))
	if out == nil {
		out = []Pair{} // KNNJoin returns a non-nil slice for valid k
	}
	return out
}
