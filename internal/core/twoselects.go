package core

import (
	"repro/internal/geom"
	"repro/internal/stats"
)

// This file implements Section 5 of the paper: a query with two kNN-select
// predicates over one relation,
//
//	σ_{k1,f1}(E) ∩ σ_{k2,f2}(E)
//
// — points that are simultaneously among the k1 nearest to focal point f1
// and the k2 nearest to focal point f2. Evaluating one select over the
// output of the other is wrong (Figures 14–15); the correct conceptual plan
// evaluates both independently and intersects (Figure 16). The 2-kNN-select
// algorithm (Procedure 5) exploits that the final answer is confined to the
// smaller neighborhood: the locality of the larger-k predicate is clipped by
// a search threshold derived from the smaller neighborhood, so its blocks
// never cover more space than the answer can occupy.

// TwoSelectsConceptual is the conceptually correct QEP of Figure 16: both
// neighborhoods are computed in full and intersected. It is the slow
// comparator of Figure 26; its cost grows with max(k1, k2) because the
// larger locality covers ever more blocks.
func TwoSelectsConceptual(rel *Relation, f1 geom.Point, k1 int, f2 geom.Point, k2 int, c *stats.Counters) []geom.Point {
	// Both predicates run on the same searcher; the first result must be
	// cloned out of the reusable buffer before the second query overwrites it.
	nbr1 := rel.S.Neighborhood(f1, k1, c).Clone()
	nbr2 := rel.S.Neighborhood(f2, k2, c)
	return nbr1.Intersect(nbr2)
}

// SequentialTwoSelects evaluates the WRONG plans of Figures 14 and 15: the
// second select runs over the *output* of the first instead of over the full
// relation. firstIsF1 selects which predicate runs first. Implemented only
// for the semantics tests reproducing the paper's counter-example.
func SequentialTwoSelects(rel *Relation, f1 geom.Point, k1 int, f2 geom.Point, k2 int,
	firstIsF1 bool, c *stats.Counters) []geom.Point {

	if !firstIsF1 {
		f1, f2 = f2, f1
		k1, k2 = k2, k1
	}
	first := rel.S.Neighborhood(f1, k1, c)
	// Apply the second predicate to the k1 survivors only.
	second := kClosestTo(first.Points, f2, k2)
	return second
}

// kClosestTo returns the k points of pts closest to q under the canonical
// neighbor order.
func kClosestTo(pts []geom.Point, q geom.Point, k int) []geom.Point {
	if k <= 0 {
		return nil
	}
	out := make([]geom.Point, len(pts))
	copy(out, pts)
	// Small inputs: simple selection sort by the canonical order is clear
	// and allocation-free.
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].CloserTo(q, out[best]) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TwoSelects is the 2-kNN-select algorithm (Procedure 5). The predicate with
// the smaller k runs first (swapping if necessary); its neighborhood bounds
// the answer, so the second predicate's locality admits a block only if the
// block's MINDIST from the second focal point is within the search threshold
// — the distance from the second focal point to the farthest point of the
// first neighborhood. The clipped locality stays small no matter how large
// the second k grows, which is why Figure 26 shows near-constant cost.
func TwoSelects(rel *Relation, f1 geom.Point, k1 int, f2 geom.Point, k2 int, c *stats.Counters) []geom.Point {
	if k1 <= 0 || k2 <= 0 {
		return nil
	}
	// Evaluate the smaller-k predicate first (Procedure 5, lines 1–4).
	if k1 > k2 {
		f1, f2 = f2, f1
		k1, k2 = k2, k1
	}
	nbr1 := rel.S.Neighborhood(f1, k1, c).Clone() // survives the second query below
	if nbr1.Len() == 0 {
		return nil
	}
	// The threshold travels in squared form end-to-end: sqrt-then-square
	// rounding can land below the exact boundary distance and clip out an
	// exactly-at-threshold block of a tight-MBR index (fuzz-found).
	thresholdSq := nbr1.FarthestDistSqTo(f2)
	// NeighborhoodWithinSq sharpens Procedure 5's clipped locality: only
	// blocks within the search threshold are visited at all, so the cost of
	// the second predicate depends on the threshold area, not on k2.
	nbr2 := rel.S.NeighborhoodWithinSq(f2, k2, thresholdSq, c)
	return nbr1.Intersect(nbr2)
}

// TwoSelectsProcedure5 evaluates the same query with the paper's Procedure
// 5 verbatim (count-to-k2 locality construction with threshold clipping).
// It is kept for faithfulness comparisons and ablation benchmarks; the
// default TwoSelects strengthens the clipping, see above.
func TwoSelectsProcedure5(rel *Relation, f1 geom.Point, k1 int, f2 geom.Point, k2 int, c *stats.Counters) []geom.Point {
	if k1 <= 0 || k2 <= 0 {
		return nil
	}
	if k1 > k2 {
		f1, f2 = f2, f1
		k1, k2 = k2, k1
	}
	nbr1 := rel.S.Neighborhood(f1, k1, c).Clone() // survives the second query below
	if nbr1.Len() == 0 {
		return nil
	}
	nbr2 := rel.S.NeighborhoodClippedSq(f2, k2, nbr1.FarthestDistSqTo(f2), c)
	return nbr1.Intersect(nbr2)
}
