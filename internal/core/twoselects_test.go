package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testutil"
)

var tsBounds = geom.NewRect(0, 0, 1000, 1000)

// TestTwoSelectsEquivalence checks Section 5: the 2-kNN-select algorithm
// returns exactly the conceptual plan's intersection, for k1 < k2, k1 > k2
// (the swap path) and k1 = k2, on every index kind and layout.
func TestTwoSelectsEquivalence(t *testing.T) {
	layouts := map[string][]geom.Point{
		"uniform":   testutil.UniformPoints(800, tsBounds, 1101),
		"clustered": testutil.ClusteredPoints(800, 6, 25, tsBounds, 1102),
		"tiny":      testutil.UniformPoints(15, tsBounds, 1103),
	}
	rng := rand.New(rand.NewSource(1104))
	for name, pts := range layouts {
		for _, kind := range testutil.AllIndexKinds {
			rel := testutil.BuildRelation(t, kind, pts)
			for _, ks := range []struct{ k1, k2 int }{
				{10, 10}, {10, 100}, {100, 10}, {1, 500}, {5, 5}, {3, len(pts) + 10},
			} {
				for trial := 0; trial < 4; trial++ {
					f1 := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
					f2 := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}

					want := core.TwoSelectsConceptual(rel, f1, ks.k1, f2, ks.k2, nil)
					core.SortPoints(want)
					got := core.TwoSelects(rel, f1, ks.k1, f2, ks.k2, nil)
					core.SortPoints(got)
					if !pointsEqual(got, want) {
						t.Fatalf("%s/%s k1=%d k2=%d f1=%v f2=%v: 2-kNN-select differs (%d vs %d points)",
							name, kind, ks.k1, ks.k2, f1, f2, len(got), len(want))
					}
					p5 := core.TwoSelectsProcedure5(rel, f1, ks.k1, f2, ks.k2, nil)
					core.SortPoints(p5)
					if !pointsEqual(p5, want) {
						t.Fatalf("%s/%s k1=%d k2=%d f1=%v f2=%v: Procedure-5 variant differs (%d vs %d points)",
							name, kind, ks.k1, ks.k2, f1, f2, len(p5), len(want))
					}
				}
			}
		}
	}
}

// TestTwoSelectsNearbyFocals exercises the interesting regime of Figure 26:
// focal points close together, so the answer is usually non-empty.
func TestTwoSelectsNearbyFocals(t *testing.T) {
	pts := testutil.UniformPoints(1000, tsBounds, 1111)
	rel := testutil.BuildRelation(t, testutil.Grid, pts)
	f1 := geom.Point{X: 500, Y: 500}
	f2 := geom.Point{X: 520, Y: 480}

	sawNonEmpty := false
	for _, k2 := range []int{10, 20, 40, 80, 160, 320, 640} {
		want := core.TwoSelectsConceptual(rel, f1, 10, f2, k2, nil)
		core.SortPoints(want)
		got := core.TwoSelects(rel, f1, 10, f2, k2, nil)
		core.SortPoints(got)
		if !pointsEqual(got, want) {
			t.Fatalf("k2=%d: mismatch (%d vs %d points)", k2, len(got), len(want))
		}
		if len(got) > 0 {
			sawNonEmpty = true
		}
		if len(got) > 10 {
			t.Fatalf("k2=%d: answer larger than min(k1,k2)=10: %d", k2, len(got))
		}
	}
	if !sawNonEmpty {
		t.Fatalf("every sweep step returned empty; layout is miscalibrated")
	}
}

// TestTwoSelectsClipping checks the mechanism, not just the answer: with a
// large k2 the clipped plan must scan fewer blocks than the conceptual plan.
func TestTwoSelectsClipping(t *testing.T) {
	pts := testutil.UniformPoints(4000, tsBounds, 1121)
	rel := testutil.BuildRelation(t, testutil.Grid, pts)
	f1 := geom.Point{X: 500, Y: 500}
	f2 := geom.Point{X: 510, Y: 510}
	k1, k2 := 5, 2000

	var conc, eff stats.Counters
	core.TwoSelectsConceptual(rel, f1, k1, f2, k2, &conc)
	core.TwoSelects(rel, f1, k1, f2, k2, &eff)

	if eff.PointsCompared >= conc.PointsCompared {
		t.Errorf("2-kNN-select compared %d points, conceptual %d; clipping had no effect",
			eff.PointsCompared, conc.PointsCompared)
	}
}

func TestTwoSelectsDegenerate(t *testing.T) {
	rel := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(30, tsBounds, 1131))
	f1 := geom.Point{X: 1, Y: 1}
	f2 := geom.Point{X: 999, Y: 999}

	if got := core.TwoSelects(rel, f1, 0, f2, 10, nil); len(got) != 0 {
		t.Errorf("k1=0 must give empty result, got %d", len(got))
	}
	if got := core.TwoSelects(rel, f1, 10, f2, -1, nil); len(got) != 0 {
		t.Errorf("negative k2 must give empty result, got %d", len(got))
	}

	// Identical focal points: the answer is exactly the smaller select.
	got := core.TwoSelects(rel, f1, 7, f1, 20, nil)
	core.SortPoints(got)
	want := core.KNNSelect(rel, f1, 7, nil)
	core.SortPoints(want)
	if !pointsEqual(got, want) {
		t.Errorf("same focal point: got %d points, want the k=7 select (%d points)", len(got), len(want))
	}
}

// TestKNNSelectBasics pins down the single-predicate building block.
func TestKNNSelectBasics(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 10, Y: 0}}
	rel := testutil.BuildRelation(t, testutil.Grid, pts)
	got := core.KNNSelect(rel, geom.Point{X: 0, Y: 0}, 3, nil)
	want := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	if !pointsEqual(got, want) {
		t.Fatalf("KNNSelect = %v, want %v", got, want)
	}
}

// TestKNNJoinBasics pins down the join building block on a crafted layout.
func TestKNNJoinBasics(t *testing.T) {
	outerPts := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}
	innerPts := []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 99, Y: 0}, {X: 98, Y: 0}}
	outer := testutil.BuildRelation(t, testutil.Grid, outerPts)
	inner := testutil.BuildRelation(t, testutil.Grid, innerPts)

	got := core.KNNJoin(outer, inner, 2, nil)
	core.SortPairs(got)
	want := []core.Pair{
		{Left: geom.Point{X: 0, Y: 0}, Right: geom.Point{X: 1, Y: 0}},
		{Left: geom.Point{X: 0, Y: 0}, Right: geom.Point{X: 2, Y: 0}},
		{Left: geom.Point{X: 100, Y: 0}, Right: geom.Point{X: 98, Y: 0}},
		{Left: geom.Point{X: 100, Y: 0}, Right: geom.Point{X: 99, Y: 0}},
	}
	core.SortPairs(want)
	if !pairsEqual(got, want) {
		t.Fatalf("KNNJoin = %v, want %v", got, want)
	}

	if got := core.KNNJoin(outer, inner, 0, nil); len(got) != 0 {
		t.Errorf("k=0 join must be empty")
	}
}
