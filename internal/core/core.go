// Package core implements the query-processing algorithms of the paper
// "Spatial Queries with Two kNN Predicates" (Aly, Aref, Ouzzani; VLDB 2012):
//
//   - Section 3: kNN-select on the inner relation of a kNN-join — the
//     conceptually correct plan, the Counting algorithm (Procedure 1) and
//     the Block-Marking algorithm (Procedures 2–3), plus the valid
//     select-on-outer pushdown;
//   - Section 4.1: two unchained kNN-joins — the conceptually correct
//     intersection plan and the candidate/safe Block-Marking plan
//     (Procedure 4), with the join-order heuristic of Section 4.1.2;
//   - Section 4.2: two chained kNN-joins — the three equivalent QEPs
//     (right-deep, join-intersection, nested join) and the neighborhood
//     cache;
//   - Section 5: two kNN-selects — the conceptually correct plan and the
//     2-kNN-select algorithm (Procedure 5);
//   - the paper's footnote-1 extension: a spatial range selection on the
//     inner relation of a kNN-join, optimized with the same machinery.
//
// Deliberately *incorrect* plans from the paper's counter-examples (pushing
// a kNN-select below the inner relation, evaluating one of two unchained
// joins "first", chaining two kNN-selects) are implemented too, under
// Invalid*/Sequential* names: the semantics tests reproduce the paper's
// Figures 1–2, 8–9 and 14–15 by showing these plans change query answers.
//
// All functions are deterministic: neighborhoods use the repository-wide
// (distance, X, Y) tie order, and result slices come out in a canonical
// order after Sort*, so different plans for one query can be compared for
// exact equality.
//
// Beyond the paper, the package provides the concurrency layer for serving
// many queries over one shared index: a per-relation SearcherPool of
// query-local handles (pool.go), and *Parallel variants of the join
// algorithms that fan tuple batches out across pooled handles with
// per-worker arena buffers (parallel.go). Every parallel variant returns
// results byte-identical to its sequential counterpart, order included.
package core

import (
	"sort"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/locality"
)

// Relation is a point set prepared for querying: its spatial index plus a
// reusable neighborhood searcher over that index.
//
// A Relation is immutable after construction but its Searcher holds scratch
// buffers, so one Relation value must not be probed by two goroutines at
// the same time. Concurrent serving goes through the relation's
// SearcherPool instead: Acquire borrows a query-local view (same index,
// private searcher) and Release returns it — see pool.go.
type Relation struct {
	// Ix is the block partition of the relation's points.
	Ix index.Index

	// S computes neighborhoods over Ix.
	S *locality.Searcher

	// store is the relation-wide columnar point store Ix permuted its input
	// into (block-contiguous spans, stable IDs); nil when the index keeps no
	// unified store (the dynamic grid).
	store *geom.PointStore

	// pool recycles per-goroutine query handles over Ix; nil on hand-built
	// views (handles themselves point back at their pool for Release).
	pool *SearcherPool

	// leased marks a handle as currently out of its pool (set by Acquire,
	// cleared by Release's compare-and-swap); long-lived views like Clones
	// are never leased, which is what makes Release safe to call on
	// anything.
	leased atomic.Bool
}

// NewRelation wraps an index into a Relation with an unbounded searcher
// pool: handles are minted on demand and recycled through a sync.Pool.
func NewRelation(ix index.Index) *Relation {
	r := &Relation{Ix: ix, S: locality.NewSearcher(ix), store: index.StoreOf(ix)}
	r.pool = newSearcherPool(r, 0)
	return r
}

// NewRelationBounded is NewRelation with a hard cap on concurrent searcher
// state: at most maxSearchers query handles exist at any moment, and
// Acquire blocks (TryAcquire errors) while all are in use. The cap makes
// the memory cost of concurrency explicit — each handle owns iterator
// pools, a selection heap and a result buffer, so total scratch memory is
// proportional to maxSearchers, not to the number of in-flight queries.
func NewRelationBounded(ix index.Index, maxSearchers int) *Relation {
	r := &Relation{Ix: ix, S: locality.NewSearcher(ix), store: index.StoreOf(ix)}
	r.pool = newSearcherPool(r, maxSearchers)
	return r
}

// Len returns the relation's cardinality.
func (r *Relation) Len() int { return r.Ix.Len() }

// Checkpoint polls the searcher's cancellation binding (see
// locality.Searcher.Checkpoint): a no-op on unbound handles, a
// fault.Cancel panic once the bound context is done. The join drivers call
// it once per claimed tuple group, so even groups whose emission never
// probes the searcher (pruned or gated blocks) observe cancellation at
// block granularity.
func (r *Relation) Checkpoint() { r.S.Checkpoint() }

// ForEachPoint calls fn for every point of the relation, in block-ID then
// storage order (a deterministic full scan). The scan walks the flat X/Y
// columns of each block's span, so no Point structs are loaded from memory.
func (r *Relation) ForEachPoint(fn func(p geom.Point)) {
	for _, b := range r.Ix.Blocks() {
		xs, ys := b.XYs()
		for i := range xs {
			fn(geom.Point{X: xs[i], Y: ys[i]})
		}
	}
}

// Points returns all points of the relation in scan order. It allocates;
// algorithms iterate with ForEachPoint instead.
func (r *Relation) Points() []geom.Point {
	out := make([]geom.Point, 0, r.Len())
	for _, b := range r.Ix.Blocks() {
		out = b.AppendPoints(out)
	}
	return out
}

// Store returns the relation-wide columnar point store (position i is the
// i-th point in scan order; IDs[i] its stable identity), or nil when the
// index keeps no unified store.
func (r *Relation) Store() *geom.PointStore { return r.store }

// Pair is one result row of a kNN-join: Right is among the k nearest
// neighbors of Left in the inner relation.
type Pair struct {
	Left, Right geom.Point
}

// Triple is one result row of a two-join query over relations A, B, C.
type Triple struct {
	A, B, C geom.Point
}

// SortPairs orders pairs canonically (Left, then Right) in place so result
// sets from different plans compare with reflect.DeepEqual.
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Left != ps[j].Left {
			return ps[i].Left.Less(ps[j].Left)
		}
		return ps[i].Right.Less(ps[j].Right)
	})
}

// SortTriples orders triples canonically (A, B, C) in place.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].A != ts[j].A {
			return ts[i].A.Less(ts[j].A)
		}
		if ts[i].B != ts[j].B {
			return ts[i].B.Less(ts[j].B)
		}
		return ts[i].C.Less(ts[j].C)
	})
}

// SortPoints orders points canonically in place.
func SortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}
