package core

import (
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/stats"
)

// This file implements Section 4.1 of the paper: two *unchained* kNN-joins
//
//	(A ⋈kNN B) ∩_B (C ⋈kNN B)
//
// — triplets (a, b, c) where b is among the kA-B nearest neighbors of a AND
// among the kC-B nearest neighbors of c. Evaluating either join "first" and
// feeding its output into the other is wrong (Figures 8–9); the correct
// conceptual plan evaluates both joins independently and intersects their
// pair sets on the shared B component (Figure 10). The Block-Marking plan
// (Procedure 4) prunes blocks of the second join's outer relation using
// Candidate/Safe marks on B's blocks.

// JoinOrder selects which of the two unchained joins is evaluated first.
type JoinOrder int

const (
	// OrderAuto picks the join whose outer relation has the smaller cluster
	// coverage (Section 4.1.2: start with the more clustered relation).
	OrderAuto JoinOrder = iota

	// OrderABFirst evaluates (A ⋈ B) first and prunes blocks of C.
	OrderABFirst

	// OrderCBFirst evaluates (C ⋈ B) first and prunes blocks of A.
	OrderCBFirst
)

// String implements fmt.Stringer.
func (o JoinOrder) String() string {
	switch o {
	case OrderABFirst:
		return "ab-first"
	case OrderCBFirst:
		return "cb-first"
	default:
		return "auto"
	}
}

// UnchainedConceptual is the conceptually correct QEP of Figure 10: both
// joins run in full and their outputs are intersected on B.
func UnchainedConceptual(a, b, cRel *Relation, kAB, kCB int, c *stats.Counters) []Triple {
	abPairs := KNNJoin(a, b, kAB, c)
	cbPairs := KNNJoin(cRel, b, kCB, c)
	return IntersectOnB(abPairs, cbPairs)
}

// IntersectOnB matches (a, b) pairs with (c, b) pairs sharing the same b —
// the gather step of every unchained-joins plan, including the sharded
// scatter/gather driver (one implementation so tie/multiplicity semantics
// cannot diverge). Pair order within the inputs does not affect the result
// multiset.
func IntersectOnB(abPairs, cbPairs []Pair) []Triple {
	cByB := make(map[geom.Point][]geom.Point)
	for _, pr := range cbPairs {
		cByB[pr.Right] = append(cByB[pr.Right], pr.Left)
	}
	var out []Triple
	for _, pr := range abPairs {
		for _, cpt := range cByB[pr.Right] {
			out = append(out, Triple{A: pr.Left, B: pr.Right, C: cpt})
		}
	}
	return out
}

// SequentialUnchained evaluates the WRONG plans of Figures 8 and 9: one join
// runs first and its B-projection replaces the inner relation of the other
// join. abFirst selects which join runs first. Implemented only for the
// semantics tests that reproduce the paper's counter-example.
func SequentialUnchained(a, b, cRel *Relation, kAB, kCB int, abFirst bool,
	build func(pts []geom.Point) (*Relation, error), c *stats.Counters) ([]Triple, error) {

	if abFirst {
		abPairs := KNNJoin(a, b, kAB, c)
		reduced, err := build(projectB(abPairs))
		if err != nil {
			return nil, err
		}
		cbPairs := KNNJoin(cRel, reduced, kCB, c)
		return IntersectOnB(abPairs, cbPairs), nil
	}
	cbPairs := KNNJoin(cRel, b, kCB, c)
	reduced, err := build(projectB(cbPairs))
	if err != nil {
		return nil, err
	}
	abPairs := KNNJoin(a, reduced, kAB, c)
	return IntersectOnB(abPairs, cbPairs), nil
}

// projectB returns the distinct Right (B) components of pairs, in canonical
// point order: sort-and-compact on a plain slice instead of a hash set. The
// output feeds a relation constructor, for which point order is immaterial.
func projectB(pairs []Pair) []geom.Point {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]geom.Point, len(pairs))
	for i, pr := range pairs {
		out[i] = pr.Right
	}
	SortPoints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// UnchainedBlockMarking is the optimized plan of Procedure 4. The first join
// runs in full; blocks of B that received at least one join result are
// marked Candidate (all others are Safe). The outer relation of the second
// join is then preprocessed: a block is Non-Contributing when no Candidate
// block of B lies within (r + diagonal) of its center, where r is the
// distance from the center to its kSecond-th neighbor in B. Points of
// Non-Contributing blocks never reach a Candidate b and are skipped.
//
// order chooses the first join; OrderAuto applies the Section 4.1.2
// heuristic (start with the relation of smaller cluster coverage).
func UnchainedBlockMarking(a, b, cRel *Relation, kAB, kCB int, order JoinOrder, c *stats.Counters) []Triple {
	order = resolveJoinOrder(order, a, cRel)
	if order == OrderABFirst {
		abPairs := KNNJoin(a, b, kAB, c)
		cbPairs := prunedSecondJoin(cRel, b, kCB, abPairs, c)
		return IntersectOnB(abPairs, cbPairs)
	}
	cbPairs := KNNJoin(cRel, b, kCB, c)
	abPairs := prunedSecondJoin(a, b, kAB, cbPairs, c)
	return IntersectOnB(abPairs, cbPairs)
}

// resolveJoinOrder applies the Section 4.1.2 heuristic when the caller
// left the order automatic: start with the join whose outer relation has
// the smaller cluster coverage. Sequential and parallel plans share this
// resolution so they always pick the same first join.
func resolveJoinOrder(order JoinOrder, a, cRel *Relation) JoinOrder {
	if order != OrderAuto {
		return order
	}
	if EstimateClusterCoverage(a) <= EstimateClusterCoverage(cRel) {
		return OrderABFirst
	}
	return OrderCBFirst
}

// UnchainedConceptualParallel is UnchainedConceptual with both full joins
// fanned out across workers.
func UnchainedConceptualParallel(a, b, cRel *Relation, kAB, kCB, workers int, c *stats.Counters) []Triple {
	abPairs := KNNJoinParallel(a, b, kAB, workers, c)
	cbPairs := KNNJoinParallel(cRel, b, kCB, workers, c)
	return IntersectOnB(abPairs, cbPairs)
}

// UnchainedBlockMarkingParallel is the Procedure 4 plan with both the first
// (full) join and the pruned second join fanned out across workers; the
// per-block Contributing test runs on each worker's own handle. Results are
// identical — including order — to UnchainedBlockMarking.
func UnchainedBlockMarkingParallel(a, b, cRel *Relation, kAB, kCB int, order JoinOrder, workers int, c *stats.Counters) []Triple {
	order = resolveJoinOrder(order, a, cRel)
	if order == OrderABFirst {
		abPairs := KNNJoinParallel(a, b, kAB, workers, c)
		cbPairs := prunedSecondJoinParallel(cRel, b, kCB, abPairs, workers, c)
		return IntersectOnB(abPairs, cbPairs)
	}
	cbPairs := KNNJoinParallel(cRel, b, kCB, workers, c)
	abPairs := prunedSecondJoinParallel(a, b, kAB, cbPairs, workers, c)
	return IntersectOnB(abPairs, cbPairs)
}

// prunedSecondJoinParallel fans the pruned second join out across workers:
// the Contributing gate runs once per block on the claiming worker, and
// points of Contributing blocks join as usual.
func prunedSecondJoinParallel(second, b *Relation, k int, firstPairs []Pair, workers int, c *stats.Counters) []Pair {
	candidates := candidateBlocks(b, firstPairs)
	blocks := second.Ix.Blocks()
	gate := func(h *Relation, gi int, ctr *stats.Counters) bool {
		blk := blocks[gi]
		if blk.Count() == 0 {
			return false
		}
		if !blockContributes(blk, h, k, candidates, ctr) {
			ctr.AddBlocksPruned(1)
			return false
		}
		return true
	}
	return parallelEmit(&pairArenas, pointGroups(blocks), b, workers, c, gate, knnPairEmitter(k))
}

// prunedSecondJoin evaluates (second ⋈kNN b) restricted to points in
// Contributing blocks, given the pairs produced by the first join.
func prunedSecondJoin(second, b *Relation, k int, firstPairs []Pair, c *stats.Counters) []Pair {
	candidates := candidateBlocks(b, firstPairs)
	var out []Pair
	for _, blk := range second.Ix.Blocks() {
		if blk.Count() == 0 {
			continue
		}
		if !blockContributes(blk, b, k, candidates, c) {
			c.AddBlocksPruned(1)
			continue
		}
		xs, ys := blk.XYs()
		for i := range xs {
			p := geom.Point{X: xs[i], Y: ys[i]}
			nbr := b.S.Neighborhood(p, k, c)
			for _, q := range nbr.Points {
				out = append(out, Pair{Left: p, Right: q})
			}
		}
	}
	return out
}

// candidateBlocks returns the blocks of b's index holding at least one
// Right component of the first join's results (the paper's Candidate
// blocks; every other block of B is Safe).
func candidateBlocks(b *Relation, firstPairs []Pair) []*index.Block {
	marked := make([]bool, len(b.Ix.Blocks()))
	var out []*index.Block
	for _, pr := range firstPairs {
		blk := b.Ix.Locate(pr.Right)
		if blk != nil && !marked[blk.ID] {
			marked[blk.ID] = true
			out = append(out, blk)
		}
	}
	return out
}

// blockContributes applies the Procedure 4 test to one block of the second
// join's outer relation: the block contributes if any Candidate block of B
// is fully or partially within the search threshold r + diagonal of the
// block's center.
func blockContributes(blk *index.Block, b *Relation, k int, candidates []*index.Block, c *stats.Counters) bool {
	center := blk.Center()
	nbr := b.S.Neighborhood(center, k, c)
	if nbr.Len() < k {
		// Fewer than k points in B: the pruning bound does not apply.
		return true
	}
	thr := nbr.FarthestDist() + blk.Diagonal()
	thrSq := thr * thr
	for _, cand := range candidates {
		if cand.Bounds.MinDistSq(center) <= thrSq {
			return true
		}
	}
	return false
}

// EstimateClusterCoverage estimates what fraction of the indexed region a
// relation's points actually occupy: the total area of non-empty blocks over
// the area of the bounds. Uniform data approaches 1; tightly clustered data
// approaches the clusters' relative area. The Section 4.1.2 join-order
// heuristic starts with the relation of smaller coverage.
func EstimateClusterCoverage(rel *Relation) float64 {
	total := rel.Ix.Bounds().Area()
	if total <= 0 {
		return 1
	}
	occupied := 0.0
	for _, blk := range rel.Ix.Blocks() {
		if blk.Count() > 0 {
			occupied += blk.Bounds.Area()
		}
	}
	frac := occupied / total
	if frac > 1 {
		frac = 1 // R-tree leaf areas can overlap bounds slightly
	}
	return frac
}
