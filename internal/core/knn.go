package core

import (
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/stats"
)

// KNNSelect evaluates σ_{k,f}(E): the k points of rel closest to the focal
// point f. Fewer than k points are returned only when the relation holds
// fewer than k points.
func KNNSelect(rel *Relation, f geom.Point, k int, c *stats.Counters) []geom.Point {
	nbr := rel.S.Neighborhood(f, k, c)
	out := make([]geom.Point, len(nbr.Points))
	copy(out, nbr.Points)
	return out
}

// maxJoinPrealloc caps the up-front capacity reserved for a join's result
// slice. The exact result size of a kNN-join is outer.Len()·min(k, |inner|),
// but reserving it eagerly means one huge allocation for large outer
// relations before the first pair is produced; past the cap, append grows
// the slice geometrically as results actually materialize.
const maxJoinPrealloc = 1 << 16

// joinResultCap returns the initial capacity for a join result expected to
// hold `exact` pairs.
func joinResultCap(exact int) int {
	if exact > maxJoinPrealloc {
		return maxJoinPrealloc
	}
	return exact
}

// KNNJoin evaluates outer ⋈kNN inner: all pairs (e1, e2) with e1 from the
// outer relation and e2 among the k nearest neighbors of e1 in the inner
// relation. This is the paper's basic join building block; every point of
// the outer relation incurs one neighborhood computation.
func KNNJoin(outer, inner *Relation, k int, c *stats.Counters) []Pair {
	if k <= 0 {
		return nil
	}
	out := make([]Pair, 0, joinResultCap(outer.Len()*min(k, inner.Len())))
	// Same scan order as outer.ForEachPoint, unrolled one level so the join
	// loop itself checkpoints cancellation once per outer block span.
	for _, b := range outer.Ix.Blocks() {
		inner.Checkpoint()
		xs, ys := b.XYs()
		for i := range xs {
			e1 := geom.Point{X: xs[i], Y: ys[i]}
			nbr := inner.S.Neighborhood(e1, k, c)
			for _, e2 := range nbr.Points {
				out = append(out, Pair{Left: e1, Right: e2})
			}
		}
	}
	return out
}

// sortedPointSet returns the points of nbr as a canonically sorted slice for
// binary-search membership tests. It replaces the per-query
// map[geom.Point]struct{} intersection sets: neighborhoods are small (kσ
// points), so a sorted slice probes faster than a hash map and the copy
// doubles as the retained snapshot of a reusable searcher result.
func sortedPointSet(nbr *locality.Neighborhood) []geom.Point {
	out := make([]geom.Point, len(nbr.Points))
	copy(out, nbr.Points)
	SortPoints(out)
	return out
}

// ContainsPoint reports whether p is in the canonically sorted (SortPoints
// order) set. It is the one membership test every intersection step — core
// and the sharded gather alike — goes through, so canonical-order changes
// cannot diverge between them.
func ContainsPoint(set []geom.Point, p geom.Point) bool {
	lo, hi := 0, len(set)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if set[mid].Less(p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(set) && set[lo] == p
}

// intersectPairs keeps the join pairs whose Right component belongs to sel
// (a canonically sorted point set).
func intersectPairs(pairs []Pair, sel []geom.Point) []Pair {
	out := pairs[:0:0] // fresh slice, same capacity hint not needed
	for _, pr := range pairs {
		if ContainsPoint(sel, pr.Right) {
			out = append(out, pr)
		}
	}
	return out
}

// emitIntersection appends a pair (e1, i) for every point i present in both
// the neighborhood and the sorted set, preserving nbrE1's order.
func emitIntersection(dst []Pair, e1 geom.Point, nbrE1 *locality.Neighborhood, sel []geom.Point) []Pair {
	for _, i := range nbrE1.Points {
		if ContainsPoint(sel, i) {
			dst = append(dst, Pair{Left: e1, Right: i})
		}
	}
	return dst
}
