package core

import (
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/stats"
)

// KNNSelect evaluates σ_{k,f}(E): the k points of rel closest to the focal
// point f. Fewer than k points are returned only when the relation holds
// fewer than k points.
func KNNSelect(rel *Relation, f geom.Point, k int, c *stats.Counters) []geom.Point {
	nbr := rel.S.Neighborhood(f, k, c)
	out := make([]geom.Point, len(nbr.Points))
	copy(out, nbr.Points)
	return out
}

// KNNJoin evaluates outer ⋈kNN inner: all pairs (e1, e2) with e1 from the
// outer relation and e2 among the k nearest neighbors of e1 in the inner
// relation. This is the paper's basic join building block; every point of
// the outer relation incurs one neighborhood computation.
func KNNJoin(outer, inner *Relation, k int, c *stats.Counters) []Pair {
	if k <= 0 {
		return nil
	}
	out := make([]Pair, 0, outer.Len()*min(k, inner.Len()))
	outer.ForEachPoint(func(e1 geom.Point) {
		nbr := inner.S.Neighborhood(e1, k, c)
		for _, e2 := range nbr.Points {
			out = append(out, Pair{Left: e1, Right: e2})
		}
	})
	return out
}

// intersectPairs keeps the join pairs whose Right component belongs to sel.
func intersectPairs(pairs []Pair, sel map[geom.Point]struct{}) []Pair {
	out := pairs[:0:0] // fresh slice, same capacity hint not needed
	for _, pr := range pairs {
		if _, ok := sel[pr.Right]; ok {
			out = append(out, pr)
		}
	}
	return out
}

// emitIntersection appends a pair (e1, i) for every point i present in both
// neighborhoods, preserving nbrE1's order.
func emitIntersection(dst []Pair, e1 geom.Point, nbrE1 *locality.Neighborhood, selSet map[geom.Point]struct{}) []Pair {
	for _, i := range nbrE1.Points {
		if _, ok := selSet[i]; ok {
			dst = append(dst, Pair{Left: e1, Right: i})
		}
	}
	return dst
}
