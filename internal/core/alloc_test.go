package core_test

// Allocation-regression tests for the join hot path: KNNJoin performs one
// neighborhood computation per outer point, and after the zero-allocation
// Searcher rework the only remaining allocations are the result slice's
// geometric growth — a small constant per join, not O(|outer|).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/testutil"
)

func TestKNNJoinAllocsBounded(t *testing.T) {
	const k = 8
	bounds := geom.NewRect(0, 0, 1000, 1000)
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(2000, bounds, 51))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(2000, bounds, 52))

	core.KNNJoin(outer, inner, k, nil) // warm the searcher scratch
	avg := testing.AllocsPerRun(5, func() {
		core.KNNJoin(outer, inner, k, nil)
	})
	// 2000 outer points produce 16000 pairs; the result slice needs a
	// handful of allocations to grow there. Anything near the outer
	// cardinality means a per-tuple allocation crept back in.
	if avg > 10 {
		t.Errorf("KNNJoin allocates %v per join over 2000 outer points, want ≤ 10 (no per-tuple allocations)", avg)
	}
}

func TestKNNJoinParallelMatchesSequentialAllocsAreBounded(t *testing.T) {
	const k = 5
	bounds := geom.NewRect(0, 0, 1000, 1000)
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(1500, bounds, 53))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(1500, bounds, 54))

	seq := core.KNNJoin(outer, inner, k, nil)
	par := core.KNNJoinParallel(outer, inner, k, 4, nil)
	if len(seq) != len(par) {
		t.Fatalf("parallel join cardinality %d != sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("parallel join diverges from sequential at row %d: %v != %v", i, par[i], seq[i])
		}
	}
}
