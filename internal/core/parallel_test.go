package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// TestKNNJoinParallelMatchesSequential checks the parallel join returns the
// exact sequential result (same pairs, same order) for various worker
// counts and index kinds. Run with -race to validate the synchronization.
func TestKNNJoinParallelMatchesSequential(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	for _, kind := range testutil.AllIndexKinds {
		outer := testutil.BuildRelation(t, kind, testutil.UniformPoints(500, bounds, 1301))
		inner := testutil.BuildRelation(t, kind, testutil.UniformPoints(700, bounds, 1302))

		want := core.KNNJoin(outer, inner, 4, nil)
		for _, workers := range []int{0, 1, 2, 4, 16, 1000} {
			got := core.KNNJoinParallel(outer, inner, 4, workers, nil)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d pairs, want %d", kind, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: pair %d = %v, want %v (order must match sequential)",
						kind, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestKNNJoinParallelCounters(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(300, bounds, 1311))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(300, bounds, 1312))

	var seq, par stats.Counters
	core.KNNJoin(outer, inner, 3, &seq)
	core.KNNJoinParallel(outer, inner, 3, 4, &par)

	if par.Neighborhoods != seq.Neighborhoods {
		t.Errorf("parallel neighborhoods = %d, sequential = %d", par.Neighborhoods, seq.Neighborhoods)
	}
	if par.PointsCompared != seq.PointsCompared {
		t.Errorf("parallel points = %d, sequential = %d", par.PointsCompared, seq.PointsCompared)
	}
}

func TestKNNJoinParallelDegenerate(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(5, bounds, 1321))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(5, bounds, 1322))

	if got := core.KNNJoinParallel(outer, inner, 0, 4, nil); len(got) != 0 {
		t.Errorf("k=0 must return no pairs")
	}
	got := core.KNNJoinParallel(outer, inner, 10, 4, nil)
	if len(got) != 25 {
		t.Errorf("oversized k: %d pairs, want 25", len(got))
	}
}
