package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// TestKNNJoinParallelMatchesSequential checks the parallel join returns the
// exact sequential result (same pairs, same order) for various worker
// counts and index kinds. Run with -race to validate the synchronization.
func TestKNNJoinParallelMatchesSequential(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	for _, kind := range testutil.AllIndexKinds {
		outer := testutil.BuildRelation(t, kind, testutil.UniformPoints(500, bounds, 1301))
		inner := testutil.BuildRelation(t, kind, testutil.UniformPoints(700, bounds, 1302))

		want := core.KNNJoin(outer, inner, 4, nil)
		for _, workers := range []int{0, 1, 2, 4, 16, 1000} {
			got := core.KNNJoinParallel(outer, inner, 4, workers, nil)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d pairs, want %d", kind, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: pair %d = %v, want %v (order must match sequential)",
						kind, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestKNNJoinParallelCounters(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(300, bounds, 1311))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(300, bounds, 1312))

	var seq, par stats.Counters
	core.KNNJoin(outer, inner, 3, &seq)
	core.KNNJoinParallel(outer, inner, 3, 4, &par)

	if par.Neighborhoods != seq.Neighborhoods {
		t.Errorf("parallel neighborhoods = %d, sequential = %d", par.Neighborhoods, seq.Neighborhoods)
	}
	if par.PointsCompared != seq.PointsCompared {
		t.Errorf("parallel points = %d, sequential = %d", par.PointsCompared, seq.PointsCompared)
	}
}

// TestParallelVariantsMatchSequential checks that every *Parallel algorithm
// returns the exact sequential result — same rows, same order — across
// worker counts. Run with -race to validate the synchronization.
func TestParallelVariantsMatchSequential(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	a := testutil.BuildRelation(t, testutil.Grid, testutil.ClusteredPoints(500, 5, 40, bounds, 1401))
	b := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(600, bounds, 1402))
	cRel := testutil.BuildRelation(t, testutil.Grid, testutil.ClusteredPoints(400, 4, 50, bounds, 1403))
	f := geom.Point{X: 400, Y: 600}
	rng := geom.NewRect(300, 300, 700, 700)
	const kJoin, kSel = 4, 12

	cases := []struct {
		name string
		seq  func() any
		par  func(workers int) any
	}{
		{"SelectInnerJoinConceptual",
			func() any { return core.SelectInnerJoinConceptual(a, b, f, kJoin, kSel, nil) },
			func(w int) any { return core.SelectInnerJoinConceptualParallel(a, b, f, kJoin, kSel, w, nil) }},
		{"SelectInnerJoinCounting",
			func() any { return core.SelectInnerJoinCounting(a, b, f, kJoin, kSel, nil) },
			func(w int) any { return core.SelectInnerJoinCountingParallel(a, b, f, kJoin, kSel, w, nil) }},
		{"SelectInnerJoinBlockMarking",
			func() any {
				return core.SelectInnerJoinBlockMarking(a, b, f, kJoin, kSel, core.BlockMarkingOptions{}, nil)
			},
			func(w int) any {
				return core.SelectInnerJoinBlockMarkingParallel(a, b, f, kJoin, kSel, core.BlockMarkingOptions{}, w, nil)
			}},
		{"SelectOuterJoin",
			func() any { return core.SelectOuterJoin(a, b, f, kSel, kJoin, nil) },
			func(w int) any { return core.SelectOuterJoinParallel(a, b, f, kSel, kJoin, w, nil) }},
		{"RangeInnerJoinConceptual",
			func() any { return core.RangeInnerJoinConceptual(a, b, rng, kJoin, nil) },
			func(w int) any { return core.RangeInnerJoinConceptualParallel(a, b, rng, kJoin, w, nil) }},
		{"RangeInnerJoinCounting",
			func() any { return core.RangeInnerJoinCounting(a, b, rng, kJoin, nil) },
			func(w int) any { return core.RangeInnerJoinCountingParallel(a, b, rng, kJoin, w, nil) }},
		{"RangeInnerJoinBlockMarking",
			func() any { return core.RangeInnerJoinBlockMarking(a, b, rng, kJoin, core.BlockMarkingOptions{}, nil) },
			func(w int) any {
				return core.RangeInnerJoinBlockMarkingParallel(a, b, rng, kJoin, core.BlockMarkingOptions{}, w, nil)
			}},
		{"UnchainedConceptual",
			func() any { return core.UnchainedConceptual(a, b, cRel, kJoin, kJoin, nil) },
			func(w int) any { return core.UnchainedConceptualParallel(a, b, cRel, kJoin, kJoin, w, nil) }},
		{"UnchainedBlockMarking",
			func() any { return core.UnchainedBlockMarking(a, b, cRel, kJoin, kJoin, core.OrderAuto, nil) },
			func(w int) any {
				return core.UnchainedBlockMarkingParallel(a, b, cRel, kJoin, kJoin, core.OrderAuto, w, nil)
			}},
	}
	for _, qep := range []core.ChainedQEP{core.ChainedRightDeep, core.ChainedJoinIntersection,
		core.ChainedNestedJoin, core.ChainedNestedJoinCached} {
		qep := qep
		cases = append(cases, struct {
			name string
			seq  func() any
			par  func(workers int) any
		}{"ChainedJoins/" + qep.String(),
			func() any { return core.ChainedJoins(a, b, cRel, kJoin, kJoin, qep, nil) },
			func(w int) any { return core.ChainedJoinsParallel(a, b, cRel, kJoin, kJoin, qep, w, nil) }})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.seq()
			for _, workers := range []int{2, 4, 16} {
				if got := tc.par(workers); !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: parallel result diverges from sequential", workers)
				}
			}
		})
	}
}

func TestKNNJoinParallelDegenerate(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(5, bounds, 1321))
	inner := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(5, bounds, 1322))

	if got := core.KNNJoinParallel(outer, inner, 0, 4, nil); len(got) != 0 {
		t.Errorf("k=0 must return no pairs")
	}
	got := core.KNNJoinParallel(outer, inner, 10, 4, nil)
	if len(got) != 25 {
		t.Errorf("oversized k: %d pairs, want 25", len(got))
	}
}
