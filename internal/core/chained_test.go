package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testutil"
)

var chBounds = geom.NewRect(0, 0, 1000, 1000)

// TestChainedQEPsEquivalent checks the Figure 13 equivalence: the right-deep
// plan, the join-intersection plan, and the nested-join plan (with and
// without cache) all produce the same triples.
func TestChainedQEPsEquivalent(t *testing.T) {
	layouts := map[string]struct{ a, b, c []geom.Point }{
		"uniform": {
			a: testutil.UniformPoints(100, chBounds, 1001),
			b: testutil.UniformPoints(200, chBounds, 1002),
			c: testutil.UniformPoints(150, chBounds, 1003),
		},
		"b-clustered": {
			a: testutil.UniformPoints(100, chBounds, 1004),
			b: testutil.ClusteredPoints(200, 5, 20, chBounds, 1005),
			c: testutil.UniformPoints(150, chBounds, 1006),
		},
	}
	qeps := []core.ChainedQEP{
		core.ChainedRightDeep,
		core.ChainedJoinIntersection,
		core.ChainedNestedJoin,
		core.ChainedNestedJoinCached,
		core.ChainedAuto,
	}
	for name, layout := range layouts {
		for _, kind := range testutil.AllIndexKinds {
			a := testutil.BuildRelation(t, kind, layout.a)
			b := testutil.BuildRelation(t, kind, layout.b)
			c := testutil.BuildRelation(t, kind, layout.c)
			for _, ks := range []struct{ kAB, kBC int }{{1, 1}, {2, 2}, {3, 5}} {
				var want []core.Triple
				for i, qep := range qeps {
					got := core.ChainedJoins(a, b, c, ks.kAB, ks.kBC, qep, nil)
					core.SortTriples(got)
					if i == 0 {
						want = got
						continue
					}
					if !triplesEqual(got, want) {
						t.Fatalf("%s/%s kAB=%d kBC=%d: %v differs from %v (%d vs %d triples)",
							name, kind, ks.kAB, ks.kBC, qep, qeps[0], len(got), len(want))
					}
				}
			}
		}
	}
}

// TestChainedAgainstFirstPrinciples validates the chained semantics from
// scratch: (a, b, c) qualifies iff b ∈ kNN_B(a) and c ∈ kNN_C(b).
func TestChainedAgainstFirstPrinciples(t *testing.T) {
	aPts := testutil.UniformPoints(40, chBounds, 1011)
	bPts := testutil.UniformPoints(60, chBounds, 1012)
	cPts := testutil.UniformPoints(50, chBounds, 1013)
	a := testutil.BuildRelation(t, testutil.Grid, aPts)
	b := testutil.BuildRelation(t, testutil.Grid, bPts)
	c := testutil.BuildRelation(t, testutil.Grid, cPts)
	kAB, kBC := 3, 4

	got := core.ChainedJoins(a, b, c, kAB, kBC, core.ChainedAuto, nil)
	core.SortTriples(got)

	var want []core.Triple
	for _, ap := range aPts {
		for _, bp := range bruteKNN(bPts, ap, kAB) {
			for _, cp := range bruteKNN(cPts, bp, kBC) {
				want = append(want, core.Triple{A: ap, B: bp, C: cp})
			}
		}
	}
	core.SortTriples(want)

	if !triplesEqual(got, want) {
		t.Fatalf("chained result disagrees with first principles: %d vs %d triples", len(got), len(want))
	}
}

// TestChainedCacheCounters checks that the cache actually absorbs repeated
// b-neighborhood computations: with kAB > 1 over clustered data, some b is
// selected by several a's, so hits must be non-zero, and misses must equal
// the number of distinct b values joined.
func TestChainedCacheCounters(t *testing.T) {
	a := testutil.BuildRelation(t, testutil.Grid, testutil.ClusteredPoints(150, 3, 10, chBounds, 1021))
	b := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(100, chBounds, 1022))
	c := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(100, chBounds, 1023))

	var ctr stats.Counters
	got := core.ChainedJoins(a, b, c, 3, 2, core.ChainedNestedJoinCached, &ctr)

	if ctr.CacheHits == 0 {
		t.Errorf("expected cache hits on clustered outer data; counters: %v", &ctr)
	}
	distinctB := make(map[geom.Point]struct{})
	for _, tr := range got {
		distinctB[tr.B] = struct{}{}
	}
	if ctr.CacheMisses != int64(len(distinctB)) {
		t.Errorf("cache misses = %d, want one per distinct joined b = %d", ctr.CacheMisses, len(distinctB))
	}

	// Uncached nested join must recompute: neighborhoods strictly exceed
	// the cached run's.
	var unctr stats.Counters
	core.ChainedJoins(a, b, c, 3, 2, core.ChainedNestedJoin, &unctr)
	if unctr.Neighborhoods <= ctr.Neighborhoods {
		t.Errorf("uncached neighborhoods (%d) should exceed cached (%d)", unctr.Neighborhoods, ctr.Neighborhoods)
	}
}

// TestChainedNestedSkipsUnselectedB checks QEP3's core advantage: b values
// outside every a-neighborhood never incur a C-neighborhood computation.
func TestChainedNestedSkipsUnselectedB(t *testing.T) {
	// a's and half of b's in one corner; the other half of b's far away,
	// never selected.
	aPts := testutil.ClusteredPoints(50, 1, 5, geom.NewRect(0, 0, 50, 50), 1031)
	bNear := testutil.ClusteredPoints(50, 1, 5, geom.NewRect(0, 0, 50, 50), 1032)
	bFar := testutil.ClusteredPoints(50, 1, 5, geom.NewRect(900, 900, 950, 950), 1033)
	bPts := append(append([]geom.Point{}, bNear...), bFar...)
	cPts := testutil.UniformPoints(100, chBounds, 1034)

	a := testutil.BuildRelation(t, testutil.Grid, aPts)
	b := testutil.BuildRelation(t, testutil.Grid, bPts)
	c := testutil.BuildRelation(t, testutil.Grid, cPts)

	var nested, rightDeep stats.Counters
	core.ChainedJoins(a, b, c, 2, 2, core.ChainedNestedJoinCached, &nested)
	core.ChainedJoins(a, b, c, 2, 2, core.ChainedRightDeep, &rightDeep)

	// The right-deep plan materializes a C-neighborhood for every b (100);
	// the nested plan touches only selected b's (≤ 50).
	if nested.Neighborhoods >= rightDeep.Neighborhoods {
		t.Errorf("nested plan computed %d neighborhoods, right-deep %d; nested must be fewer",
			nested.Neighborhoods, rightDeep.Neighborhoods)
	}
}

func TestChainedDegenerate(t *testing.T) {
	a := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(10, chBounds, 1041))
	b := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(10, chBounds, 1042))
	c := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(10, chBounds, 1043))

	for _, qep := range []core.ChainedQEP{core.ChainedRightDeep, core.ChainedJoinIntersection, core.ChainedNestedJoinCached} {
		if got := core.ChainedJoins(a, b, c, 0, 3, qep, nil); len(got) != 0 {
			t.Errorf("%v: kAB=0 must give empty result", qep)
		}
		if got := core.ChainedJoins(a, b, c, 3, 0, qep, nil); len(got) != 0 {
			t.Errorf("%v: kBC=0 must give empty result", qep)
		}
	}

	// Oversized k: full cross product through both joins.
	got := core.ChainedJoins(a, b, c, 100, 100, core.ChainedAuto, nil)
	if len(got) != 10*10*10 {
		t.Errorf("oversized k: got %d triples, want 1000", len(got))
	}
}

func TestChainedRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1051))
	for trial := 0; trial < 5; trial++ {
		a := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(20+rng.Intn(60), chBounds, rng.Int63()))
		b := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(30+rng.Intn(80), chBounds, rng.Int63()))
		c := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(20+rng.Intn(60), chBounds, rng.Int63()))
		kAB, kBC := 1+rng.Intn(4), 1+rng.Intn(4)

		want := core.ChainedJoins(a, b, c, kAB, kBC, core.ChainedRightDeep, nil)
		core.SortTriples(want)
		got := core.ChainedJoins(a, b, c, kAB, kBC, core.ChainedNestedJoinCached, nil)
		core.SortTriples(got)
		if !triplesEqual(got, want) {
			t.Fatalf("trial %d: nested-cached differs from right-deep (%d vs %d)", trial, len(got), len(want))
		}
	}
}

func TestQEPStringers(t *testing.T) {
	for _, q := range []core.ChainedQEP{core.ChainedAuto, core.ChainedRightDeep,
		core.ChainedJoinIntersection, core.ChainedNestedJoin, core.ChainedNestedJoinCached} {
		if q.String() == "" {
			t.Errorf("ChainedQEP %d has empty String()", q)
		}
	}
	for _, o := range []core.JoinOrder{core.OrderAuto, core.OrderABFirst, core.OrderCBFirst} {
		if o.String() == "" {
			t.Errorf("JoinOrder %d has empty String()", o)
		}
	}
}

// TestChainedQEPsAgreeWithDuplicates pins the bag-semantics consistency of
// the chained QEPs when B holds duplicate coordinates (as snapshots of
// dwelling vehicles do): every plan must produce the same triple multiset.
// Regression test for the join-intersection plan accumulating one
// neighborhood list per duplicate instance instead of per distinct value.
func TestChainedQEPsAgreeWithDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(1061))
	dup := func(n int) []geom.Point {
		base := testutil.UniformPoints(n/2, chBounds, rng.Int63())
		out := append([]geom.Point{}, base...)
		for _, p := range base {
			out = append(out, p) // exact duplicate of every point
		}
		return out
	}
	a := testutil.BuildRelation(t, testutil.Grid, dup(60))
	b := testutil.BuildRelation(t, testutil.Grid, dup(80))
	c := testutil.BuildRelation(t, testutil.Grid, dup(70))

	want := core.ChainedJoins(a, b, c, 3, 3, core.ChainedRightDeep, nil)
	core.SortTriples(want)
	for _, qep := range []core.ChainedQEP{core.ChainedJoinIntersection, core.ChainedNestedJoin, core.ChainedNestedJoinCached} {
		got := core.ChainedJoins(a, b, c, 3, 3, qep, nil)
		core.SortTriples(got)
		if !triplesEqual(got, want) {
			t.Fatalf("%v differs from right-deep under duplicates: %d vs %d triples", qep, len(got), len(want))
		}
	}
}
