package core_test

// Tests for the SearcherPool concurrency layer: bounded-pool capacity
// semantics (TryAcquire errors, Acquire blocks, handles released after a
// failed attempt stay reusable), handle correctness, deadlock-free ordered
// multi-acquisition, graceful fan-out degradation under an exhausted
// bounded pool, and the zero-allocation steady state of pooled queries.

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/testutil"
)

func boundedRelation(t *testing.T, n int, seed int64, bound int) *core.Relation {
	t.Helper()
	pts := testutil.UniformPoints(n, geom.NewRect(0, 0, 1000, 1000), seed)
	return core.NewRelationBounded(testutil.BuildIndex(t, testutil.Grid, pts), bound)
}

func TestBoundedPoolTryAcquireExhaustionAndReuse(t *testing.T) {
	rel := boundedRelation(t, 400, 2001, 2)
	if got := rel.Pool().Bound(); got != 2 {
		t.Fatalf("Bound() = %d, want 2", got)
	}

	h1, err := rel.TryAcquire()
	if err != nil {
		t.Fatalf("first TryAcquire: %v", err)
	}
	h2, err := rel.TryAcquire()
	if err != nil {
		t.Fatalf("second TryAcquire: %v", err)
	}
	if _, err := rel.TryAcquire(); !errors.Is(err, core.ErrSearchersExhausted) {
		t.Fatalf("third TryAcquire over bound 2: err = %v, want ErrSearchersExhausted", err)
	}

	// A handle released after the failed attempt must be reusable and
	// return correct results.
	want := core.KNNSelect(rel, geom.Point{X: 500, Y: 500}, 5, nil)
	h1.Release()
	h3, err := rel.TryAcquire()
	if err != nil {
		t.Fatalf("TryAcquire after Release: %v", err)
	}
	got := core.KNNSelect(h3, geom.Point{X: 500, Y: 500}, 5, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reused handle answer diverges: %v != %v", got, want)
	}
	h3.Release()
	h2.Release()
}

// TestStrayReleaseDoesNotCorruptBoundedPool: releasing a Clone (which
// holds no capacity token) or double-releasing a handle must not inflate a
// bounded pool past its bound or block.
func TestStrayReleaseDoesNotCorruptBoundedPool(t *testing.T) {
	rel := boundedRelation(t, 100, 2011, 1)

	// Clone release with all tokens home: must not block or add capacity.
	rel.Clone().Release()

	h, err := rel.TryAcquire()
	if err != nil {
		t.Fatalf("TryAcquire after clone release: %v", err)
	}
	// Clone release with a token outstanding: must not refill the pool.
	rel.Clone().Release()
	if _, err := rel.TryAcquire(); !errors.Is(err, core.ErrSearchersExhausted) {
		t.Fatalf("clone release inflated the bound: err = %v, want ErrSearchersExhausted", err)
	}

	// Double release: the second call is a no-op, so the bound stays 1.
	h.Release()
	h.Release()
	h2, err := rel.TryAcquire()
	if err != nil {
		t.Fatalf("TryAcquire after double release: %v", err)
	}
	if _, err := rel.TryAcquire(); !errors.Is(err, core.ErrSearchersExhausted) {
		t.Fatalf("double release inflated the bound: err = %v, want ErrSearchersExhausted", err)
	}
	h2.Release()
}

func TestBoundedPoolAcquireBlocksUntilRelease(t *testing.T) {
	rel := boundedRelation(t, 100, 2002, 1)

	h := rel.Acquire()
	acquired := make(chan *core.Relation)
	go func() { acquired <- rel.Acquire() }()

	select {
	case <-acquired:
		t.Fatal("Acquire returned while the bounded pool was exhausted")
	case <-time.After(20 * time.Millisecond):
	}

	h.Release()
	select {
	case h2 := <-acquired:
		h2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not unblock after Release")
	}
}

func TestAcquirePairDedup(t *testing.T) {
	// Bound 1 per relation: a query probing the same relation on both
	// sides would deadlock unless duplicate arguments share one handle.
	r := boundedRelation(t, 200, 2003, 1)
	ho, hi := core.AcquirePair(r, r)
	if ho != hi {
		t.Fatal("AcquirePair over one relation must share one handle")
	}
	core.ReleasePair(ho, hi)
	// The handle must have been released exactly once: the next acquire
	// must succeed immediately.
	if _, err := r.TryAcquire(); err != nil {
		t.Fatalf("pool not restored after ReleasePair: %v", err)
	}
}

func TestAcquirePairDistinctRelations(t *testing.T) {
	a := boundedRelation(t, 100, 2005, 1)
	b := boundedRelation(t, 100, 2006, 1)
	ha, hb := core.AcquirePair(a, b)
	if ha == hb {
		t.Fatal("distinct relations must get distinct handles")
	}
	if ha.Ix != a.Ix || hb.Ix != b.Ix {
		t.Fatal("handles must be returned positionally")
	}
	core.ReleasePair(ha, hb)
}

// TestParallelJoinDegradesOnExhaustedBoundedPool runs the fan-out join
// against an inner relation whose bounded pool cannot supply extra worker
// handles: the crew degrades to the workers it can equip and the result
// still matches the sequential join exactly.
func TestParallelJoinDegradesOnExhaustedBoundedPool(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	outer := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(400, bounds, 2008))
	inner := boundedRelation(t, 400, 2009, 1)

	want := core.KNNJoin(outer, inner, 4, nil)

	// Hold the only handle so every extra worker's TryAcquire fails.
	h, err := inner.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	got := core.KNNJoinParallel(outer, inner, 4, 8, nil)
	h.Release()

	if !reflect.DeepEqual(got, want) {
		t.Fatal("degraded parallel join diverges from sequential")
	}
}

// TestPooledQuerySteadyStateAllocs proves the pooling machinery itself is
// allocation-free: once the pool is warm, an acquire → neighborhood →
// release cycle performs zero allocations.
func TestPooledQuerySteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector sync.Pool instrumentation allocates on Get/Put")
	}
	pts := testutil.UniformPoints(5000, geom.NewRect(0, 0, 1000, 1000), 2010)
	rel := core.NewRelation(testutil.BuildIndex(t, testutil.Grid, pts))
	f := geom.Point{X: 500, Y: 500}

	// Warm the pool and the handle's scratch buffers.
	h := rel.Acquire()
	h.S.Neighborhood(f, 10, nil)
	h.Release()

	avg := testing.AllocsPerRun(200, func() {
		h := rel.Acquire()
		h.S.Neighborhood(f, 10, nil)
		h.Release()
	})
	if avg != 0 {
		t.Errorf("pooled query allocates %v per run in steady state, want 0", avg)
	}
}
