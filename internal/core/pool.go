package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// This file implements the concurrency layer that makes one Relation —
// hence one shared spatial index — servable to many goroutines at once.
//
// The query algorithms are written against a Relation whose Searcher owns
// mutable scratch (iterator pools, the selection heap, a single reusable
// Neighborhood buffer), so a Relation value must never be probed by two
// goroutines at the same time. Instead of locking the searcher (which would
// serialize every neighborhood computation), each top-level query borrows a
// *handle* — a query-local Relation view over the same immutable index with
// a private Searcher — from the relation's SearcherPool, and returns it when
// the query finishes. Handles are recycled through a sync.Pool, so a query
// in steady state allocates nothing for its searcher machinery.
//
// The bounded variant trades the sync.Pool's elasticity for a hard memory
// ceiling: at most maxHandles searcher states ever exist, and Acquire blocks
// (TryAcquire errors) while all of them are out. This makes the space cost
// of concurrency explicit — the tradeoff framing of Esmailpour, Hu & Sintos
// ("Space-Time Tradeoffs for Spatial Conjunctive Queries", 2025).

// ErrSearchersExhausted is returned by TryAcquire on a bounded pool whose
// handles are all in use.
var ErrSearchersExhausted = errors.New("core: bounded searcher pool exhausted")

// poolIDs numbers pools in construction order; multi-relation queries
// acquire handles in ascending pool-ID order so that two queries over the
// same relations can never deadlock on bounded pools.
var poolIDs atomic.Uint64

// SearcherPool hands out per-goroutine query handles over one shared root
// Relation. A handle is itself a *Relation (same index, private searcher),
// so the core algorithms run on it unchanged.
type SearcherPool struct {
	id      uint64
	root    *Relation
	handles sync.Pool     // recycled *Relation views
	tokens  chan struct{} // capacity permits; nil for unbounded pools

	// outstanding counts handles currently out of the pool — the leak
	// detector the cancellation and chaos tests assert returns to zero
	// after every aborted query.
	outstanding atomic.Int64
}

// newSearcherPool builds the pool for root. maxHandles <= 0 means unbounded
// (sync.Pool only); maxHandles > 0 caps the number of simultaneously
// outstanding handles — and therefore the number of searcher scratch states
// that can ever exist at once.
func newSearcherPool(root *Relation, maxHandles int) *SearcherPool {
	p := &SearcherPool{id: poolIDs.Add(1), root: root}
	p.handles.New = func() any { return p.newHandle() }
	if maxHandles > 0 {
		p.tokens = make(chan struct{}, maxHandles)
		for i := 0; i < maxHandles; i++ {
			p.tokens <- struct{}{}
		}
	}
	return p
}

// newHandle mints a fresh view: same index and store, private searcher,
// same pool.
func (p *SearcherPool) newHandle() *Relation {
	return &Relation{Ix: p.root.Ix, S: p.root.S.Clone(), store: p.root.store, pool: p}
}

// Bound returns the maximum number of outstanding handles, or 0 for an
// unbounded pool.
func (p *SearcherPool) Bound() int {
	if p.tokens == nil {
		return 0
	}
	return cap(p.tokens)
}

// Acquire returns a query handle, blocking while a bounded pool is
// exhausted. The handle must be returned with Release exactly once.
func (p *SearcherPool) Acquire() *Relation {
	if p.tokens != nil {
		<-p.tokens
	}
	return p.lease()
}

// AcquireCtx is the deadline-aware bounded acquire: on a bounded pool whose
// handles are all out it waits — parked on the token channel, not spinning —
// until a handle frees up or ctx expires, whichever comes first. On expiry
// the error wraps both ErrSearchersExhausted (the pool was the bottleneck)
// and ctx's error (why waiting stopped), so callers can errors.Is either
// cause. A nil ctx is Acquire; a ctx that is already done fails fast without
// consuming a token.
//
// The returned handle is bound to ctx: every query it runs checkpoints
// against ctx per block span. Release detaches the binding before the handle
// is recycled. TryAcquire remains the shed-load fast path — it never waits;
// AcquireCtx is the admission-control path that waits exactly as long as the
// caller's deadline allows.
func (p *SearcherPool) AcquireCtx(ctx context.Context) (*Relation, error) {
	if ctx == nil {
		return p.Acquire(), nil
	}
	if fault.Armed() {
		fault.OnPoolAcquire()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.tokens != nil {
		select {
		case <-p.tokens:
		default:
			select {
			case <-p.tokens:
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %w", ErrSearchersExhausted, ctx.Err())
			}
		}
	}
	h := p.lease()
	h.S.Bind(ctx)
	return h, nil
}

// TryAcquire is Acquire without blocking: on a bounded pool whose handles
// are all out it returns ErrSearchersExhausted immediately.
func (p *SearcherPool) TryAcquire() (*Relation, error) {
	if p.tokens != nil {
		select {
		case <-p.tokens:
		default:
			return nil, ErrSearchersExhausted
		}
	}
	return p.lease(), nil
}

// lease checks a recycled (or fresh) handle out of the pool; the caller has
// already obtained a token where the pool is bounded.
func (p *SearcherPool) lease() *Relation {
	h := p.handles.Get().(*Relation)
	h.leased.Store(true)
	p.outstanding.Add(1)
	return h
}

// Outstanding returns the number of handles currently out of the pool. It
// is a point-in-time snapshot meant for introspection (leak assertions,
// load metrics); a concurrent Acquire or Release may change it immediately.
func (p *SearcherPool) Outstanding() int {
	return int(p.outstanding.Load())
}

// release returns a handle to the pool. The handle's scratch buffers are
// kept warm for the next Acquire; its previous query results (the reusable
// Neighborhood) are dead the moment it is back in the pool.
func (p *SearcherPool) release(h *Relation) {
	p.outstanding.Add(-1)
	p.handles.Put(h)
	if p.tokens != nil {
		p.tokens <- struct{}{}
	}
}

// Pool returns the relation's searcher pool. Handles share the root's pool,
// so Pool can be called on a root relation or on a handle alike.
func (r *Relation) Pool() *SearcherPool { return r.pool }

// Acquire borrows a query handle for this relation: a Relation view over
// the same index with a private searcher, safe to use from the calling
// goroutine until Release. On a relation without a pool (a hand-built
// literal) it returns a fresh unpooled view.
func (r *Relation) Acquire() *Relation {
	if r.pool == nil {
		return &Relation{Ix: r.Ix, S: r.S.Clone(), store: r.store}
	}
	return r.pool.Acquire()
}

// AcquireCtx is Acquire with a deadline: the wait for a bounded pool's
// handle ends when ctx expires (see SearcherPool.AcquireCtx), and the
// returned handle checkpoints every query against ctx at block granularity.
// A nil ctx is Acquire.
func (r *Relation) AcquireCtx(ctx context.Context) (*Relation, error) {
	if r.pool == nil {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		h := &Relation{Ix: r.Ix, S: r.S.Clone(), store: r.store}
		h.S.Bind(ctx)
		return h, nil
	}
	return r.pool.AcquireCtx(ctx)
}

// TryAcquire is Acquire without blocking; it fails only on an exhausted
// bounded pool.
func (r *Relation) TryAcquire() (*Relation, error) {
	if r.pool == nil {
		return &Relation{Ix: r.Ix, S: r.S.Clone(), store: r.store}, nil
	}
	return r.pool.TryAcquire()
}

// Release returns a handle obtained from Acquire/TryAcquire to its pool;
// the handle must not be used afterwards. Release no-ops (via an atomic
// compare-and-swap on the lease flag) on anything not currently leased —
// an unpooled view, a Clone, or an already-released handle — so a stray
// Release cannot inflate a bounded pool's capacity or double-insert a
// handle into the free list. The one misuse it cannot detect is releasing
// a handle that was already released AND re-acquired by another goroutine:
// that is a use-after-free of the handle, on the caller, like any other
// use of a released handle.
func (h *Relation) Release() {
	if h.pool == nil || !h.leased.CompareAndSwap(true, false) {
		return
	}
	// Detach any cancellation binding while the handle is still exclusively
	// ours (before Put makes it visible to the next borrower): a stale
	// context must never cancel a later query.
	h.S.Bind(nil)
	h.pool.release(h)
}

// Clone returns an independent long-lived view over the same immutable
// index with a private searcher, sharing the root's pool. The private
// searcher matters to callers that probe S directly (the core-level usage
// pattern); callers going through Acquire/Release borrow pooled handles
// either way.
func (r *Relation) Clone() *Relation {
	return &Relation{Ix: r.Ix, S: r.S.Clone(), store: r.store, pool: r.pool}
}

// poolID orders relations for deadlock-free multi-acquisition; relations
// without a pool sort first (their acquisition can never block).
func (r *Relation) poolID() uint64 {
	if r.pool == nil {
		return 0
	}
	return r.pool.id
}

// AcquirePair borrows handles for a query that probes the searchers of two
// relations (SelectOuterJoin probes outer and inner; ChainedJoins probes B
// and C). Duplicate relation arguments share one handle (the algorithms
// tolerate a shared searcher across argument positions), and acquisition
// happens in global pool order so concurrent multi-relation queries cannot
// deadlock on bounded pools. Release the results with ReleasePair.
//
// Relations that are only *scanned* — iterated block by block, searcher
// untouched, like the outer of a kNN-join — need no handle at all: their
// index is immutable, so callers pass them as-is and spend no pool permit.
func AcquirePair(a, b *Relation) (ha, hb *Relation) {
	// Dedup by pool, not pointer: two distinct views over one pool (e.g. a
	// relation and its Clone) draw on the same bounded capacity, and
	// acquiring twice from a pool bounded at one handle would self-deadlock.
	if a == b || (a.pool != nil && a.pool == b.pool) {
		ha = a.Acquire()
		return ha, ha
	}
	if a.poolID() <= b.poolID() {
		return a.Acquire(), b.Acquire()
	}
	hb = b.Acquire()
	return a.Acquire(), hb
}

// AcquirePairCtx is AcquirePair with a deadline: both acquisitions go
// through AcquireCtx in the same global pool order, and when the second one
// times out the first handle is released before the error returns — a
// failed pair acquisition never strands capacity. A nil ctx is AcquirePair.
func AcquirePairCtx(ctx context.Context, a, b *Relation) (ha, hb *Relation, err error) {
	if a == b || (a.pool != nil && a.pool == b.pool) {
		ha, err = a.AcquireCtx(ctx)
		if err != nil {
			return nil, nil, err
		}
		return ha, ha, nil
	}
	first, second := a, b
	if a.poolID() > b.poolID() {
		first, second = b, a
	}
	hFirst, err := first.AcquireCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	hSecond, err := second.AcquireCtx(ctx)
	if err != nil {
		hFirst.Release()
		return nil, nil, err
	}
	if first == a {
		return hFirst, hSecond, nil
	}
	return hSecond, hFirst, nil
}

// ReleasePair releases the handles of AcquirePair, releasing a shared
// handle once.
func ReleasePair(ha, hb *Relation) {
	ha.Release()
	if hb != ha {
		hb.Release()
	}
}
