package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testutil"
)

var unBounds = geom.NewRect(0, 0, 1000, 1000)

// TestUnchainedEquivalence checks Section 4.1: Block-Marking — in every join
// order — returns exactly the triples of the conceptually correct
// independent-evaluation plan.
func TestUnchainedEquivalence(t *testing.T) {
	layouts := map[string]struct{ a, b, c []geom.Point }{
		"uniform": {
			a: testutil.UniformPoints(150, unBounds, 901),
			b: testutil.UniformPoints(300, unBounds, 902),
			c: testutil.UniformPoints(150, unBounds, 903),
		},
		"a-clustered": {
			a: testutil.ClusteredPoints(150, 2, 15, unBounds, 904),
			b: testutil.UniformPoints(300, unBounds, 905),
			c: testutil.UniformPoints(150, unBounds, 906),
		},
		"both-clustered": {
			a: testutil.ClusteredPoints(150, 4, 15, unBounds, 907),
			b: testutil.UniformPoints(300, unBounds, 908),
			c: testutil.ClusteredPoints(150, 2, 15, unBounds, 909),
		},
	}
	orders := []core.JoinOrder{core.OrderAuto, core.OrderABFirst, core.OrderCBFirst}
	for name, layout := range layouts {
		for _, kind := range testutil.AllIndexKinds {
			a := testutil.BuildRelation(t, kind, layout.a)
			b := testutil.BuildRelation(t, kind, layout.b)
			c := testutil.BuildRelation(t, kind, layout.c)
			for _, ks := range []struct{ kAB, kCB int }{{1, 1}, {3, 3}, {2, 7}} {
				want := core.UnchainedConceptual(a, b, c, ks.kAB, ks.kCB, nil)
				core.SortTriples(want)
				for _, order := range orders {
					got := core.UnchainedBlockMarking(a, b, c, ks.kAB, ks.kCB, order, nil)
					core.SortTriples(got)
					if !triplesEqual(got, want) {
						t.Fatalf("%s/%s kAB=%d kCB=%d order=%v: Block-Marking differs from conceptual (%d vs %d triples)",
							name, kind, ks.kAB, ks.kCB, order, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestUnchainedOrderIndependence checks the Figure 10 property: because the
// two joins are evaluated independently, the conceptual plan gives the same
// result regardless of which join is computed first. (The conceptual
// evaluator has no order knob; we emulate order by swapping arguments and
// remapping the triple fields, which must be a bijection on results.)
func TestUnchainedOrderIndependence(t *testing.T) {
	a := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(80, unBounds, 911))
	b := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(120, unBounds, 912))
	c := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(80, unBounds, 913))
	kAB, kCB := 3, 4

	fwd := core.UnchainedConceptual(a, b, c, kAB, kCB, nil)
	core.SortTriples(fwd)

	// Swap the roles of A and C (and the k values accordingly): the result
	// triples must be the same up to the A<->C field swap.
	rev := core.UnchainedConceptual(c, b, a, kCB, kAB, nil)
	for i := range rev {
		rev[i].A, rev[i].C = rev[i].C, rev[i].A
	}
	core.SortTriples(rev)

	if !triplesEqual(fwd, rev) {
		t.Fatalf("conceptual unchained plan is order-dependent: %d vs %d triples", len(fwd), len(rev))
	}
}

// TestUnchainedPruningSoundness verifies the pruning rule directly: every
// point of a pruned (Non-Contributing) block of the second join's outer
// relation must be absent from the conceptual answer's C column.
func TestUnchainedPruningSoundness(t *testing.T) {
	// A tightly clustered in a corner; C spread widely, so many C blocks
	// are far from every Candidate block.
	aPts := testutil.ClusteredPoints(200, 1, 10, geom.NewRect(0, 0, 80, 80), 921)
	bPts := testutil.UniformPoints(400, unBounds, 922)
	cPts := testutil.UniformPoints(300, unBounds, 923)

	a := testutil.BuildRelation(t, testutil.Grid, aPts)
	b := testutil.BuildRelation(t, testutil.Grid, bPts)
	c := testutil.BuildRelation(t, testutil.Grid, cPts)
	kAB, kCB := 3, 3

	var ctr stats.Counters
	got := core.UnchainedBlockMarking(a, b, c, kAB, kCB, core.OrderABFirst, &ctr)
	core.SortTriples(got)
	want := core.UnchainedConceptual(a, b, c, kAB, kCB, nil)
	core.SortTriples(want)

	if !triplesEqual(got, want) {
		t.Fatalf("Block-Marking differs from conceptual (%d vs %d)", len(got), len(want))
	}
	if ctr.BlocksPruned == 0 {
		t.Errorf("expected pruned blocks on this layout; counters: %v", &ctr)
	}
}

// TestJoinOrderHeuristic checks the Section 4.1.2 guidance: with a clustered
// A and uniform C, OrderAuto must pick the clustered relation's join first
// (observable through the coverage estimates).
func TestJoinOrderHeuristic(t *testing.T) {
	clustered := testutil.BuildRelation(t, testutil.Grid,
		testutil.ClusteredPoints(400, 1, 10, geom.NewRect(0, 0, 60, 60), 931))
	uniform := testutil.BuildRelation(t, testutil.Grid,
		testutil.UniformPoints(400, unBounds, 932))

	covClustered := core.EstimateClusterCoverage(clustered)
	covUniform := core.EstimateClusterCoverage(uniform)
	if covClustered >= covUniform {
		t.Fatalf("coverage(clustered)=%v must be below coverage(uniform)=%v", covClustered, covUniform)
	}
}

func TestEstimateClusterCoverageBounds(t *testing.T) {
	rel := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(500, unBounds, 941))
	cov := core.EstimateClusterCoverage(rel)
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage = %v, want (0, 1]", cov)
	}
}

// TestUnchainedRandomSweep drives the equivalence across random parameters
// as a lightweight property test.
func TestUnchainedRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(951))
	for trial := 0; trial < 6; trial++ {
		na, nb, nc := 30+rng.Intn(80), 50+rng.Intn(120), 30+rng.Intn(80)
		kAB, kCB := 1+rng.Intn(5), 1+rng.Intn(5)
		a := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(na, unBounds, rng.Int63()))
		b := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(nb, unBounds, rng.Int63()))
		c := testutil.BuildRelation(t, testutil.Grid, testutil.UniformPoints(nc, unBounds, rng.Int63()))

		want := core.UnchainedConceptual(a, b, c, kAB, kCB, nil)
		core.SortTriples(want)
		got := core.UnchainedBlockMarking(a, b, c, kAB, kCB, core.OrderAuto, nil)
		core.SortTriples(got)
		if !triplesEqual(got, want) {
			t.Fatalf("trial %d (na=%d nb=%d nc=%d kAB=%d kCB=%d): mismatch %d vs %d",
				trial, na, nb, nc, kAB, kCB, len(got), len(want))
		}
	}
}
