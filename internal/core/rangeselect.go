package core

import (
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/locality"
	"repro/internal/stats"
)

// This file implements the extension announced in footnote 1 of the paper's
// Section 3: the invalid-pushdown problem — and its Counting/Block-Marking
// remedies — applies equally when the selection on the inner relation of a
// kNN-join is a spatial *range* predicate instead of a kNN-select:
//
//	(E1 ⋈kNN E2) ∩ (E1 × σ_range(E2))
//
// — pairs (e1, e2) with e2 among the k⋈ nearest neighbors of e1 AND inside
// the query rectangle. Pushing the range filter below the inner relation
// shrinks every neighborhood and changes the answer, exactly as with a
// kNN-select. The pruning thresholds simplify: the "selected set" is the
// rectangle itself, so distances to it are MINDIST values and the
// f-neighborhood radius term disappears.

// RangeInnerJoinConceptual evaluates the full kNN-join and filters pairs
// whose Right component lies in the rectangle. Correctness baseline.
func RangeInnerJoinConceptual(outer, inner *Relation, rng geom.Rect, kJoin int, c *stats.Counters) []Pair {
	pairs := KNNJoin(outer, inner, kJoin, c)
	out := pairs[:0:0]
	for _, pr := range pairs {
		if rng.Contains(pr.Right) {
			out = append(out, pr)
		}
	}
	return out
}

// InvalidRangeInnerPushdown pushes the range filter below the inner relation
// of the join — the WRONG plan, implemented for the semantics tests of the
// footnote-1 extension.
func InvalidRangeInnerPushdown(outer, inner *Relation, rng geom.Rect, kJoin int,
	build func(pts []geom.Point) (*Relation, error), c *stats.Counters) ([]Pair, error) {

	var selected []geom.Point
	inner.ForEachPoint(func(p geom.Point) {
		if rng.Contains(p) {
			selected = append(selected, p)
		}
	})
	reduced, err := build(selected)
	if err != nil {
		return nil, err
	}
	return KNNJoin(outer, reduced, kJoin, c), nil
}

// RangeInnerJoinCounting is the Counting algorithm adapted to a range
// selection: the per-point search threshold is MINDIST(e1, rectangle). If
// k⋈ or more inner points lie strictly closer to e1 than the rectangle, the
// neighborhood of e1 cannot reach the rectangle and e1 is skipped.
func RangeInnerJoinCounting(outer, inner *Relation, rng geom.Rect, kJoin int, c *stats.Counters) []Pair {
	if kJoin <= 0 {
		return nil
	}

	var out []Pair
	outer.ForEachPoint(func(e1 geom.Point) {
		count := inner.S.CountStrictlyCloser(e1, kJoin, rng.MinDistSq(e1), c)

		if count >= kJoin {
			c.AddOuterSkipped(1)
			return
		}
		nbrE1 := inner.S.Neighborhood(e1, kJoin, c)
		for _, e2 := range nbrE1.Points {
			if rng.Contains(e2) {
				out = append(out, Pair{Left: e1, Right: e2})
			}
		}
	})
	return out
}

// RangeInnerJoinBlockMarking is the Block-Marking algorithm adapted to a
// range selection: a block of the outer relation is Non-Contributing when
//
//	r + diagonal < MINDIST(center, rectangle),
//
// where r is the distance from the block center to its k⋈-th neighbor in
// the inner relation. (The f-neighborhood radius term of the kNN-select
// variant becomes zero because the selected region is the rectangle itself.)
func RangeInnerJoinBlockMarking(outer, inner *Relation, rng geom.Rect, kJoin int,
	opt BlockMarkingOptions, c *stats.Counters) []Pair {

	if kJoin <= 0 {
		return nil
	}
	var out []Pair
	for _, b := range markContributingBlocksRange(outer, inner, rng, kJoin, opt, c) {
		xs, ys := b.XYs()
		for i := range xs {
			e1 := geom.Point{X: xs[i], Y: ys[i]}
			out = emitRangePairs(out, e1, inner.S.Neighborhood(e1, kJoin, c), rng)
		}
	}
	return out
}

// RangeInnerJoinConceptualParallel is RangeInnerJoinConceptual with the
// full kNN-join fanned out across workers.
func RangeInnerJoinConceptualParallel(outer, inner *Relation, rng geom.Rect, kJoin, workers int, c *stats.Counters) []Pair {
	pairs := KNNJoinParallel(outer, inner, kJoin, workers, c)
	out := pairs[:0:0]
	for _, pr := range pairs {
		if rng.Contains(pr.Right) {
			out = append(out, pr)
		}
	}
	return out
}

// RangeInnerJoinCountingParallel is the range Counting algorithm with the
// per-tuple scans fanned out across workers over the outer relation's
// blocks; results are identical — including order — to the sequential form.
func RangeInnerJoinCountingParallel(outer, inner *Relation, rng geom.Rect, kJoin, workers int, c *stats.Counters) []Pair {
	if kJoin <= 0 {
		return nil
	}
	return parallelEmit(&pairArenas, blockGroups(outer), inner, workers, c, nil,
		func(h *Relation, e1 geom.Point, dst []Pair, ctr *stats.Counters) []Pair {
			if h.S.CountStrictlyCloser(e1, kJoin, rng.MinDistSq(e1), ctr) >= kJoin {
				ctr.AddOuterSkipped(1)
				return dst
			}
			return emitRangePairs(dst, e1, h.S.Neighborhood(e1, kJoin, ctr), rng)
		})
}

// RangeInnerJoinBlockMarkingParallel is the range Block-Marking algorithm
// with the join over Contributing blocks fanned out across workers; the
// contour-scan preprocessing stays sequential, as in the kNN-select case.
func RangeInnerJoinBlockMarkingParallel(outer, inner *Relation, rng geom.Rect, kJoin int,
	opt BlockMarkingOptions, workers int, c *stats.Counters) []Pair {

	if kJoin <= 0 {
		return nil
	}
	contributing := markContributingBlocksRange(outer, inner, rng, kJoin, opt, c)
	return parallelEmit(&pairArenas, pointGroups(contributing), inner, workers, c, nil,
		func(h *Relation, e1 geom.Point, dst []Pair, ctr *stats.Counters) []Pair {
			return emitRangePairs(dst, e1, h.S.Neighborhood(e1, kJoin, ctr), rng)
		})
}

// emitRangePairs appends the pairs (e1, e2) for neighbors e2 inside the
// rectangle.
func emitRangePairs(dst []Pair, e1 geom.Point, nbr *locality.Neighborhood, rng geom.Rect) []Pair {
	for _, e2 := range nbr.Points {
		if rng.Contains(e2) {
			dst = append(dst, Pair{Left: e1, Right: e2})
		}
	}
	return dst
}

// markContributingBlocksRange is the preprocessing phase of the range
// Block-Marking algorithm: a contour scan of the outer blocks in MINDIST
// order from the rectangle center (the range analogue of scanning from f),
// returning the Contributing blocks in scan order.
func markContributingBlocksRange(outer, inner *Relation, rng geom.Rect, kJoin int,
	opt BlockMarkingOptions, c *stats.Counters) []*index.Block {

	exhaustive := opt.Exhaustive || !index.TilesSpace(outer.Ix)
	total := len(outer.Ix.Blocks())
	focal := rng.Center()

	var contributing []*index.Block
	scan := index.MinDistOrder(outer.Ix, focal)
	mSq := -1.0
	scanned := 0
	for {
		b, minSq, ok := scan.Next()
		if !ok {
			break
		}
		if !exhaustive && mSq >= 0 && minSq >= mSq {
			c.AddBlocksPruned(total - scanned)
			break
		}
		scanned++

		center := b.Center()
		nbr := inner.S.Neighborhood(center, kJoin, c)
		r := nbr.FarthestDist()
		nonContributing := nbr.Len() == kJoin && r+b.Diagonal() < rng.MinDist(center)

		if nonContributing {
			c.AddBlocksPruned(1)
			if mSq < 0 {
				mSq = b.Bounds.MaxDistSq(focal)
			}
			continue
		}
		mSq = -1
		if b.Count() > 0 {
			contributing = append(contributing, b)
		}
	}
	c.AddBlocksScanned(scanned)
	return contributing
}
