package core

import (
	"repro/internal/geom"
	"repro/internal/stats"
)

// This file implements Section 4.2 of the paper: two *chained* kNN-joins
// A → B → C,
//
//	(A ⋈kNN B) ∩_B (B ⋈kNN C)
//
// — triplets (a, b, c) where b is among the kA-B nearest neighbors of a and
// c is among the kB-C nearest neighbors of b. Unlike the unchained case, the
// first join acts as a selection on the *outer* relation of the second join,
// which is a valid pushdown, so the three QEPs of Figure 13 are equivalent:
//
//	QEP1 (right-deep):        A ⋈kNN (B ⋈kNN C), materializing B ⋈ C first;
//	QEP2 (join-intersection): both joins in full, intersected on B;
//	QEP3 (nested join):       (A ⋈kNN B) ⋈kNN C, computing c-neighborhoods
//	                          only for b values the first join produced.
//
// QEP3 avoids the redundant work of QEP1/QEP2 on b values no a selects, but
// recomputes the neighborhood of a b selected by several a's; the paper
// fixes that with a hash-table cache keyed by b (Section 4.2, Figure 24).

// ChainedQEP identifies one of the chained-join evaluation plans.
type ChainedQEP int

const (
	// ChainedAuto uses the nested join with caching, the paper's winner.
	ChainedAuto ChainedQEP = iota

	// ChainedRightDeep is QEP1.
	ChainedRightDeep

	// ChainedJoinIntersection is QEP2.
	ChainedJoinIntersection

	// ChainedNestedJoin is QEP3 without the neighborhood cache.
	ChainedNestedJoin

	// ChainedNestedJoinCached is QEP3 with the neighborhood cache.
	ChainedNestedJoinCached
)

// String implements fmt.Stringer.
func (q ChainedQEP) String() string {
	switch q {
	case ChainedRightDeep:
		return "right-deep"
	case ChainedJoinIntersection:
		return "join-intersection"
	case ChainedNestedJoin:
		return "nested-join"
	case ChainedNestedJoinCached:
		return "nested-join-cached"
	default:
		return "auto"
	}
}

// ChainedJoins evaluates the chained query with the chosen QEP. All QEPs
// produce the same triple set (a property the tests enforce).
func ChainedJoins(a, b, cRel *Relation, kAB, kBC int, qep ChainedQEP, c *stats.Counters) []Triple {
	switch qep {
	case ChainedRightDeep:
		return chainedRightDeep(a, b, cRel, kAB, kBC, c)
	case ChainedJoinIntersection:
		return chainedJoinIntersection(a, b, cRel, kAB, kBC, 1, c)
	case ChainedNestedJoin:
		return chainedNestedJoin(a, b, cRel, kAB, kBC, false, c)
	default: // ChainedAuto, ChainedNestedJoinCached
		return chainedNestedJoin(a, b, cRel, kAB, kBC, true, c)
	}
}

// chainedRightDeep is QEP1: materialize the full join (B ⋈kNN C) as a map
// from b to its C-neighborhood, then probe it for every b produced by
// (A ⋈kNN B). No output is produced until the inner join completes, and
// neighborhoods are computed even for b values never selected by any a.
func chainedRightDeep(a, b, cRel *Relation, kAB, kBC int, c *stats.Counters) []Triple {
	bc := make(map[geom.Point][]geom.Point, b.Len())
	b.ForEachPoint(func(bp geom.Point) {
		nbr := cRel.S.Neighborhood(bp, kBC, c)
		pts := make([]geom.Point, len(nbr.Points))
		copy(pts, nbr.Points)
		bc[bp] = pts
	})

	var out []Triple
	a.ForEachPoint(func(ap geom.Point) {
		nbrA := b.S.Neighborhood(ap, kAB, c)
		for _, bp := range nbrA.Points {
			for _, cp := range bc[bp] {
				out = append(out, Triple{A: ap, B: bp, C: cp})
			}
		}
	})
	return out
}

// chainedJoinIntersection is QEP2: both joins run independently and their
// pair sets are intersected on B. workers == 1 is fully sequential; any
// other value fans each join's tuple batches out under KNNJoinParallel's
// worker semantics (the joins themselves still run one after the other).
func chainedJoinIntersection(a, b, cRel *Relation, kAB, kBC, workers int, c *stats.Counters) []Triple {
	var abPairs, bcPairs []Pair
	if workers == 1 {
		abPairs = KNNJoin(a, b, kAB, c)
		bcPairs = KNNJoin(b, cRel, kBC, c)
	} else {
		abPairs = KNNJoinParallel(a, b, kAB, workers, c)
		bcPairs = KNNJoinParallel(b, cRel, kBC, workers, c)
	}
	cByB := groupRightsByLeft(bcPairs, neighborhoodLen(kBC, cRel))
	var out []Triple
	for _, pr := range abPairs {
		for _, cp := range cByB[pr.Right] {
			out = append(out, Triple{A: pr.Left, B: pr.Right, C: cp})
		}
	}
	return out
}

// neighborhoodLen is the exact size of every neighborhood of inner at k:
// min(k, |inner|).
func neighborhoodLen(k int, inner *Relation) int {
	if n := inner.Len(); n < k {
		return n
	}
	return k
}

// groupRightsByLeft groups the Right components of pairs by their Left
// point, capping each list at maxLen. B may hold duplicate coordinates
// (e.g. co-located observations), and each duplicate instance contributes
// an identical neighborhood run to the pair set; every neighborhood has
// exactly maxLen entries, so the cap keeps the first full copy and drops
// repeats, regardless of run interleaving — one list per distinct b value,
// as the probing QEPs expect.
func groupRightsByLeft(pairs []Pair, maxLen int) map[geom.Point][]geom.Point {
	m := make(map[geom.Point][]geom.Point)
	for _, pr := range pairs {
		if lst := m[pr.Left]; len(lst) < maxLen {
			m[pr.Left] = append(lst, pr.Right)
		}
	}
	return m
}

// ChainedJoinsParallel evaluates the chained query with tuple batches
// fanned out across workers holding pooled searcher handles. Every plan
// returns results identical — including order — to its sequential form:
//
//   - right-deep materializes B ⋈ C with the parallel join, then fans the
//     probe phase out over A's blocks;
//   - join-intersection fans each of its two full joins out in turn;
//   - the nested-join plans fan A's blocks out with a *per-worker*
//     neighborhood cache (same answers; the shared sequential cache would
//     serialize the workers, so hit counts are lower in exchange).
func ChainedJoinsParallel(a, b, cRel *Relation, kAB, kBC int, qep ChainedQEP, workers int, c *stats.Counters) []Triple {
	switch qep {
	case ChainedRightDeep:
		return chainedRightDeepParallel(a, b, cRel, kAB, kBC, workers, c)
	case ChainedJoinIntersection:
		return chainedJoinIntersection(a, b, cRel, kAB, kBC, workers, c)
	case ChainedNestedJoin:
		return chainedNestedJoinParallel(a, b, cRel, kAB, kBC, false, workers, c)
	default: // ChainedAuto, ChainedNestedJoinCached
		return chainedNestedJoinParallel(a, b, cRel, kAB, kBC, true, workers, c)
	}
}

// chainedRightDeepParallel is QEP1 with both phases parallel: the inner
// B ⋈ C join through KNNJoinParallel, the probe phase over A's blocks with
// the materialized map shared read-only across workers.
func chainedRightDeepParallel(a, b, cRel *Relation, kAB, kBC, workers int, c *stats.Counters) []Triple {
	bcPairs := KNNJoinParallel(b, cRel, kBC, workers, c)
	bc := groupRightsByLeft(bcPairs, neighborhoodLen(kBC, cRel))
	return parallelEmit(&tripleArenas, blockGroups(a), b, workers, c, nil,
		func(h *Relation, ap geom.Point, dst []Triple, ctr *stats.Counters) []Triple {
			nbrA := h.S.Neighborhood(ap, kAB, ctr)
			for _, bp := range nbrA.Points {
				for _, cp := range bc[bp] {
					dst = append(dst, Triple{A: ap, B: bp, C: cp})
				}
			}
			return dst
		})
}

// chainedNestedJoin is QEP3: for every pair (a, b) of the first join,
// compute (or fetch from the cache) the C-neighborhood of b. Only b values
// that some a actually selects incur neighborhood computations.
func chainedNestedJoin(a, b, cRel *Relation, kAB, kBC int, useCache bool, c *stats.Counters) []Triple {
	var cache map[geom.Point][]geom.Point
	if useCache {
		cache = make(map[geom.Point][]geom.Point)
	}

	neighborhoodOfB := func(bp geom.Point) []geom.Point {
		if useCache {
			if pts, ok := cache[bp]; ok {
				c.AddCacheHit()
				return pts
			}
			c.AddCacheMiss()
		}
		nbr := cRel.S.Neighborhood(bp, kBC, c)
		if !useCache {
			// The caller consumes the result before the next query on this
			// searcher, so the reusable buffer can be returned as-is.
			return nbr.Points
		}
		pts := make([]geom.Point, len(nbr.Points))
		copy(pts, nbr.Points)
		cache[bp] = pts
		return pts
	}

	var out []Triple
	var bps []geom.Point // scratch: nbrA's buffer is clobbered when b and cRel share a searcher
	a.ForEachPoint(func(ap geom.Point) {
		nbrA := b.S.Neighborhood(ap, kAB, c)
		bps = append(bps[:0], nbrA.Points...)
		for _, bp := range bps {
			for _, cp := range neighborhoodOfB(bp) {
				out = append(out, Triple{A: ap, B: bp, C: cp})
			}
		}
	})
	return out
}

// chainedNestedJoinParallel fans QEP3 out over A's blocks through the
// shared parallelRun driver. Each worker holds its own handles on B (from
// the driver) and C (acquired by its worker factory) and, when caching,
// its own neighborhood cache: the shared sequential cache would serialize
// the crew behind a lock, so the parallel plan trades duplicate misses
// across workers for lock-free probing. The emitted triples are identical
// — including order — to the sequential nested join.
func chainedNestedJoinParallel(a, b, cRel *Relation, kAB, kBC int, useCache bool, workers int, c *stats.Counters) []Triple {
	groups := blockGroups(a)
	if normalizeWorkers(workers, len(groups)) <= 1 {
		return chainedNestedJoin(a, b, cRel, kAB, kBC, useCache, c)
	}

	return parallelRun(&tripleArenas, groups, b, workers, c,
		func(hb *Relation, primary bool, ctr *stats.Counters) (worker[Triple], bool) {
			hc := cRel
			var done func()
			switch {
			case cRel == b || cRel.Pool() != nil && cRel.Pool() == b.Pool():
				// B and C are views over one pool (e.g. a self-chain or a
				// Clone): the worker's B handle serves both sides — the
				// emit path copies nbrA out before probing C.
				hc = hb
			case !primary:
				// Extra workers also need a C handle; if C's bounded pool
				// is at capacity the worker stands down. The handle inherits
				// the crew's cancellation binding off the B handle.
				hhc, err := cRel.TryAcquire()
				if err != nil {
					return worker[Triple]{}, false
				}
				hhc.S.Bind(hb.S.Context())
				hc = hhc
				done = hhc.Release
			}

			var cache map[geom.Point][]geom.Point
			if useCache {
				cache = make(map[geom.Point][]geom.Point)
			}
			neighborhoodOfB := func(bp geom.Point) []geom.Point {
				if useCache {
					if pts, ok := cache[bp]; ok {
						ctr.AddCacheHit()
						return pts
					}
					ctr.AddCacheMiss()
				}
				nbr := hc.S.Neighborhood(bp, kBC, ctr)
				if !useCache {
					return nbr.Points
				}
				pts := make([]geom.Point, len(nbr.Points))
				copy(pts, nbr.Points)
				cache[bp] = pts
				return pts
			}

			var bps []geom.Point // scratch: nbrA's buffer is clobbered when hb and hc share a searcher
			return worker[Triple]{
				emit: func(ap geom.Point, dst []Triple) []Triple {
					nbrA := hb.S.Neighborhood(ap, kAB, ctr)
					bps = append(bps[:0], nbrA.Points...)
					for _, bp := range bps {
						for _, cp := range neighborhoodOfB(bp) {
							dst = append(dst, Triple{A: ap, B: bp, C: cp})
						}
					}
					return dst
				},
				done: done,
			}, true
		})
}
