package core

import (
	"repro/internal/geom"
	"repro/internal/stats"
)

// This file implements Section 4.2 of the paper: two *chained* kNN-joins
// A → B → C,
//
//	(A ⋈kNN B) ∩_B (B ⋈kNN C)
//
// — triplets (a, b, c) where b is among the kA-B nearest neighbors of a and
// c is among the kB-C nearest neighbors of b. Unlike the unchained case, the
// first join acts as a selection on the *outer* relation of the second join,
// which is a valid pushdown, so the three QEPs of Figure 13 are equivalent:
//
//	QEP1 (right-deep):        A ⋈kNN (B ⋈kNN C), materializing B ⋈ C first;
//	QEP2 (join-intersection): both joins in full, intersected on B;
//	QEP3 (nested join):       (A ⋈kNN B) ⋈kNN C, computing c-neighborhoods
//	                          only for b values the first join produced.
//
// QEP3 avoids the redundant work of QEP1/QEP2 on b values no a selects, but
// recomputes the neighborhood of a b selected by several a's; the paper
// fixes that with a hash-table cache keyed by b (Section 4.2, Figure 24).

// ChainedQEP identifies one of the chained-join evaluation plans.
type ChainedQEP int

const (
	// ChainedAuto uses the nested join with caching, the paper's winner.
	ChainedAuto ChainedQEP = iota

	// ChainedRightDeep is QEP1.
	ChainedRightDeep

	// ChainedJoinIntersection is QEP2.
	ChainedJoinIntersection

	// ChainedNestedJoin is QEP3 without the neighborhood cache.
	ChainedNestedJoin

	// ChainedNestedJoinCached is QEP3 with the neighborhood cache.
	ChainedNestedJoinCached
)

// String implements fmt.Stringer.
func (q ChainedQEP) String() string {
	switch q {
	case ChainedRightDeep:
		return "right-deep"
	case ChainedJoinIntersection:
		return "join-intersection"
	case ChainedNestedJoin:
		return "nested-join"
	case ChainedNestedJoinCached:
		return "nested-join-cached"
	default:
		return "auto"
	}
}

// ChainedJoins evaluates the chained query with the chosen QEP. All QEPs
// produce the same triple set (a property the tests enforce).
func ChainedJoins(a, b, cRel *Relation, kAB, kBC int, qep ChainedQEP, c *stats.Counters) []Triple {
	switch qep {
	case ChainedRightDeep:
		return chainedRightDeep(a, b, cRel, kAB, kBC, c)
	case ChainedJoinIntersection:
		return chainedJoinIntersection(a, b, cRel, kAB, kBC, c)
	case ChainedNestedJoin:
		return chainedNestedJoin(a, b, cRel, kAB, kBC, false, c)
	default: // ChainedAuto, ChainedNestedJoinCached
		return chainedNestedJoin(a, b, cRel, kAB, kBC, true, c)
	}
}

// chainedRightDeep is QEP1: materialize the full join (B ⋈kNN C) as a map
// from b to its C-neighborhood, then probe it for every b produced by
// (A ⋈kNN B). No output is produced until the inner join completes, and
// neighborhoods are computed even for b values never selected by any a.
func chainedRightDeep(a, b, cRel *Relation, kAB, kBC int, c *stats.Counters) []Triple {
	bc := make(map[geom.Point][]geom.Point, b.Len())
	b.ForEachPoint(func(bp geom.Point) {
		nbr := cRel.S.Neighborhood(bp, kBC, c)
		pts := make([]geom.Point, len(nbr.Points))
		copy(pts, nbr.Points)
		bc[bp] = pts
	})

	var out []Triple
	a.ForEachPoint(func(ap geom.Point) {
		nbrA := b.S.Neighborhood(ap, kAB, c)
		for _, bp := range nbrA.Points {
			for _, cp := range bc[bp] {
				out = append(out, Triple{A: ap, B: bp, C: cp})
			}
		}
	})
	return out
}

// chainedJoinIntersection is QEP2: both joins run independently and their
// pair sets are intersected on B.
func chainedJoinIntersection(a, b, cRel *Relation, kAB, kBC int, c *stats.Counters) []Triple {
	abPairs := KNNJoin(a, b, kAB, c)
	bcPairs := KNNJoin(b, cRel, kBC, c)

	// B may hold duplicate coordinates (e.g. co-located observations), and
	// each duplicate instance contributes an identical neighborhood run to
	// bcPairs. Keep exactly one list per distinct b value — the other QEPs
	// probe one list per b value too. Every neighborhood has exactly
	// min(kBC, |C|) entries, so capping the list length keeps the first
	// full copy and drops repeats, regardless of run interleaving.
	nbrLen := kBC
	if cLen := cRel.Len(); cLen < nbrLen {
		nbrLen = cLen
	}
	cByB := make(map[geom.Point][]geom.Point)
	for _, pr := range bcPairs {
		if lst := cByB[pr.Left]; len(lst) < nbrLen {
			cByB[pr.Left] = append(lst, pr.Right)
		}
	}
	var out []Triple
	for _, pr := range abPairs {
		for _, cp := range cByB[pr.Right] {
			out = append(out, Triple{A: pr.Left, B: pr.Right, C: cp})
		}
	}
	return out
}

// chainedNestedJoin is QEP3: for every pair (a, b) of the first join,
// compute (or fetch from the cache) the C-neighborhood of b. Only b values
// that some a actually selects incur neighborhood computations.
func chainedNestedJoin(a, b, cRel *Relation, kAB, kBC int, useCache bool, c *stats.Counters) []Triple {
	var cache map[geom.Point][]geom.Point
	if useCache {
		cache = make(map[geom.Point][]geom.Point)
	}

	neighborhoodOfB := func(bp geom.Point) []geom.Point {
		if useCache {
			if pts, ok := cache[bp]; ok {
				c.AddCacheHit()
				return pts
			}
			c.AddCacheMiss()
		}
		nbr := cRel.S.Neighborhood(bp, kBC, c)
		if !useCache {
			// The caller consumes the result before the next query on this
			// searcher, so the reusable buffer can be returned as-is.
			return nbr.Points
		}
		pts := make([]geom.Point, len(nbr.Points))
		copy(pts, nbr.Points)
		cache[bp] = pts
		return pts
	}

	var out []Triple
	var bps []geom.Point // scratch: nbrA's buffer is clobbered when b and cRel share a searcher
	a.ForEachPoint(func(ap geom.Point) {
		nbrA := b.S.Neighborhood(ap, kAB, c)
		bps = append(bps[:0], nbrA.Points...)
		for _, bp := range bps {
			for _, cp := range neighborhoodOfB(bp) {
				out = append(out, Triple{A: ap, B: bp, C: cp})
			}
		}
	})
	return out
}
