package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/testutil"
)

// This file reproduces the paper's counter-example figures as executable
// tests: the plans the paper proves WRONG must actually produce different
// answers than the correct plans on configurations shaped like the paper's
// examples.

// TestInnerPushdownIsInvalid reproduces Figures 1 vs 2: pushing a kNN-select
// below the inner relation of a kNN-join changes the answer. The layout
// mirrors the paper's scenario: mechanic shops (outer) join hotels (inner),
// selected by proximity to a shopping center f.
func TestInnerPushdownIsInvalid(t *testing.T) {
	mechanics := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 10}, {X: 0, Y: 20}, {X: 0, Y: 30}}
	// Hotels: two right next to the mechanics, two near the shopping center.
	hotels := []geom.Point{{X: 1, Y: 0}, {X: 1, Y: 10}, {X: 100, Y: 0}, {X: 100, Y: 10}}
	shoppingCenter := geom.Point{X: 100, Y: 5}

	outer := testutil.BuildRelation(t, testutil.Grid, mechanics)
	inner := testutil.BuildRelation(t, testutil.Grid, hotels)
	kJoin, kSel := 2, 2

	correct := core.SelectInnerJoinConceptual(outer, inner, shoppingCenter, kJoin, kSel, nil)
	core.SortPairs(correct)

	wrong, err := core.InvalidInnerPushdown(outer, inner, shoppingCenter, kJoin, kSel,
		builder(testutil.Grid), nil)
	if err != nil {
		t.Fatal(err)
	}
	core.SortPairs(wrong)

	// The correct answer is empty: every mechanic's two nearest hotels are
	// the two local ones, which are not among the shopping center's two
	// nearest. The pushed-down plan pairs every mechanic with the two
	// far-away hotels instead.
	if len(correct) != 0 {
		t.Fatalf("correct plan: got %v, want empty", correct)
	}
	if len(wrong) != len(mechanics)*kJoin {
		t.Fatalf("invalid pushdown: got %d pairs, want %d", len(wrong), len(mechanics)*kJoin)
	}
	if pairsEqual(correct, wrong) {
		t.Fatalf("the invalid plan accidentally matched the correct plan")
	}
}

// TestInnerPushdownNonEquivalenceFormula checks the paper's Section 1
// formula on random data: (E1 ⋈kNN E2) ∩ (E1 × σ(E2)) ≠ E1 ⋈kNN σ(E2) in
// general — and when the two happen to coincide the test still verifies the
// correct side equals the conceptual evaluation.
func TestInnerPushdownNonEquivalenceFormula(t *testing.T) {
	sawDifference := false
	for seed := int64(0); seed < 8; seed++ {
		outerPts := testutil.UniformPoints(40, geom.NewRect(0, 0, 100, 100), 700+seed)
		innerPts := testutil.UniformPoints(60, geom.NewRect(0, 0, 100, 100), 800+seed)
		outer := testutil.BuildRelation(t, testutil.Grid, outerPts)
		inner := testutil.BuildRelation(t, testutil.Grid, innerPts)
		f := geom.Point{X: 50, Y: 50}

		correct := core.SelectInnerJoinConceptual(outer, inner, f, 3, 5, nil)
		core.SortPairs(correct)
		wrong, err := core.InvalidInnerPushdown(outer, inner, f, 3, 5, builder(testutil.Grid), nil)
		if err != nil {
			t.Fatal(err)
		}
		core.SortPairs(wrong)
		if !pairsEqual(correct, wrong) {
			sawDifference = true
		}
	}
	if !sawDifference {
		t.Fatalf("invalid pushdown never differed from the correct plan across seeds; the counter-example lost its teeth")
	}
}

// TestUnchainedSequentialIsWrong reproduces Figures 8–10: evaluating either
// unchained join first (feeding its B-projection to the other) differs from
// the correct independent-evaluation plan.
func TestUnchainedSequentialIsWrong(t *testing.T) {
	// Shaped like the paper's Figure 8/9 example: two a's on the left, two
	// c's on the right, three b's in the middle; b1 is close to the a's,
	// b3 close to the c's, b2 in between.
	aPts := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 10}}
	bPts := []geom.Point{{X: 10, Y: 0}, {X: 15, Y: 5}, {X: 20, Y: 10}}
	cPts := []geom.Point{{X: 30, Y: 0}, {X: 30, Y: 10}}

	a := testutil.BuildRelation(t, testutil.Grid, aPts)
	b := testutil.BuildRelation(t, testutil.Grid, bPts)
	c := testutil.BuildRelation(t, testutil.Grid, cPts)
	kAB, kCB := 2, 2

	correct := core.UnchainedConceptual(a, b, c, kAB, kCB, nil)
	core.SortTriples(correct)

	abFirst, err := core.SequentialUnchained(a, b, c, kAB, kCB, true, builder(testutil.Grid), nil)
	if err != nil {
		t.Fatal(err)
	}
	core.SortTriples(abFirst)
	cbFirst, err := core.SequentialUnchained(a, b, c, kAB, kCB, false, builder(testutil.Grid), nil)
	if err != nil {
		t.Fatal(err)
	}
	core.SortTriples(cbFirst)

	if triplesEqual(correct, abFirst) {
		t.Errorf("AB-first sequential plan unexpectedly matched the correct plan")
	}
	if triplesEqual(correct, cbFirst) {
		t.Errorf("CB-first sequential plan unexpectedly matched the correct plan")
	}
	if triplesEqual(abFirst, cbFirst) {
		t.Errorf("the two sequential plans unexpectedly agree (paper shows they differ)")
	}
}

// TestTwoSelectsSequentialIsWrong reproduces Figures 14–16: applying one
// kNN-select to the output of the other gives a different (wrong) answer
// than independent evaluation + intersection, and the two orders disagree
// with each other.
func TestTwoSelectsSequentialIsWrong(t *testing.T) {
	// Houses: two between work and school (the true answer), plus local
	// clusters near work and near school.
	houses := []geom.Point{
		{X: 50, Y: 50}, {X: 52, Y: 50}, // near both
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}, {X: 4, Y: 0}, // near work
		{X: 100, Y: 100}, {X: 98, Y: 100}, {X: 100, Y: 98}, {X: 96, Y: 100}, // near school
	}
	work := geom.Point{X: 0, Y: 1}
	school := geom.Point{X: 100, Y: 99}
	// k = 6 admits the four local houses plus both middle houses into each
	// neighborhood, so the correct intersection is the two middle houses.
	k := 6

	rel := testutil.BuildRelation(t, testutil.Grid, houses)

	correct := core.TwoSelectsConceptual(rel, work, k, school, k, nil)
	core.SortPoints(correct)
	if len(correct) == 0 {
		t.Fatalf("expected a non-empty correct answer; layout is miscalibrated")
	}

	workFirst := core.SequentialTwoSelects(rel, work, k, school, k, true, nil)
	core.SortPoints(workFirst)
	schoolFirst := core.SequentialTwoSelects(rel, work, k, school, k, false, nil)
	core.SortPoints(schoolFirst)

	if pointsEqual(correct, workFirst) {
		t.Errorf("work-first sequential plan unexpectedly matched the correct plan")
	}
	if pointsEqual(correct, schoolFirst) {
		t.Errorf("school-first sequential plan unexpectedly matched the correct plan")
	}
	if pointsEqual(workFirst, schoolFirst) {
		t.Errorf("the two sequential plans unexpectedly agree (paper shows they differ)")
	}
}

// TestRangeInnerPushdownIsInvalid extends the Figure 1/2 counter-example to
// the footnote-1 range-selection variant.
func TestRangeInnerPushdownIsInvalid(t *testing.T) {
	mechanics := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 10}}
	hotels := []geom.Point{{X: 1, Y: 0}, {X: 1, Y: 10}, {X: 100, Y: 0}, {X: 100, Y: 10}}
	rng := geom.NewRect(90, -5, 110, 15) // covers only the far hotels

	outer := testutil.BuildRelation(t, testutil.Grid, mechanics)
	inner := testutil.BuildRelation(t, testutil.Grid, hotels)
	kJoin := 2

	correct := core.RangeInnerJoinConceptual(outer, inner, rng, kJoin, nil)
	core.SortPairs(correct)
	wrong, err := core.InvalidRangeInnerPushdown(outer, inner, rng, kJoin, builder(testutil.Grid), nil)
	if err != nil {
		t.Fatal(err)
	}
	core.SortPairs(wrong)

	if len(correct) != 0 {
		t.Fatalf("correct plan: got %v, want empty", correct)
	}
	if len(wrong) == 0 || pairsEqual(correct, wrong) {
		t.Fatalf("range pushdown should have produced wrong, non-empty results; got %d pairs", len(wrong))
	}
}

func builder(kind testutil.IndexKind) func([]geom.Point) (*core.Relation, error) {
	return testutil.RelationBuilder(kind)
}

func triplesEqual(a, b []core.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pointsEqual(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
