package core

import (
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// flatPoints is a structure-of-arrays copy of a retained point set. The
// Counting algorithm derives a search threshold per outer tuple as the
// nearest distance from the tuple to f's neighborhood — a scan of kσ
// points per tuple — so the neighborhood is flattened once and the scan
// runs through the batched MinDistSq kernel (bit-identical to
// Neighborhood.NearestDistSqTo: same operations, NaN lanes skipped, and
// min is order-insensitive over non-negative squared distances).
type flatPoints struct{ xs, ys []float64 }

func flattenPoints(pts []geom.Point) flatPoints {
	xs, ys := geom.FlatXYs(pts)
	return flatPoints{xs: xs, ys: ys}
}

// minDistSqTo returns the minimum squared distance from p to the set, or
// +Inf for an empty set.
func (f flatPoints) minDistSqTo(p geom.Point) float64 {
	return kernel.MinDistSq(f.xs, f.ys, p.X, p.Y)
}

// This file implements Section 3 of the paper: queries that combine a
// kNN-join with a kNN-select,
//
//	(E1 ⋈kNN E2) ∩ (E1 × σ_{kσ,f}(E2))
//
// i.e. pairs (e1, e2) such that e2 is among the k⋈ nearest neighbors of e1
// AND among the kσ nearest neighbors of the focal point f. The select is on
// the *inner* relation, where pushing it below the join is invalid; the
// Counting and Block-Marking algorithms recover the pruning a pushdown would
// have provided without changing the answer.

// SelectInnerJoinConceptual is the conceptually correct QEP of Figure 1:
// evaluate the full kNN-join, evaluate the kNN-select independently, and
// intersect. It is the correctness baseline and the slow comparator of
// Figures 19–21.
func SelectInnerJoinConceptual(outer, inner *Relation, f geom.Point, kJoin, kSel int, c *stats.Counters) []Pair {
	nbrF := inner.S.Neighborhood(f, kSel, c)
	sel := sortedPointSet(nbrF) // copied out: nbrF is invalidated by the join's searches
	pairs := KNNJoin(outer, inner, kJoin, c)
	return intersectPairs(pairs, sel)
}

// InvalidInnerPushdown is the plan of Figure 2: the kNN-select is pushed
// below the inner relation of the kNN-join, so the join sees only the kσ
// selected points. The paper proves this plan WRONG — it is implemented
// solely so the semantics tests can reproduce Figures 1 vs 2. Building the
// reduced inner relation uses the supplied constructor so the caller
// controls the index kind.
func InvalidInnerPushdown(outer, inner *Relation, f geom.Point, kJoin, kSel int,
	build func(pts []geom.Point) (*Relation, error), c *stats.Counters) ([]Pair, error) {

	selected := KNNSelect(inner, f, kSel, c)
	reduced, err := build(selected)
	if err != nil {
		return nil, err
	}
	return KNNJoin(outer, reduced, kJoin, c), nil
}

// SelectOuterJoin evaluates a query with the kNN-select on the *outer*
// relation of the join: (σ_{kσ,f}(E1)) ⋈kNN E2. Pushing the selection below
// the outer relation is valid (Figure 3 of the paper), so this simply
// selects and then joins the selected points.
func SelectOuterJoin(outer, inner *Relation, f geom.Point, kSel, kJoin int, c *stats.Counters) []Pair {
	selected := KNNSelect(outer, f, kSel, c)
	if kJoin <= 0 {
		return nil
	}
	out := make([]Pair, 0, len(selected)*kJoin)
	for _, e1 := range selected {
		nbr := inner.S.Neighborhood(e1, kJoin, c)
		for _, e2 := range nbr.Points {
			out = append(out, Pair{Left: e1, Right: e2})
		}
	}
	return out
}

// SelectInnerJoinCounting is the Counting algorithm (Procedure 1). For each
// outer point e1 it derives a search threshold — the distance from e1 to the
// nearest point of f's neighborhood — and counts inner points in blocks that
// lie entirely (strictly) within that threshold. Once the count reaches k⋈,
// e1's neighborhood provably cannot reach f's neighborhood and e1 is skipped
// without a neighborhood computation.
//
// The implementation uses strict comparisons (count blocks with
// MAXDIST < threshold, skip at count ≥ k⋈), which is safe under exact
// distance ties; see DESIGN.md §3.2.
func SelectInnerJoinCounting(outer, inner *Relation, f geom.Point, kJoin, kSel int, c *stats.Counters) []Pair {
	if kJoin <= 0 || kSel <= 0 {
		return nil
	}
	nbrF := inner.S.Neighborhood(f, kSel, c)
	if nbrF.Len() == 0 {
		return nil
	}
	// The f-neighborhood is consulted per outer tuple while the same
	// searcher keeps running queries, so its points are copied out of the
	// reusable result: once as the sorted intersection set, once flattened
	// to X/Y columns for the batched per-tuple threshold scans.
	sel := sortedPointSet(nbrF)
	flat := flattenPoints(nbrF.Points)

	var out []Pair
	outer.ForEachPoint(func(e1 geom.Point) {
		// The threshold is compared squared against block MAXDIST² values;
		// deriving it squared (not sqrt-then-square) keeps exact ties exact.
		count := inner.S.CountStrictlyCloser(e1, kJoin, flat.minDistSqTo(e1), c)

		if count >= kJoin {
			// ≥ k⋈ inner points strictly closer to e1 than any point of
			// nbr(f): e1 cannot contribute.
			c.AddOuterSkipped(1)
			return
		}
		nbrE1 := inner.S.Neighborhood(e1, kJoin, c)
		out = emitIntersection(out, e1, nbrE1, sel)
	})
	return out
}

// SelectInnerJoinConceptualParallel is SelectInnerJoinConceptual with the
// full kNN-join fanned out across workers (the select and the intersection
// are negligible next to the join).
func SelectInnerJoinConceptualParallel(outer, inner *Relation, f geom.Point, kJoin, kSel, workers int, c *stats.Counters) []Pair {
	nbrF := inner.S.Neighborhood(f, kSel, c)
	sel := sortedPointSet(nbrF) // copied out: nbrF is invalidated by the join's searches
	pairs := KNNJoinParallel(outer, inner, kJoin, workers, c)
	return intersectPairs(pairs, sel)
}

// SelectOuterJoinParallel is SelectOuterJoin with the selected points'
// join fanned out across workers in contiguous chunks. Results are
// identical — including order — to the sequential evaluation.
func SelectOuterJoinParallel(outer, inner *Relation, f geom.Point, kSel, kJoin, workers int, c *stats.Counters) []Pair {
	selected := KNNSelect(outer, f, kSel, c)
	if kJoin <= 0 {
		return nil
	}
	out := parallelEmit(&pairArenas, pointChunks(selected, workers), inner, workers, c, nil,
		knnPairEmitter(kJoin))
	if out == nil {
		out = []Pair{} // SelectOuterJoin returns a non-nil slice for valid k
	}
	return out
}

// SelectInnerJoinCountingParallel is the Counting algorithm with the
// per-tuple scans fanned out across workers over the outer relation's
// blocks. The count-based skip decision is independent per tuple, so the
// result is identical — including order — to SelectInnerJoinCounting.
func SelectInnerJoinCountingParallel(outer, inner *Relation, f geom.Point, kJoin, kSel, workers int, c *stats.Counters) []Pair {
	if kJoin <= 0 || kSel <= 0 {
		return nil
	}
	nbrF := inner.S.Neighborhood(f, kSel, c)
	if nbrF.Len() == 0 {
		return nil
	}
	// The workers consult the f-neighborhood concurrently while their
	// handles keep running queries, so its points are copied out of the
	// reusable result (sorted set + flat columns, both read-only to the
	// workers).
	sel := sortedPointSet(nbrF)
	flat := flattenPoints(nbrF.Points)

	return parallelEmit(&pairArenas, blockGroups(outer), inner, workers, c, nil,
		func(h *Relation, e1 geom.Point, dst []Pair, ctr *stats.Counters) []Pair {
			if h.S.CountStrictlyCloser(e1, kJoin, flat.minDistSqTo(e1), ctr) >= kJoin {
				ctr.AddOuterSkipped(1)
				return dst
			}
			return emitIntersection(dst, e1, h.S.Neighborhood(e1, kJoin, ctr), sel)
		})
}

// SelectInnerJoinBlockMarkingParallel is the Block-Marking algorithm with
// the join over Contributing blocks fanned out across workers. The marking
// preprocessing itself stays sequential: the contour early-stop is a
// data-dependent scan in MINDIST order that cannot be split without giving
// up its early termination.
func SelectInnerJoinBlockMarkingParallel(outer, inner *Relation, f geom.Point, kJoin, kSel int,
	opt BlockMarkingOptions, workers int, c *stats.Counters) []Pair {

	if kJoin <= 0 || kSel <= 0 {
		return nil
	}
	nbrF := inner.S.Neighborhood(f, kSel, c)
	if nbrF.Len() == 0 {
		return nil
	}
	sel := sortedPointSet(nbrF)
	fFarthest := nbrF.FarthestDist()

	contributing := markContributingBlocks(outer, inner, f, fFarthest, kJoin, opt, c)
	return parallelEmit(&pairArenas, pointGroups(contributing), inner, workers, c, nil,
		func(h *Relation, e1 geom.Point, dst []Pair, ctr *stats.Counters) []Pair {
			return emitIntersection(dst, e1, h.S.Neighborhood(e1, kJoin, ctr), sel)
		})
}

// BlockMarkingOptions tune the Block-Marking algorithm.
type BlockMarkingOptions struct {
	// Exhaustive disables the contour early-stop of the preprocessing phase
	// (Procedure 3): every outer block is checked individually. Exhaustive
	// preprocessing is automatically used when the outer index does not
	// tile space (R-trees), where the contour argument does not hold.
	Exhaustive bool
}

// SelectInnerJoinBlockMarking is the Block-Marking algorithm (Procedures 2
// and 3). A preprocessing pass over the blocks of the *outer* relation marks
// each block Contributing or Non-Contributing using the neighborhood of the
// block center (Theorem 1: the center minimizes the search threshold); the
// join then runs only over points in Contributing blocks.
func SelectInnerJoinBlockMarking(outer, inner *Relation, f geom.Point, kJoin, kSel int,
	opt BlockMarkingOptions, c *stats.Counters) []Pair {

	if kJoin <= 0 || kSel <= 0 {
		return nil
	}
	nbrF := inner.S.Neighborhood(f, kSel, c)
	if nbrF.Len() == 0 {
		return nil
	}
	// The marking pass reuses the same searcher, so everything needed from
	// nbrF (the sorted set and the threshold radius) is copied out first.
	sel := sortedPointSet(nbrF)
	fFarthest := nbrF.FarthestDist()

	contributing := markContributingBlocks(outer, inner, f, fFarthest, kJoin, opt, c)

	var out []Pair
	for _, b := range contributing {
		xs, ys := b.XYs()
		for i := range xs {
			e1 := geom.Point{X: xs[i], Y: ys[i]}
			nbrE1 := inner.S.Neighborhood(e1, kJoin, c)
			out = emitIntersection(out, e1, nbrE1, sel)
		}
	}
	return out
}

// markContributingBlocks is the preprocessing phase (Procedure 3). It scans
// the outer blocks in MINDIST order from f. A block is Non-Contributing when
//
//	r + diagonal + fFarthest < fCenter,
//
// where r is the distance from the block center to the k⋈-th neighbor of the
// center in the inner relation, fFarthest the radius of f's neighborhood and
// fCenter the distance from f to the block center. With the contour
// optimization enabled, scanning stops once a complete cycle of
// Non-Contributing blocks has been closed: when the scan reaches a block
// whose MINDIST from f is at least the MAXDIST (M) of the first
// Non-Contributing block of the current cycle, all remaining blocks are
// pruned without inspection.
func markContributingBlocks(outer, inner *Relation, f geom.Point, fFarthest float64,
	kJoin int, opt BlockMarkingOptions, c *stats.Counters) []*index.Block {

	exhaustive := opt.Exhaustive || !index.TilesSpace(outer.Ix)
	total := len(outer.Ix.Blocks())

	var contributing []*index.Block
	scan := index.MinDistOrder(outer.Ix, f)
	mSq := -1.0 // squared MAXDIST of the first NC block of the open cycle; <0: no open cycle
	scanned := 0
	for {
		b, minSq, ok := scan.Next()
		if !ok {
			break
		}
		if !exhaustive && mSq >= 0 && minSq >= mSq {
			// Contour closed: every block with MINDIST < M was scanned and
			// found Non-Contributing; the rest cannot contribute.
			c.AddBlocksPruned(total - scanned)
			break
		}
		scanned++

		center := b.Center()
		nbr := inner.S.Neighborhood(center, kJoin, c)
		r := nbr.FarthestDist()
		fCenter := center.Dist(f)

		// The NC guarantee needs a full-size neighborhood: with fewer than
		// k⋈ inner points inside radius r, the bound on a block point's
		// k⋈-th-NN distance does not hold.
		nonContributing := nbr.Len() == kJoin && r+b.Diagonal()+fFarthest < fCenter

		if nonContributing {
			c.AddBlocksPruned(1)
			if mSq < 0 {
				mSq = b.Bounds.MaxDistSq(f) // first NC block of a new cycle
			}
		} else {
			if b.Count() > 0 {
				contributing = append(contributing, b)
			}
			mSq = -1 // cycle broken; start over
		}
	}
	c.AddBlocksScanned(scanned)
	return contributing
}
