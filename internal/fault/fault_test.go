package fault

import (
	"errors"
	"testing"
	"time"
)

func TestArmedFastPath(t *testing.T) {
	if Armed() {
		t.Fatal("Armed() = true before Arm")
	}
	Arm(&Injector{})
	defer Disarm()
	if !Armed() {
		t.Fatal("Armed() = false after Arm")
	}
	Disarm()
	if Armed() {
		t.Fatal("Armed() = true after Disarm")
	}
}

func TestBlockScanCounterIsDeterministic(t *testing.T) {
	var got []uint64
	Arm(&Injector{BlockScan: func(n uint64) { got = append(got, n) }})
	defer Disarm()
	for i := 0; i < 3; i++ {
		OnBlockScan()
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("checkpoint counts = %v, want [1 2 3]", got)
	}
	// Re-arming resets the counter: scenarios are independent.
	got = nil
	Arm(&Injector{BlockScan: func(n uint64) { got = append(got, n) }})
	OnBlockScan()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("counts after re-arm = %v, want [1]", got)
	}
}

func TestNilHooksAreNoOps(t *testing.T) {
	Arm(&Injector{})
	defer Disarm()
	OnBlockScan()
	OnShardProbe(0)
	OnPoolAcquire()
}

func TestCancelAfterBlocksFiresAtAndAfterN(t *testing.T) {
	fired := 0
	CancelAfterBlocks(2, func() { fired++ })
	defer Disarm()
	OnBlockScan() // 1: below threshold
	if fired != 0 {
		t.Fatalf("cancel fired at checkpoint 1, want at 2")
	}
	OnBlockScan() // 2
	OnBlockScan() // 3: keeps firing
	if fired != 2 {
		t.Fatalf("cancel fired %d times over checkpoints 2-3, want 2", fired)
	}
}

func TestPanicAtBlockPanicsExactlyAtM(t *testing.T) {
	PanicAtBlock(2, "boom")
	defer Disarm()
	OnBlockScan() // 1: no panic
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recovered %v, want \"boom\"", r)
			}
		}()
		OnBlockScan() // 2: panics
	}()
}

func TestSlowShardProbeTargetsOneShard(t *testing.T) {
	SlowShardProbe(1, 20*time.Millisecond)
	defer Disarm()
	start := time.Now()
	OnShardProbe(0)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("probe of untargeted shard took %v", d)
	}
	start = time.Now()
	OnShardProbe(1)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("probe of targeted shard took %v, want >= 20ms", d)
	}
}

func TestWrapPanicPassesEnginePayloadsThrough(t *testing.T) {
	c := &Cancel{Err: errors.New("ctx done")}
	if got := WrapPanic(c); got != any(c) {
		t.Fatalf("WrapPanic(*Cancel) = %v, want the payload unchanged", got)
	}
	p := &Panic{Value: "v"}
	if got := WrapPanic(p); got != any(p) {
		t.Fatalf("WrapPanic(*Panic) = %v, want the payload unchanged", got)
	}
	wrapped, ok := WrapPanic("raw").(*Panic)
	if !ok || wrapped.Value != "raw" || len(wrapped.Stack) == 0 {
		t.Fatalf("WrapPanic(raw) = %#v, want *Panic with stack", wrapped)
	}
}

func TestSlotPrefersPanicOverCancel(t *testing.T) {
	var s Slot
	if s.Load() != nil {
		t.Fatal("empty slot loads non-nil")
	}
	c := &Cancel{}
	s.Store(c)
	if s.Load() != any(c) {
		t.Fatal("first store lost")
	}
	p := &Panic{Value: "bug"}
	s.Store(p)
	if s.Load() != any(p) {
		t.Fatal("panic did not displace cancel")
	}
	s.Store(&Cancel{})
	if s.Load() != any(p) {
		t.Fatal("cancel displaced panic")
	}
	s.Store(&Panic{Value: "second bug"})
	if s.Load() != any(p) {
		t.Fatal("second panic displaced the first")
	}
}
