// Package fault carries the control-flow payloads of cooperative query
// cancellation and a deterministic fault-injection harness for chaos tests.
//
// Cancellation in this engine unwinds by panic: block-granularity
// checkpoints (locality block loops, the parallel tuple-group driver, the
// sharded scatter workers) panic with a *Cancel payload the moment the bound
// context is done, deferred releases return every pooled handle on the way
// up, and the public entry points recover the payload into a typed error.
// Worker goroutines never let a panic cross their goroutine boundary:
// recovered values are wrapped into *Panic (stack captured at the fault
// site), parked in a Slot, and re-panicked on the caller's goroutine after
// counters are folded and handles are released.
//
// The injection side is intentionally global and atomic: production code
// pays one atomic load (Armed) per checkpoint when nothing is armed, and the
// chaos tests arm process-wide hooks that fire deterministically — the N-th
// checkpoint, a specific shard's probe, a pool acquisition — to place a
// cancellation or a crash at an exact point of a query's execution.
package fault

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Cancel is the panic payload of a cooperative cancellation unwind. Err is
// the cause (a context error, possibly wrapped with pool-exhaustion detail);
// the public API layer recovers the payload and wraps Err into its typed
// cancellation error.
type Cancel struct{ Err error }

// Panic is a worker panic captured at the fault site: the original panic
// value plus the faulting goroutine's stack. The public API layer recovers
// it into a typed error instead of crashing the process.
type Panic struct {
	Value any
	Stack []byte
}

// Fail is the panic payload of a non-cancellation evaluation failure — a
// remote shard whose replica set is exhausted, for example. Unlike *Cancel
// it does not mean "the caller gave up", and unlike *Panic it is not a bug:
// the public API layer recovers the payload and returns Err as the query's
// error verbatim (the fault site is expected to have built a typed,
// wrapped error chain).
type Fail struct{ Err error }

// WrapPanic normalizes a recovered value for cross-goroutine transport:
// engine payloads (*Cancel, *Fail, *Panic) pass through, anything else — a
// real bug or an injected crash — is wrapped into *Panic with the current
// goroutine's stack, so the trace points at the fault, not at the re-panic.
func WrapPanic(r any) any {
	switch r.(type) {
	case *Cancel, *Fail, *Panic:
		return r
	}
	return &Panic{Value: r, Stack: debug.Stack()}
}

// Slot collects the first fault of a worker crew for re-panicking on the
// caller's goroutine. Payloads rank *Panic > *Fail > *Cancel: when one
// worker hits a real crash while another merely observes the (consequent)
// cancellation or a dead shard, the crash must surface rather than be
// masked, and a shard failure outranks the cancellations it caused.
type Slot struct {
	mu  sync.Mutex
	val any
}

// rank orders fault payloads for Slot replacement.
func rank(r any) int {
	switch r.(type) {
	case *Panic:
		return 2
	case *Fail:
		return 1
	default: // *Cancel
		return 0
	}
}

// Store records r (pass values through WrapPanic first). The first fault
// wins among equals; a higher-ranked payload (*Panic > *Fail > *Cancel)
// replaces a lower-ranked one.
func (s *Slot) Store(r any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.val == nil || rank(r) > rank(s.val) {
		s.val = r
	}
}

// Load returns the recorded fault, or nil when the crew finished clean. It
// is called after the crew is joined; the WaitGroup provides the
// happens-before edge.
func (s *Slot) Load() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

// Injector is a set of deterministic hooks the engine invokes while armed.
// Any hook may be nil. Hooks run on the query's goroutine at well-defined
// points, so they can cancel a context, sleep, or panic to place a fault at
// an exact execution step.
type Injector struct {
	// BlockScan fires at every cancellation checkpoint, with the 1-based
	// count of checkpoints since Arm. Checkpoints are per block span (never
	// per point), so n addresses "the N-th block scanned process-wide".
	BlockScan func(n uint64)

	// ShardProbe fires before a probe consults shard s's searcher.
	ShardProbe func(s int)

	// PoolAcquire fires when a context-aware pool acquisition starts.
	PoolAcquire func()

	// The network fault class, keyed by the remote endpoint an attempt is
	// about to hit (its URL, or the loopback transport's synthetic name).
	// Hooks fire inside the robustness envelope — before retries and
	// failover are decided — so an injected fault exercises the same
	// recovery path a real network fault would.

	// DropProbe reports whether to drop the attempt outright (the request
	// never reaches the shard; surfaces as a transient connection error).
	DropProbe func(endpoint string) bool

	// DelayProbe returns an extra latency to impose on the attempt before
	// it is sent; zero means none. The delay honors the attempt's context,
	// so a deadline can expire mid-delay exactly like a stalled network.
	DelayProbe func(endpoint string) time.Duration

	// ResetConn reports whether to fail the attempt after it was sent
	// (the shard did the work; the response never arrived — surfaces as a
	// transient connection-reset error).
	ResetConn func(endpoint string) bool

	// CorruptResponse reports whether to corrupt the attempt's decoded
	// response (surfaces as a malformed-response transient error via the
	// envelope's validation).
	CorruptResponse func(endpoint string) bool
}

var (
	armed    atomic.Bool
	injector atomic.Pointer[Injector]
	scans    atomic.Uint64
)

// Armed reports whether an injector is installed. It is the one-atomic-load
// fast path production checkpoints take; everything else in this file is
// off that path.
func Armed() bool { return armed.Load() }

// Arm installs inj process-wide and resets the checkpoint counter. Chaos
// tests arm, run one scenario, and Disarm (they cannot run in parallel with
// each other — the harness is deliberately global).
func Arm(inj *Injector) {
	scans.Store(0)
	injector.Store(inj)
	armed.Store(true)
}

// Disarm removes the installed injector.
func Disarm() {
	armed.Store(false)
	injector.Store(nil)
}

// OnBlockScan invokes the BlockScan hook. Call only when Armed.
func OnBlockScan() {
	inj := injector.Load()
	if inj == nil || inj.BlockScan == nil {
		return
	}
	inj.BlockScan(scans.Add(1))
}

// OnShardProbe invokes the ShardProbe hook. Call only when Armed.
func OnShardProbe(s int) {
	inj := injector.Load()
	if inj == nil || inj.ShardProbe == nil {
		return
	}
	inj.ShardProbe(s)
}

// OnPoolAcquire invokes the PoolAcquire hook. Call only when Armed.
func OnPoolAcquire() {
	inj := injector.Load()
	if inj == nil || inj.PoolAcquire == nil {
		return
	}
	inj.PoolAcquire()
}

// OnDropProbe invokes the DropProbe hook. Call only when Armed.
func OnDropProbe(endpoint string) bool {
	inj := injector.Load()
	if inj == nil || inj.DropProbe == nil {
		return false
	}
	return inj.DropProbe(endpoint)
}

// OnDelayProbe invokes the DelayProbe hook. Call only when Armed.
func OnDelayProbe(endpoint string) time.Duration {
	inj := injector.Load()
	if inj == nil || inj.DelayProbe == nil {
		return 0
	}
	return inj.DelayProbe(endpoint)
}

// OnResetConn invokes the ResetConn hook. Call only when Armed.
func OnResetConn(endpoint string) bool {
	inj := injector.Load()
	if inj == nil || inj.ResetConn == nil {
		return false
	}
	return inj.ResetConn(endpoint)
}

// OnCorruptResponse invokes the CorruptResponse hook. Call only when Armed.
func OnCorruptResponse(endpoint string) bool {
	inj := injector.Load()
	if inj == nil || inj.CorruptResponse == nil {
		return false
	}
	return inj.CorruptResponse(endpoint)
}

// CancelAfterBlocks arms an injector that invokes cancel on the n-th
// checkpoint (and every one after, making the scenario robust to exact
// checkpoint counts shifting with data layout).
func CancelAfterBlocks(n uint64, cancel func()) {
	Arm(&Injector{BlockScan: func(c uint64) {
		if c >= n {
			cancel()
		}
	}})
}

// PanicAtBlock arms an injector that panics with value at the m-th
// checkpoint — the deterministic "poisoned block" of the chaos tests.
func PanicAtBlock(m uint64, value any) {
	Arm(&Injector{BlockScan: func(c uint64) {
		if c == m {
			panic(value)
		}
	}})
}

// SlowShardProbe arms an injector that sleeps for delay before every probe
// of shard s, widening the window for a deadline to expire mid-scatter.
func SlowShardProbe(s int, delay time.Duration) {
	Arm(&Injector{ShardProbe: func(probed int) {
		if probed == s {
			time.Sleep(delay)
		}
	}})
}

// DropEndpoint arms an injector that drops every probe attempt against the
// given endpoint — the "dead replica" of the chaos tests: the shard never
// sees the request and the envelope fails over.
func DropEndpoint(endpoint string) {
	Arm(&Injector{DropProbe: func(ep string) bool { return ep == endpoint }})
}

// ResetEndpoint arms an injector that resets every probe attempt against the
// given endpoint after the shard served it — the mid-query connection reset
// of the chaos tests.
func ResetEndpoint(endpoint string) {
	Arm(&Injector{ResetConn: func(ep string) bool { return ep == endpoint }})
}

// SlowEndpoint arms an injector that imposes delay on every probe attempt
// against the given endpoint — the slow remote shard of the chaos tests,
// wide enough to trip deadlines or hedging depending on the query budget.
func SlowEndpoint(endpoint string, delay time.Duration) {
	Arm(&Injector{DelayProbe: func(ep string) time.Duration {
		if ep == endpoint {
			return delay
		}
		return 0
	}})
}
