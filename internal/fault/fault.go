// Package fault carries the control-flow payloads of cooperative query
// cancellation and a deterministic fault-injection harness for chaos tests.
//
// Cancellation in this engine unwinds by panic: block-granularity
// checkpoints (locality block loops, the parallel tuple-group driver, the
// sharded scatter workers) panic with a *Cancel payload the moment the bound
// context is done, deferred releases return every pooled handle on the way
// up, and the public entry points recover the payload into a typed error.
// Worker goroutines never let a panic cross their goroutine boundary:
// recovered values are wrapped into *Panic (stack captured at the fault
// site), parked in a Slot, and re-panicked on the caller's goroutine after
// counters are folded and handles are released.
//
// The injection side is intentionally global and atomic: production code
// pays one atomic load (Armed) per checkpoint when nothing is armed, and the
// chaos tests arm process-wide hooks that fire deterministically — the N-th
// checkpoint, a specific shard's probe, a pool acquisition — to place a
// cancellation or a crash at an exact point of a query's execution.
package fault

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Cancel is the panic payload of a cooperative cancellation unwind. Err is
// the cause (a context error, possibly wrapped with pool-exhaustion detail);
// the public API layer recovers the payload and wraps Err into its typed
// cancellation error.
type Cancel struct{ Err error }

// Panic is a worker panic captured at the fault site: the original panic
// value plus the faulting goroutine's stack. The public API layer recovers
// it into a typed error instead of crashing the process.
type Panic struct {
	Value any
	Stack []byte
}

// WrapPanic normalizes a recovered value for cross-goroutine transport:
// engine payloads (*Cancel, *Panic) pass through, anything else — a real
// bug or an injected crash — is wrapped into *Panic with the current
// goroutine's stack, so the trace points at the fault, not at the re-panic.
func WrapPanic(r any) any {
	switch r.(type) {
	case *Cancel, *Panic:
		return r
	}
	return &Panic{Value: r, Stack: debug.Stack()}
}

// Slot collects the first fault of a worker crew for re-panicking on the
// caller's goroutine. *Panic outranks *Cancel: when one worker hits a real
// crash while another merely observes the (consequent) cancellation, the
// crash must surface rather than be masked.
type Slot struct {
	mu  sync.Mutex
	val any
}

// Store records r (pass values through WrapPanic first). The first fault
// wins, except that a *Panic replaces a previously stored *Cancel.
func (s *Slot) Store(r any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.val == nil {
		s.val = r
		return
	}
	if _, held := s.val.(*Cancel); held {
		if _, incoming := r.(*Cancel); !incoming {
			s.val = r
		}
	}
}

// Load returns the recorded fault, or nil when the crew finished clean. It
// is called after the crew is joined; the WaitGroup provides the
// happens-before edge.
func (s *Slot) Load() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

// Injector is a set of deterministic hooks the engine invokes while armed.
// Any hook may be nil. Hooks run on the query's goroutine at well-defined
// points, so they can cancel a context, sleep, or panic to place a fault at
// an exact execution step.
type Injector struct {
	// BlockScan fires at every cancellation checkpoint, with the 1-based
	// count of checkpoints since Arm. Checkpoints are per block span (never
	// per point), so n addresses "the N-th block scanned process-wide".
	BlockScan func(n uint64)

	// ShardProbe fires before a probe consults shard s's searcher.
	ShardProbe func(s int)

	// PoolAcquire fires when a context-aware pool acquisition starts.
	PoolAcquire func()
}

var (
	armed    atomic.Bool
	injector atomic.Pointer[Injector]
	scans    atomic.Uint64
)

// Armed reports whether an injector is installed. It is the one-atomic-load
// fast path production checkpoints take; everything else in this file is
// off that path.
func Armed() bool { return armed.Load() }

// Arm installs inj process-wide and resets the checkpoint counter. Chaos
// tests arm, run one scenario, and Disarm (they cannot run in parallel with
// each other — the harness is deliberately global).
func Arm(inj *Injector) {
	scans.Store(0)
	injector.Store(inj)
	armed.Store(true)
}

// Disarm removes the installed injector.
func Disarm() {
	armed.Store(false)
	injector.Store(nil)
}

// OnBlockScan invokes the BlockScan hook. Call only when Armed.
func OnBlockScan() {
	inj := injector.Load()
	if inj == nil || inj.BlockScan == nil {
		return
	}
	inj.BlockScan(scans.Add(1))
}

// OnShardProbe invokes the ShardProbe hook. Call only when Armed.
func OnShardProbe(s int) {
	inj := injector.Load()
	if inj == nil || inj.ShardProbe == nil {
		return
	}
	inj.ShardProbe(s)
}

// OnPoolAcquire invokes the PoolAcquire hook. Call only when Armed.
func OnPoolAcquire() {
	inj := injector.Load()
	if inj == nil || inj.PoolAcquire == nil {
		return
	}
	inj.PoolAcquire()
}

// CancelAfterBlocks arms an injector that invokes cancel on the n-th
// checkpoint (and every one after, making the scenario robust to exact
// checkpoint counts shifting with data layout).
func CancelAfterBlocks(n uint64, cancel func()) {
	Arm(&Injector{BlockScan: func(c uint64) {
		if c >= n {
			cancel()
		}
	}})
}

// PanicAtBlock arms an injector that panics with value at the m-th
// checkpoint — the deterministic "poisoned block" of the chaos tests.
func PanicAtBlock(m uint64, value any) {
	Arm(&Injector{BlockScan: func(c uint64) {
		if c == m {
			panic(value)
		}
	}})
}

// SlowShardProbe arms an injector that sleeps for delay before every probe
// of shard s, widening the window for a deadline to expire mid-scatter.
func SlowShardProbe(s int, delay time.Duration) {
	Arm(&Injector{ShardProbe: func(probed int) {
		if probed == s {
			time.Sleep(delay)
		}
	}})
}
