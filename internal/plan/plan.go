// Package plan provides the query-evaluation-plan layer above the core
// algorithms: operator trees with EXPLAIN rendering, validity rules for the
// rewrites the paper analyzes (most importantly, the *invalid* pushdown of a
// kNN-select below the inner relation of a kNN-join), and the optimizer
// heuristics the paper prescribes.
//
// Paper mapping ("Spatial Queries with Two kNN Predicates", Aly, Aref,
// Ouzzani; VLDB 2012):
//
//   - Section 3 / Figures 1–3: ValidateSelectPushdown encodes which side of
//     a kNN-join admits a select pushdown (outer yes, inner no);
//   - Section 3.3: ChooseSelectJoinAlgorithm picks Counting for small outer
//     relations and Block-Marking for large ones;
//   - Section 4.1.2: ChooseJoinOrder starts the unchained pair with the
//     more clustered outer relation, and skips preprocessing entirely when
//     both look uniform;
//   - Section 4.2 / Figure 13: ChooseChainedQEP defaults to the nested
//     join with the neighborhood cache, the paper's winner.
//
// The package is deliberately free of execution logic; it describes and
// decides, the core package executes. This keeps plan construction cheap
// enough to run on every query for EXPLAIN output.
package plan

import (
	"fmt"
	"strings"
)

// Node is one operator of a query evaluation plan.
type Node struct {
	// Op is the operator name, e.g. "kNN-join" or "∩B".
	Op string

	// Detail carries operator parameters, e.g. "k=2" or
	// "algorithm=Block-Marking".
	Detail string

	// Children are the operator inputs, outer (left) input first.
	Children []*Node
}

// NewNode constructs an operator node.
func NewNode(op, detail string, children ...*Node) *Node {
	return &Node{Op: op, Detail: detail, Children: children}
}

// Scan returns a leaf node reading a named relation.
func Scan(relation string, cardinality int) *Node {
	return NewNode("scan", fmt.Sprintf("%s (%d points)", relation, cardinality))
}

// Explain renders the plan as an indented operator tree, root first —
// the shape of a conventional EXPLAIN output.
func (n *Node) Explain() string {
	var sb strings.Builder
	n.render(&sb, 0)
	return sb.String()
}

func (n *Node) render(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	if depth > 0 {
		sb.WriteString("-> ")
	}
	sb.WriteString(n.Op)
	if n.Detail != "" {
		sb.WriteString(" [")
		sb.WriteString(n.Detail)
		sb.WriteString("]")
	}
	sb.WriteString("\n")
	for _, c := range n.Children {
		c.render(sb, depth+1)
	}
}

// String implements fmt.Stringer.
func (n *Node) String() string { return n.Explain() }
