package plan

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExplainRendering(t *testing.T) {
	n := NewNode("∩", "intersect",
		NewNode("kNN-join", "k=2", Scan("E1", 100), Scan("E2", 200)),
		NewNode("kNN-select", "k=3", Scan("E2", 200)))
	out := n.Explain()

	for _, want := range []string{"∩", "kNN-join", "kNN-select", "E1 (100 points)", "E2 (200 points)", "-> "} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	if n.String() != out {
		t.Errorf("String and Explain must agree")
	}

	// Indentation must increase with depth.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 plan lines, got %d:\n%s", len(lines), out)
	}
	if strings.HasPrefix(lines[0], " ") {
		t.Errorf("root must not be indented")
	}
	if !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("child must be indented")
	}
}

func TestValidateSelectPushdown(t *testing.T) {
	if err := ValidateSelectPushdown(OuterSide); err != nil {
		t.Errorf("outer pushdown must be valid, got %v", err)
	}
	err := ValidateSelectPushdown(InnerSide)
	if err == nil {
		t.Fatalf("inner pushdown must be invalid")
	}
	var ire *InvalidRewriteError
	if !errors.As(err, &ire) {
		t.Fatalf("error must be an *InvalidRewriteError, got %T", err)
	}
	if !strings.Contains(ire.Error(), "Counting") {
		t.Errorf("error should point at the correct algorithms: %v", ire)
	}
}

func TestValidateOtherRewrites(t *testing.T) {
	if err := ValidateUnchainedSequential(); err == nil {
		t.Errorf("sequential unchained evaluation must be invalid")
	}
	if err := ValidateTwoSelectsSequential(); err == nil {
		t.Errorf("sequential two-select evaluation must be invalid")
	}
	if err := ValidateChainedReorder(); err != nil {
		t.Errorf("chained reorder must be valid, got %v", err)
	}
}

func TestJoinSideString(t *testing.T) {
	if OuterSide.String() != "outer" || InnerSide.String() != "inner" {
		t.Errorf("JoinSide strings wrong: %v / %v", OuterSide, InnerSide)
	}
}

func TestChooseSelectJoinAlgorithm(t *testing.T) {
	if alg, _ := ChooseSelectJoinAlgorithm(BlockMarking, 10, 0); alg != BlockMarking {
		t.Errorf("explicit choice must pass through, got %v", alg)
	}
	if alg, reason := ChooseSelectJoinAlgorithm(Auto, 100, 0); alg != Counting || reason == "" {
		t.Errorf("small outer must choose Counting, got %v (%s)", alg, reason)
	}
	if alg, _ := ChooseSelectJoinAlgorithm(Auto, DefaultCountingThreshold+1, 0); alg != BlockMarking {
		t.Errorf("large outer must choose Block-Marking, got %v", alg)
	}
	if alg, _ := ChooseSelectJoinAlgorithm(Auto, 500, 100); alg != BlockMarking {
		t.Errorf("custom threshold must be honored, got %v", alg)
	}
}

func TestChooseJoinOrder(t *testing.T) {
	if order, _, _ := ChooseJoinOrder(core.OrderCBFirst, 0.1, 0.9); order != core.OrderCBFirst {
		t.Errorf("explicit order must pass through")
	}
	order, prune, _ := ChooseJoinOrder(core.OrderAuto, 0.05, 0.9)
	if order != core.OrderABFirst || !prune {
		t.Errorf("clustered A must start with (A⋈B) and prune, got %v prune=%v", order, prune)
	}
	order, prune, _ = ChooseJoinOrder(core.OrderAuto, 0.9, 0.05)
	if order != core.OrderCBFirst || !prune {
		t.Errorf("clustered C must start with (C⋈B) and prune, got %v prune=%v", order, prune)
	}
	_, prune, reason := ChooseJoinOrder(core.OrderAuto, 0.95, 0.92)
	if prune {
		t.Errorf("both uniform must disable pruning: %s", reason)
	}
}

func TestChooseChainedQEP(t *testing.T) {
	if qep, _ := ChooseChainedQEP(core.ChainedRightDeep); qep != core.ChainedRightDeep {
		t.Errorf("explicit QEP must pass through")
	}
	if qep, reason := ChooseChainedQEP(core.ChainedAuto); qep != core.ChainedNestedJoinCached || reason == "" {
		t.Errorf("auto must choose nested+cache, got %v", qep)
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range []Algorithm{Auto, Conceptual, Counting, BlockMarking} {
		if a.String() == "" {
			t.Errorf("Algorithm %d has empty String()", a)
		}
	}
}

func TestPlanBuilders(t *testing.T) {
	cases := []struct {
		name string
		node *Node
		want []string
	}{
		{"select-inner-conceptual", SelectInnerJoinPlan(Conceptual, "M", "H", 10, 20, 2, 3), []string{"∩", "kNN-join", "kNN-select"}},
		{"select-inner-counting", SelectInnerJoinPlan(Counting, "M", "H", 10, 20, 2, 3), []string{"counting"}},
		{"select-inner-bm", SelectInnerJoinPlan(BlockMarking, "M", "H", 10, 20, 2, 3), []string{"block-marking", "mark-blocks"}},
		{"select-outer", SelectOuterJoinPlan("M", "H", 10, 20, 3, 2), []string{"pushdown valid"}},
		{"unchained-pruned", UnchainedPlan(core.OrderABFirst, true, "A", "B", "C", 1, 2, 3, 2, 2), []string{"∩B", "candidate/safe"}},
		{"unchained-plain", UnchainedPlan(core.OrderABFirst, false, "A", "B", "C", 1, 2, 3, 2, 2), []string{"∩B"}},
		{"unchained-cb", UnchainedPlan(core.OrderCBFirst, true, "A", "B", "C", 1, 2, 3, 2, 2), []string{"contributing blocks of A"}},
		{"chained-rd", ChainedPlan(core.ChainedRightDeep, "A", "B", "C", 1, 2, 3, 2, 2), []string{"materialized"}},
		{"chained-ji", ChainedPlan(core.ChainedJoinIntersection, "A", "B", "C", 1, 2, 3, 2, 2), []string{"∩B"}},
		{"chained-nested", ChainedPlan(core.ChainedNestedJoinCached, "A", "B", "C", 1, 2, 3, 2, 2), []string{"cached"}},
		{"two-selects", TwoSelectsPlan(true, "E", 100, 5, 50), []string{"clipped", "smaller k first"}},
		{"two-selects-conc", TwoSelectsPlan(false, "E", 100, 5, 50), []string{"full locality"}},
		{"range-counting", RangeInnerJoinPlan(Counting, "M", "H", 10, 20, 2, "[0,1]x[0,1]"), []string{"range", "counting"}},
		{"range-conceptual", RangeInnerJoinPlan(Conceptual, "M", "H", 10, 20, 2, "[0,1]x[0,1]"), []string{"rectangle"}},
	}
	for _, c := range cases {
		out := c.node.Explain()
		for _, want := range c.want {
			if !strings.Contains(out, want) {
				t.Errorf("%s: plan missing %q:\n%s", c.name, want, out)
			}
		}
	}
}
