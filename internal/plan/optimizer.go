package plan

import (
	"fmt"

	"repro/internal/core"
)

// Algorithm identifies an evaluation strategy for a select-inner-join query.
type Algorithm int

// The select-inner-join strategies.
const (
	// Auto lets the optimizer choose by outer cardinality.
	Auto Algorithm = iota

	// Conceptual evaluates the full join, the full select, and intersects.
	Conceptual

	// Counting is the per-tuple pruning algorithm (Procedure 1).
	Counting

	// BlockMarking is the per-block pruning algorithm (Procedures 2–3).
	BlockMarking
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Conceptual:
		return "conceptual"
	case Counting:
		return "counting"
	case BlockMarking:
		return "block-marking"
	default:
		return "auto"
	}
}

// DefaultCountingThreshold is the outer-relation cardinality below which
// Auto picks Counting for select-inner-join queries. Section 3.3 of the
// paper: Counting wins at low outer density (no preprocessing phase),
// Block-Marking at high density (per-block instead of per-tuple overhead).
// The default reflects the crossover region observed in this repository's
// Figure 20/21 reproduction; override per query with the public API option.
const DefaultCountingThreshold = 30000

// ChooseSelectJoinAlgorithm resolves Auto for a select-inner-join over an
// outer relation of the given cardinality. Explicit choices pass through.
func ChooseSelectJoinAlgorithm(alg Algorithm, outerCard, countingThreshold int) (Algorithm, string) {
	if alg != Auto {
		return alg, "explicitly requested"
	}
	if countingThreshold <= 0 {
		countingThreshold = DefaultCountingThreshold
	}
	if outerCard <= countingThreshold {
		return Counting, fmt.Sprintf("outer cardinality %d ≤ %d: per-tuple pruning beats per-block preprocessing (§3.3)",
			outerCard, countingThreshold)
	}
	return BlockMarking, fmt.Sprintf("outer cardinality %d > %d: per-block pruning amortizes preprocessing (§3.3)",
		outerCard, countingThreshold)
}

// UniformCoverageCutoff is the cluster-coverage fraction above which a
// relation is treated as uniformly distributed for join ordering. Section
// 4.1.2: when both outer relations are uniform, Block-Marking preprocessing
// has no payoff and the conceptual independent evaluation is preferred.
const UniformCoverageCutoff = 0.85

// ChooseJoinOrder resolves the order of two unchained kNN-joins from the
// cluster coverage of their outer relations (Section 4.1.2): start with the
// more clustered (smaller-coverage) relation. The second return value
// reports whether Block-Marking is worth running at all — false when both
// relations look uniform.
func ChooseJoinOrder(order core.JoinOrder, covA, covC float64) (core.JoinOrder, bool, string) {
	if order != core.OrderAuto {
		return order, true, "explicitly requested"
	}
	bothUniform := covA >= UniformCoverageCutoff && covC >= UniformCoverageCutoff
	if bothUniform {
		return core.OrderABFirst, false,
			fmt.Sprintf("coverage A=%.2f, C=%.2f: both uniform, preprocessing has no payoff; independent evaluation (§4.1.2)", covA, covC)
	}
	if covA <= covC {
		return core.OrderABFirst, true,
			fmt.Sprintf("coverage A=%.2f ≤ C=%.2f: start with the more clustered relation (§4.1.2)", covA, covC)
	}
	return core.OrderCBFirst, true,
		fmt.Sprintf("coverage C=%.2f < A=%.2f: start with the more clustered relation (§4.1.2)", covC, covA)
}

// ChooseChainedQEP resolves the chained-join plan. Auto always selects the
// nested join with neighborhood caching — the paper's uniform winner
// (Section 4.2, Figures 24–25).
func ChooseChainedQEP(qep core.ChainedQEP) (core.ChainedQEP, string) {
	if qep != core.ChainedAuto {
		return qep, "explicitly requested"
	}
	return core.ChainedNestedJoinCached,
		"nested join avoids neighborhoods for unselected b; cache absorbs repeats (§4.2)"
}
