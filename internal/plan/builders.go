package plan

import (
	"fmt"

	"repro/internal/core"
)

// This file builds the EXPLAIN trees for every query shape the repository
// evaluates. The trees mirror the paper's QEP figures: conceptual plans show
// the full operators being intersected; optimized plans show the pruning
// operator that replaces them.

// SelectInnerJoinPlan describes a select-inner-join evaluation.
func SelectInnerJoinPlan(alg Algorithm, outer, inner string, outerCard, innerCard, kJoin, kSel int) *Node {
	sel := NewNode("kNN-select", fmt.Sprintf("k=%d, relation=%s (inner of join; pushdown invalid)", kSel, inner),
		Scan(inner, innerCard))
	switch alg {
	case Counting:
		return NewNode("knn-join⋈select", fmt.Sprintf("algorithm=counting, k⋈=%d", kJoin),
			Scan(outer, outerCard), sel)
	case BlockMarking:
		return NewNode("knn-join⋈select", fmt.Sprintf("algorithm=block-marking, k⋈=%d", kJoin),
			NewNode("mark-blocks", "contour preprocessing over outer blocks", Scan(outer, outerCard)), sel)
	default:
		join := NewNode("kNN-join", fmt.Sprintf("k=%d", kJoin), Scan(outer, outerCard), Scan(inner, innerCard))
		return NewNode("∩", "pairs whose inner point survives the select", join, sel)
	}
}

// SelectOuterJoinPlan describes the valid pushed-down plan for a select on
// the outer relation.
func SelectOuterJoinPlan(outer, inner string, outerCard, innerCard, kSel, kJoin int) *Node {
	sel := NewNode("kNN-select", fmt.Sprintf("k=%d (outer of join; pushdown valid)", kSel), Scan(outer, outerCard))
	return NewNode("kNN-join", fmt.Sprintf("k=%d", kJoin), sel, Scan(inner, innerCard))
}

// UnchainedPlan describes a two-unchained-joins evaluation.
func UnchainedPlan(order core.JoinOrder, pruned bool, a, b, c string, cardA, cardB, cardC, kAB, kCB int) *Node {
	ab := NewNode("kNN-join", fmt.Sprintf("k=%d", kAB), Scan(a, cardA), Scan(b, cardB))
	cb := NewNode("kNN-join", fmt.Sprintf("k=%d", kCB), Scan(c, cardC), Scan(b, cardB))
	if pruned {
		switch order {
		case core.OrderCBFirst:
			ab = NewNode("kNN-join", fmt.Sprintf("k=%d, pruned by candidate/safe marks from (C⋈B)", kAB),
				NewNode("mark-blocks", "contributing blocks of A", Scan(a, cardA)), Scan(b, cardB))
		default:
			cb = NewNode("kNN-join", fmt.Sprintf("k=%d, pruned by candidate/safe marks from (A⋈B)", kCB),
				NewNode("mark-blocks", "contributing blocks of C", Scan(c, cardC)), Scan(b, cardB))
		}
	}
	return NewNode("∩B", "match pairs on the shared B component", ab, cb)
}

// ChainedPlan describes a two-chained-joins evaluation.
func ChainedPlan(qep core.ChainedQEP, a, b, c string, cardA, cardB, cardC, kAB, kBC int) *Node {
	switch qep {
	case core.ChainedRightDeep:
		bc := NewNode("kNN-join", fmt.Sprintf("k=%d (materialized)", kBC), Scan(b, cardB), Scan(c, cardC))
		return NewNode("kNN-join", fmt.Sprintf("k=%d", kAB), Scan(a, cardA), bc)
	case core.ChainedJoinIntersection:
		ab := NewNode("kNN-join", fmt.Sprintf("k=%d", kAB), Scan(a, cardA), Scan(b, cardB))
		bc := NewNode("kNN-join", fmt.Sprintf("k=%d", kBC), Scan(b, cardB), Scan(c, cardC))
		return NewNode("∩B", "match pairs on the shared B component", ab, bc)
	default:
		detail := fmt.Sprintf("k=%d, neighborhoods only for joined b", kBC)
		if qep == core.ChainedNestedJoinCached || qep == core.ChainedAuto {
			detail += ", cached"
		}
		ab := NewNode("kNN-join", fmt.Sprintf("k=%d", kAB), Scan(a, cardA), Scan(b, cardB))
		return NewNode("kNN-join", detail, ab, Scan(c, cardC))
	}
}

// TwoSelectsPlan describes a two-kNN-selects evaluation.
func TwoSelectsPlan(optimized bool, rel string, card, k1, k2 int) *Node {
	s1 := NewNode("kNN-select", fmt.Sprintf("k=%d (smaller k first)", min(k1, k2)), Scan(rel, card))
	var s2 *Node
	if optimized {
		s2 = NewNode("kNN-select", fmt.Sprintf("k=%d, locality clipped to the smaller neighborhood's search threshold", max(k1, k2)),
			Scan(rel, card))
	} else {
		s2 = NewNode("kNN-select", fmt.Sprintf("k=%d (full locality)", max(k1, k2)), Scan(rel, card))
	}
	return NewNode("∩", "points in both neighborhoods", s1, s2)
}

// RangeInnerJoinPlan describes the footnote-1 range-selection variant.
func RangeInnerJoinPlan(alg Algorithm, outer, inner string, outerCard, innerCard, kJoin int, rect string) *Node {
	sel := NewNode("range-select", fmt.Sprintf("rect=%s (inner of join; pushdown invalid)", rect), Scan(inner, innerCard))
	switch alg {
	case Counting:
		return NewNode("knn-join⋈range", fmt.Sprintf("algorithm=counting, k⋈=%d", kJoin), Scan(outer, outerCard), sel)
	case BlockMarking:
		return NewNode("knn-join⋈range", fmt.Sprintf("algorithm=block-marking, k⋈=%d", kJoin),
			NewNode("mark-blocks", "contour preprocessing over outer blocks", Scan(outer, outerCard)), sel)
	default:
		join := NewNode("kNN-join", fmt.Sprintf("k=%d", kJoin), Scan(outer, outerCard), Scan(inner, innerCard))
		return NewNode("∩", "pairs whose inner point lies in the rectangle", join, sel)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
