package plan

import "fmt"

// JoinSide identifies which input of a kNN-join a rewrite targets. The
// kNN-join is asymmetric (the outer relation probes, the inner relation
// supplies neighborhoods), so rewrite validity depends on the side.
type JoinSide int

// The two inputs of a kNN-join.
const (
	OuterSide JoinSide = iota
	InnerSide
)

// String implements fmt.Stringer.
func (s JoinSide) String() string {
	if s == InnerSide {
		return "inner"
	}
	return "outer"
}

// InvalidRewriteError explains why a proposed plan transformation would
// change query results. The message cites the paper's rule so EXPLAIN
// consumers understand the optimizer's refusal.
type InvalidRewriteError struct {
	// Rewrite names the attempted transformation.
	Rewrite string

	// Reason explains the semantic breakage.
	Reason string
}

// Error implements the error interface.
func (e *InvalidRewriteError) Error() string {
	return fmt.Sprintf("plan: invalid rewrite %q: %s", e.Rewrite, e.Reason)
}

// ValidateSelectPushdown decides whether a selection (kNN or range) may be
// pushed below the given side of a kNN-join. Pushing below the outer
// relation is always valid; pushing below the inner relation is invalid
// because it shrinks every probe's neighborhood candidate set (Section 3 of
// the paper, Figures 1–2).
func ValidateSelectPushdown(side JoinSide) error {
	if side == OuterSide {
		return nil
	}
	return &InvalidRewriteError{
		Rewrite: "push selection below the inner relation of a kNN-join",
		Reason: "the join would compute neighborhoods over only the selected points, " +
			"so (E1 ⋈kNN E2) ∩ (E1 × σ(E2)) ≢ E1 ⋈kNN σ(E2); " +
			"use the Counting or Block-Marking algorithm instead",
	}
}

// ValidateUnchainedSequential decides whether one of two unchained kNN-joins
// may be evaluated over the other's output. It may not: either order filters
// the shared inner relation and changes the answer (Section 4.1, Figures
// 8–9).
func ValidateUnchainedSequential() error {
	return &InvalidRewriteError{
		Rewrite: "evaluate one unchained kNN-join over the output of the other",
		Reason: "each join must see the full inner relation; evaluate both joins " +
			"independently and intersect on the shared relation (∩B), " +
			"optionally pruning with Candidate/Safe block marking",
	}
}

// ValidateTwoSelectsSequential decides whether one kNN-select may be
// evaluated over the output of another. It may not: the second select would
// choose among only k survivors (Section 5, Figures 14–15).
func ValidateTwoSelectsSequential() error {
	return &InvalidRewriteError{
		Rewrite: "evaluate one kNN-select over the output of another",
		Reason: "the second predicate must select from the full relation; evaluate " +
			"both predicates independently and intersect, or use the 2-kNN-select " +
			"algorithm",
	}
}

// ValidateChainedReorder decides whether two chained kNN-joins A→B→C may be
// reordered/associated freely. They may: the first join acts as a selection
// on the outer relation of the second, which is a valid pushdown (Section
// 4.2, Figure 13), so this always returns nil. It exists so the optimizer
// treats chained and unchained shapes through one interface.
func ValidateChainedReorder() error { return nil }
