package continuous_test

import (
	"math/rand"
	"testing"

	"repro/internal/continuous"
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/testutil"
)

var contBounds = geom.NewRect(0, 0, 1000, 1000)

func newRelation(t *testing.T, pts []geom.Point) *continuous.Relation {
	t.Helper()
	rel, err := continuous.NewRelation(contBounds, 16, 16, pts)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestSelectMonitorMatchesRecompute is the central continuous-query
// property: after every mutation, the monitor's answer equals a fresh
// neighborhood computation over the current point set.
func TestSelectMonitorMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1401))
	pts := testutil.UniformPoints(300, contBounds, 1402)
	live := append([]geom.Point{}, pts...)

	rel := newRelation(t, pts)
	f := geom.Point{X: 500, Y: 500}
	const k = 12
	m, err := rel.MonitorSelect(f, k)
	if err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 400; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			if err := rel.Insert(p); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		} else {
			i := rng.Intn(len(live))
			p := live[i]
			if !rel.Remove(p) {
				t.Fatalf("step %d: Remove(%v) found nothing", step, p)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}

		want := locality.NaiveKNN(live, f, k)
		got := m.Current()
		if len(got) != len(want.Points) {
			t.Fatalf("step %d: monitor holds %d points, recompute %d", step, len(got), len(want.Points))
		}
		for i := range got {
			if got[i] != want.Points[i] {
				t.Fatalf("step %d: monitor[%d] = %v, recompute %v", step, i, got[i], want.Points[i])
			}
		}
	}
	if m.Stats().Neighborhoods == 0 {
		t.Errorf("monitor should have recorded neighborhood computations")
	}
}

// TestSelectMonitorEvents checks the event stream: every Added/Removed event
// corresponds to an actual membership change, and replaying events over the
// initial answer reproduces the final answer.
func TestSelectMonitorEvents(t *testing.T) {
	pts := testutil.UniformPoints(100, contBounds, 1411)
	rel := newRelation(t, pts)
	f := geom.Point{X: 200, Y: 200}
	m, err := rel.MonitorSelect(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev := m.Drain(); len(ev) != 0 {
		t.Fatalf("priming must not emit events, got %v", ev)
	}

	members := make(map[geom.Point]struct{})
	for _, p := range m.Current() {
		members[p] = struct{}{}
	}

	rng := rand.New(rand.NewSource(1412))
	for step := 0; step < 150; step++ {
		// Bias insertions near the focal point so the answer churns.
		p := geom.Point{X: 150 + rng.Float64()*100, Y: 150 + rng.Float64()*100}
		if err := rel.Insert(p); err != nil {
			t.Fatal(err)
		}
		for _, ev := range m.Drain() {
			switch ev.Kind {
			case continuous.Added:
				if _, ok := members[ev.Point]; ok {
					t.Fatalf("step %d: Added event for existing member %v", step, ev.Point)
				}
				members[ev.Point] = struct{}{}
			case continuous.Removed:
				if _, ok := members[ev.Point]; !ok {
					t.Fatalf("step %d: Removed event for non-member %v", step, ev.Point)
				}
				delete(members, ev.Point)
			}
		}
	}
	if len(members) != len(m.Current()) {
		t.Fatalf("event replay holds %d members, answer has %d", len(members), len(m.Current()))
	}
	for _, p := range m.Current() {
		if _, ok := members[p]; !ok {
			t.Fatalf("event replay missing member %v", p)
		}
	}
}

// TestSelectMonitorInsertionsAreCheap verifies the incremental claim: a
// burst of insertions far from the focal point triggers no neighborhood
// recomputation at all.
func TestSelectMonitorInsertionsAreCheap(t *testing.T) {
	pts := testutil.UniformPoints(200, geom.NewRect(0, 0, 100, 100), 1421)
	rel := newRelation(t, pts)
	m, err := rel.MonitorSelect(geom.Point{X: 50, Y: 50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats().Neighborhoods
	for i := 0; i < 500; i++ {
		if err := rel.Insert(geom.Point{X: 900 + float64(i%10), Y: 900}); err != nil {
			t.Fatal(err)
		}
	}
	if after := m.Stats().Neighborhoods; after != before {
		t.Fatalf("far insertions triggered %d recomputations", after-before)
	}
}

// TestTwoSelectMonitorMatchesConceptual drives random location updates and
// checks the maintained intersection against the from-scratch conceptual
// evaluation after every step.
func TestTwoSelectMonitorMatchesConceptual(t *testing.T) {
	rng := rand.New(rand.NewSource(1431))
	pts := testutil.UniformPoints(400, contBounds, 1432)
	live := append([]geom.Point{}, pts...)

	rel := newRelation(t, pts)
	f1 := geom.Point{X: 480, Y: 500}
	f2 := geom.Point{X: 530, Y: 470}
	k1, k2 := 10, 40
	tm, err := rel.MonitorTwoSelects(f1, k1, f2, k2)
	if err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 250; step++ {
		// Moves concentrated around the focal points churn both answers.
		i := rng.Intn(len(live))
		from := live[i]
		to := geom.Point{X: 400 + rng.Float64()*250, Y: 400 + rng.Float64()*250}
		if err := rel.Move(from, to); err != nil {
			t.Fatal(err)
		}
		live[i] = to

		nbr1 := locality.NaiveKNN(live, f1, k1)
		nbr2 := locality.NaiveKNN(live, f2, k2)
		want := nbr1.Intersect(nbr2)
		got := tm.Current()
		if len(got) != len(want) {
			t.Fatalf("step %d: intersection %d points, recompute %d", step, len(got), len(want))
		}
		wantSet := make(map[geom.Point]struct{}, len(want))
		for _, p := range want {
			wantSet[p] = struct{}{}
		}
		for _, p := range got {
			if _, ok := wantSet[p]; !ok {
				t.Fatalf("step %d: maintained intersection holds %v, recompute does not", step, p)
			}
		}
	}
}

// TestTwoSelectMonitorEvents checks the intersection event stream replays
// to the final answer.
func TestTwoSelectMonitorEvents(t *testing.T) {
	pts := testutil.UniformPoints(300, contBounds, 1441)
	rel := newRelation(t, pts)
	tm, err := rel.MonitorTwoSelects(geom.Point{X: 500, Y: 500}, 8, geom.Point{X: 520, Y: 480}, 30)
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[geom.Point]struct{})
	for _, p := range tm.Current() {
		members[p] = struct{}{}
	}
	if ev := tm.Drain(); len(ev) != 0 {
		t.Fatalf("priming must not emit events")
	}

	rng := rand.New(rand.NewSource(1442))
	for step := 0; step < 120; step++ {
		p := geom.Point{X: 450 + rng.Float64()*120, Y: 430 + rng.Float64()*120}
		if err := rel.Insert(p); err != nil {
			t.Fatal(err)
		}
		for _, ev := range tm.Drain() {
			if ev.Kind == continuous.Added {
				members[ev.Point] = struct{}{}
			} else {
				delete(members, ev.Point)
			}
		}
	}
	if len(members) != len(tm.Current()) {
		t.Fatalf("replay holds %d members, answer %d", len(members), len(tm.Current()))
	}
}

func TestRelationValidation(t *testing.T) {
	if _, err := continuous.NewRelation(geom.Rect{}, 4, 4, nil); err == nil {
		t.Errorf("zero bounds must error")
	}
	if _, err := continuous.NewRelation(contBounds, 0, 4, nil); err == nil {
		t.Errorf("zero dims must error")
	}
	rel := newRelation(t, nil)
	if err := rel.Insert(geom.Point{X: -5, Y: 0}); err == nil {
		t.Errorf("insert outside bounds must error")
	}
	if rel.Remove(geom.Point{X: 1, Y: 1}) {
		t.Errorf("removing a missing point must report false")
	}
	if _, err := rel.MonitorSelect(geom.Point{}, 0); err == nil {
		t.Errorf("k=0 monitor must error")
	}
	if err := rel.Move(geom.Point{X: 1, Y: 1}, geom.Point{X: 2, Y: 2}); err == nil {
		t.Errorf("moving a missing point must error")
	}
}

func TestMonitorWithDuplicates(t *testing.T) {
	// Two instances at one coordinate inside the answer: removing one must
	// keep the answer unchanged; removing the second must evict it.
	pts := []geom.Point{{X: 10, Y: 10}, {X: 10, Y: 10}, {X: 90, Y: 90}, {X: 80, Y: 80}}
	rel := newRelation(t, pts)
	f := geom.Point{X: 0, Y: 0}
	m, err := rel.MonitorSelect(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Answer: the two duplicate instances at (10,10).
	if got := m.Current(); len(got) != 2 || got[0] != (geom.Point{X: 10, Y: 10}) {
		t.Fatalf("initial answer %v", got)
	}

	rel.Remove(geom.Point{X: 10, Y: 10})
	got := m.Current()
	if len(got) != 2 || got[0] != (geom.Point{X: 10, Y: 10}) || got[1] == (geom.Point{X: 10, Y: 10}) {
		t.Fatalf("after first removal: %v, want one (10,10) instance plus (80,80)", got)
	}

	rel.Remove(geom.Point{X: 10, Y: 10})
	got = m.Current()
	for _, p := range got {
		if p == (geom.Point{X: 10, Y: 10}) {
			t.Fatalf("after second removal the duplicate must be gone: %v", got)
		}
	}
}

func TestEventStringers(t *testing.T) {
	ev := continuous.Event{Kind: continuous.Added, Point: geom.Point{X: 1, Y: 2}}
	if ev.String() == "" || continuous.Removed.String() == "" {
		t.Errorf("stringers must not be empty")
	}
}
