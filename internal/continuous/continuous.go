// Package continuous provides incremental evaluation of kNN-select
// predicates — and of the two-kNN-select query — over a changing point set.
// The paper's Section 7 names "incremental evaluation of continuous queries
// with two kNN predicates" as future work; this package implements the
// snapshot-to-continuous step for the select/select case, the combination
// whose one-shot form Procedure 5 optimizes.
//
// The model: a mutable relation (grid.Dynamic, whose cells own private
// columnar point stores so mutations stay O(1) while scans run over flat
// X/Y arrays) receives point insertions and removals (e.g. vehicles
// reporting new positions). Each registered monitor maintains its
// predicate's current answer and emits change events instead of
// recomputing from scratch:
//
//   - an insertion enters a neighborhood iff it beats the current k-th
//     neighbor (O(k) check, no index traversal);
//   - a removal triggers a fresh neighborhood computation only when the
//     removed point was a member (removals of non-members are free);
//   - the two-select monitor derives intersection changes from the two
//     membership deltas alone.
//
// Monitors are not safe for concurrent use; updates and reads must be
// serialized by the caller, matching the single-writer shape of a
// location-update stream.
package continuous

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/index/grid"
	"repro/internal/locality"
	"repro/internal/stats"
)

// EventKind classifies a change to a monitored answer set.
type EventKind int

// The event kinds.
const (
	// Added reports a point entering the answer.
	Added EventKind = iota

	// Removed reports a point leaving the answer.
	Removed
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k == Removed {
		return "removed"
	}
	return "added"
}

// Event is one change to a monitored answer set.
type Event struct {
	Kind  EventKind
	Point geom.Point
}

// String implements fmt.Stringer.
func (e Event) String() string { return fmt.Sprintf("%s %v", e.Kind, e.Point) }

// Relation is a mutable point set shared by any number of monitors. Every
// mutation must go through Insert/Remove so all registered monitors observe
// it.
type Relation struct {
	ix       *grid.Dynamic
	s        *locality.Searcher
	monitors []monitor
}

// monitor is the internal update interface of registered predicates.
type monitor interface {
	onInsert(p geom.Point)
	onRemove(p geom.Point)
}

// NewRelation builds a mutable relation over bounds with a cols x rows
// grid, pre-populated with pts.
func NewRelation(bounds geom.Rect, cols, rows int, pts []geom.Point) (*Relation, error) {
	ix, err := grid.NewDynamic(bounds, cols, rows, pts)
	if err != nil {
		return nil, err
	}
	return &Relation{ix: ix, s: locality.NewSearcher(ix)}, nil
}

// Len returns the current cardinality.
func (r *Relation) Len() int { return r.ix.Len() }

// Insert adds a point and updates every registered monitor.
func (r *Relation) Insert(p geom.Point) error {
	if err := r.ix.Insert(p); err != nil {
		return err
	}
	for _, m := range r.monitors {
		m.onInsert(p)
	}
	return nil
}

// Remove deletes one instance of p and updates every registered monitor.
// It reports whether an instance existed.
func (r *Relation) Remove(p geom.Point) bool {
	if !r.ix.Remove(p) {
		return false
	}
	for _, m := range r.monitors {
		m.onRemove(p)
	}
	return true
}

// Move is a convenience for location updates: remove the old position,
// insert the new one.
func (r *Relation) Move(from, to geom.Point) error {
	if !r.Remove(from) {
		return fmt.Errorf("continuous: Move source %v not present", from)
	}
	return r.Insert(to)
}

// SelectMonitor maintains σ_{k,f}(E) continuously.
type SelectMonitor struct {
	rel *Relation
	f   geom.Point
	k   int

	nbr    *locality.Neighborhood
	events []Event
	stats  stats.Counters
}

// MonitorSelect registers a continuous kNN-select over the relation and
// returns its monitor, primed with the current answer (priming emits no
// events).
func (r *Relation) MonitorSelect(f geom.Point, k int) (*SelectMonitor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("continuous: k must be positive, got %d", k)
	}
	m := &SelectMonitor{rel: r, f: f, k: k}
	// Searcher results are reusable buffers; the monitor retains (and
	// mutates) its answer indefinitely, so it keeps a private clone.
	m.nbr = r.s.Neighborhood(f, k, &m.stats).Clone()
	r.monitors = append(r.monitors, m)
	return m, nil
}

// Current returns the predicate's current answer, ascending by distance to
// the focal point. The slice is owned by the monitor.
func (m *SelectMonitor) Current() []geom.Point { return m.nbr.Points }

// Contains reports whether p is in the current answer.
func (m *SelectMonitor) Contains(p geom.Point) bool { return m.nbr.Contains(p) }

// Drain returns the events accumulated since the last call and resets the
// buffer.
func (m *SelectMonitor) Drain() []Event {
	ev := m.events
	m.events = nil
	return ev
}

// Stats returns the operation counters accumulated by the monitor,
// including the priming computation.
func (m *SelectMonitor) Stats() stats.Counters { return m.stats }

// onInsert implements monitor: the new point enters the neighborhood iff it
// ranks before the current k-th neighbor (or the neighborhood is not full).
func (m *SelectMonitor) onInsert(p geom.Point) {
	n := m.nbr
	if len(n.Points) >= m.k {
		kth := n.Points[len(n.Points)-1]
		if !p.CloserTo(m.f, kth) {
			return // ranks behind the k-th neighbor: answer unchanged
		}
	}
	// Insert p at its rank.
	pos := len(n.Points)
	for i, q := range n.Points {
		if p.CloserTo(m.f, q) {
			pos = i
			break
		}
	}
	n.Points = append(n.Points, geom.Point{})
	copy(n.Points[pos+1:], n.Points[pos:])
	n.Points[pos] = p
	n.Dists = append(n.Dists, 0)
	copy(n.Dists[pos+1:], n.Dists[pos:])
	n.Dists[pos] = p.Dist(m.f)
	m.events = append(m.events, Event{Kind: Added, Point: p})

	if len(n.Points) > m.k {
		evicted := n.Points[m.k]
		n.Points = n.Points[:m.k]
		n.Dists = n.Dists[:m.k]
		m.events = append(m.events, Event{Kind: Removed, Point: evicted})
	}
}

// onRemove implements monitor: a removal only matters when the removed
// instance was a member; the replacement neighbor requires an index search.
func (m *SelectMonitor) onRemove(p geom.Point) {
	if !m.nbr.Contains(p) {
		// With duplicate coordinates the removed instance may not be the
		// member instance, but membership is by coordinate, so a remaining
		// duplicate keeps the answer unchanged — Contains covers both.
		return
	}
	// Membership is by coordinate: if another instance with the same
	// coordinates remains in the relation, the answer is unchanged.
	old := m.nbr
	m.nbr = m.rel.s.Neighborhood(m.f, m.k, &m.stats).Clone()
	for _, q := range old.Points {
		if !m.nbr.Contains(q) {
			m.events = append(m.events, Event{Kind: Removed, Point: q})
		}
	}
	for _, q := range m.nbr.Points {
		if !old.Contains(q) {
			m.events = append(m.events, Event{Kind: Added, Point: q})
		}
	}
}

// TwoSelectMonitor maintains σ_{k1,f1}(E) ∩ σ_{k2,f2}(E) continuously by
// composing two SelectMonitors and tracking their membership deltas.
type TwoSelectMonitor struct {
	m1, m2 *SelectMonitor
	inter  map[geom.Point]struct{}
	events []Event
}

// MonitorTwoSelects registers a continuous two-kNN-select query.
func (r *Relation) MonitorTwoSelects(f1 geom.Point, k1 int, f2 geom.Point, k2 int) (*TwoSelectMonitor, error) {
	m1, err := r.MonitorSelect(f1, k1)
	if err != nil {
		return nil, err
	}
	m2, err := r.MonitorSelect(f2, k2)
	if err != nil {
		return nil, err
	}
	t := &TwoSelectMonitor{m1: m1, m2: m2, inter: make(map[geom.Point]struct{})}
	for _, p := range m1.Current() {
		if m2.Contains(p) {
			t.inter[p] = struct{}{}
		}
	}
	r.monitors = append(r.monitors, t)
	return t, nil
}

// Current returns the intersection's current answer in canonical point
// order.
func (t *TwoSelectMonitor) Current() []geom.Point {
	out := make([]geom.Point, 0, len(t.inter))
	for p := range t.inter {
		out = append(out, p)
	}
	sortPoints(out)
	return out
}

// Drain returns the intersection-change events accumulated since the last
// call and resets the buffer. The underlying per-predicate monitors retain
// their own event streams.
func (t *TwoSelectMonitor) Drain() []Event {
	ev := t.events
	t.events = nil
	return ev
}

// onInsert implements monitor. It runs AFTER the two component monitors
// (registration order), so their answers are already up to date; the
// intersection is reconciled from their membership.
func (t *TwoSelectMonitor) onInsert(geom.Point) { t.reconcile() }

// onRemove implements monitor.
func (t *TwoSelectMonitor) onRemove(geom.Point) { t.reconcile() }

// reconcile applies the component monitors' pending membership to the
// intersection set. Component answers are small (k points), so the
// reconciliation walks them directly — no index work.
func (t *TwoSelectMonitor) reconcile() {
	fresh := make(map[geom.Point]struct{})
	for _, p := range t.m1.Current() {
		if t.m2.Contains(p) {
			fresh[p] = struct{}{}
		}
	}
	for p := range t.inter {
		if _, ok := fresh[p]; !ok {
			t.events = append(t.events, Event{Kind: Removed, Point: p})
		}
	}
	for p := range fresh {
		if _, ok := t.inter[p]; !ok {
			t.events = append(t.events, Event{Kind: Added, Point: p})
		}
	}
	t.inter = fresh
}

// sortPoints orders points canonically; local copy to avoid importing core.
func sortPoints(ps []geom.Point) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Less(ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
