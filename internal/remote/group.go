package remote

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Collector accumulates per-shard failures for partial-results mode. When a
// query's context carries one (WithCollector), a remote shard whose replica
// set is exhausted degrades gracefully — the shard is recorded missing and
// contributes nothing — instead of failing the query. Without a collector
// the failure unwinds fail-closed: results are exact or the query errors.
type Collector struct {
	mu   sync.Mutex
	errs map[int]error
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{errs: make(map[int]error)} }

// Record notes shard's failure (the first error per shard is kept).
func (c *Collector) Record(shard int, err error) {
	c.mu.Lock()
	if _, ok := c.errs[shard]; !ok {
		c.errs[shard] = err
	}
	c.mu.Unlock()
}

// Missing returns the recorded shard indexes, ascending.
func (c *Collector) Missing() []int {
	c.mu.Lock()
	out := make([]int, 0, len(c.errs))
	for s := range c.errs {
		out = append(out, s)
	}
	c.mu.Unlock()
	sort.Ints(out)
	return out
}

// Errors returns a copy of the per-shard failures.
func (c *Collector) Errors() map[int]error {
	c.mu.Lock()
	out := make(map[int]error, len(c.errs))
	for s, e := range c.errs {
		out[s] = e
	}
	c.mu.Unlock()
	return out
}

// Empty reports whether no shard failed.
func (c *Collector) Empty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.errs) == 0
}

type collectorKey struct{}

// WithCollector attaches c to ctx, opting the queries run under ctx into
// partial results over remote groups.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

// CollectorFrom returns ctx's collector, or nil (fail-closed mode).
func CollectorFrom(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}

// Member is one remote shard as a scatter/gather group member: probes and
// block fetches travel through the shard's ReplicaSet envelope. It caches
// the shard's identity card and block headers from dial time (the served
// snapshot is immutable).
type Member struct {
	rs     *ReplicaSet
	info   Info
	bounds geom.Rect
	blocks []BlockHeader
}

// NewMember dials one shard's replica set: fetches and validates its
// identity card and block headers through the envelope.
func NewMember(ctx context.Context, shardIdx int, transports []ShardTransport, opts Options) (*Member, error) {
	if len(transports) == 0 {
		return nil, fmt.Errorf("remote: shard %d: no transports", shardIdx)
	}
	rs := NewReplicaSet(shardIdx, transports, opts)
	info, err := rs.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("remote: shard %d: fetching info: %w", shardIdx, err)
	}
	blocks, err := rs.Blocks(ctx)
	if err != nil {
		return nil, fmt.Errorf("remote: shard %d: fetching blocks: %w", shardIdx, err)
	}
	n := 0
	for _, b := range blocks {
		n += b.Count
	}
	if n != info.Len {
		return nil, fmt.Errorf("remote: shard %d: block headers cover %d points, info says %d", shardIdx, n, info.Len)
	}
	return &Member{rs: rs, info: *info, bounds: info.Bounds.rect(), blocks: blocks}, nil
}

// Dial builds the members of a remote group: transports[s] is shard s's
// replica list (preferred first). Each shard's identity card is validated
// against the layout, so a mis-wired endpoint fails at dial time rather
// than merging wrong candidates.
func Dial(ctx context.Context, transports [][]ShardTransport, opts Options) ([]*Member, error) {
	if len(transports) == 0 {
		return nil, fmt.Errorf("remote: no shards")
	}
	members := make([]*Member, len(transports))
	for s, reps := range transports {
		m, err := NewMember(ctx, s, reps, opts)
		if err != nil {
			return nil, err
		}
		if m.info.Shards != 0 {
			if m.info.Shards != len(transports) {
				return nil, fmt.Errorf("remote: shard %d reports a %d-shard layout, coordinator has %d",
					s, m.info.Shards, len(transports))
			}
			if m.info.Shard != s {
				return nil, fmt.Errorf("remote: endpoint dialed as shard %d identifies as shard %d", s, m.info.Shard)
			}
		}
		members[s] = m
	}
	return members, nil
}

// NewGroup assembles the dialed members into an execution group for the
// scatter/gather drivers. counters may be nil, or one lifetime counter per
// shard (probe deltas — including the shards' wire-reported stats — fold
// into them).
func NewGroup(members []*Member, counters []*stats.Counters) shard.Group {
	ms := make([]shard.Member, len(members))
	for i, m := range members {
		ms[i] = m
	}
	return shard.MemberGroup(ms, counters)
}

// Info returns the shard's identity card from dial time.
func (m *Member) Info() Info { return m.info }

// NetStats snapshots the shard's envelope counters.
func (m *Member) NetStats() ShardNetStats { return m.rs.NetStats() }

// Len implements shard.Member.
func (m *Member) Len() int { return m.info.Len }

// Bounds implements shard.Member.
func (m *Member) Bounds() geom.Rect { return m.bounds }

// OuterBlocks implements shard.Member: the cached headers become claimable
// blocks whose points are fetched through the envelope only when a driver
// actually scans them — the Block-Marking prune therefore saves network
// transfer, not just CPU.
func (m *Member) OuterBlocks(ctx context.Context) []shard.OuterBlock {
	if ctx == nil {
		ctx = context.Background()
	}
	coll := CollectorFrom(ctx)
	out := make([]shard.OuterBlock, len(m.blocks))
	for i, h := range m.blocks {
		blockIdx := i
		out[i] = shard.OuterBlock{
			Span: h.Span.rect(),
			N:    h.Count,
			Fetch: func() []geom.Point {
				return m.fetchBlock(ctx, coll, blockIdx)
			},
		}
	}
	return out
}

// fetchBlock materializes one block's points, degrading to an empty block
// in partial mode and failing closed otherwise.
func (m *Member) fetchBlock(ctx context.Context, coll *Collector, block int) []geom.Point {
	resp, err := m.rs.BlockPoints(ctx, block)
	if err != nil {
		m.fail(ctx, coll, err)
		return nil
	}
	pts := make([]geom.Point, len(resp.Xs))
	for i := range pts {
		pts[i] = geom.Point{X: resp.Xs[i], Y: resp.Ys[i]}
	}
	return pts
}

// FetchAllPoints materializes every block's points and stable IDs through
// the envelope — the render-table path of a serving coordinator (the query
// path fetches blocks lazily through OuterBlocks instead).
func (m *Member) FetchAllPoints(ctx context.Context) ([]geom.Point, []int32, error) {
	pts := make([]geom.Point, 0, m.info.Len)
	ids := make([]int32, 0, m.info.Len)
	for i := range m.blocks {
		resp, err := m.rs.BlockPoints(ctx, i)
		if err != nil {
			return nil, nil, err
		}
		for j := range resp.Xs {
			pts = append(pts, geom.Point{X: resp.Xs[j], Y: resp.Ys[j]})
		}
		ids = append(ids, resp.IDs...)
	}
	return pts, ids, nil
}

// fail routes a remote failure: a dead query context unwinds as
// cancellation, a collector records the shard missing and degrades, and
// otherwise the failure unwinds fail-closed with the envelope's error.
func (m *Member) fail(ctx context.Context, coll *Collector, err error) {
	if ctx != nil && ctx.Err() != nil {
		panic(&fault.Cancel{Err: ctx.Err()})
	}
	if coll != nil {
		coll.Record(m.rs.shard, err)
		return
	}
	panic(&fault.Fail{Err: err})
}

// Acquire implements shard.Member.
func (m *Member) Acquire() shard.Prober {
	return &remoteProber{m: m, ctx: context.Background()}
}

// AcquireCtx implements shard.Member. Remote probers are plain values (the
// shard process owns the real searcher pool), so acquisition never blocks.
func (m *Member) AcquireCtx(ctx context.Context) (shard.Prober, error) {
	p := &remoteProber{m: m}
	p.Bind(ctx)
	return p, nil
}

// TryAcquire implements shard.Member.
func (m *Member) TryAcquire() (shard.Prober, error) { return m.Acquire(), nil }

// remoteProber is one borrowed probe handle over a remote shard. Like a
// local searcher handle it is single-threaded and its neighborhood buffer
// is overwritten by each call.
type remoteProber struct {
	m    *Member
	ctx  context.Context
	coll *Collector
	nbr  locality.Neighborhood
}

// Bounds implements shard.Prober.
func (p *remoteProber) Bounds() geom.Rect { return p.m.bounds }

// Bind implements shard.Prober.
func (p *remoteProber) Bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.ctx = ctx
	p.coll = CollectorFrom(ctx)
}

// Checkpoint implements shard.Prober.
func (p *remoteProber) Checkpoint() {
	if err := p.ctx.Err(); err != nil {
		panic(&fault.Cancel{Err: err})
	}
}

// Release implements shard.Prober.
func (p *remoteProber) Release() {}

// Local implements shard.Prober.
func (p *remoteProber) Local() *core.Relation { return nil }

// Neighborhood implements shard.Prober.
func (p *remoteProber) Neighborhood(q geom.Point, k int, c *stats.Counters) *locality.Neighborhood {
	return p.probeNbr(q, &ProbeRequest{X: q.X, Y: q.Y, K: k}, OpNeighborhood, c)
}

// NeighborhoodWithinSq implements shard.Prober.
func (p *remoteProber) NeighborhoodWithinSq(q geom.Point, k int, thresholdSq float64, c *stats.Counters) *locality.Neighborhood {
	return p.probeNbr(q, &ProbeRequest{X: q.X, Y: q.Y, K: k, ThresholdSq: thresholdSq}, OpWithin, c)
}

// CountStrictlyCloser implements shard.Prober. In partial mode a missing
// shard counts zero — the conservative direction: the Counting prune then
// never skips an outer point it should have examined.
func (p *remoteProber) CountStrictlyCloser(q geom.Point, k int, thresholdSq float64, c *stats.Counters) int {
	req := &ProbeRequest{X: q.X, Y: q.Y, K: k, ThresholdSq: thresholdSq}
	resp, err := p.m.rs.Probe(p.ctx, OpCount, req)
	if err != nil {
		p.m.fail(p.ctx, p.coll, err)
		return 0
	}
	foldStats(c, resp.Stats)
	return resp.Count
}

// probeNbr runs one neighborhood-shaped probe, rebuilding the shard-local
// result into the prober's reusable buffer.
func (p *remoteProber) probeNbr(q geom.Point, req *ProbeRequest, op Op, c *stats.Counters) *locality.Neighborhood {
	resp, err := p.m.rs.Probe(p.ctx, op, req)
	if err != nil {
		p.m.fail(p.ctx, p.coll, err)
		// Partial mode: the missing shard contributes an empty candidate
		// set to the merge.
		p.nbr.Center = q
		p.nbr.Points = p.nbr.Points[:0]
		p.nbr.Dists = p.nbr.Dists[:0]
		return &p.nbr
	}
	foldStats(c, resp.Stats)
	resp.fillNeighborhood(q, &p.nbr)
	return &p.nbr
}

// foldStats merges a probe's wire-reported counter delta into c, so
// WithStats accounts shard-side work identically across layouts.
func foldStats(c *stats.Counters, w WireStats) {
	if c == nil {
		return
	}
	var d stats.Counters
	d.Neighborhoods = w.Neighborhoods
	d.BlocksScanned = w.BlocksScanned
	d.PointsCompared = w.PointsCompared
	d.BlocksPruned = w.BlocksPruned
	d.OuterSkipped = w.OuterSkipped
	c.Add(&d)
}
