package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/stats"
)

// ShardServerConfig names what a ShardServer serves.
type ShardServerConfig struct {
	// Name is the dataset name reported by /shard/v1/info.
	Name string

	// Shard and Shards are this process's position in the partition layout.
	// The coordinator validates them at dial time. Shards == 0 disables the
	// check (a standalone shard).
	Shard  int
	Shards int

	// Index labels the index family in /shard/v1/info (diagnostic).
	Index string

	// Epoch is the served snapshot's epoch (defaults to 1).
	Epoch uint64
}

// ShardServer serves one shard's candidate-generation contract over the
// HTTP/JSON shard-probe protocol. It is an http.Handler; cmd/knnshard
// mounts one per process, and the loopback transport calls its probe logic
// directly (same code path, no sockets) for single-process layouts.
//
// Every probe borrows a searcher handle from the relation's pool and binds
// it to the request context, so a disconnected or hedged-away client
// cancels the server-side scan at the next block checkpoint.
type ShardServer struct {
	rel *core.Relation
	cfg ShardServerConfig
	mux *http.ServeMux

	// idOf resolves a result coordinate to its smallest stable ID over this
	// shard's points (co-located duplicates collapse deterministically,
	// matching the coordinator's render table).
	idOf map[geom.Point]int32

	// counters is the shard's lifetime operation tally across all probes
	// (served by /metrics next to the per-op counts).
	counters stats.Counters

	probes [3]atomic.Int64 // per-Op served probes
	blocks atomic.Int64    // block-points fetches served
	errs   atomic.Int64    // requests answered with a non-2xx status
}

// NewShardServer builds the server for one shard relation.
func NewShardServer(rel *core.Relation, cfg ShardServerConfig) *ShardServer {
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	s := &ShardServer{rel: rel, cfg: cfg}
	st := rel.Store()
	s.idOf = make(map[geom.Point]int32, st.Len())
	for i := 0; i < st.Len(); i++ {
		p, id := st.At(i), st.ID(i)
		if old, ok := s.idOf[p]; !ok || id < old {
			s.idOf[p] = id
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(pathPrefix+"/neighborhood", s.handleProbe(OpNeighborhood))
	s.mux.HandleFunc(pathPrefix+"/neighborhood-within", s.handleProbe(OpWithin))
	s.mux.HandleFunc(pathPrefix+"/count-closer", s.handleProbe(OpCount))
	s.mux.HandleFunc(pathPrefix+"/info", s.handleInfo)
	s.mux.HandleFunc(pathPrefix+"/blocks", s.handleBlocks)
	s.mux.HandleFunc(pathPrefix+"/block", s.handleBlock)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Relation returns the served shard relation (the loopback transport's
// direct path).
func (s *ShardServer) Relation() *core.Relation { return s.rel }

// Counters returns the shard's lifetime operation counters.
func (s *ShardServer) Counters() *stats.Counters { return &s.counters }

// info assembles the shard's identity card.
func (s *ShardServer) info() Info {
	return Info{
		Name:   s.cfg.Name,
		Shard:  s.cfg.Shard,
		Shards: s.cfg.Shards,
		Len:    s.rel.Len(),
		Bounds: rectToWire(s.rel.Ix.Bounds()),
		Index:  s.cfg.Index,
		Epoch:  s.cfg.Epoch,
		Blocks: len(s.rel.Ix.Blocks()),
	}
}

// blockHeaders assembles the outer-side block listing.
func (s *ShardServer) blockHeaders() []BlockHeader {
	blks := s.rel.Ix.Blocks()
	out := make([]BlockHeader, len(blks))
	for i, b := range blks {
		out[i] = BlockHeader{Span: rectToWire(b.Bounds), Count: b.Count()}
	}
	return out
}

// blockPoints returns block i's points with stable IDs, or an error for an
// out-of-range index.
func (s *ShardServer) blockPoints(i int) (*BlockPointsResponse, error) {
	blks := s.rel.Ix.Blocks()
	if i < 0 || i >= len(blks) {
		return nil, fmt.Errorf("block %d out of range [0,%d)", i, len(blks))
	}
	b := blks[i]
	xs, ys := b.XYs()
	resp := &BlockPointsResponse{
		IDs: append([]int32(nil), b.PointIDs()...),
		Xs:  append([]float64(nil), xs...),
		Ys:  append([]float64(nil), ys...),
	}
	s.blocks.Add(1)
	return resp, nil
}

// probe executes one probe op against a borrowed searcher handle. It is the
// single implementation behind both the HTTP handler and the loopback
// transport. The response's Stats carry the probe's counter delta; the
// shard's lifetime counters accumulate it too.
func (s *ShardServer) probe(ctx context.Context, op Op, req *ProbeRequest) (*ProbeResponse, error) {
	if req.K <= 0 {
		return nil, fmt.Errorf("k must be positive, got %d", req.K)
	}
	h, err := s.rel.AcquireCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer h.Release()

	var delta stats.Counters
	p := geom.Point{X: req.X, Y: req.Y}
	resp := &ProbeResponse{}
	switch op {
	case OpCount:
		resp.Count = h.S.CountStrictlyCloser(p, req.K, req.ThresholdSq, &delta)
	case OpWithin:
		nb := h.S.NeighborhoodWithinSq(p, req.K, req.ThresholdSq, &delta)
		s.fillResponse(resp, p, nb.Points)
	default:
		nb := h.S.Neighborhood(p, req.K, &delta)
		s.fillResponse(resp, p, nb.Points)
	}
	d := delta.Snapshot()
	resp.Stats = WireStats{
		Neighborhoods:  d.Neighborhoods,
		BlocksScanned:  d.BlocksScanned,
		PointsCompared: d.PointsCompared,
		BlocksPruned:   d.BlocksPruned,
		OuterSkipped:   d.OuterSkipped,
	}
	s.counters.Add(&delta)
	s.probes[op].Add(1)
	return resp, nil
}

// fillResponse encodes a neighborhood's points as wire candidates: stable
// ID, coordinates, and the squared distance to the probe center recomputed
// from coordinates (exactly the comparison key of the coordinator's merge).
func (s *ShardServer) fillResponse(resp *ProbeResponse, center geom.Point, pts []geom.Point) {
	// The neighborhood's Dists are sqrt values; the wire carries dSq, the
	// exact key, so recompute it from coordinates relative to the center.
	// fillNeighborhood on the far side restores Dists = Sqrt(dSq).
	resp.IDs = make([]int32, len(pts))
	resp.Xs = make([]float64, len(pts))
	resp.Ys = make([]float64, len(pts))
	resp.DSqs = make([]float64, len(pts))
	for i, p := range pts {
		resp.IDs[i] = s.idOf[p]
		resp.Xs[i] = p.X
		resp.Ys[i] = p.Y
		resp.DSqs[i] = center.DistSq(p)
	}
}

// handleProbe decodes, executes, and encodes one probe op.
func (s *ShardServer) handleProbe(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.error(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req ProbeRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.error(w, http.StatusBadRequest, "malformed probe request: "+err.Error())
			return
		}
		defer func() {
			// A cancellation checkpoint unwinds by panic when the client's
			// context dies mid-scan (disconnect, hedge loser cancellation);
			// contain it to this request.
			if rec := recover(); rec != nil {
				if _, ok := rec.(*fault.Cancel); ok {
					s.error(w, http.StatusGatewayTimeout, "probe canceled")
					return
				}
				panic(rec)
			}
		}()
		resp, err := s.probe(r.Context(), op, &req)
		if err != nil {
			status := http.StatusBadRequest
			if r.Context().Err() != nil {
				status = http.StatusGatewayTimeout
			}
			s.error(w, status, err.Error())
			return
		}
		s.write(w, resp)
	}
}

func (s *ShardServer) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := s.info()
	s.write(w, &info)
}

func (s *ShardServer) handleBlocks(w http.ResponseWriter, r *http.Request) {
	s.write(w, &BlocksResponse{Blocks: s.blockHeaders()})
}

func (s *ShardServer) handleBlock(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.URL.Query().Get("i"))
	if err != nil {
		s.error(w, http.StatusBadRequest, "block index ?i=N required")
		return
	}
	resp, err := s.blockPoints(i)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	s.write(w, resp)
}

func (s *ShardServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// shardMetrics is the /metrics body of a shard process.
type shardMetrics struct {
	Info         Info             `json:"info"`
	Probes       map[string]int64 `json:"probes"`
	BlockFetches int64            `json:"block_fetches"`
	Errors       int64            `json:"errors"`
	Stats        stats.Counters   `json:"stats"`
}

func (s *ShardServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := shardMetrics{
		Info: s.info(),
		Probes: map[string]int64{
			OpNeighborhood.String(): s.probes[OpNeighborhood].Load(),
			OpWithin.String():       s.probes[OpWithin].Load(),
			OpCount.String():        s.probes[OpCount].Load(),
		},
		BlockFetches: s.blocks.Load(),
		Errors:       s.errs.Load(),
		Stats:        s.counters.Snapshot(),
	}
	s.write(w, &m)
}

func (s *ShardServer) write(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *ShardServer) error(w http.ResponseWriter, status int, msg string) {
	s.errs.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wireError{Error: msg})
}
