// Package remote lifts the scatter/gather layer onto multi-process layouts:
// it implements the shard.Member / shard.Prober transport seam over an
// HTTP/JSON shard-probe protocol, with a robustness envelope — per-probe
// deadlines, bounded retries with jittered exponential backoff, hedged
// second requests, per-endpoint circuit breakers, and replica failover —
// between the coordinator and each shard process.
//
// # Exactness over the wire
//
// The protocol ships candidate sets, not answers: each probe returns the
// shard-local top-k as stable point IDs, coordinates, and squared distances.
// Go's encoding/json formats float64 with strconv's shortest round-trip
// representation, so coordinates and squared distances cross the wire
// bit-exactly; the client rebuilds Dists as math.Sqrt(dSq) — precisely the
// computation the in-process searcher performs (locality's extractInto) —
// and the coordinator's k-way merge recomputes squared distances from
// coordinates exactly as it does for in-process shards. Remote results are
// therefore byte-identical to in-process execution, which the differential
// oracle at the module root enforces across layouts and under injected
// faults.
//
// # Protocol
//
// A shard process (cmd/knnshard) serves one shard's candidate-generation
// contract:
//
//	POST /shard/v1/neighborhood         {x,y,k}             → probe response
//	POST /shard/v1/neighborhood-within  {x,y,k,threshold_sq} → probe response
//	POST /shard/v1/count-closer         {x,y,k,threshold_sq} → {count}
//	GET  /shard/v1/info                 shard identity, cardinality, bounds
//	GET  /shard/v1/blocks               outer-side block headers (MBR, count)
//	GET  /shard/v1/block?i=N            one block's points (lazy outer fetch)
//	GET  /healthz                       liveness
//	GET  /metrics                       per-op counters + searcher stats
//
// Block headers let the coordinator run Block-Marking as a network-transfer
// prune: a marked non-contributing block's points are never fetched.
package remote

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/locality"
)

// Protocol version prefix of every route. Bump on incompatible changes; the
// coordinator rejects shards whose /shard/v1/info is absent or malformed.
const pathPrefix = "/shard/v1"

// Op names one probe operation of the candidate-generation contract.
type Op int

const (
	// OpNeighborhood is the shard-local top-k probe.
	OpNeighborhood Op = iota

	// OpWithin is the threshold-clipped top-k probe.
	OpWithin

	// OpCount is the conservative strictly-closer count.
	OpCount
)

// String returns the op's route suffix.
func (o Op) String() string {
	switch o {
	case OpWithin:
		return "neighborhood-within"
	case OpCount:
		return "count-closer"
	default:
		return "neighborhood"
	}
}

// ProbeRequest is the body of every probe POST. ThresholdSq is ignored by
// OpNeighborhood.
type ProbeRequest struct {
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	K           int     `json:"k"`
	ThresholdSq float64 `json:"threshold_sq,omitempty"`
}

// WireStats is the per-probe operation-counter delta the shard recorded
// while serving the request, folded into the coordinator's per-shard
// counters so WithStats accounts identically across layouts.
type WireStats struct {
	Neighborhoods  int64 `json:"neighborhoods,omitempty"`
	BlocksScanned  int64 `json:"blocks_scanned,omitempty"`
	PointsCompared int64 `json:"points_compared,omitempty"`
	BlocksPruned   int64 `json:"blocks_pruned,omitempty"`
	OuterSkipped   int64 `json:"outer_skipped,omitempty"`
}

// ProbeResponse carries a probe's candidate set: parallel arrays of stable
// point IDs, coordinates, and squared distances in the shard-local result
// order (ascending (distance, X, Y)). For OpCount only Count is set.
type ProbeResponse struct {
	IDs   []int32   `json:"ids,omitempty"`
	Xs    []float64 `json:"xs,omitempty"`
	Ys    []float64 `json:"ys,omitempty"`
	DSqs  []float64 `json:"d_sqs,omitempty"`
	Count int       `json:"count,omitempty"`
	Stats WireStats `json:"stats,omitempty"`
}

// validate rejects structurally broken responses (truncated arrays, negative
// counts) so corruption surfaces as a transient envelope error — retried and
// failed over — rather than as a wrong answer.
func (r *ProbeResponse) validate(op Op) error {
	if op == OpCount {
		if r.Count < 0 {
			return fmt.Errorf("negative count %d", r.Count)
		}
		return nil
	}
	n := len(r.IDs)
	if len(r.Xs) != n || len(r.Ys) != n || len(r.DSqs) != n {
		return fmt.Errorf("ragged candidate arrays: ids=%d xs=%d ys=%d dsqs=%d",
			n, len(r.Xs), len(r.Ys), len(r.DSqs))
	}
	return nil
}

// fillNeighborhood rebuilds the shard-local neighborhood from the wire
// arrays into nb, reusing its buffers. Dists[i] = Sqrt(DSqs[i]) is exactly
// the in-process searcher's computation, so the rebuilt neighborhood is
// byte-identical to a local probe's.
func (r *ProbeResponse) fillNeighborhood(center geom.Point, nb *locality.Neighborhood) {
	nb.Center = center
	nb.Points = nb.Points[:0]
	nb.Dists = nb.Dists[:0]
	for i := range r.IDs {
		nb.Points = append(nb.Points, geom.Point{X: r.Xs[i], Y: r.Ys[i]})
		nb.Dists = append(nb.Dists, math.Sqrt(r.DSqs[i]))
	}
}

// WireRect is a bounds rectangle on the wire.
type WireRect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

func rectToWire(r geom.Rect) WireRect {
	return WireRect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func (w WireRect) rect() geom.Rect {
	return geom.Rect{MinX: w.MinX, MinY: w.MinY, MaxX: w.MaxX, MaxY: w.MaxY}
}

// Info is a shard process's identity card (GET /shard/v1/info): what it
// holds and where it believes it sits in the partition. The coordinator
// validates Shard/Shards against its own layout at dial time, so a
// mis-wired replica set fails fast instead of merging wrong candidates.
type Info struct {
	// Name is the serving dataset's name (diagnostic only).
	Name string `json:"name"`

	// Shard and Shards are this process's shard index and the total shard
	// count of the partition it was built from. Shards == 0 means the
	// process does not know the layout (a standalone shard).
	Shard  int `json:"shard"`
	Shards int `json:"shards"`

	// Len is the shard's cardinality; Bounds its index bounds (the
	// coordinator's MINDIST shard-skip key).
	Len    int      `json:"len"`
	Bounds WireRect `json:"bounds"`

	// Index names the index family; Epoch is the shard's snapshot epoch.
	Index string `json:"index"`
	Epoch uint64 `json:"epoch"`

	// Blocks is the shard's outer-side block count.
	Blocks int `json:"blocks"`
}

// BlockHeader describes one outer-side block without its points: MBR and
// count — everything Block-Marking needs to mark it non-contributing.
type BlockHeader struct {
	Span  WireRect `json:"span"`
	Count int      `json:"count"`
}

// BlocksResponse is GET /shard/v1/blocks.
type BlocksResponse struct {
	Blocks []BlockHeader `json:"blocks"`
}

// BlockPointsResponse is GET /shard/v1/block?i=N: one block's points with
// their stable IDs, in index span order.
type BlockPointsResponse struct {
	IDs []int32   `json:"ids"`
	Xs  []float64 `json:"xs"`
	Ys  []float64 `json:"ys"`
}

// validate rejects ragged block-point arrays.
func (r *BlockPointsResponse) validate() error {
	if len(r.Xs) != len(r.IDs) || len(r.Ys) != len(r.IDs) {
		return fmt.Errorf("ragged block arrays: ids=%d xs=%d ys=%d",
			len(r.IDs), len(r.Xs), len(r.Ys))
	}
	return nil
}

// wireError is the JSON error body of non-200 responses.
type wireError struct {
	Error string `json:"error"`
}
