package remote

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for metrics.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-endpoint circuit breaker. Closed: requests flow, and
// `threshold` consecutive transient failures trip it open. Open: requests
// are skipped (the replica set fails over past the endpoint) until
// `cooldown` elapses, when the breaker admits a single probe-through
// attempt (half-open). That attempt's outcome closes the circuit or
// re-opens it for another cooldown.
//
// All methods are safe for concurrent use; the probe-through admission is
// exclusive (at most one in-flight half-open attempt).
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int       // consecutive transient failures while closed
	openedAt  time.Time // when the circuit last tripped
	inFlight  bool      // a half-open probe-through is out
	threshold int
	cooldown  time.Duration
	trips     int64 // lifetime closed→open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent. In the open state it flips
// to half-open after the cooldown and admits exactly one probe-through.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.inFlight = true
		return true
	default: // half-open
		if b.inFlight {
			return false
		}
		b.inFlight = true
		return true
	}
}

// onSuccess records a successful request, closing the circuit.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.inFlight = false
}

// onFailure records a failed request. A failed probe-through re-opens the
// circuit immediately; in the closed state `threshold` consecutive failures
// trip it.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
	b.inFlight = false
}

// trip opens the circuit (mu held).
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.failures = 0
	b.trips++
}

// cooling reports (without side effects) that the circuit is open and its
// cooldown has not yet elapsed — the failover ordering predicate.
func (b *breaker) cooling() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && time.Since(b.openedAt) < b.cooldown
}

// snapshot returns the state and lifetime trip count for metrics.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
