package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/fault"
)

// ShardTransport moves one shard's probe protocol between coordinator and
// shard. Implementations must be safe for concurrent use (the envelope
// hedges requests on one transport while retries run on another).
type ShardTransport interface {
	// Endpoint names the transport for breakers, metrics, and the fault
	// injector (a URL, or the loopback transport's synthetic name).
	Endpoint() string

	// Probe executes one candidate-generation op, decoding into resp.
	Probe(ctx context.Context, op Op, req *ProbeRequest, resp *ProbeResponse) error

	// Info fetches the shard's identity card.
	Info(ctx context.Context) (*Info, error)

	// Blocks fetches the outer-side block headers.
	Blocks(ctx context.Context) ([]BlockHeader, error)

	// BlockPoints fetches one block's points.
	BlockPoints(ctx context.Context, block int) (*BlockPointsResponse, error)
}

// transportError classifies a transport failure for the envelope: transient
// failures (connection errors, 5xx, timeouts, malformed responses) are
// retried and failed over; fatal ones (4xx — a protocol or layout mistake)
// abort immediately, because every replica would answer the same.
type transportError struct {
	err       error
	transient bool
}

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// transientf builds a transient transport error.
func transientf(format string, args ...any) error {
	return &transportError{err: fmt.Errorf(format, args...), transient: true}
}

// fatalf builds a fatal transport error.
func fatalf(format string, args ...any) error {
	return &transportError{err: fmt.Errorf(format, args...), transient: false}
}

// isTransient reports whether the envelope should retry or fail over after
// err. Unclassified errors (transport-internal, context) default to
// non-transient: a parent-context cancellation must not burn retries.
func isTransient(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return te.transient
	}
	return false
}

// HTTPTransport speaks the shard-probe protocol to one base URL.
type HTTPTransport struct {
	base   string
	client *http.Client
}

// NewHTTPTransport builds a transport for baseURL (scheme://host:port, no
// trailing slash required). client nil uses a dedicated default client;
// per-attempt deadlines come from the envelope's contexts, so the client
// itself carries no timeout.
func NewHTTPTransport(baseURL string, client *http.Client) *HTTPTransport {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPTransport{base: baseURL, client: client}
}

// Endpoint implements ShardTransport.
func (t *HTTPTransport) Endpoint() string { return t.base }

// Probe implements ShardTransport.
func (t *HTTPTransport) Probe(ctx context.Context, op Op, req *ProbeRequest, resp *ProbeResponse) error {
	return t.post(ctx, pathPrefix+"/"+op.String(), req, resp)
}

// Info implements ShardTransport.
func (t *HTTPTransport) Info(ctx context.Context) (*Info, error) {
	var info Info
	if err := t.get(ctx, pathPrefix+"/info", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Blocks implements ShardTransport.
func (t *HTTPTransport) Blocks(ctx context.Context) ([]BlockHeader, error) {
	var resp BlocksResponse
	if err := t.get(ctx, pathPrefix+"/blocks", &resp); err != nil {
		return nil, err
	}
	return resp.Blocks, nil
}

// BlockPoints implements ShardTransport.
func (t *HTTPTransport) BlockPoints(ctx context.Context, block int) (*BlockPointsResponse, error) {
	var resp BlockPointsResponse
	if err := t.get(ctx, fmt.Sprintf("%s/block?i=%d", pathPrefix, block), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fatalf("%s: encoding request: %w", t.base, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(buf))
	if err != nil {
		return fatalf("%s: building request: %w", t.base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	return t.do(req, out)
}

func (t *HTTPTransport) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+path, nil)
	if err != nil {
		return fatalf("%s: building request: %w", t.base, err)
	}
	return t.do(req, out)
}

// do executes the request and decodes the response, classifying every
// failure mode: connection errors and 5xx are transient (another attempt or
// replica may succeed), 4xx fatal (every replica would answer the same),
// malformed bodies transient (a truncated or corrupted response is a
// transfer fault, not a protocol mismatch).
func (t *HTTPTransport) do(req *http.Request, out any) error {
	res, err := t.client.Do(req)
	if err != nil {
		if ctxErr := req.Context().Err(); ctxErr != nil {
			// Deadline or cancellation: transient from the attempt's point
			// of view (the envelope distinguishes its own attempt timeout
			// from the parent budget).
			return transientf("%s: %w", t.base, ctxErr)
		}
		return transientf("%s: %w", t.base, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var we wireError
		msg := ""
		if b, rerr := io.ReadAll(io.LimitReader(res.Body, 4096)); rerr == nil {
			if json.Unmarshal(b, &we) == nil && we.Error != "" {
				msg = ": " + we.Error
			}
		}
		if res.StatusCode >= 500 || res.StatusCode == http.StatusTooManyRequests {
			return transientf("%s: shard status %d%s", t.base, res.StatusCode, msg)
		}
		return fatalf("%s: shard status %d%s", t.base, res.StatusCode, msg)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return transientf("%s: malformed response: %w", t.base, err)
	}
	return nil
}

// Loopback is the in-process transport: it calls a ShardServer's logic
// directly, with no sockets or JSON. Single-process layouts use it to run
// the full robustness envelope (and its fault hooks) at zero network cost,
// and the differential oracle uses it as the middle rung between in-process
// execution and real HTTP.
type Loopback struct {
	srv  *ShardServer
	name string
}

// NewLoopback wraps srv as a transport. name is the synthetic endpoint
// (defaults to "loopback://<dataset>/<shard>").
func NewLoopback(srv *ShardServer, name string) *Loopback {
	if name == "" {
		name = fmt.Sprintf("loopback://%s/%d", srv.cfg.Name, srv.cfg.Shard)
	}
	return &Loopback{srv: srv, name: name}
}

// Endpoint implements ShardTransport.
func (l *Loopback) Endpoint() string { return l.name }

// Probe implements ShardTransport. Cancellation unwinds from the searcher's
// checkpoints are recovered into the context's error, mirroring what the
// HTTP server returns for a dead request context.
func (l *Loopback) Probe(ctx context.Context, op Op, req *ProbeRequest, resp *ProbeResponse) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c, ok := rec.(*fault.Cancel)
			if !ok {
				panic(rec)
			}
			err = transientf("%s: %w", l.name, c.Err)
		}
	}()
	out, err := l.srv.probe(ctx, op, req)
	if err != nil {
		if ctx.Err() != nil {
			return transientf("%s: %w", l.name, err)
		}
		return fatalf("%s: %w", l.name, err)
	}
	*resp = *out
	return nil
}

// Info implements ShardTransport.
func (l *Loopback) Info(context.Context) (*Info, error) {
	info := l.srv.info()
	return &info, nil
}

// Blocks implements ShardTransport.
func (l *Loopback) Blocks(context.Context) ([]BlockHeader, error) {
	return l.srv.blockHeaders(), nil
}

// BlockPoints implements ShardTransport.
func (l *Loopback) BlockPoints(_ context.Context, block int) (*BlockPointsResponse, error) {
	resp, err := l.srv.blockPoints(block)
	if err != nil {
		return nil, fatalf("%s: %w", l.name, err)
	}
	return resp, nil
}
