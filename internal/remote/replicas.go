package remote

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// ErrUnavailable reports that a shard's whole replica set failed to answer
// within the robustness envelope (every replica down, shedding, or past its
// deadline). The public layer re-exports it; the HTTP server maps it to 503.
var ErrUnavailable = errors.New("remote: shard unavailable")

// Options tunes the robustness envelope around every remote call. The zero
// value means defaults; use the No* sentinels to disable a mechanism.
type Options struct {
	// ProbeTimeout caps each individual attempt (not the whole call); the
	// caller's context bounds the call overall. Default 2s.
	ProbeTimeout time.Duration

	// MaxRetries is the number of extra attempts against one endpoint after
	// a transient failure. Default 2; NoRetries disables retrying.
	MaxRetries int

	// RetryBackoff is the first retry's backoff; it doubles per retry and
	// each sleep is jittered ±50%. Default 5ms.
	RetryBackoff time.Duration

	// HedgeAfter is the floor of the hedging delay: if an attempt has not
	// answered after max(HedgeAfter, observed p-quantile latency), a second
	// request is sent to the next healthy replica and the first answer
	// wins. Default 50ms; NoHedging disables hedging.
	HedgeAfter time.Duration

	// HedgeQuantile is the latency quantile (over the endpoint's recent
	// successes) that can stretch the hedging delay past HedgeAfter, so a
	// normally-slow endpoint is not hedged on every call. Default 0.9.
	HedgeQuantile float64

	// BreakerThreshold is the consecutive-transient-failure count that
	// trips an endpoint's circuit breaker. Default 3; NoBreaker disables
	// breakers (every endpoint is always tried).
	BreakerThreshold int

	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a probe-through attempt. Default 1s.
	BreakerCooldown time.Duration
}

// Sentinels disabling individual mechanisms (a zero field means default).
const (
	NoRetries = -1
	NoHedging = time.Duration(-1)
	NoBreaker = -1
)

// withDefaults resolves zero fields to defaults.
func (o Options) withDefaults() Options {
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 50 * time.Millisecond
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.9
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	} else if o.BreakerThreshold < 0 {
		o.BreakerThreshold = 0
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = time.Second
	}
	return o
}

// endpoint is one replica of one shard: its transport plus the envelope's
// per-endpoint state (breaker, latency window, counters).
type endpoint struct {
	t   ShardTransport
	brk *breaker
	lat latencyRing

	attempts     atomic.Int64
	successes    atomic.Int64
	failures     atomic.Int64
	retries      atomic.Int64
	hedges       atomic.Int64 // hedged second requests launched while this endpoint was primary
	hedgeWins    atomic.Int64 // hedged requests to this endpoint that answered first
	breakerSkips atomic.Int64 // times failover skipped this endpoint on an open breaker
}

// hedgeDelay is when to launch a hedge while waiting on this endpoint.
func (e *endpoint) hedgeDelay(o Options) time.Duration {
	if q := e.lat.quantile(o.HedgeQuantile); q > o.HedgeAfter {
		return q
	}
	return o.HedgeAfter
}

// latencyRing keeps the last 64 success latencies for the hedging quantile.
type latencyRing struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // filled entries
	idx int // next write position
}

func (l *latencyRing) record(d time.Duration) {
	l.mu.Lock()
	l.buf[l.idx] = d
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile of the window, or 0 while the window has
// fewer than 8 samples (too little signal; the HedgeAfter floor governs).
func (l *latencyRing) quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.n
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n < 8 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q * float64(n-1))
	return tmp[i]
}

// ReplicaSet is one shard's replicas under the robustness envelope: every
// remote call runs with per-attempt deadlines, bounded jittered-backoff
// retries, hedged second requests, and breaker-aware failover across the
// replicas, in replica order.
type ReplicaSet struct {
	shard int
	eps   []*endpoint
	opts  Options

	failovers   atomic.Int64 // moves to the next replica after one failed
	exhausted   atomic.Int64 // calls that failed the entire set
	forcedTries atomic.Int64 // last-resort attempts with every breaker open

	mu  sync.Mutex
	rng *rand.Rand // backoff jitter; seeded per shard, deterministic
}

// NewReplicaSet builds the envelope for one shard over its replica
// transports (tried in order; put the preferred replica first).
func NewReplicaSet(shard int, transports []ShardTransport, opts Options) *ReplicaSet {
	opts = opts.withDefaults()
	rs := &ReplicaSet{
		shard: shard,
		opts:  opts,
		rng:   rand.New(rand.NewSource(0x5EED + int64(shard))),
	}
	for _, t := range transports {
		rs.eps = append(rs.eps, &endpoint{
			t:   t,
			brk: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		})
	}
	return rs
}

// Shard returns the replica set's shard index.
func (rs *ReplicaSet) Shard() int { return rs.shard }

// callFn is one transport call; it must build (and validate) its own result
// so hedged attempts never share a response object.
type callFn func(ctx context.Context, t ShardTransport) (any, error)

// do runs call under the full envelope. The error is either fatal from the
// first endpoint that answered one, or wraps ErrUnavailable when the whole
// set is exhausted.
func (rs *ReplicaSet) do(ctx context.Context, call callFn) (any, error) {
	order := rs.order()
	var lastErr error
	attempted := false
	for i, ep := range order {
		if rs.opts.BreakerThreshold > 0 && !ep.brk.allow() {
			ep.breakerSkips.Add(1)
			continue
		}
		if attempted {
			rs.failovers.Add(1)
		}
		attempted = true
		var hedge *endpoint
		for _, h := range order[i+1:] {
			if !h.brk.cooling() {
				hedge = h
				break
			}
		}
		v, err := rs.withRetries(ctx, ep, hedge, call)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !isTransient(err) {
			return nil, err
		}
		if ctx.Err() != nil {
			break
		}
	}
	if !attempted && ctx.Err() == nil && len(order) > 0 {
		// Every breaker is open and cooling: graceful degradation must not
		// wedge on a fully-tripped set, so force one last-resort engagement
		// of the first replica (its outcome feeds the breaker normally).
		rs.forcedTries.Add(1)
		v, err := rs.withRetries(ctx, order[0], nil, call)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !isTransient(err) {
			return nil, err
		}
	}
	rs.exhausted.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no replicas configured")
	}
	return nil, fmt.Errorf("%w: shard %d: %v", ErrUnavailable, rs.shard, lastErr)
}

// order returns the endpoints with open-and-cooling breakers moved to the
// back (preserving replica order within each class), so failover prefers
// healthy replicas but a fully-tripped set still has a deterministic order.
func (rs *ReplicaSet) order() []*endpoint {
	out := make([]*endpoint, 0, len(rs.eps))
	var cooling []*endpoint
	for _, ep := range rs.eps {
		if rs.opts.BreakerThreshold > 0 && ep.brk.cooling() {
			cooling = append(cooling, ep)
			continue
		}
		out = append(out, ep)
	}
	return append(out, cooling...)
}

// withRetries engages one endpoint: up to 1+MaxRetries hedged attempts with
// jittered exponential backoff between them. Only transient failures are
// retried, and never past the caller's context.
func (rs *ReplicaSet) withRetries(ctx context.Context, ep, hedge *endpoint, call callFn) (any, error) {
	backoff := rs.opts.RetryBackoff
	var lastErr error
	for try := 0; try <= rs.opts.MaxRetries; try++ {
		if try > 0 {
			ep.retries.Add(1)
			if !sleepCtx(ctx, rs.jitter(backoff)) {
				return nil, lastErr
			}
			backoff *= 2
		}
		v, err := rs.hedged(ctx, ep, hedge, call)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !isTransient(err) || ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// hedged runs one attempt against ep, launching a second request to hedge
// if ep has not answered after its hedging delay; the first success wins
// and the loser's context is canceled.
func (rs *ReplicaSet) hedged(ctx context.Context, ep, hedge *endpoint, call callFn) (any, error) {
	if hedge == nil || rs.opts.HedgeAfter < 0 {
		return rs.once(ctx, ep, call)
	}
	type outcome struct {
		v   any
		err error
		ep  *endpoint
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	launch := func(e *endpoint) {
		go func() {
			v, err := rs.once(actx, e, call)
			ch <- outcome{v: v, err: err, ep: e}
		}()
	}
	launch(ep)
	inflight := 1
	hedged := false
	timer := time.NewTimer(ep.hedgeDelay(rs.opts))
	defer timer.Stop()
	var lastErr error
	for inflight > 0 {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				if hedged && out.ep == hedge {
					hedge.hedgeWins.Add(1)
				}
				return out.v, nil
			}
			lastErr = out.err
			if inflight == 0 && !hedged {
				return nil, lastErr
			}
		case <-timer.C:
			if !hedged && hedge.brk.allow() {
				hedged = true
				ep.hedges.Add(1)
				launch(hedge)
				inflight++
			}
		}
	}
	return nil, lastErr
}

// once is a single attempt: per-attempt deadline, fault-injection hooks,
// latency recording, breaker and counter bookkeeping.
func (rs *ReplicaSet) once(ctx context.Context, ep *endpoint, call callFn) (any, error) {
	ep.attempts.Add(1)
	actx := ctx
	if rs.opts.ProbeTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, rs.opts.ProbeTimeout)
		defer cancel()
	}
	name := ep.t.Endpoint()
	var v any
	var err error
	if fault.Armed() {
		if d := fault.OnDelayProbe(name); d > 0 && !sleepCtx(actx, d) {
			err = transientf("%s: injected delay: %w", name, actx.Err())
		}
		if err == nil && fault.OnDropProbe(name) {
			err = transientf("%s: injected probe drop", name)
		}
	}
	start := time.Now()
	if err == nil {
		v, err = call(actx, ep.t)
	}
	if err == nil && fault.Armed() && fault.OnResetConn(name) {
		err = transientf("%s: injected connection reset", name)
	}
	if err == nil {
		ep.lat.record(time.Since(start))
		ep.successes.Add(1)
		ep.brk.onSuccess()
		return v, nil
	}
	ep.failures.Add(1)
	if ctx.Err() == nil {
		if isTransient(err) {
			// Transient failures (including attempt timeouts) count toward
			// tripping the breaker; fatal ones mean the endpoint answered,
			// so they reset its consecutive-failure streak instead.
			ep.brk.onFailure()
		} else {
			ep.brk.onSuccess()
		}
	}
	return nil, err
}

// jitter spreads d by ±50%.
func (rs *ReplicaSet) jitter(d time.Duration) time.Duration {
	rs.mu.Lock()
	f := 0.5 + rs.rng.Float64()
	rs.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Probe runs one probe op under the envelope, corrupting (under the fault
// injector) and validating the decoded response inside the attempt so that
// corruption surfaces as a retriable transient error.
func (rs *ReplicaSet) Probe(ctx context.Context, op Op, req *ProbeRequest) (*ProbeResponse, error) {
	v, err := rs.do(ctx, func(ctx context.Context, t ShardTransport) (any, error) {
		resp := new(ProbeResponse)
		if err := t.Probe(ctx, op, req, resp); err != nil {
			return nil, err
		}
		if fault.Armed() && fault.OnCorruptResponse(t.Endpoint()) {
			corruptProbe(resp)
		}
		if err := resp.validate(op); err != nil {
			return nil, transientf("%s: corrupt response: %w", t.Endpoint(), err)
		}
		return resp, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ProbeResponse), nil
}

// Info fetches the shard's identity card under the envelope.
func (rs *ReplicaSet) Info(ctx context.Context) (*Info, error) {
	v, err := rs.do(ctx, func(ctx context.Context, t ShardTransport) (any, error) {
		return t.Info(ctx)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Info), nil
}

// Blocks fetches the outer-side block headers under the envelope.
func (rs *ReplicaSet) Blocks(ctx context.Context) ([]BlockHeader, error) {
	v, err := rs.do(ctx, func(ctx context.Context, t ShardTransport) (any, error) {
		return t.Blocks(ctx)
	})
	if err != nil {
		return nil, err
	}
	return v.([]BlockHeader), nil
}

// BlockPoints fetches one block's points under the envelope, with the same
// corrupt-and-validate step as Probe.
func (rs *ReplicaSet) BlockPoints(ctx context.Context, block int) (*BlockPointsResponse, error) {
	v, err := rs.do(ctx, func(ctx context.Context, t ShardTransport) (any, error) {
		resp, err := t.BlockPoints(ctx, block)
		if err != nil {
			return nil, err
		}
		if fault.Armed() && fault.OnCorruptResponse(t.Endpoint()) {
			resp.Xs = resp.Xs[:len(resp.Xs)/2]
		}
		if err := resp.validate(); err != nil {
			return nil, transientf("%s: corrupt response: %w", t.Endpoint(), err)
		}
		return resp, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*BlockPointsResponse), nil
}

// corruptProbe injects a structural defect the response validator catches.
func corruptProbe(r *ProbeResponse) {
	if len(r.Xs) > 0 {
		r.Xs = r.Xs[:len(r.Xs)-1]
	} else {
		r.Count = -1
	}
}

// EndpointStats is one replica's envelope counters for metrics.
type EndpointStats struct {
	Endpoint     string `json:"endpoint"`
	Breaker      string `json:"breaker"`
	Attempts     int64  `json:"attempts"`
	Successes    int64  `json:"successes"`
	Failures     int64  `json:"failures"`
	Retries      int64  `json:"retries"`
	Hedges       int64  `json:"hedges"`
	HedgeWins    int64  `json:"hedge_wins"`
	BreakerTrips int64  `json:"breaker_trips"`
	BreakerSkips int64  `json:"breaker_skips"`
}

// ShardNetStats is one shard's envelope counters for metrics.
type ShardNetStats struct {
	Shard       int             `json:"shard"`
	Failovers   int64           `json:"failovers"`
	Exhausted   int64           `json:"exhausted"`
	ForcedTries int64           `json:"forced_tries"`
	Endpoints   []EndpointStats `json:"endpoints"`
}

// NetStats snapshots the replica set's envelope counters.
func (rs *ReplicaSet) NetStats() ShardNetStats {
	out := ShardNetStats{
		Shard:       rs.shard,
		Failovers:   rs.failovers.Load(),
		Exhausted:   rs.exhausted.Load(),
		ForcedTries: rs.forcedTries.Load(),
	}
	for _, ep := range rs.eps {
		state, trips := ep.brk.snapshot()
		out.Endpoints = append(out.Endpoints, EndpointStats{
			Endpoint:     ep.t.Endpoint(),
			Breaker:      state.String(),
			Attempts:     ep.attempts.Load(),
			Successes:    ep.successes.Load(),
			Failures:     ep.failures.Load(),
			Retries:      ep.retries.Load(),
			Hedges:       ep.hedges.Load(),
			HedgeWins:    ep.hedgeWins.Load(),
			BreakerTrips: trips,
			BreakerSkips: ep.breakerSkips.Load(),
		})
	}
	return out
}
