package remote

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index/grid"
	"repro/internal/locality"
	"repro/internal/shard"
	"repro/internal/stats"
)

var testBounds = geom.NewRect(0, 0, 1000, 1000)

func testPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

func testRelation(t *testing.T, pts []geom.Point) *core.Relation {
	t.Helper()
	ix, err := grid.New(pts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewRelation(ix)
}

// fastOpts keeps envelope timing snappy for tests.
func fastOpts() Options {
	return Options{
		ProbeTimeout:     500 * time.Millisecond,
		MaxRetries:       2,
		RetryBackoff:     time.Millisecond,
		HedgeAfter:       20 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
	}
}

// fakeTransport scripts failures for envelope unit tests.
type fakeTransport struct {
	name     string
	inner    ShardTransport // delegate for successful calls
	failures atomic.Int64   // remaining scripted transient failures
	calls    atomic.Int64
	delay    time.Duration
}

func (f *fakeTransport) Endpoint() string { return f.name }

func (f *fakeTransport) step(ctx context.Context) error {
	f.calls.Add(1)
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return transientf("%s: %w", f.name, ctx.Err())
		}
	}
	if f.failures.Load() != 0 {
		f.failures.Add(-1)
		return transientf("%s: scripted failure", f.name)
	}
	return nil
}

func (f *fakeTransport) Probe(ctx context.Context, op Op, req *ProbeRequest, resp *ProbeResponse) error {
	if err := f.step(ctx); err != nil {
		return err
	}
	return f.inner.Probe(ctx, op, req, resp)
}

func (f *fakeTransport) Info(ctx context.Context) (*Info, error) {
	if err := f.step(ctx); err != nil {
		return nil, err
	}
	return f.inner.Info(ctx)
}

func (f *fakeTransport) Blocks(ctx context.Context) ([]BlockHeader, error) {
	if err := f.step(ctx); err != nil {
		return nil, err
	}
	return f.inner.Blocks(ctx)
}

func (f *fakeTransport) BlockPoints(ctx context.Context, block int) (*BlockPointsResponse, error) {
	if err := f.step(ctx); err != nil {
		return nil, err
	}
	return f.inner.BlockPoints(ctx, block)
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.onFailure()
	}
	if state, trips := b.snapshot(); state != breakerOpen || trips != 1 {
		t.Fatalf("after threshold failures: state=%v trips=%d", state, trips)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("open breaker refused the probe-through after cooldown")
	}
	// Only one probe-through at a time.
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe-through")
	}
	b.onFailure()
	if state, trips := b.snapshot(); state != breakerOpen || trips != 2 {
		t.Fatalf("failed probe-through: state=%v trips=%d", state, trips)
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("re-opened breaker refused its probe-through")
	}
	b.onSuccess()
	if state, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("successful probe-through left state %v", state)
	}
}

func TestLoopbackProbeMatchesLocal(t *testing.T) {
	pts := testPoints(500, 1)
	rel := testRelation(t, pts)
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	rs := NewReplicaSet(0, []ShardTransport{NewLoopback(srv, "")}, fastOpts())

	h := rel.Acquire()
	defer h.Release()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(20)
		want := h.S.Neighborhood(q, k, nil)
		resp, err := rs.Probe(context.Background(), OpNeighborhood, &ProbeRequest{X: q.X, Y: q.Y, K: k})
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		rebuilt := new(locality.Neighborhood)
		resp.fillNeighborhood(q, rebuilt)
		if !reflect.DeepEqual(want.Points, rebuilt.Points) {
			t.Fatalf("trial %d: points differ", trial)
		}
		if !reflect.DeepEqual(want.Dists, rebuilt.Dists) {
			t.Fatalf("trial %d: dists differ (wire sqrt reconstruction not exact)", trial)
		}
	}
}

func TestRetryOnTransient(t *testing.T) {
	rel := testRelation(t, testPoints(200, 3))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	fake := &fakeTransport{name: "fake://0", inner: NewLoopback(srv, "")}
	fake.failures.Store(2)
	rs := NewReplicaSet(0, []ShardTransport{fake}, fastOpts())

	resp, err := rs.Probe(context.Background(), OpNeighborhood, &ProbeRequest{X: 500, Y: 500, K: 5})
	if err != nil {
		t.Fatalf("probe should have succeeded after retries: %v", err)
	}
	if len(resp.IDs) != 5 {
		t.Fatalf("got %d candidates, want 5", len(resp.IDs))
	}
	ns := rs.NetStats()
	if ns.Endpoints[0].Retries != 2 {
		t.Fatalf("retries=%d, want 2", ns.Endpoints[0].Retries)
	}
	if ns.Endpoints[0].Successes != 1 {
		t.Fatalf("successes=%d, want 1", ns.Endpoints[0].Successes)
	}
}

func TestFailoverToReplica(t *testing.T) {
	rel := testRelation(t, testPoints(200, 4))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	dead := &fakeTransport{name: "fake://dead", inner: NewLoopback(srv, "")}
	dead.failures.Store(-1) // fail forever
	live := NewLoopback(srv, "loop://live")
	opts := fastOpts()
	opts.MaxRetries = NoRetries
	rs := NewReplicaSet(0, []ShardTransport{dead, live}, opts)

	resp, err := rs.Probe(context.Background(), OpNeighborhood, &ProbeRequest{X: 500, Y: 500, K: 3})
	if err != nil {
		t.Fatalf("failover probe: %v", err)
	}
	if len(resp.IDs) != 3 {
		t.Fatalf("got %d candidates, want 3", len(resp.IDs))
	}
	ns := rs.NetStats()
	if ns.Failovers == 0 {
		t.Fatal("failover counter did not increment")
	}
}

func TestBreakerShedsAndRecovers(t *testing.T) {
	rel := testRelation(t, testPoints(200, 5))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	flaky := &fakeTransport{name: "fake://flaky", inner: NewLoopback(srv, "")}
	flaky.failures.Store(-1)
	live := NewLoopback(srv, "loop://live")
	opts := fastOpts()
	opts.MaxRetries = NoRetries
	opts.HedgeAfter = NoHedging
	rs := NewReplicaSet(0, []ShardTransport{flaky, live}, opts)

	ctx := context.Background()
	req := &ProbeRequest{X: 100, Y: 100, K: 2}
	// Trip the first endpoint's breaker.
	for i := 0; i < 3; i++ {
		if _, err := rs.Probe(ctx, OpNeighborhood, req); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	ns := rs.NetStats()
	if ns.Endpoints[0].BreakerTrips == 0 {
		t.Fatalf("first endpoint's breaker never tripped: %+v", ns.Endpoints[0])
	}
	// While open, the envelope prefers the healthy replica without even
	// attempting the tripped one.
	attemptsBefore := ns.Endpoints[0].Attempts
	if _, err := rs.Probe(ctx, OpNeighborhood, req); err != nil {
		t.Fatalf("probe with open breaker: %v", err)
	}
	ns = rs.NetStats()
	if ns.Endpoints[0].Attempts != attemptsBefore {
		t.Fatal("open breaker did not shed the dead endpoint")
	}
	// After cooldown, the probe-through finds the endpoint healthy again.
	flaky.failures.Store(0)
	time.Sleep(110 * time.Millisecond)
	if _, err := rs.Probe(ctx, OpNeighborhood, req); err != nil {
		t.Fatalf("probe-through: %v", err)
	}
	ns = rs.NetStats()
	if ns.Endpoints[0].Breaker != "closed" {
		t.Fatalf("breaker state after healthy probe-through: %s", ns.Endpoints[0].Breaker)
	}
}

func TestExhaustedReplicaSetIsUnavailable(t *testing.T) {
	rel := testRelation(t, testPoints(100, 6))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	dead1 := &fakeTransport{name: "fake://d1", inner: NewLoopback(srv, "")}
	dead2 := &fakeTransport{name: "fake://d2", inner: NewLoopback(srv, "")}
	dead1.failures.Store(-1)
	dead2.failures.Store(-1)
	opts := fastOpts()
	opts.MaxRetries = NoRetries
	opts.HedgeAfter = NoHedging
	rs := NewReplicaSet(7, []ShardTransport{dead1, dead2}, opts)

	_, err := rs.Probe(context.Background(), OpNeighborhood, &ProbeRequest{X: 1, Y: 1, K: 1})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("exhausted set returned %v, want ErrUnavailable", err)
	}
	ns := rs.NetStats()
	if ns.Exhausted != 1 {
		t.Fatalf("exhausted=%d, want 1", ns.Exhausted)
	}
}

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	rel := testRelation(t, testPoints(200, 7))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	slow := &fakeTransport{name: "fake://slow", inner: NewLoopback(srv, ""), delay: 300 * time.Millisecond}
	fast := NewLoopback(srv, "loop://fast")
	opts := fastOpts()
	opts.HedgeAfter = 10 * time.Millisecond
	rs := NewReplicaSet(0, []ShardTransport{slow, fast}, opts)

	start := time.Now()
	_, err := rs.Probe(context.Background(), OpNeighborhood, &ProbeRequest{X: 5, Y: 5, K: 1})
	if err != nil {
		t.Fatalf("hedged probe: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedge did not beat the slow primary: %v", elapsed)
	}
	ns := rs.NetStats()
	if ns.Endpoints[0].Hedges == 0 {
		t.Fatal("no hedge launched against the slow primary")
	}
	if ns.Endpoints[1].HedgeWins == 0 {
		t.Fatal("hedge win not recorded")
	}
}

func TestCorruptResponseIsRetried(t *testing.T) {
	rel := testRelation(t, testPoints(200, 8))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	lb := NewLoopback(srv, "loop://corrupt")
	rs := NewReplicaSet(0, []ShardTransport{lb}, fastOpts())

	var fired atomic.Bool
	fault.Arm(&fault.Injector{CorruptResponse: func(ep string) bool {
		return ep == "loop://corrupt" && fired.CompareAndSwap(false, true)
	}})
	defer fault.Disarm()

	resp, err := rs.Probe(context.Background(), OpNeighborhood, &ProbeRequest{X: 9, Y: 9, K: 4})
	if err != nil {
		t.Fatalf("probe after one corrupted response: %v", err)
	}
	if err := resp.validate(OpNeighborhood); err != nil {
		t.Fatalf("final response invalid: %v", err)
	}
	ns := rs.NetStats()
	if ns.Endpoints[0].Retries == 0 {
		t.Fatal("corrupted response was not retried")
	}
}

func TestDropProbeFailsOver(t *testing.T) {
	rel := testRelation(t, testPoints(200, 9))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test"})
	a := NewLoopback(srv, "loop://a")
	b := NewLoopback(srv, "loop://b")
	opts := fastOpts()
	opts.MaxRetries = NoRetries
	rs := NewReplicaSet(0, []ShardTransport{a, b}, opts)

	fault.DropEndpoint("loop://a")
	defer fault.Disarm()

	resp, err := rs.Probe(context.Background(), OpNeighborhood, &ProbeRequest{X: 50, Y: 50, K: 2})
	if err != nil {
		t.Fatalf("probe with dropped primary: %v", err)
	}
	if len(resp.IDs) != 2 {
		t.Fatalf("got %d candidates, want 2", len(resp.IDs))
	}
	ns := rs.NetStats()
	if ns.Failovers == 0 {
		t.Fatal("drop did not fail over")
	}
}

func TestHTTPTransportEndToEnd(t *testing.T) {
	pts := testPoints(400, 10)
	rel := testRelation(t, pts)
	srv := NewShardServer(rel, ShardServerConfig{Name: "http-test", Shard: 0, Shards: 1, Index: "grid"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	tr := NewHTTPTransport(ts.URL, nil)
	ctx := context.Background()

	info, err := tr.Info(ctx)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Len != 400 || info.Name != "http-test" {
		t.Fatalf("info = %+v", info)
	}

	blocks, err := tr.Blocks(ctx)
	if err != nil {
		t.Fatalf("blocks: %v", err)
	}
	if len(blocks) != info.Blocks {
		t.Fatalf("blocks len %d, info says %d", len(blocks), info.Blocks)
	}
	total := 0
	for _, b := range blocks {
		total += b.Count
	}
	if total != 400 {
		t.Fatalf("block headers cover %d points", total)
	}

	bp, err := tr.BlockPoints(ctx, 0)
	if err != nil {
		t.Fatalf("block points: %v", err)
	}
	if len(bp.Xs) != blocks[0].Count {
		t.Fatalf("block 0 returned %d points, header says %d", len(bp.Xs), blocks[0].Count)
	}

	// Probe over real HTTP must reconstruct the exact local neighborhood —
	// the wire-exactness contract (shortest round-trip JSON floats,
	// Dists = Sqrt(dSq)).
	h := rel.Acquire()
	defer h.Release()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(15)
		want := h.S.Neighborhood(q, k, nil)
		var resp ProbeResponse
		if err := tr.Probe(ctx, OpNeighborhood, &ProbeRequest{X: q.X, Y: q.Y, K: k}, &resp); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rebuilt := new(locality.Neighborhood)
		resp.fillNeighborhood(q, rebuilt)
		if !reflect.DeepEqual(want.Points, rebuilt.Points) || !reflect.DeepEqual(want.Dists, rebuilt.Dists) {
			t.Fatalf("trial %d: HTTP round-trip not byte-identical", trial)
		}
	}

	// Unknown block index is a fatal (non-transient) protocol error.
	if _, err := tr.BlockPoints(ctx, 10_000); err == nil || isTransient(err) {
		t.Fatalf("out-of-range block: err=%v (should be fatal)", err)
	}
}

func TestDialValidatesLayout(t *testing.T) {
	rel := testRelation(t, testPoints(100, 12))
	srv := NewShardServer(rel, ShardServerConfig{Name: "test", Shard: 1, Shards: 3})
	lb := NewLoopback(srv, "")
	ctx := context.Background()

	// Dialing the shard at the wrong position fails.
	if _, err := Dial(ctx, [][]ShardTransport{{lb}, {lb}, {lb}}, fastOpts()); err == nil {
		t.Fatal("mis-positioned shard accepted")
	}
	// Dialing with the wrong total count fails.
	if _, err := Dial(ctx, [][]ShardTransport{{lb}, {lb}}, fastOpts()); err == nil {
		t.Fatal("wrong layout size accepted")
	}
}

func TestRemoteGroupMatchesLocal(t *testing.T) {
	pts := testPoints(600, 13)
	const nShards = 3
	stores := shard.Partition(pts, nShards, shard.PolicyHash)
	transports := make([][]ShardTransport, nShards)
	for s, st := range stores {
		ix, err := grid.NewFromStore(st, grid.Options{TargetPerCell: 16, Bounds: testBounds})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewShardServer(core.NewRelation(ix), ShardServerConfig{
			Name: "grp", Shard: s, Shards: nShards, Index: "grid",
		})
		transports[s] = []ShardTransport{NewLoopback(srv, fmt.Sprintf("loop://grp/%d", s))}
	}
	members, err := Dial(context.Background(), transports, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	counters := make([]*stats.Counters, nShards)
	for i := range counters {
		counters[i] = new(stats.Counters)
	}
	g := NewGroup(members, counters)

	want := testRelation(t, pts)
	h := want.Acquire()
	defer h.Release()
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 25; trial++ {
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(12)
		wantPts := shard.Select(context.Background(), shard.SingleGroup(want), q, k, nil)
		gotPts := shard.Select(context.Background(), g, q, k, nil)
		if !reflect.DeepEqual(wantPts, gotPts) {
			t.Fatalf("trial %d: remote group select differs", trial)
		}
	}
	// The wire stats folded into the coordinator-side counters.
	totalNbhd := int64(0)
	for _, c := range counters {
		totalNbhd += c.Snapshot().Neighborhoods
	}
	if totalNbhd == 0 {
		t.Fatal("wire-reported stats were not folded into group counters")
	}
}
