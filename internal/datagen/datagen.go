// Package datagen provides the deterministic synthetic point generators used
// by the paper's experiments (Section 6): uniform data, and clustered data
// with a configurable number of equal-size, equal-area, non-overlapping
// clusters ("All the clusters have the same number of points (4000), have
// the same area, and are non-overlapping" — Section 6.2.1).
//
// All generators are pure functions of their parameters and seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Uniform returns n points independently and uniformly distributed over
// bounds.
func Uniform(n int, bounds geom.Rect, seed int64) []geom.Point {
	return UniformStore(n, bounds, seed).Points()
}

// UniformStore is Uniform generating directly into a columnar point store,
// pre-sized for exactly n points (no append-regrow) with stable IDs
// 0..n-1 in generation order. It draws the same coordinate sequence as
// Uniform for the same parameters.
func UniformStore(n int, bounds geom.Rect, seed int64) *geom.PointStore {
	rng := rand.New(rand.NewSource(seed))
	st := geom.NewPointStore(n)
	for i := 0; i < n; i++ {
		st.Append(geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		})
	}
	return st
}

// ClusterConfig parameterizes Clustered.
type ClusterConfig struct {
	// NumClusters is the number of clusters; must be positive.
	NumClusters int

	// PointsPerCluster is the number of points in each cluster; must be
	// positive. The paper's Figure 23 setup uses 4000.
	PointsPerCluster int

	// Radius is the cluster radius: points are placed uniformly inside a
	// disk of this radius around the cluster center, giving every cluster
	// the same area. When zero, a radius is derived so all clusters
	// together cover roughly 5% of the bounds.
	Radius float64

	// Bounds is the region cluster centers are placed in; required.
	Bounds geom.Rect

	// Seed drives all randomness.
	Seed int64
}

// Clustered generates cfg.NumClusters non-overlapping equal-area clusters of
// cfg.PointsPerCluster points each. Cluster centers are placed by rejection
// sampling so that cluster disks do not overlap; if the bounds cannot fit
// the requested clusters, an error is returned.
func Clustered(cfg ClusterConfig) ([]geom.Point, error) {
	st, err := ClusteredStore(cfg)
	if err != nil {
		return nil, err
	}
	return st.Points(), nil
}

// ClusteredStore is Clustered generating directly into a columnar point
// store, pre-sized for exactly NumClusters·PointsPerCluster points with
// stable IDs in generation order. It draws the same coordinate sequence as
// Clustered for the same configuration.
func ClusteredStore(cfg ClusterConfig) (*geom.PointStore, error) {
	if cfg.NumClusters <= 0 {
		return nil, fmt.Errorf("datagen: NumClusters must be positive, got %d", cfg.NumClusters)
	}
	if cfg.PointsPerCluster <= 0 {
		return nil, fmt.Errorf("datagen: PointsPerCluster must be positive, got %d", cfg.PointsPerCluster)
	}
	if cfg.Bounds.Area() <= 0 {
		return nil, fmt.Errorf("datagen: Bounds must have positive area, got %v", cfg.Bounds)
	}
	radius := cfg.Radius
	if radius <= 0 {
		// All clusters together cover ~5% of the bounds.
		radius = math.Sqrt(0.05 * cfg.Bounds.Area() / (math.Pi * float64(cfg.NumClusters)))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centers, err := placeCenters(cfg.NumClusters, radius, cfg.Bounds, rng)
	if err != nil {
		return nil, err
	}

	st := geom.NewPointStore(cfg.NumClusters * cfg.PointsPerCluster)
	for _, c := range centers {
		for i := 0; i < cfg.PointsPerCluster; i++ {
			st.Append(randomInDisk(c, radius, rng))
		}
	}
	return st, nil
}

// ClusterCenters places n non-overlapping cluster centers for disks of the
// given radius inside bounds, deterministically in seed. It exposes the
// placement step of Clustered so callers can build families of clustered
// datasets with *nested* coverage (e.g. the paper's Figure 23, where
// relation A has the same clusters as relation C plus extra ones).
func ClusterCenters(n int, radius float64, bounds geom.Rect, seed int64) ([]geom.Point, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: ClusterCenters n must be positive, got %d", n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("datagen: ClusterCenters radius must be positive, got %v", radius)
	}
	rng := rand.New(rand.NewSource(seed))
	return placeCenters(n, radius, bounds, rng)
}

// ClusteredAt generates perCluster points uniformly inside a disk of the
// given radius around each center. Unlike Clustered, the centers are caller
// supplied, so different relations can share cluster locations.
func ClusteredAt(centers []geom.Point, perCluster int, radius float64, seed int64) ([]geom.Point, error) {
	st, err := ClusteredAtStore(centers, perCluster, radius, seed)
	if err != nil {
		return nil, err
	}
	return st.Points(), nil
}

// ClusteredAtStore is ClusteredAt generating directly into a pre-sized
// columnar point store with stable IDs in generation order.
func ClusteredAtStore(centers []geom.Point, perCluster int, radius float64, seed int64) (*geom.PointStore, error) {
	if perCluster <= 0 {
		return nil, fmt.Errorf("datagen: ClusteredAt perCluster must be positive, got %d", perCluster)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("datagen: ClusteredAt radius must be positive, got %v", radius)
	}
	rng := rand.New(rand.NewSource(seed))
	st := geom.NewPointStore(len(centers) * perCluster)
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			st.Append(randomInDisk(c, radius, rng))
		}
	}
	return st, nil
}

// placeCenters rejection-samples cluster centers whose disks of the given
// radius neither overlap each other nor cross the bounds.
func placeCenters(n int, radius float64, bounds geom.Rect, rng *rand.Rand) ([]geom.Point, error) {
	inner := geom.Rect{
		MinX: bounds.MinX + radius, MinY: bounds.MinY + radius,
		MaxX: bounds.MaxX - radius, MaxY: bounds.MaxY - radius,
	}
	if inner.MinX >= inner.MaxX || inner.MinY >= inner.MaxY {
		return nil, fmt.Errorf("datagen: cluster radius %v does not fit in bounds %v", radius, bounds)
	}
	const maxAttempts = 20000
	centers := make([]geom.Point, 0, n)
	minSepSq := (2 * radius) * (2 * radius)
	for attempt := 0; len(centers) < n; attempt++ {
		if attempt >= maxAttempts {
			return nil, fmt.Errorf("datagen: could not place %d non-overlapping clusters of radius %v in %v after %d attempts",
				n, radius, bounds, maxAttempts)
		}
		c := geom.Point{
			X: inner.MinX + rng.Float64()*inner.Width(),
			Y: inner.MinY + rng.Float64()*inner.Height(),
		}
		ok := true
		for _, o := range centers {
			if c.DistSq(o) < minSepSq {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, c)
		}
	}
	return centers, nil
}

// randomInDisk returns a point uniform over the disk of the given radius
// around c (area-uniform via the sqrt transform).
func randomInDisk(c geom.Point, radius float64, rng *rand.Rand) geom.Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return geom.Point{X: c.X + r*math.Cos(theta), Y: c.Y + r*math.Sin(theta)}
}
