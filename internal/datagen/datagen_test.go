package datagen

import (
	"reflect"
	"testing"

	"repro/internal/geom"
)

func TestUniformBasics(t *testing.T) {
	bounds := geom.NewRect(10, 20, 110, 220)
	pts := Uniform(500, bounds, 42)
	if len(pts) != 500 {
		t.Fatalf("len = %d, want 500", len(pts))
	}
	for _, p := range pts {
		if !bounds.Contains(p) {
			t.Fatalf("point %v outside bounds %v", p, bounds)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1, 1)
	a := Uniform(100, bounds, 7)
	b := Uniform(100, bounds, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed must reproduce the same points")
	}
	c := Uniform(100, bounds, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds should differ")
	}
}

func TestUniformZero(t *testing.T) {
	if pts := Uniform(0, geom.NewRect(0, 0, 1, 1), 1); len(pts) != 0 {
		t.Fatalf("n=0 must produce no points")
	}
}

func TestClusteredBasics(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	cfg := ClusterConfig{NumClusters: 4, PointsPerCluster: 250, Radius: 50, Bounds: bounds, Seed: 5}
	pts, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1000 {
		t.Fatalf("len = %d, want 1000", len(pts))
	}
	for _, p := range pts {
		if !bounds.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
}

// TestClusteredNonOverlapping verifies the Section 6.2.1 requirement: the
// clusters are disjoint disks. We recover the clusters from the generator's
// structure (points come out grouped) and check pairwise center distances.
func TestClusteredNonOverlapping(t *testing.T) {
	cfg := ClusterConfig{NumClusters: 6, PointsPerCluster: 100, Radius: 40,
		Bounds: geom.NewRect(0, 0, 1000, 1000), Seed: 11}
	pts, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	centers := make([]geom.Point, cfg.NumClusters)
	for i := 0; i < cfg.NumClusters; i++ {
		group := pts[i*cfg.PointsPerCluster : (i+1)*cfg.PointsPerCluster]
		var cx, cy float64
		for _, p := range group {
			cx += p.X
			cy += p.Y
		}
		centers[i] = geom.Point{X: cx / float64(len(group)), Y: cy / float64(len(group))}
		// Every point within its cluster radius of the empirical center
		// (allow slack for the center estimate).
		for _, p := range group {
			if p.Dist(centers[i]) > 2*cfg.Radius {
				t.Fatalf("cluster %d point %v too far from center %v", i, p, centers[i])
			}
		}
	}
	for i := 0; i < len(centers); i++ {
		for j := i + 1; j < len(centers); j++ {
			if d := centers[i].Dist(centers[j]); d < 2*cfg.Radius-20 {
				t.Fatalf("clusters %d and %d overlap: center distance %v < %v", i, j, d, 2*cfg.Radius)
			}
		}
	}
}

func TestClusteredDeterministic(t *testing.T) {
	cfg := ClusterConfig{NumClusters: 3, PointsPerCluster: 50, Radius: 30,
		Bounds: geom.NewRect(0, 0, 500, 500), Seed: 9}
	a, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config must reproduce the same points")
	}
}

func TestClusteredDefaultRadius(t *testing.T) {
	cfg := ClusterConfig{NumClusters: 5, PointsPerCluster: 10,
		Bounds: geom.NewRect(0, 0, 100, 100), Seed: 3}
	pts, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("len = %d, want 50", len(pts))
	}
}

func TestClusteredErrors(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	cases := []ClusterConfig{
		{NumClusters: 0, PointsPerCluster: 10, Bounds: bounds},
		{NumClusters: 2, PointsPerCluster: 0, Bounds: bounds},
		{NumClusters: 2, PointsPerCluster: 10},                              // no bounds
		{NumClusters: 2, PointsPerCluster: 10, Radius: 500, Bounds: bounds}, // radius too large
		{NumClusters: 50, PointsPerCluster: 10, Radius: 40, Bounds: bounds}, // cannot fit
	}
	for i, cfg := range cases {
		if _, err := Clustered(cfg); err == nil {
			t.Errorf("case %d: expected error for config %+v", i, cfg)
		}
	}
}

// TestStoreGeneratorsMatchPointGenerators pins the columnar generators to
// the point generators: same parameters, same coordinate sequence, IDs in
// generation order, and exactly pre-sized backing arrays.
func TestStoreGeneratorsMatchPointGenerators(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)

	upts := Uniform(500, bounds, 7)
	ust := UniformStore(500, bounds, 7)
	if !reflect.DeepEqual(ust.Points(), upts) {
		t.Fatal("UniformStore diverges from Uniform")
	}
	if cap(ust.Xs) != 500 || cap(ust.Ys) != 500 || cap(ust.IDs) != 500 {
		t.Fatalf("UniformStore not pre-sized exactly: caps %d/%d/%d", cap(ust.Xs), cap(ust.Ys), cap(ust.IDs))
	}
	for i := 0; i < ust.Len(); i++ {
		if ust.ID(i) != int32(i) {
			t.Fatalf("UniformStore ID(%d) = %d, want generation order", i, ust.ID(i))
		}
	}

	cfg := ClusterConfig{NumClusters: 3, PointsPerCluster: 40, Bounds: bounds, Seed: 11}
	cpts, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := ClusteredStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cst.Points(), cpts) {
		t.Fatal("ClusteredStore diverges from Clustered")
	}
	if cap(cst.Xs) != 120 {
		t.Fatalf("ClusteredStore not pre-sized exactly: cap %d, want 120", cap(cst.Xs))
	}

	centers, err := ClusterCenters(2, 10, bounds, 13)
	if err != nil {
		t.Fatal(err)
	}
	apts, err := ClusteredAt(centers, 25, 10, 17)
	if err != nil {
		t.Fatal(err)
	}
	ast, err := ClusteredAtStore(centers, 25, 10, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ast.Points(), apts) {
		t.Fatal("ClusteredAtStore diverges from ClusteredAt")
	}
}
