// Package qcache implements a bounded, sharded-lock memoization cache for
// query results, keyed by (dataset epoch, focal point, k, query shape) and
// holding stable-ID result slices. It exploits the repeated-focal-point skew
// of production serving workloads: many users ask near-identical questions
// of the same dataset, and an immutable relation answers them identically
// until its epoch changes.
//
// The epoch is part of the key, so invalidation is free: bumping a
// relation's epoch (Relation.Invalidate, the hook the ROADMAP's mutability
// work will drive) makes every cached entry unreachable, and the bounded
// eviction recycles the stale slots. Hits return the stored slice without
// copying or allocating; callers must treat it as immutable.
package qcache

import (
	"math"
	"sync"
)

// Shape distinguishes query kinds sharing one cache, so a kNN-select and a
// future cached shape with the same (focal, k) never collide.
type Shape uint8

// The cached query shapes.
const (
	// ShapeKNNSelect is the k-nearest-neighbor select.
	ShapeKNNSelect Shape = iota
)

// Key identifies one cached query result. Float coordinates participate as
// exact bit patterns (the struct is comparable), matching the engine's
// exact-float semantics: two focals hit the same entry iff the engine would
// compute the identical answer.
type Key struct {
	Epoch  uint64
	FX, FY float64
	K      int
	Shape  Shape
}

// nShards is the lock-shard count; requests hash across it so concurrent
// probes rarely contend.
const nShards = 16

type shard struct {
	mu sync.Mutex
	m  map[Key][]int32
}

// Cache is a bounded memo from Key to stable-ID result slices, safe for
// concurrent use.
type Cache struct {
	perShard int
	shards   [nShards]shard
}

// New returns a cache bounded at roughly capacity entries (split evenly
// across the lock shards). capacity <= 0 selects a default of 4096.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + nShards - 1) / nShards
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[Key][]int32, per)
	}
	return c
}

// hash mixes the key's bits (FNV-1a over the fields) to pick a lock shard.
func (k Key) hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime
			v >>= 8
		}
	}
	mix(k.Epoch)
	mix(math.Float64bits(k.FX))
	mix(math.Float64bits(k.FY))
	mix(uint64(k.K))
	mix(uint64(k.Shape))
	return h
}

// Get returns the cached IDs for key. The returned slice is shared — the
// caller must not mutate it. The hit path performs no allocation.
func (c *Cache) Get(key Key) ([]int32, bool) {
	s := &c.shards[key.hash()%nShards]
	s.mu.Lock()
	ids, ok := s.m[key]
	s.mu.Unlock()
	return ids, ok
}

// Put stores ids under key, evicting an arbitrary resident entry when the
// key's shard is full. The cache takes ownership of ids.
func (c *Cache) Put(key Key, ids []int32) {
	s := &c.shards[key.hash()%nShards]
	s.mu.Lock()
	if _, resident := s.m[key]; !resident && len(s.m) >= c.perShard {
		for k := range s.m {
			delete(s.m, k)
			break
		}
	}
	s.m[key] = ids
	s.mu.Unlock()
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
