package qcache

import (
	"sync"
	"testing"
)

func key(epoch uint64, fx, fy float64, k int) Key {
	return Key{Epoch: epoch, FX: fx, FY: fy, K: k, Shape: ShapeKNNSelect}
}

func TestGetPut(t *testing.T) {
	c := New(64)
	k1 := key(1, 5000, 5000, 10)
	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k1, []int32{3, 1, 4})
	ids, ok := c.Get(k1)
	if !ok || len(ids) != 3 || ids[0] != 3 || ids[1] != 1 || ids[2] != 4 {
		t.Fatalf("Get after Put: %v %v", ids, ok)
	}

	// Every key field participates: perturbing any one misses.
	for _, other := range []Key{
		key(2, 5000, 5000, 10),
		key(1, 5000.5, 5000, 10),
		key(1, 5000, 4999, 10),
		key(1, 5000, 5000, 11),
		{Epoch: 1, FX: 5000, FY: 5000, K: 10, Shape: ShapeKNNSelect + 1},
	} {
		if _, ok := c.Get(other); ok {
			t.Fatalf("key %+v unexpectedly hit the entry for %+v", other, k1)
		}
	}

	// Put on a resident key replaces the value.
	c.Put(k1, []int32{7})
	if ids, _ := c.Get(k1); len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("Put did not replace: %v", ids)
	}
}

// TestEpochInvalidation is the invalidation contract: entries of a stale
// epoch become unreachable because the epoch is part of the key.
func TestEpochInvalidation(t *testing.T) {
	c := New(64)
	c.Put(key(1, 1, 2, 5), []int32{0})
	if _, ok := c.Get(key(2, 1, 2, 5)); ok {
		t.Fatal("bumped epoch still hits the stale entry")
	}
	c.Put(key(2, 1, 2, 5), []int32{1})
	if ids, ok := c.Get(key(2, 1, 2, 5)); !ok || ids[0] != 1 {
		t.Fatalf("fresh-epoch entry not served: %v %v", ids, ok)
	}
}

// TestBounded holds the cache to its capacity contract: residency never
// exceeds the rounded-up shard budget no matter how many keys are inserted.
func TestBounded(t *testing.T) {
	const capacity = 64
	c := New(capacity)
	perShard := (capacity + nShards - 1) / nShards
	for i := 0; i < 100*capacity; i++ {
		c.Put(key(1, float64(i), float64(i%7), i%13+1), []int32{int32(i)})
	}
	if got, max := c.Len(), perShard*nShards; got > max {
		t.Fatalf("cache grew to %d entries, bound is %d", got, max)
	}
	if c.Len() == 0 {
		t.Fatal("cache evicted everything")
	}
}

func TestDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		if c := New(capacity); c.perShard != 4096/nShards {
			t.Fatalf("New(%d): per-shard budget %d", capacity, c.perShard)
		}
	}
}

// TestGetAllocs is the acceptance criterion on the hit path: a probe that
// hits allocates nothing.
func TestGetAllocs(t *testing.T) {
	c := New(64)
	k1 := key(1, 5000, 5000, 10)
	c.Put(k1, []int32{1, 2, 3})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(k1); !ok {
			t.Fatal("probe missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v objects per probe, want 0", allocs)
	}
}

// TestConcurrent drives overlapping Get/Put/Len from many goroutines; the
// -race build is the assertion.
func TestConcurrent(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(uint64(g%2+1), float64(i%40), float64(g), i%5+1)
				if i%3 == 0 {
					c.Put(k, []int32{int32(i)})
				} else {
					c.Get(k)
				}
			}
			c.Len()
		}(g)
	}
	wg.Wait()
}
