// Package pointio reads and writes point sets as CSV ("x,y" per line, with
// an optional header). It is the interchange format between the cmd/datagen
// generator and the cmd/knnquery runner, and a convenient way to feed real
// datasets into the library.
//
// The native in-memory form is the columnar geom.PointStore: ReadStore /
// ReadFileStore parse straight into a store (ReadFileStore pre-sized from a
// line count, so filling it never regrows), assigning stable IDs in file
// order, and WriteStore streams a store back out in storage order — a
// lossless round-trip of coordinates, order and IDs for unpermuted stores.
// The []geom.Point functions remain as thin wrappers.
package pointio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Write streams points as CSV with an "x,y" header.
func Write(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("x,y\n"); err != nil {
		return fmt.Errorf("pointio: writing header: %w", err)
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y); err != nil {
			return fmt.Errorf("pointio: writing point: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("pointio: flushing: %w", err)
	}
	return nil
}

// WriteStore streams a point store as CSV in storage order, row i holding
// point i of the store. Reading the output back yields a store with the
// same coordinates in the same order (and, for a store whose IDs are the
// identity permutation, the same IDs).
func WriteStore(w io.Writer, st *geom.PointStore) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("x,y\n"); err != nil {
		return fmt.Errorf("pointio: writing header: %w", err)
	}
	for i := 0; i < st.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", st.Xs[i], st.Ys[i]); err != nil {
			return fmt.Errorf("pointio: writing point: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("pointio: flushing: %w", err)
	}
	return nil
}

// WriteFile writes points to a CSV file, creating or truncating it.
func WriteFile(path string, pts []geom.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pointio: %w", err)
	}
	defer f.Close()
	if err := Write(f, pts); err != nil {
		return err
	}
	return f.Close()
}

// WriteFileStore writes a point store to a CSV file, creating or truncating
// it.
func WriteFileStore(path string, st *geom.PointStore) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pointio: %w", err)
	}
	defer f.Close()
	if err := WriteStore(f, st); err != nil {
		return err
	}
	return f.Close()
}

// Read parses CSV points. A first line that does not parse as two floats is
// treated as a header and skipped; blank lines are ignored. Errors identify
// the offending line number.
func Read(r io.Reader) ([]geom.Point, error) {
	st, err := ReadStore(r)
	if err != nil {
		return nil, err
	}
	return st.Points(), nil
}

// ReadStore parses CSV points directly into a columnar store, preserving
// file order and assigning stable IDs 0..n-1 by row. Header and blank-line
// handling match Read.
func ReadStore(r io.Reader) (*geom.PointStore, error) {
	return readStore(r, 0)
}

// readStore parses into a store pre-sized for sizeHint points (0 for
// unknown).
func readStore(r io.Reader, sizeHint int) (*geom.PointStore, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	st := geom.NewPointStore(sizeHint)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		p, err := parseLine(line)
		if err != nil {
			if lineNo == 1 {
				continue // header
			}
			return nil, fmt.Errorf("pointio: line %d: %w", lineNo, err)
		}
		st.Append(p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pointio: reading: %w", err)
	}
	return st, nil
}

// ReadFile reads a CSV point file.
func ReadFile(path string) ([]geom.Point, error) {
	st, err := ReadFileStore(path)
	if err != nil {
		return nil, err
	}
	return st.Points(), nil
}

// ReadFileStore reads a CSV point file into a columnar store. The whole
// file is loaded and its lines counted first, so the store is pre-sized
// exactly and filling it never regrows the coordinate arrays.
func ReadFileStore(path string) (*geom.PointStore, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pointio: %w", err)
	}
	return readStore(bytes.NewReader(data), countLines(data))
}

// countLines counts newline-terminated rows (plus a trailing unterminated
// one) — an upper bound on the point count that makes the store pre-size
// exact up to header and blank lines.
func countLines(data []byte) int {
	n := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

func parseLine(line string) (geom.Point, error) {
	i := strings.IndexByte(line, ',')
	if i < 0 {
		return geom.Point{}, fmt.Errorf("expected \"x,y\", got %q", line)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(line[:i]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad x %q: %w", line[:i], err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad y %q: %w", line[i+1:], err)
	}
	return geom.Point{X: x, Y: y}, nil
}
