// Package pointio reads and writes point sets as CSV ("x,y" per line, with
// an optional header). It is the interchange format between the cmd/datagen
// generator and the cmd/knnquery runner, and a convenient way to feed real
// datasets into the library.
package pointio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Write streams points as CSV with an "x,y" header.
func Write(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("x,y\n"); err != nil {
		return fmt.Errorf("pointio: writing header: %w", err)
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y); err != nil {
			return fmt.Errorf("pointio: writing point: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("pointio: flushing: %w", err)
	}
	return nil
}

// WriteFile writes points to a CSV file, creating or truncating it.
func WriteFile(path string, pts []geom.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pointio: %w", err)
	}
	defer f.Close()
	if err := Write(f, pts); err != nil {
		return err
	}
	return f.Close()
}

// Read parses CSV points. A first line that does not parse as two floats is
// treated as a header and skipped; blank lines are ignored. Errors identify
// the offending line number.
func Read(r io.Reader) ([]geom.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var pts []geom.Point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		p, err := parseLine(line)
		if err != nil {
			if lineNo == 1 {
				continue // header
			}
			return nil, fmt.Errorf("pointio: line %d: %w", lineNo, err)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pointio: reading: %w", err)
	}
	return pts, nil
}

// ReadFile reads a CSV point file.
func ReadFile(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pointio: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func parseLine(line string) (geom.Point, error) {
	i := strings.IndexByte(line, ',')
	if i < 0 {
		return geom.Point{}, fmt.Errorf("expected \"x,y\", got %q", line)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(line[:i]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad x %q: %w", line[:i], err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("bad y %q: %w", line[i+1:], err)
	}
	return geom.Point{X: x, Y: y}, nil
}
