package pointio

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestRoundTrip(t *testing.T) {
	pts := []geom.Point{{X: 1.5, Y: -2.25}, {X: 0, Y: 0}, {X: 1e6, Y: 1e-6}}
	var sb strings.Builder
	if err := Write(&sb, pts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Fatalf("round trip: got %v, want %v", got, pts)
	}
}

func TestReadWithoutHeader(t *testing.T) {
	got, err := Read(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReadSkipsBlanksAndTrimsSpaces(t *testing.T) {
	got, err := Read(strings.NewReader("x,y\n\n 1 , 2 \n\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d points, want 2", len(got))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"x,y\n1;2\n",    // wrong separator
		"x,y\nfoo,2\n",  // bad x
		"x,y\n1,bar\n",  // bad y
		"x,y\n1,2\n3\n", // missing column
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty input must give no points")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	pts := []geom.Point{{X: 7, Y: 8}, {X: -1, Y: 0.5}}
	if err := WriteFile(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Fatalf("file round trip: got %v, want %v", got, pts)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Errorf("missing file must error")
	}
}

// TestStoreRoundTrip checks the columnar path: WriteStore → ReadStore must
// reproduce coordinates, order and (for identity-ID stores) IDs exactly.
func TestStoreRoundTrip(t *testing.T) {
	st := geom.StoreFromPoints([]geom.Point{{X: 1.5, Y: -2.25}, {X: 0, Y: 0}, {X: 1e6, Y: 1e-6}})
	var sb strings.Builder
	if err := WriteStore(&sb, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("store round trip: got %+v, want %+v", got, st)
	}
}

// TestFileStoreRoundTripPreSized checks that ReadFileStore pre-sizes the
// store exactly from the file's line count: no append-regrow, capacities
// equal to the final length.
func TestFileStoreRoundTripPreSized(t *testing.T) {
	st := geom.StoreFromPoints([]geom.Point{{X: 3, Y: 4}, {X: -1, Y: 2}, {X: 0.5, Y: 0.25}, {X: 7, Y: 7}})
	path := filepath.Join(t.TempDir(), "pts.csv")
	if err := WriteFileStore(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("file store round trip: got %+v, want %+v", got, st)
	}
	// The pre-size comes from the file's line count, which includes the
	// header row: capacity is the point count plus at most one, and append
	// never regrew past it.
	if cap(got.Xs) < got.Len() || cap(got.Xs) > got.Len()+1 ||
		cap(got.Ys) != cap(got.Xs) || cap(got.IDs) != cap(got.Xs) {
		t.Fatalf("store not pre-sized from the line count: len %d, caps %d/%d/%d",
			got.Len(), cap(got.Xs), cap(got.Ys), cap(got.IDs))
	}
}

// TestStoreMatchesPointAPI pins the wrappers: Read and ReadStore must agree.
func TestStoreMatchesPointAPI(t *testing.T) {
	in := "x,y\n1,2\n3,4\n"
	pts, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReadStore(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Points(), pts) {
		t.Fatalf("ReadStore points %v != Read %v", st.Points(), pts)
	}
	for i := 0; i < st.Len(); i++ {
		if st.ID(i) != int32(i) {
			t.Fatalf("ID(%d) = %d, want file order", i, st.ID(i))
		}
	}
}
