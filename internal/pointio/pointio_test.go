package pointio

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestRoundTrip(t *testing.T) {
	pts := []geom.Point{{X: 1.5, Y: -2.25}, {X: 0, Y: 0}, {X: 1e6, Y: 1e-6}}
	var sb strings.Builder
	if err := Write(&sb, pts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Fatalf("round trip: got %v, want %v", got, pts)
	}
}

func TestReadWithoutHeader(t *testing.T) {
	got, err := Read(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReadSkipsBlanksAndTrimsSpaces(t *testing.T) {
	got, err := Read(strings.NewReader("x,y\n\n 1 , 2 \n\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d points, want 2", len(got))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"x,y\n1;2\n",    // wrong separator
		"x,y\nfoo,2\n",  // bad x
		"x,y\n1,bar\n",  // bad y
		"x,y\n1,2\n3\n", // missing column
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty input must give no points")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	pts := []geom.Point{{X: 7, Y: 8}, {X: -1, Y: 0.5}}
	if err := WriteFile(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Fatalf("file round trip: got %v, want %v", got, pts)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Errorf("missing file must error")
	}
}
