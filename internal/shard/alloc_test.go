package shard

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/testutil"
)

// Steady-state allocation regression for the sharded probe path: once a
// worker holds its probe, every merged neighborhood — per-shard locality
// searches (through the batched kernel scans), the precomputed candidate
// distances and the k-way merge — must be allocation-free, on both the
// small-block and the batched-span (blocks above kernel.BatchGrain)
// configurations.
func TestProbeNeighborhoodZeroAllocsSteadyState(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	pts := testutil.UniformPoints(6000, bounds, 45)
	queries := testutil.UniformPoints(128, bounds, 46)

	for _, tc := range []struct {
		name     string
		capacity int
	}{
		{name: "cells=16", capacity: 16},
		{name: "cells=128-batched", capacity: 128},
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func(st *geom.PointStore) (index.Index, error) {
				if st.Len() == 0 {
					return grid.NewFromStore(st, grid.Options{TargetPerCell: tc.capacity, Bounds: bounds})
				}
				return grid.NewFromStore(st, grid.Options{TargetPerCell: tc.capacity})
			}
			for _, policy := range []Policy{PolicyHash, PolicySpatial} {
				rel, err := New(pts, 3, policy, 0, build)
				if err != nil {
					t.Fatalf("building sharded relation: %v", err)
				}
				pr := acquire(nil, rel.Group())
				for _, q := range queries {
					pr.neighborhood(q, 16)
				}
				i := 0
				avg := testing.AllocsPerRun(200, func() {
					pr.neighborhood(queries[i%len(queries)], 16)
					i++
				})
				pr.release(nil)
				if avg != 0 {
					t.Errorf("policy %v: probe neighborhood allocates %v per call in steady state, want 0", policy, avg)
				}
			}
		})
	}
}
