package shard

import (
	"context"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/locality"
	"repro/internal/stats"
)

// This file defines the transport seam of the scatter/gather layer. A Group
// is an ordered list of Members; the drivers never see what backs one. The
// in-process implementations below are zero-overhead views over
// *core.Relation (pointer conversions, so steady-state probe work stays
// allocation-free); internal/remote implements the same two interfaces over
// an HTTP shard-probe protocol, which is what lifts every query shape onto
// N-process layouts without touching a driver.

// Prober is one borrowed per-shard candidate-generation handle: the exact
// locality contract of the paper (top-k neighborhood, threshold-clipped
// neighborhood, conservative strictly-closer count), plus the lifecycle the
// scatter drivers need (context binding, block-granular checkpoints,
// release). Like a locality.Searcher, a Prober is single-threaded and its
// results are valid only until its next call.
type Prober interface {
	// Bounds returns the shard index's bounds (the MINDIST shard-skip key).
	Bounds() geom.Rect

	// Neighborhood returns the shard-local k nearest neighbors of p in the
	// repository-wide ascending (distance, X, Y) order.
	Neighborhood(p geom.Point, k int, c *stats.Counters) *locality.Neighborhood

	// NeighborhoodWithinSq is Neighborhood admitting only blocks with
	// MINDIST²(p) ≤ thresholdSq; see locality.Searcher.NeighborhoodWithinSq.
	NeighborhoodWithinSq(p geom.Point, k int, thresholdSq float64, c *stats.Counters) *locality.Neighborhood

	// CountStrictlyCloser conservatively counts shard points strictly closer
	// to p than the squared threshold, stopping at k.
	CountStrictlyCloser(p geom.Point, k int, thresholdSq float64, c *stats.Counters) int

	// Bind attaches ctx for cooperative cancellation; Checkpoint polls it.
	Bind(ctx context.Context)
	Checkpoint()

	// Release returns the handle to its member.
	Release()

	// Local returns the backing *core.Relation handle for in-process
	// members, nil for remote ones. The batched drivers take the local fast
	// path through it; everything else stays on the interface.
	Local() *core.Relation
}

// Member is one shard of a Group: the acquire surface the probe assembles
// handles from, plus the outer-side views (cardinality, bounds, block
// enumeration) the scatter drivers read without holding a handle.
type Member interface {
	// Len returns the shard's cardinality.
	Len() int

	// Bounds returns the shard index's bounds.
	Bounds() geom.Rect

	// OuterBlocks enumerates the shard's blocks for outer-side scatter:
	// local blocks carry their span directly, remote ones a header (bounds,
	// count) plus a lazy point fetch — which is what keeps Block-Marking a
	// network-transfer prune: a marked non-contributing block's points are
	// never fetched. ctx bounds remote fetches (nil means no bound); local
	// members ignore it.
	OuterBlocks(ctx context.Context) []OuterBlock

	// Acquire borrows a handle, blocking on bounded pools.
	Acquire() Prober

	// AcquireCtx is Acquire bounding the wait by ctx and binding the handle
	// to it.
	AcquireCtx(ctx context.Context) (Prober, error)

	// TryAcquire is Acquire without blocking; the error reports a pool at
	// capacity (extra scatter workers stand down on it).
	TryAcquire() (Prober, error)
}

// OuterBlock is one claimable outer-side block. Exactly one of Local and
// Fetch is set: Local is an in-process index block, Fetch materializes a
// remote block's points over the wire (called at most once per claim, and
// never for blocks the Block-Marking prune discards).
type OuterBlock struct {
	// Local is the in-process block, when the member is local.
	Local *index.Block

	// Span and N describe a remote block: its MBR and point count,
	// shipped in the remote member's block-header listing.
	Span geom.Rect
	N    int

	// Fetch returns a remote block's points.
	Fetch func() []geom.Point
}

// Count returns the block's point count.
func (b OuterBlock) Count() int {
	if b.Local != nil {
		return b.Local.Count()
	}
	return b.N
}

// Center returns the center of the block's bounds.
func (b OuterBlock) Center() geom.Point {
	if b.Local != nil {
		return b.Local.Center()
	}
	return b.Span.Center()
}

// Diagonal returns the diagonal length of the block's bounds.
func (b OuterBlock) Diagonal() float64 {
	if b.Local != nil {
		return b.Local.Diagonal()
	}
	return b.Span.Diagonal()
}

// isBlock reports whether the OuterBlock names any block at all (the unit
// type's discriminator; point- and pair-units carry a zero OuterBlock).
func (b OuterBlock) isBlock() bool { return b.Local != nil || b.Fetch != nil }

// LocalMember wraps an in-process relation as a Member. The wrapper is a
// pointer conversion — no allocation, no indirection beyond the interface
// call itself.
func LocalMember(rel *core.Relation) Member { return (*localMember)(rel) }

type localMember core.Relation

func (m *localMember) rel() *core.Relation { return (*core.Relation)(m) }

func (m *localMember) Len() int          { return m.rel().Len() }
func (m *localMember) Bounds() geom.Rect { return m.rel().Ix.Bounds() }

func (m *localMember) OuterBlocks(context.Context) []OuterBlock {
	blks := m.rel().Ix.Blocks()
	out := make([]OuterBlock, len(blks))
	for i, b := range blks {
		out[i] = OuterBlock{Local: b}
	}
	return out
}

func (m *localMember) Acquire() Prober { return (*localProber)(m.rel().Acquire()) }

func (m *localMember) AcquireCtx(ctx context.Context) (Prober, error) {
	h, err := m.rel().AcquireCtx(ctx)
	if err != nil {
		return nil, err
	}
	return (*localProber)(h), nil
}

func (m *localMember) TryAcquire() (Prober, error) {
	h, err := m.rel().TryAcquire()
	if err != nil {
		return nil, err
	}
	return (*localProber)(h), nil
}

// localProber adapts a borrowed *core.Relation handle to the Prober
// interface by pointer conversion, so holding probes stays allocation-free.
type localProber core.Relation

func (p *localProber) h() *core.Relation { return (*core.Relation)(p) }

func (p *localProber) Bounds() geom.Rect { return p.h().Ix.Bounds() }

func (p *localProber) Neighborhood(q geom.Point, k int, c *stats.Counters) *locality.Neighborhood {
	return p.h().S.Neighborhood(q, k, c)
}

func (p *localProber) NeighborhoodWithinSq(q geom.Point, k int, thresholdSq float64, c *stats.Counters) *locality.Neighborhood {
	return p.h().S.NeighborhoodWithinSq(q, k, thresholdSq, c)
}

func (p *localProber) CountStrictlyCloser(q geom.Point, k int, thresholdSq float64, c *stats.Counters) int {
	return p.h().S.CountStrictlyCloser(q, k, thresholdSq, c)
}

func (p *localProber) Bind(ctx context.Context) { p.h().S.Bind(ctx) }
func (p *localProber) Checkpoint()              { p.h().Checkpoint() }
func (p *localProber) Release()                 { p.h().Release() }
func (p *localProber) Local() *core.Relation    { return p.h() }
