package shard

import (
	"context"

	"repro/internal/batch"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/stats"
)

// batchResults stores one neighborhood per focal in a flat arena: Points and
// Dists are shared backing arrays, off[i]:off[i+1] is query i's span.
type batchResults struct {
	pts   []geom.Point
	dists []float64
	off   []int
}

// view aliases query i's span as a Neighborhood.
func (b *batchResults) view(i int, center geom.Point, nb *locality.Neighborhood) {
	nb.Center = center
	nb.Points = b.pts[b.off[i]:b.off[i+1]]
	nb.Dists = b.dists[b.off[i]:b.off[i+1]]
}

// appendNbr copies one neighborhood into the arena as the next query's span.
func (b *batchResults) appendNbr(nb *locality.Neighborhood) {
	b.pts = append(b.pts, nb.Points...)
	b.dists = append(b.dists, nb.Dists...)
	b.off = append(b.off, len(b.pts))
}

// runShards runs the batched driver once per shard, copying each shard's
// local per-query neighborhoods out of the driver arena. thresholdsSq nil
// selects kNN mode, non-nil the within-threshold mode (see batch.Driver).
//
// The batched driver is a local-scan optimization (sorted focal groups over
// one shard's blocks); remote members take the per-focal probe path through
// the same candidate contract instead, which is byte-identical by
// construction — each per-focal call is exactly the sequential sharded
// probe the batched local path is held equal to.
func runShards(pr *probe, d *batch.Driver, focals []geom.Point, k int, thresholdsSq []float64) []batchResults {
	out := make([]batchResults, len(pr.handles))
	for s, h := range pr.handles {
		if fault.Armed() {
			fault.OnShardProbe(s)
		}
		out[s].off = append(out[s].off, 0)
		lh := h.Local()
		if lh == nil {
			for i, f := range focals {
				if thresholdsSq != nil && thresholdsSq[i] < 0 {
					// Short-circuited query: empty span, like the local
					// driver's negative-threshold contract.
					out[s].off = append(out[s].off, len(out[s].pts))
					continue
				}
				var nbr *locality.Neighborhood
				if thresholdsSq == nil {
					nbr = h.Neighborhood(f, k, pr.deltas[s])
				} else {
					nbr = h.NeighborhoodWithinSq(f, k, thresholdsSq[i], pr.deltas[s])
				}
				out[s].appendNbr(nbr)
			}
			continue
		}
		var res []locality.Neighborhood
		if thresholdsSq == nil {
			res = d.KNNSelect(lh, focals, k, pr.deltas[s])
		} else {
			res = d.SelectWithinSq(lh, focals, k, thresholdsSq, pr.deltas[s])
		}
		for i := range res {
			out[s].appendNbr(&res[i])
		}
	}
	return out
}

// gatherBatch computes the exact global neighborhood of every focal over the
// group: per-shard batched local top-k (byte-identical to each shard's
// sequential searcher), then the probe's k-way merge per query — the same
// comparison (squared distance recomputed from coordinates, exact ties by
// canonical point order, co-located duplicates kept) as the single-query
// probe, so the global result is byte-identical to the sequential sharded
// path.
func gatherBatch(pr *probe, d *batch.Driver, focals []geom.Point, k int, thresholdsSq []float64) batchResults {
	shardRes := runShards(pr, d, focals, k, thresholdsSq)
	if len(shardRes) == 1 {
		return shardRes[0]
	}
	views := make([]locality.Neighborhood, len(shardRes))
	var merged batchResults
	merged.off = append(merged.off, 0)
	for i, f := range focals {
		for s := range shardRes {
			shardRes[s].view(i, f, &views[s])
			pr.nbrs[s] = &views[s]
		}
		merged.appendNbr(pr.merge(f, k))
	}
	return merged
}

// SelectBatch is the batched form of Select: the k nearest neighbors of
// every focal across all shards of the group, one result slice per focal in
// input order, byte-identical to calling Select once per focal. The
// returned slices share one backing array.
func SelectBatch(ctx context.Context, g Group, focals []geom.Point, k int, c *stats.Counters) [][]geom.Point {
	out := make([][]geom.Point, len(focals))
	if k <= 0 || len(focals) == 0 {
		return out
	}
	pr := acquire(ctx, g)
	defer pr.release(c)
	pr.checkpoint()
	d := batch.Acquire()
	defer batch.Release(d)
	res := gatherBatch(pr, d, focals, k, nil)
	pts := make([]geom.Point, len(res.pts))
	copy(pts, res.pts)
	for i := range out {
		out[i] = pts[res.off[i]:res.off[i+1]:res.off[i+1]]
	}
	return out
}

// TwoSelectsBatch is the batched form of TwoSelects: for every i it
// evaluates σ_{k1,f1s[i]} ∩ σ_{k2,f2s[i]}, byte-identical to calling
// TwoSelects once per pair. conceptual selects the Figure 16 baseline (both
// neighborhoods in full); the default runs the smaller-k predicate first
// and clips the larger predicate's scan by the derived search threshold,
// batched on both sides.
func TwoSelectsBatch(ctx context.Context, g Group, f1s []geom.Point, k1 int, f2s []geom.Point, k2 int, conceptual bool, c *stats.Counters) [][]geom.Point {
	out := make([][]geom.Point, len(f1s))
	if k1 <= 0 || k2 <= 0 || len(f1s) == 0 {
		return out
	}
	pr := acquire(ctx, g)
	defer pr.release(c)
	pr.checkpoint()
	d := batch.Acquire()
	defer batch.Release(d)

	if !conceptual && k1 > k2 {
		f1s, f2s = f2s, f1s
		k1, k2 = k2, k1
	}
	res1 := gatherBatch(pr, d, f1s, k1, nil)

	var res2 batchResults
	if conceptual {
		res2 = gatherBatch(pr, d, f2s, k2, nil)
	} else {
		// The second predicate's scan is clipped per query by the squared
		// distance from its focal to the farthest first-predicate answer; an
		// empty first answer short-circuits the query (negative threshold).
		thresholds := make([]float64, len(f1s))
		var nb1 locality.Neighborhood
		for i := range f1s {
			res1.view(i, f1s[i], &nb1)
			if nb1.Len() == 0 {
				thresholds[i] = -1
				continue
			}
			thresholds[i] = nb1.FarthestDistSqTo(f2s[i])
		}
		res2 = gatherBatch(pr, d, f2s, k2, thresholds)
	}

	var nb1, nb2 locality.Neighborhood
	for i := range f1s {
		res1.view(i, f1s[i], &nb1)
		if !conceptual && nb1.Len() == 0 {
			continue
		}
		res2.view(i, f2s[i], &nb2)
		out[i] = nb1.Intersect(&nb2)
	}
	return out
}
