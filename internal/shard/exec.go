package shard

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// This file implements the scatter/gather execution drivers for the paper's
// five query shapes (kNN-select, select+kNN-join in both positions, two
// kNN-selects, unchained and chained two-join queries) plus the range-join
// extension, over Group operands that may be sharded, un-sharded, or a mix.
//
// Scatter: the outer side's tuples — shard block spans, chunks of a selected
// point list, or chunks of a first join's pairs — are claimed by a bounded
// worker crew through an atomic cursor; each worker holds a probe (one
// pooled searcher handle per inner shard) and generates candidates
// per-shard, merging them into exact global neighborhoods.
//
// Gather: results are concatenated and canonically sorted (SortPairs /
// SortTriples order), which makes the output deterministic regardless of
// worker interleaving and — because every per-tuple result multiset is
// exactly the single-relation one — byte-identical to the un-sharded
// evaluation after the same sort. Workers append into private buffers, so
// the only cross-worker synchronization on the result path is the final
// concatenation.
//
// Extra workers degrade gracefully on bounded pools exactly like the core
// parallel driver: worker 0 blocks until it holds a full probe, the rest
// stand down if any inner shard's pool is at capacity.

// unit is one claimable piece of outer-side work: a shard block (point
// joins; local span or remote header with lazy fetch), a chunk of an
// explicit point list (select-outer-join), or a chunk of first-join pairs
// (chained joins).
type unit struct {
	blk   OuterBlock
	pts   []geom.Point
	pairs []core.Pair
}

// eachPoint calls fn for every point of a block- or point-list unit. Remote
// block points are fetched here — after the Block-Marking prune had its
// chance to discard the block on its header alone.
func (u unit) eachPoint(fn func(p geom.Point)) {
	if u.blk.Local != nil {
		xs, ys := u.blk.Local.XYs()
		for i := range xs {
			fn(geom.Point{X: xs[i], Y: ys[i]})
		}
		return
	}
	if u.blk.Fetch != nil {
		for _, p := range u.blk.Fetch() {
			fn(p)
		}
		return
	}
	for _, p := range u.pts {
		fn(p)
	}
}

// blockUnits lists every block of every shard of g, in shard-then-block
// order.
func blockUnits(ctx context.Context, g Group) []unit {
	var units []unit
	for _, m := range g.members {
		for _, b := range m.OuterBlocks(ctx) {
			units = append(units, unit{blk: b})
		}
	}
	return units
}

// pointUnits cuts pts into contiguous chunks sized for dynamic load
// balancing (several chunks per worker).
func pointUnits(pts []geom.Point, workers int) []unit {
	if len(pts) == 0 {
		return nil
	}
	chunk := chunkSize(len(pts), workers)
	units := make([]unit, 0, (len(pts)+chunk-1)/chunk)
	for start := 0; start < len(pts); start += chunk {
		end := min(start+chunk, len(pts))
		units = append(units, unit{pts: pts[start:end]})
	}
	return units
}

// pairUnits cuts pairs into contiguous chunks, preserving order within each.
func pairUnits(pairs []core.Pair, workers int) []unit {
	if len(pairs) == 0 {
		return nil
	}
	chunk := chunkSize(len(pairs), workers)
	units := make([]unit, 0, (len(pairs)+chunk-1)/chunk)
	for start := 0; start < len(pairs); start += chunk {
		end := min(start+chunk, len(pairs))
		units = append(units, unit{pairs: pairs[start:end]})
	}
	return units
}

func chunkSize(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// emitFn consumes one unit, appending results to dst.
type emitFn[T any] func(u unit, dst []T) []T

// scatter fans units out across min(workers, len(units)) workers, each
// holding a probe on inner. newEmit builds a worker's emitter around its
// probe and counter shard (per-worker state like the chained-join cache
// lives in the closure). workers <= 1 runs sequentially on the caller's
// goroutine. The concatenated results are returned in arbitrary unit order;
// callers canonically sort in their gather step.
//
// A non-nil ctx bounds the whole scatter: probes bind to it, every claimed
// unit starts with a checkpoint, and expiry unwinds as a fault.Cancel panic
// after all handles are released and stat deltas folded. Worker panics —
// cooperative or genuine — never cross a goroutine boundary: the first
// fault is parked, the crew aborts at its next claim, and the fault resumes
// its unwind on the caller's goroutine once the crew is joined.
func scatter[T any](ctx context.Context, units []unit, inner Group, workers int, c *stats.Counters,
	newEmit func(pr *probe, ctr *stats.Counters) emitFn[T]) []T {

	if len(units) == 0 {
		return nil
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		pr := acquire(ctx, inner)
		defer pr.release(c)
		emit := newEmit(pr, c)
		var out []T
		for _, u := range units {
			pr.checkpoint()
			out = emit(u, out)
		}
		return out
	}

	bufs := make([][]T, workers)
	// Counter shards are individually allocated so adjacent workers' atomic
	// increments do not false-share; nil when the caller asked for no stats.
	var ctrs []*stats.Counters
	if c != nil {
		ctrs = make([]*stats.Counters, workers)
		for w := range ctrs {
			ctrs[w] = new(stats.Counters)
		}
	}
	var cursor atomic.Int64
	var flt fault.Slot
	var abort atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					flt.Store(fault.WrapPanic(r))
					abort.Store(true)
				}
			}()
			var pr *probe
			if w == 0 {
				pr = acquire(ctx, inner)
			} else {
				var ok bool
				if pr, ok = tryAcquire(ctx, inner); !ok {
					return // bounded pool at capacity; the crew degrades
				}
			}
			var ctr *stats.Counters
			if ctrs != nil {
				ctr = ctrs[w]
			}
			defer pr.release(ctr)
			emit := newEmit(pr, ctr)
			for {
				if abort.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(units) {
					return
				}
				pr.checkpoint()
				bufs[w] = emit(units[i], bufs[w])
			}
		}(w)
	}
	wg.Wait()
	for _, ctr := range ctrs {
		c.Add(ctr)
	}
	if r := flt.Load(); r != nil {
		// Faulted: no partial result escapes; the fault resumes unwinding on
		// the caller's goroutine for the public layer's recover.
		panic(r)
	}

	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	out := make([]T, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// Strategy selects the candidate-generation plan for the select/range inner
// join drivers, mirroring the single-relation algorithms: Conceptual (no
// pruning), Counting (per-tuple count prune, Procedure 1 summed across
// shards) and BlockMarking (per-outer-block Non-Contributing test, Theorem 1
// applied with exact global neighborhoods).
type Strategy int

// The available strategies.
const (
	StrategyConceptual Strategy = iota
	StrategyCounting
	StrategyBlockMarking
)

// Select evaluates σ_{k,f} over the group: the exact global k nearest
// neighbors of f, in ascending (distance, X, Y) order — byte-identical to
// the single-relation KNNSelect.
func Select(ctx context.Context, g Group, f geom.Point, k int, c *stats.Counters) []geom.Point {
	pts, _ := selectWithRadius(ctx, g, f, k, c)
	return pts
}

// selectWithRadius is Select returning also the distance from f to the
// farthest selected point (0 for an empty result) — the threshold term the
// select-inner-join block marking needs.
func selectWithRadius(ctx context.Context, g Group, f geom.Point, k int, c *stats.Counters) ([]geom.Point, float64) {
	if k <= 0 {
		return nil, 0
	}
	pr := acquire(ctx, g)
	defer pr.release(c)
	pr.checkpoint()
	nbr := pr.neighborhood(f, k)
	out := make([]geom.Point, len(nbr.Points))
	copy(out, nbr.Points)
	return out, nbr.FarthestDist()
}

// TwoSelects evaluates σ_{k1,f1} ∩ σ_{k2,f2} over one group with the
// 2-kNN-select refinement evaluated per shard: the smaller-k predicate runs
// first (exact global merge), and the larger predicate's per-shard locality
// admits only blocks within the search threshold derived from the first
// answer. Results are byte-identical to the single-relation TwoSelects.
// conceptual selects the Figure 16 baseline (both neighborhoods in full)
// instead.
func TwoSelects(ctx context.Context, g Group, f1 geom.Point, k1 int, f2 geom.Point, k2 int, conceptual bool, c *stats.Counters) []geom.Point {
	if k1 <= 0 || k2 <= 0 {
		return nil
	}
	pr := acquire(ctx, g)
	defer pr.release(c)
	pr.checkpoint()
	if conceptual {
		nbr1 := pr.neighborhood(f1, k1).Clone()
		nbr2 := pr.neighborhood(f2, k2)
		return nbr1.Intersect(nbr2)
	}
	if k1 > k2 {
		f1, f2 = f2, f1
		k1, k2 = k2, k1
	}
	nbr1 := pr.neighborhood(f1, k1).Clone() // survives the second query below
	if nbr1.Len() == 0 {
		return nil
	}
	nbr2 := pr.neighborhoodWithinSq(f2, k2, nbr1.FarthestDistSqTo(f2))
	return nbr1.Intersect(nbr2)
}

// Join evaluates outer ⋈kNN inner by scatter/gather: outer shard blocks fan
// out across workers, every outer point gets its exact global neighborhood
// from the merged probe, and the gather canonically sorts the pairs. The
// result is the single-relation KNNJoin's multiset in SortPairs order.
func Join(ctx context.Context, outer, inner Group, k, workers int, c *stats.Counters) []core.Pair {
	if k <= 0 {
		return nil
	}
	out := join(ctx, outer, inner, k, workers, c)
	core.SortPairs(out)
	if out == nil {
		out = []core.Pair{} // match the single-relation non-nil contract
	}
	return out
}

// join is Join without the gather sort (and without the non-nil contract):
// the two-join drivers consume its output through order-insensitive steps
// (B-component grouping, chunked fan-out) and sort only their final
// triples, so sorting the intermediate pair sets would be wasted work.
func join(ctx context.Context, outer, inner Group, k, workers int, c *stats.Counters) []core.Pair {
	return scatter(ctx, blockUnits(ctx, outer), inner, workers, c,
		func(pr *probe, ctr *stats.Counters) emitFn[core.Pair] {
			return func(u unit, dst []core.Pair) []core.Pair {
				u.eachPoint(func(e1 geom.Point) {
					nbr := pr.neighborhood(e1, k)
					for _, e2 := range nbr.Points {
						dst = append(dst, core.Pair{Left: e1, Right: e2})
					}
				})
				return dst
			}
		})
}

// SelectInnerJoin evaluates (outer ⋈kNN inner) ∩ (outer × σ_{kSel,f}(inner))
// by scatter/gather. The select gathers first (exact global σ set); the join
// side then fans outer blocks out with the chosen per-shard pruning
// strategy. Results are the single-relation multiset in SortPairs order.
func SelectInnerJoin(ctx context.Context, outer, inner Group, f geom.Point, kJoin, kSel int, strat Strategy, workers int, c *stats.Counters) []core.Pair {
	if kJoin <= 0 || kSel <= 0 {
		return nil
	}
	sel, fFarthest := selectWithRadius(ctx, inner, f, kSel, c)
	if len(sel) == 0 {
		return nil
	}
	sorted := sortedSet(sel)
	var selXs, selYs []float64
	if strat == StrategyCounting {
		// Only the Counting prune scans the flattened σ columns.
		selXs, selYs = geom.FlatXYs(sel)
	}

	out := scatter(ctx, blockUnits(ctx, outer), inner, workers, c,
		func(pr *probe, ctr *stats.Counters) emitFn[core.Pair] {
			return func(u unit, dst []core.Pair) []core.Pair {
				if strat == StrategyBlockMarking && u.blk.isBlock() {
					if u.blk.Count() == 0 {
						return dst
					}
					// Theorem 1 with the exact global neighborhood of the
					// block center: the NC bound holds for the whole logical
					// relation, not just one shard.
					center := u.blk.Center()
					nbr := pr.neighborhood(center, kJoin)
					if nbr.Len() == kJoin && nbr.FarthestDist()+u.blk.Diagonal()+fFarthest < center.Dist(f) {
						ctr.AddBlocksPruned(1)
						return dst
					}
				}
				u.eachPoint(func(e1 geom.Point) {
					if strat == StrategyCounting {
						// Squared threshold end-to-end, as in the core
						// Counting algorithm: exact ties stay exact. The
						// batched MinDistSq kernel over the flattened σ set
						// matches Neighborhood.NearestDistSqTo exactly
						// (NaN skipped, +Inf on empty), keeping the sharded
						// and single-relation Counting prunes identical.
						if pr.countStrictlyCloser(e1, kJoin, kernel.MinDistSq(selXs, selYs, e1.X, e1.Y)) >= kJoin {
							ctr.AddOuterSkipped(1)
							return
						}
					}
					nbr := pr.neighborhood(e1, kJoin)
					for _, e2 := range nbr.Points {
						if core.ContainsPoint(sorted, e2) {
							dst = append(dst, core.Pair{Left: e1, Right: e2})
						}
					}
				})
				return dst
			}
		})
	core.SortPairs(out)
	return out
}

// SelectOuterJoin evaluates (σ_{kSel,f}(outer)) ⋈kNN inner: the valid
// pushdown — the select gathers globally first, then the selected points'
// joins fan out in chunks. Results are the single-relation multiset in
// SortPairs order.
func SelectOuterJoin(ctx context.Context, outer, inner Group, f geom.Point, kSel, kJoin, workers int, c *stats.Counters) []core.Pair {
	if kSel <= 0 || kJoin <= 0 {
		return nil
	}
	sel := Select(ctx, outer, f, kSel, c)
	out := scatter(ctx, pointUnits(sel, workers), inner, workers, c,
		func(pr *probe, ctr *stats.Counters) emitFn[core.Pair] {
			return func(u unit, dst []core.Pair) []core.Pair {
				u.eachPoint(func(e1 geom.Point) {
					nbr := pr.neighborhood(e1, kJoin)
					for _, e2 := range nbr.Points {
						dst = append(dst, core.Pair{Left: e1, Right: e2})
					}
				})
				return dst
			}
		})
	core.SortPairs(out)
	if out == nil {
		out = []core.Pair{}
	}
	return out
}

// RangeJoin evaluates (outer ⋈kNN inner) ∩ (outer × σ_rng(inner)) — the
// footnote-1 extension — with the chosen per-shard pruning strategy.
// Results are the single-relation multiset in SortPairs order.
func RangeJoin(ctx context.Context, outer, inner Group, rng geom.Rect, kJoin int, strat Strategy, workers int, c *stats.Counters) []core.Pair {
	if kJoin <= 0 {
		return nil
	}
	out := scatter(ctx, blockUnits(ctx, outer), inner, workers, c,
		func(pr *probe, ctr *stats.Counters) emitFn[core.Pair] {
			return func(u unit, dst []core.Pair) []core.Pair {
				if strat == StrategyBlockMarking && u.blk.isBlock() {
					if u.blk.Count() == 0 {
						return dst
					}
					center := u.blk.Center()
					nbr := pr.neighborhood(center, kJoin)
					if nbr.Len() == kJoin && nbr.FarthestDist()+u.blk.Diagonal() < rng.MinDist(center) {
						ctr.AddBlocksPruned(1)
						return dst
					}
				}
				u.eachPoint(func(e1 geom.Point) {
					if strat == StrategyCounting {
						if pr.countStrictlyCloser(e1, kJoin, rng.MinDistSq(e1)) >= kJoin {
							ctr.AddOuterSkipped(1)
							return
						}
					}
					nbr := pr.neighborhood(e1, kJoin)
					for _, e2 := range nbr.Points {
						if rng.Contains(e2) {
							dst = append(dst, core.Pair{Left: e1, Right: e2})
						}
					}
				})
				return dst
			}
		})
	core.SortPairs(out)
	return out
}

// Unchained evaluates (a ⋈kNN b) ∩_B (c ⋈kNN b): both joins scatter/gather
// independently (the conceptually correct plan — evaluating either "first"
// would be invalid) and intersect on the shared B component. Results are the
// single-relation multiset in SortTriples order.
func Unchained(ctx context.Context, a, b, cg Group, kAB, kCB, workers int, c *stats.Counters) []core.Triple {
	if kAB <= 0 || kCB <= 0 {
		return nil
	}
	abPairs := join(ctx, a, b, kAB, workers, c)
	cbPairs := join(ctx, cg, b, kCB, workers, c)
	out := core.IntersectOnB(abPairs, cbPairs)
	core.SortTriples(out)
	return out
}

// Chained evaluates (a ⋈kNN b) ∩_B (b ⋈kNN c) with the nested-join plan
// (QEP3 + cache, the paper's winner): the first join scatter/gathers, then
// its pairs fan out in chunks, each worker computing (or fetching from its
// private cache) the exact global C-neighborhood of each distinct b value.
// Results are the single-relation multiset in SortTriples order.
func Chained(ctx context.Context, a, b, cg Group, kAB, kBC, workers int, c *stats.Counters) []core.Triple {
	if kAB <= 0 || kBC <= 0 {
		return nil
	}
	abPairs := join(ctx, a, b, kAB, workers, c)
	out := scatter(ctx, pairUnits(abPairs, workers), cg, workers, c,
		func(pr *probe, ctr *stats.Counters) emitFn[core.Triple] {
			cache := make(map[geom.Point][]geom.Point)
			return func(u unit, dst []core.Triple) []core.Triple {
				for _, p := range u.pairs {
					pts, ok := cache[p.Right]
					if ok {
						ctr.AddCacheHit()
					} else {
						ctr.AddCacheMiss()
						nbr := pr.neighborhood(p.Right, kBC)
						pts = append([]geom.Point(nil), nbr.Points...)
						cache[p.Right] = pts
					}
					for _, cp := range pts {
						dst = append(dst, core.Triple{A: p.Left, B: p.Right, C: cp})
					}
				}
				return dst
			}
		})
	core.SortTriples(out)
	return out
}

// sortedSet returns a canonically sorted copy of pts for
// core.ContainsPoint membership tests.
func sortedSet(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	core.SortPoints(out)
	return out
}
