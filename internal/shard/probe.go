package shard

import (
	"context"
	"math"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/locality"
	"repro/internal/stats"
)

// probe is one worker's gather view over a group: a borrowed searcher handle
// per shard plus the scratch to merge per-shard neighborhoods into exact
// global ones. Like a locality.Searcher, a probe is single-threaded and its
// merged result is valid only until the probe's next query; the scatter
// driver gives every worker its own probe.
//
// Per-shard operation counts accumulate in the probe's delta counters and
// are folded into the group's lifetime per-shard counters (and the query's
// WithStats target) exactly once, at release — so the hot probe loop touches
// no shared cache lines.
type probe struct {
	g       Group
	handles []Prober
	deltas  []*stats.Counters
	nbrs    []*locality.Neighborhood
	cursors []int
	dSqs    [][]float64 // per-shard candidate distances, precomputed once per merge
	merged  locality.Neighborhood

	// shard-skip scratch: per-shard MINDIST² of the shard's index bounds
	// from the current query point, the probe order (ascending MINDIST²),
	// and a shared empty result for skipped shards.
	minSqs   []float64
	order    []int
	emptyNbr locality.Neighborhood
}

// acquire borrows one handle per shard, blocking on bounded pools. Handles
// are acquired in shard order, which is a fixed total order per group, so
// concurrent probes over one group cannot deadlock against each other.
//
// A non-nil ctx bounds each per-shard wait and binds the handles for
// block-granularity cancellation; if ctx expires mid-acquisition the
// handles obtained so far are released and the cancellation unwinds as a
// fault.Cancel panic (recovered into a typed error at the public layer) —
// a query that could not assemble its probe holds nothing.
func acquire(ctx context.Context, g Group) *probe {
	pr := newProbe(g)
	for i, m := range g.members {
		if ctx == nil {
			pr.handles[i] = m.Acquire()
			continue
		}
		h, err := m.AcquireCtx(ctx)
		if err != nil {
			for _, held := range pr.handles[:i] {
				held.Release()
			}
			panic(&fault.Cancel{Err: err})
		}
		pr.handles[i] = h
	}
	return pr
}

// tryAcquire is acquire without blocking: if any shard's bounded pool is
// exhausted, every handle obtained so far is returned and ok is false (the
// extra scatter worker stands down, mirroring the core parallel driver's
// graceful degradation). Obtained handles are bound to ctx so extra workers
// checkpoint the same context as worker 0.
func tryAcquire(ctx context.Context, g Group) (pr *probe, ok bool) {
	pr = newProbe(g)
	for i, m := range g.members {
		h, err := m.TryAcquire()
		if err != nil {
			for _, held := range pr.handles[:i] {
				held.Release()
			}
			return nil, false
		}
		h.Bind(ctx)
		pr.handles[i] = h
	}
	return pr, true
}

// checkpoint polls the probe's cancellation binding (carried by the shard-0
// handle; every handle shares the same ctx) — called by the scatter drivers
// once per claimed unit.
func (pr *probe) checkpoint() { pr.handles[0].Checkpoint() }

func newProbe(g Group) *probe {
	n := len(g.members)
	pr := &probe{
		g:       g,
		handles: make([]Prober, n),
		deltas:  make([]*stats.Counters, n),
		nbrs:    make([]*locality.Neighborhood, n),
		cursors: make([]int, n),
		dSqs:    make([][]float64, n),
		minSqs:  make([]float64, n),
		order:   make([]int, n),
	}
	for i := range pr.deltas {
		pr.deltas[i] = new(stats.Counters)
	}
	return pr
}

// release returns every handle to its pool and folds the per-shard deltas
// into the group's lifetime counters and into ctr (the query's counter
// shard; nil is valid and records nothing).
func (pr *probe) release(ctr *stats.Counters) {
	for i, h := range pr.handles {
		if pr.g.counters != nil {
			pr.g.counters[i].Add(pr.deltas[i])
		}
		ctr.Add(pr.deltas[i])
		h.Release()
	}
}

// neighborhood returns the exact global k nearest neighbors of p across all
// shards: each shard contributes its local top-k (same locality algorithm,
// same (distance, X, Y) tie order as the single-relation path), and the
// merge re-selects the global k from the ≤ S·k candidates. The result is
// reused across calls; callers retain it only via Clone.
//
// Shards are probed in ascending MINDIST² of their index bounds, and a
// shard is skipped outright once an earlier shard has already produced k
// candidates whose k-th squared distance is below the shard's MINDIST²:
// every point of the skipped shard is then strictly farther than k known
// candidates, so it cannot enter the global top-k regardless of
// tie-breaking. Under spatial partitioning this is what keeps distant tiles
// cheap — most probes touch one or two shards; under hash partitioning
// shard bounds all cover the data extent and every shard is probed.
func (pr *probe) neighborhood(p geom.Point, k int) *locality.Neighborhood {
	if len(pr.handles) == 1 {
		if fault.Armed() {
			fault.OnShardProbe(0)
		}
		return pr.handles[0].Neighborhood(p, k, pr.deltas[0])
	}
	limit := pr.probeOrder(p)
	for _, s := range pr.order {
		if pr.minSqs[s] > limit {
			pr.nbrs[s] = &pr.emptyNbr
			continue
		}
		if fault.Armed() {
			fault.OnShardProbe(s)
		}
		nbr := pr.handles[s].Neighborhood(p, k, pr.deltas[s])
		pr.nbrs[s] = nbr
		if len(nbr.Points) == k {
			if b := nbr.Points[k-1].DistSq(p); b < limit {
				limit = b
			}
		}
	}
	return pr.merge(p, k)
}

// probeOrder fills pr.order with shard indices in ascending MINDIST² of
// their index bounds from p (insertion sort; S is small) and returns +Inf as
// the initial skip limit.
func (pr *probe) probeOrder(p geom.Point) float64 {
	for s, h := range pr.handles {
		pr.minSqs[s] = h.Bounds().MinDistSq(p)
		pr.order[s] = s
	}
	for i := 1; i < len(pr.order); i++ {
		for j := i; j > 0 && pr.minSqs[pr.order[j]] < pr.minSqs[pr.order[j-1]]; j-- {
			pr.order[j], pr.order[j-1] = pr.order[j-1], pr.order[j]
		}
	}
	return math.Inf(1)
}

// neighborhoodWithinSq is the sharded form of Searcher.NeighborhoodWithinSq:
// each shard admits exactly its blocks with MINDIST²(p) ≤ thresholdSq and
// the merge re-selects k. It carries the same guarantee as the
// single-relation version — intersecting the result with any point set whose
// members all lie within the threshold of p equals intersecting with the
// true neighborhood — because every point closer to p than a
// within-threshold candidate is itself within threshold, hence admitted by
// its own shard and ranked ahead in the merge.
func (pr *probe) neighborhoodWithinSq(p geom.Point, k int, thresholdSq float64) *locality.Neighborhood {
	if len(pr.handles) == 1 {
		if fault.Armed() {
			fault.OnShardProbe(0)
		}
		return pr.handles[0].NeighborhoodWithinSq(p, k, thresholdSq, pr.deltas[0])
	}
	pr.probeOrder(p)
	limit := thresholdSq // blocks past the threshold are never admitted
	for _, s := range pr.order {
		if pr.minSqs[s] > limit {
			pr.nbrs[s] = &pr.emptyNbr
			continue
		}
		if fault.Armed() {
			fault.OnShardProbe(s)
		}
		nbr := pr.handles[s].NeighborhoodWithinSq(p, k, thresholdSq, pr.deltas[s])
		pr.nbrs[s] = nbr
		if len(nbr.Points) == k {
			if b := nbr.Points[k-1].DistSq(p); b < limit {
				limit = b
			}
		}
	}
	return pr.merge(p, k)
}

// merge k-selects from the per-shard sorted candidate lists in pr.nbrs into
// the reusable merged result. Comparison is on squared distance computed
// from the coordinates — the same quantity the per-shard selection heaps
// ordered by — with exact ties broken by canonical (X, Y) order; identical
// co-located points are kept (never deduped), preserving the single-relation
// multiset semantics. Each candidate's squared distance is precomputed once
// into the probe's per-shard scratch (the k-way loop re-reads every shard's
// head each round, so computing on demand would redo the same distance up
// to k times). Steady state allocates nothing: the merged buffers, cursors
// and distance scratch are reused across calls.
func (pr *probe) merge(p geom.Point, k int) *locality.Neighborhood {
	m := &pr.merged
	m.Center = p
	m.Points = m.Points[:0]
	m.Dists = m.Dists[:0]
	for s, nbr := range pr.nbrs {
		pr.cursors[s] = 0
		d := pr.dSqs[s][:0]
		for _, q := range nbr.Points {
			d = append(d, q.DistSq(p))
		}
		pr.dSqs[s] = d
	}
	for len(m.Points) < k {
		best := -1
		var bestSq, bestDist float64
		var bestPt geom.Point
		for s, nbr := range pr.nbrs {
			cur := pr.cursors[s]
			if cur >= len(nbr.Points) {
				continue
			}
			q := nbr.Points[cur]
			dSq := pr.dSqs[s][cur]
			if best < 0 || dSq < bestSq || (dSq == bestSq && q.Less(bestPt)) {
				best, bestSq, bestPt, bestDist = s, dSq, q, nbr.Dists[cur]
			}
		}
		if best < 0 {
			break
		}
		pr.cursors[best]++
		m.Points = append(m.Points, bestPt)
		m.Dists = append(m.Dists, bestDist)
	}
	return m
}

// countStrictlyCloser sums the shards' conservative counts of points
// strictly closer to p than the (squared) threshold, stopping once the sum
// reaches k. Shards partition the point set, so the sum counts distinct real
// points and the Counting algorithm's skip proof applies globally.
func (pr *probe) countStrictlyCloser(p geom.Point, k int, thresholdSq float64) int {
	total := 0
	for s, h := range pr.handles {
		total += h.CountStrictlyCloser(p, k, thresholdSq, pr.deltas[s])
		if total >= k {
			break
		}
	}
	return total
}
