// Package shard partitions one logical point set across S sub-relations and
// executes every query shape of the paper by scatter/gather: per-shard
// candidate generation on each shard's own index and searcher pool, followed
// by an exact merge whose tie-breaking — ascending (distance, X, Y), the
// repository-wide neighbor order — is identical to the single-relation code.
// Sharded results are therefore byte-identical to the un-sharded evaluation
// (after the gather's canonical sort for join shapes), which the differential
// oracle tests at the module root enforce across shard counts, partitioning
// policies and index families.
//
// The partition preserves global stable point IDs: shard stores carry each
// point's position in the original input (geom.PointStore.IDs), so a point
// keeps one identity no matter which shard's index holds it — the dedup and
// grouping key for gather steps and for layers above (wire formats, change
// feeds).
//
// Two partitioning policies are provided. PolicyHash scatters points by a
// multiplicative hash of their stable ID — shard sizes balance tightly and
// every shard sees the whole space, so per-shard kNN candidates come from
// everywhere (uniform per-shard work, S-fold fan-out per probe). PolicySpatial
// is an STR-style sort-tile partition — shards own compact tiles of space, so
// most neighbors of a probe live in few shards and distant shards terminate
// their local search quickly.
//
// The locality bounds of the source paper (Aly, Aref, Ouzzani; VLDB 2012)
// carry over per shard: each shard's searcher runs the unchanged two-phase
// locality construction over its own blocks, and the gather re-selects the
// global k among the ≤ S·k per-shard candidates. Exactness of that merge is
// the subset property of top-k under disjoint union: the global k nearest
// neighbors of any point are contained in the union of the per-shard k
// nearest.
package shard

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/stats"
)

// Policy selects how points are assigned to shards.
type Policy int

const (
	// PolicyHash assigns each point by a multiplicative hash of its stable
	// ID. Shard sizes are near-uniform regardless of the spatial
	// distribution.
	PolicyHash Policy = iota

	// PolicySpatial assigns points by an STR-style sort-tile partition:
	// points are sorted into vertical slabs by X, each slab into runs by Y,
	// giving every shard a compact tile of space.
	PolicySpatial
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicySpatial:
		return "spatial"
	default:
		return "hash"
	}
}

// Build constructs a spatial index over one shard's columnar store. The
// public layer injects it to select the index family (and common bounds)
// without this package importing the index constructors.
type Build func(st *geom.PointStore) (index.Index, error)

// Relation is one logical point set partitioned across shards, each shard an
// independently indexed core.Relation with its own searcher pool and an
// always-on operation counter (the per-shard stats surfaced by the public
// ShardedRelation.Snapshot).
type Relation struct {
	shards   []*core.Relation
	members  []Member
	counters []*stats.Counters
	policy   Policy
	n        int
}

// New partitions pts across nShards sub-relations under the given policy and
// builds each shard's index with build. maxSearchers > 0 bounds every
// shard's searcher pool at that many handles (the memory ceiling applies per
// shard). Stable IDs are the input positions 0..len(pts)-1, preserved
// through the partition.
func New(pts []geom.Point, nShards int, policy Policy, maxSearchers int, build Build) (*Relation, error) {
	if nShards < 1 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", nShards)
	}
	stores := Partition(pts, nShards, policy)
	r := &Relation{
		shards:   make([]*core.Relation, nShards),
		members:  make([]Member, nShards),
		counters: make([]*stats.Counters, nShards),
		policy:   policy,
		n:        len(pts),
	}
	for i, st := range stores {
		ix, err := build(st)
		if err != nil {
			return nil, fmt.Errorf("shard: building index for shard %d/%d: %w", i, nShards, err)
		}
		if maxSearchers > 0 {
			r.shards[i] = core.NewRelationBounded(ix, maxSearchers)
		} else {
			r.shards[i] = core.NewRelation(ix)
		}
		r.members[i] = LocalMember(r.shards[i])
		r.counters[i] = new(stats.Counters)
	}
	return r, nil
}

// Len returns the total number of points across all shards.
func (r *Relation) Len() int { return r.n }

// NumShards returns the shard count.
func (r *Relation) NumShards() int { return len(r.shards) }

// Policy returns the partitioning policy the relation was built with.
func (r *Relation) Policy() Policy { return r.policy }

// Shard returns the i-th sub-relation.
func (r *Relation) Shard(i int) *core.Relation { return r.shards[i] }

// ShardLen returns the number of points held by shard i.
func (r *Relation) ShardLen(i int) int { return r.shards[i].Len() }

// ShardCounters returns shard i's lifetime operation counters: every probe
// any query ran against that shard is accounted here (atomically, so
// concurrent queries may record while a caller snapshots).
func (r *Relation) ShardCounters(i int) *stats.Counters { return r.counters[i] }

// Bounds returns the union of the shard index bounds.
func (r *Relation) Bounds() geom.Rect {
	b := r.shards[0].Ix.Bounds()
	for _, s := range r.shards[1:] {
		b = b.Union(s.Ix.Bounds())
	}
	return b
}

// Group returns the relation's execution group for the scatter/gather
// drivers.
func (r *Relation) Group() Group {
	return Group{members: r.members, counters: r.counters}
}

// Group is the executable view of one logical relation for the
// scatter/gather drivers: an ordered list of members (a single un-sharded
// relation is a one-element group; members may be in-process or remote —
// see Member) plus optional per-shard lifetime counters to account probes
// against.
type Group struct {
	members  []Member
	counters []*stats.Counters
}

// SingleGroup wraps one core.Relation as a one-shard group, so the drivers
// accept sharded and un-sharded operands uniformly (queries may mix them).
func SingleGroup(rel *core.Relation) Group {
	return Group{members: []Member{LocalMember(rel)}}
}

// MemberGroup builds a group over explicit members (the remote layer's
// entry). counters may be nil, or one lifetime counter per member.
func MemberGroup(members []Member, counters []*stats.Counters) Group {
	return Group{members: members, counters: counters}
}

// NumShards returns the group's shard count.
func (g Group) NumShards() int { return len(g.members) }

// Len returns the group's total cardinality.
func (g Group) Len() int {
	n := 0
	for _, m := range g.members {
		n += m.Len()
	}
	return n
}

// Partition splits pts into nShards columnar stores under the given policy.
// Every output point carries its global stable ID — its position in pts —
// so identity survives the partition. The assignment is a pure function of
// (pts, nShards, policy).
func Partition(pts []geom.Point, nShards int, policy Policy) []*geom.PointStore {
	if policy == PolicySpatial {
		return partitionSpatial(pts, nShards)
	}
	return partitionHash(pts, nShards)
}

// hashID spreads a stable ID with a Fibonacci multiplicative hash; the high
// bits decide the shard so consecutive IDs do not stripe.
func hashID(id int32, nShards int) int {
	h := uint64(uint32(id)) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(nShards))
}

func partitionHash(pts []geom.Point, nShards int) []*geom.PointStore {
	sizes := make([]int, nShards)
	for i := range pts {
		sizes[hashID(int32(i), nShards)]++
	}
	stores := make([]*geom.PointStore, nShards)
	for s := range stores {
		stores[s] = geom.NewPointStore(sizes[s])
	}
	for i, p := range pts {
		stores[hashID(int32(i), nShards)].AppendWithID(p, int32(i))
	}
	return stores
}

// partitionSpatial is the STR-style sort-tile partition: points are sorted
// by (X, Y, ID) and cut into vertical slabs, each slab is sorted by
// (Y, X, ID) and cut into runs; slab j receives a share of the shard budget
// and of the points proportional to it, so shard sizes stay within one point
// of each other. Ties (co-located points) are broken by stable ID, keeping
// the partition deterministic under any input order of distinct points.
func partitionSpatial(pts []geom.Point, nShards int) []*geom.PointStore {
	n := len(pts)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	byX := func(a, b int) bool {
		if pts[a].X != pts[b].X {
			return pts[a].X < pts[b].X
		}
		if pts[a].Y != pts[b].Y {
			return pts[a].Y < pts[b].Y
		}
		return a < b
	}
	byY := func(a, b int) bool {
		if pts[a].Y != pts[b].Y {
			return pts[a].Y < pts[b].Y
		}
		if pts[a].X != pts[b].X {
			return pts[a].X < pts[b].X
		}
		return a < b
	}
	sort.Slice(ids, func(i, j int) bool { return byX(ids[i], ids[j]) })

	slabCount := int(math.Ceil(math.Sqrt(float64(nShards))))
	stores := make([]*geom.PointStore, 0, nShards)
	cumParts, start := 0, 0
	for j := 0; j < slabCount; j++ {
		parts := nShards/slabCount + boolInt(j < nShards%slabCount)
		if parts == 0 {
			continue
		}
		cumParts += parts
		end := n * cumParts / nShards
		slab := ids[start:end]
		sort.Slice(slab, func(i, j int) bool { return byY(slab[i], slab[j]) })
		for r := 0; r < parts; r++ {
			lo := len(slab) * r / parts
			hi := len(slab) * (r + 1) / parts
			st := geom.NewPointStore(hi - lo)
			for _, id := range slab[lo:hi] {
				st.AppendWithID(pts[id], int32(id))
			}
			stores = append(stores, st)
		}
		start = end
	}
	return stores
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
