package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/locality"
	"repro/internal/stats"
	"repro/internal/testutil"
)

var testBounds = geom.NewRect(0, 0, 1000, 1000)

func gridBuild(st *geom.PointStore) (index.Index, error) {
	return grid.NewFromStore(st, grid.Options{TargetPerCell: 16, Bounds: testBounds})
}

func testPoints(n int, seed int64) []geom.Point {
	return testutil.UniformPoints(n, testBounds, seed)
}

// TestPartitionPreservesIDs checks that every policy scatters each input
// point — with its global stable ID — to exactly one shard.
func TestPartitionPreservesIDs(t *testing.T) {
	pts := testPoints(257, 1)
	for _, policy := range []Policy{PolicyHash, PolicySpatial} {
		for _, s := range []int{1, 2, 3, 7, 300} {
			stores := Partition(pts, s, policy)
			if len(stores) != s {
				t.Fatalf("%v/%d: got %d stores", policy, s, len(stores))
			}
			seen := make([]int, len(pts))
			total := 0
			for _, st := range stores {
				total += st.Len()
				for i := 0; i < st.Len(); i++ {
					id := int(st.ID(i))
					if id < 0 || id >= len(pts) {
						t.Fatalf("%v/%d: ID %d out of range", policy, s, id)
					}
					seen[id]++
					if st.At(i) != pts[id] {
						t.Fatalf("%v/%d: ID %d carries %v, want %v", policy, s, id, st.At(i), pts[id])
					}
				}
			}
			if total != len(pts) {
				t.Fatalf("%v/%d: partition holds %d points, want %d", policy, s, total, len(pts))
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("%v/%d: ID %d appears %d times", policy, s, id, n)
				}
			}
		}
	}
}

// TestPartitionDeterministic checks the partition is a pure function of its
// inputs.
func TestPartitionDeterministic(t *testing.T) {
	pts := testPoints(123, 2)
	for _, policy := range []Policy{PolicyHash, PolicySpatial} {
		a := Partition(pts, 5, policy)
		b := Partition(pts, 5, policy)
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("%v: shard %d differs between runs", policy, i)
			}
		}
	}
}

// TestSpatialPartitionBalance checks the sort-tile cut keeps shard sizes
// within a couple of points of each other.
func TestSpatialPartitionBalance(t *testing.T) {
	pts := testPoints(500, 3)
	for _, s := range []int{2, 3, 4, 7, 9} {
		stores := Partition(pts, s, PolicySpatial)
		minLen, maxLen := stores[0].Len(), stores[0].Len()
		for _, st := range stores[1:] {
			if st.Len() < minLen {
				minLen = st.Len()
			}
			if st.Len() > maxLen {
				maxLen = st.Len()
			}
		}
		if maxLen-minLen > 2 {
			t.Fatalf("S=%d: shard sizes spread %d..%d", s, minLen, maxLen)
		}
	}
}

func buildGroup(t *testing.T, pts []geom.Point, s int, policy Policy) Group {
	t.Helper()
	rel, err := New(pts, s, policy, 0, gridBuild)
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	return rel.Group()
}

// TestMergedNeighborhoodExact compares the probe's merged neighborhoods
// against a single searcher over the unpartitioned points: same points, same
// order, same distances, at every shard count.
func TestMergedNeighborhoodExact(t *testing.T) {
	pts := testPoints(400, 4)
	ix, err := grid.New(pts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	single := core.NewRelation(ix)

	rng := rand.New(rand.NewSource(5))
	for _, policy := range []Policy{PolicyHash, PolicySpatial} {
		for _, s := range []int{1, 2, 3, 7} {
			g := buildGroup(t, pts, s, policy)
			pr := acquire(nil, g)
			for trial := 0; trial < 30; trial++ {
				f := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
				k := 1 + rng.Intn(20)
				want := single.S.Neighborhood(f, k, nil)
				got := pr.neighborhood(f, k)
				if !reflect.DeepEqual(want.Points, got.Points) {
					t.Fatalf("%v/S=%d: merged neighborhood of %v (k=%d) differs:\n got %v\nwant %v",
						policy, s, f, k, got.Points, want.Points)
				}
				if !reflect.DeepEqual(want.Dists, got.Dists) {
					t.Fatalf("%v/S=%d: merged distances differ", policy, s)
				}
			}
			pr.release(nil)
		}
	}
}

// TestMergedNeighborhoodKeepsDuplicates checks co-located points are not
// deduped by the gather: the merged multiset matches NaiveKNN over the raw
// points.
func TestMergedNeighborhoodKeepsDuplicates(t *testing.T) {
	pts := []geom.Point{
		{X: 10, Y: 10}, {X: 10, Y: 10}, {X: 10, Y: 10},
		{X: 500, Y: 500}, {X: 600, Y: 600}, {X: 10, Y: 20},
	}
	for _, s := range []int{2, 3} {
		g := buildGroup(t, pts, s, PolicyHash)
		pr := acquire(nil, g)
		f := geom.Point{X: 11, Y: 11}
		for k := 1; k <= len(pts); k++ {
			want := locality.NaiveKNN(pts, f, k)
			got := pr.neighborhood(f, k)
			if !reflect.DeepEqual(want.Points, got.Points) {
				t.Fatalf("S=%d k=%d: got %v, want %v", s, k, got.Points, want.Points)
			}
		}
		pr.release(nil)
	}
}

// TestJoinMatchesCore compares the scatter/gather join against the core
// sequential join (canonically sorted) with sharded and mixed operands.
func TestJoinMatchesCore(t *testing.T) {
	outerPts := testPoints(220, 6)
	innerPts := testPoints(180, 7)
	outerIx, _ := grid.New(outerPts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	innerIx, _ := grid.New(innerPts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	outerSingle, innerSingle := core.NewRelation(outerIx), core.NewRelation(innerIx)

	want := core.KNNJoin(outerSingle, innerSingle.Acquire(), 4, nil)
	core.SortPairs(want)

	for _, workers := range []int{1, 3} {
		for _, policy := range []Policy{PolicyHash, PolicySpatial} {
			outerG := buildGroup(t, outerPts, 3, policy)
			innerG := buildGroup(t, innerPts, 2, policy)
			cases := map[string][2]Group{
				"both-sharded": {outerG, innerG},
				"outer-single": {SingleGroup(outerSingle), innerG},
				"inner-single": {outerG, SingleGroup(innerSingle)},
			}
			for name, gs := range cases {
				got := Join(nil, gs[0], gs[1], 4, workers, nil)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%v/%s/workers=%d: join differs (%d vs %d pairs)",
						policy, name, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestProbeStatsFold checks probe operation counts land both in the group's
// per-shard lifetime counters and in the query counter.
func TestProbeStatsFold(t *testing.T) {
	pts := testPoints(300, 8)
	rel, err := New(pts, 3, PolicyHash, 0, gridBuild)
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	pr := acquire(nil, rel.Group())
	pr.neighborhood(geom.Point{X: 500, Y: 500}, 5)
	pr.release(&c)

	if c.Neighborhoods != 3 {
		t.Fatalf("query counter saw %d neighborhoods, want 3 (one per shard)", c.Neighborhoods)
	}
	sum := int64(0)
	for i := 0; i < rel.NumShards(); i++ {
		snap := rel.ShardCounters(i).Snapshot()
		if snap.Neighborhoods != 1 {
			t.Fatalf("shard %d lifetime counter saw %d neighborhoods, want 1", i, snap.Neighborhoods)
		}
		sum += snap.PointsCompared
	}
	if sum != c.PointsCompared {
		t.Fatalf("per-shard PointsCompared sum %d != query counter %d", sum, c.PointsCompared)
	}
}

// TestBoundedPoolDegradation checks the scatter crew degrades instead of
// deadlocking when shard pools are bounded below the worker count, and the
// result is still exact.
func TestBoundedPoolDegradation(t *testing.T) {
	outerPts := testPoints(200, 9)
	innerPts := testPoints(150, 10)
	innerSharded, err := New(innerPts, 3, PolicySpatial, 1, gridBuild) // one handle per shard
	if err != nil {
		t.Fatal(err)
	}
	outerG := buildGroup(t, outerPts, 2, PolicyHash)

	outerIx, _ := grid.New(outerPts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	innerIx, _ := grid.New(innerPts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	want := core.KNNJoin(core.NewRelation(outerIx), core.NewRelation(innerIx).Acquire(), 3, nil)
	core.SortPairs(want)

	got := Join(nil, outerG, innerSharded.Group(), 3, 8, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("degraded join differs: %d vs %d pairs", len(got), len(want))
	}
}
