package index

// HeapOrdered is the element constraint for MinHeap: LessThan must define a
// strict weak ordering (the tie-break rules live in the element types).
type HeapOrdered[E any] interface {
	LessThan(E) bool
}

// MinHeap is the one binary min-heap behind every block iterator in this
// repository (eager scans, tree best-first traversal, grid ring expansion).
// It is generic over value-struct elements — instantiations compile to
// direct, non-boxing code, unlike container/heap, which would allocate per
// push to box each element in an interface.
//
// The zero value is an empty heap; Reset-style reuse is `h = h[:0]`.
type MinHeap[E HeapOrdered[E]] []E

// Init establishes the heap invariant over the whole slice in O(n)
// (Floyd's heap construction); used after bulk-appending elements.
func (h MinHeap[E]) Init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Push adds one element in O(log n).
func (h *MinHeap[E]) Push(e E) {
	*h = append(*h, e)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh[i].LessThan(hh[parent]) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

// Pop removes and returns the minimum element in O(log n). Call only on a
// non-empty heap.
func (h *MinHeap[E]) Pop() E {
	old := *h
	e := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	(*h).siftDown(0)
	return e
}

func (h MinHeap[E]) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].LessThan(h[smallest]) {
			smallest = l
		}
		if r < n && h[r].LessThan(h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
