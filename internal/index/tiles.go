package index

// SpaceTiler is an optional interface an Index may implement to declare
// whether its blocks tile the indexed region (every point of Bounds() lies
// in exactly one block region). Grids and quadtrees tile space; R-tree
// leaves generally do not.
//
// The distinction matters for one optimization only: the contour early-stop
// in the Block-Marking preprocessing assumes that any segment from a far
// point toward the focal point crosses scanned blocks; that assumption needs
// a tiling partition. Non-tiling indexes use exhaustive preprocessing, which
// is still correct and still prunes the join itself.
type SpaceTiler interface {
	TilesSpace() bool
}

// TilesSpace reports whether ix declares a space-tiling block partition.
// Indexes that do not implement SpaceTiler are conservatively assumed to
// tile space only if they do not implement the interface at all — callers
// that require tiling should treat "unknown" as false; this helper does, by
// returning false for indexes that neither tile nor declare.
func TilesSpace(ix Index) bool {
	if st, ok := ix.(SpaceTiler); ok {
		return st.TilesSpace()
	}
	return false
}
