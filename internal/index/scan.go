package index

import (
	"repro/internal/geom"
)

// A Scan enumerates the blocks of an index in increasing order of a distance
// key from a fixed query point. The paper's algorithms interleave MINDIST
// and MAXDIST orderings (its "MINDIST ordering" / "MAXDIST ordering"); Scan
// provides both through NewMinDistScan and NewMaxDistScan.
//
// A Scan is lazy: keys for all blocks are computed up front (O(B)) and the
// heap is established in O(B), but ordering work is only paid for the blocks
// actually popped (O(log B) each). Algorithms that stop early — all of the
// paper's algorithms do — pay far less than a full sort.
//
// The heap is a concrete implementation (no container/heap): pushing and
// popping blockEntry values through an interface would box every entry and
// allocate on each operation, which matters because one neighborhood query
// pops O(locality) entries. Reset re-aims an existing Scan at a new query
// point, reusing its backing array, so steady-state scans allocate nothing.
type Scan struct {
	blocks []*Block
	keyFn  func(geom.Rect, geom.Point) float64
	h      MinHeap[blockEntry]
}

// NewMinDistScan returns a scan over blocks in increasing MINDIST order from
// p. Ties on the key are broken by block ID, so scans are deterministic.
func NewMinDistScan(blocks []*Block, p geom.Point) *Scan {
	return newScan(blocks, p, geom.Rect.MinDistSq)
}

// NewMaxDistScan returns a scan over blocks in increasing MAXDIST order from
// p. Ties on the key are broken by block ID, so scans are deterministic.
func NewMaxDistScan(blocks []*Block, p geom.Point) *Scan {
	return newScan(blocks, p, geom.Rect.MaxDistSq)
}

func newScan(blocks []*Block, p geom.Point, keyFn func(geom.Rect, geom.Point) float64) *Scan {
	s := &Scan{blocks: blocks, keyFn: keyFn}
	s.Reset(p)
	return s
}

// Reset re-aims the scan at a new query point, reusing the heap's backing
// array. Implements ReusableIter.
func (s *Scan) Reset(p geom.Point) {
	s.h = s.h[:0]
	for _, b := range s.blocks {
		s.h = append(s.h, blockEntry{block: b, key: s.keyFn(b.Bounds, p)})
	}
	s.h.Init()
}

// Next returns the next block in the scan order together with its key (the
// squared MINDIST or MAXDIST). ok is false when the scan is exhausted.
func (s *Scan) Next() (b *Block, keySq float64, ok bool) {
	if len(s.h) == 0 {
		return nil, 0, false
	}
	e := s.h.Pop()
	return e.block, e.key, true
}

// Remaining returns how many blocks have not been popped yet.
func (s *Scan) Remaining() int { return len(s.h) }

// blockEntry pairs a block with its precomputed squared-distance key.
type blockEntry struct {
	block *Block
	key   float64
}

// LessThan orders entries by (key, block ID); implements HeapOrdered.
func (e blockEntry) LessThan(o blockEntry) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	return e.block.ID < o.block.ID
}
