package index

import (
	"container/heap"

	"repro/internal/geom"
)

// A Scan enumerates the blocks of an index in increasing order of a distance
// key from a fixed query point. The paper's algorithms interleave MINDIST
// and MAXDIST orderings (its "MINDIST ordering" / "MAXDIST ordering"); Scan
// provides both through NewMinDistScan and NewMaxDistScan.
//
// A Scan is lazy: keys for all blocks are computed up front (O(B)) and the
// heap is established in O(B), but ordering work is only paid for the blocks
// actually popped (O(log B) each). Algorithms that stop early — all of the
// paper's algorithms do — pay far less than a full sort.
type Scan struct {
	h blockHeap
}

// NewMinDistScan returns a scan over blocks in increasing MINDIST order from
// p. Ties on the key are broken by block ID, so scans are deterministic.
func NewMinDistScan(blocks []*Block, p geom.Point) *Scan {
	return newScan(blocks, p, geom.Rect.MinDistSq)
}

// NewMaxDistScan returns a scan over blocks in increasing MAXDIST order from
// p. Ties on the key are broken by block ID, so scans are deterministic.
func NewMaxDistScan(blocks []*Block, p geom.Point) *Scan {
	return newScan(blocks, p, geom.Rect.MaxDistSq)
}

func newScan(blocks []*Block, p geom.Point, keyFn func(geom.Rect, geom.Point) float64) *Scan {
	s := &Scan{h: make(blockHeap, 0, len(blocks))}
	for _, b := range blocks {
		s.h = append(s.h, blockEntry{block: b, key: keyFn(b.Bounds, p)})
	}
	heap.Init(&s.h)
	return s
}

// Next returns the next block in the scan order together with its key (the
// squared MINDIST or MAXDIST). ok is false when the scan is exhausted.
func (s *Scan) Next() (b *Block, keySq float64, ok bool) {
	if s.h.Len() == 0 {
		return nil, 0, false
	}
	e := heap.Pop(&s.h).(blockEntry)
	return e.block, e.key, true
}

// Remaining returns how many blocks have not been popped yet.
func (s *Scan) Remaining() int { return s.h.Len() }

// blockEntry pairs a block with its precomputed squared-distance key.
type blockEntry struct {
	block *Block
	key   float64
}

type blockHeap []blockEntry

func (h blockHeap) Len() int { return len(h) }
func (h blockHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].block.ID < h[j].block.ID
}
func (h blockHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *blockHeap) Push(x any) { *h = append(*h, x.(blockEntry)) }
func (h *blockHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
