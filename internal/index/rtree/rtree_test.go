package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
)

func uniformPoints(n int, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Errorf("empty point set must error")
	}
}

func TestLeafPackingAndCounts(t *testing.T) {
	pts := uniformPoints(1500, geom.NewRect(0, 0, 100, 100), 11)
	tr, err := New(pts, Options{LeafCapacity: 20, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Blocks() {
		if b.Count() == 0 || b.Count() > 20 {
			t.Fatalf("leaf holds %d points, want 1..20", b.Count())
		}
		// Leaf bounds are MBRs: every point inside, and tight.
		mbr := geom.RectFromPoints(b.AppendPoints(nil))
		if b.Bounds != mbr {
			t.Fatalf("leaf bounds %v are not the MBR %v", b.Bounds, mbr)
		}
	}
	if got := index.TotalCount(tr); got != 1500 {
		t.Fatalf("blocks hold %d points, want 1500", got)
	}
	if tr.Height() < 2 {
		t.Fatalf("1500 points at capacity 20 and fanout 4 must have internal levels")
	}
}

func TestSinglePoint(t *testing.T) {
	tr, err := New([]geom.Point{{X: 3, Y: 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || len(tr.Blocks()) != 1 {
		t.Fatalf("single point must build a lone leaf")
	}
	if b := tr.Locate(geom.Point{X: 3, Y: 4}); b == nil {
		t.Fatalf("Locate failed for the stored point")
	}
}

func TestDoesNotTileSpace(t *testing.T) {
	pts := uniformPoints(200, geom.NewRect(0, 0, 100, 100), 12)
	tr, err := New(pts, Options{LeafCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TilesSpace() {
		t.Fatalf("R-tree leaves must not claim to tile space")
	}
	if index.TilesSpace(tr) {
		t.Fatalf("index.TilesSpace must report false for R-trees")
	}
}

func TestLocateNonIndexedPoint(t *testing.T) {
	pts := uniformPoints(400, geom.NewRect(0, 0, 100, 100), 13)
	tr, err := New(pts, Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	// A point inside the root MBR: Locate may return a covering leaf or
	// nil (leaves have gaps), but must never return a leaf that does not
	// cover the point.
	q := geom.Point{X: 50.123, Y: 49.876}
	if b := tr.Locate(q); b != nil && !b.Bounds.Contains(q) {
		t.Fatalf("Locate returned a non-covering leaf %v for %v", b, q)
	}
	// A point far outside must return nil.
	if b := tr.Locate(geom.Point{X: 1e6, Y: 1e6}); b != nil {
		t.Fatalf("Locate(far outside) = %v, want nil", b)
	}
}

func TestStructureInvariant(t *testing.T) {
	// Every internal node's MBR must contain its children's MBRs; checked
	// indirectly: root bounds contain every leaf's bounds.
	pts := uniformPoints(900, geom.NewRect(-50, -50, 50, 50), 14)
	tr, err := New(pts, Options{LeafCapacity: 12, Fanout: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Blocks() {
		if !tr.Bounds().ContainsRect(b.Bounds) {
			t.Fatalf("leaf %v escapes root bounds %v", b.Bounds, tr.Bounds())
		}
	}
}
