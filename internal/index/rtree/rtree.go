// Package rtree implements an STR (Sort-Tile-Recursive) bulk-loaded R-tree
// over a static point set. The paper's Section 2 names the R-tree and its
// variants as index families its algorithms run on unmodified; this package
// exists to substantiate that claim.
//
// STR packing (Leutenegger, Lopez, Edgington 1997) sorts points by X, cuts
// them into vertical slabs, sorts each slab by Y and cuts runs of the leaf
// capacity. For static snapshots — the paper's setting — the resulting tree
// is near-optimally packed, and the STR order doubles as the permutation of
// the relation-wide geom.PointStore: leaves are appended to the store in
// creation order, so every leaf block is a contiguous span. Leaf minimum
// bounding rectangles do not tile space (there are gaps between them), which
// the contour optimization of the Block-Marking preprocessing cannot rely
// on; the tree therefore reports TilesSpace() == false and algorithms fall
// back to exhaustive block preprocessing.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/index"
)

// Tree is an STR bulk-loaded R-tree.
type Tree struct {
	root   *node
	bounds geom.Rect
	blocks []*index.Block
	store  *geom.PointStore
	n      int
	height int
}

var (
	_ index.Index  = (*Tree)(nil)
	_ index.Storer = (*Tree)(nil)
)

type node struct {
	bounds   geom.Rect
	children []*node      // nil for a leaf
	block    *index.Block // non-nil for a leaf
}

// Options configure R-tree construction.
type Options struct {
	// LeafCapacity is the number of points packed per leaf; defaults to 64.
	LeafCapacity int

	// Fanout is the number of children packed per internal node; defaults
	// to 16.
	Fanout int
}

// buildPoint carries one point with its stable ID through the STR sorts.
type buildPoint struct {
	p  geom.Point
	id int32
}

// New builds an STR-packed R-tree over pts, assigning stable point IDs
// 0..len-1 in input order. It returns an error for an empty point set: an
// R-tree over nothing has no region.
func New(pts []geom.Point, opt Options) (*Tree, error) {
	return NewFromStore(geom.StoreFromPoints(pts), opt)
}

// NewFromStore builds an STR-packed R-tree over the points of st,
// preserving the store's IDs. The input store is not modified; the tree
// owns a block-contiguous (STR-ordered) permutation of it.
func NewFromStore(st *geom.PointStore, opt Options) (*Tree, error) {
	if st.Len() == 0 {
		return nil, fmt.Errorf("rtree: empty point set")
	}
	if opt.LeafCapacity <= 0 {
		opt.LeafCapacity = 64
	}
	if opt.Fanout <= 1 {
		opt.Fanout = 16
	}

	owned := make([]buildPoint, st.Len())
	for i := range owned {
		owned[i] = buildPoint{p: st.At(i), id: st.ID(i)}
	}
	t := &Tree{n: len(owned), store: geom.NewPointStore(len(owned))}

	leaves := t.packLeaves(owned, opt.LeafCapacity)
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, opt.Fanout)
	}
	t.root = level[0]
	t.bounds = t.root.bounds
	t.height = measureHeight(t.root)
	return t, nil
}

// packLeaves applies one round of STR tiling to the points and creates the
// leaf nodes/blocks, appending each leaf's points to the store as the next
// contiguous span.
func (t *Tree) packLeaves(pts []buildPoint, cap int) []*node {
	nLeaves := (len(pts) + cap - 1) / cap
	slabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	perSlab := slabs * cap

	sort.Slice(pts, func(i, j int) bool {
		if pts[i].p.X != pts[j].p.X {
			return pts[i].p.X < pts[j].p.X
		}
		return pts[i].p.Y < pts[j].p.Y
	})

	var leaves []*node
	for start := 0; start < len(pts); start += perSlab {
		end := start + perSlab
		if end > len(pts) {
			end = len(pts)
		}
		slab := pts[start:end]
		sort.Slice(slab, func(i, j int) bool {
			if slab[i].p.Y != slab[j].p.Y {
				return slab[i].p.Y < slab[j].p.Y
			}
			return slab[i].p.X < slab[j].p.X
		})
		for ls := 0; ls < len(slab); ls += cap {
			le := ls + cap
			if le > len(slab) {
				le = len(slab)
			}
			off := t.store.Len()
			for _, bp := range slab[ls:le] {
				t.store.AppendWithID(bp.p, bp.id)
			}
			b := index.NewBlock(len(t.blocks), t.store.MBR(off, le-ls), t.store, off, le-ls)
			t.blocks = append(t.blocks, b)
			leaves = append(leaves, &node{bounds: b.Bounds, block: b})
		}
	}
	return leaves
}

// packNodes groups one level of nodes into parents using the same STR
// tiling, keyed by node-MBR centers.
func packNodes(level []*node, fanout int) []*node {
	nParents := (len(level) + fanout - 1) / fanout
	slabs := int(math.Ceil(math.Sqrt(float64(nParents))))
	perSlab := slabs * fanout

	sort.Slice(level, func(i, j int) bool {
		ci, cj := level[i].bounds.Center(), level[j].bounds.Center()
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})

	var parents []*node
	for start := 0; start < len(level); start += perSlab {
		end := start + perSlab
		if end > len(level) {
			end = len(level)
		}
		slab := level[start:end]
		sort.Slice(slab, func(i, j int) bool {
			ci, cj := slab[i].bounds.Center(), slab[j].bounds.Center()
			if ci.Y != cj.Y {
				return ci.Y < cj.Y
			}
			return ci.X < cj.X
		})
		for ls := 0; ls < len(slab); ls += fanout {
			le := ls + fanout
			if le > len(slab) {
				le = len(slab)
			}
			children := make([]*node, le-ls)
			copy(children, slab[ls:le])
			bounds := children[0].bounds
			for _, c := range children[1:] {
				bounds = bounds.Union(c.bounds)
			}
			parents = append(parents, &node{bounds: bounds, children: children})
		}
	}
	return parents
}

func measureHeight(nd *node) int {
	h := 1
	for nd.children != nil {
		nd = nd.children[0]
		h++
	}
	return h
}

// Blocks implements index.Index.
func (t *Tree) Blocks() []*index.Block { return t.blocks }

// Len implements index.Index.
func (t *Tree) Len() int { return t.n }

// Bounds implements index.Index.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Store implements index.Storer: the relation-wide store holding the leaves
// as contiguous spans in STR packing (block-ID) order.
func (t *Tree) Store() *geom.PointStore { return t.store }

// Height returns the number of levels in the tree (a lone leaf is height 1).
func (t *Tree) Height() int { return t.height }

// TilesSpace reports that R-tree leaves do not tile space; see the package
// comment. Algorithms that need a space-tiling partition (the contour
// early-stop of Block-Marking preprocessing) must not rely on this index.
func (t *Tree) TilesSpace() bool { return false }

// Locate implements index.Index. For indexed points it returns the leaf that
// stores the point. For arbitrary points it returns some leaf whose MBR
// contains the point, or nil when no leaf covers it (R-tree leaves leave
// gaps).
func (t *Tree) Locate(p geom.Point) *index.Block {
	if !t.bounds.Contains(p) {
		return nil
	}
	var fallback *index.Block
	var walk func(nd *node) *index.Block
	walk = func(nd *node) *index.Block {
		if nd.block != nil {
			if fallback == nil {
				fallback = nd.block
			}
			xs, ys := nd.block.XYs()
			for i := range xs {
				if xs[i] == p.X && ys[i] == p.Y {
					return nd.block
				}
			}
			return nil
		}
		for _, c := range nd.children {
			if c.bounds.Contains(p) {
				if b := walk(c); b != nil {
					return b
				}
			}
		}
		return nil
	}
	if b := walk(t.root); b != nil {
		return b
	}
	// Not an indexed point: return any covering leaf if one exists.
	return fallback
}

// NodeBounds implements index.TreeNode.
func (nd *node) NodeBounds() geom.Rect { return nd.bounds }

// NodeBlock implements index.TreeNode.
func (nd *node) NodeBlock() *index.Block { return nd.block }

// NodeChildren implements index.TreeNode.
func (nd *node) NodeChildren(dst []index.TreeNode) []index.TreeNode {
	for _, c := range nd.children {
		dst = append(dst, c)
	}
	return dst
}

// NewMinDistIter implements index.IncrementalScanner through best-first
// tree traversal.
func (t *Tree) NewMinDistIter(p geom.Point) index.BlockIter {
	return index.NewTreeMinDistIter(t.root, p)
}

// NewMaxDistIter implements index.IncrementalScanner.
func (t *Tree) NewMaxDistIter(p geom.Point) index.BlockIter {
	return index.NewTreeMaxDistIter(t.root, p)
}

var _ index.IncrementalScanner = (*Tree)(nil)
