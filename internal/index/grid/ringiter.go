package grid

import (
	"container/heap"
	"math"

	"repro/internal/geom"
	"repro/internal/index"
)

// This file implements incremental MINDIST/MAXDIST block orderings for the
// grid (index.IncrementalScanner): cells are discovered in expanding
// Chebyshev rings around the query point's cell and ordered through a small
// heap. A query that stops after a handful of blocks — every algorithm in
// the paper does — touches O(popped) cells instead of all of them, which is
// what makes per-query cost proportional to the locality size.
//
// Correctness rests on one bound: every cell in Chebyshev ring r around the
// query point's (clamped) cell is at least (r-1) whole cells away from the
// query point along some axis, so both its MINDIST and its MAXDIST from the
// query point are at least (r-1)·min(cellW, cellH). A heap entry may
// therefore be popped as soon as its key is no larger than that bound for
// the first unexpanded ring.

// NewMinDistIter implements index.IncrementalScanner.
func (g *Grid) NewMinDistIter(p geom.Point) index.BlockIter {
	return g.newRingIter(p, geom.Rect.MinDistSq)
}

// NewMaxDistIter implements index.IncrementalScanner.
func (g *Grid) NewMaxDistIter(p geom.Point) index.BlockIter {
	return g.newRingIter(p, geom.Rect.MaxDistSq)
}

var _ index.IncrementalScanner = (*Grid)(nil)

type ringIter struct {
	g     *Grid
	p     geom.Point
	keyFn func(geom.Rect, geom.Point) float64

	cx, cy   int     // clamped cell of p
	nextRing int     // first ring not yet expanded
	maxRing  int     // last ring that intersects the grid
	minDim   float64 // min(cellW, cellH)

	h entryHeap
}

type ringEntry struct {
	block *index.Block
	key   float64
}

type entryHeap []ringEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].block.ID < h[j].block.ID
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(ringEntry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (g *Grid) newRingIter(p geom.Point, keyFn func(geom.Rect, geom.Point) float64) *ringIter {
	cx := int((p.X - g.bounds.MinX) / g.cellW)
	cy := int((p.Y - g.bounds.MinY) / g.cellH)
	cx = clampInt(cx, 0, g.cols-1)
	cy = clampInt(cy, 0, g.rows-1)

	// The farthest ring that still holds grid cells.
	maxRing := maxInt(maxInt(cx, g.cols-1-cx), maxInt(cy, g.rows-1-cy))

	it := &ringIter{
		g: g, p: p, keyFn: keyFn,
		cx: cx, cy: cy,
		maxRing: maxRing,
		minDim:  math.Min(g.cellW, g.cellH),
	}
	return it
}

// ringBoundSq is the (squared) lower bound on the metric key of any cell in
// ring r or beyond.
func (it *ringIter) ringBoundSq(r int) float64 {
	if r <= 0 {
		return 0
	}
	d := float64(r-1) * it.minDim
	return d * d
}

// expandRing pushes all grid cells of Chebyshev ring r onto the heap.
func (it *ringIter) expandRing(r int) {
	g := it.g
	push := func(c, row int) {
		if c < 0 || c >= g.cols || row < 0 || row >= g.rows {
			return
		}
		b := g.blocks[row*g.cols+c]
		heap.Push(&it.h, ringEntry{block: b, key: it.keyFn(b.Bounds, it.p)})
	}
	if r == 0 {
		push(it.cx, it.cy)
		return
	}
	for c := it.cx - r; c <= it.cx+r; c++ {
		push(c, it.cy-r)
		push(c, it.cy+r)
	}
	for row := it.cy - r + 1; row <= it.cy+r-1; row++ {
		push(it.cx-r, row)
		push(it.cx+r, row)
	}
}

// Next implements index.BlockIter.
func (it *ringIter) Next() (*index.Block, float64, bool) {
	for {
		// Pop when the best candidate provably precedes every undiscovered
		// cell; otherwise expand the next ring.
		if it.h.Len() > 0 && (it.nextRing > it.maxRing || it.h[0].key <= it.ringBoundSq(it.nextRing)) {
			e := heap.Pop(&it.h).(ringEntry)
			return e.block, e.key, true
		}
		if it.nextRing > it.maxRing {
			return nil, 0, false
		}
		it.expandRing(it.nextRing)
		it.nextRing++
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
