package grid

import (
	"math"

	"repro/internal/geom"
	"repro/internal/index"
)

// This file implements incremental MINDIST/MAXDIST block orderings for the
// grid (index.IncrementalScanner): cells are discovered in expanding
// Chebyshev rings around the query point's cell and ordered through a small
// heap. A query that stops after a handful of blocks — every algorithm in
// the paper does — touches O(popped) cells instead of all of them, which is
// what makes per-query cost proportional to the locality size.
//
// Correctness rests on one bound: every cell in Chebyshev ring r around the
// query point's (clamped) cell is at least (r-1) whole cells away from the
// query point along some axis, so both its MINDIST and its MAXDIST from the
// query point are at least (r-1)·min(cellW, cellH). A heap entry may
// therefore be popped as soon as its key is no larger than that bound for
// the first unexpanded ring.
//
// The heap is a concrete implementation (no container/heap) and the
// iterator supports Reset, so a pooled iterator performs steady-state
// queries without allocating.

// NewMinDistIter implements index.IncrementalScanner.
func (g *Grid) NewMinDistIter(p geom.Point) index.BlockIter {
	return g.newRingIter(p, geom.Rect.MinDistSq)
}

// NewMaxDistIter implements index.IncrementalScanner.
func (g *Grid) NewMaxDistIter(p geom.Point) index.BlockIter {
	return g.newRingIter(p, geom.Rect.MaxDistSq)
}

var (
	_ index.IncrementalScanner = (*Grid)(nil)
	_ index.ReusableIter       = (*ringIter)(nil)
)

type ringIter struct {
	g     *Grid
	p     geom.Point
	keyFn func(geom.Rect, geom.Point) float64

	cx, cy   int     // clamped cell of p
	nextRing int     // first ring not yet expanded
	maxRing  int     // last ring that intersects the grid
	minDim   float64 // min(cellW, cellH)

	h index.MinHeap[ringEntry]
}

type ringEntry struct {
	block *index.Block
	key   float64
}

// LessThan orders entries by (key, block ID); implements index.HeapOrdered.
func (e ringEntry) LessThan(o ringEntry) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	return e.block.ID < o.block.ID
}

func (g *Grid) newRingIter(p geom.Point, keyFn func(geom.Rect, geom.Point) float64) *ringIter {
	it := &ringIter{g: g, keyFn: keyFn, minDim: math.Min(g.cellW, g.cellH)}
	it.Reset(p)
	return it
}

// Reset re-aims the iterator at a new query point, reusing the heap's
// backing array. Implements index.ReusableIter.
func (it *ringIter) Reset(p geom.Point) {
	g := it.g
	cx := int((p.X - g.bounds.MinX) / g.cellW)
	cy := int((p.Y - g.bounds.MinY) / g.cellH)
	it.cx = clampInt(cx, 0, g.cols-1)
	it.cy = clampInt(cy, 0, g.rows-1)
	it.p = p
	it.nextRing = 0
	// The farthest ring that still holds grid cells.
	it.maxRing = maxInt(maxInt(it.cx, g.cols-1-it.cx), maxInt(it.cy, g.rows-1-it.cy))
	it.h = it.h[:0]
}

// ringBoundSq is the (squared) lower bound on the metric key of any cell in
// ring r or beyond.
func (it *ringIter) ringBoundSq(r int) float64 {
	if r <= 0 {
		return 0
	}
	d := float64(r-1) * it.minDim
	return d * d
}

// expandRing pushes all grid cells of Chebyshev ring r onto the heap.
func (it *ringIter) expandRing(r int) {
	g := it.g
	push := func(c, row int) {
		if c < 0 || c >= g.cols || row < 0 || row >= g.rows {
			return
		}
		b := g.blocks[row*g.cols+c]
		it.h.Push(ringEntry{block: b, key: it.keyFn(b.Bounds, it.p)})
	}
	if r == 0 {
		push(it.cx, it.cy)
		return
	}
	for c := it.cx - r; c <= it.cx+r; c++ {
		push(c, it.cy-r)
		push(c, it.cy+r)
	}
	for row := it.cy - r + 1; row <= it.cy+r-1; row++ {
		push(it.cx-r, row)
		push(it.cx+r, row)
	}
}

// Next implements index.BlockIter.
func (it *ringIter) Next() (*index.Block, float64, bool) {
	for {
		// Pop when the best candidate provably precedes every undiscovered
		// cell; otherwise expand the next ring.
		if len(it.h) > 0 && (it.nextRing > it.maxRing || it.h[0].key <= it.ringBoundSq(it.nextRing)) {
			e := it.h.Pop()
			return e.block, e.key, true
		}
		if it.nextRing > it.maxRing {
			return nil, 0, false
		}
		it.expandRing(it.nextRing)
		it.nextRing++
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
