package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
)

func uniformPoints(n int, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Errorf("empty points without bounds must error")
	}
	g, err := New(nil, Options{Bounds: geom.NewRect(0, 0, 1, 1), Cols: 2, Rows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cols, rows := g.Dims(); cols != 2 || rows != 3 {
		t.Errorf("Dims = %d x %d, want 2 x 3", cols, rows)
	}
	if len(g.Blocks()) != 6 {
		t.Errorf("blocks = %d, want 6", len(g.Blocks()))
	}

	if _, err := New([]geom.Point{{X: 5, Y: 5}}, Options{Bounds: geom.NewRect(0, 0, 1, 1)}); err == nil {
		t.Errorf("point outside explicit bounds must error")
	}
}

func TestSinglePointGrid(t *testing.T) {
	g, err := New([]geom.Point{{X: 3, Y: 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || index.TotalCount(g) != 1 {
		t.Fatalf("single-point grid misplaced the point")
	}
	if b := g.Locate(geom.Point{X: 3, Y: 4}); b == nil || b.Count() != 1 {
		t.Fatalf("Locate failed on the stored point")
	}
}

// TestRingIterMatchesEagerScan is the central property of the incremental
// orderings: they must enumerate exactly the same blocks in exactly the
// same order as the eager heap over all blocks, for query points inside,
// near, and far outside the grid.
func TestRingIterMatchesEagerScan(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 800)
	pts := uniformPoints(3000, bounds, 17)
	g, err := New(pts, Options{TargetPerCell: 16})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(18))
	queries := []geom.Point{
		{X: 500, Y: 400},   // center
		{X: 0, Y: 0},       // corner
		{X: -250, Y: 400},  // outside left
		{X: 2000, Y: 2000}, // far outside
	}
	for i := 0; i < 12; i++ {
		queries = append(queries, geom.Point{X: rng.Float64()*1600 - 300, Y: rng.Float64()*1400 - 300})
	}

	for _, q := range queries {
		for name, pair := range map[string][2]index.BlockIter{
			"mindist": {g.NewMinDistIter(q), index.NewMinDistScan(g.Blocks(), q)},
			"maxdist": {g.NewMaxDistIter(q), index.NewMaxDistScan(g.Blocks(), q)},
		} {
			inc, eager := pair[0], pair[1]
			for step := 0; ; step++ {
				bi, ki, oki := inc.Next()
				be, ke, oke := eager.Next()
				if oki != oke {
					t.Fatalf("%s q=%v step %d: incremental ok=%v, eager ok=%v", name, q, step, oki, oke)
				}
				if !oki {
					break
				}
				if ki != ke {
					t.Fatalf("%s q=%v step %d: key %v != %v", name, q, step, ki, ke)
				}
				// Keys tie across blocks; require identical keys and, on
				// ties, identical block sets is implied by identical order
				// because both tie-break by block ID.
				if bi.ID != be.ID {
					t.Fatalf("%s q=%v step %d: block %d != %d (key %v)", name, q, step, bi.ID, be.ID, ki)
				}
			}
		}
	}
}

// TestRingIterLazy ensures the iterator does not touch all blocks when the
// consumer stops early — the property that makes per-query cost
// proportional to locality size.
func TestRingIterLazy(t *testing.T) {
	pts := uniformPoints(100000, geom.NewRect(0, 0, 1000, 1000), 19)
	g, err := New(pts, Options{TargetPerCell: 16}) // ~6000 cells
	if err != nil {
		t.Fatal(err)
	}
	it := g.NewMinDistIter(geom.Point{X: 500, Y: 500}).(*ringIter)
	for i := 0; i < 10; i++ {
		if _, _, ok := it.Next(); !ok {
			t.Fatalf("iterator exhausted after %d blocks", i)
		}
	}
	cols, rows := g.Dims()
	if touched := len(it.h); touched > cols*rows/4 {
		t.Errorf("iterator touched %d of %d blocks for 10 pops; not lazy", touched, cols*rows)
	}
}

func TestRingIterDegenerateGrids(t *testing.T) {
	// 1xN and Nx1 grids exercise ring clipping.
	for _, dims := range [][2]int{{1, 8}, {8, 1}, {1, 1}} {
		g, err := New(uniformPoints(50, geom.NewRect(0, 0, 100, 100), 20),
			Options{Cols: dims[0], Rows: dims[1]})
		if err != nil {
			t.Fatal(err)
		}
		q := geom.Point{X: 37, Y: 61}
		seen := 0
		it := g.NewMinDistIter(q)
		prev := -1.0
		for {
			_, key, ok := it.Next()
			if !ok {
				break
			}
			if key < prev {
				t.Fatalf("grid %v: keys not monotone", dims)
			}
			prev = key
			seen++
		}
		if seen != dims[0]*dims[1] {
			t.Fatalf("grid %v: enumerated %d blocks, want %d", dims, seen, dims[0]*dims[1])
		}
	}
}

// TestNaNPointsRejected pins the NaN guard in cell arithmetic: a NaN
// coordinate must fail construction with the outside-bounds error (as the
// pre-columnar Contains-based path did) and must not be locatable.
func TestNaNPointsRejected(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	nan := math.NaN()
	for _, p := range []geom.Point{{X: nan, Y: 5}, {X: 5, Y: nan}, {X: nan, Y: nan}} {
		if _, err := New([]geom.Point{p}, Options{Bounds: bounds, Cols: 1, Rows: 1}); err == nil {
			t.Errorf("New with NaN point %v built a grid, want outside-bounds error", p)
		}
	}
	g, err := New([]geom.Point{{X: 5, Y: 5}}, Options{Bounds: bounds, Cols: 3, Rows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b := g.Locate(geom.Point{X: nan, Y: nan}); b != nil {
		t.Errorf("Locate(NaN) = %v, want nil", b)
	}
}
