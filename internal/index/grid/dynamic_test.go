package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
)

func TestNewDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(geom.Rect{}, 4, 4, nil); err == nil {
		t.Errorf("zero bounds must error")
	}
	if _, err := NewDynamic(geom.NewRect(0, 0, 1, 1), 0, 4, nil); err == nil {
		t.Errorf("non-positive dims must error")
	}
	if _, err := NewDynamic(geom.NewRect(0, 0, 1, 1), 2, 2,
		[]geom.Point{{X: 5, Y: 5}}); err == nil {
		t.Errorf("initial point outside bounds must error")
	}
}

func TestDynamicInsertRemove(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	d, err := NewDynamic(bounds, 8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("fresh dynamic grid Len = %d", d.Len())
	}

	p := geom.Point{X: 10, Y: 20}
	if err := d.Insert(p); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || index.TotalCount(d) != 1 {
		t.Fatalf("after insert: Len=%d total=%d", d.Len(), index.TotalCount(d))
	}
	if b := d.Locate(p); b == nil || b.Count() != 1 {
		t.Fatalf("Locate after insert failed")
	}
	if err := d.Insert(geom.Point{X: 200, Y: 0}); err == nil {
		t.Fatalf("insert outside bounds must error")
	}

	if !d.Remove(p) {
		t.Fatalf("Remove must find the point")
	}
	if d.Remove(p) {
		t.Fatalf("second Remove must find nothing")
	}
	if d.Len() != 0 {
		t.Fatalf("after remove: Len = %d", d.Len())
	}
}

func TestDynamicRemovesOneDuplicateInstance(t *testing.T) {
	d, err := NewDynamic(geom.NewRect(0, 0, 10, 10), 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{X: 5, Y: 5}
	for i := 0; i < 3; i++ {
		if err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Remove(p) || d.Len() != 2 {
		t.Fatalf("Remove must delete exactly one instance; Len = %d", d.Len())
	}
}

// TestDynamicMatchesStaticQueries checks that after a mutation sequence,
// scans over the dynamic grid agree with a static grid built from the same
// final point set.
func TestDynamicMatchesStaticQueries(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	d, err := NewDynamic(bounds, 10, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	var live []geom.Point
	for step := 0; step < 600; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			if err := d.Insert(p); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		} else {
			i := rng.Intn(len(live))
			if !d.Remove(live[i]) {
				t.Fatalf("step %d: Remove failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}

	static, err := New(live, Options{Bounds: bounds, Cols: 10, Rows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != static.Len() {
		t.Fatalf("Len mismatch: %d vs %d", d.Len(), static.Len())
	}
	// Per-cell point multisets must coincide (order may differ after
	// swap-removals).
	for i, db := range d.Blocks() {
		sb := static.Blocks()[i]
		if db.Count() != sb.Count() {
			t.Fatalf("cell %d count %d vs %d", i, db.Count(), sb.Count())
		}
		counts := make(map[geom.Point]int)
		for p := range db.Points() {
			counts[p]++
		}
		for p := range sb.Points() {
			counts[p]--
		}
		for p, n := range counts {
			if n != 0 {
				t.Fatalf("cell %d: multiset mismatch at %v (%d)", i, p, n)
			}
		}
	}
	if !index.TilesSpace(d) {
		t.Fatalf("dynamic grid must tile space")
	}
	if _, ok := interface{}(d).(index.IncrementalScanner); !ok {
		t.Fatalf("dynamic grid must provide incremental scans")
	}
}
