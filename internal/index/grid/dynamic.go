package grid

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/index"
)

// Dynamic is a uniform grid over a *mutable* point set: the cell geometry
// is fixed at construction but points can be inserted and removed. It backs
// the continuous-query support (the paper's Section 7 names incremental
// evaluation of continuous queries as future work; package
// internal/continuous builds it on this index).
//
// Unlike the static indexes, Dynamic keeps no relation-wide store: each of
// its blocks owns a small private geom.PointStore (created through
// index.NewMutableBlock), so insertions and removals are O(1) block-local
// operations while scans still run over flat X/Y arrays. Stable IDs are
// assigned from an insertion counter.
//
// Dynamic implements index.Index with one contract deviation: blocks mutate.
// Queries and mutations must not run concurrently; the continuous monitors
// serialize them.
type Dynamic struct {
	grid   *Grid
	nextID int32
}

var (
	_ index.Index              = (*Dynamic)(nil)
	_ index.IncrementalScanner = (*Dynamic)(nil)
	_ index.SpaceTiler         = (*Dynamic)(nil)
)

// NewDynamic builds a mutable grid covering bounds with cols x rows cells,
// optionally pre-populated with pts.
func NewDynamic(bounds geom.Rect, cols, rows int, pts []geom.Point) (*Dynamic, error) {
	if bounds.Area() <= 0 {
		return nil, fmt.Errorf("grid: dynamic grid needs bounds with positive area, got %v", bounds)
	}
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("grid: dynamic grid needs positive dimensions, got %dx%d", cols, rows)
	}
	g, err := New(nil, Options{Bounds: bounds, Cols: cols, Rows: rows})
	if err != nil {
		return nil, err
	}
	// Swap every span block for one owning a private mutable store; the
	// static grid's shared (empty) store is dropped.
	for i, b := range g.blocks {
		g.blocks[i] = index.NewMutableBlock(b.ID, b.Bounds)
	}
	g.store = nil
	d := &Dynamic{grid: g}
	for _, p := range pts {
		if err := d.Insert(p); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Insert adds one point instance. It errors when p lies outside the fixed
// bounds (the cell geometry cannot grow).
func (d *Dynamic) Insert(p geom.Point) error {
	b := d.grid.Locate(p)
	if b == nil {
		return fmt.Errorf("grid: point %v outside dynamic grid bounds %v", p, d.grid.Bounds())
	}
	b.Push(p, d.nextID)
	d.nextID++
	d.grid.n++
	return nil
}

// Remove deletes one instance with exactly p's coordinates, reporting
// whether one existed. With duplicates, exactly one instance is removed.
func (d *Dynamic) Remove(p geom.Point) bool {
	b := d.grid.Locate(p)
	if b == nil {
		return false
	}
	xs, ys := b.XYs()
	for i := range xs {
		if xs[i] == p.X && ys[i] == p.Y {
			b.RemoveAt(i)
			d.grid.n--
			return true
		}
	}
	return false
}

// Blocks implements index.Index.
func (d *Dynamic) Blocks() []*index.Block { return d.grid.Blocks() }

// Locate implements index.Index.
func (d *Dynamic) Locate(p geom.Point) *index.Block { return d.grid.Locate(p) }

// Len implements index.Index.
func (d *Dynamic) Len() int { return d.grid.Len() }

// Bounds implements index.Index.
func (d *Dynamic) Bounds() geom.Rect { return d.grid.Bounds() }

// TilesSpace implements index.SpaceTiler.
func (d *Dynamic) TilesSpace() bool { return true }

// NewMinDistIter implements index.IncrementalScanner.
func (d *Dynamic) NewMinDistIter(p geom.Point) index.BlockIter { return d.grid.NewMinDistIter(p) }

// NewMaxDistIter implements index.IncrementalScanner.
func (d *Dynamic) NewMaxDistIter(p geom.Point) index.BlockIter { return d.grid.NewMaxDistIter(p) }
