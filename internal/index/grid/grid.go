// Package grid implements the simple uniform-grid spatial index used in the
// paper's experiments ("We index the data points into a simple grid. Since
// our algorithms are independent of a specific indexing structure, we choose
// a grid in order to be able to see the effectiveness of our algorithms even
// with simple structures.").
//
// The grid covers the bounding box of the data with Cols x Rows equal cells;
// each non-empty region of space corresponds to exactly one cell, and every
// cell — including empty ones — is exposed as a block so that MINDIST /
// MAXDIST contours over the full space are well defined.
//
// Construction is a counting sort: one pass tallies points per cell, a
// prefix sum lays the cells out as contiguous spans of one relation-wide
// geom.PointStore, and a stable scatter permutes the input into that
// block-contiguous order — so within each cell, points keep their input
// order, exactly as the former per-cell append produced.
package grid

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/index"
)

// Grid is a uniform-grid index over a static point set.
type Grid struct {
	bounds geom.Rect
	cols   int
	rows   int
	cellW  float64
	cellH  float64
	blocks []*index.Block
	store  *geom.PointStore
	n      int
}

var (
	_ index.Index  = (*Grid)(nil)
	_ index.Storer = (*Grid)(nil)
)

// Options configure grid construction.
type Options struct {
	// TargetPerCell is the desired average number of points per cell; the
	// grid dimensions are derived from it. Ignored when Cols and Rows are
	// both set. Defaults to 64, a reasonable balance between per-block
	// pruning granularity and block-scan overhead.
	TargetPerCell int

	// Cols and Rows force exact grid dimensions when both are positive.
	Cols, Rows int

	// Bounds forces the indexed region. When zero, the bounding box of the
	// points (slightly inflated so boundary points stay interior) is used.
	Bounds geom.Rect
}

// New builds a grid over pts, assigning stable point IDs 0..len-1 in input
// order.
//
// New never fails for valid inputs; it returns an error when pts is empty
// and no explicit Bounds is provided, because the indexed region would be
// undefined.
func New(pts []geom.Point, opt Options) (*Grid, error) {
	return NewFromStore(geom.StoreFromPoints(pts), opt)
}

// NewFromStore builds a grid over the points of st, preserving the store's
// IDs. The input store is not modified; the grid owns a block-contiguous
// permutation of it.
func NewFromStore(st *geom.PointStore, opt Options) (*Grid, error) {
	bounds := opt.Bounds
	if bounds == (geom.Rect{}) {
		if st.Len() == 0 {
			return nil, fmt.Errorf("grid: empty point set and no explicit bounds")
		}
		bounds = inflate(st.MBR(0, st.Len()))
	}
	cols, rows := opt.Cols, opt.Rows
	if cols <= 0 || rows <= 0 {
		target := opt.TargetPerCell
		if target <= 0 {
			target = 64
		}
		cells := int(math.Ceil(float64(st.Len()) / float64(target)))
		if cells < 1 {
			cells = 1
		}
		side := int(math.Ceil(math.Sqrt(float64(cells))))
		cols, rows = side, side
	}

	g := &Grid{
		bounds: bounds,
		cols:   cols,
		rows:   rows,
		cellW:  bounds.Width() / float64(cols),
		cellH:  bounds.Height() / float64(rows),
		n:      st.Len(),
	}

	// Counting sort: tally per cell, prefix-sum into span offsets, scatter.
	counts := make([]int, cols*rows)
	for i := 0; i < st.Len(); i++ {
		cell := g.cellIndex(st.Xs[i], st.Ys[i])
		if cell < 0 {
			return nil, fmt.Errorf("grid: point %v outside explicit bounds %v", st.At(i), bounds)
		}
		counts[cell]++
	}
	offsets := make([]int, cols*rows)
	off := 0
	for id, c := range counts {
		offsets[id] = off
		off += c
	}
	g.store = &geom.PointStore{
		Xs:  make([]float64, st.Len()),
		Ys:  make([]float64, st.Len()),
		IDs: make([]int32, st.Len()),
	}
	cursor := make([]int, cols*rows)
	copy(cursor, offsets)
	for i := 0; i < st.Len(); i++ {
		cell := g.cellIndex(st.Xs[i], st.Ys[i])
		j := cursor[cell]
		cursor[cell]++
		g.store.Xs[j] = st.Xs[i]
		g.store.Ys[j] = st.Ys[i]
		g.store.IDs[j] = st.IDs[i]
	}

	g.blocks = make([]*index.Block, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			cell := geom.Rect{
				MinX: bounds.MinX + float64(c)*g.cellW,
				MinY: bounds.MinY + float64(r)*g.cellH,
				MaxX: bounds.MinX + float64(c+1)*g.cellW,
				MaxY: bounds.MinY + float64(r+1)*g.cellH,
			}
			// Snap the outer edges exactly onto the grid bounds: the
			// floating-point products above can overshoot by an ulp, and
			// block regions must stay inside Bounds().
			if c == cols-1 {
				cell.MaxX = bounds.MaxX
			}
			if r == rows-1 {
				cell.MaxY = bounds.MaxY
			}
			g.blocks[id] = index.NewBlock(id, cell, g.store, offsets[id], counts[id])
		}
	}
	return g, nil
}

// cellIndex returns the cell holding coordinate (x, y), or -1 when it lies
// outside the grid bounds. Points exactly on the max edge belong to the
// last cell, matching Locate.
func (g *Grid) cellIndex(x, y float64) int {
	// Negated-conjunction form so NaN coordinates fail the containment test
	// (a NaN compares false both ways and must not reach cell arithmetic).
	if !(x >= g.bounds.MinX && x <= g.bounds.MaxX && y >= g.bounds.MinY && y <= g.bounds.MaxY) {
		return -1
	}
	c := int((x - g.bounds.MinX) / g.cellW)
	r := int((y - g.bounds.MinY) / g.cellH)
	if c >= g.cols {
		c = g.cols - 1
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return r*g.cols + c
}

// inflate grows a bounding box by a hair so that points on the max edge map
// into the last cell rather than out of range, and degenerate (zero-area)
// boxes become usable regions.
func inflate(r geom.Rect) geom.Rect {
	const rel = 1e-9
	w, h := r.Width(), r.Height()
	padX := w*rel + 1e-9
	padY := h*rel + 1e-9
	if w == 0 {
		padX = 0.5
	}
	if h == 0 {
		padY = 0.5
	}
	return geom.Rect{MinX: r.MinX - padX, MinY: r.MinY - padY, MaxX: r.MaxX + padX, MaxY: r.MaxY + padY}
}

// Blocks implements index.Index.
func (g *Grid) Blocks() []*index.Block { return g.blocks }

// Len implements index.Index.
func (g *Grid) Len() int { return g.n }

// Bounds implements index.Index.
func (g *Grid) Bounds() geom.Rect { return g.bounds }

// Store implements index.Storer: the relation-wide store the grid permuted
// its input into, cell by cell.
func (g *Grid) Store() *geom.PointStore { return g.store }

// Dims returns the grid dimensions (columns, rows).
func (g *Grid) Dims() (cols, rows int) { return g.cols, g.rows }

// Locate implements index.Index with O(1) cell arithmetic.
func (g *Grid) Locate(p geom.Point) *index.Block {
	cell := g.cellIndex(p.X, p.Y)
	if cell < 0 {
		return nil
	}
	return g.blocks[cell]
}

// TilesSpace reports that grid cells tile the indexed region exactly. This
// enables the contour early-stop in Block-Marking preprocessing.
func (g *Grid) TilesSpace() bool { return true }
