package index

import "repro/internal/geom"

// BlockIter enumerates blocks in increasing order of a distance metric from
// a query point. Next returns the block, its squared metric key, and false
// when the enumeration is exhausted.
//
// Two implementations exist: the eager *Scan (heap over all blocks, O(B)
// setup) and index-provided incremental iterators that only touch blocks
// near the query point. Algorithms obtain iterators through MinDistOrder /
// MaxDistOrder, which pick the best available implementation — this is what
// makes the paper's per-query costs proportional to the locality size
// instead of the total block count.
type BlockIter interface {
	Next() (b *Block, keySq float64, ok bool)
}

// IncrementalScanner is an optional interface an Index implements to
// provide lazy MINDIST/MAXDIST orderings. Grid indexes enumerate cells in
// expanding rings around the query point, touching O(popped) cells instead
// of all of them.
type IncrementalScanner interface {
	NewMinDistIter(p geom.Point) BlockIter
	NewMaxDistIter(p geom.Point) BlockIter
}

// MinDistOrder returns an iterator over ix's blocks in increasing MINDIST
// order from p, incremental when the index supports it.
func MinDistOrder(ix Index, p geom.Point) BlockIter {
	if inc, ok := ix.(IncrementalScanner); ok {
		return inc.NewMinDistIter(p)
	}
	return NewMinDistScan(ix.Blocks(), p)
}

// MaxDistOrder returns an iterator over ix's blocks in increasing MAXDIST
// order from p, incremental when the index supports it.
func MaxDistOrder(ix Index, p geom.Point) BlockIter {
	if inc, ok := ix.(IncrementalScanner); ok {
		return inc.NewMaxDistIter(p)
	}
	return NewMaxDistScan(ix.Blocks(), p)
}

// Statically assert that the eager scan satisfies BlockIter.
var _ BlockIter = (*Scan)(nil)
