package index

import "repro/internal/geom"

// BlockIter enumerates blocks in increasing order of a distance metric from
// a query point. Next returns the block, its squared metric key, and false
// when the enumeration is exhausted.
//
// Two implementations exist: the eager *Scan (heap over all blocks, O(B)
// setup) and index-provided incremental iterators that only touch blocks
// near the query point. Algorithms obtain iterators through MinDistOrder /
// MaxDistOrder, which pick the best available implementation — this is what
// makes the paper's per-query costs proportional to the locality size
// instead of the total block count.
type BlockIter interface {
	Next() (b *Block, keySq float64, ok bool)
}

// ReusableIter is a BlockIter that can be re-aimed at a new query point,
// reusing its internal heap and scratch storage. Every iterator in this
// repository implements it; per-query users go through an IterPool so that
// steady-state block enumeration allocates nothing.
type ReusableIter interface {
	BlockIter
	Reset(p geom.Point)
}

// IncrementalScanner is an optional interface an Index implements to
// provide lazy MINDIST/MAXDIST orderings. Grid indexes enumerate cells in
// expanding rings around the query point, touching O(popped) cells instead
// of all of them.
type IncrementalScanner interface {
	NewMinDistIter(p geom.Point) BlockIter
	NewMaxDistIter(p geom.Point) BlockIter
}

// MinDistOrder returns an iterator over ix's blocks in increasing MINDIST
// order from p, incremental when the index supports it.
func MinDistOrder(ix Index, p geom.Point) BlockIter {
	if inc, ok := ix.(IncrementalScanner); ok {
		return inc.NewMinDistIter(p)
	}
	return NewMinDistScan(ix.Blocks(), p)
}

// MaxDistOrder returns an iterator over ix's blocks in increasing MAXDIST
// order from p, incremental when the index supports it.
func MaxDistOrder(ix Index, p geom.Point) BlockIter {
	if inc, ok := ix.(IncrementalScanner); ok {
		return inc.NewMaxDistIter(p)
	}
	return NewMaxDistScan(ix.Blocks(), p)
}

// IterPool caches one MINDIST and one MAXDIST iterator over a single index
// so repeated queries reuse the iterators' heaps and scratch slices instead
// of reallocating them. The first MinDist/MaxDist call allocates the
// iterator; every later call only Resets it.
//
// The returned iterator is valid until the next MinDist (respectively
// MaxDist) call on the same pool — callers must fully consume or abandon it
// before asking for the next one. An IterPool is not safe for concurrent
// use; locality.Searcher embeds one per clone.
type IterPool struct {
	ix       Index
	min, max ReusableIter
}

// NewIterPool returns a pool over ix.
func NewIterPool(ix Index) *IterPool { return &IterPool{ix: ix} }

// MinDist returns a MINDIST iterator positioned at p, reusing the pooled
// iterator when one exists.
func (pl *IterPool) MinDist(p geom.Point) BlockIter {
	if pl.min != nil {
		pl.min.Reset(p)
		return pl.min
	}
	it := MinDistOrder(pl.ix, p)
	if r, ok := it.(ReusableIter); ok {
		pl.min = r
	}
	return it
}

// MaxDist returns a MAXDIST iterator positioned at p, reusing the pooled
// iterator when one exists.
func (pl *IterPool) MaxDist(p geom.Point) BlockIter {
	if pl.max != nil {
		pl.max.Reset(p)
		return pl.max
	}
	it := MaxDistOrder(pl.ix, p)
	if r, ok := it.(ReusableIter); ok {
		pl.max = r
	}
	return it
}

// Statically assert that both iterator families are reusable.
var (
	_ ReusableIter = (*Scan)(nil)
	_ ReusableIter = (*treeIter)(nil)
)
