package overlay

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
)

// buildBase indexes n pseudo-random points under a grid and returns the
// index plus the points by stable ID.
func buildBase(t *testing.T, n int, seed int64) (index.Index, map[int32]geom.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := geom.NewPointStore(n)
	for i := 0; i < n; i++ {
		st.Append(geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	ix, err := grid.NewFromStore(st, grid.Options{TargetPerCell: 8})
	if err != nil {
		t.Fatalf("grid build: %v", err)
	}
	want := make(map[int32]geom.Point, n)
	gst := index.StoreOf(ix)
	for i := 0; i < gst.Len(); i++ {
		want[gst.ID(i)] = gst.At(i)
	}
	return ix, want
}

// liveSet walks a snapshot's blocks and returns every (ID, point) it holds.
func liveSet(t *testing.T, ix index.Index) map[int32]geom.Point {
	t.Helper()
	got := make(map[int32]geom.Point)
	for _, b := range ix.Blocks() {
		ids := b.PointIDs()
		for i := range ids {
			if _, dup := got[ids[i]]; dup {
				t.Fatalf("duplicate ID %d in snapshot", ids[i])
			}
			got[ids[i]] = b.PointAt(i)
			if !b.Bounds.Contains(b.PointAt(i)) {
				t.Fatalf("block %d bounds %v do not contain point %v", b.ID, b.Bounds, b.PointAt(i))
			}
		}
	}
	return got
}

func checkSnapshot(t *testing.T, s *Store, want map[int32]geom.Point) {
	t.Helper()
	ix := s.Snapshot()
	if ix.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(want))
	}
	if tc := index.TotalCount(ix); tc != len(want) {
		t.Fatalf("TotalCount = %d, want %d", tc, len(want))
	}
	got := liveSet(t, ix)
	for id, p := range want {
		g, ok := got[id]
		if !ok || g != p {
			t.Fatalf("ID %d: got %v (present %v), want %v", id, g, ok, p)
		}
		if !ix.Bounds().Contains(p) {
			t.Fatalf("Bounds %v does not contain live point %v", ix.Bounds(), p)
		}
	}
	for _, b := range ix.Blocks() {
		if ix.Blocks()[b.ID] != b {
			t.Fatalf("Blocks()[%d] != block with ID %d", b.ID, b.ID)
		}
	}
	// Lookup agrees with the live set.
	for id, p := range want {
		if g, ok := s.Lookup(id); !ok || g != p {
			t.Fatalf("Lookup(%d) = %v, %v; want %v, true", id, g, ok, p)
		}
	}
}

func TestStoreMutations(t *testing.T) {
	base, want := buildBase(t, 200, 1)
	s := NewStore(base, 8)

	if s.Mutated() {
		t.Fatal("fresh store reports Mutated")
	}
	if got := s.Snapshot(); got != base {
		t.Fatal("unmutated Snapshot should return the base index")
	}

	// Inserts, including co-located duplicates of existing points.
	next := int32(200)
	ins := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 250, Y: -50}, want[0]}
	for _, p := range ins {
		s.Insert(p, next)
		want[next] = p
		next++
	}
	checkSnapshot(t, s, want)

	// Remove a mix of base and delta points; unknown IDs are rejected.
	for _, id := range []int32{0, 5, 7, 201, 203} {
		if !s.Remove(id) {
			t.Fatalf("Remove(%d) = false, want true", id)
		}
		delete(want, id)
	}
	if s.Remove(9999) || s.Remove(5) {
		t.Fatal("Remove of unknown/dead ID should return false")
	}
	checkSnapshot(t, s, want)

	// Reinsert a removed base ID: the delta incarnation wins.
	s.Insert(geom.Point{X: 42, Y: 42}, 5)
	want[5] = geom.Point{X: 42, Y: 42}
	checkSnapshot(t, s, want)
	if !s.Remove(5) {
		t.Fatal("Remove of reinserted ID failed")
	}
	delete(want, 5)
	checkSnapshot(t, s, want)

	if got, wantLive := s.DeltaLive(), 2; got != wantLive {
		t.Fatalf("DeltaLive = %d, want %d", got, wantLive)
	}
	if s.Tombstones() == 0 {
		t.Fatal("Tombstones = 0 after removals")
	}

	// LiveStore rebuilds exactly the live set.
	ls := s.LiveStore()
	if ls.Len() != len(want) {
		t.Fatalf("LiveStore len = %d, want %d", ls.Len(), len(want))
	}
	for i := 0; i < ls.Len(); i++ {
		if want[ls.ID(i)] != ls.At(i) {
			t.Fatalf("LiveStore[%d]: ID %d -> %v, want %v", i, ls.ID(i), ls.At(i), want[ls.ID(i)])
		}
	}
}

// TestMergeIterOrder drives the incremental merged iterator against the
// eager scan over the same snapshot: same block set, nondecreasing keys.
func TestMergeIterOrder(t *testing.T) {
	base, _ := buildBase(t, 300, 2)
	s := NewStore(base, 8)
	rng := rand.New(rand.NewSource(3))
	next := int32(300)
	for i := 0; i < 120; i++ {
		s.Insert(geom.Point{X: rng.Float64() * 120, Y: rng.Float64() * 120}, next)
		next++
	}
	for i := 0; i < 60; i++ {
		s.Remove(int32(rng.Intn(int(next))))
	}
	ix := s.Snapshot().(*Index)

	for _, q := range []geom.Point{{X: 50, Y: 50}, {X: -10, Y: 130}, {X: 0, Y: 0}} {
		for _, maxd := range []bool{false, true} {
			var it index.BlockIter
			var scan *index.Scan
			if maxd {
				it = ix.NewMaxDistIter(q)
				scan = index.NewMaxDistScan(ix.Blocks(), q)
			} else {
				it = ix.NewMinDistIter(q)
				scan = index.NewMinDistScan(ix.Blocks(), q)
			}
			seen := make(map[int]float64)
			last := -1.0
			for {
				b, k, ok := it.Next()
				if !ok {
					break
				}
				if k < last {
					t.Fatalf("maxd=%v: keys decreased: %v after %v", maxd, k, last)
				}
				last = k
				if _, dup := seen[b.ID]; dup {
					t.Fatalf("maxd=%v: block %d yielded twice", maxd, b.ID)
				}
				seen[b.ID] = k
			}
			for {
				b, k, ok := scan.Next()
				if !ok {
					break
				}
				got, present := seen[b.ID]
				if !present || got != k {
					t.Fatalf("maxd=%v: eager block %d key %v vs merged %v (present %v)", maxd, b.ID, k, got, present)
				}
				delete(seen, b.ID)
			}
			if len(seen) != 0 {
				t.Fatalf("maxd=%v: merged iterator yielded %d blocks the eager scan did not", maxd, len(seen))
			}
		}
	}

	// Reuse: Reset re-aims without dropping blocks.
	it := ix.NewMinDistIter(geom.Point{X: 10, Y: 10}).(index.ReusableIter)
	n1 := 0
	for _, _, ok := it.Next(); ok; _, _, ok = it.Next() {
		n1++
	}
	it.Reset(geom.Point{X: 90, Y: 90})
	n2 := 0
	for _, _, ok := it.Next(); ok; _, _, ok = it.Next() {
		n2++
	}
	if n1 != len(ix.Blocks()) || n2 != len(ix.Blocks()) {
		t.Fatalf("iterator yielded %d then %d blocks, want %d", n1, n2, len(ix.Blocks()))
	}
}

// TestLocateContainment checks the Locate contract the block-marking prune
// relies on: for every live point, the located block's bounds contain it.
func TestLocateContainment(t *testing.T) {
	base, _ := buildBase(t, 150, 4)
	s := NewStore(base, 8)
	rng := rand.New(rand.NewSource(5))
	next := int32(150)
	for i := 0; i < 80; i++ {
		// Half inside base coverage, half outside.
		scale := 100.0
		if i%2 == 0 {
			scale = 300.0
		}
		s.Insert(geom.Point{X: rng.Float64() * scale, Y: rng.Float64() * scale}, next)
		next++
	}
	for i := 0; i < 40; i++ {
		s.Remove(int32(rng.Intn(int(next))))
	}
	ix := s.Snapshot()
	for _, b := range ix.Blocks() {
		ids := b.PointIDs()
		for i := range ids {
			p := b.PointAt(i)
			blk := ix.Locate(p)
			if blk == nil {
				t.Fatalf("Locate(%v) = nil for live point", p)
			}
			if !blk.Bounds.Contains(p) {
				t.Fatalf("Locate(%v) block %d bounds %v do not contain it", p, blk.ID, blk.Bounds)
			}
		}
	}
}
