// Package overlay layers a mutable write path over an immutable base index.
//
// A Store accumulates mutations against a base index built once over a
// relation-wide SoA PointStore: inserts append to a columnar delta store,
// removals tombstone stable IDs. From that bookkeeping, Snapshot builds an
// immutable index.Index whose blocks are
//
//   - the base index's blocks, untouched where no tombstone landed,
//   - compacted private-store replacements (same block ID, same bounds) for
//     base blocks that lost points — tombstone filtering at block
//     granularity, so scans never test per-point liveness, and
//   - fixed-capacity chunk spans over the delta store, themselves replaced
//     by compacted private blocks when a delta point dies.
//
// Every block is a flat (store, off, n) span, so the batched distance
// kernels run unchanged over mutated relations. Snapshots freeze the delta
// store with PointStore.View, making them immutable values that later
// mutations cannot race with; the caller swaps them in RCU-style and is
// responsible for serializing mutations (a Store is not goroutine-safe).
//
// When the overlay fraction grows past the caller's threshold, LiveStore
// rebuilds the live point set — stable IDs preserved — as a fresh
// block-contiguous store for a from-scratch index build, after which the
// overlay is discarded.
package overlay

import (
	"repro/internal/geom"
	"repro/internal/index"
)

// Store is the mutation bookkeeping over one immutable base index. Not
// goroutine-safe: the owning relation serializes writers and publishes
// Snapshot results atomically.
type Store struct {
	base      index.Index
	baseStore *geom.PointStore
	chunk     int // delta chunk capacity (block size of delta spans)

	// Base-side state: position lookup and tombstones.
	posOfID    map[int32]int32 // stable ID -> base store position
	blockOfPos []int32         // base store position -> owning block ID
	tomb       map[int32]bool  // tombstoned base IDs
	patched    map[int]*index.Block
	baseDead   int

	// Delta-side state: append-only columnar store plus liveness.
	delta     *geom.PointStore
	deltaDead []bool
	deltaByID map[int32]int // live delta ID -> delta position
	deltaLive int
	chunkDead []int // per-chunk dead counts
	deltaMBR  geom.Rect
}

// NewStore returns a Store over base, whose blocks must be spans of a
// relation-wide PointStore (index.Storer — true for all four static index
// kinds). chunk is the delta block capacity; values < 1 become 1.
func NewStore(base index.Index, chunk int) *Store {
	st := index.StoreOf(base)
	if st == nil {
		panic("overlay: base index does not expose a relation-wide store")
	}
	if chunk < 1 {
		chunk = 1
	}
	s := &Store{
		base:       base,
		baseStore:  st,
		chunk:      chunk,
		posOfID:    make(map[int32]int32, st.Len()),
		blockOfPos: make([]int32, st.Len()),
		tomb:       make(map[int32]bool),
		patched:    make(map[int]*index.Block),
		delta:      geom.NewPointStore(chunk),
		deltaByID:  make(map[int32]int),
	}
	for i, id := range st.IDs {
		s.posOfID[id] = int32(i)
	}
	for _, b := range base.Blocks() {
		off, n := b.Span()
		for i := off; i < off+n; i++ {
			s.blockOfPos[i] = int32(b.ID)
		}
	}
	return s
}

// Insert appends p to the delta store under the stable ID id. The caller
// guarantees id is not currently live (the relation layer assigns fresh IDs
// on Insert and removes first on Update).
func (s *Store) Insert(p geom.Point, id int32) {
	pos := s.delta.Len()
	s.delta.AppendWithID(p, id)
	s.deltaDead = append(s.deltaDead, false)
	if pos%s.chunk == 0 {
		s.chunkDead = append(s.chunkDead, 0)
	}
	s.deltaByID[id] = pos
	s.deltaLive++
	if s.delta.Len() == 1 {
		s.deltaMBR = geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	} else {
		s.deltaMBR = s.deltaMBR.ExpandPoint(p)
	}
}

// Remove tombstones the live point with stable ID id, reporting whether it
// existed. The delta store is checked first: a reinserted ID's live
// incarnation lives there even when the base still holds its tombstoned
// predecessor.
func (s *Store) Remove(id int32) bool {
	if pos, ok := s.deltaByID[id]; ok {
		s.deltaDead[pos] = true
		delete(s.deltaByID, id)
		s.deltaLive--
		s.chunkDead[pos/s.chunk]++
		return true
	}
	if pos, ok := s.posOfID[id]; ok && !s.tomb[id] {
		s.tomb[id] = true
		s.baseDead++
		s.rebuildPatched(int(s.blockOfPos[pos]))
		return true
	}
	return false
}

// rebuildPatched replaces base block blockID with a compacted private-store
// block holding only its live points, under the same block ID and bounds.
func (s *Store) rebuildPatched(blockID int) {
	orig := s.base.Blocks()[blockID]
	off, n := orig.Span()
	priv := geom.NewPointStore(n - 1)
	for i := off; i < off+n; i++ {
		if id := s.baseStore.ID(i); !s.tomb[id] {
			priv.AppendWithID(s.baseStore.At(i), id)
		}
	}
	s.patched[blockID] = index.NewBlock(blockID, orig.Bounds, priv, 0, priv.Len())
}

// Lookup returns the live point with stable ID id.
func (s *Store) Lookup(id int32) (geom.Point, bool) {
	if pos, ok := s.deltaByID[id]; ok {
		return s.delta.At(pos), true
	}
	if pos, ok := s.posOfID[id]; ok && !s.tomb[id] {
		return s.baseStore.At(int(pos)), true
	}
	return geom.Point{}, false
}

// Len returns the live point count (base minus tombstones plus live delta).
func (s *Store) Len() int { return s.base.Len() - s.baseDead + s.deltaLive }

// DeltaLive returns the number of live points resident in the delta store.
func (s *Store) DeltaLive() int { return s.deltaLive }

// Tombstones returns the number of dead points still resident in the
// overlay: tombstoned base points plus dead delta points.
func (s *Store) Tombstones() int { return s.baseDead + (s.delta.Len() - s.deltaLive) }

// Mutated reports whether any mutation has landed since the base was built.
func (s *Store) Mutated() bool { return s.baseDead > 0 || s.delta.Len() > 0 }

// Fraction returns the overlay residency: every point the overlay carries
// beyond the base build (delta entries, live or dead, plus base tombstones)
// over the total resident points. The relation compares it against the
// compaction threshold.
func (s *Store) Fraction() float64 {
	work := s.delta.Len() + s.baseDead
	total := s.base.Len() + s.delta.Len()
	if total == 0 {
		return 0
	}
	return float64(work) / float64(total)
}

// LiveStore materializes the live point set — base scan order first, then
// delta order, stable IDs preserved — as a fresh block-contiguous store for
// a from-scratch index rebuild (compaction).
func (s *Store) LiveStore() *geom.PointStore {
	out := geom.NewPointStore(s.Len())
	for _, b := range s.base.Blocks() {
		off, n := b.Span()
		for i := off; i < off+n; i++ {
			if id := s.baseStore.ID(i); !s.tomb[id] {
				out.AppendWithID(s.baseStore.At(i), id)
			}
		}
	}
	for i := 0; i < s.delta.Len(); i++ {
		if !s.deltaDead[i] {
			out.AppendWithID(s.delta.At(i), s.delta.ID(i))
		}
	}
	return out
}

// Snapshot builds an immutable index over the current live set. With no
// mutations it returns the base index itself (preserving its Storer fast
// paths); otherwise it returns an *Index whose blocks substitute patched
// base blocks in place and append delta chunk spans over a frozen view of
// the delta store.
func (s *Store) Snapshot() index.Index {
	if !s.Mutated() {
		return s.base
	}
	baseBlocks := s.base.Blocks()
	nBase := len(baseBlocks)
	deltaLen := s.delta.Len()
	nChunks := (deltaLen + s.chunk - 1) / s.chunk
	blocks := make([]*index.Block, nBase+nChunks)
	copy(blocks, baseBlocks)

	var patched map[int]*index.Block
	if len(s.patched) > 0 {
		patched = make(map[int]*index.Block, len(s.patched))
		for id, b := range s.patched {
			patched[id] = b
			blocks[id] = b
		}
	}

	// Chunk blocks span a frozen view so later appends to the shared delta
	// store cannot race with readers of this snapshot.
	frozen := s.delta.View(deltaLen)
	for c := 0; c < nChunks; c++ {
		off := c * s.chunk
		n := min(s.chunk, deltaLen-off)
		id := nBase + c
		// Bounds cover the whole chunk span, dead points included — a
		// block's bounds may exceed its live points' box, and this keeps
		// every chunk's rectangle well-defined even when fully dead.
		bounds := frozen.MBR(off, n)
		if s.chunkDead[c] == 0 {
			blocks[id] = index.NewBlock(id, bounds, frozen, off, n)
		} else {
			priv := geom.NewPointStore(n - s.chunkDead[c])
			for i := off; i < off+n; i++ {
				if !s.deltaDead[i] {
					priv.AppendWithID(frozen.At(i), frozen.ID(i))
				}
			}
			blocks[id] = index.NewBlock(id, bounds, priv, 0, priv.Len())
		}
	}

	bounds := s.base.Bounds()
	if deltaLen > 0 {
		bounds = bounds.Union(s.deltaMBR)
	}
	return &Index{
		base:    s.base,
		blocks:  blocks,
		nBase:   nBase,
		patched: patched,
		n:       s.Len(),
		bounds:  bounds,
	}
}

// Index is one immutable overlay snapshot: base blocks (with patched
// substitutions) plus delta chunk blocks. It implements index.Index and
// index.IncrementalScanner; it deliberately does not implement index.Storer
// — points live in more than one store, so consumers fall back to the
// generic block walk.
type Index struct {
	base    index.Index
	blocks  []*index.Block
	nBase   int
	patched map[int]*index.Block // base block ID -> substitute, nil when none
	n       int
	bounds  geom.Rect
}

// Blocks implements index.Index; Blocks()[b.ID] == b holds by construction.
func (ix *Index) Blocks() []*index.Block { return ix.blocks }

// Len implements index.Index (live point count).
func (ix *Index) Len() int { return ix.n }

// Bounds implements index.Index.
func (ix *Index) Bounds() geom.Rect { return ix.bounds }

// Locate implements index.Index. The block-marking prune (Procedure 4) only
// requires that the returned block's bounds contain p — marking any
// bounds-containing block keeps MINDIST(center, bounds) <= dist(center, p),
// so the candidate test stays conservative. Base coverage resolves through
// the base index (patched substitutes keep the original bounds); points
// only the delta covers fall through to a chunk scan.
func (ix *Index) Locate(p geom.Point) *index.Block {
	if b := ix.base.Locate(p); b != nil {
		if sub, ok := ix.patched[b.ID]; ok {
			return sub
		}
		return b
	}
	for _, b := range ix.blocks[ix.nBase:] {
		if b.Bounds.Contains(p) {
			return b
		}
	}
	return nil
}

// sideBlocks returns the blocks the base index's own iterators do not
// yield: patched substitutes plus delta chunks.
func (ix *Index) sideBlocks() []*index.Block {
	if ix.patched == nil {
		return ix.blocks[ix.nBase:]
	}
	side := make([]*index.Block, 0, len(ix.patched)+len(ix.blocks)-ix.nBase)
	for _, b := range ix.patched {
		side = append(side, b)
	}
	return append(side, ix.blocks[ix.nBase:]...)
}

// NewMinDistIter implements index.IncrementalScanner by merging the base
// index's incremental MINDIST enumeration (skipping substituted blocks)
// with an eager scan over the side blocks.
func (ix *Index) NewMinDistIter(p geom.Point) index.BlockIter {
	return newMergeIter(ix, p, false)
}

// NewMaxDistIter implements index.IncrementalScanner for MAXDIST order.
func (ix *Index) NewMaxDistIter(p geom.Point) index.BlockIter {
	return newMergeIter(ix, p, true)
}

// mergeIter merges two MINDIST- (or MAXDIST-) ordered block streams — the
// base index's iterator and an eager scan over side blocks — under the
// global (key, block ID) order, dropping base blocks that were substituted.
// It is reusable, so pooled per-searcher iteration stays allocation-free.
type mergeIter struct {
	ix   *Index
	maxd bool

	base index.BlockIter
	side *index.Scan

	bb        *index.Block // pending base head
	bk        float64
	bok       bool
	sb        *index.Block // pending side head
	sk        float64
	sok       bool
	baseReuse index.ReusableIter
}

func newMergeIter(ix *Index, p geom.Point, maxd bool) *mergeIter {
	m := &mergeIter{ix: ix, maxd: maxd}
	side := ix.sideBlocks()
	if maxd {
		m.base = index.MaxDistOrder(ix.base, p)
		m.side = index.NewMaxDistScan(side, p)
	} else {
		m.base = index.MinDistOrder(ix.base, p)
		m.side = index.NewMinDistScan(side, p)
	}
	m.baseReuse, _ = m.base.(index.ReusableIter)
	m.fill()
	return m
}

// Reset implements index.ReusableIter.
func (m *mergeIter) Reset(p geom.Point) {
	if m.baseReuse != nil {
		m.baseReuse.Reset(p)
	} else if m.maxd {
		m.base = index.MaxDistOrder(m.ix.base, p)
	} else {
		m.base = index.MinDistOrder(m.ix.base, p)
	}
	m.side.Reset(p)
	m.bok, m.sok = false, false
	m.fill()
}

// fill primes both stream heads, skipping substituted base blocks.
func (m *mergeIter) fill() {
	for !m.bok {
		b, k, ok := m.base.Next()
		if !ok {
			break
		}
		if m.ix.patched != nil {
			if _, sub := m.ix.patched[b.ID]; sub {
				continue
			}
		}
		m.bb, m.bk, m.bok = b, k, true
	}
	if !m.sok {
		if b, k, ok := m.side.Next(); ok {
			m.sb, m.sk, m.sok = b, k, true
		}
	}
}

// Next implements index.BlockIter.
func (m *mergeIter) Next() (*index.Block, float64, bool) {
	if !m.bok && !m.sok {
		return nil, 0, false
	}
	var b *index.Block
	var k float64
	takeBase := m.bok && (!m.sok || m.bk < m.sk || (m.bk == m.sk && m.bb.ID < m.sb.ID))
	if takeBase {
		b, k = m.bb, m.bk
		m.bok = false
	} else {
		b, k = m.sb, m.sk
		m.sok = false
	}
	m.fill()
	return b, k, true
}

var (
	_ index.Index              = (*Index)(nil)
	_ index.IncrementalScanner = (*Index)(nil)
	_ index.ReusableIter       = (*mergeIter)(nil)
)
