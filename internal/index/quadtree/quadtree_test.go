package quadtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
)

func uniformPoints(n int, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Errorf("empty points without bounds must error")
	}
	if _, err := New([]geom.Point{{X: 9, Y: 9}}, Options{Bounds: geom.NewRect(0, 0, 1, 1)}); err == nil {
		t.Errorf("point outside explicit bounds must error")
	}
	tr, err := New(nil, Options{Bounds: geom.NewRect(0, 0, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || len(tr.Blocks()) != 1 {
		t.Errorf("empty tree with bounds must be a single empty leaf")
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	pts := uniformPoints(2000, geom.NewRect(0, 0, 100, 100), 6)
	tr, err := New(pts, Options{LeafCapacity: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Blocks() {
		if b.Count() > 25 {
			t.Fatalf("leaf holds %d points, capacity 25", b.Count())
		}
	}
	if got := index.TotalCount(tr); got != 2000 {
		t.Fatalf("blocks hold %d points, want 2000", got)
	}
	if tr.Depth() < 2 {
		t.Fatalf("2000 points at capacity 25 must split at least once")
	}
}

func TestMaxDepthStopsDuplicates(t *testing.T) {
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{X: 1, Y: 1}
	}
	tr, err := New(pts, Options{LeafCapacity: 4, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 6 {
		t.Fatalf("depth %d exceeds MaxDepth 6", tr.Depth())
	}
	if got := index.TotalCount(tr); got != 300 {
		t.Fatalf("blocks hold %d points, want 300", got)
	}
}

func TestQuadrantAssignmentConsistency(t *testing.T) {
	// Points exactly on split lines must be stored in the same leaf that
	// Locate resolves to.
	pts := []geom.Point{
		{X: 50, Y: 50}, {X: 50, Y: 10}, {X: 10, Y: 50},
		{X: 0, Y: 0}, {X: 100, Y: 100}, {X: 50, Y: 100},
	}
	// Force splits by tiny capacity with fixed bounds.
	tr, err := New(pts, Options{LeafCapacity: 1, Bounds: geom.NewRect(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		b := tr.Locate(p)
		if b == nil {
			t.Fatalf("Locate(%v) = nil", p)
		}
		found := false
		for q := range b.Points() {
			if q == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("Locate(%v) found block %v that does not store the point", p, b)
		}
	}
}

func TestLeavesTileBounds(t *testing.T) {
	pts := uniformPoints(800, geom.NewRect(0, 0, 64, 64), 7)
	tr, err := New(pts, Options{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TilesSpace() {
		t.Fatalf("quadtree must declare TilesSpace")
	}
	total := 0.0
	for _, b := range tr.Blocks() {
		total += b.Bounds.Area()
	}
	if want := tr.Bounds().Area(); total < want*0.999 || total > want*1.001 {
		t.Fatalf("leaf areas sum to %v, bounds area %v; leaves must tile", total, want)
	}
}
