// Package quadtree implements a PR (point-region) quadtree index: space is
// recursively partitioned into four quadrants until each leaf holds at most
// a configured number of points. The paper's Section 2 names quadtree
// variants as one of the index families its algorithms run on unmodified;
// this package exists to substantiate that index-agnosticism claim in tests
// and benchmarks.
//
// Leaves are created in depth-first order and appended, points and stable
// IDs together, to one relation-wide geom.PointStore, so every leaf block is
// a contiguous span and the store as a whole is in block-ID order.
package quadtree

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/index"
)

// Tree is a PR quadtree over a static point set. Only its leaves carry
// points; leaves are exposed as index blocks.
type Tree struct {
	root   *node
	bounds geom.Rect
	blocks []*index.Block
	store  *geom.PointStore
	n      int
}

var (
	_ index.Index  = (*Tree)(nil)
	_ index.Storer = (*Tree)(nil)
)

type node struct {
	bounds   geom.Rect
	children [4]*node     // nil for a leaf
	block    *index.Block // non-nil for a leaf
}

func (nd *node) isLeaf() bool { return nd.children[0] == nil }

// Options configure quadtree construction.
type Options struct {
	// LeafCapacity is the maximum number of points per leaf before a split;
	// defaults to 64.
	LeafCapacity int

	// MaxDepth bounds the number of tree levels (Depth() never exceeds
	// it) so duplicate-heavy inputs terminate; defaults to 24.
	MaxDepth int

	// Bounds forces the indexed region; when zero the (inflated) bounding
	// box of the points is used.
	Bounds geom.Rect
}

// buildPoint carries one point with its stable ID through the recursive
// partition; the result lands in SoA form in the tree's store.
type buildPoint struct {
	p  geom.Point
	id int32
}

// New builds a quadtree over pts, assigning stable point IDs 0..len-1 in
// input order.
func New(pts []geom.Point, opt Options) (*Tree, error) {
	return NewFromStore(geom.StoreFromPoints(pts), opt)
}

// NewFromStore builds a quadtree over the points of st, preserving the
// store's IDs. The input store is not modified; the tree owns a
// block-contiguous permutation of it.
func NewFromStore(st *geom.PointStore, opt Options) (*Tree, error) {
	if opt.LeafCapacity <= 0 {
		opt.LeafCapacity = 64
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = 24
	}
	bounds := opt.Bounds
	if bounds == (geom.Rect{}) {
		if st.Len() == 0 {
			return nil, fmt.Errorf("quadtree: empty point set and no explicit bounds")
		}
		bounds = inflate(st.MBR(0, st.Len()))
	}
	owned := make([]buildPoint, st.Len())
	for i := range owned {
		p := st.At(i)
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("quadtree: point %v outside explicit bounds %v", p, bounds)
		}
		owned[i] = buildPoint{p: p, id: st.ID(i)}
	}
	t := &Tree{bounds: bounds, n: st.Len(), store: geom.NewPointStore(st.Len())}
	t.root = t.build(bounds, owned, opt, 0)
	return t, nil
}

func (t *Tree) build(bounds geom.Rect, pts []buildPoint, opt Options, depth int) *node {
	nd := &node{bounds: bounds}
	if len(pts) <= opt.LeafCapacity || depth >= opt.MaxDepth-1 {
		nd.block = t.appendLeaf(bounds, pts)
		return nd
	}
	cx := (bounds.MinX + bounds.MaxX) / 2
	cy := (bounds.MinY + bounds.MaxY) / 2
	quads := [4]geom.Rect{
		{MinX: bounds.MinX, MinY: bounds.MinY, MaxX: cx, MaxY: cy}, // SW
		{MinX: cx, MinY: bounds.MinY, MaxX: bounds.MaxX, MaxY: cy}, // SE
		{MinX: bounds.MinX, MinY: cy, MaxX: cx, MaxY: bounds.MaxY}, // NW
		{MinX: cx, MinY: cy, MaxX: bounds.MaxX, MaxY: bounds.MaxY}, // NE
	}
	var parts [4][]buildPoint
	for _, bp := range pts {
		q := quadrant(bp.p, cx, cy)
		parts[q] = append(parts[q], bp)
	}
	for i := range quads {
		nd.children[i] = t.build(quads[i], parts[i], opt, depth+1)
	}
	return nd
}

// appendLeaf writes a leaf's points to the store as the next contiguous
// span and creates its block.
func (t *Tree) appendLeaf(bounds geom.Rect, pts []buildPoint) *index.Block {
	off := t.store.Len()
	for _, bp := range pts {
		t.store.AppendWithID(bp.p, bp.id)
	}
	b := index.NewBlock(len(t.blocks), bounds, t.store, off, len(pts))
	t.blocks = append(t.blocks, b)
	return b
}

// quadrant assigns a point to one of the four child quadrants. Points on the
// split lines go to the higher-coordinate quadrant, matching Locate.
func quadrant(p geom.Point, cx, cy float64) int {
	q := 0
	if p.X >= cx {
		q |= 1
	}
	if p.Y >= cy {
		q |= 2
	}
	return q
}

// Blocks implements index.Index.
func (t *Tree) Blocks() []*index.Block { return t.blocks }

// Len implements index.Index.
func (t *Tree) Len() int { return t.n }

// Bounds implements index.Index.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Store implements index.Storer: the relation-wide store holding the leaves
// as contiguous spans in depth-first (block-ID) order.
func (t *Tree) Store() *geom.PointStore { return t.store }

// Depth returns the height of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(nd *node) int {
	if nd.isLeaf() {
		return 1
	}
	d := 0
	for _, c := range nd.children {
		if cd := depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Locate implements index.Index by descending the tree.
func (t *Tree) Locate(p geom.Point) *index.Block {
	if !t.bounds.Contains(p) {
		return nil
	}
	nd := t.root
	for !nd.isLeaf() {
		cx := (nd.bounds.MinX + nd.bounds.MaxX) / 2
		cy := (nd.bounds.MinY + nd.bounds.MaxY) / 2
		nd = nd.children[quadrant(p, cx, cy)]
	}
	return nd.block
}

func inflate(r geom.Rect) geom.Rect {
	const rel = 1e-9
	w, h := r.Width(), r.Height()
	padX := w*rel + 1e-9
	padY := h*rel + 1e-9
	if w == 0 {
		padX = 0.5
	}
	if h == 0 {
		padY = 0.5
	}
	return geom.Rect{MinX: r.MinX - padX, MinY: r.MinY - padY, MaxX: r.MaxX + padX, MaxY: r.MaxY + padY}
}

// TilesSpace reports that quadtree leaves tile the indexed region exactly.
// This enables the contour early-stop in Block-Marking preprocessing.
func (t *Tree) TilesSpace() bool { return true }

// NodeBounds implements index.TreeNode.
func (nd *node) NodeBounds() geom.Rect { return nd.bounds }

// NodeBlock implements index.TreeNode.
func (nd *node) NodeBlock() *index.Block { return nd.block }

// NodeChildren implements index.TreeNode.
func (nd *node) NodeChildren(dst []index.TreeNode) []index.TreeNode {
	for _, c := range nd.children {
		dst = append(dst, c)
	}
	return dst
}

// NewMinDistIter implements index.IncrementalScanner through best-first
// tree traversal.
func (t *Tree) NewMinDistIter(p geom.Point) index.BlockIter {
	return index.NewTreeMinDistIter(t.root, p)
}

// NewMaxDistIter implements index.IncrementalScanner.
func (t *Tree) NewMaxDistIter(p geom.Point) index.BlockIter {
	return index.NewTreeMaxDistIter(t.root, p)
}

var _ index.IncrementalScanner = (*Tree)(nil)
