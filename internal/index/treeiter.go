package index

import (
	"repro/internal/geom"
)

// TreeNode is the traversal interface hierarchical indexes (quadtree, k-d
// tree, R-tree) implement to obtain incremental MINDIST/MAXDIST orderings
// through best-first search: only the subtrees near the query point are
// expanded, so a query that stops early touches O(popped · log) nodes
// instead of every block.
//
// Implementations should be pointer types (or fit in one machine word):
// nodes are stored in interface values on the traversal heap, and a node
// wider than a word would be boxed — one heap allocation per push — on the
// hottest path of every query.
type TreeNode interface {
	// NodeBounds returns the region the subtree is responsible for.
	NodeBounds() geom.Rect

	// NodeBlock returns the node's block when the node is a leaf, nil
	// otherwise.
	NodeBlock() *Block

	// NodeChildren appends the node's children to dst and returns it;
	// called only on internal nodes.
	NodeChildren(dst []TreeNode) []TreeNode
}

// NewTreeMinDistIter returns blocks in increasing MINDIST order from p by
// best-first traversal from root. The order (including ties, broken by
// block ID) is identical to the eager scan's.
func NewTreeMinDistIter(root TreeNode, p geom.Point) BlockIter {
	return newTreeIter(root, p, geom.Rect.MinDistSq)
}

// NewTreeMaxDistIter returns blocks in increasing MAXDIST order from p.
// Internal nodes are prioritized by their MINDIST — a valid lower bound on
// every descendant's MAXDIST — so expansion is safe; leaves carry their
// exact MAXDIST keys.
func NewTreeMaxDistIter(root TreeNode, p geom.Point) BlockIter {
	return newTreeIter(root, p, geom.Rect.MaxDistSq)
}

type treeIter struct {
	root    TreeNode
	p       geom.Point
	leafKey func(geom.Rect, geom.Point) float64
	h       MinHeap[treeEntry]
	scratch []TreeNode
}

func newTreeIter(root TreeNode, p geom.Point, leafKey func(geom.Rect, geom.Point) float64) *treeIter {
	it := &treeIter{root: root, leafKey: leafKey}
	it.Reset(p)
	return it
}

// Reset re-aims the iterator at a new query point, reusing the heap and
// child-scratch backing arrays. Implements ReusableIter.
func (it *treeIter) Reset(p geom.Point) {
	it.p = p
	it.h = it.h[:0]
	it.push(it.root)
}

func (it *treeIter) push(n TreeNode) {
	if b := n.NodeBlock(); b != nil {
		it.h.Push(treeEntry{key: it.leafKey(b.Bounds, it.p), block: b})
		return
	}
	// Internal node: MINDIST lower-bounds both the MINDIST and the MAXDIST
	// of every descendant block.
	it.h.Push(treeEntry{key: n.NodeBounds().MinDistSq(it.p), node: n})
}

// Next implements BlockIter.
func (it *treeIter) Next() (*Block, float64, bool) {
	for len(it.h) > 0 {
		e := it.h.Pop()
		if e.block != nil {
			return e.block, e.key, true
		}
		it.scratch = e.node.NodeChildren(it.scratch[:0])
		for _, c := range it.scratch {
			it.push(c)
		}
	}
	return nil, 0, false
}

// treeEntry is a heap element: an undiscovered subtree or a ready block.
type treeEntry struct {
	key   float64
	node  TreeNode // internal node, or
	block *Block   // leaf block
}

// LessThan orders by key; on ties, internal nodes come before blocks (they
// may hide equal-key blocks with smaller IDs), and blocks order by ID so
// the yield order matches the eager scan exactly. Implements HeapOrdered.
func (e treeEntry) LessThan(o treeEntry) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	ne, no := e.block == nil, o.block == nil
	if ne != no {
		return ne // node before block
	}
	if !ne {
		return e.block.ID < o.block.ID
	}
	return false
}
