package index

import (
	"container/heap"

	"repro/internal/geom"
)

// TreeNode is the traversal interface hierarchical indexes (quadtree, k-d
// tree, R-tree) implement to obtain incremental MINDIST/MAXDIST orderings
// through best-first search: only the subtrees near the query point are
// expanded, so a query that stops early touches O(popped · log) nodes
// instead of every block.
type TreeNode interface {
	// NodeBounds returns the region the subtree is responsible for.
	NodeBounds() geom.Rect

	// NodeBlock returns the node's block when the node is a leaf, nil
	// otherwise.
	NodeBlock() *Block

	// NodeChildren appends the node's children to dst and returns it;
	// called only on internal nodes.
	NodeChildren(dst []TreeNode) []TreeNode
}

// NewTreeMinDistIter returns blocks in increasing MINDIST order from p by
// best-first traversal from root. The order (including ties, broken by
// block ID) is identical to the eager scan's.
func NewTreeMinDistIter(root TreeNode, p geom.Point) BlockIter {
	return newTreeIter(root, p, geom.Rect.MinDistSq)
}

// NewTreeMaxDistIter returns blocks in increasing MAXDIST order from p.
// Internal nodes are prioritized by their MINDIST — a valid lower bound on
// every descendant's MAXDIST — so expansion is safe; leaves carry their
// exact MAXDIST keys.
func NewTreeMaxDistIter(root TreeNode, p geom.Point) BlockIter {
	return newTreeIter(root, p, geom.Rect.MaxDistSq)
}

type treeIter struct {
	p       geom.Point
	leafKey func(geom.Rect, geom.Point) float64
	h       treeHeap
	scratch []TreeNode
}

func newTreeIter(root TreeNode, p geom.Point, leafKey func(geom.Rect, geom.Point) float64) *treeIter {
	it := &treeIter{p: p, leafKey: leafKey}
	it.push(root)
	return it
}

func (it *treeIter) push(n TreeNode) {
	if b := n.NodeBlock(); b != nil {
		heap.Push(&it.h, treeEntry{key: it.leafKey(b.Bounds, it.p), block: b})
		return
	}
	// Internal node: MINDIST lower-bounds both the MINDIST and the MAXDIST
	// of every descendant block.
	heap.Push(&it.h, treeEntry{key: n.NodeBounds().MinDistSq(it.p), node: n})
}

// Next implements BlockIter.
func (it *treeIter) Next() (*Block, float64, bool) {
	for it.h.Len() > 0 {
		e := heap.Pop(&it.h).(treeEntry)
		if e.block != nil {
			return e.block, e.key, true
		}
		it.scratch = e.node.NodeChildren(it.scratch[:0])
		for _, c := range it.scratch {
			it.push(c)
		}
	}
	return nil, 0, false
}

// treeEntry is a heap element: an undiscovered subtree or a ready block.
type treeEntry struct {
	key   float64
	node  TreeNode // internal node, or
	block *Block   // leaf block
}

type treeHeap []treeEntry

func (h treeHeap) Len() int { return len(h) }

// Less orders by key; on ties, internal nodes come before blocks (they may
// hide equal-key blocks with smaller IDs), and blocks order by ID so the
// yield order matches the eager scan exactly.
func (h treeHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	ni, nj := h[i].block == nil, h[j].block == nil
	if ni != nj {
		return ni // node before block
	}
	if !ni {
		return h[i].block.ID < h[j].block.ID
	}
	return false
}

func (h treeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *treeHeap) Push(x any)   { *h = append(*h, x.(treeEntry)) }
func (h *treeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
