package index_test

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/testutil"
)

// TestIndexConformance runs the structural invariants every index
// implementation must satisfy.
func TestIndexConformance(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 1000)
	for _, kind := range testutil.AllIndexKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for _, n := range []int{1, 17, 500, 3000} {
				pts := testutil.UniformPoints(n, bounds, int64(n))
				ix := testutil.BuildIndex(t, kind, pts)

				if ix.Len() != n {
					t.Fatalf("Len = %d, want %d", ix.Len(), n)
				}
				if got := index.TotalCount(ix); got != n {
					t.Fatalf("blocks hold %d points in total, want %d", got, n)
				}

				blocks := ix.Blocks()
				for i, b := range blocks {
					if b.ID != i {
						t.Fatalf("block at position %d has ID %d", i, b.ID)
					}
					for p := range b.Points() {
						if !b.Bounds.Contains(p) {
							t.Fatalf("block %v does not contain its point %v", b, p)
						}
					}
					if !ix.Bounds().ContainsRect(b.Bounds) {
						t.Fatalf("block bounds %v exceed index bounds %v", b.Bounds, ix.Bounds())
					}
				}

				// Every indexed point must be locatable in the block that
				// stores it.
				for _, p := range pts {
					b := ix.Locate(p)
					if b == nil {
						t.Fatalf("Locate(%v) = nil for an indexed point", p)
					}
					found := false
					for q := range b.Points() {
						if q == p {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("Locate(%v) returned block %v not storing the point", p, b)
					}
				}

				// Points clearly outside the indexed region are not located.
				outside := geom.Point{X: bounds.MaxX + 1e6, Y: bounds.MaxY + 1e6}
				if b := ix.Locate(outside); b != nil {
					t.Fatalf("Locate(far outside) = %v, want nil", b)
				}
			}
		})
	}
}

// TestEachPointInExactlyOneBlock checks that blocks never share points.
func TestEachPointInExactlyOneBlock(t *testing.T) {
	bounds := geom.NewRect(-50, -50, 50, 50)
	pts := testutil.UniformPoints(2000, bounds, 7)
	for _, kind := range testutil.AllIndexKinds {
		ix := testutil.BuildIndex(t, kind, pts)
		seen := make(map[geom.Point]int)
		for _, b := range ix.Blocks() {
			for p := range b.Points() {
				seen[p]++
			}
		}
		for p, n := range seen {
			if n != 1 {
				t.Fatalf("%s: point %v stored %d times", kind, p, n)
			}
		}
		if len(seen) != len(pts) {
			t.Fatalf("%s: %d distinct stored points, want %d", kind, len(seen), len(pts))
		}
	}
}

func TestScanOrdering(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := testutil.UniformPoints(1500, bounds, 99)
	rng := rand.New(rand.NewSource(3))
	for _, kind := range testutil.AllIndexKinds {
		ix := testutil.BuildIndex(t, kind, pts)
		for trial := 0; trial < 5; trial++ {
			q := geom.Point{X: rng.Float64() * 120, Y: rng.Float64() * 120}

			minScan := index.NewMinDistScan(ix.Blocks(), q)
			prev := -1.0
			count := 0
			for {
				b, key, ok := minScan.Next()
				if !ok {
					break
				}
				if key < prev {
					t.Fatalf("%s: MINDIST scan not monotone: %v after %v", kind, key, prev)
				}
				if want := b.Bounds.MinDistSq(q); key != want {
					t.Fatalf("%s: scan key %v != MinDistSq %v", kind, key, want)
				}
				prev = key
				count++
			}
			if count != len(ix.Blocks()) {
				t.Fatalf("%s: MINDIST scan visited %d blocks, want %d", kind, count, len(ix.Blocks()))
			}

			maxScan := index.NewMaxDistScan(ix.Blocks(), q)
			prev = -1.0
			for {
				b, key, ok := maxScan.Next()
				if !ok {
					break
				}
				if key < prev {
					t.Fatalf("%s: MAXDIST scan not monotone: %v after %v", kind, key, prev)
				}
				if want := b.Bounds.MaxDistSq(q); key != want {
					t.Fatalf("%s: scan key %v != MaxDistSq %v", kind, key, want)
				}
				prev = key
			}
		}
	}
}

func TestScanRemaining(t *testing.T) {
	pts := testutil.UniformPoints(300, geom.NewRect(0, 0, 10, 10), 1)
	ix := testutil.BuildIndex(t, testutil.Grid, pts)
	s := index.NewMinDistScan(ix.Blocks(), geom.Point{X: 5, Y: 5})
	total := len(ix.Blocks())
	if s.Remaining() != total {
		t.Fatalf("Remaining = %d, want %d", s.Remaining(), total)
	}
	s.Next()
	if s.Remaining() != total-1 {
		t.Fatalf("Remaining after one pop = %d, want %d", s.Remaining(), total-1)
	}
}

func TestScanEmpty(t *testing.T) {
	s := index.NewMinDistScan(nil, geom.Point{})
	if _, _, ok := s.Next(); ok {
		t.Fatalf("Next on empty scan must report ok=false")
	}
}

func TestTilesSpaceDeclarations(t *testing.T) {
	pts := testutil.UniformPoints(200, geom.NewRect(0, 0, 10, 10), 5)
	wants := map[testutil.IndexKind]bool{
		testutil.Grid:     true,
		testutil.Quadtree: true,
		testutil.RTree:    false,
		testutil.KDTree:   true,
	}
	for kind, want := range wants {
		ix := testutil.BuildIndex(t, kind, pts)
		if got := index.TilesSpace(ix); got != want {
			t.Errorf("TilesSpace(%s) = %v, want %v", kind, got, want)
		}
	}
}

func TestBlockAccessors(t *testing.T) {
	st := geom.StoreFromPoints([]geom.Point{{X: 9, Y: 9}, {X: 1, Y: 1}, {X: 2, Y: 2}})
	b := index.NewBlock(3, geom.NewRect(0, 0, 3, 4), st, 1, 2)
	if b.Count() != 2 {
		t.Errorf("Count = %d, want 2", b.Count())
	}
	if got, want := b.Center(), (geom.Point{X: 1.5, Y: 2}); got != want {
		t.Errorf("Center = %v, want %v", got, want)
	}
	if b.Diagonal() != 5 {
		t.Errorf("Diagonal = %v, want 5", b.Diagonal())
	}
	if b.String() == "" {
		t.Errorf("String must not be empty")
	}
	if got, want := b.PointAt(0), (geom.Point{X: 1, Y: 1}); got != want {
		t.Errorf("PointAt(0) = %v, want %v", got, want)
	}
	if off, n := b.Span(); off != 1 || n != 2 {
		t.Errorf("Span = (%d, %d), want (1, 2)", off, n)
	}
	xs, ys := b.XYs()
	if len(xs) != 2 || len(ys) != 2 || xs[1] != 2 || ys[1] != 2 {
		t.Errorf("XYs = %v, %v, want the [1,2] span columns", xs, ys)
	}
	if ids := b.PointIDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("PointIDs = %v, want [1 2]", ids)
	}
	got := b.AppendPoints(nil)
	want := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("AppendPoints = %v, want %v", got, want)
	}
}

// TestIncrementalItersMatchEagerScans checks that every index kind's
// incremental MINDIST/MAXDIST iterators enumerate exactly the same blocks
// in exactly the same order as the eager heap over all blocks.
func TestIncrementalItersMatchEagerScans(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1000, 800)
	pts := testutil.UniformPoints(2500, bounds, 23)
	queries := []geom.Point{
		{X: 500, Y: 400}, {X: 0, Y: 0}, {X: -300, Y: 400}, {X: 2500, Y: 2500}, {X: 999, Y: 1},
	}
	for _, kind := range testutil.AllIndexKinds {
		ix := testutil.BuildIndex(t, kind, pts)
		if _, ok := ix.(index.IncrementalScanner); !ok {
			t.Fatalf("%s: expected an IncrementalScanner implementation", kind)
		}
		for _, q := range queries {
			for name, pair := range map[string][2]index.BlockIter{
				"mindist": {index.MinDistOrder(ix, q), index.NewMinDistScan(ix.Blocks(), q)},
				"maxdist": {index.MaxDistOrder(ix, q), index.NewMaxDistScan(ix.Blocks(), q)},
			} {
				inc, eager := pair[0], pair[1]
				for step := 0; ; step++ {
					bi, ki, oki := inc.Next()
					be, ke, oke := eager.Next()
					if oki != oke {
						t.Fatalf("%s/%s q=%v step %d: incremental ok=%v, eager ok=%v", kind, name, q, step, oki, oke)
					}
					if !oki {
						break
					}
					if ki != ke || bi.ID != be.ID {
						t.Fatalf("%s/%s q=%v step %d: incremental (%d, %v) != eager (%d, %v)",
							kind, name, q, step, bi.ID, ki, be.ID, ke)
					}
				}
			}
		}
	}
}

// TestSpanBlockMutationPanics pins the Push/RemoveAt misuse guard: a span
// block of a static index — even one whose span covers its entire shared
// store, where span geometry alone cannot tell it from a mutable block —
// must panic instead of corrupting the relation-wide store.
func TestSpanBlockMutationPanics(t *testing.T) {
	st := geom.StoreFromPoints([]geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}})
	full := index.NewBlock(0, geom.NewRect(0, 0, 4, 4), st, 0, st.Len())
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a span block must panic", name)
			}
		}()
		fn()
	}
	mustPanic("Push", func() { full.Push(geom.Point{X: 3, Y: 3}, 2) })
	mustPanic("RemoveAt", func() { full.RemoveAt(0) })

	mb := index.NewMutableBlock(0, geom.NewRect(0, 0, 4, 4))
	mb.Push(geom.Point{X: 1, Y: 2}, 0)
	if mb.Count() != 1 || mb.PointAt(0) != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("mutable block Push failed: %v", mb)
	}
	mb.RemoveAt(0)
	if mb.Count() != 0 {
		t.Fatalf("mutable block RemoveAt failed: %v", mb)
	}
}
