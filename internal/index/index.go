// Package index defines the spatial-index contract shared by every query
// algorithm in this repository, together with the MINDIST and MAXDIST block
// orderings the algorithms traverse.
//
// The algorithms of the paper are index-agnostic (its Section 2): they only
// require that the data be partitioned into blocks, that each block know how
// many points it holds, and that blocks can be enumerated in increasing
// MINDIST or MAXDIST order from an arbitrary point. Package index captures
// exactly that contract; the grid, quadtree and rtree subpackages provide
// concrete partitions.
package index

import (
	"fmt"

	"repro/internal/geom"
)

// Block is a leaf region of a spatial index: a rectangle of space together
// with the data points that fall inside it. Blocks of one index never share
// points; every data point belongs to exactly one block.
//
// Blocks are created by index constructors and must be treated as read-only
// by algorithms.
type Block struct {
	// ID is the position of the block in its index's Blocks() slice. It is
	// used by algorithms to attach per-block state (marks, counts) in flat
	// slices instead of maps.
	ID int

	// Bounds is the region of space the block is responsible for. All points
	// of the block lie inside Bounds, but Bounds may be larger than the
	// bounding box of the points (a grid cell, for example).
	Bounds geom.Rect

	// Points holds the data points of the block.
	Points []geom.Point
}

// Count returns the number of points stored in the block. The paper assumes
// the index maintains this count per block; here it is simply the length of
// the point slice.
func (b *Block) Count() int { return len(b.Points) }

// Center returns the center of the block's region. The Block-Marking
// algorithm computes neighborhoods of block centers (Theorem 1 of the paper
// shows the center minimizes the search threshold).
func (b *Block) Center() geom.Point { return b.Bounds.Center() }

// Diagonal returns the diagonal length of the block's region.
func (b *Block) Diagonal() float64 { return b.Bounds.Diagonal() }

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("block#%d %v (%d pts)", b.ID, b.Bounds, len(b.Points))
}

// Index is a static partition of a point set into blocks. Implementations
// are built once over a snapshot of points and are immutable afterwards,
// matching the paper's snapshot-query setting.
type Index interface {
	// Blocks returns all leaf blocks. The slice is owned by the index and
	// must not be modified. Block b satisfies Blocks()[b.ID] == b.
	Blocks() []*Block

	// Locate returns the block whose region contains p, or nil if p lies
	// outside the indexed space. For points of the indexed set, Locate
	// always returns the block that stores the point.
	Locate(p geom.Point) *Block

	// Len returns the total number of indexed points.
	Len() int

	// Bounds returns the region covered by the index (the union of all
	// block regions).
	Bounds() geom.Rect
}

// TotalCount returns the sum of point counts over blocks; used by
// conformance tests to check that indexes neither drop nor duplicate points.
func TotalCount(ix Index) int {
	n := 0
	for _, b := range ix.Blocks() {
		n += b.Count()
	}
	return n
}
