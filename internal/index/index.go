// Package index defines the spatial-index contract shared by every query
// algorithm in this repository, together with the MINDIST and MAXDIST block
// orderings the algorithms traverse.
//
// The algorithms of the paper are index-agnostic (its Section 2): they only
// require that the data be partitioned into blocks, that each block know how
// many points it holds, and that blocks can be enumerated in increasing
// MINDIST or MAXDIST order from an arbitrary point. Package index captures
// exactly that contract; the grid, quadtree and rtree subpackages provide
// concrete partitions.
//
// Storage is columnar: an index permutes its input into block-contiguous
// order inside one relation-wide geom.PointStore at build time, and each
// Block is a (offset, length) span into that store. Hot distance loops scan
// the store's flat X/Y arrays through Block.XYs; Block.Points / PointAt /
// AppendPoints remain for cold callers that want geom.Point values.
package index

import (
	"fmt"
	"iter"

	"repro/internal/geom"
	"repro/internal/kernel"
)

// Block is a leaf region of a spatial index: a rectangle of space together
// with a span of the index's point store holding the data points that fall
// inside it. Blocks of one index never share points; every data point
// belongs to exactly one block.
//
// Blocks are created by index constructors and must be treated as read-only
// by algorithms. The only exception is the dynamic grid, whose blocks own
// private mutable stores (see NewMutableBlock).
type Block struct {
	// ID is the position of the block in its index's Blocks() slice. It is
	// used by algorithms to attach per-block state (marks, counts) in flat
	// slices instead of maps.
	ID int

	// Bounds is the region of space the block is responsible for. All points
	// of the block lie inside Bounds, but Bounds may be larger than the
	// bounding box of the points (a grid cell, for example).
	Bounds geom.Rect

	// store holds the block's points as the span [off, off+n). For blocks of
	// a static index the store is shared by the whole relation; for dynamic
	// blocks it is private with off == 0.
	store *geom.PointStore
	off   int
	n     int

	// mutable marks a block created with NewMutableBlock (private store);
	// only such blocks accept Push/RemoveAt.
	mutable bool
}

// NewBlock returns a block spanning [off, off+n) of store.
func NewBlock(id int, bounds geom.Rect, store *geom.PointStore, off, n int) *Block {
	return &Block{ID: id, Bounds: bounds, store: store, off: off, n: n}
}

// NewMutableBlock returns a block owning a private, initially empty store,
// for indexes over mutable point sets (the dynamic grid). Only such blocks
// may be mutated through Push and RemoveAt.
func NewMutableBlock(id int, bounds geom.Rect) *Block {
	return &Block{ID: id, Bounds: bounds, store: &geom.PointStore{}, mutable: true}
}

// Count returns the number of points stored in the block. The paper assumes
// the index maintains this count per block; here it is the span length.
func (b *Block) Count() int { return b.n }

// Span returns the block's (offset, length) span into its store.
func (b *Block) Span() (off, n int) { return b.off, b.n }

// Store returns the point store the block's span refers to.
func (b *Block) Store() *geom.PointStore { return b.store }

// XYs returns the block's coordinate columns — the flat, parallel X and Y
// slices every hot distance loop scans. The slices alias the store and must
// not be modified.
func (b *Block) XYs() (xs, ys []float64) {
	return b.store.Xs[b.off : b.off+b.n], b.store.Ys[b.off : b.off+b.n]
}

// PointIDs returns the stable IDs of the block's points, parallel to XYs.
// The slice aliases the store and must not be modified.
func (b *Block) PointIDs() []int32 { return b.store.IDs[b.off : b.off+b.n] }

// PointAt returns the i-th point of the block as a geom.Point value — the
// compatibility accessor for cold callers and tests.
func (b *Block) PointAt(i int) geom.Point {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("index: PointAt(%d) out of range on a block of %d points", i, b.n))
	}
	return b.store.At(b.off + i)
}

// AppendPoints appends the block's points to dst in storage order and
// returns it — the copy-out accessor for cold callers that need a
// []geom.Point.
func (b *Block) AppendPoints(dst []geom.Point) []geom.Point {
	return b.store.AppendRange(dst, b.off, b.n)
}

// Points iterates the block's points in storage order as geom.Point values
// (range-over-func). Hot loops scan XYs directly instead.
func (b *Block) Points() iter.Seq[geom.Point] {
	return func(yield func(geom.Point) bool) {
		xs, ys := b.XYs()
		for i := range xs {
			if !yield(geom.Point{X: xs[i], Y: ys[i]}) {
				return
			}
		}
	}
}

// The three span-kernel accessors below call package kernel directly with
// the block's raw columns rather than hopping through the PointStore
// methods: the flattened call sites stay under the compiler's inlining
// budget, so per-block dispatch is a single call frame — measurable on
// 16-point grid cells.

// CountWithinSq counts the block's points within squared distance dSq of p
// — the radius-filter primitive, served by the batched kernel layer.
func (b *Block) CountWithinSq(p geom.Point, dSq float64) int {
	return kernel.CountWithinSpan(b.store.Xs, b.store.Ys, b.off, b.n, p.X, p.Y, dSq)
}

// DistSqInto writes the squared distance from p to every point of the block
// into out[:Count()] through the batched kernel layer — the span → scratch
// feed of the locality searcher's selection heap. out must hold at least
// Count() elements.
func (b *Block) DistSqInto(p geom.Point, out []float64) {
	kernel.DistSqSpan(b.store.Xs, b.store.Ys, b.off, b.n, p.X, p.Y, out)
}

// SelectWithinSq writes the block-relative indices of points within squared
// distance dSq of p into idx (ascending) and returns how many qualified —
// the compress-store kernel bounded scans use once a running bound is
// known. idx must hold at least Count() elements.
func (b *Block) SelectWithinSq(p geom.Point, dSq float64, idx []int32) int {
	return kernel.SelectWithinSpan(b.store.Xs, b.store.Ys, b.off, b.n, p.X, p.Y, dSq, idx)
}

// Push appends p with the given stable ID to a mutable block (one created
// with NewMutableBlock). It panics on span blocks of a shared store, whose
// neighbors it would corrupt.
func (b *Block) Push(p geom.Point, id int32) {
	if !b.mutable {
		panic("index: Push on an immutable span block")
	}
	b.store.AppendWithID(p, id)
	b.n++
}

// RemoveAt deletes the i-th point of a mutable block by swapping the last
// point into its place (matching the dynamic grid's historical removal
// order). It panics on span blocks of a shared store.
func (b *Block) RemoveAt(i int) {
	if !b.mutable {
		panic("index: RemoveAt on an immutable span block")
	}
	b.store.SwapRemove(i)
	b.n--
}

// Center returns the center of the block's region. The Block-Marking
// algorithm computes neighborhoods of block centers (Theorem 1 of the paper
// shows the center minimizes the search threshold).
func (b *Block) Center() geom.Point { return b.Bounds.Center() }

// Diagonal returns the diagonal length of the block's region.
func (b *Block) Diagonal() float64 { return b.Bounds.Diagonal() }

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("block#%d %v (%d pts)", b.ID, b.Bounds, b.n)
}

// Index is a static partition of a point set into blocks. Implementations
// are built once over a snapshot of points and are immutable afterwards,
// matching the paper's snapshot-query setting.
type Index interface {
	// Blocks returns all leaf blocks. The slice is owned by the index and
	// must not be modified. Block b satisfies Blocks()[b.ID] == b.
	Blocks() []*Block

	// Locate returns the block whose region contains p, or nil if p lies
	// outside the indexed space. For points of the indexed set, Locate
	// always returns the block that stores the point.
	Locate(p geom.Point) *Block

	// Len returns the total number of indexed points.
	Len() int

	// Bounds returns the region covered by the index (the union of all
	// block regions).
	Bounds() geom.Rect
}

// Storer is implemented by indexes whose blocks are spans over one
// relation-wide PointStore in block-contiguous order. All four static index
// families implement it; the dynamic grid (per-block private stores) does
// not.
type Storer interface {
	// Store returns the relation-wide point store. Position i of the store
	// is the i-th point in block-ID-then-storage scan order, and IDs[i] is
	// that point's stable identity.
	Store() *geom.PointStore
}

// StoreOf returns the relation-wide store of ix, or nil when ix does not
// keep one.
func StoreOf(ix Index) *geom.PointStore {
	if s, ok := ix.(Storer); ok {
		return s.Store()
	}
	return nil
}

// TotalCount returns the sum of point counts over blocks; used by
// conformance tests to check that indexes neither drop nor duplicate points.
func TotalCount(ix Index) int {
	n := 0
	for _, b := range ix.Blocks() {
		n += b.Count()
	}
	return n
}
