package kdtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
)

func uniformPoints(n int, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Errorf("empty points without bounds must error")
	}
	if _, err := New([]geom.Point{{X: 5, Y: 5}}, Options{Bounds: geom.NewRect(0, 0, 1, 1)}); err == nil {
		t.Errorf("point outside explicit bounds must error")
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	pts := uniformPoints(1000, geom.NewRect(0, 0, 100, 100), 1)
	tr, err := New(pts, Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Blocks() {
		if b.Count() > 32 {
			t.Fatalf("leaf holds %d points, capacity 32", b.Count())
		}
	}
	if got := index.TotalCount(tr); got != 1000 {
		t.Fatalf("blocks hold %d points, want 1000", got)
	}
}

// TestBlocksTileSpace verifies the k-d tree's defining structural property
// here: leaf regions partition the bounds (disjoint interiors, full cover).
// We sample random locations and require exactly one containing block up to
// shared boundaries.
func TestBlocksTileSpace(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := uniformPoints(700, bounds, 2)
	tr, err := New(pts, Options{LeafCapacity: 16, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TilesSpace() {
		t.Fatalf("kdtree must declare TilesSpace")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		containing := 0
		for _, b := range tr.Blocks() {
			if b.Bounds.Contains(q) {
				containing++
			}
		}
		if containing == 0 {
			t.Fatalf("no block contains %v", q)
		}
		// Shared edges make >1 possible; interiors must not overlap, so a
		// point strictly inside one block (not on any split line) has
		// exactly one container. Points on boundaries are tolerated.
		if containing > 4 {
			t.Fatalf("%d blocks contain %v; regions overlap", containing, q)
		}
		if b := tr.Locate(q); b == nil || !b.Bounds.Contains(q) {
			t.Fatalf("Locate(%v) returned %v", q, b)
		}
	}
}

func TestAdaptiveSplits(t *testing.T) {
	// Half the points packed into 1% of the area: the dense region must end
	// up with smaller blocks than the sparse region.
	dense := uniformPoints(500, geom.NewRect(0, 0, 10, 10), 4)
	sparse := uniformPoints(500, geom.NewRect(0, 0, 1000, 1000), 5)
	tr, err := New(append(dense, sparse...), Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var denseArea, sparseArea float64
	var denseN, sparseN int
	for _, b := range tr.Blocks() {
		c := b.Center()
		if c.X < 10 && c.Y < 10 {
			denseArea += b.Bounds.Area()
			denseN++
		} else {
			sparseArea += b.Bounds.Area()
			sparseN++
		}
	}
	if denseN == 0 || sparseN == 0 {
		t.Skip("split layout did not separate regions; acceptable for this seed")
	}
	if denseArea/float64(denseN) >= sparseArea/float64(sparseN) {
		t.Fatalf("dense-region blocks (avg area %.1f) not smaller than sparse ones (avg %.1f)",
			denseArea/float64(denseN), sparseArea/float64(sparseN))
	}
}

func TestCollinearPoints(t *testing.T) {
	// All points on a vertical line: splitting must fall back to the Y axis
	// rather than producing one oversized leaf.
	var pts []geom.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Point{X: 50, Y: float64(i)})
	}
	tr, err := New(pts, Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks()) < 2 {
		t.Fatalf("collinear input produced %d blocks; Y-axis fallback failed", len(tr.Blocks()))
	}
	if got := index.TotalCount(tr); got != 200 {
		t.Fatalf("blocks hold %d points, want 200", got)
	}
}

func TestDuplicatePointsTerminate(t *testing.T) {
	// 100 copies of one coordinate cannot be split at all; construction
	// must terminate with a single over-capacity leaf rather than recurse.
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: 5, Y: 5}
	}
	tr, err := New(pts, Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := index.TotalCount(tr); got != 100 {
		t.Fatalf("blocks hold %d points, want 100", got)
	}
}
