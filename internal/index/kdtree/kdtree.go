// Package kdtree implements a bulk-built k-d tree index: space is
// recursively split at the median coordinate, alternating axes, until each
// leaf holds at most a configured number of points. Leaf *regions* (not
// bounding boxes) are exposed as blocks, so the partition tiles space —
// like the grid and the quadtree, and unlike the R-tree — which makes the
// contour early-stop of Block-Marking preprocessing applicable.
//
// The k-d tree is the fourth index family behind the paper's Section 2
// claim that the algorithms are index-agnostic: unlike the grid and the
// quadtree its split positions adapt to the data distribution, so dense
// regions get proportionally more, smaller blocks.
//
// Leaves are created in depth-first order and appended, points and stable
// IDs together, to one relation-wide geom.PointStore, so every leaf block is
// a contiguous span and the store as a whole is in block-ID order.
package kdtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/index"
)

// Tree is a static k-d tree over a point set.
type Tree struct {
	root    *node
	bounds  geom.Rect
	blocks  []*index.Block
	store   *geom.PointStore
	n       int
	leafCap int
}

var (
	_ index.Index  = (*Tree)(nil)
	_ index.Storer = (*Tree)(nil)
)

type node struct {
	// axis is 0 for a vertical split (on X) and 1 for a horizontal split
	// (on Y); split is the coordinate of the dividing line.
	axis  int
	split float64

	// region is the rectangle the subtree is responsible for. Storing it on
	// the node (32 bytes each, filled during build) lets *node implement
	// index.TreeNode directly; a value wrapper carrying the region would be
	// boxed — one heap allocation per child — on every traversal expansion.
	region geom.Rect

	lo, hi *node        // children: coordinates < split go to lo
	block  *index.Block // non-nil for a leaf
}

// Options configure k-d tree construction.
type Options struct {
	// LeafCapacity is the maximum number of points per leaf before a
	// split; defaults to 64.
	LeafCapacity int

	// Bounds forces the indexed region; when zero the (inflated) bounding
	// box of the points is used.
	Bounds geom.Rect
}

// buildPoint carries one point with its stable ID through the recursive
// partition; the result lands in SoA form in the tree's store.
type buildPoint struct {
	p  geom.Point
	id int32
}

// New builds a k-d tree over pts, assigning stable point IDs 0..len-1 in
// input order.
func New(pts []geom.Point, opt Options) (*Tree, error) {
	return NewFromStore(geom.StoreFromPoints(pts), opt)
}

// NewFromStore builds a k-d tree over the points of st, preserving the
// store's IDs. The input store is not modified; the tree owns a
// block-contiguous permutation of it.
func NewFromStore(st *geom.PointStore, opt Options) (*Tree, error) {
	if opt.LeafCapacity <= 0 {
		opt.LeafCapacity = 64
	}
	bounds := opt.Bounds
	if bounds == (geom.Rect{}) {
		if st.Len() == 0 {
			return nil, fmt.Errorf("kdtree: empty point set and no explicit bounds")
		}
		bounds = inflate(st.MBR(0, st.Len()))
	}
	owned := make([]buildPoint, st.Len())
	for i := range owned {
		p := st.At(i)
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("kdtree: point %v outside explicit bounds %v", p, bounds)
		}
		owned[i] = buildPoint{p: p, id: st.ID(i)}
	}
	t := &Tree{bounds: bounds, n: st.Len(), leafCap: opt.LeafCapacity, store: geom.NewPointStore(st.Len())}
	t.root = t.build(owned, bounds, 0)
	return t, nil
}

// build recursively splits pts at the median of the alternating axis. The
// region rectangle — not the bounding box of the points — becomes the leaf
// block's bounds, preserving the tiling property.
func (t *Tree) build(pts []buildPoint, region geom.Rect, axis int) *node {
	if len(pts) > t.leafCap && !canSplit(pts, axis) {
		// The preferred axis is degenerate (all coordinates equal); fall
		// back to the other axis — collinear point sets would otherwise
		// never split.
		axis = 1 - axis
	}
	if len(pts) <= t.leafCap || !canSplit(pts, axis) {
		off := t.store.Len()
		for _, bp := range pts {
			t.store.AppendWithID(bp.p, bp.id)
		}
		b := index.NewBlock(len(t.blocks), region, t.store, off, len(pts))
		t.blocks = append(t.blocks, b)
		return &node{region: region, block: b}
	}
	split := medianSplit(pts, axis)
	var loRegion, hiRegion geom.Rect
	if axis == 0 {
		loRegion = geom.Rect{MinX: region.MinX, MinY: region.MinY, MaxX: split, MaxY: region.MaxY}
		hiRegion = geom.Rect{MinX: split, MinY: region.MinY, MaxX: region.MaxX, MaxY: region.MaxY}
	} else {
		loRegion = geom.Rect{MinX: region.MinX, MinY: region.MinY, MaxX: region.MaxX, MaxY: split}
		hiRegion = geom.Rect{MinX: region.MinX, MinY: split, MaxX: region.MaxX, MaxY: region.MaxY}
	}
	var lo, hi []buildPoint
	for _, bp := range pts {
		if coord(bp.p, axis) < split {
			lo = append(lo, bp)
		} else {
			hi = append(hi, bp)
		}
	}
	nd := &node{axis: axis, split: split, region: region}
	nd.lo = t.build(lo, loRegion, 1-axis)
	nd.hi = t.build(hi, hiRegion, 1-axis)
	return nd
}

// canSplit reports whether pts contains at least two distinct coordinates
// on the axis — a degenerate (all-equal) axis cannot be median-split.
func canSplit(pts []buildPoint, axis int) bool {
	first := coord(pts[0].p, axis)
	for _, bp := range pts[1:] {
		if coord(bp.p, axis) != first {
			return true
		}
	}
	return false
}

// medianSplit returns a split coordinate that puts roughly half the points
// strictly below it. It is guaranteed to be strictly inside the coordinate
// range, so both sides are non-empty.
func medianSplit(pts []buildPoint, axis int) float64 {
	coords := make([]float64, len(pts))
	for i, bp := range pts {
		coords[i] = coord(bp.p, axis)
	}
	sort.Float64s(coords)
	split := coords[len(coords)/2]
	if split == coords[0] {
		// All lower-half coordinates equal the minimum; move the split up
		// to the next distinct value so the low side is non-empty.
		for _, c := range coords {
			if c > split {
				split = c
				break
			}
		}
	}
	return split
}

func coord(p geom.Point, axis int) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

// Blocks implements index.Index.
func (t *Tree) Blocks() []*index.Block { return t.blocks }

// Len implements index.Index.
func (t *Tree) Len() int { return t.n }

// Bounds implements index.Index.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Store implements index.Storer: the relation-wide store holding the leaves
// as contiguous spans in depth-first (block-ID) order.
func (t *Tree) Store() *geom.PointStore { return t.store }

// TilesSpace reports that k-d tree leaf regions tile the indexed region
// exactly, enabling the contour early-stop in Block-Marking preprocessing.
func (t *Tree) TilesSpace() bool { return true }

// Locate implements index.Index by descending the split tree.
func (t *Tree) Locate(p geom.Point) *index.Block {
	if !t.bounds.Contains(p) {
		return nil
	}
	nd := t.root
	for nd.block == nil {
		if coord(p, nd.axis) < nd.split {
			nd = nd.lo
		} else {
			nd = nd.hi
		}
	}
	return nd.block
}

func inflate(r geom.Rect) geom.Rect {
	const rel = 1e-9
	w, h := r.Width(), r.Height()
	padX := w*rel + 1e-9
	padY := h*rel + 1e-9
	if w == 0 {
		padX = 0.5
	}
	if h == 0 {
		padY = 0.5
	}
	return geom.Rect{MinX: r.MinX - padX, MinY: r.MinY - padY, MaxX: r.MaxX + padX, MaxY: r.MaxY + padY}
}

// NodeBounds implements index.TreeNode.
func (nd *node) NodeBounds() geom.Rect { return nd.region }

// NodeBlock implements index.TreeNode.
func (nd *node) NodeBlock() *index.Block { return nd.block }

// NodeChildren implements index.TreeNode.
func (nd *node) NodeChildren(dst []index.TreeNode) []index.TreeNode {
	return append(dst, nd.lo, nd.hi)
}

// NewMinDistIter implements index.IncrementalScanner through best-first
// tree traversal.
func (t *Tree) NewMinDistIter(p geom.Point) index.BlockIter {
	return index.NewTreeMinDistIter(t.root, p)
}

// NewMaxDistIter implements index.IncrementalScanner.
func (t *Tree) NewMaxDistIter(p geom.Point) index.BlockIter {
	return index.NewTreeMaxDistIter(t.root, p)
}

var _ index.IncrementalScanner = (*Tree)(nil)
