//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-regression tests that exercise sync.Pool skip their strict
// zero-alloc assertions under race builds: the detector's pool
// instrumentation allocates on Get/Put, which is measurement noise, not a
// regression.
const RaceEnabled = true
