// Package testutil provides seeded data builders shared by the test suites
// of the index, locality and core packages. It is imported by tests only.
package testutil

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/index/kdtree"
	"repro/internal/index/quadtree"
	"repro/internal/index/rtree"
)

// UniformPoints returns n points uniformly distributed over bounds, from a
// deterministic source seeded with seed.
func UniformPoints(n int, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

// ClusteredPoints returns points grouped into nClusters Gaussian blobs with
// the given standard deviation, cluster centers uniform over bounds.
func ClusteredPoints(n, nClusters int, sigma float64, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, nClusters)
	for i := range centers {
		centers[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(nClusters)]
		pts[i] = geom.Point{
			X: clamp(c.X+rng.NormFloat64()*sigma, bounds.MinX, bounds.MaxX),
			Y: clamp(c.Y+rng.NormFloat64()*sigma, bounds.MinY, bounds.MaxY),
		}
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IndexKind names one of the three index implementations.
type IndexKind string

// The available index kinds.
const (
	Grid     IndexKind = "grid"
	Quadtree IndexKind = "quadtree"
	RTree    IndexKind = "rtree"
	KDTree   IndexKind = "kdtree"
)

// AllIndexKinds lists every index implementation; tests range over it to
// check index-agnosticism.
var AllIndexKinds = []IndexKind{Grid, Quadtree, RTree, KDTree}

// BuildIndex constructs an index of the given kind over pts with a small
// block capacity (so even small test inputs span many blocks).
func BuildIndex(t testing.TB, kind IndexKind, pts []geom.Point) index.Index {
	t.Helper()
	ix, err := NewIndex(kind, pts)
	if err != nil {
		t.Fatalf("building %s index over %d points: %v", kind, len(pts), err)
	}
	return ix
}

// NewIndex is BuildIndex without the testing.TB dependency, for use in
// builder callbacks passed to core functions.
func NewIndex(kind IndexKind, pts []geom.Point) (index.Index, error) {
	return NewIndexCapacity(kind, pts, 16)
}

// NewIndexCapacity is NewIndex with an explicit leaf/cell capacity — tests
// exercising the batched kernel scan paths need blocks larger than
// kernel.BatchGrain, while the default small capacity keeps small inputs
// spanning many blocks.
func NewIndexCapacity(kind IndexKind, pts []geom.Point, capacity int) (index.Index, error) {
	if len(pts) == 0 {
		// Degenerate relations (e.g. the reduced inner relation of an
		// invalid-pushdown plan over an empty selection) still need a
		// well-defined region.
		return grid.New(nil, grid.Options{Bounds: geom.NewRect(0, 0, 1, 1), Cols: 1, Rows: 1})
	}
	switch kind {
	case Quadtree:
		return quadtree.New(pts, quadtree.Options{LeafCapacity: capacity})
	case KDTree:
		return kdtree.New(pts, kdtree.Options{LeafCapacity: capacity})
	case RTree:
		return rtree.New(pts, rtree.Options{LeafCapacity: capacity})
	default:
		return grid.New(pts, grid.Options{TargetPerCell: capacity})
	}
}

// BuildRelation wraps BuildIndex into a core.Relation.
func BuildRelation(t testing.TB, kind IndexKind, pts []geom.Point) *core.Relation {
	t.Helper()
	return core.NewRelation(BuildIndex(t, kind, pts))
}

// RelationBuilder returns a constructor closure over the index kind, in the
// shape the Invalid* / Sequential* plan functions expect.
func RelationBuilder(kind IndexKind) func(pts []geom.Point) (*core.Relation, error) {
	return func(pts []geom.Point) (*core.Relation, error) {
		ix, err := NewIndex(kind, pts)
		if err != nil {
			return nil, err
		}
		return core.NewRelation(ix), nil
	}
}
