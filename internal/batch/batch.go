// Package batch executes many k-nearest-neighbor queries against one
// relation in a single index walk, amortizing block traversal and turning
// many short per-query scans into long shared spans — exactly the shape the
// batched distance kernels want (see internal/kernel: the AVX2 paths only
// pay off above BatchGrain lanes, so paper-faithful 16-point cells leave
// them idle under single-query execution).
//
// The driver sorts the focal batch in Z-order, cuts it into spatially tight
// groups, and runs a two-pass shared walk per group:
//
//  1. Pass A consumes blocks in MAXDIST order from the group centroid until
//     the accumulated point count reaches k — a query-independent walk —
//     and records, for every query q of the group, the exact bound
//     max over consumed blocks of MAXDIST²(q, block): a valid upper bound
//     on q's k-th-neighbor distance, because those blocks hold at least k
//     points and every one of them is within that distance of q.
//  2. Pass B consumes blocks in MINDIST order from the centroid. Each
//     popped block is offered to every still-active query: admitted when
//     its MINDIST²(q) is at or below q's Pass-A bound and not prunable
//     against q's running heap bound, scanned through the same
//     locality.KHeap span scan the sequential Searcher runs. A query
//     deactivates permanently once the centroid key passes its stop key
//     (sqrt(bound)+dist(centroid, q))², the triangle-inequality point past
//     which no block can reach the query's bound; the stop key is inflated
//     by 1+1e-12 so float rounding can only keep a query active longer,
//     never skip a contributing block.
//
// Correctness does not depend on the grouping or the walk order: the
// selection heap yields the exact top k of everything offered under the
// canonical (distance, X, Y) order, every skip happens under a strict
// inequality that proves the skipped block cannot contribute, and the span
// scan is literally the sequential code path. Batch answers are therefore
// byte-identical to the sequential per-query loop. Grouping only shapes
// performance: groups are cut when their bounding box outgrows a cap
// derived from the estimated k-th-neighbor radius, so spatially sparse
// batches degrade to singleton groups (≈ sequential cost) instead of
// dragging the shared walk across the whole index.
package batch

import (
	"math"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/locality"
	"repro/internal/stats"
)

// maxGroup caps the number of queries sharing one walk. Beyond this the
// per-block query loop starts to dominate the saved traversal.
const maxGroup = 64

// extentFactorSq caps a group's bounding-box diagonal at 4× the estimated
// k-th-neighbor radius (compared squared, hence 16). Tighter groups keep
// the centroid walk's ring close to every member's own locality.
const extentFactorSq = 16

// Driver runs batched queries over one relation, reusing every internal
// buffer across calls: in steady state a batch allocates nothing. A Driver
// is not safe for concurrent use; acquire one per goroutine from the pool.
//
// Result slices returned by the driver point into per-driver arenas and
// remain valid only until the next call of the same method on the same
// driver (KNNSelect and SelectWithinSq use separate arenas, so a
// two-predicate composition may hold both at once).
type Driver struct {
	ix    index.Index
	iters *index.IterPool
	span  locality.SpanScratch

	keys []uint64 // Z-order sort keys: morton<<32 | input index

	// per-group scratch, indexed by position within the group
	heaps     [maxGroup]locality.KHeap
	bounds    [maxGroup]float64 // squared admission bound per query
	stopKey   [maxGroup]float64 // centroid key past which the query is done
	stopBound [maxGroup]float64 // bound the stop key was computed from
	cDist     [maxGroup]float64 // distance from group centroid to query
	examined  [maxGroup]int
	active    [maxGroup]int32

	knnRes    []locality.Neighborhood // KNNSelect arena, input order
	withinRes []locality.Neighborhood // SelectWithinSq arena, input order
}

// driverPool recycles Drivers (and their arenas) across batches.
var driverPool = sync.Pool{New: func() any { return new(Driver) }}

// Acquire returns a pooled Driver.
func Acquire() *Driver { return driverPool.Get().(*Driver) }

// Release returns d to the pool.
func Release(d *Driver) { driverPool.Put(d) }

// bind points the driver's cached iterator pool at rel's index.
func (d *Driver) bind(rel *core.Relation) {
	if d.ix != rel.Ix {
		d.ix = rel.Ix
		d.iters = index.NewIterPool(rel.Ix)
	}
}

// KNNSelect computes the k nearest neighbors of every focal point,
// returning one Neighborhood per focal in input order, byte-identical to
// calling the sequential searcher once per focal. The result aliases the
// driver's arena; see Driver.
func (d *Driver) KNNSelect(rel *core.Relation, focals []geom.Point, k int, c *stats.Counters) []locality.Neighborhood {
	res := d.resetArena(&d.knnRes, focals)
	if k <= 0 || len(focals) == 0 {
		return res
	}
	d.bind(rel)
	d.sortKeys(focals)
	d.forEachGroup(focals, k, func(qs []uint64, centroid geom.Point) {
		d.runGroup(rel, focals, qs, centroid, k, nil, res, c)
	})
	return res
}

// SelectWithinSq computes, for every focal i, the k nearest neighbors among
// the points of blocks whose MINDIST² from the focal is at most
// thresholdsSq[i] — the batched form of the sequential searcher's
// NeighborhoodWithinSq, byte-identical to it. A negative threshold skips
// the query entirely (empty result), mirroring the sequential two-select
// plan's early exit for an empty first neighborhood. The result aliases the
// driver's arena; see Driver.
func (d *Driver) SelectWithinSq(rel *core.Relation, focals []geom.Point, k int, thresholdsSq []float64, c *stats.Counters) []locality.Neighborhood {
	res := d.resetArena(&d.withinRes, focals)
	if k <= 0 || len(focals) == 0 {
		return res
	}
	d.bind(rel)
	d.sortKeys(focals)
	d.forEachGroup(focals, k, func(qs []uint64, centroid geom.Point) {
		d.runGroup(rel, focals, qs, centroid, k, thresholdsSq, res, c)
	})
	return res
}

// resetArena sizes *arena to one empty neighborhood per focal.
func (d *Driver) resetArena(arena *[]locality.Neighborhood, focals []geom.Point) []locality.Neighborhood {
	a := *arena
	if cap(a) < len(focals) {
		a = append(a[:cap(a)], make([]locality.Neighborhood, len(focals)-cap(a))...)
	}
	a = a[:len(focals)]
	for i := range a {
		a[i].Center = focals[i]
		a[i].Points = a[i].Points[:0]
		a[i].Dists = a[i].Dists[:0]
	}
	*arena = a
	return a
}

// sortKeys fills d.keys with morton<<32|index keys over the index bounds
// and sorts them, so focals arrive in Z-order with ties broken by input
// position — a deterministic order regardless of duplicates.
func (d *Driver) sortKeys(focals []geom.Point) {
	if cap(d.keys) < len(focals) {
		d.keys = make([]uint64, len(focals))
	}
	d.keys = d.keys[:len(focals)]
	b := d.ix.Bounds()
	for i, f := range focals {
		qx := quantize(f.X, b.MinX, b.MaxX)
		qy := quantize(f.Y, b.MinY, b.MaxY)
		morton := uint64(spread(qx) | spread(qy)<<1)
		d.keys[i] = morton<<32 | uint64(uint32(i))
	}
	slices.Sort(d.keys)
}

// quantize maps v into [0, 65535] over [lo, hi], clamping everything
// non-finite or out of range (the !(t > 0) form also catches NaN and a
// degenerate zero-width extent).
func quantize(v, lo, hi float64) uint32 {
	t := (v - lo) / (hi - lo)
	if !(t > 0) {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return uint32(t * 65535)
}

// spread interleaves the low 16 bits of v with zeros.
func spread(v uint32) uint32 {
	v &= 0xFFFF
	v = (v | v<<8) & 0x00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// forEachGroup cuts the sorted key sequence into spatially tight groups and
// invokes run on each: a group closes when it reaches maxGroup queries or
// its bounding box diagonal² outgrows extentFactorSq × the estimated
// k-th-neighbor radius² (k·Area/(π·n) under a uniform-density model). The
// cap only shapes performance — a sparse batch degrades to singleton
// groups — never correctness.
func (d *Driver) forEachGroup(focals []geom.Point, k int, run func(qs []uint64, centroid geom.Point)) {
	capDiagSq := math.Inf(1)
	if n := d.ix.Len(); n > 0 {
		capDiagSq = extentFactorSq * float64(k) * d.ix.Bounds().Area() / (math.Pi * float64(n))
	}
	start := 0
	var box geom.Rect
	for i, key := range d.keys {
		f := focals[uint32(key)]
		if i == start {
			box = geom.NewRect(f.X, f.Y, f.X, f.Y)
			continue
		}
		grown := box.ExpandPoint(f)
		w, h := grown.Width(), grown.Height()
		if i-start >= maxGroup || w*w+h*h > capDiagSq {
			run(d.keys[start:i], box.Center())
			start = i
			box = geom.NewRect(f.X, f.Y, f.X, f.Y)
			continue
		}
		box = grown
	}
	if start < len(d.keys) {
		run(d.keys[start:], box.Center())
	}
}

// runGroup executes one group's shared walk. qs are the group's sort keys
// (low 32 bits = input index), centroid the group box center. thresholdsSq
// nil selects kNN mode (Pass A derives per-query bounds); non-nil selects
// within mode (bounds come from the thresholds, negative = skip query).
func (d *Driver) runGroup(rel *core.Relation, focals []geom.Point, qs []uint64, centroid geom.Point, k int, thresholdsSq []float64, res []locality.Neighborhood, c *stats.Counters) {
	m := len(qs)
	scanned := 0
	nAct := 0
	for j := 0; j < m; j++ {
		q := focals[uint32(qs[j])]
		d.heaps[j].Reset(k)
		d.examined[j] = 0
		d.cDist[j] = math.Sqrt(centroid.DistSq(q))
		d.stopBound[j] = math.Inf(-1) // force first stop-key computation
		if thresholdsSq != nil {
			t := thresholdsSq[uint32(qs[j])]
			d.bounds[j] = t
			if t < 0 {
				continue // skipped query: empty result, never activated
			}
		} else {
			d.bounds[j] = 0
		}
		d.active[nAct] = int32(j)
		nAct++
	}

	if thresholdsSq == nil && nAct > 0 {
		// Pass A: count to k in MAXDIST order from the centroid, raising
		// every query's bound to the farthest corner of each consumed block.
		it := d.iters.MaxDist(centroid)
		count := 0
		for count < k {
			rel.Checkpoint()
			b, _, ok := it.Next()
			if !ok {
				// Fewer than k points in the whole data set: no bound.
				for j := 0; j < m; j++ {
					d.bounds[j] = math.Inf(1)
				}
				break
			}
			scanned++
			if b.Count() == 0 {
				continue
			}
			count += b.Count()
			for j := 0; j < m; j++ {
				if mx := b.Bounds.MaxDistSq(focals[uint32(qs[j])]); mx > d.bounds[j] {
					d.bounds[j] = mx
				}
			}
		}
	}

	if nAct > 0 {
		// Pass B: shared MINDIST walk from the centroid.
		it := d.iters.MinDist(centroid)
		for nAct > 0 {
			rel.Checkpoint()
			b, cKey, ok := it.Next()
			if !ok {
				break
			}
			scanned++
			if b.Count() == 0 {
				continue
			}
			for ai := 0; ai < nAct; {
				j := d.active[ai]
				q := focals[uint32(qs[j])]
				h := &d.heaps[j]
				eff := d.bounds[j]
				if h.Full() && h.BoundSq() < eff {
					eff = h.BoundSq()
				}
				if eff != d.stopBound[j] {
					d.stopBound[j] = eff
					r := math.Sqrt(eff) + d.cDist[j]
					d.stopKey[j] = r * r * (1 + 1e-12)
				}
				if cKey > d.stopKey[j] {
					// MINDIST from the centroid is 1-Lipschitz in the query
					// point, so every block from here on has
					// MINDIST²(q) > eff: the query is done. Swap-remove.
					nAct--
					d.active[ai] = d.active[nAct]
					continue
				}
				minSq := b.Bounds.MinDistSq(q)
				if minSq > d.bounds[j] || (h.Full() && minSq > h.BoundSq()) {
					ai++
					continue
				}
				d.examined[j] += h.ScanSpan(b, q, &d.span)
				ai++
			}
		}
	}

	c.AddBlocksScanned(scanned)
	for j := 0; j < m; j++ {
		i := uint32(qs[j])
		if thresholdsSq == nil || thresholdsSq[i] >= 0 {
			c.AddNeighborhood(d.examined[j])
			d.heaps[j].ExtractInto(&res[i], focals[i])
		}
	}
}
