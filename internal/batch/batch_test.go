package batch

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/index/kdtree"
	"repro/internal/index/quadtree"
	"repro/internal/index/rtree"
	"repro/internal/locality"
	"repro/internal/stats"
)

var testBounds = geom.NewRect(0, 0, 1000, 1000)

func testPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	// Co-located duplicates stress the (distance, X, Y) tie order.
	for i := 0; i+7 < n; i += 7 {
		pts[i+1] = pts[i]
	}
	return pts
}

func testIndexes(t *testing.T, pts []geom.Point) map[string]index.Index {
	t.Helper()
	out := make(map[string]index.Index)
	g, err := grid.New(pts, grid.Options{TargetPerCell: 8, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	out["grid"] = g
	kd, err := kdtree.New(pts, kdtree.Options{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	out["kdtree"] = kd
	qt, err := quadtree.New(pts, quadtree.Options{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	out["quadtree"] = qt
	rt, err := rtree.New(pts, rtree.Options{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	out["rtree"] = rt
	return out
}

func testFocals(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	focals := make([]geom.Point, n)
	for i := range focals {
		switch i % 4 {
		case 0: // clustered around a hot spot
			focals[i] = geom.Point{X: 500 + rng.NormFloat64()*30, Y: 500 + rng.NormFloat64()*30}
		case 1: // uniform over the region
			focals[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		case 2: // duplicate of a previous focal
			focals[i] = focals[rng.Intn(i)]
		default: // outside the indexed bounds
			focals[i] = geom.Point{X: -200 + rng.Float64()*1400, Y: -200 + rng.Float64()*1400}
		}
	}
	return focals
}

func sameNeighborhood(a, b *locality.Neighborhood) bool {
	if len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] || a.Dists[i] != b.Dists[i] {
			return false
		}
	}
	return true
}

// TestKNNSelectMatchesSequential is the package-level differential: the
// batched driver must reproduce the sequential searcher byte for byte, per
// index kind, across batch sizes and k values.
func TestKNNSelectMatchesSequential(t *testing.T) {
	pts := testPoints(2000, 1)
	for name, ix := range testIndexes(t, pts) {
		t.Run(name, func(t *testing.T) {
			rel := core.NewRelation(ix)
			d := Acquire()
			defer Release(d)
			for _, batchN := range []int{0, 1, 3, 17, 200} {
				for _, k := range []int{1, 5, 23} {
					focals := testFocals(batchN, int64(batchN*31+k))
					got := d.KNNSelect(rel, focals, k, nil)
					if len(got) != len(focals) {
						t.Fatalf("batch=%d k=%d: got %d results", batchN, k, len(got))
					}
					h := rel.Acquire()
					for i, f := range focals {
						want := h.S.Neighborhood(f, k, nil)
						if !sameNeighborhood(&got[i], want) {
							t.Fatalf("batch=%d k=%d focal %d %v: batch %v vs sequential %v",
								batchN, k, i, f, got[i].Points, want.Points)
						}
					}
					h.Release()
				}
			}
		})
	}
}

// TestSelectWithinMatchesSequential checks the within-threshold mode against
// the sequential NeighborhoodWithinSq, including negative (skipped)
// thresholds.
func TestSelectWithinMatchesSequential(t *testing.T) {
	pts := testPoints(1500, 2)
	for name, ix := range testIndexes(t, pts) {
		t.Run(name, func(t *testing.T) {
			rel := core.NewRelation(ix)
			d := Acquire()
			defer Release(d)
			rng := rand.New(rand.NewSource(7))
			focals := testFocals(120, 3)
			thresholds := make([]float64, len(focals))
			for i := range thresholds {
				switch i % 5 {
				case 0:
					thresholds[i] = -1 // skipped
				case 1:
					thresholds[i] = 0 // exact-hit only
				default:
					r := rng.Float64() * 150
					thresholds[i] = r * r
				}
			}
			const k = 9
			got := d.SelectWithinSq(rel, focals, k, thresholds, nil)
			h := rel.Acquire()
			defer h.Release()
			for i, f := range focals {
				if thresholds[i] < 0 {
					if got[i].Len() != 0 {
						t.Fatalf("focal %d: skipped query returned %d points", i, got[i].Len())
					}
					continue
				}
				want := h.S.NeighborhoodWithinSq(f, k, thresholds[i], nil)
				if !sameNeighborhood(&got[i], want) {
					t.Fatalf("focal %d %v thr %g: batch %v vs sequential %v",
						i, f, thresholds[i], got[i].Points, want.Points)
				}
			}
		})
	}
}

// TestDriverStats checks the advisory counters move.
func TestDriverStats(t *testing.T) {
	pts := testPoints(800, 4)
	ix, err := grid.New(pts, grid.Options{TargetPerCell: 8, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	rel := core.NewRelation(ix)
	d := Acquire()
	defer Release(d)
	var c stats.Counters
	d.KNNSelect(rel, testFocals(50, 5), 5, &c)
	if c.BlocksScanned == 0 || c.Neighborhoods != 50 || c.PointsCompared == 0 {
		t.Fatalf("counters did not move: %+v", c)
	}
}

// TestDriverAllocs: the batch hot path must be allocation-free in steady
// state on a reused driver.
func TestDriverAllocs(t *testing.T) {
	pts := testPoints(2000, 6)
	ix, err := grid.New(pts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	rel := core.NewRelation(ix)
	d := Acquire()
	defer Release(d)
	focals := testFocals(64, 7)
	d.KNNSelect(rel, focals, 10, nil) // warm the arenas
	avg := testing.AllocsPerRun(20, func() {
		d.KNNSelect(rel, focals, 10, nil)
	})
	if avg != 0 {
		t.Fatalf("batch hot path allocates %v allocs/op, want 0", avg)
	}
}

func BenchmarkDriverKNNSelect(b *testing.B) {
	pts := testPoints(20000, 8)
	ix, err := grid.New(pts, grid.Options{TargetPerCell: 16, Bounds: testBounds})
	if err != nil {
		b.Fatal(err)
	}
	rel := core.NewRelation(ix)
	d := Acquire()
	defer Release(d)
	for _, batchN := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch=%d", batchN), func(b *testing.B) {
			focals := testFocals(batchN, 9)
			d.KNNSelect(rel, focals, 10, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.KNNSelect(rel, focals, 10, nil)
			}
		})
	}
}
