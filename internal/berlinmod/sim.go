package berlinmod

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Config parameterizes a traffic simulation.
type Config struct {
	// Network configures the road network the fleet drives on.
	Network NetworkConfig

	// Vehicles is the fleet size; default 2000, matching the BerlinMOD
	// scale-1.0 fleet the paper uses.
	Vehicles int

	// TripBias is the probability that a finished vehicle starts its next
	// trip toward its home/work anchor rather than a random errand;
	// default 0.7. Anchored trips make traffic patterns repeatable and
	// corridor-heavy, like commuting.
	TripBias float64

	// MaxDwell is the maximum number of ticks a vehicle rests between
	// trips; default 3.
	MaxDwell int

	// Seed drives vehicle behavior (independent from the network seed).
	Seed int64
}

func (cfg *Config) applyDefaults() {
	if cfg.Vehicles <= 0 {
		cfg.Vehicles = 2000
	}
	if cfg.TripBias <= 0 || cfg.TripBias > 1 {
		cfg.TripBias = 0.7
	}
	if cfg.MaxDwell <= 0 {
		cfg.MaxDwell = 3
	}
}

// vehicle is one car of the fleet.
type vehicle struct {
	home, work int // anchor nodes
	atNode     int // current node when dwelling
	dwell      int // remaining rest ticks; 0 while driving

	// trip state while driving
	path     []int   // node path of the current trip
	leg      int     // index into path of the current segment start
	progress float64 // distance covered on the current segment
	toWork   bool    // direction of the next anchored trip
}

// Simulation is a deterministic traffic simulation over a generated
// network. Advance it with Step and read vehicle positions with Positions.
type Simulation struct {
	net  *Network
	cfg  Config
	rng  *rand.Rand
	cars []vehicle
	tick int
}

// NewSimulation builds the network and places the fleet.
func NewSimulation(cfg Config) (*Simulation, error) {
	cfg.applyDefaults()
	if err := cfg.Network.validate(); err != nil {
		return nil, err
	}
	net := GenerateNetwork(cfg.Network)
	if !net.Connected() {
		return nil, fmt.Errorf("berlinmod: generated network is not connected")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	s := &Simulation{net: net, cfg: cfg, rng: rng}
	s.cars = make([]vehicle, cfg.Vehicles)
	for i := range s.cars {
		home := rng.Intn(net.NumNodes())
		work := rng.Intn(net.NumNodes())
		s.cars[i] = vehicle{home: home, work: work, atNode: home, dwell: rng.Intn(cfg.MaxDwell) + 1, toWork: true}
	}
	return s, nil
}

// Network returns the simulated road network.
func (s *Simulation) Network() *Network { return s.net }

// Tick returns how many steps have been simulated.
func (s *Simulation) Tick() int { return s.tick }

// Step advances every vehicle by one tick. A tick moves a driving vehicle
// by speed*cellScale along its path (arterial segments are covered faster),
// counts down dwell time for resting vehicles, and starts new trips.
func (s *Simulation) Step() {
	// A tick's base travel distance: one grid cell on a normal street.
	base := s.net.Bounds().Width() / float64(max(s.cfg.Network.Cols, 2))
	for i := range s.cars {
		s.stepVehicle(&s.cars[i], base)
	}
	s.tick++
}

func (s *Simulation) stepVehicle(v *vehicle, base float64) {
	if v.dwell > 0 {
		v.dwell--
		if v.dwell == 0 {
			s.startTrip(v)
		}
		return
	}
	// Driving: consume distance along the path, segment by segment.
	budget := base * (0.8 + 0.4*s.rng.Float64())
	for budget > 0 && v.leg+1 < len(v.path) {
		u, w := v.path[v.leg], v.path[v.leg+1]
		edge := s.findEdge(u, w)
		speed := 1.0
		length := s.net.Nodes[u].Dist(s.net.Nodes[w])
		if edge != nil {
			speed = edge.Speed
			length = edge.Length
		}
		remain := length - v.progress
		advance := budget * speed
		if advance < remain {
			v.progress += advance
			budget = 0
		} else {
			budget -= remain / speed
			v.leg++
			v.progress = 0
		}
	}
	if v.leg+1 >= len(v.path) {
		// Arrived.
		v.atNode = v.path[len(v.path)-1]
		v.path = nil
		v.dwell = s.rng.Intn(s.cfg.MaxDwell) + 1
	}
}

// startTrip routes the vehicle to its next destination.
func (s *Simulation) startTrip(v *vehicle) {
	var dest int
	if s.rng.Float64() < s.cfg.TripBias {
		if v.toWork {
			dest = v.work
		} else {
			dest = v.home
		}
		v.toWork = !v.toWork
	} else {
		dest = s.rng.Intn(s.net.NumNodes())
	}
	if dest == v.atNode {
		v.dwell = 1
		return
	}
	path := s.net.ShortestPath(v.atNode, dest)
	if len(path) < 2 {
		v.dwell = 1
		return
	}
	v.path = path
	v.leg = 0
	v.progress = 0
}

// findEdge returns the segment u->w, or nil if the path references a road
// that does not exist (never for generated paths).
func (s *Simulation) findEdge(u, w int) *Edge {
	for i := range s.net.adj[u] {
		if s.net.adj[u][i].To == w {
			return &s.net.adj[u][i]
		}
	}
	return nil
}

// Positions returns the current position of every vehicle: resting vehicles
// sit at their node, driving vehicles are interpolated along their current
// segment.
func (s *Simulation) Positions() []geom.Point {
	out := make([]geom.Point, len(s.cars))
	for i := range s.cars {
		out[i] = s.position(&s.cars[i])
	}
	return out
}

func (s *Simulation) position(v *vehicle) geom.Point {
	if v.dwell > 0 || v.leg+1 >= len(v.path) {
		return s.net.Nodes[v.atNode]
	}
	u, w := v.path[v.leg], v.path[v.leg+1]
	a, b := s.net.Nodes[u], s.net.Nodes[w]
	length := a.Dist(b)
	if length == 0 {
		return a
	}
	t := v.progress / length
	if t > 1 {
		t = 1
	}
	return geom.Point{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
}

// Points runs a simulation until n vehicle positions have been accumulated
// across ticks and returns exactly n points — the package-level convenience
// the experiments use ("remove the time dimension ... to deal with snapshots
// of points"). A few warm-up ticks run first so the fleet disperses from its
// home nodes onto the roads.
func Points(n int, cfg Config) ([]geom.Point, error) {
	st, err := Store(n, cfg)
	if err != nil {
		return nil, err
	}
	return st.Points(), nil
}

// Store is Points accumulating directly into a columnar point store,
// pre-sized for exactly n points (no append-regrow) with stable IDs in
// accumulation order. It produces the same coordinate sequence as Points
// for the same parameters.
func Store(n int, cfg Config) (*geom.PointStore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("berlinmod: requested %d points", n)
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		return nil, err
	}
	const warmup = 8
	for i := 0; i < warmup; i++ {
		sim.Step()
	}
	st := geom.NewPointStore(n)
	for st.Len() < n {
		sim.Step()
		for _, p := range sim.Positions() {
			st.Append(p)
			if st.Len() == n {
				break
			}
		}
	}
	return st, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
