package berlinmod

import (
	"reflect"
	"testing"

	"repro/internal/geom"
)

func smallNetworkConfig(seed int64) NetworkConfig {
	return NetworkConfig{Cols: 10, Rows: 10, Bounds: geom.NewRect(0, 0, 1000, 1000), Seed: seed}
}

func TestGenerateNetworkConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		net := GenerateNetwork(smallNetworkConfig(seed))
		if !net.Connected() {
			t.Fatalf("seed %d: network not connected", seed)
		}
		if net.NumNodes() != 100 {
			t.Fatalf("seed %d: %d nodes, want 100", seed, net.NumNodes())
		}
		for _, p := range net.Nodes {
			if !net.Bounds().Contains(p) {
				t.Fatalf("node %v outside bounds", p)
			}
		}
	}
}

func TestNetworkEdgesSymmetric(t *testing.T) {
	net := GenerateNetwork(smallNetworkConfig(1))
	for u := 0; u < net.NumNodes(); u++ {
		for _, e := range net.Edges(u) {
			back := false
			for _, r := range net.Edges(e.To) {
				if r.To == u && r.Length == e.Length && r.Speed == e.Speed {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("edge %d->%d has no symmetric reverse", u, e.To)
			}
			if e.Length <= 0 || e.Speed <= 0 {
				t.Fatalf("edge %d->%d has non-positive length/speed", u, e.To)
			}
		}
	}
}

func TestNetworkHasArterials(t *testing.T) {
	net := GenerateNetwork(smallNetworkConfig(2))
	fast := 0
	for u := 0; u < net.NumNodes(); u++ {
		for _, e := range net.Edges(u) {
			if e.Speed > 1 {
				fast++
			}
		}
	}
	if fast == 0 {
		t.Fatalf("expected some arterial (fast) edges")
	}
}

func TestShortestPathProperties(t *testing.T) {
	net := GenerateNetwork(smallNetworkConfig(3))

	if p := net.ShortestPath(5, 5); len(p) != 1 || p[0] != 5 {
		t.Fatalf("path to self = %v, want [5]", p)
	}

	path := net.ShortestPath(0, net.NumNodes()-1)
	if len(path) < 2 {
		t.Fatalf("expected a path between opposite corners, got %v", path)
	}
	if path[0] != 0 || path[len(path)-1] != net.NumNodes()-1 {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	// Consecutive path nodes must be joined by a road.
	for i := 0; i+1 < len(path); i++ {
		found := false
		for _, e := range net.Edges(path[i]) {
			if e.To == path[i+1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path step %d->%d is not a road", path[i], path[i+1])
		}
	}
}

func TestShortestPathPrefersArterials(t *testing.T) {
	// Tiny triangle network: direct slow road vs a two-hop fast detour of
	// identical geometry cannot be built from the generator, so build the
	// comparison directly on travel times: cost of the returned path must
	// not exceed the cost of any alternative simple path we can find by
	// brute force on a small generated network.
	net := GenerateNetwork(NetworkConfig{Cols: 4, Rows: 4, Bounds: geom.NewRect(0, 0, 100, 100), Seed: 4})
	cost := func(path []int) float64 {
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			for _, e := range net.Edges(path[i]) {
				if e.To == path[i+1] {
					total += e.Length / e.Speed
					break
				}
			}
		}
		return total
	}
	from, to := 0, net.NumNodes()-1
	best := net.ShortestPath(from, to)
	bestCost := cost(best)

	// Exhaustive DFS over simple paths (16 nodes, tractable).
	var dfs func(u int, visited map[int]bool, path []int)
	checked := 0
	dfs = func(u int, visited map[int]bool, path []int) {
		if checked > 200000 {
			return
		}
		if u == to {
			checked++
			if c := cost(path); c < bestCost-1e-9 {
				t.Fatalf("found cheaper path %v (cost %v) than Dijkstra's %v (cost %v)", path, c, best, bestCost)
			}
			return
		}
		for _, e := range net.Edges(u) {
			if !visited[e.To] {
				visited[e.To] = true
				dfs(e.To, visited, append(path, e.To))
				visited[e.To] = false
			}
		}
	}
	dfs(from, map[int]bool{from: true}, []int{from})
}

func TestSimulationDeterministic(t *testing.T) {
	cfg := Config{Network: smallNetworkConfig(5), Vehicles: 50, Seed: 6}
	a, err := Points(500, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Points(500, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config must reproduce the same snapshot points")
	}
}

func TestPointsCardinalityAndBounds(t *testing.T) {
	cfg := Config{Network: smallNetworkConfig(7), Vehicles: 40, Seed: 8}
	pts, err := Points(777, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 777 {
		t.Fatalf("len = %d, want 777", len(pts))
	}
	bounds := geom.NewRect(0, 0, 1000, 1000)
	for _, p := range pts {
		if !bounds.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
}

func TestPointsInvalidN(t *testing.T) {
	if _, err := Points(0, Config{Network: smallNetworkConfig(1)}); err == nil {
		t.Fatalf("n=0 must error")
	}
}

// TestTrafficConcentratesOnNetwork checks the property the substitution
// must preserve: snapshot points are anisotropic — they cluster near the
// road network rather than covering space uniformly. We verify that the
// fraction of occupied coarse cells is well below one (uniform data of the
// same size fills nearly all cells).
func TestTrafficConcentratesOnNetwork(t *testing.T) {
	cfg := Config{Network: smallNetworkConfig(9), Vehicles: 100, Seed: 10}
	pts, err := Points(4000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const cells = 40
	occupied := make(map[int]bool)
	for _, p := range pts {
		cx := int(p.X / 1000 * cells)
		cy := int(p.Y / 1000 * cells)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		occupied[cy*cells+cx] = true
	}
	frac := float64(len(occupied)) / float64(cells*cells)
	if frac > 0.8 {
		t.Fatalf("snapshot occupies %.0f%% of cells; expected road-constrained (non-uniform) coverage", frac*100)
	}
	if frac < 0.02 {
		t.Fatalf("snapshot occupies only %.1f%% of cells; fleet never left home", frac*100)
	}
}

func TestSimulationStepAdvances(t *testing.T) {
	sim, err := NewSimulation(Config{Network: smallNetworkConfig(11), Vehicles: 20, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Tick() != 0 {
		t.Fatalf("fresh simulation tick = %d", sim.Tick())
	}
	before := sim.Positions()
	for i := 0; i < 20; i++ {
		sim.Step()
	}
	after := sim.Positions()
	if sim.Tick() != 20 {
		t.Fatalf("tick = %d, want 20", sim.Tick())
	}
	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("no vehicle moved in 20 ticks")
	}
	if sim.Network() == nil {
		t.Fatalf("Network accessor returned nil")
	}
}
