// Package berlinmod is the repository's substitute for the BerlinMOD
// benchmark data used in the paper's experiments (Section 6: "about two
// thousand cars report their movement over Berlin City for 28 days. We
// remove the time dimension from the data to deal with snapshots of
// points."). The original data is an external download; this package
// reproduces the property the experiments actually consume — the spatial
// distribution of vehicle positions concentrated on a road network — by
// simulating it:
//
//  1. a road network is generated as a perturbed grid of streets with a
//     randomized subset of edges (kept connected through a spanning tree)
//     plus a few high-speed arterial corridors;
//  2. a fleet of vehicles drives shortest-path (travel-time) trips between
//     home and work nodes with occasional errands, so traffic concentrates
//     on the arterials;
//  3. vehicle positions are sampled at simulation ticks and accumulated
//     into a time-free point set of any requested cardinality, exactly as
//     the paper collapses trajectories into snapshots.
//
// Everything is deterministic in the configured seed.
package berlinmod

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Network is a connected road graph embedded in the plane.
type Network struct {
	// Nodes holds the junction positions.
	Nodes []geom.Point

	// adj[u] lists the road segments leaving node u.
	adj [][]Edge

	bounds geom.Rect
}

// Edge is a directed road segment of the network (every road is stored in
// both directions).
type Edge struct {
	// To is the destination node index.
	To int

	// Length is the Euclidean length of the segment.
	Length float64

	// Speed is the travel speed on the segment; arterials are faster, so
	// shortest-travel-time routes prefer them.
	Speed float64
}

// NetworkConfig parameterizes network generation.
type NetworkConfig struct {
	// Cols, Rows are the street-grid dimensions; defaults 24 x 24.
	Cols, Rows int

	// Bounds is the covered region; default (0,0)-(10000,10000).
	Bounds geom.Rect

	// KeepProb is the probability of keeping a non-spanning-tree street
	// edge; default 0.55 (sparser than a full grid, like a real city).
	KeepProb float64

	// Arterials is the number of high-speed corridors; default 6.
	Arterials int

	// ArterialSpeed and StreetSpeed are the edge speeds; defaults 3 and 1.
	ArterialSpeed, StreetSpeed float64

	// Jitter displaces junctions from exact grid positions by up to this
	// fraction of the cell size; default 0.35.
	Jitter float64

	// Seed drives all randomness.
	Seed int64
}

func (cfg *NetworkConfig) applyDefaults() {
	if cfg.Cols <= 1 {
		cfg.Cols = 24
	}
	if cfg.Rows <= 1 {
		cfg.Rows = 24
	}
	if cfg.Bounds.Area() <= 0 {
		cfg.Bounds = geom.NewRect(0, 0, 10000, 10000)
	}
	if cfg.KeepProb <= 0 || cfg.KeepProb > 1 {
		cfg.KeepProb = 0.55
	}
	if cfg.Arterials < 0 {
		cfg.Arterials = 0
	} else if cfg.Arterials == 0 {
		cfg.Arterials = 6
	}
	if cfg.ArterialSpeed <= 0 {
		cfg.ArterialSpeed = 3
	}
	if cfg.StreetSpeed <= 0 {
		cfg.StreetSpeed = 1
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 0.5 {
		cfg.Jitter = 0.35
	}
}

// GenerateNetwork builds a connected road network per cfg.
func GenerateNetwork(cfg NetworkConfig) *Network {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cols, rows := cfg.Cols, cfg.Rows
	cellW := cfg.Bounds.Width() / float64(cols-1)
	cellH := cfg.Bounds.Height() / float64(rows-1)

	n := &Network{
		Nodes:  make([]geom.Point, cols*rows),
		adj:    make([][]Edge, cols*rows),
		bounds: cfg.Bounds,
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cellW
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * cellH
			x := cfg.Bounds.MinX + float64(c)*cellW + jx
			y := cfg.Bounds.MinY + float64(r)*cellH + jy
			n.Nodes[r*cols+c] = geom.Point{
				X: clamp(x, cfg.Bounds.MinX, cfg.Bounds.MaxX),
				Y: clamp(y, cfg.Bounds.MinY, cfg.Bounds.MaxY),
			}
		}
	}

	// Candidate street edges: the 4-neighborhood of the grid.
	type cand struct{ u, v int }
	var cands []cand
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				cands = append(cands, cand{u, u + 1})
			}
			if r+1 < rows {
				cands = append(cands, cand{u, u + cols})
			}
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	// Keep the network connected: a spanning tree over the shuffled
	// candidates is always kept; the remaining edges survive with KeepProb.
	uf := newUnionFind(len(n.Nodes))
	for _, e := range cands {
		inTree := uf.union(e.u, e.v)
		if inTree || rng.Float64() < cfg.KeepProb {
			n.addRoad(e.u, e.v, cfg.StreetSpeed)
		}
	}

	// Arterials: fast corridors between far-apart boundary nodes. Upgrading
	// the street path's speed concentrates shortest-travel-time routes on
	// these corridors.
	for i := 0; i < cfg.Arterials; i++ {
		from := randomBorderNode(cols, rows, rng)
		to := randomBorderNode(cols, rows, rng)
		if from == to {
			continue
		}
		path := n.ShortestPath(from, to)
		for j := 0; j+1 < len(path); j++ {
			n.setSpeed(path[j], path[j+1], cfg.ArterialSpeed)
		}
	}
	return n
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func randomBorderNode(cols, rows int, rng *rand.Rand) int {
	switch rng.Intn(4) {
	case 0:
		return rng.Intn(cols) // bottom row
	case 1:
		return (rows-1)*cols + rng.Intn(cols) // top row
	case 2:
		return rng.Intn(rows) * cols // left column
	default:
		return rng.Intn(rows)*cols + cols - 1 // right column
	}
}

// addRoad inserts the segment in both directions.
func (n *Network) addRoad(u, v int, speed float64) {
	length := n.Nodes[u].Dist(n.Nodes[v])
	n.adj[u] = append(n.adj[u], Edge{To: v, Length: length, Speed: speed})
	n.adj[v] = append(n.adj[v], Edge{To: u, Length: length, Speed: speed})
}

// setSpeed upgrades the speed of an existing segment (both directions).
func (n *Network) setSpeed(u, v int, speed float64) {
	for i := range n.adj[u] {
		if n.adj[u][i].To == v && n.adj[u][i].Speed < speed {
			n.adj[u][i].Speed = speed
		}
	}
	for i := range n.adj[v] {
		if n.adj[v][i].To == u && n.adj[v][i].Speed < speed {
			n.adj[v][i].Speed = speed
		}
	}
}

// Edges returns the segments leaving node u. The slice is owned by the
// network.
func (n *Network) Edges(u int) []Edge { return n.adj[u] }

// Bounds returns the region the network covers.
func (n *Network) Bounds() geom.Rect { return n.bounds }

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// Connected reports whether every node is reachable from node 0. Generated
// networks always are; tests assert it.
func (n *Network) Connected() bool {
	if len(n.Nodes) == 0 {
		return true
	}
	seen := make([]bool, len(n.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(n.Nodes)
}

// ShortestPath returns the minimum-travel-time node path from u to v
// (inclusive) using Dijkstra's algorithm; edge cost is Length/Speed. It
// returns nil if v is unreachable (generated networks are connected, so this
// only happens for foreign graphs).
func (n *Network) ShortestPath(u, v int) []int {
	if u == v {
		return []int{u}
	}
	const unvisited = -1
	dist := make([]float64, len(n.Nodes))
	prev := make([]int, len(n.Nodes))
	done := make([]bool, len(n.Nodes))
	for i := range dist {
		dist[i] = -1
		prev[i] = unvisited
	}
	dist[u] = 0

	pq := &nodeQueue{{node: u, cost: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		if done[item.node] {
			continue
		}
		done[item.node] = true
		if item.node == v {
			break
		}
		for _, e := range n.adj[item.node] {
			cost := item.cost + e.Length/e.Speed
			if dist[e.To] < 0 || cost < dist[e.To] {
				dist[e.To] = cost
				prev[e.To] = item.node
				heap.Push(pq, nodeItem{node: e.To, cost: cost})
			}
		}
	}
	if prev[v] == unvisited {
		return nil
	}
	var path []int
	for at := v; at != unvisited; at = prev[at] {
		path = append(path, at)
		if at == u {
			break
		}
	}
	// Reverse into u..v order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != u {
		return nil
	}
	return path
}

// nodeItem / nodeQueue implement the Dijkstra priority queue.
type nodeItem struct {
	node int
	cost float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].cost < q[j].cost }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// unionFind is a standard disjoint-set structure used to keep the generated
// network connected.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether a merge happened
// (false when they were already connected).
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

// validate reports configuration errors for Simulation construction.
func (cfg *NetworkConfig) validate() error {
	if cfg.Cols < 0 || cfg.Rows < 0 {
		return fmt.Errorf("berlinmod: negative grid dimensions %dx%d", cfg.Cols, cfg.Rows)
	}
	return nil
}
