package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/kernel"
	"repro/internal/stats"
)

// JSONReport is the machine-readable form of a benchmark session, written by
// `knnbench -json <path>`. The repo root keeps one such file per PR
// (BENCH_PR1.json, ...) as the performance trajectory of the project; the
// Micro section carries hot-path micro-benchmark numbers (go test -bench)
// recorded alongside the experiment sweeps.
type JSONReport struct {
	Schema      string           `json:"schema"`
	Scale       string           `json:"scale"`
	Host        JSONHost         `json:"host"`
	Experiments []JSONExperiment `json:"experiments"`
	Micro       json.RawMessage  `json:"micro,omitempty"`
}

// JSONReportSchema identifies the current report layout.
const JSONReportSchema = "knnbench/v1"

// JSONHost records the hardware/dispatch context the numbers were measured
// under: vectorized-kernel results are only comparable across hosts with
// the same dispatched kernel and CPU feature set.
type JSONHost struct {
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	NumCPU       int    `json:"num_cpu"`
	CPUFeatures  string `json:"cpu_features,omitempty"`
	ActiveKernel string `json:"active_kernel"`
}

// JSONExperiment is one figure or ablation sweep.
type JSONExperiment struct {
	ID     string    `json:"id"`
	Title  string    `json:"title"`
	XLabel string    `json:"x_label"`
	Expect string    `json:"paper_expectation"`
	Rows   []JSONRow `json:"rows"`
}

// JSONRow is one x-axis position of a sweep.
type JSONRow struct {
	X     string     `json:"x"`
	Plans []JSONPlan `json:"plans"`
}

// JSONPlan is one evaluated plan at one sweep position.
type JSONPlan struct {
	Name    string          `json:"name"`
	NsPerOp int64           `json:"ns_per_op"`
	Result  int             `json:"result_cardinality"`
	Stats   *stats.Counters `json:"stats,omitempty"`
}

// NewJSONReport converts measured results into the machine-readable report.
func NewJSONReport(scale Scale, results []*Result) *JSONReport {
	rep := &JSONReport{
		Schema: JSONReportSchema,
		Scale:  string(scale),
		Host: JSONHost{
			GOOS:         runtime.GOOS,
			GOARCH:       runtime.GOARCH,
			NumCPU:       runtime.NumCPU(),
			CPUFeatures:  kernel.CPUFeatures(),
			ActiveKernel: kernel.Active(),
		},
	}
	for _, res := range results {
		je := JSONExperiment{
			ID:     res.Experiment.ID,
			Title:  res.Experiment.Title,
			XLabel: res.Experiment.XLabel,
			Expect: res.Experiment.Expect,
		}
		names := res.PlanNames()
		for _, row := range res.Rows {
			jr := JSONRow{X: row.X}
			for _, name := range names {
				jr.Plans = append(jr.Plans, JSONPlan{
					Name:    name,
					NsPerOp: row.Times[name].Nanoseconds(),
					Result:  row.Counts[name],
					Stats:   row.Stats[name],
				})
			}
			je.Rows = append(je.Rows, jr)
		}
		rep.Experiments = append(rep.Experiments, je)
	}
	return rep
}

// WriteFile writes the report as indented JSON to path.
func (r *JSONReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling JSON report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing JSON report: %w", err)
	}
	return nil
}
