package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/index/kdtree"
	"repro/internal/index/overlay"
	"repro/internal/index/quadtree"
	"repro/internal/index/rtree"
	"repro/internal/kernel"
	"repro/internal/locality"
	"repro/internal/qcache"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Ablations are experiments beyond the paper's figures that isolate this
// repository's design choices: the contour early-stop of Block-Marking
// preprocessing, the index-agnosticism claim across four index families,
// the 2-kNN-select locality refinement (covered inside fig26), the
// parallel join, the concurrent-serving contention sweep, and the
// columnar-layout scan comparison. They run through the same harness as
// the figures.
var Ablations = []Experiment{ablPreprocess, ablIndexKinds, ablParallel, ablContention, ablLayout, ablKernel, ablShards, ablCancel, ablBatch, ablCache, ablMutate, ablDist}

// ParallelExperiments are the concurrency-focused subset run by
// `knnbench -parallel` (the BENCH_PR2.json trajectory).
var ParallelExperiments = []Experiment{ablParallel, ablContention}

// AnyByID looks up an experiment among both figures and ablations.
func AnyByID(id string) (Experiment, bool) {
	if e, ok := ByID(id); ok {
		return e, true
	}
	for _, e := range Ablations {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- Ablation: contour early-stop vs exhaustive preprocessing ---

var ablPreprocess = Experiment{
	ID:     "abl-preprocess",
	Title:  "Block-Marking preprocessing: contour early-stop vs exhaustive block checks (select-inner-join workload)",
	XLabel: "|outer|",
	Expect: "the contour stop skips distant blocks, so it wins and widens with |outer|; both variants return identical results",
	Cases: func(scale Scale) []Case {
		innerN := 20000
		if scale == ScalePaper {
			innerN = 160000
		}
		inner := BerlinMODRelation("fig19-inner", innerN)
		var cases []Case
		for _, outerN := range sweep(scale,
			[]int{4000, 16000, 64000},
			[]int{64000, 256000, 1024000}) {
			outer := BerlinMODRelation("fig19-outer", outerN)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", outerN),
				Plans: []Plan{
					{Name: "contour", Run: func(c *stats.Counters) int {
						return len(core.SelectInnerJoinBlockMarking(outer, inner, focal, kDefault, kDefault,
							core.BlockMarkingOptions{}, c))
					}},
					{Name: "exhaustive", Run: func(c *stats.Counters) int {
						return len(core.SelectInnerJoinBlockMarking(outer, inner, focal, kDefault, kDefault,
							core.BlockMarkingOptions{Exhaustive: true}, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Ablation: index families ---

var ablIndexKinds = Experiment{
	ID:     "abl-index",
	Title:  "index-agnosticism: Block-Marking select-inner-join over grid, quadtree, k-d tree and R-tree",
	XLabel: "|outer|",
	Expect: "all index families return identical results; space-tiling indexes benefit from the contour stop",
	Cases: func(scale Scale) []Case {
		innerN := 20000
		if scale == ScalePaper {
			innerN = 160000
		}
		var cases []Case
		for _, outerN := range sweep(scale, []int{4000, 16000}, []int{64000, 256000}) {
			// Build every relation up front so dataset generation and index
			// construction stay out of the measurements.
			gridOuter := BerlinMODRelation("fig19-outer", outerN)
			gridInner := BerlinMODRelation("fig19-inner", innerN)
			var plans []Plan
			plans = append(plans, Plan{Name: "grid", Run: func(c *stats.Counters) int {
				return len(core.SelectInnerJoinBlockMarking(gridOuter, gridInner,
					focal, kDefault, kDefault, core.BlockMarkingOptions{}, c))
			}})
			for _, kind := range []string{"quadtree", "kdtree", "rtree"} {
				outer := variantRelation(kind, "fig19-outer", outerN)
				inner := variantRelation(kind, "fig19-inner", innerN)
				plans = append(plans, Plan{Name: kind, Run: func(c *stats.Counters) int {
					return len(core.SelectInnerJoinBlockMarking(outer, inner,
						focal, kDefault, kDefault, core.BlockMarkingOptions{}, c))
				}})
			}
			cases = append(cases, Case{X: fmt.Sprintf("%d", outerN), Plans: plans})
		}
		return cases
	},
}

// variantRelation builds (and memoizes) a non-grid relation over a
// BerlinMOD workload.
func variantRelation(kind, role string, n int) *core.Relation {
	key := fmt.Sprintf("%s/%s/%d", kind, role, n)
	datasetCache.Lock()
	if rel, ok := datasetCache.relations[key]; ok {
		datasetCache.Unlock()
		return rel
	}
	datasetCache.Unlock()
	pts := BerlinMODPoints(role, n)

	var (
		ix  index.Index
		err error
	)
	switch kind {
	case "quadtree":
		ix, err = quadtree.New(pts, quadtree.Options{LeafCapacity: DefaultPerCell, Bounds: Bounds})
	case "kdtree":
		ix, err = kdtree.New(pts, kdtree.Options{LeafCapacity: DefaultPerCell, Bounds: Bounds})
	case "rtree":
		ix, err = rtree.New(pts, rtree.Options{LeafCapacity: DefaultPerCell})
	default:
		panic(fmt.Sprintf("bench: unknown index variant %q", kind))
	}
	if err != nil {
		panic(fmt.Sprintf("bench: building %s relation: %v", kind, err)) // fixed config; cannot fail
	}
	rel := core.NewRelation(ix)
	datasetCache.Lock()
	datasetCache.relations[key] = rel
	datasetCache.Unlock()
	return rel
}

// --- Ablation: parallel kNN-join scaling ---

var ablParallel = Experiment{
	ID:     "abl-parallel",
	Title:  "parallel kNN-join: worker scaling on a 20k x 20k BerlinMOD join (k=10)",
	XLabel: "workload",
	Expect: "near-linear scaling until memory bandwidth saturates; identical results at every worker count",
	Cases: func(scale Scale) []Case {
		n := 20000
		if scale == ScalePaper {
			n = 100000
		}
		outer := BerlinMODRelation("fig19-outer", n)
		inner := BerlinMODRelation("fig19-inner", n)
		var plans []Plan
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			plans = append(plans, Plan{
				Name: fmt.Sprintf("workers=%d", workers),
				Run: func(c *stats.Counters) int {
					return len(core.KNNJoinParallel(outer, inner, kDefault, workers, c))
				},
			})
		}
		return []Case{{X: fmt.Sprintf("%dx%d", n, n), Plans: plans}}
	},
}

// --- Ablation: concurrent query serving under contention ---

// ablContention measures the cost of serving a fixed batch of kNN-selects
// from 1, 4 and 16 goroutines over one shared relation. "pooled" is the
// repository's concurrency layer (each query borrows a searcher handle from
// the relation's pool); "mutex" is the naive alternative — one shared
// searcher behind a lock — which serializes every neighborhood computation
// and shows what the pool buys.
var ablContention = Experiment{
	ID:     "abl-contention",
	Title:  "concurrent query serving: a fixed kNN-select batch over one shared BerlinMOD index, pooled handles vs a mutex-guarded searcher",
	XLabel: "goroutines",
	Expect: "pooled handles keep total time near-flat (or falling) with more goroutines; the mutex serializes and stays flat at best; identical result cardinality everywhere",
	Cases: func(scale Scale) []Case {
		n, queries := 20000, 4096
		if scale == ScalePaper {
			n, queries = 100000, 16384
		}
		rel := BerlinMODRelation("fig19-inner", n)
		probes := UniformPoints("contention/probes", queries)
		var cases []Case
		for _, g := range []int{1, 4, 16} {
			g := g
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", g),
				Plans: []Plan{
					{Name: "pooled", Run: func(c *stats.Counters) int {
						return contentionBatch(probes, g, c, func(q geom.Point, ctr *stats.Counters) int {
							h := rel.Acquire()
							defer h.Release()
							return h.S.Neighborhood(q, kDefault, ctr).Len()
						})
					}},
					{Name: "mutex", Run: func(c *stats.Counters) int {
						var mu sync.Mutex
						return contentionBatch(probes, g, c, func(q geom.Point, ctr *stats.Counters) int {
							mu.Lock()
							defer mu.Unlock()
							return rel.S.Neighborhood(q, kDefault, ctr).Len()
						})
					}},
				},
			})
		}
		return cases
	},
}

// --- Ablation: columnar (SoA) span scan vs array-of-structs scan ---

// ablLayout isolates the PR 3 storage change: the same radius filter — the
// distance-scan inner loop underneath every query shape — runs once over
// the relation's flat X/Y span columns ("soa-span") and once over an
// AoS shadow copy of the identical blocks ([]geom.Point per block,
// "aos-struct"). Identical counts prove the layouts hold the same points;
// the time ratio is the layout win recorded in the perf trajectory.
var ablLayout = Experiment{
	ID:     "abl-layout",
	Title:  "point-storage layout: columnar SoA span scan vs AoS struct scan (full-relation radius filter, BerlinMOD)",
	XLabel: "|points|",
	Expect: "the flat X/Y span scan is at parity or faster than the AoS struct scan at every cardinality; identical counts",
	Cases: func(scale Scale) []Case {
		// The squared radius is loop-invariant: hoisted out of the timed
		// scans so the measurement isolates the storage layouts instead of
		// re-deriving the bound per point.
		const radiusSq = 500.0 * 500.0
		probes := UniformPoints("layout/probes", 64)
		var cases []Case
		for _, n := range sweep(scale, []int{20000, 80000}, []int{160000, 640000}) {
			rel := BerlinMODRelation("layout", n)
			blocks := rel.Ix.Blocks()
			// AoS shadow build: the same points in the same block order,
			// materialized as one []geom.Point per block.
			shadow := make([][]geom.Point, len(blocks))
			for i, b := range blocks {
				shadow[i] = b.AppendPoints(nil)
			}
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", n),
				Plans: []Plan{
					{Name: "soa-span", Run: func(c *stats.Counters) int {
						total := 0
						for _, q := range probes {
							for _, b := range blocks {
								total += b.CountWithinSq(q, radiusSq)
							}
						}
						return total
					}},
					{Name: "aos-struct", Run: func(c *stats.Counters) int {
						total := 0
						for _, q := range probes {
							for _, pts := range shadow {
								for _, p := range pts {
									if p.DistSq(q) <= radiusSq {
										total++
									}
								}
							}
						}
						return total
					}},
				},
			})
		}
		return cases
	},
}

// --- Ablation: batched distance kernels (scalar reference vs AVX2) ---

// kernelPlans wraps one workload into a plan per available kernel
// implementation, switching dispatch with kernel.Use around the timed run.
// On builds or hosts without a fast path (purego, non-AVX2 CPUs) only the
// scalar plan runs, so the ablation degrades to a baseline recording.
func kernelPlans(run func(c *stats.Counters) int) []Plan {
	var plans []Plan
	for _, name := range kernel.Available() {
		plans = append(plans, Plan{Name: "kernel=" + name, Run: func(c *stats.Counters) int {
			restore, err := kernel.Use(name)
			if err != nil {
				panic(fmt.Sprintf("bench: switching kernel: %v", err)) // registered name; cannot fail
			}
			defer restore()
			return run(c)
		}})
	}
	return plans
}

// ablKernel isolates the PR 5 batched-kernel layer on the PR 3/PR 4
// workloads: the relation-wide block radius scan (the abl-layout primitive)
// at the paper-faithful 16-point grid grain and at a production 256-point
// grain, the basic kNN-join and the Counting select-inner-join (whose
// per-tuple threshold scan is the fused MinDistSq kernel) at the production
// grain, and the sharded scatter/gather join. Identical result
// cardinalities across plans double as a bit-exactness check at workload
// scale; the timing ratio is the vectorization win. Below the dispatch
// grain (16-point cells) the plans converge by design — the scalar loop is
// the right kernel there, which the grain sweep makes visible.
var ablKernel = Experiment{
	ID:     "abl-kernel",
	Title:  "batched distance kernels: scalar reference vs AVX2 dispatch across scan grain and query shape (BerlinMOD)",
	XLabel: "workload",
	Expect: "identical cardinalities everywhere; AVX2 wins grow with block grain on the raw scans (target >=1.3x at 256-point cells), stay parity at the 16-point grain and on neighborhood-dominated joins",
	Cases: func(scale Scale) []Case {
		const radiusSq = 500.0 * 500.0
		probes := UniformPoints("layout/probes", 64)
		scanN := 80000
		joinN := 20000
		if scale == ScalePaper {
			scanN, joinN = 640000, 100000
		}

		var cases []Case
		for _, perCell := range []int{16, 256} {
			blocks := BerlinMODRelationCell("layout", scanN, perCell).Ix.Blocks()
			cases = append(cases, Case{
				X: fmt.Sprintf("scan-cells%d-%d", perCell, scanN),
				Plans: kernelPlans(func(c *stats.Counters) int {
					total := 0
					for _, q := range probes {
						for _, b := range blocks {
							total += b.CountWithinSq(q, radiusSq)
						}
					}
					return total
				}),
			})
		}

		outer := BerlinMODRelationCell("fig19-outer", joinN, 256)
		inner := BerlinMODRelationCell("fig19-inner", joinN, 256)
		cases = append(cases,
			Case{
				X: fmt.Sprintf("join-cells256-%d", joinN),
				Plans: kernelPlans(func(c *stats.Counters) int {
					return len(core.KNNJoin(outer, inner, kDefault, c))
				}),
			},
			Case{
				X: fmt.Sprintf("counting-ksel64-%d", joinN),
				Plans: kernelPlans(func(c *stats.Counters) int {
					return len(core.SelectInnerJoinCounting(outer, inner, focal, kDefault, 64, c))
				}),
			},
		)

		outerPts := BerlinMODPoints("fig19-outer", joinN)
		innerPts := BerlinMODPoints("fig19-inner", joinN)
		build := func(st *geom.PointStore) (index.Index, error) {
			if st.Len() == 0 {
				return grid.NewFromStore(st, grid.Options{TargetPerCell: 256, Bounds: Bounds})
			}
			return grid.NewFromStore(st, grid.Options{TargetPerCell: 256})
		}
		mkShards := func(pts []geom.Point) shard.Group {
			rel, err := shard.New(pts, 4, shard.PolicySpatial, 0, build)
			if err != nil {
				panic(fmt.Sprintf("bench: building sharded relation: %v", err)) // fixed config; cannot fail
			}
			return rel.Group()
		}
		outerSh, innerSh := mkShards(outerPts), mkShards(innerPts)
		cases = append(cases, Case{
			X: fmt.Sprintf("sharded-join-s4-%d", joinN),
			Plans: kernelPlans(func(c *stats.Counters) int {
				return len(shard.Join(nil, outerSh, innerSh, kDefault, 1, c))
			}),
		})
		return cases
	},
}

// --- Ablation: sharded scatter/gather vs the single-relation baseline ---

// ShardCounts is the shard-count sweep of the abl-shards experiment;
// `knnbench -shards 1,2,4` overrides it.
var ShardCounts = []int{1, 2, 4, 8}

// ablShards isolates the PR 4 sharding subsystem: the same kNN-join runs
// over one un-sharded relation pair ("single", the baseline) and over
// hash- and spatially-partitioned ShardedRelation pairs at each shard
// count. The harness's per-row cardinality agreement doubles as an
// exactness check at benchmark scale; the timing series is the
// scatter/gather overhead curve (each probe fans out to S per-shard
// candidate generations, so single-threaded cost grows with S — the payoff
// is per-shard parallelism and the horizontal-scaling story, not
// single-core speed).
var ablShards = Experiment{
	ID:     "abl-shards",
	Title:  "sharded scatter/gather: kNN-join over S hash/spatial shards vs the single-relation baseline (k=10, BerlinMOD)",
	XLabel: "shards",
	Expect: "identical result cardinality at every shard count and policy; per-probe cost grows with the per-shard fan-out, spatial partitioning keeps distant shards cheap",
	Cases: func(scale Scale) []Case {
		n := 20000
		if scale == ScalePaper {
			n = 100000
		}
		outerPts := BerlinMODPoints("fig19-outer", n)
		innerPts := BerlinMODPoints("fig19-inner", n)
		outerSingle := BerlinMODRelation("fig19-outer", n)
		innerSingle := BerlinMODRelation("fig19-inner", n)

		build := func(st *geom.PointStore) (index.Index, error) {
			// Fit each shard's grid to its own extent (as the public
			// NewShardedRelation does): a spatial shard's cells then tile its
			// tile, not the whole region.
			if st.Len() == 0 {
				return grid.NewFromStore(st, grid.Options{TargetPerCell: DefaultPerCell, Bounds: Bounds})
			}
			return grid.NewFromStore(st, grid.Options{TargetPerCell: DefaultPerCell})
		}
		sharded := func(pts []geom.Point, s int, p shard.Policy) shard.Group {
			rel, err := shard.New(pts, s, p, 0, build)
			if err != nil {
				panic(fmt.Sprintf("bench: building sharded relation: %v", err)) // fixed config; cannot fail
			}
			return rel.Group()
		}

		var cases []Case
		for _, s := range ShardCounts {
			s := s
			outerHash, innerHash := sharded(outerPts, s, shard.PolicyHash), sharded(innerPts, s, shard.PolicyHash)
			outerSp, innerSp := sharded(outerPts, s, shard.PolicySpatial), sharded(innerPts, s, shard.PolicySpatial)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", s),
				Plans: []Plan{
					{Name: "single", Run: func(c *stats.Counters) int {
						h := innerSingle.Acquire()
						defer h.Release()
						return len(core.KNNJoin(outerSingle, h, kDefault, c))
					}},
					{Name: "hash", Run: func(c *stats.Counters) int {
						return len(shard.Join(nil, outerHash, innerHash, kDefault, 1, c))
					}},
					{Name: "spatial", Run: func(c *stats.Counters) int {
						return len(shard.Join(nil, outerSp, innerSp, kDefault, 1, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Ablation: batched multi-query execution vs a per-focal loop ---

// ablBatch isolates the PR 8 batch driver: the same set of kNN-select focals
// runs once through a sequential per-focal loop (one independent index walk
// per query, the pre-batching serving path) and once through
// batch.Driver.KNNSelect (Z-order grouped focals, one shared block walk and
// batched distance kernels per group). Focals come from tight clusters — the
// served-workload shape the batch route exists for, many concurrent queries
// about the same hot area — so a Z-order group shares most of its block
// frontier. Identical result cardinality per case is the harness's
// exactness check; the timing ratio at each batch size is the amortization
// curve. Both plans run the same focal count, so the plan-time ratio is the
// per-query (ns/query) ratio directly.
var ablBatch = Experiment{
	ID:     "abl-batch",
	Title:  "batched kNN-select: shared block walk over Z-ordered focals vs a per-focal sequential loop (k=10, BerlinMOD, clustered focals)",
	XLabel: "workload",
	Expect: "identical cardinalities everywhere; the shared walk's win grows with batch size (target >=1.5x per query at batch >=64 on 16-point cells) and shrinks at coarse 256-point cells where per-block work already amortizes the walk",
	Cases: func(scale Scale) []Case {
		n := 80000
		if scale == ScalePaper {
			n = 640000
		}
		focalPool := ClusteredPoints("abl-batch/focals", 8, 64, 100)
		var cases []Case
		for _, perCell := range []int{16, 256} {
			rel := BerlinMODRelationCell("abl-batch", n, perCell)
			for _, batchN := range []int{1, 16, 64, 256} {
				focals := focalPool[:batchN]
				cases = append(cases, Case{
					X: fmt.Sprintf("batch%d-cells%d-%d", batchN, perCell, n),
					Plans: []Plan{
						{Name: "seq-loop", Run: func(c *stats.Counters) int {
							h := rel.Acquire()
							defer h.Release()
							total := 0
							for _, q := range focals {
								total += h.S.Neighborhood(q, kDefault, c).Len()
							}
							return total
						}},
						{Name: "batched", Run: func(c *stats.Counters) int {
							h := rel.Acquire()
							defer h.Release()
							d := batch.Acquire()
							defer batch.Release(d)
							total := 0
							for _, nb := range d.KNNSelect(h, focals, kDefault, c) {
								total += nb.Len()
							}
							return total
						}},
					},
				})
			}
		}
		return cases
	},
}

// --- Ablation: epoch-keyed result cache on a skewed focal workload ---

// ablCache isolates the PR 8 result cache: a fixed stream of kNN-selects
// whose focals repeat (the skew a served workload exhibits) runs once
// recomputing every query and once through a fresh qcache — first touch of
// each distinct focal computes and memoizes its stable-ID answer, repeats
// are served from the cache. The distinct-focal sweep moves the hit rate
// (queries-distinct)/queries from ~98% down to 75%, which is the win curve;
// the cache is rebuilt inside every timed run so each measurement includes
// its own cold misses. Equal totals across plans prove hits return the
// computed answer's cardinality.
var ablCache = Experiment{
	ID:     "abl-cache",
	Title:  "query result cache: skewed kNN-select stream through qcache vs always recomputing (k=10, BerlinMOD)",
	XLabel: "distinct focals",
	Expect: "identical cardinalities everywhere; the cached plan's win tracks the hit rate, shrinking as the distinct-focal count grows",
	Cases: func(scale Scale) []Case {
		n, queries := 20000, 4096
		if scale == ScalePaper {
			n, queries = 100000, 16384
		}
		rel := BerlinMODRelation("abl-cache", n)
		// The stable-ID table a serving layer keeps (the cache stores int32
		// IDs, not points) is prebuilt outside the timed region, first
		// occurrence winning for co-located points as in the server.
		pts := BerlinMODPoints("abl-cache", n)
		idOf := make(map[geom.Point]int32, len(pts))
		for i, p := range pts {
			if _, ok := idOf[p]; !ok {
				idOf[p] = int32(i)
			}
		}
		var cases []Case
		for _, distinct := range []int{64, 256, 1024} {
			focals := UniformPoints("abl-cache/focals", distinct)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", distinct),
				Plans: []Plan{
					{Name: "uncached", Run: func(c *stats.Counters) int {
						h := rel.Acquire()
						defer h.Release()
						total := 0
						for i := 0; i < queries; i++ {
							total += h.S.Neighborhood(focals[i%distinct], kDefault, c).Len()
						}
						return total
					}},
					{Name: "cached", Run: func(c *stats.Counters) int {
						h := rel.Acquire()
						defer h.Release()
						cache := qcache.New(4096)
						total := 0
						for i := 0; i < queries; i++ {
							q := focals[i%distinct]
							key := qcache.Key{Epoch: 1, FX: q.X, FY: q.Y, K: kDefault, Shape: qcache.ShapeKNNSelect}
							if ids, ok := cache.Get(key); ok {
								c.AddCacheHit()
								total += len(ids)
								continue
							}
							c.AddCacheMiss()
							nb := h.S.Neighborhood(q, kDefault, c)
							ids := make([]int32, 0, nb.Len())
							for _, p := range nb.Points {
								ids = append(ids, idOf[p])
							}
							cache.Put(key, ids)
							total += len(ids)
						}
						return total
					}},
				},
			})
		}
		return cases
	},
}

// contentionBatch splits the probe batch across g goroutines and sums the
// per-query result sizes (the cardinality the harness verifies across
// plans).
func contentionBatch(probes []geom.Point, g int, c *stats.Counters, query func(geom.Point, *stats.Counters) int) int {
	var total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			found := 0
			for i := w; i < len(probes); i += g {
				found += query(probes[i], c)
			}
			total.Add(int64(found))
		}(w)
	}
	wg.Wait()
	return int(total.Load())
}

// --- Ablation: cancellation checkpoint overhead ---

// liveCtx never expires but carries a live Done channel, so a handle bound
// to it pays the full per-checkpoint polling cost (the non-blocking channel
// select); an unbound handle takes the nil-channel fast path. The cancel
// func is retained so the context stays live for the process lifetime.
var liveCtx, liveCtxKeepAlive = context.WithCancel(context.Background())

var _ = liveCtxKeepAlive

// ablCancel isolates the PR 6 robustness layer: the same sequential
// kNN-join runs on an unbound searcher handle (checkpoints take the
// nil-binding fast path — the cost every context-free query pays) and on a
// handle bound to a live, never-expiring context (checkpoints poll the Done
// channel — the cost WithContext adds). Checkpoints fire once per block
// span, never per point, so the delta bounds the whole feature's overhead.
var ablCancel = Experiment{
	ID:     "abl-cancel",
	Title:  "cancellation checkpoints: kNN-join on an unbound handle vs a live bound context (k=10, BerlinMOD)",
	XLabel: "|outer| = |inner|",
	Expect: "polling is per block span, off the per-point path: the bound-context join stays within ~2% of the unbound baseline; identical results",
	Cases: func(scale Scale) []Case {
		sizes := []int{5000, 20000}
		if scale == ScalePaper {
			sizes = []int{20000, 100000}
		}
		var cases []Case
		for _, n := range sizes {
			outer := BerlinMODRelation("fig19-outer", n)
			inner := BerlinMODRelation("fig19-inner", n)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", n),
				Plans: []Plan{
					{Name: "unbound", Run: func(c *stats.Counters) int {
						h := inner.Acquire()
						defer h.Release()
						return len(core.KNNJoin(outer, h, kDefault, c))
					}},
					{Name: "bound-ctx", Run: func(c *stats.Counters) int {
						h, err := inner.AcquireCtx(liveCtx)
						if err != nil {
							panic(err) // liveCtx never expires
						}
						defer h.Release()
						return len(core.KNNJoin(outer, h, kDefault, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Ablation: mutable-relation delta overlay ---

// ablMutate isolates the PR 9 delta overlay: the same kNN-select stream
// runs over an overlay snapshot holding a growing delta fraction (half
// fresh inserts, half base tombstones) and over the block-contiguous
// rebuild of the identical live set — the state an epoch-swapped merge
// produces. Equal cardinalities are the post-compact parity proof; the
// ns/op gap between the two plans is the price of reading through the
// overlay, and the single-plan merge cases price the compaction itself
// (live-set extraction + fresh grid build) at each residency level. At
// fraction 0 the overlay snapshot IS the base index, so that row doubles
// as the static baseline the compacted plan must sit within noise of.
var ablMutate = Experiment{
	ID:     "abl-mutate",
	Title:  "mutable relations: kNN-select through a delta overlay vs the compacted rebuild of the same live set (k=10, BerlinMOD, 64 clustered focals)",
	XLabel: "delta fraction",
	Expect: "identical cardinalities between overlay and compacted at every fraction; overlay cost grows with delta residency while compacted stays flat at the fraction-0 baseline, and merge cost scales with the live set, not the delta",
	Cases: func(scale Scale) []Case {
		n := 40000
		if scale == ScalePaper {
			n = 200000
		}
		focals := ClusteredPoints("abl-mutate/focals", 8, 8, 100)
		var cases []Case
		for _, pct := range []int{0, 1, 10, 50} {
			base := BerlinMODRelationCell("abl-mutate", n, 64).Ix
			ov := overlay.NewStore(base, 64)
			m := n * pct / 100
			ins := UniformPoints(fmt.Sprintf("abl-mutate/delta%d", pct), m/2)
			next := int32(n)
			for _, p := range ins {
				ov.Insert(p, next)
				next++
			}
			for i := 0; i < m-len(ins); i++ {
				// Stride 7 is coprime with the sweep sizes, so every removal
				// hits a distinct live base ID.
				ov.Remove(int32(i * 7 % n))
			}
			snap := ov.Snapshot()
			live := ov.LiveStore()
			compacted, err := grid.NewFromStore(live, grid.Options{TargetPerCell: 64, Bounds: snap.Bounds()})
			if err != nil {
				panic(fmt.Sprintf("bench: abl-mutate compacted rebuild: %v", err))
			}
			sOverlay := locality.NewSearcher(snap)
			sCompacted := locality.NewSearcher(compacted)
			cases = append(cases,
				Case{
					X: fmt.Sprintf("%d%%-%d", pct, n),
					Plans: []Plan{
						{Name: "overlay", Run: func(c *stats.Counters) int {
							total := 0
							for _, q := range focals {
								total += sOverlay.Neighborhood(q, kDefault, c).Len()
							}
							return total
						}},
						{Name: "compacted", Run: func(c *stats.Counters) int {
							total := 0
							for _, q := range focals {
								total += sCompacted.Neighborhood(q, kDefault, c).Len()
							}
							return total
						}},
					},
				},
				// The merge rows price compaction itself, with the same column
				// names so the reporter aligns them: "overlay" extracts the
				// live set out of the delta overlay and rebuilds, "compacted"
				// rebuilds from already-contiguous data (copy + build). The
				// gap between them is the extraction overhead; both scale
				// with the live set, not the delta.
				Case{
					X: fmt.Sprintf("merge-%d%%-%d", pct, n),
					Plans: []Plan{
						{Name: "overlay", Run: func(c *stats.Counters) int {
							ls := ov.LiveStore()
							if _, err := grid.NewFromStore(ls, grid.Options{TargetPerCell: 64, Bounds: snap.Bounds()}); err != nil {
								panic(fmt.Sprintf("bench: abl-mutate merge: %v", err))
							}
							return ls.Len()
						}},
						{Name: "compacted", Run: func(c *stats.Counters) int {
							cp := geom.NewPointStore(live.Len())
							for i := 0; i < live.Len(); i++ {
								cp.AppendWithID(live.At(i), live.ID(i))
							}
							if _, err := grid.NewFromStore(cp, grid.Options{TargetPerCell: 64, Bounds: snap.Bounds()}); err != nil {
								panic(fmt.Sprintf("bench: abl-mutate rebuild: %v", err))
							}
							return cp.Len()
						}},
					},
				})
		}
		return cases
	},
}
