package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/index/kdtree"
	"repro/internal/index/quadtree"
	"repro/internal/index/rtree"
	"repro/internal/stats"
)

// Ablations are experiments beyond the paper's figures that isolate this
// repository's design choices: the contour early-stop of Block-Marking
// preprocessing, the index-agnosticism claim across four index families,
// the 2-kNN-select locality refinement (covered inside fig26), and the
// parallel join. They run through the same harness as the figures.
var Ablations = []Experiment{ablPreprocess, ablIndexKinds, ablParallel}

// AnyByID looks up an experiment among both figures and ablations.
func AnyByID(id string) (Experiment, bool) {
	if e, ok := ByID(id); ok {
		return e, true
	}
	for _, e := range Ablations {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- Ablation: contour early-stop vs exhaustive preprocessing ---

var ablPreprocess = Experiment{
	ID:     "abl-preprocess",
	Title:  "Block-Marking preprocessing: contour early-stop vs exhaustive block checks (select-inner-join workload)",
	XLabel: "|outer|",
	Expect: "the contour stop skips distant blocks, so it wins and widens with |outer|; both variants return identical results",
	Cases: func(scale Scale) []Case {
		innerN := 20000
		if scale == ScalePaper {
			innerN = 160000
		}
		inner := BerlinMODRelation("fig19-inner", innerN)
		var cases []Case
		for _, outerN := range sweep(scale,
			[]int{4000, 16000, 64000},
			[]int{64000, 256000, 1024000}) {
			outer := BerlinMODRelation("fig19-outer", outerN)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", outerN),
				Plans: []Plan{
					{Name: "contour", Run: func(c *stats.Counters) int {
						return len(core.SelectInnerJoinBlockMarking(outer, inner, focal, kDefault, kDefault,
							core.BlockMarkingOptions{}, c))
					}},
					{Name: "exhaustive", Run: func(c *stats.Counters) int {
						return len(core.SelectInnerJoinBlockMarking(outer, inner, focal, kDefault, kDefault,
							core.BlockMarkingOptions{Exhaustive: true}, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Ablation: index families ---

var ablIndexKinds = Experiment{
	ID:     "abl-index",
	Title:  "index-agnosticism: Block-Marking select-inner-join over grid, quadtree, k-d tree and R-tree",
	XLabel: "|outer|",
	Expect: "all index families return identical results; space-tiling indexes benefit from the contour stop",
	Cases: func(scale Scale) []Case {
		innerN := 20000
		if scale == ScalePaper {
			innerN = 160000
		}
		var cases []Case
		for _, outerN := range sweep(scale, []int{4000, 16000}, []int{64000, 256000}) {
			// Build every relation up front so dataset generation and index
			// construction stay out of the measurements.
			gridOuter := BerlinMODRelation("fig19-outer", outerN)
			gridInner := BerlinMODRelation("fig19-inner", innerN)
			var plans []Plan
			plans = append(plans, Plan{Name: "grid", Run: func(c *stats.Counters) int {
				return len(core.SelectInnerJoinBlockMarking(gridOuter, gridInner,
					focal, kDefault, kDefault, core.BlockMarkingOptions{}, c))
			}})
			for _, kind := range []string{"quadtree", "kdtree", "rtree"} {
				outer := variantRelation(kind, "fig19-outer", outerN)
				inner := variantRelation(kind, "fig19-inner", innerN)
				plans = append(plans, Plan{Name: kind, Run: func(c *stats.Counters) int {
					return len(core.SelectInnerJoinBlockMarking(outer, inner,
						focal, kDefault, kDefault, core.BlockMarkingOptions{}, c))
				}})
			}
			cases = append(cases, Case{X: fmt.Sprintf("%d", outerN), Plans: plans})
		}
		return cases
	},
}

// variantRelation builds (and memoizes) a non-grid relation over a
// BerlinMOD workload.
func variantRelation(kind, role string, n int) *core.Relation {
	key := fmt.Sprintf("%s/%s/%d", kind, role, n)
	datasetCache.Lock()
	if rel, ok := datasetCache.relations[key]; ok {
		datasetCache.Unlock()
		return rel
	}
	datasetCache.Unlock()
	pts := BerlinMODPoints(role, n)

	var (
		ix  index.Index
		err error
	)
	switch kind {
	case "quadtree":
		ix, err = quadtree.New(pts, quadtree.Options{LeafCapacity: DefaultPerCell, Bounds: Bounds})
	case "kdtree":
		ix, err = kdtree.New(pts, kdtree.Options{LeafCapacity: DefaultPerCell, Bounds: Bounds})
	case "rtree":
		ix, err = rtree.New(pts, rtree.Options{LeafCapacity: DefaultPerCell})
	default:
		panic(fmt.Sprintf("bench: unknown index variant %q", kind))
	}
	if err != nil {
		panic(fmt.Sprintf("bench: building %s relation: %v", kind, err)) // fixed config; cannot fail
	}
	rel := core.NewRelation(ix)
	datasetCache.Lock()
	datasetCache.relations[key] = rel
	datasetCache.Unlock()
	return rel
}

// --- Ablation: parallel kNN-join scaling ---

var ablParallel = Experiment{
	ID:     "abl-parallel",
	Title:  "parallel kNN-join: worker scaling on a 20k x 20k BerlinMOD join (k=10)",
	XLabel: "workload",
	Expect: "near-linear scaling until memory bandwidth saturates; identical results at every worker count",
	Cases: func(scale Scale) []Case {
		n := 20000
		if scale == ScalePaper {
			n = 100000
		}
		outer := BerlinMODRelation("fig19-outer", n)
		inner := BerlinMODRelation("fig19-inner", n)
		var plans []Plan
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			plans = append(plans, Plan{
				Name: fmt.Sprintf("workers=%d", workers),
				Run: func(c *stats.Counters) int {
					return len(core.KNNJoinParallel(outer, inner, kDefault, workers, c))
				},
			})
		}
		return []Case{{X: fmt.Sprintf("%dx%d", n, n), Plans: plans}}
	},
}
