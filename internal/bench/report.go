package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// Result holds the measured series of one experiment.
type Result struct {
	Experiment Experiment
	Scale      Scale
	Rows       []ResultRow
}

// ResultRow is one x-axis position with per-plan measurements.
type ResultRow struct {
	X string

	// Times maps plan name to the (best-of-reps) execution time.
	Times map[string]time.Duration

	// Counts maps plan name to the result cardinality; the runner verifies
	// all plans of a row agree.
	Counts map[string]int

	// Stats maps plan name to the operation counters of the last run.
	Stats map[string]*stats.Counters
}

// Run executes an experiment at the given scale and returns the measured
// series. Fast plans are re-run (up to five times, while under 200ms) and
// the minimum is reported; slow plans run once. Run returns an error when
// two plans of one case disagree on the result cardinality — the
// correctness guarantee every figure rests on.
func Run(e Experiment, scale Scale) (*Result, error) {
	res := &Result{Experiment: e, Scale: scale}
	for _, c := range e.Cases(scale) {
		row := ResultRow{
			X:      c.X,
			Times:  make(map[string]time.Duration, len(c.Plans)),
			Counts: make(map[string]int, len(c.Plans)),
			Stats:  make(map[string]*stats.Counters, len(c.Plans)),
		}
		for _, p := range c.Plans {
			best := time.Duration(0)
			count := 0
			var ctr *stats.Counters
			budget := time.Second
			for rep := 0; rep < 7; rep++ {
				ctr = &stats.Counters{}
				start := time.Now()
				count = p.Run(ctr)
				elapsed := time.Since(start)
				if rep == 0 || elapsed < best {
					best = elapsed
				}
				budget -= elapsed
				if budget <= 0 {
					break
				}
			}
			row.Times[p.Name] = best
			row.Counts[p.Name] = count
			row.Stats[p.Name] = ctr
		}
		if err := checkAgreement(e.ID, c.X, row.Counts); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func checkAgreement(id, x string, counts map[string]int) error {
	var names []string
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if counts[names[i]] != counts[names[0]] {
			return fmt.Errorf("bench: %s x=%s: plans disagree on result cardinality: %s=%d, %s=%d",
				id, x, names[0], counts[names[0]], names[i], counts[names[i]])
		}
	}
	return nil
}

// PlanNames returns the plan names of the result in first-case order.
func (r *Result) PlanNames() []string {
	if len(r.Rows) == 0 {
		return nil
	}
	var names []string
	for name := range r.Rows[0].Times {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Format renders the series as an aligned text table in the paper's layout:
// one row per sweep value, one timing column per plan, plus the ratio
// between the last and first plan column (the figure's headline gap).
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s (%s scale) ===\n", r.Experiment.ID, r.Scale)
	fmt.Fprintf(&sb, "%s\n", r.Experiment.Title)
	fmt.Fprintf(&sb, "paper: %s\n\n", r.Experiment.Expect)

	names := r.PlanNames()
	header := append([]string{r.Experiment.XLabel}, names...)
	header = append(header, "slow/fast", "|result|")

	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	var cells [][]string
	for _, row := range r.Rows {
		line := []string{row.X}
		slowest, fastest := time.Duration(0), time.Duration(0)
		for i, n := range names {
			d := row.Times[n]
			line = append(line, formatDuration(d))
			if i == 0 || d > slowest {
				slowest = d
			}
			if i == 0 || d < fastest {
				fastest = d
			}
		}
		line = append(line, formatRatio(slowest, fastest))
		line = append(line, fmt.Sprintf("%d", row.Counts[names[0]]))
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		cells = append(cells, line)
	}

	writeLine := func(line []string) {
		for i, cell := range line {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteString("\n")
	}
	writeLine(header)
	for _, line := range cells {
		writeLine(line)
	}
	return sb.String()
}

// formatDuration prints a duration in milliseconds with adaptive precision.
func formatDuration(d time.Duration) string {
	ms := float64(d.Microseconds()) / 1000
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0fms", ms)
	case ms >= 1:
		return fmt.Sprintf("%.2fms", ms)
	default:
		return fmt.Sprintf("%.3fms", ms)
	}
}

// formatRatio prints a/b as a "x" multiple (how many times slower the
// slowest plan of a row is than the fastest).
func formatRatio(a, b time.Duration) string {
	if b <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}
