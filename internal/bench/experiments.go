package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/stats"
)

// Plan is one competing strategy inside an experiment case. Run executes
// the query once and returns the result cardinality (the runner checks that
// all plans of a case agree — the correctness claim behind every figure).
type Plan struct {
	Name string
	Run  func(c *stats.Counters) int
}

// Case is one x-axis position of an experiment's sweep.
type Case struct {
	X     string
	Plans []Plan
}

// Experiment is one figure of the paper's evaluation section.
type Experiment struct {
	// ID is the figure identifier, e.g. "fig19".
	ID string

	// Title describes the query and workload.
	Title string

	// XLabel names the sweep parameter.
	XLabel string

	// Expect summarizes the paper's qualitative claim for the figure; the
	// reporter prints it next to the measured series.
	Expect string

	// Cases constructs the sweep for a scale. Datasets are memoized, so
	// repeated calls are cheap.
	Cases func(scale Scale) []Case
}

// The benchmark focal point: the center of the city region, where the
// BerlinMOD-substitute network always has traffic.
var focal = geom.Point{X: 5000, Y: 5000}

// kDefault is the k value used by both predicates in the join/select
// experiments. The paper does not print its k values; 10 is the
// conventional choice and the shapes are insensitive to it.
const kDefault = 10

// Experiments lists every figure reproduction, in paper order.
var Experiments = []Experiment{fig19, fig20, fig21, fig22, fig23, fig24, fig25, fig26}

// ByID looks an experiment up by identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sweep returns the per-scale cardinality sweeps shared by several figures.
func sweep(scale Scale, ci, paper []int) []int {
	if scale == ScalePaper {
		return paper
	}
	return ci
}

// --- Figure 19: kNN-select on inner of kNN-join, conceptual vs Block-Marking ---

var fig19 = Experiment{
	ID:     "fig19",
	Title:  "kNN-select on the inner relation of a kNN-join: conceptual QEP vs Block-Marking (BerlinMOD)",
	XLabel: "|outer|",
	Expect: "Block-Marking outperforms the conceptual QEP by ~3 orders of magnitude, growing with |outer|",
	Cases: func(scale Scale) []Case {
		innerN := 20000
		if scale == ScalePaper {
			innerN = 160000
		}
		inner := BerlinMODRelation("fig19-inner", innerN)
		var cases []Case
		for _, outerN := range sweep(scale,
			[]int{2000, 4000, 8000, 16000},
			[]int{32000, 64000, 128000, 256000, 512000}) {
			outer := BerlinMODRelation("fig19-outer", outerN)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", outerN),
				Plans: []Plan{
					{Name: "conceptual", Run: func(c *stats.Counters) int {
						return len(core.SelectInnerJoinConceptual(outer, inner, focal, kDefault, kDefault, c))
					}},
					{Name: "block-marking", Run: func(c *stats.Counters) int {
						return len(core.SelectInnerJoinBlockMarking(outer, inner, focal, kDefault, kDefault, core.BlockMarkingOptions{}, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Figures 20/21: Counting vs Block-Marking at low/high outer density ---

func countingVsBlockMarking(id, expect string, ciSizes, paperSizes []int) Experiment {
	return Experiment{
		ID:     id,
		Title:  "kNN-select on the inner relation of a kNN-join: Counting vs Block-Marking (BerlinMOD)",
		XLabel: "|outer|",
		Expect: expect,
		Cases: func(scale Scale) []Case {
			innerN := 20000
			if scale == ScalePaper {
				innerN = 160000
			}
			inner := BerlinMODRelation("fig19-inner", innerN) // shared with fig19
			var cases []Case
			for _, outerN := range sweep(scale, ciSizes, paperSizes) {
				outer := BerlinMODRelation("fig19-outer", outerN)
				cases = append(cases, Case{
					X: fmt.Sprintf("%d", outerN),
					Plans: []Plan{
						{Name: "counting", Run: func(c *stats.Counters) int {
							return len(core.SelectInnerJoinCounting(outer, inner, focal, kDefault, kDefault, c))
						}},
						{Name: "block-marking", Run: func(c *stats.Counters) int {
							return len(core.SelectInnerJoinBlockMarking(outer, inner, focal, kDefault, kDefault, core.BlockMarkingOptions{}, c))
						}},
					},
				})
			}
			return cases
		},
	}
}

var fig20 = countingVsBlockMarking("fig20",
	"at low |outer| the Counting algorithm wins: Block-Marking's preprocessing does not pay off",
	[]int{250, 500, 1000, 2000},
	[]int{4000, 8000, 16000, 32000})

var fig21 = countingVsBlockMarking("fig21",
	"at high |outer| Block-Marking wins: entire blocks are excluded instead of per-tuple checks",
	[]int{8000, 16000, 32000, 64000},
	[]int{128000, 256000, 512000, 1024000})

// --- Figure 22: unchained joins, conceptual vs Block-Marking, A clustered ---

var fig22 = Experiment{
	ID:     "fig22",
	Title:  "two unchained kNN-joins (A⋈B) ∩B (C⋈B): conceptual vs Block-Marking; A clustered, B and C BerlinMOD",
	XLabel: "|C|",
	Expect: "Block-Marking outperforms the conceptual QEP by ~1 order of magnitude and stays nearly flat in |C|",
	Cases: func(scale Scale) []Case {
		// A stays small and tightly clustered: the join results it induces
		// in B are concentrated, which is what makes most of C's blocks
		// safe to prune. kAB is small so the (shared) output size does not
		// drown the plan-differentiating work — the per-point C-join
		// neighborhoods that the conceptual plan computes for all of C.
		const kAB = 2
		bN, aClusters, perCluster := 20000, 1, 200
		if scale == ScalePaper {
			bN, perCluster = 100000, 1000
		}
		a := ClusteredRelation("fig22-a", aClusters, perCluster, 200)
		b := BerlinMODRelation("fig22-b", bN)
		var cases []Case
		for _, cN := range sweep(scale,
			[]int{2000, 4000, 8000, 16000},
			[]int{32000, 64000, 128000, 256000}) {
			cRel := BerlinMODRelation("fig22-c", cN)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", cN),
				Plans: []Plan{
					{Name: "conceptual", Run: func(c *stats.Counters) int {
						return len(core.UnchainedConceptual(a, b, cRel, kAB, kDefault, c))
					}},
					{Name: "block-marking", Run: func(c *stats.Counters) int {
						return len(core.UnchainedBlockMarking(a, b, cRel, kAB, kDefault, core.OrderABFirst, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Figure 23: unchained joins, join order, A and C clustered ---

var fig23 = Experiment{
	ID:     "fig23",
	Title:  "two unchained kNN-joins, A and C clustered with equal clusters: start with (A⋈B) vs start with (C⋈B)",
	XLabel: "clusters(A)-clusters(C)",
	Expect: "starting with the relation of fewer clusters (C) is faster, increasingly so as the gap grows",
	Cases: func(scale Scale) []Case {
		bN, cClusters, perCluster := 20000, 3, 500
		maxGap := 6
		if scale == ScalePaper {
			bN, cClusters, perCluster = 100000, 4, 4000
			maxGap = 10
		}
		b := BerlinMODRelation("fig23-b", bN)
		// All clusters share one fixed placement: C owns the first
		// cClusters disks; A owns the next cClusters+gap disks, nested as
		// the gap grows. Growing the gap therefore monotonically grows A's
		// coverage while C's stays fixed — the paper's setup ("equal
		// number of points, same area, non-overlapping") with the sweep
		// isolated to a single variable.
		centers, err := datagen.ClusterCenters(2*cClusters+maxGap, 300, Bounds, 2301)
		if err != nil {
			panic(fmt.Sprintf("bench: fig23 centers: %v", err)) // fixed geometry; cannot fail
		}
		cPts, err := datagen.ClusteredAt(centers[:cClusters], perCluster, 300, 2302)
		if err != nil {
			panic(fmt.Sprintf("bench: fig23 C: %v", err))
		}
		cRel := Relation(fmt.Sprintf("fig23-c/%d/%d", cClusters, perCluster), cPts)
		var cases []Case
		for gap := 1; gap <= maxGap; gap++ {
			aPts, err := datagen.ClusteredAt(centers[cClusters:2*cClusters+gap], perCluster, 300, 2303)
			if err != nil {
				panic(fmt.Sprintf("bench: fig23 A: %v", err))
			}
			a := Relation(fmt.Sprintf("fig23-a/%d/%d", cClusters+gap, perCluster), aPts)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", gap),
				Plans: []Plan{
					{Name: "start-with-AB", Run: func(c *stats.Counters) int {
						return len(core.UnchainedBlockMarking(a, b, cRel, kDefault, kDefault, core.OrderABFirst, c))
					}},
					{Name: "start-with-CB", Run: func(c *stats.Counters) int {
						return len(core.UnchainedBlockMarking(a, b, cRel, kDefault, kDefault, core.OrderCBFirst, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Figure 24: chained joins, nested join with vs without cache ---

var fig24 = Experiment{
	ID:     "fig24",
	Title:  "two chained kNN-joins A→B→C (BerlinMOD): nested-join QEP with vs without the neighborhood cache",
	XLabel: "|A|=|B|=|C|",
	Expect: "caching the (B⋈C) neighborhoods significantly improves the nested-join QEP",
	Cases: func(scale Scale) []Case {
		var cases []Case
		for _, n := range sweep(scale,
			[]int{500, 1000, 2000, 4000},
			[]int{8000, 16000, 32000, 64000}) {
			a := BerlinMODRelation("fig24-a", n)
			b := BerlinMODRelation("fig24-b", n)
			cRel := BerlinMODRelation("fig24-c", n)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", n),
				Plans: []Plan{
					{Name: "nested-nocache", Run: func(c *stats.Counters) int {
						return len(core.ChainedJoins(a, b, cRel, kDefault, kDefault, core.ChainedNestedJoin, c))
					}},
					{Name: "nested-cached", Run: func(c *stats.Counters) int {
						return len(core.ChainedJoins(a, b, cRel, kDefault, kDefault, core.ChainedNestedJoinCached, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Figure 25: chained joins, nested (cached) vs join-intersection, clustered B ---

var fig25 = Experiment{
	ID:     "fig25",
	Title:  "two chained kNN-joins with clustered B: nested join (cached) vs join-intersection QEP",
	XLabel: "clusters(B)",
	Expect: "the nested join wins and widens its lead as clusters(B) grows: clusters unselected by A are never joined",
	Cases: func(scale Scale) []Case {
		// Moderate k values keep the (fixed-size) output from dominating
		// both plans; the differing cost is the (B ⋈ C) work, which the
		// join-intersection plan pays for every point of every cluster
		// while the nested plan pays it only for b values some a selects.
		const k = 4
		acN, perCluster := 2000, 500
		maxClusters := 8
		if scale == ScalePaper {
			acN, perCluster = 20000, 4000
		}
		a := BerlinMODRelation("fig25-a", acN)
		cRel := BerlinMODRelation("fig25-c", acN)
		var cases []Case
		for nc := 1; nc <= maxClusters; nc++ {
			b := ClusteredRelation("fig25-b", nc, perCluster, 300)
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", nc),
				Plans: []Plan{
					{Name: "join-intersection", Run: func(c *stats.Counters) int {
						return len(core.ChainedJoins(a, b, cRel, k, k, core.ChainedJoinIntersection, c))
					}},
					{Name: "nested-cached", Run: func(c *stats.Counters) int {
						return len(core.ChainedJoins(a, b, cRel, k, k, core.ChainedNestedJoinCached, c))
					}},
				},
			})
		}
		return cases
	},
}

// --- Figure 26: two kNN-selects, conceptual vs 2-kNN-select ---

var fig26 = Experiment{
	ID:     "fig26",
	Title:  "two kNN-selects σ(k1=10,f1) ∩ σ(k2,f2) (BerlinMOD): conceptual vs 2-kNN-select",
	XLabel: "log2(k2/k1)",
	Expect: "the conceptual QEP degrades as k2 grows; 2-kNN-select stays nearly constant (~2 orders of magnitude at large k2)",
	Cases: func(scale Scale) []Case {
		n := 128000
		if scale == ScalePaper {
			n = 512000
		}
		// The conceptual plan's k2-locality spans ever more blocks as k2
		// grows — the overhead the clipped locality of 2-kNN-select avoids.
		// The focal points sit in the densest part of the city (a realistic
		// query posts its predicates where the data is), close together so
		// the clipped locality stays at the size of the smaller
		// neighborhood and the answer is non-empty.
		rel := BerlinMODRelationCell("fig26-e", n, 16)
		f1 := densestCenter(rel)
		f2 := geom.Point{X: f1.X + 30, Y: f1.Y - 30}
		const k1 = 10
		var cases []Case
		for x := 0; x <= 7; x++ {
			k2 := k1 << x
			cases = append(cases, Case{
				X: fmt.Sprintf("%d", x),
				Plans: []Plan{
					{Name: "conceptual", Run: func(c *stats.Counters) int {
						return len(core.TwoSelectsConceptual(rel, f1, k1, f2, k2, c))
					}},
					{Name: "2-knn-select", Run: func(c *stats.Counters) int {
						return len(core.TwoSelects(rel, f1, k1, f2, k2, c))
					}},
					{Name: "procedure5", Run: func(c *stats.Counters) int {
						return len(core.TwoSelectsProcedure5(rel, f1, k1, f2, k2, c))
					}},
				},
			})
		}
		return cases
	},
}

// densestCenter returns the center of the relation's most populated block —
// a deterministic, data-adaptive focal point inside the busiest part of the
// workload.
func densestCenter(rel *core.Relation) geom.Point {
	best := rel.Ix.Blocks()[0]
	for _, b := range rel.Ix.Blocks() {
		if b.Count() > best.Count() {
			best = b
		}
	}
	return best.Center()
}
