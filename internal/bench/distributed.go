package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/stats"
)

// --- Ablation: remote scatter/gather vs the in-process layouts ---

// ablDist prices the PR 10 process boundary: the same kNN-select stream
// (16 focals, k=10) runs over the in-process sharded group, over loopback
// transports (the ShardTransport seam with zero serialization), over real
// HTTP/JSON endpoints, and over the same HTTP fleet with one artificially
// slow shard (injected per-probe latency) — the straggler cost the
// robustness envelope's hedging exists to bound. Per-case cardinality
// agreement across all four plans doubles as a wire-exactness check at
// benchmark scale.
var ablDist = Experiment{
	ID:     "abl-dist",
	Title:  "remote scatter/gather: kNN-select stream over in-process shards vs loopback vs HTTP transports (k=10, BerlinMOD)",
	XLabel: "shards",
	Expect: "identical result cardinality on every transport; loopback tracks in-process, HTTP adds per-probe wire cost, a slow shard dominates the stream latency",
	Cases: func(scale Scale) []Case {
		n := 20000
		if scale == ScalePaper {
			n = 100000
		}
		pts := BerlinMODPoints("fig19-outer", n)

		// The query stream: a fixed diagonal of focals across the region.
		focals := make([]geom.Point, 16)
		for i := range focals {
			focals[i] = geom.Point{X: 500 + 600*float64(i), Y: 9500 - 600*float64(i)}
		}
		stream := func(g shard.Group) func(c *stats.Counters) int {
			return func(c *stats.Counters) int {
				total := 0
				for _, f := range focals {
					total += len(shard.Select(nil, g, f, kDefault, c))
				}
				return total
			}
		}

		build := func(st *geom.PointStore) (index.Index, error) {
			if st.Len() == 0 {
				return grid.NewFromStore(st, grid.Options{TargetPerCell: DefaultPerCell, Bounds: Bounds})
			}
			return grid.NewFromStore(st, grid.Options{TargetPerCell: DefaultPerCell})
		}

		var cases []Case
		for _, s := range ShardCounts {
			rel, err := shard.New(pts, s, shard.PolicyHash, 0, build)
			if err != nil {
				panic(fmt.Sprintf("bench: building sharded relation: %v", err)) // fixed config; cannot fail
			}

			// One ShardServer per shard backs both remote transports; the
			// HTTP plan serves it over a real socket.
			servers := make([]*remote.ShardServer, s)
			loops := make([][]remote.ShardTransport, s)
			https := make([][]remote.ShardTransport, s)
			var slowEndpoint string
			for i := 0; i < s; i++ {
				srv := remote.NewShardServer(rel.Shard(i), remote.ShardServerConfig{
					Name: "abl-dist", Shard: i, Shards: s, Index: "grid",
				})
				servers[i] = srv
				loops[i] = []remote.ShardTransport{remote.NewLoopback(srv, "")}
				hs := httptest.NewServer(srv)
				https[i] = []remote.ShardTransport{remote.NewHTTPTransport(hs.URL, nil)}
				if i == 0 {
					slowEndpoint = hs.URL
				}
			}
			dial := func(tps [][]remote.ShardTransport) shard.Group {
				members, err := remote.Dial(context.Background(), tps, remote.Options{})
				if err != nil {
					panic(fmt.Sprintf("bench: dialing remote group: %v", err)) // in-process endpoints; cannot fail
				}
				return remote.NewGroup(members, nil)
			}
			inproc, loopback, http := rel.Group(), dial(loops), dial(https)

			cases = append(cases, Case{
				X: fmt.Sprintf("%d", s),
				Plans: []Plan{
					{Name: "in-process", Run: stream(inproc)},
					{Name: "loopback", Run: stream(loopback)},
					{Name: "http", Run: stream(http)},
					{Name: "http-slow1", Run: func(c *stats.Counters) int {
						// Shard 0 answers 2ms late on every probe: the
						// straggler profile of an overloaded replica.
						fault.Arm(&fault.Injector{DelayProbe: func(ep string) time.Duration {
							if ep == slowEndpoint {
								return 2 * time.Millisecond
							}
							return 0
						}})
						defer fault.Disarm()
						return stream(http)(c)
					}},
				},
			})
		}
		return cases
	},
}
