package bench

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("ci"); err != nil || s != ScaleCI {
		t.Errorf("ParseScale(ci) = %v, %v", s, err)
	}
	if s, err := ParseScale("paper"); err != nil || s != ScalePaper {
		t.Errorf("ParseScale(paper) = %v, %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Errorf("unknown scale must error")
	}
}

func TestByID(t *testing.T) {
	for _, want := range []string{"fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26"} {
		e, ok := ByID(want)
		if !ok || e.ID != want {
			t.Errorf("ByID(%s) = %v, %v", want, e.ID, ok)
		}
		if e.Title == "" || e.XLabel == "" || e.Expect == "" || e.Cases == nil {
			t.Errorf("%s: incomplete experiment definition", want)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Errorf("unknown figure must not resolve")
	}
}

func TestWorkloadsDeterministicAndCached(t *testing.T) {
	defer ResetCache()
	a := BerlinMODPoints("t", 500)
	b := BerlinMODPoints("t", 500)
	if &a[0] != &b[0] {
		t.Errorf("cache must return the same slice")
	}
	c := BerlinMODPoints("other", 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different roles must decorrelate datasets")
	}

	u := UniformPoints("t", 300)
	if len(u) != 300 {
		t.Errorf("uniform size = %d", len(u))
	}
	cl := ClusteredPoints("t", 2, 100, 300)
	if len(cl) != 200 {
		t.Errorf("clustered size = %d", len(cl))
	}
	for _, p := range cl {
		if !Bounds.Contains(p) {
			t.Fatalf("clustered point %v outside bounds", p)
		}
	}

	r1 := Relation("t/rel", u)
	r2 := Relation("t/rel", u)
	if r1 != r2 {
		t.Errorf("relation cache must return the same relation")
	}
	if r1.Len() != 300 {
		t.Errorf("relation Len = %d", r1.Len())
	}
}

// TestRunTinyExperiment drives the runner and reporter end to end on a
// synthetic two-plan experiment.
func TestRunTinyExperiment(t *testing.T) {
	exp := Experiment{
		ID:     "tiny",
		Title:  "synthetic",
		XLabel: "n",
		Expect: "plans agree",
		Cases: func(scale Scale) []Case {
			return []Case{{
				X: "1",
				Plans: []Plan{
					{Name: "alpha", Run: func(c *stats.Counters) int { c.AddBlocksScanned(1); return 7 }},
					{Name: "beta", Run: func(c *stats.Counters) int { return 7 }},
				},
			}}
		},
	}
	res, err := Run(exp, ScaleCI)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Counts["alpha"] != 7 || res.Rows[0].Counts["beta"] != 7 {
		t.Fatalf("counts wrong: %v", res.Rows[0].Counts)
	}
	if res.Rows[0].Stats["alpha"].BlocksScanned != 1 {
		t.Fatalf("stats not captured")
	}
	out := res.Format()
	for _, want := range []string{"tiny", "alpha", "beta", "slow/fast", "|result|", "plans agree"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if names := res.PlanNames(); len(names) != 2 || names[0] != "alpha" {
		t.Errorf("PlanNames = %v", names)
	}
}

// TestRunDetectsDisagreement ensures the runner fails when plans return
// different cardinalities.
func TestRunDetectsDisagreement(t *testing.T) {
	exp := Experiment{
		ID: "broken", Title: "t", XLabel: "x", Expect: "e",
		Cases: func(scale Scale) []Case {
			return []Case{{
				X: "1",
				Plans: []Plan{
					{Name: "a", Run: func(c *stats.Counters) int { return 1 }},
					{Name: "b", Run: func(c *stats.Counters) int { return 2 }},
				},
			}}
		},
	}
	if _, err := Run(exp, ScaleCI); err == nil {
		t.Fatalf("disagreeing plans must fail the run")
	}
}

// TestFig26SmallSlice runs the smallest case of a real experiment end to
// end, checking plan agreement on real data (full sweeps are exercised by
// the benchmarks and cmd/knnbench).
func TestFig26SmallSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("real dataset generation in -short mode")
	}
	defer ResetCache()
	e, _ := ByID("fig26")
	cases := e.Cases(ScaleCI)
	if len(cases) != 8 {
		t.Fatalf("fig26 cases = %d, want 8", len(cases))
	}
	c := cases[0]
	var ctr stats.Counters
	n1 := c.Plans[0].Run(&ctr)
	n2 := c.Plans[1].Run(&ctr)
	if n1 != n2 {
		t.Fatalf("fig26 plans disagree: %d vs %d", n1, n2)
	}
}
