// Package bench defines the benchmark harness that regenerates every figure
// of the paper's evaluation section (Figures 19–26): workload construction,
// the competing plans of each experiment, parameter sweeps, and a text
// reporter that prints the series in the paper's layout.
//
// The harness is shared by the repository's testing.B benchmarks
// (bench_test.go at the module root) and the cmd/knnbench executable. Two
// scales are built in: ScaleCI (reduced cardinalities; same qualitative
// shape, minutes to run) and ScalePaper (the paper's cardinalities; long).
package bench

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataload"
	"repro/internal/geom"
	"repro/internal/index/grid"
)

// Bounds is the common region all benchmark workloads live in, mirroring a
// city extent.
var Bounds = geom.NewRect(0, 0, 10000, 10000)

// Scale selects experiment cardinalities.
type Scale string

// The available scales.
const (
	// ScaleCI uses reduced cardinalities that preserve each figure's shape
	// and finish in minutes.
	ScaleCI Scale = "ci"

	// ScalePaper uses the paper's cardinalities (up to 2 560 000 points);
	// conceptual baselines take a long time at this scale by design.
	ScalePaper Scale = "paper"
)

// ParseScale validates a scale name.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleCI, ScalePaper:
		return Scale(s), nil
	default:
		return "", fmt.Errorf("bench: unknown scale %q (want %q or %q)", s, ScaleCI, ScalePaper)
	}
}

// datasetCache memoizes generated point sets and built relations: the same
// workload is shared by the series runner and the testing.B benchmarks, and
// across the rows of a sweep.
var datasetCache = struct {
	sync.Mutex
	points    map[string][]geom.Point
	relations map[string]*core.Relation
}{
	points:    make(map[string][]geom.Point),
	relations: make(map[string]*core.Relation),
}

// BerlinMODPoints returns n snapshot points from the BerlinMOD-substitute
// simulation. role decorrelates datasets that appear in one experiment (the
// outer and inner relations must not be identical); the same (role, n)
// always returns the same points.
func BerlinMODPoints(role string, n int) []geom.Point {
	key := fmt.Sprintf("bm/%s/%d", role, n)
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if pts, ok := datasetCache.points[key]; ok {
		return pts
	}
	seed := int64(len(role)*7919) + int64(n)
	for _, ch := range role {
		seed = seed*131 + int64(ch)
	}
	pts, err := dataload.Spec{Kind: dataload.BerlinMOD, N: n, Seed: seed, Bounds: Bounds}.Points()
	if err != nil {
		panic(fmt.Sprintf("bench: generating BerlinMOD points: %v", err)) // static config; cannot fail
	}
	datasetCache.points[key] = pts
	return pts
}

// ClusteredPoints returns numClusters non-overlapping clusters of perCluster
// points each (the Section 6.2 synthetic layout), memoized per parameters.
func ClusteredPoints(role string, numClusters, perCluster int, radius float64) []geom.Point {
	key := fmt.Sprintf("cl/%s/%d/%d/%g", role, numClusters, perCluster, radius)
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if pts, ok := datasetCache.points[key]; ok {
		return pts
	}
	seed := int64(numClusters*1009 + perCluster)
	for _, ch := range role {
		seed = seed*131 + int64(ch)
	}
	pts, err := dataload.Spec{
		Kind:       dataload.Clustered,
		Clusters:   numClusters,
		PerCluster: perCluster,
		Radius:     radius,
		Bounds:     Bounds,
		Seed:       seed,
	}.Points()
	if err != nil {
		panic(fmt.Sprintf("bench: generating clustered points: %v", err)) // parameters are fixed per experiment
	}
	datasetCache.points[key] = pts
	return pts
}

// UniformPoints returns n uniform points, memoized per (role, n).
func UniformPoints(role string, n int) []geom.Point {
	key := fmt.Sprintf("un/%s/%d", role, n)
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if pts, ok := datasetCache.points[key]; ok {
		return pts
	}
	seed := int64(n)
	for _, ch := range role {
		seed = seed*131 + int64(ch)
	}
	pts, err := dataload.Spec{Kind: dataload.Uniform, N: n, Seed: seed, Bounds: Bounds}.Points()
	if err != nil {
		panic(fmt.Sprintf("bench: generating uniform points: %v", err)) // static config; cannot fail
	}
	datasetCache.points[key] = pts
	return pts
}

// DefaultPerCell is the default grid-cell point target for benchmark
// relations.
const DefaultPerCell = 16

// Relation builds (and memoizes) a grid-indexed relation over the named
// workload with the default cell size. All benchmark relations share the
// common Bounds so block geometries are comparable, as in the paper's
// single-grid setup.
func Relation(key string, pts []geom.Point) *core.Relation {
	return RelationCell(key, pts, DefaultPerCell)
}

// RelationCell is Relation with an explicit points-per-cell target. Finer
// cells tighten the Block-Marking thresholds (smaller diagonals); coarser
// cells shift query cost from block bookkeeping to point processing, which
// is the regime the two-kNN-select experiment of Figure 26 studies.
func RelationCell(key string, pts []geom.Point, perCell int) *core.Relation {
	cacheKey := fmt.Sprintf("%s@%d", key, perCell)
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if rel, ok := datasetCache.relations[cacheKey]; ok {
		return rel
	}
	ix, err := grid.New(pts, grid.Options{TargetPerCell: perCell, Bounds: Bounds})
	if err != nil {
		panic(fmt.Sprintf("bench: building relation %s: %v", cacheKey, err)) // bounds are fixed; cannot fail
	}
	rel := core.NewRelation(ix)
	datasetCache.relations[cacheKey] = rel
	return rel
}

// BerlinMODRelation is Relation over BerlinMODPoints.
func BerlinMODRelation(role string, n int) *core.Relation {
	return Relation(fmt.Sprintf("bm/%s/%d", role, n), BerlinMODPoints(role, n))
}

// BerlinMODRelationCell is RelationCell over BerlinMODPoints.
func BerlinMODRelationCell(role string, n, perCell int) *core.Relation {
	return RelationCell(fmt.Sprintf("bm/%s/%d", role, n), BerlinMODPoints(role, n), perCell)
}

// ClusteredRelation is Relation over ClusteredPoints.
func ClusteredRelation(role string, numClusters, perCluster int, radius float64) *core.Relation {
	return Relation(fmt.Sprintf("cl/%s/%d/%d/%g", role, numClusters, perCluster, radius),
		ClusteredPoints(role, numClusters, perCluster, radius))
}

// ResetCache clears memoized datasets and relations (tests use it to bound
// memory).
func ResetCache() {
	datasetCache.Lock()
	defer datasetCache.Unlock()
	datasetCache.points = make(map[string][]geom.Point)
	datasetCache.relations = make(map[string]*core.Relation)
}
