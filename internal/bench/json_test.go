package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

// TestJSONReportRoundTrip drives the runner into the JSON writer and checks
// the written file parses back with the measured values intact.
func TestJSONReportRoundTrip(t *testing.T) {
	exp := Experiment{
		ID:     "tiny-json",
		Title:  "synthetic",
		XLabel: "n",
		Expect: "plans agree",
		Cases: func(scale Scale) []Case {
			return []Case{{
				X: "1",
				Plans: []Plan{
					{Name: "alpha", Run: func(c *stats.Counters) int { c.AddBlocksScanned(3); return 7 }},
					{Name: "beta", Run: func(c *stats.Counters) int { return 7 }},
				},
			}}
		},
	}
	res, err := Run(exp, ScaleCI)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := NewJSONReport(ScaleCI, []*Result{res}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back JSONReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if back.Schema != JSONReportSchema || back.Scale != string(ScaleCI) {
		t.Errorf("header = %q/%q, want %q/%q", back.Schema, back.Scale, JSONReportSchema, ScaleCI)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].ID != "tiny-json" {
		t.Fatalf("experiments = %+v", back.Experiments)
	}
	rows := back.Experiments[0].Rows
	if len(rows) != 1 || len(rows[0].Plans) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, p := range rows[0].Plans {
		if p.Result != 7 {
			t.Errorf("plan %s result = %d, want 7", p.Name, p.Result)
		}
		if p.NsPerOp < 0 {
			t.Errorf("plan %s ns_per_op = %d, want ≥ 0", p.Name, p.NsPerOp)
		}
	}
	if rows[0].Plans[0].Name != "alpha" || rows[0].Plans[0].Stats.BlocksScanned != 3 {
		t.Errorf("alpha plan stats not preserved: %+v", rows[0].Plans[0])
	}
}
