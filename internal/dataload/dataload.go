// Package dataload is the one dataset loader shared by every binary of the
// repository (cmd/knnserve, cmd/knnquery, cmd/knnbench via internal/bench,
// cmd/datagen): a small spec grammar names either a CSV point file or one of
// the deterministic generators, and Store/Points materialize it into the
// columnar form the indexes build from.
//
// The spec grammar is "kind:key=value,key=value":
//
//	file:points.csv                      CSV "x,y" rows (pointio format)
//	berlinmod:n=20000,seed=1             BerlinMOD-substitute traffic snapshot
//	uniform:n=20000,seed=1,w=10000,h=10000
//	clustered:clusters=4,per=4000,radius=0,seed=1,w=10000,h=10000
//
// A bare string with no "kind:" prefix is a file path. All generators are
// pure functions of their spec, so the same spec always yields the same
// points (and the same stable IDs 0..n-1 in generation/file order).
package dataload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/berlinmod"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/pointio"
)

// Kind names a dataset source.
type Kind string

// The available kinds.
const (
	// File reads a CSV point file (pointio format).
	File Kind = "file"

	// BerlinMOD samples a snapshot of the BerlinMOD-substitute traffic
	// simulation.
	BerlinMOD Kind = "berlinmod"

	// Uniform draws points independently and uniformly over the bounds.
	Uniform Kind = "uniform"

	// Clustered draws equal-size, equal-area, non-overlapping clusters
	// (the paper's Section 6.2 synthetic layout).
	Clustered Kind = "clustered"
)

// DefaultBounds is the generation region when a spec gives no w/h — the
// 10000 x 10000 city extent every experiment in the repository uses.
var DefaultBounds = geom.NewRect(0, 0, 10000, 10000)

// Spec is a parsed dataset specification.
type Spec struct {
	// Kind selects the source; the zero value ("") is invalid.
	Kind Kind

	// Path is the CSV file (Kind File).
	Path string

	// N is the point count (Kinds BerlinMOD and Uniform).
	N int

	// Clusters and PerCluster shape Kind Clustered.
	Clusters, PerCluster int

	// Radius is the cluster radius; 0 derives one covering ~5% of the
	// bounds (Kind Clustered).
	Radius float64

	// Bounds is the generation region; a zero-area rectangle means
	// DefaultBounds.
	Bounds geom.Rect

	// Seed drives all randomness of the generators.
	Seed int64
}

// FileSpec names a CSV point file.
func FileSpec(path string) Spec { return Spec{Kind: File, Path: path} }

// Parse parses the spec grammar. Unknown kinds and keys, and malformed
// values, are errors; omitted keys take the documented defaults
// (n=20000, clusters=4, per=4000, radius=0, seed=1, bounds 10000x10000).
func Parse(s string) (Spec, error) {
	kindStr, rest, found := strings.Cut(s, ":")
	if !found {
		if s == "" {
			return Spec{}, fmt.Errorf("dataload: empty dataset spec")
		}
		return FileSpec(s), nil
	}
	kind := Kind(kindStr)
	if kind == File {
		if rest == "" {
			return Spec{}, fmt.Errorf("dataload: file spec needs a path")
		}
		return FileSpec(rest), nil
	}
	switch kind {
	case BerlinMOD, Uniform, Clustered:
	default:
		return Spec{}, fmt.Errorf("dataload: unknown dataset kind %q (want file, berlinmod, uniform or clustered)", kindStr)
	}

	sp := Spec{Kind: kind, N: 20000, Clusters: 4, PerCluster: 4000, Seed: 1}
	w, h := 0.0, 0.0
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("dataload: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "n":
			sp.N, err = strconv.Atoi(val)
		case "clusters":
			sp.Clusters, err = strconv.Atoi(val)
		case "per":
			sp.PerCluster, err = strconv.Atoi(val)
		case "radius":
			sp.Radius, err = strconv.ParseFloat(val, 64)
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "w":
			w, err = strconv.ParseFloat(val, 64)
		case "h":
			h, err = strconv.ParseFloat(val, 64)
		default:
			return Spec{}, fmt.Errorf("dataload: unknown spec key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("dataload: bad value for %s: %w", key, err)
		}
	}
	if w > 0 && h > 0 {
		sp.Bounds = geom.NewRect(0, 0, w, h)
	} else if w != 0 || h != 0 {
		return Spec{}, fmt.Errorf("dataload: w and h must be given together and positive")
	}
	return sp, nil
}

// String renders the spec back into the grammar Parse accepts.
func (sp Spec) String() string {
	switch sp.Kind {
	case File:
		return "file:" + sp.Path
	case Uniform:
		return fmt.Sprintf("uniform:n=%d,seed=%d", sp.N, sp.Seed)
	case Clustered:
		return fmt.Sprintf("clustered:clusters=%d,per=%d,radius=%g,seed=%d", sp.Clusters, sp.PerCluster, sp.Radius, sp.Seed)
	default:
		return fmt.Sprintf("berlinmod:n=%d,seed=%d", sp.N, sp.Seed)
	}
}

// bounds resolves the generation region.
func (sp Spec) bounds() geom.Rect {
	if sp.Bounds.Area() > 0 {
		return sp.Bounds
	}
	return DefaultBounds
}

// Store materializes the spec into a columnar point store: files are read in
// row order, generators fill pre-sized stores, and stable IDs are 0..n-1 in
// that order either way.
func (sp Spec) Store() (*geom.PointStore, error) {
	switch sp.Kind {
	case File:
		return pointio.ReadFileStore(sp.Path)
	case Uniform:
		return datagen.UniformStore(sp.N, sp.bounds(), sp.Seed), nil
	case Clustered:
		return datagen.ClusteredStore(datagen.ClusterConfig{
			NumClusters:      sp.Clusters,
			PointsPerCluster: sp.PerCluster,
			Radius:           sp.Radius,
			Bounds:           sp.bounds(),
			Seed:             sp.Seed,
		})
	case BerlinMOD:
		return berlinmod.Store(sp.N, berlinmod.Config{
			Network: berlinmod.NetworkConfig{Bounds: sp.bounds(), Seed: sp.Seed},
			Seed:    sp.Seed + 1,
		})
	default:
		return nil, fmt.Errorf("dataload: invalid dataset kind %q", string(sp.Kind))
	}
}

// Points is Store flattened into a point slice.
func (sp Spec) Points() ([]geom.Point, error) {
	st, err := sp.Store()
	if err != nil {
		return nil, err
	}
	return st.Points(), nil
}
