package dataload

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/pointio"
)

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"file:points.csv", Spec{Kind: File, Path: "points.csv"}},
		{"points.csv", Spec{Kind: File, Path: "points.csv"}},
		{"berlinmod:n=2000,seed=7", Spec{Kind: BerlinMOD, N: 2000, Clusters: 4, PerCluster: 4000, Seed: 7}},
		{"uniform:n=50", Spec{Kind: Uniform, N: 50, Clusters: 4, PerCluster: 4000, Seed: 1}},
		{"clustered:clusters=2,per=10,radius=5,seed=3",
			Spec{Kind: Clustered, N: 20000, Clusters: 2, PerCluster: 10, Radius: 5, Seed: 3}},
		{"uniform:n=10,w=100,h=200",
			Spec{Kind: Uniform, N: 10, Clusters: 4, PerCluster: 4000, Seed: 1, Bounds: geom.NewRect(0, 0, 100, 200)}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "file:", "btree:n=10", "uniform:n", "uniform:n=x",
		"uniform:mystery=1", "uniform:w=10", "clustered:per=-,",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must error", bad)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"file:points.csv",
		"berlinmod:n=2000,seed=7",
		"uniform:n=50,seed=1",
		"clustered:clusters=2,per=10,radius=5,seed=3",
	} {
		sp, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", in, sp.String(), err)
		}
		if again != sp {
			t.Errorf("spec %q does not round-trip through String: %+v vs %+v", in, sp, again)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, spec := range []string{
		"uniform:n=100,seed=9",
		"clustered:clusters=3,per=20,seed=9",
		"berlinmod:n=500,seed=9",
	} {
		sp, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sp.Points()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := sp.Points()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("%s: lengths %d vs %d", spec, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: point %d differs: %v vs %v", spec, i, a[i], b[i])
			}
		}
	}
}

func TestStoreAssignsStableIDs(t *testing.T) {
	sp, _ := Parse("uniform:n=32,seed=4")
	st, err := sp.Store()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 32 {
		t.Fatalf("Len = %d", st.Len())
	}
	for i := 0; i < st.Len(); i++ {
		if st.ID(i) != int32(i) {
			t.Fatalf("ID(%d) = %d, want identity", i, st.ID(i))
		}
	}
}

func TestFileSpecReadsCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	if err := pointio.WriteFile(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := FileSpec(path).Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != pts[0] || got[1] != pts[1] {
		t.Fatalf("got %v", got)
	}
	if _, err := FileSpec(filepath.Join(dir, "missing.csv")).Points(); err == nil {
		t.Fatal("missing file must error")
	}
	_ = os.Remove(path)
}
